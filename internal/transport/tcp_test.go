package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestTCPDropLinkReconnects: severing a live connection mid-run must cost a
// re-dial, not the message — the next Send re-establishes the link and the
// payload arrives exactly once.
func TestTCPDropLinkReconnects(t *testing.T) {
	dict, ts := newDictWithTriples(6)
	tr, err := NewTCP(2, dict)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()

	if err := tr.Send(ctx, 0, 0, 1, ts[:3]); err != nil {
		t.Fatal(err)
	}
	if !tr.DropLink(0, 1) {
		t.Fatal("DropLink found no live connection to drop")
	}
	if tr.DropLink(0, 1) {
		t.Fatal("second DropLink should find the link already down")
	}
	if err := tr.Send(ctx, 1, 0, 1, ts[3:]); err != nil {
		t.Fatalf("send after drop did not reconnect: %v", err)
	}
	if got := tr.Redials(); got != 1 {
		t.Fatalf("expected 1 redial, got %d", got)
	}
	in, err := tr.Recv(ctx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 3 {
		t.Fatalf("expected 3 triples after reconnect, got %d", len(in))
	}
}

// TestTCPFrameDedup: a frame resent under the same (round, from, seq) — as a
// sender re-dialing after a lost ack would — must be delivered exactly once.
func TestTCPFrameDedup(t *testing.T) {
	dict, ts := newDictWithTriples(2)
	tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	payload := []byte("<http://t/s0> <http://t/p> \"v0\" .\n")
	hdr := frameHeader{Type: typeData, Round: 0, From: 0, To: 1, Seq: 99,
		Len: int32(len(payload))}
	l := tr.links[0][1]
	l.mu.Lock()
	for i := 0; i < 2; i++ {
		if err := tr.exchangeLocked(context.Background(), l, hdr, payload); err != nil {
			l.mu.Unlock()
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
	l.mu.Unlock()

	in, err := tr.Recv(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 {
		t.Fatalf("duplicate frame delivered: got %d triples, want 1", len(in))
	}
	_ = ts
}

// TestTCPCleanCloseVsCorruption: a peer closing its connection at a frame
// boundary is normal (re-dial retires old conns); garbage mid-stream must
// surface as an error on the next operation, not be swallowed.
func TestTCPCleanCloseVsCorruption(t *testing.T) {
	dict, _ := newDictWithTriples(1)

	t.Run("clean close is silent", func(t *testing.T) {
		tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		// Dial worker 1's listener directly, hello, then close cleanly.
		conn, err := net.Dial("tcp", tr.addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		hello := frameHeader{Type: typeHello, From: 0, To: 1, Seq: 7}
		if err := binary.Write(conn, binary.BigEndian, hello); err != nil {
			t.Fatal(err)
		}
		ack := make([]byte, 1)
		if _, err := io.ReadFull(conn, ack); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		time.Sleep(20 * time.Millisecond)
		if _, err := tr.Recv(context.Background(), 0, 1); err != nil {
			t.Fatalf("clean close surfaced as error: %v", err)
		}
	})

	t.Run("mid-stream garbage surfaces", func(t *testing.T) {
		tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			// Close returns the buffered corruption error; don't fail on it.
			_ = tr.Close()
		}()
		conn, err := net.Dial("tcp", tr.addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// A torn header: 10 bytes then close, not a multiple of the frame
		// header size — binary.Read fails with ErrUnexpectedEOF mid-frame.
		if _, err := conn.Write(make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, err := tr.Recv(context.Background(), 0, 1); err != nil {
				break // surfaced — the fix under test
			}
			if time.Now().After(deadline) {
				t.Fatal("mid-stream corruption never surfaced on Recv")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})

	t.Run("oversized frame length is malformed", func(t *testing.T) {
		tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = tr.Close() }()
		conn, err := net.Dial("tcp", tr.addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		bad := frameHeader{Type: typeData, From: 0, To: 1, Seq: 1, Len: maxFrame + 1}
		if err := binary.Write(conn, binary.BigEndian, bad); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, err := tr.Recv(context.Background(), 0, 1); err != nil {
				if !errors.Is(err, ErrMalformed) {
					t.Fatalf("expected ErrMalformed, got %v", err)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("oversized frame never surfaced")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestTCPHealthHeartbeat: the heartbeat loop must keep Health fresh on idle
// links, and a severed link must heal without any Send traffic.
func TestTCPHealthHeartbeat(t *testing.T) {
	dict, _ := newDictWithTriples(1)
	tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		h := tr.Health()
		if !h[0].IsZero() && !h[1].IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeats never populated Health: %v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}

	tr.DropLink(0, 1)
	before := tr.Redials()
	deadline = time.Now().Add(2 * time.Second)
	for tr.Redials() == before {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never re-dialed the dropped link")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPSendPoisonedConnRedials: a Send that fails mid-frame must mark the
// connection broken and succeed by re-dialing, never interleave into the
// old stream. Simulated by closing the raw conn out from under the link.
func TestTCPSendPoisonedConnRedials(t *testing.T) {
	dict, ts := newDictWithTriples(4)
	tr, err := NewTCPWithConfig(2, dict, TCPConfig{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()

	if err := tr.Send(ctx, 0, 0, 1, ts[:2]); err != nil {
		t.Fatal(err)
	}
	// Break the socket without telling the link, as a network fault would.
	l := tr.links[0][1]
	l.mu.Lock()
	l.conn.Close()
	l.mu.Unlock()

	if err := tr.Send(ctx, 1, 0, 1, ts[2:]); err != nil {
		t.Fatalf("send on poisoned conn did not recover: %v", err)
	}
	in, err := tr.Recv(ctx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 2 {
		t.Fatalf("expected 2 triples after redial, got %d", len(in))
	}
	if tr.Redials() == 0 {
		t.Fatal("poisoned conn was reused instead of re-dialed")
	}
}
