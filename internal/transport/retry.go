package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
)

// Classify reports whether an error is transient — worth retrying — as
// opposed to fatal. The distinction drives Retry: a transient Send/Recv
// failure is retried with backoff; a fatal one aborts the run immediately.
type Classify func(err error) bool

// DefaultClassify is the stock transient/fatal split:
//
//   - malformed payloads (ErrMalformed) are fatal: the bytes are corrupt and
//     will be corrupt on every retry;
//   - context cancellation and deadline expiry are fatal: the caller asked
//     to stop;
//   - errors exposing `Transient() bool` (e.g. injected faults from
//     internal/faultinject) answer for themselves;
//   - TCP-level failures — connection resets, broken pipes, refused or timed
//     out connections, truncated frames — are transient;
//   - file-system EAGAIN/EINTR (shared-FS under load) are transient;
//   - net.Error timeouts are transient;
//   - everything else is fatal.
func DefaultClassify(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrMalformed) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	for _, e := range []error{
		syscall.ECONNRESET, syscall.EPIPE, syscall.ECONNREFUSED,
		syscall.ECONNABORTED, syscall.ETIMEDOUT,
		syscall.EAGAIN, syscall.EINTR,
		io.ErrUnexpectedEOF, io.ErrClosedPipe,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return false
}

// RetryConfig tunes a Retry wrapper. The zero value is usable: 4 attempts,
// 1ms base delay doubling to a 100ms cap, DefaultClassify, deterministic
// jitter.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per operation (1 = no
	// retries). 0 means 4.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry; it doubles
	// per attempt. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff. 0 means 100ms.
	MaxDelay time.Duration
	// Classify decides transient vs fatal; nil means DefaultClassify.
	Classify Classify
	// Seed seeds the jitter source so retry schedules are reproducible.
	Seed int64
	// OnRetry, if set, observes every retry decision (for logs and tests).
	OnRetry func(op string, attempt int, err error)
}

// Retry wraps a Transport with bounded retry + exponential backoff + jitter
// for transient Send/Recv failures. Fatal errors (per Classify) and
// exhausted budgets surface to the caller unchanged, wrapped with attempt
// context.
type Retry struct {
	inner Transport
	cfg   RetryConfig

	// Obs, when non-nil, receives every retry decision and backoff sleep
	// (in addition to the wrapper's own Stats counters).
	Obs *obs.TransportRecorder

	mu       sync.Mutex
	rng      *rand.Rand
	retries  int
	attempts int64
	slept    time.Duration
}

// RetryStats is the wrapper's cumulative cost accounting.
type RetryStats struct {
	// Attempts counts every inner-operation invocation, first tries
	// included; Attempts - (Sends+Recvs that succeeded first try) is paid
	// redundantly.
	Attempts int64
	// Retries counts re-invocations after a transient failure.
	Retries int64
	// BackoffSleep is the total time spent sleeping between attempts.
	BackoffSleep time.Duration
}

// NewRetry wraps inner. See RetryConfig for defaults.
func NewRetry(inner Transport, cfg RetryConfig) *Retry {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Millisecond
	}
	if cfg.Classify == nil {
		cfg.Classify = DefaultClassify
	}
	return &Retry{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Transport.
func (r *Retry) Name() string { return r.inner.Name() + "+retry" }

// Retries reports how many individual retries the wrapper has performed.
func (r *Retry) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Attempts reports the total number of inner-operation invocations, first
// tries included.
func (r *Retry) Attempts() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// Stats returns the wrapper's cumulative attempt/retry/backoff accounting.
func (r *Retry) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RetryStats{Attempts: r.attempts, Retries: int64(r.retries), BackoffSleep: r.slept}
}

// Send implements Transport. Re-sending a batch is safe because delivery is
// deduplicated downstream: receivers absorb triples through Graph.Add, so a
// batch that was delivered and then re-sent only costs bandwidth.
func (r *Retry) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	return r.do(ctx, "send", func() error {
		return r.inner.Send(ctx, round, from, to, ts)
	})
}

// Recv implements Transport.
func (r *Retry) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	var out []rdf.Triple
	err := r.do(ctx, "recv", func() error {
		var e error
		out, e = r.inner.Recv(ctx, round, to)
		return e
	})
	return out, err
}

// Close implements Transport.
func (r *Retry) Close() error { return r.inner.Close() }

// DropLink forwards to the inner transport when it is a LinkDropper, so
// fault injection reaches through the wrapper.
func (r *Retry) DropLink(from, to int) bool {
	if d, ok := r.inner.(LinkDropper); ok {
		return d.DropLink(from, to)
	}
	return false
}

// Health forwards to the inner transport when it is a HealthReporter; a
// non-reporting inner transport yields nil.
func (r *Retry) Health() map[int]time.Time {
	if h, ok := r.inner.(HealthReporter); ok {
		return h.Health()
	}
	return nil
}

func (r *Retry) do(ctx context.Context, op string, f func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		r.mu.Lock()
		r.attempts++
		r.mu.Unlock()
		err = f()
		if err == nil {
			return nil
		}
		if !r.cfg.Classify(err) {
			return err
		}
		if attempt >= r.cfg.MaxAttempts {
			return fmt.Errorf("transport: %s failed after %d attempts: %w", op, attempt, err)
		}
		if r.cfg.OnRetry != nil {
			r.cfg.OnRetry(op, attempt, err)
		}
		r.Obs.Retried(op)
		if werr := r.wait(ctx, attempt); werr != nil {
			return fmt.Errorf("transport: %s retry aborted: %w (last error: %v)", op, werr, err)
		}
	}
}

// wait sleeps the backoff for the given attempt (1-based), honoring ctx.
func (r *Retry) wait(ctx context.Context, attempt int) error {
	d := r.cfg.BaseDelay << (attempt - 1)
	if d > r.cfg.MaxDelay || d <= 0 {
		d = r.cfg.MaxDelay
	}
	// Jitter in [50%, 150%] from the seeded source, so concurrent retriers
	// decorrelate yet a given seed replays the same schedule.
	r.mu.Lock()
	r.retries++
	d = time.Duration(float64(d) * (0.5 + r.rng.Float64()))
	r.mu.Unlock()

	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		r.mu.Lock()
		r.slept += d
		r.mu.Unlock()
		r.Obs.Slept(d)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
