package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
)

// transientErr satisfies the Transient() interface DefaultClassify probes,
// so the flaky transport below is retried without importing faultinject
// (which would cycle back into this package).
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// flakyMem wraps Mem, failing the first failSends Sends and failRecvs Recvs
// with a transient error.
type flakyMem struct {
	*Mem
	failSends, failRecvs int
}

func (f *flakyMem) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if f.failSends > 0 {
		f.failSends--
		return &transientErr{"flaky send"}
	}
	return f.Mem.Send(ctx, round, from, to, ts)
}

func (f *flakyMem) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if f.failRecvs > 0 {
		f.failRecvs--
		return nil, &transientErr{"flaky recv"}
	}
	return f.Mem.Recv(ctx, round, to)
}

// TestRetryStatsAccounting: Attempts counts every inner invocation (first
// tries included), Retries counts only the re-invocations, and BackoffSleep
// accumulates the time spent waiting between them.
func TestRetryStatsAccounting(t *testing.T) {
	_, ts := newDictWithTriples(3)
	inner := &flakyMem{Mem: NewMem(), failSends: 2, failRecvs: 1}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 8, BaseDelay: time.Microsecond, Seed: 1})
	defer r.Close()

	ctx := context.Background()
	if err := r.Send(ctx, 0, 0, 1, ts); err != nil {
		t.Fatal(err)
	}
	got, err := r.Recv(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("recv returned %d triples, want %d", len(got), len(ts))
	}

	// Send: 2 failures + 1 success = 3 attempts. Recv: 1 failure + 1
	// success = 2 attempts.
	st := r.Stats()
	if st.Attempts != 5 || r.Attempts() != 5 {
		t.Errorf("attempts = %d (accessor %d), want 5", st.Attempts, r.Attempts())
	}
	if st.Retries != 3 || r.Retries() != 3 {
		t.Errorf("retries = %d (accessor %d), want 3", st.Retries, r.Retries())
	}
	if st.BackoffSleep <= 0 {
		t.Errorf("backoff sleep = %v, want > 0", st.BackoffSleep)
	}
}

// TestRetryObsWiring: the Obs recorder sees every retry decision and sleep,
// and FlushProfiles turns them into journal retry events per operation.
func TestRetryObsWiring(t *testing.T) {
	_, ts := newDictWithTriples(2)
	sink := &obs.MemSink{}
	run := obs.NewRun(sink, obs.NewRegistry())

	inner := &flakyMem{Mem: NewMem(), failSends: 1, failRecvs: 2}
	r := NewRetry(inner, RetryConfig{MaxAttempts: 8, BaseDelay: time.Microsecond, Seed: 1})
	r.Obs = run.Transport()
	defer r.Close()

	ctx := context.Background()
	if err := r.Send(ctx, 0, 0, 0, ts); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Recv(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}

	run.FlushProfiles(run.Now())
	retried := map[string]int64{}
	var slept int64
	for _, e := range sink.Events() {
		if e.Type == obs.EvRetry {
			retried[e.Name] = e.N
			slept = e.Dur
		}
	}
	if retried["send"] != 1 {
		t.Errorf("journaled send retries = %d, want 1", retried["send"])
	}
	if retried["recv"] != 2 {
		t.Errorf("journaled recv retries = %d, want 2", retried["recv"])
	}
	if slept <= 0 {
		t.Errorf("journaled backoff sleep = %d, want > 0", slept)
	}
	if got := run.Registry.Counter("transport.retries.recv").Value(); got != 2 {
		t.Errorf("registry recv retry counter = %d, want 2", got)
	}
}

// TestRetryFatalNotCounted: a fatal (non-transient) error must surface
// immediately with no retries charged.
func TestRetryFatalNotCounted(t *testing.T) {
	r := NewRetry(&fatalMem{Mem: NewMem()}, RetryConfig{BaseDelay: time.Microsecond})
	defer r.Close()
	_, ts := newDictWithTriples(1)
	err := r.Send(context.Background(), 0, 0, 1, ts)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("expected ErrMalformed, got %v", err)
	}
	st := r.Stats()
	if st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want exactly one attempt and zero retries", st)
	}
}

type fatalMem struct{ *Mem }

func (f *fatalMem) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	return ErrMalformed
}
