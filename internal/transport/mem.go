package transport

import (
	"context"
	"fmt"
	"sync"

	"powl/internal/obs"
	"powl/internal/rdf"
)

// Mem is the shared-memory transport: batches are appended to per-receiver
// buffers under a mutex, and Recv drains them. Triples travel as interned
// IDs, so there is no serialization cost — matching the shared-memory
// communication the paper switched to for the rule-partitioning runs.
type Mem struct {
	// Obs, when non-nil, receives one Batch call per delivered message
	// (bytes are 0: interned IDs are never serialized).
	Obs *obs.TransportRecorder

	mu    sync.Mutex
	boxes map[boxKey][]rdf.Triple
	lins  map[boxKey][]rdf.Lineage
}

type boxKey struct {
	round, to int
}

// NewMem returns an empty in-memory transport.
func NewMem() *Mem {
	return &Mem{boxes: map[boxKey][]rdf.Triple{}}
}

// Name implements Transport.
func (*Mem) Name() string { return "mem" }

// Send implements Transport.
func (m *Mem) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ts) == 0 {
		return nil
	}
	m.Obs.Batch(from, to, len(ts), 0)
	m.mu.Lock()
	defer m.mu.Unlock()
	k := boxKey{round, to}
	m.boxes[k] = append(m.boxes[k], ts...)
	return nil
}

// SendLineage implements LineageCarrier: lineage rides in a parallel set
// of boxes keyed like the triple boxes. Records are deep-ish copies already
// (Lineage carries triples by value; the Prem slice is appended, not
// aliased, by the shipper), so the box just accumulates them.
func (m *Mem) SendLineage(ctx context.Context, round, from, to int, lins []rdf.Lineage) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(lins) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lins == nil {
		m.lins = map[boxKey][]rdf.Lineage{}
	}
	k := boxKey{round, to}
	m.lins[k] = append(m.lins[k], lins...)
	return nil
}

// RecvLineage implements LineageCarrier.
func (m *Mem) RecvLineage(ctx context.Context, round, to int) ([]rdf.Lineage, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := boxKey{round, to}
	ls := m.lins[k]
	delete(m.lins, k)
	return ls, nil
}

// Recv implements Transport.
func (m *Mem) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := boxKey{round, to}
	ts := m.boxes[k]
	delete(m.boxes, k)
	return ts, nil
}

// Close implements Transport.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Lineage is advisory metadata: a receiver that runs without provenance
	// never drains its lineage boxes, and that is not a delivery failure.
	m.lins = nil
	if len(m.boxes) > 0 {
		n := 0
		for _, b := range m.boxes {
			n += len(b)
		}
		m.boxes = map[boxKey][]rdf.Triple{}
		return fmt.Errorf("transport/mem: %d undelivered triples at close", n)
	}
	return nil
}
