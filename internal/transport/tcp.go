package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/rdf"
)

// TCP is the MPI-like transport: a full mesh of loopback TCP connections,
// one per ordered worker pair. Each message is a length-prefixed N-Triples
// payload; the receiver parses and re-interns it, acknowledging each frame
// so that a completed Send implies the triples are already in the receiving
// inbox — which is what lets the cluster barrier double as delivery
// guarantee. Compared with File it removes the filesystem round trip, which
// is exactly the improvement the paper projects from switching to MPI (§VI-B).
type TCP struct {
	// Obs, when non-nil, receives one Batch call per sent message with the
	// serialized frame payload size (self-sends carry interned IDs, 0 bytes).
	Obs *obs.TransportRecorder

	dict  *rdf.Dict
	k     int
	mu    sync.Mutex
	inbox map[boxKey][]rdf.Triple
	errs  []error

	listeners []net.Listener
	conns     [][]net.Conn // conns[from][to], nil on the diagonal
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewTCP builds the k-worker mesh on loopback ephemeral ports.
func NewTCP(k int, dict *rdf.Dict) (*TCP, error) {
	t := &TCP{
		dict:  dict,
		k:     k,
		inbox: map[boxKey][]rdf.Triple{},
		conns: make([][]net.Conn, k),
	}
	for i := range t.conns {
		t.conns[i] = make([]net.Conn, k)
	}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport/tcp: listen: %w", err)
		}
		t.listeners = append(t.listeners, ln)
		addrs[i] = ln.Addr().String()
	}
	// Accept loops: each worker j accepts k-1 peers; the first frame on a
	// connection is a hello carrying the sender index.
	for j := 0; j < k; j++ {
		ln := t.listeners[j]
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for n := 0; n < t.k-1; n++ {
				conn, err := ln.Accept()
				if err != nil {
					return // closed
				}
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					t.readLoop(conn)
				}()
			}
		}()
	}
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", addrs[to])
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport/tcp: dial %d->%d: %w", from, to, err)
			}
			t.conns[from][to] = conn
		}
	}
	return t, nil
}

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// frame header: round, to, payload length (big endian int32s).
type frameHeader struct {
	Round, To, Len int32
}

// Send implements Transport. Self-sends short-circuit through the inbox.
// Any error buffered by an async readLoop (corrupted frame, truncated
// payload) surfaces here rather than being silently dropped.
func (t *TCP) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := t.firstErr(); err != nil {
		return err
	}
	if len(ts) == 0 {
		return nil
	}
	if from == to {
		t.deliver(round, to, ts)
		t.Obs.Batch(from, to, len(ts), 0)
		return nil
	}
	var buf bytes.Buffer
	w := ntriples.NewWriter(&buf, t.dict)
	if err := w.WriteAll(ts); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	conn := t.conns[from][to]
	if conn == nil {
		return fmt.Errorf("transport/tcp: no connection %d->%d", from, to)
	}
	// A context deadline bounds the whole frame exchange, ack included.
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
		defer conn.SetDeadline(time.Time{})
	}
	hdr := frameHeader{Round: int32(round), To: int32(to), Len: int32(buf.Len())}
	if err := binary.Write(conn, binary.BigEndian, hdr); err != nil {
		return err
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		return err
	}
	// Wait for the ack so delivery precedes the cluster barrier.
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		return fmt.Errorf("transport/tcp: ack %d->%d: %w", from, to, err)
	}
	t.Obs.Batch(from, to, len(ts), int64(buf.Len()))
	return nil
}

func (t *TCP) readLoop(conn net.Conn) {
	for {
		var hdr frameHeader
		if err := binary.Read(conn, binary.BigEndian, &hdr); err != nil {
			return // peer closed
		}
		payload := make([]byte, hdr.Len)
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.fail(err)
			return
		}
		g := rdf.NewGraph()
		if _, err := ntriples.ReadGraph(bytes.NewReader(payload), t.dict, g); err != nil {
			t.fail(fmt.Errorf("transport/tcp: %w: %v", ErrMalformed, err))
			return
		}
		t.deliver(int(hdr.Round), int(hdr.To), g.Triples())
		if _, err := conn.Write([]byte{1}); err != nil {
			return
		}
	}
}

func (t *TCP) deliver(round, to int, ts []rdf.Triple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := boxKey{round, to}
	t.inbox[k] = append(t.inbox[k], ts...)
}

func (t *TCP) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, err)
}

// firstErr returns the first error buffered by the async read loops, if any.
func (t *TCP) firstErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return nil, t.errs[0]
	}
	k := boxKey{round, to}
	ts := t.inbox[k]
	delete(t.inbox, k)
	return ts, nil
}

// Close implements Transport, tearing down the mesh.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		for _, ln := range t.listeners {
			ln.Close()
		}
		for _, row := range t.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
		t.wg.Wait()
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}
