package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/rdf"
)

// TCP is the MPI-like transport: a full mesh of loopback TCP connections,
// one per ordered worker pair. Each message is a length-prefixed N-Triples
// payload; the receiver parses and re-interns it, acknowledging each frame
// so that a completed Send implies the triples are already in the receiving
// inbox — which is what lets the cluster barrier double as delivery
// guarantee. Compared with File it removes the filesystem round trip, which
// is exactly the improvement the paper projects from switching to MPI (§VI-B).
//
// Unlike the original fail-stop mesh, the connection layer is survivable:
//
//   - Every connection opens with a session hello carrying
//     (worker, epoch, round), so the acceptor knows who is talking and which
//     incarnation of the link this is.
//   - A Send whose connection breaks mid-frame marks the link broken and
//     re-dials with bounded exponential backoff, then resends the frame.
//   - Frames carry a per-sender sequence number; the receiver deduplicates
//     on (round, from, seq), so a frame resent after a lost ack is delivered
//     exactly once.
//   - A heartbeat goroutine per link probes idle connections and feeds the
//     Health view, so a failure detector can distinguish a dead peer from a
//     quiet one.
//
// Mid-stream corruption (truncated payloads, unparseable triples, garbage
// headers) is still fatal: re-dialing cannot repair corrupt bytes, so those
// errors are buffered and surface on the next Send/Recv as ErrMalformed-
// class failures.
type TCP struct {
	// Obs, when non-nil, receives one Batch call per sent message with the
	// serialized frame payload size (self-sends carry interned IDs, 0 bytes)
	// and one Redialed call per link reconnection.
	Obs *obs.TransportRecorder

	cfg  TCPConfig
	dict *rdf.Dict
	k    int

	mu       sync.Mutex
	inbox    map[boxKey][]rdf.Triple
	seen     map[frameKey]struct{}
	errs     []error
	contact  map[int]time.Time // worker -> last proof of life on any link
	accepted []net.Conn
	redials  atomic.Int64
	seqs     []atomic.Int64 // per-sender frame sequence counters

	addrs     []string
	listeners []net.Listener
	links     [][]*link // links[from][to], nil on the diagonal
	wg        sync.WaitGroup
	stop      chan struct{}
	closeOnce sync.Once
}

// TCPConfig tunes the reconnecting mesh. The zero value is usable.
type TCPConfig struct {
	// MaxRedials bounds how many times one Send re-dials a broken link
	// before giving up; 0 means 4.
	MaxRedials int
	// RedialBackoff is the sleep before the first re-dial, doubling per
	// attempt; 0 means 2ms.
	RedialBackoff time.Duration
	// DialTimeout bounds one dial + hello exchange; 0 means 2s.
	DialTimeout time.Duration
	// AckTimeout bounds one frame exchange (write + ack) when the caller's
	// context carries no tighter deadline; 0 means 10s.
	AckTimeout time.Duration
	// HeartbeatInterval is the idle-link probe period feeding Health;
	// 0 means 500ms, negative disables heartbeats.
	HeartbeatInterval time.Duration
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MaxRedials <= 0 {
		c.MaxRedials = 4
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 2 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	return c
}

// link is the sender side of one ordered pair's connection. Its mutex
// serializes frame exchanges (a frame and its ack must not interleave with
// another sender-side exchange on the same connection).
type link struct {
	from, to int

	mu    sync.Mutex
	conn  net.Conn
	epoch int32 // dial count, announced in the session hello
	round int32 // last round this link carried (for hello/heartbeat frames)
}

// frame types.
const (
	typeData      int32 = 0 // length-prefixed N-Triples payload
	typeHello     int32 = 1 // session hello: From = worker, Seq = epoch, Round = sender round
	typeHeartbeat int32 = 2 // liveness probe, no payload
)

// frameHeader precedes every frame (big-endian int32s).
type frameHeader struct {
	Type, Round, From, To, Seq, Len int32
}

// maxFrame bounds a frame payload; larger Len values are treated as header
// corruption rather than honored with a giant allocation.
const maxFrame = 1 << 28

// frameKey dedups delivered data frames: a frame resent after a lost ack
// carries the same (round, from, seq) and is delivered exactly once.
type frameKey struct {
	round, from, seq int32
}

// NewTCP builds the k-worker mesh on loopback ephemeral ports with default
// tuning.
func NewTCP(k int, dict *rdf.Dict) (*TCP, error) {
	return NewTCPWithConfig(k, dict, TCPConfig{})
}

// NewTCPWithConfig builds the k-worker mesh with explicit tuning.
func NewTCPWithConfig(k int, dict *rdf.Dict, cfg TCPConfig) (*TCP, error) {
	t := &TCP{
		cfg:     cfg.withDefaults(),
		dict:    dict,
		k:       k,
		inbox:   map[boxKey][]rdf.Triple{},
		seen:    map[frameKey]struct{}{},
		contact: map[int]time.Time{},
		seqs:    make([]atomic.Int64, k),
		addrs:   make([]string, k),
		links:   make([][]*link, k),
		stop:    make(chan struct{}),
	}
	for i := range t.links {
		t.links[i] = make([]*link, k)
	}
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport/tcp: listen: %w", err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[i] = ln.Addr().String()
	}
	// Accept loops: each worker accepts connections for as long as the mesh
	// lives — a re-dialing peer shows up as a fresh connection with a fresh
	// session hello, not just at startup.
	for j := 0; j < k; j++ {
		ln := t.listeners[j]
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed
				}
				t.mu.Lock()
				t.accepted = append(t.accepted, conn)
				t.mu.Unlock()
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					t.readLoop(conn)
				}()
			}
		}()
	}
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			if from == to {
				continue
			}
			l := &link{from: from, to: to}
			t.links[from][to] = l
			l.mu.Lock()
			err := t.dialLocked(l)
			l.mu.Unlock()
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("transport/tcp: dial %d->%d: %w", from, to, err)
			}
			if t.cfg.HeartbeatInterval > 0 {
				t.wg.Add(1)
				go t.heartbeatLoop(l)
			}
		}
	}
	return t, nil
}

// Name implements Transport.
func (*TCP) Name() string { return "tcp" }

// dialLocked (re-)establishes l's connection and completes the session
// hello exchange. The caller holds l.mu.
func (t *TCP) dialLocked(l *link) error {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	conn, err := net.DialTimeout("tcp", t.addrs[l.to], t.cfg.DialTimeout)
	if err != nil {
		return err
	}
	l.epoch++
	hello := frameHeader{Type: typeHello, Round: l.round,
		From: int32(l.from), To: int32(l.to), Seq: l.epoch}
	conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	if err := binary.Write(conn, binary.BigEndian, hello); err != nil {
		conn.Close()
		return err
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Time{})
	l.conn = conn
	// Every dial after the link's first is a reconnection, whichever path
	// triggered it (send retry, next send after a drop, heartbeat probe).
	if l.epoch > 1 {
		t.redials.Add(1)
		t.Obs.Redialed(l.from, l.to)
	}
	return nil
}

// breakLocked marks the link broken so the next exchange re-dials; a conn
// that failed mid-frame must never be reused — the stream may hold a
// half-written frame, and interleaving a fresh frame into it would corrupt
// the peer's read loop. The caller holds l.mu.
func (l *link) breakLocked() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}

// DropLink severs the from->to connection as a running network fault would:
// the conn is closed under the link lock, and the next Send on the pair must
// re-dial. It reports whether there was a live connection to drop. Fault
// injection uses this to exercise the reconnect path end to end.
func (t *TCP) DropLink(from, to int) bool {
	if from < 0 || to < 0 || from >= t.k || to >= t.k || from == to {
		return false
	}
	l := t.links[from][to]
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return false
	}
	l.breakLocked()
	return true
}

// exchangeLocked performs one frame exchange — header, optional payload,
// ack — under the deadline from ctx (tightened by AckTimeout). The caller
// holds l.mu.
func (t *TCP) exchangeLocked(ctx context.Context, l *link, hdr frameHeader, payload []byte) error {
	deadline := time.Now().Add(t.cfg.AckTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	l.conn.SetDeadline(deadline)
	defer l.conn.SetDeadline(time.Time{})
	if err := binary.Write(l.conn, binary.BigEndian, hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := l.conn.Write(payload); err != nil {
			return err
		}
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(l.conn, ack); err != nil {
		return fmt.Errorf("ack: %w", err)
	}
	return nil
}

// Send implements Transport. Self-sends short-circuit through the inbox.
// A broken connection is re-dialed with bounded backoff and the frame is
// resent under the same sequence number (the receiver deduplicates), so a
// dropped link costs a reconnect, not the run. Any error buffered by an
// async readLoop (corrupted frame, truncated payload) surfaces here rather
// than being silently dropped.
func (t *TCP) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := t.firstErr(); err != nil {
		return err
	}
	if len(ts) == 0 {
		return nil
	}
	if from == to {
		t.deliver(round, to, ts)
		t.Obs.Batch(from, to, len(ts), 0)
		return nil
	}
	var buf bytes.Buffer
	w := ntriples.NewWriter(&buf, t.dict)
	if err := w.WriteAll(ts); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	hdr := frameHeader{Type: typeData, Round: int32(round),
		From: int32(from), To: int32(to),
		Seq: int32(t.seqs[from].Add(1)), Len: int32(buf.Len())}

	l := t.links[from][to]
	l.mu.Lock()
	defer l.mu.Unlock()
	l.round = int32(round)
	var lastErr error
	for attempt := 0; attempt <= t.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoffDelay(t.cfg.RedialBackoff, attempt)); err != nil {
				return fmt.Errorf("transport/tcp: send %d->%d: %w (last error: %v)", from, to, err, lastErr)
			}
		}
		if l.conn == nil {
			if err := t.dialLocked(l); err != nil {
				lastErr = err
				continue
			}
		}
		if err := t.exchangeLocked(ctx, l, hdr, buf.Bytes()); err != nil {
			// The stream may hold a half-written frame: poison this conn so
			// the next attempt (and the next Send) re-dials instead of
			// interleaving into a corrupt stream.
			l.breakLocked()
			lastErr = err
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("transport/tcp: send %d->%d round %d: %w", from, to, round, cerr)
			}
			continue
		}
		t.touch(to)
		t.Obs.Batch(from, to, len(ts), int64(buf.Len()))
		return nil
	}
	return fmt.Errorf("transport/tcp: send %d->%d round %d failed after %d redials: %w",
		from, to, round, t.cfg.MaxRedials, lastErr)
}

// backoffDelay is the pre-dial sleep before the attempt-th redial (1-based),
// doubling from base and capped at 64×.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	return base << shift
}

// sleepCtx sleeps d unless ctx fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// heartbeatLoop probes l at the configured interval so Health stays current
// on idle links. A failed probe breaks the connection (the next Send
// re-dials); the loop itself then re-dials on its next tick, so a healed
// network shows up in Health without any Send traffic.
func (t *TCP) heartbeatLoop(l *link) {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
		}
		// TryLock: if the link is busy sending, it is visibly alive and the
		// probe is redundant this tick.
		if !l.mu.TryLock() {
			continue
		}
		if l.conn == nil {
			if err := t.dialLocked(l); err != nil {
				l.mu.Unlock()
				continue
			}
		}
		hdr := frameHeader{Type: typeHeartbeat, Round: l.round,
			From: int32(l.from), To: int32(l.to), Seq: l.epoch}
		deadline := time.Now().Add(t.cfg.HeartbeatInterval)
		l.conn.SetDeadline(deadline)
		err := binary.Write(l.conn, binary.BigEndian, hdr)
		if err == nil {
			ack := make([]byte, 1)
			_, err = io.ReadFull(l.conn, ack)
		}
		if err != nil {
			l.breakLocked()
		} else {
			l.conn.SetDeadline(time.Time{})
			t.touch(l.to)
		}
		l.mu.Unlock()
	}
}

// touch records proof of life for a worker (an acked exchange with it, or a
// frame received from it).
func (t *TCP) touch(worker int) {
	t.mu.Lock()
	t.contact[worker] = time.Now()
	t.mu.Unlock()
}

// Health returns, per worker, the last time the mesh had proof of life for
// it: a frame or heartbeat received from it, or an acked exchange with it.
// A failure detector compares these against its deadline to tell dead peers
// from quiet ones.
func (t *TCP) Health() map[int]time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]time.Time, len(t.contact))
	for w, ts := range t.contact {
		out[w] = ts
	}
	return out
}

// Redials reports how many link reconnections the mesh has performed.
func (t *TCP) Redials() int64 { return t.redials.Load() }

// readLoop consumes one accepted connection. A clean peer close — EOF at a
// frame boundary — ends the loop silently: that is how a re-dialing peer
// retires its old connection. Anything else mid-stream (truncated header or
// payload, unparseable triples, garbage frame type) is corruption and is
// recorded via t.fail so the next Send/Recv surfaces it.
func (t *TCP) readLoop(conn net.Conn) {
	peer := -1
	for {
		var hdr frameHeader
		if err := binary.Read(conn, binary.BigEndian, &hdr); err != nil {
			if err == io.EOF || errors.Is(err, net.ErrClosed) {
				return // clean close at a frame boundary
			}
			t.fail(fmt.Errorf("transport/tcp: header from peer %d: %w", peer, err))
			return
		}
		switch hdr.Type {
		case typeHello:
			peer = int(hdr.From)
			t.touch(peer)
		case typeHeartbeat:
			peer = int(hdr.From)
			t.touch(peer)
		case typeData:
			if hdr.Len < 0 || hdr.Len > maxFrame {
				t.fail(fmt.Errorf("transport/tcp: %w: frame length %d from peer %d",
					ErrMalformed, hdr.Len, peer))
				return
			}
			payload := make([]byte, hdr.Len)
			if _, err := io.ReadFull(conn, payload); err != nil {
				t.fail(fmt.Errorf("transport/tcp: payload from peer %d: %w", peer, err))
				return
			}
			peer = int(hdr.From)
			t.touch(peer)
			key := frameKey{hdr.Round, hdr.From, hdr.Seq}
			if !t.alreadySeen(key) {
				g := rdf.NewGraph()
				if _, err := ntriples.ReadGraph(bytes.NewReader(payload), t.dict, g); err != nil {
					t.fail(fmt.Errorf("transport/tcp: %w: %v", ErrMalformed, err))
					return
				}
				t.markSeen(key)
				t.deliver(int(hdr.Round), int(hdr.To), g.TriplesSince(0))
			}
		default:
			t.fail(fmt.Errorf("transport/tcp: %w: unknown frame type %d from peer %d",
				ErrMalformed, hdr.Type, peer))
			return
		}
		if _, err := conn.Write([]byte{1}); err != nil {
			return // sender will observe the lost ack and re-dial
		}
	}
}

// alreadySeen reports whether a data frame was delivered before (a resend
// after a lost ack).
func (t *TCP) alreadySeen(key frameKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.seen[key]
	return ok
}

func (t *TCP) markSeen(key frameKey) {
	t.mu.Lock()
	t.seen[key] = struct{}{}
	t.mu.Unlock()
}

func (t *TCP) deliver(round, to int, ts []rdf.Triple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := boxKey{round, to}
	t.inbox[k] = append(t.inbox[k], ts...)
}

func (t *TCP) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, err)
}

// firstErr returns the first error buffered by the async read loops, if any.
func (t *TCP) firstErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return nil, t.errs[0]
	}
	k := boxKey{round, to}
	ts := t.inbox[k]
	delete(t.inbox, k)
	return ts, nil
}

// Close implements Transport, tearing down the mesh: heartbeats stop,
// listeners close (ending the accept loops), and every connection — dialed
// and accepted — is closed, ending the read loops.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		close(t.stop)
		for _, ln := range t.listeners {
			ln.Close()
		}
		for _, row := range t.links {
			for _, l := range row {
				if l == nil {
					continue
				}
				l.mu.Lock()
				l.breakLocked()
				l.mu.Unlock()
			}
		}
		t.mu.Lock()
		accepted := t.accepted
		t.accepted = nil
		t.mu.Unlock()
		for _, c := range accepted {
			c.Close()
		}
		t.wg.Wait()
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}
