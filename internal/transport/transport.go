// Package transport provides the inter-partition communication mechanisms
// of the parallel reasoner. The paper's implementation exchanged tuples
// through a shared file system (§V) and, for the rule-partitioning
// experiments, through shared memory (§VI-D); it discusses MPI as the
// obvious upgrade. This package offers all three shapes:
//
//   - Mem:  shared-memory exchange over in-process buffers (zero-copy IDs).
//   - File: a shared directory; every message is an N-Triples file, so
//     serialization and disk IO are paid exactly as in the paper.
//   - TCP:  an MPI-like full mesh of loopback TCP connections carrying
//     length-prefixed N-Triples payloads.
//
// The exchange is round-structured: during round r each worker may Send any
// number of batches; the cluster layer then runs a barrier, after which
// every worker Recvs the batches addressed to it for round r. Transports
// must deliver exactly-once within a round and must not block Send (the
// receiver may not Recv until after the barrier).
//
// Every operation takes a context: cancelling it aborts the operation (and
// with it the run), and a context deadline bounds how long a single
// Send/Recv may take — the enforcement point for per-round deadlines.
// Transient failures (connection resets, EAGAIN) can be absorbed by
// wrapping any transport in Retry; see Classify for how transient and
// fatal errors are told apart.
package transport

import (
	"context"
	"errors"
	"time"

	"powl/internal/rdf"
)

// ErrMalformed marks a payload that arrived but failed to parse. Malformed
// payloads are fatal: retrying cannot repair corrupt bytes, so Classify
// functions must never treat an error wrapping ErrMalformed as transient.
var ErrMalformed = errors.New("transport: malformed payload")

// Transport moves triples between workers of one parallel run.
type Transport interface {
	// Name identifies the transport in reports ("mem", "file", "tcp").
	Name() string
	// Send queues ts from worker `from` to worker `to` during `round`.
	// It must not block waiting for the receiver. A cancelled or expired
	// ctx aborts the send with the context's error.
	Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error
	// Recv returns everything sent to worker `to` in `round`. The cluster
	// layer guarantees all Sends of the round happened before (barrier).
	Recv(ctx context.Context, round, to int) ([]rdf.Triple, error)
	// Close releases transport resources after the run.
	Close() error
}

// LineageCarrier is implemented by transports that can ship derivation
// lineage alongside the triples of a round. Lineage records are
// self-contained (rdf.Lineage carries premise triples by value), so the
// receiver re-resolves them against its own log; records are matched to
// received triples by triple value, not by position, and a transport that
// does not implement the interface simply degrades the run to
// lineage-free exchange — the closure is unaffected.
//
// SendLineage must be called only for triples of a Send in the same round
// and must not block; RecvLineage returns everything addressed to `to` in
// `round`, after the same barrier that orders Recv.
type LineageCarrier interface {
	SendLineage(ctx context.Context, round, from, to int, lins []rdf.Lineage) error
	RecvLineage(ctx context.Context, round, to int) ([]rdf.Lineage, error)
}

// LinkDropper is implemented by connection-oriented transports whose
// per-pair links can be severed at runtime — fault injection uses it to
// exercise the reconnect path. DropLink reports whether a live connection
// was actually dropped.
type LinkDropper interface {
	DropLink(from, to int) bool
}

// HealthReporter is implemented by transports that track peer liveness
// (heartbeats, acked exchanges). Health returns, per worker id, the last
// time the transport had proof of life for it; workers never heard from are
// absent. Failure detectors consult it alongside round progress.
type HealthReporter interface {
	Health() map[int]time.Time
}
