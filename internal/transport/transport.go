// Package transport provides the inter-partition communication mechanisms
// of the parallel reasoner. The paper's implementation exchanged tuples
// through a shared file system (§V) and, for the rule-partitioning
// experiments, through shared memory (§VI-D); it discusses MPI as the
// obvious upgrade. This package offers all three shapes:
//
//   - Mem:  shared-memory exchange over in-process buffers (zero-copy IDs).
//   - File: a shared directory; every message is an N-Triples file, so
//     serialization and disk IO are paid exactly as in the paper.
//   - TCP:  an MPI-like full mesh of loopback TCP connections carrying
//     length-prefixed N-Triples payloads.
//
// The exchange is round-structured: during round r each worker may Send any
// number of batches; the cluster layer then runs a barrier, after which
// every worker Recvs the batches addressed to it for round r. Transports
// must deliver exactly-once within a round and must not block Send (the
// receiver may not Recv until after the barrier).
package transport

import "powl/internal/rdf"

// Transport moves triples between workers of one parallel run.
type Transport interface {
	// Name identifies the transport in reports ("mem", "file", "tcp").
	Name() string
	// Send queues ts from worker `from` to worker `to` during `round`.
	// It must not block waiting for the receiver.
	Send(round, from, to int, ts []rdf.Triple) error
	// Recv returns everything sent to worker `to` in `round`. The cluster
	// layer guarantees all Sends of the round happened before (barrier).
	Recv(round, to int) ([]rdf.Triple, error)
	// Close releases transport resources after the run.
	Close() error
}
