package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"powl/internal/rdf"
)

// newDictWithTriples interns n distinct triples for tests.
func newDictWithTriples(n int) (*rdf.Dict, []rdf.Triple) {
	dict := rdf.NewDict()
	ts := make([]rdf.Triple, n)
	p := dict.InternIRI("http://t/p")
	for i := range ts {
		ts[i] = rdf.Triple{
			S: dict.InternIRI(fmt.Sprintf("http://t/s%d", i)),
			P: p,
			O: dict.InternLiteral(fmt.Sprintf(`"v%d"`, i)),
		}
	}
	return dict, ts
}

// transports returns one instance of each transport kind for k workers.
func transports(t *testing.T, k int, dict *rdf.Dict) []Transport {
	t.Helper()
	file, err := NewFile(t.TempDir(), dict)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := NewTCP(k, dict)
	if err != nil {
		t.Fatal(err)
	}
	return []Transport{NewMem(), file, tcp}
}

func tripleSet(ts []rdf.Triple) map[rdf.Triple]int {
	m := map[rdf.Triple]int{}
	for _, t := range ts {
		m[t]++
	}
	return m
}

func TestSendRecvRoundTrip(t *testing.T) {
	dict, ts := newDictWithTriples(10)
	for _, tr := range transports(t, 3, dict) {
		// Worker 0 and 2 both send to worker 1 in round 0.
		if err := tr.Send(context.Background(), 0, 0, 1, ts[:4]); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if err := tr.Send(context.Background(), 0, 2, 1, ts[4:7]); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		got, err := tr.Recv(context.Background(), 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		want := tripleSet(ts[:7])
		gotSet := tripleSet(got)
		for k := range want {
			if gotSet[k] == 0 {
				t.Errorf("%s: triple missing after round trip", tr.Name())
			}
		}
		if len(got) != 7 {
			t.Errorf("%s: received %d triples, want 7", tr.Name(), len(got))
		}
		// Worker 0 received nothing.
		if got, _ := tr.Recv(context.Background(), 0, 0); len(got) != 0 {
			t.Errorf("%s: worker 0 received %d unexpected triples", tr.Name(), len(got))
		}
		if err := tr.Close(); err != nil {
			t.Errorf("%s: close: %v", tr.Name(), err)
		}
	}
}

func TestRoundsAreIsolated(t *testing.T) {
	dict, ts := newDictWithTriples(6)
	for _, tr := range transports(t, 2, dict) {
		tr.Send(context.Background(), 0, 0, 1, ts[:2])
		tr.Send(context.Background(), 1, 0, 1, ts[2:5])
		r0, _ := tr.Recv(context.Background(), 0, 1)
		r1, _ := tr.Recv(context.Background(), 1, 1)
		if len(r0) != 2 || len(r1) != 3 {
			t.Errorf("%s: rounds mixed: %d/%d", tr.Name(), len(r0), len(r1))
		}
		tr.Close()
	}
}

func TestRecvDrains(t *testing.T) {
	_, ts := newDictWithTriples(3)
	for _, tr := range []Transport{NewMem()} {
		tr.Send(context.Background(), 0, 0, 1, ts)
		first, _ := tr.Recv(context.Background(), 0, 1)
		second, _ := tr.Recv(context.Background(), 0, 1)
		if len(first) != 3 || len(second) != 0 {
			t.Errorf("%s: Recv did not drain (%d then %d)", tr.Name(), len(first), len(second))
		}
		tr.Close()
	}
}

func TestEmptySendIsNoop(t *testing.T) {
	dict, _ := newDictWithTriples(1)
	for _, tr := range transports(t, 2, dict) {
		if err := tr.Send(context.Background(), 0, 0, 1, nil); err != nil {
			t.Errorf("%s: empty send errored: %v", tr.Name(), err)
		}
		if got, _ := tr.Recv(context.Background(), 0, 1); len(got) != 0 {
			t.Errorf("%s: empty send delivered %d triples", tr.Name(), len(got))
		}
		tr.Close()
	}
}

func TestConcurrentSenders(t *testing.T) {
	dict, ts := newDictWithTriples(64)
	for _, tr := range transports(t, 8, dict) {
		var wg sync.WaitGroup
		for from := 0; from < 8; from++ {
			if from == 3 {
				continue
			}
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				// Each sender ships its own slice of 8 triples to worker 3.
				if err := tr.Send(context.Background(), 0, from, 3, ts[from*8:from*8+8]); err != nil {
					t.Errorf("%s: %v", tr.Name(), err)
				}
			}(from)
		}
		wg.Wait()
		got, err := tr.Recv(context.Background(), 0, 3)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if len(got) != 56 {
			t.Errorf("%s: received %d triples, want 56", tr.Name(), len(got))
		}
		tr.Close()
	}
}

func TestMemCloseReportsUndelivered(t *testing.T) {
	dict, ts := newDictWithTriples(2)
	_ = dict
	m := NewMem()
	m.Send(context.Background(), 0, 0, 1, ts)
	if err := m.Close(); err == nil {
		t.Fatal("Close with undelivered triples did not error")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close should be clean: %v", err)
	}
}

func TestFileTransportPersistsAsNTriples(t *testing.T) {
	dict, ts := newDictWithTriples(4)
	dir := t.TempDir()
	f, err := NewFile(dir, dict)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(context.Background(), 2, 1, 0, ts); err != nil {
		t.Fatal(err)
	}
	got, err := f.Recv(context.Background(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d triples", len(got))
	}
	// Receiving for a round where nothing was sent must not error.
	if got, err := f.Recv(context.Background(), 7, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty round: %v %v", got, err)
	}
	f.Close()
}

func TestTCPSelfSend(t *testing.T) {
	dict, ts := newDictWithTriples(3)
	tr, err := NewTCP(2, dict)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(context.Background(), 0, 1, 1, ts); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Recv(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("self-send delivered %d", len(got))
	}
}

func TestTransportNames(t *testing.T) {
	dict, _ := newDictWithTriples(1)
	trs := transports(t, 2, dict)
	names := map[string]bool{}
	for _, tr := range trs {
		names[tr.Name()] = true
		tr.Close()
	}
	for _, want := range []string{"mem", "file", "tcp"} {
		if !names[want] {
			t.Errorf("missing transport %q", want)
		}
	}
}

func TestLargePayload(t *testing.T) {
	dict, _ := newDictWithTriples(1)
	big := make([]rdf.Triple, 20000)
	p := dict.InternIRI("http://t/p")
	for i := range big {
		big[i] = rdf.Triple{
			S: dict.InternIRI(fmt.Sprintf("http://t/big/s%d", i)),
			P: p,
			O: dict.InternIRI(fmt.Sprintf("http://t/big/o%d", i)),
		}
	}
	for _, tr := range transports(t, 2, dict) {
		if err := tr.Send(context.Background(), 0, 0, 1, big); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		got, err := tr.Recv(context.Background(), 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if len(got) != len(big) {
			t.Errorf("%s: %d of %d triples arrived", tr.Name(), len(got), len(big))
		}
		tr.Close()
	}
}
