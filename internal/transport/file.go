package transport

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/rdf"
)

// File is the shared-filesystem transport of the paper's implementation
// (§V): every message is written as an N-Triples file into a shared
// directory and parsed back by the receiver. The full serialize/write/
// read/parse cost is paid, which is what the paper measures as "IO" in its
// overhead breakdown (Figure 2).
type File struct {
	// Obs, when non-nil, receives one Batch call per message file written,
	// with the file's on-disk byte size.
	Obs *obs.TransportRecorder

	dir  string
	dict *rdf.Dict
	mu   sync.Mutex
	seq  map[[3]int]int // (round, from, to) -> next file sequence number
}

// NewFile returns a file transport rooted at dir (created if needed); dict
// resolves IDs for serialization and re-interns on receive.
func NewFile(dir string, dict *rdf.Dict) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("transport/file: %w", err)
	}
	return &File{dir: dir, dict: dict, seq: map[[3]int]int{}}, nil
}

// Name implements Transport.
func (*File) Name() string { return "file" }

// Send implements Transport. Messages are written to
// dir/r<round>/m_<from>_<to>_<seq>.nt; the final name appears atomically via
// rename so a concurrent Recv never observes a partial file.
func (f *File) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(ts) == 0 {
		return nil
	}
	rdir := filepath.Join(f.dir, fmt.Sprintf("r%d", round))
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		return err
	}
	key := [3]int{round, from, to}
	f.mu.Lock()
	seq := f.seq[key]
	f.seq[key] = seq + 1
	f.mu.Unlock()
	tmp := filepath.Join(rdir, fmt.Sprintf(".tmp_%d_%d_%d", from, to, seq))
	final := filepath.Join(rdir, fmt.Sprintf("m_%d_%d_%d.nt", from, to, seq))

	w, err := os.Create(tmp)
	if err != nil {
		return err
	}
	nw := ntriples.NewWriter(w, f.dict)
	if err := nw.WriteAll(ts); err != nil {
		w.Close()
		return err
	}
	if err := nw.Flush(); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if f.Obs != nil {
		var size int64
		if fi, err := os.Stat(final); err == nil {
			size = fi.Size()
		}
		f.Obs.Batch(from, to, len(ts), size)
	}
	return nil
}

// Recv implements Transport: it parses every m_*_<to>_*.nt file of the round
// addressed to this worker.
func (f *File) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rdir := filepath.Join(f.dir, fmt.Sprintf("r%d", round))
	entries, err := os.ReadDir(rdir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // nothing was sent this round
		}
		return nil, err
	}
	var out []rdf.Triple
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var from, dst, seq int
		if n, _ := fmt.Sscanf(e.Name(), "m_%d_%d_%d.nt", &from, &dst, &seq); n != 3 || dst != to {
			continue
		}
		r, err := os.Open(filepath.Join(rdir, e.Name()))
		if err != nil {
			return nil, err
		}
		g := rdf.NewGraph()
		_, perr := ntriples.ReadGraph(r, f.dict, g)
		r.Close()
		if perr != nil {
			// A file that exists (rename is atomic) but does not parse is
			// corrupt, not in flight: retrying cannot help.
			return nil, fmt.Errorf("transport/file: %s: %w: %v", e.Name(), ErrMalformed, perr)
		}
		out = append(out, g.TriplesSince(0)...)
	}
	return out, nil
}

// Close implements Transport, removing the message directory.
func (f *File) Close() error { return os.RemoveAll(f.dir) }
