// Package gpart implements a multilevel k-way graph partitioner in the style
// of METIS (Karypis & Kumar): heavy-edge-matching coarsening, greedy region
// growing on the coarsest graph, and boundary Kernighan–Lin/FM refinement
// during uncoarsening. The paper's graph-based data-partitioning policy and
// its rule-dependency partitioning (Algorithms 1 and 2) both call into this
// package.
//
// The objective is the standard one: minimize the weight of cut edges
// subject to the per-part vertex-weight balance constraint
// maxLoad ≤ (1+ε)·totalWeight/k.
package gpart

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected graph with weighted vertices and edges, in CSR
// (compressed adjacency) form. Build one with a Builder.
type Graph struct {
	n       int
	vweight []int64
	xadj    []int32 // len n+1; adjacency of v is adjncy[xadj[v]:xadj[v+1]]
	adjncy  []int32
	adjwgt  []int64
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// VWeight returns the weight of vertex v.
func (g *Graph) VWeight(v int) int64 { return g.vweight[v] }

// TotalVWeight returns the sum of all vertex weights.
func (g *Graph) TotalVWeight() int64 {
	var s int64
	for _, w := range g.vweight {
		s += w
	}
	return s
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.xadj[v+1] - g.xadj[v]) }

// ForEachNeighbor calls fn(u, w) for each neighbor u of v with edge weight w.
func (g *Graph) ForEachNeighbor(v int, fn func(u int, w int64)) {
	for i := g.xadj[v]; i < g.xadj[v+1]; i++ {
		fn(int(g.adjncy[i]), g.adjwgt[i])
	}
}

// Builder accumulates an undirected graph; parallel edges merge by summing
// weights, and self-loops are dropped.
type Builder struct {
	vweight []int64
	adj     []map[int32]int64
}

// NewBuilder returns a builder for a graph with n vertices of unit weight.
func NewBuilder(n int) *Builder {
	b := &Builder{vweight: make([]int64, n), adj: make([]map[int32]int64, n)}
	for i := range b.vweight {
		b.vweight[i] = 1
	}
	return b
}

// SetVWeight sets the weight of vertex v.
func (b *Builder) SetVWeight(v int, w int64) { b.vweight[v] = w }

// AddEdge adds an undirected edge {u, v} with weight w, merging with any
// existing edge.
func (b *Builder) AddEdge(u, v int, w int64) {
	if u == v {
		return
	}
	if b.adj[u] == nil {
		b.adj[u] = map[int32]int64{}
	}
	if b.adj[v] == nil {
		b.adj[v] = map[int32]int64{}
	}
	b.adj[u][int32(v)] += w
	b.adj[v][int32(u)] += w
}

// Build finalizes the graph into CSR form.
func (b *Builder) Build() *Graph {
	n := len(b.vweight)
	g := &Graph{n: n, vweight: b.vweight, xadj: make([]int32, n+1)}
	total := 0
	for _, m := range b.adj {
		total += len(m)
	}
	g.adjncy = make([]int32, 0, total)
	g.adjwgt = make([]int64, 0, total)
	for v := 0; v < n; v++ {
		g.xadj[v] = int32(len(g.adjncy))
		// Deterministic neighbor order.
		keys := make([]int32, 0, len(b.adj[v]))
		for u := range b.adj[v] {
			keys = append(keys, u)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, u := range keys {
			g.adjncy = append(g.adjncy, u)
			g.adjwgt = append(g.adjwgt, b.adj[v][u])
		}
	}
	g.xadj[n] = int32(len(g.adjncy))
	return g
}

// Options tunes the partitioner.
type Options struct {
	// Imbalance is ε in the balance constraint; 0 means the default 0.05.
	Imbalance float64
	// Seed seeds the (deterministic) pseudo-random choices.
	Seed int64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices; 0 means max(24·k, 128).
	CoarsenTo int
	// RefinePasses bounds FM passes per level; 0 means 8.
	RefinePasses int
}

func (o Options) withDefaults(k int) Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 24 * k
		if o.CoarsenTo < 128 {
			o.CoarsenTo = 128
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// Partition divides g into k parts, returning part[v] ∈ [0,k) for each
// vertex. It errors if k < 1 or k > g.N().
func Partition(g *Graph, k int, opts Options) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("gpart: k must be ≥ 1, got %d", k)
	}
	if g.n == 0 {
		return nil, nil
	}
	if k > g.n {
		return nil, fmt.Errorf("gpart: k=%d exceeds vertex count %d", k, g.n)
	}
	if k == 1 {
		return make([]int, g.n), nil
	}
	opts = opts.withDefaults(k)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Coarsening phase.
	levels := []*level{{g: g}}
	for levels[len(levels)-1].g.n > opts.CoarsenTo {
		cur := levels[len(levels)-1]
		next, ok := coarsen(cur.g, rng)
		if !ok {
			break // matching stalled; give up shrinking
		}
		cur.matchMap = next.fineToCoarse
		levels = append(levels, &level{g: next.g})
	}

	// Initial partition on the coarsest graph.
	coarsest := levels[len(levels)-1]
	part := growPartition(coarsest.g, k, rng)
	refine(coarsest.g, part, k, opts)

	// Uncoarsen + refine.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		finePart := make([]int, fine.g.n)
		for v := 0; v < fine.g.n; v++ {
			finePart[v] = part[fine.matchMap[v]]
		}
		part = finePart
		refine(fine.g, part, k, opts)
	}
	rebalance(g, part, k, opts)
	return part, nil
}

// rebalance enforces a lower load bound at the finest level: FM refinement
// keeps parts under the (1+ε) cap but can leave some parts starved, which
// translates directly into idle processors. Greedily move the
// cheapest-to-move boundary vertices from the heaviest parts into any part
// below (1−ε)·average until no part is starved (or no legal move remains).
func rebalance(g *Graph, part []int, k int, opts Options) {
	loads := make([]int64, k)
	for v := 0; v < g.n; v++ {
		loads[part[v]] += g.vweight[v]
	}
	avg := float64(g.TotalVWeight()) / float64(k)
	low := int64(avg * (1 - opts.Imbalance))
	for iter := 0; iter < 4*g.n; iter++ {
		// Find the most starved part.
		dst := -1
		for p := 0; p < k; p++ {
			if loads[p] < low && (dst == -1 || loads[p] < loads[dst]) {
				dst = p
			}
		}
		if dst == -1 {
			return
		}
		// Move the vertex with the smallest cut damage from any part above
		// average into dst; prefer vertices adjacent to dst.
		bestV, bestCost := -1, int64(1<<62)
		for v := 0; v < g.n; v++ {
			home := part[v]
			if home == dst || float64(loads[home]-g.vweight[v]) < avg*(1-opts.Imbalance) {
				continue
			}
			var internal, toDst int64
			g.ForEachNeighbor(v, func(u int, w int64) {
				switch part[u] {
				case home:
					internal += w
				case dst:
					toDst += w
				}
			})
			cost := internal - toDst
			if cost < bestCost {
				bestV, bestCost = v, cost
			}
		}
		if bestV == -1 {
			return // nothing movable without starving the source
		}
		loads[part[bestV]] -= g.vweight[bestV]
		loads[dst] += g.vweight[bestV]
		part[bestV] = dst
	}
}

type level struct {
	g        *Graph
	matchMap []int32 // fine vertex -> coarse vertex (set on all but coarsest)
}

type coarseResult struct {
	g            *Graph
	fineToCoarse []int32
}

// coarsen contracts a heavy-edge matching. It reports ok=false when the
// graph barely shrinks (matching stalled, e.g. star graphs).
func coarsen(g *Graph, rng *rand.Rand) (coarseResult, bool) {
	match := make([]int32, g.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.n)
	matched := 0
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, int64(-1)
		g.ForEachNeighbor(v, func(u int, w int64) {
			if match[u] == -1 && w > bestW {
				bestU, bestW = u, w
			}
		})
		if bestU >= 0 {
			match[v] = int32(bestU)
			match[bestU] = int32(v)
			matched += 2
		} else {
			match[v] = int32(v)
		}
	}
	coarseN := g.n - matched/2
	if float64(coarseN) > 0.95*float64(g.n) {
		return coarseResult{}, false
	}

	fineToCoarse := make([]int32, g.n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	next := int32(0)
	for v := 0; v < g.n; v++ {
		if fineToCoarse[v] != -1 {
			continue
		}
		fineToCoarse[v] = next
		if m := int(match[v]); m != v {
			fineToCoarse[m] = next
		}
		next++
	}

	cb := NewBuilder(int(next))
	for i := range cb.vweight {
		cb.vweight[i] = 0
	}
	for v := 0; v < g.n; v++ {
		cv := int(fineToCoarse[v])
		cb.vweight[cv] += g.vweight[v]
		g.ForEachNeighbor(v, func(u int, w int64) {
			cu := int(fineToCoarse[u])
			if cv < cu { // add each undirected edge once
				cb.AddEdge(cv, cu, w)
			}
		})
	}
	return coarseResult{g: cb.Build(), fineToCoarse: fineToCoarse}, true
}

// growPartition produces an initial k-way partition by greedy region
// growing: repeatedly seed an empty part and absorb the frontier vertex with
// the strongest connection to the region until the part reaches its weight
// target.
func growPartition(g *Graph, k int, rng *rand.Rand) []int {
	part := make([]int, g.n)
	for i := range part {
		part[i] = -1
	}
	target := g.TotalVWeight() / int64(k)
	if target < 1 {
		target = 1
	}
	order := rng.Perm(g.n)
	oi := 0
	nextSeed := func() int {
		for oi < len(order) {
			v := order[oi]
			oi++
			if part[v] == -1 {
				return v
			}
		}
		return -1
	}
	for p := 0; p < k; p++ {
		seed := nextSeed()
		if seed < 0 {
			break
		}
		load := int64(0)
		// conn[v] = total edge weight from v into the growing region.
		conn := map[int]int64{seed: 1}
		for load < target && len(conn) > 0 {
			// Pick the frontier vertex with maximal connection
			// (deterministic tie-break on index).
			bestV, bestW := -1, int64(-1)
			for v, w := range conn {
				if w > bestW || (w == bestW && v < bestV) {
					bestV, bestW = v, w
				}
			}
			v := bestV
			delete(conn, v)
			if part[v] != -1 {
				continue
			}
			part[v] = p
			load += g.vweight[v]
			g.ForEachNeighbor(v, func(u int, w int64) {
				if part[u] == -1 {
					conn[u] += w
				}
			})
		}
	}
	// Leftovers (disconnected remainder or exhausted seeds): assign to the
	// lightest part.
	loads := make([]int64, k)
	for v := 0; v < g.n; v++ {
		if part[v] >= 0 {
			loads[part[v]] += g.vweight[v]
		}
	}
	for v := 0; v < g.n; v++ {
		if part[v] == -1 {
			best := 0
			for p := 1; p < k; p++ {
				if loads[p] < loads[best] {
					best = p
				}
			}
			part[v] = best
			loads[best] += g.vweight[v]
		}
	}
	return part
}

// refine runs boundary FM passes: move boundary vertices to the neighboring
// part with the highest positive gain, subject to the balance constraint.
// Each pass never increases the cut; passes stop at opts.RefinePasses or when
// a pass makes no move.
func refine(g *Graph, part []int, k int, opts Options) {
	maxLoad := int64(float64(g.TotalVWeight())*(1+opts.Imbalance)/float64(k)) + 1
	loads := make([]int64, k)
	for v := 0; v < g.n; v++ {
		loads[part[v]] += g.vweight[v]
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := 0
		for v := 0; v < g.n; v++ {
			home := part[v]
			// Edge weight from v to each adjacent part.
			var internal int64
			ext := map[int]int64{}
			g.ForEachNeighbor(v, func(u int, w int64) {
				if part[u] == home {
					internal += w
				} else {
					ext[part[u]] += w
				}
			})
			bestP, bestGain := -1, int64(0)
			for p, w := range ext {
				gain := w - internal
				if gain > bestGain && loads[p]+g.vweight[v] <= maxLoad {
					bestP, bestGain = p, gain
				}
			}
			// Also allow zero-gain moves that strictly improve balance;
			// they reduce bal without hurting the cut.
			if bestP == -1 {
				for p, w := range ext {
					if w-internal == 0 && loads[p]+g.vweight[v] < loads[home] {
						bestP = p
						break
					}
				}
			}
			if bestP >= 0 {
				loads[home] -= g.vweight[v]
				loads[bestP] += g.vweight[v]
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// EdgeCut returns the total weight of edges whose endpoints lie in different
// parts.
func EdgeCut(g *Graph, part []int) int64 {
	var cut int64
	for v := 0; v < g.n; v++ {
		g.ForEachNeighbor(v, func(u int, w int64) {
			if u > v && part[u] != part[v] {
				cut += w
			}
		})
	}
	return cut
}

// Loads returns the vertex-weight load of each part.
func Loads(g *Graph, part []int, k int) []int64 {
	loads := make([]int64, k)
	for v := 0; v < g.n; v++ {
		loads[part[v]] += g.vweight[v]
	}
	return loads
}

// Imbalance returns maxLoad·k/totalWeight − 1 (0 means perfectly balanced).
func Imbalance(g *Graph, part []int, k int) float64 {
	loads := Loads(g, part, k)
	var max, total int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max)*float64(k)/float64(total) - 1
}
