package gpart

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRebalanceLowerBound: after Partition, no part may be starved far below
// the average on graphs with enough granularity.
func TestRebalanceLowerBound(t *testing.T) {
	g := randomGraph(400, 1200, 9)
	for _, k := range []int{4, 8} {
		part, err := Partition(g, k, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		loads := Loads(g, part, k)
		avg := float64(g.TotalVWeight()) / float64(k)
		for p, l := range loads {
			if float64(l) < 0.5*avg {
				t.Errorf("k=%d: part %d starved: load %d vs avg %.0f", k, p, l, avg)
			}
		}
	}
}

// TestCoarsenPreservesWeight: the coarsening step must conserve total vertex
// weight and total edge weight (within merged parallel edges).
func TestCoarsenPreservesWeight(t *testing.T) {
	g := randomGraph(300, 900, 11)
	rng := rand.New(rand.NewSource(1))
	res, ok := coarsen(g, rng)
	if !ok {
		t.Skip("matching stalled on this instance")
	}
	if res.g.TotalVWeight() != g.TotalVWeight() {
		t.Fatalf("coarsening changed total vertex weight: %d -> %d",
			g.TotalVWeight(), res.g.TotalVWeight())
	}
	if res.g.N() >= g.N() {
		t.Fatalf("coarsening did not shrink: %d -> %d", g.N(), res.g.N())
	}
	// Every fine vertex maps to a valid coarse vertex.
	for v := 0; v < g.N(); v++ {
		cv := res.fineToCoarse[v]
		if cv < 0 || int(cv) >= res.g.N() {
			t.Fatalf("vertex %d maps to invalid coarse vertex %d", v, cv)
		}
	}
}

// TestRefineNeverIncreasesCut: a refinement pass on a random partition must
// not make the cut worse.
func TestRefineNeverIncreasesCut(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(120, 360, seed)
		rng := rand.New(rand.NewSource(seed))
		k := 4
		part := make([]int, g.N())
		for i := range part {
			part[i] = rng.Intn(k)
		}
		before := EdgeCut(g, part)
		refine(g, part, k, Options{}.withDefaults(k))
		after := EdgeCut(g, part)
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionWeightedBalance: heavily weighted vertices spread out.
func TestPartitionWeightedBalance(t *testing.T) {
	b := NewBuilder(64)
	for i := 0; i < 64; i++ {
		b.AddEdge(i, (i+1)%64, 1)
	}
	// Four heavyweight vertices spaced around the ring.
	for _, v := range []int{0, 16, 32, 48} {
		b.SetVWeight(v, 50)
	}
	g := b.Build()
	part, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, v := range []int{0, 16, 32, 48} {
		counts[part[v]]++
	}
	for p, n := range counts {
		if n > 1 {
			t.Errorf("part %d holds %d heavy vertices; balanced placement requires 1 each", p, n)
		}
	}
}

// TestImbalanceMetric sanity.
func TestImbalanceMetric(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if imb := Imbalance(g, []int{0, 0, 0, 1}, 2); imb < 0.49 || imb > 0.51 {
		t.Fatalf("Imbalance = %f, want 0.5 (3 vs 1)", imb)
	}
	if Imbalance(g, []int{0, 0, 1, 1}, 2) != 0 {
		t.Fatal("balanced partition must have imbalance 0")
	}
}
