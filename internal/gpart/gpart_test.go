package gpart

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ring builds a cycle of n vertices.
func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1)
	}
	return b.Build()
}

// clusters builds k cliques of size m connected by single bridge edges — the
// easy case any partitioner must ace.
func clusters(k, m int) *Graph {
	b := NewBuilder(k * m)
	for c := 0; c < k; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				b.AddEdge(base+i, base+j, 1)
			}
		}
		if c > 0 {
			b.AddEdge(base-1, base, 1) // bridge
		}
	}
	return b.Build()
}

func TestBuilderMergesParallelEdgesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 3)
	b.AddEdge(2, 2, 5)
	g := b.Build()
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d; want 1,1", g.Degree(0), g.Degree(1))
	}
	var w int64
	g.ForEachNeighbor(0, func(u int, ew int64) { w = ew })
	if w != 5 {
		t.Fatalf("merged weight = %d, want 5", w)
	}
	if g.Degree(2) != 0 {
		t.Fatal("self loop survived")
	}
}

func TestPartitionValidatesK(t *testing.T) {
	g := ring(4)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(g, 5, Options{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestPartitionK1IsTrivial(t *testing.T) {
	part, err := Partition(ring(10), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range part {
		if p != 0 {
			t.Fatalf("vertex %d in part %d", v, p)
		}
	}
}

// TestPartitionCoversAndBalances checks the two hard invariants on several
// graph shapes: every vertex is assigned a valid part, and parts are
// reasonably balanced.
func TestPartitionCoversAndBalances(t *testing.T) {
	shapes := map[string]*Graph{
		"ring64":      ring(64),
		"clusters4x8": clusters(4, 8),
		"random":      randomGraph(200, 600, 3),
		"star":        star(50),
	}
	for name, g := range shapes {
		for _, k := range []int{2, 4, 8} {
			part, err := Partition(g, k, Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if len(part) != g.N() {
				t.Fatalf("%s k=%d: part len %d", name, k, len(part))
			}
			loads := Loads(g, part, k)
			var total int64
			for p, l := range loads {
				if l == 0 && g.N() >= 4*k {
					t.Errorf("%s k=%d: part %d is empty", name, k, p)
				}
				total += l
			}
			if total != g.TotalVWeight() {
				t.Fatalf("%s k=%d: loads sum %d != total %d (vertex lost or duplicated)", name, k, total, g.TotalVWeight())
			}
			for _, p := range part {
				if p < 0 || p >= k {
					t.Fatalf("%s k=%d: invalid part %d", name, k, p)
				}
			}
			// Generous balance bound; the refiner targets 5%.
			if imb := Imbalance(g, part, k); imb > 0.5 {
				t.Errorf("%s k=%d: imbalance %.2f too high", name, k, imb)
			}
		}
	}
}

// TestPartitionFindsClusters: on bridge-connected cliques the cut must be
// exactly the bridges.
func TestPartitionFindsClusters(t *testing.T) {
	g := clusters(4, 10)
	part, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, part); cut > 6 {
		t.Errorf("cut = %d on 4 near-disconnected cliques (3 bridges); want ≤ 6", cut)
	}
	// Each clique must land (almost) entirely in one part.
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		for v := c * 10; v < (c+1)*10; v++ {
			counts[part[v]]++
		}
		maxIn := 0
		for _, n := range counts {
			if n > maxIn {
				maxIn = n
			}
		}
		if maxIn < 9 {
			t.Errorf("clique %d split across parts: %v", c, counts)
		}
	}
}

func TestPartitionRespectsVertexWeights(t *testing.T) {
	// Two heavy vertices and many light ones: the heavy pair must not land
	// in the same part when k=2 and they dominate the weight.
	b := NewBuilder(10)
	b.SetVWeight(0, 100)
	b.SetVWeight(1, 100)
	for i := 2; i < 10; i++ {
		b.AddEdge(0, i, 1)
		b.AddEdge(1, i, 1)
	}
	b.AddEdge(0, 1, 1)
	g := b.Build()
	part, err := Partition(g, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if part[0] == part[1] {
		t.Errorf("both heavy vertices in part %d; imbalance %.2f", part[0], Imbalance(g, part, 2))
	}
}

func TestEdgeCutAndLoads(t *testing.T) {
	g := ring(4)
	part := []int{0, 0, 1, 1}
	if cut := EdgeCut(g, part); cut != 2 {
		t.Fatalf("EdgeCut = %d, want 2", cut)
	}
	loads := Loads(g, part, 2)
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("Loads = %v", loads)
	}
	if imb := Imbalance(g, part, 2); imb != 0 {
		t.Fatalf("Imbalance = %f, want 0", imb)
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	g := randomGraph(150, 400, 7)
	a, err := Partition(g, 4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

// TestPartitionProperty: for random graphs, the partition always covers all
// vertices with valid parts and never loses weight.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 10 + int(nRaw)%120
		k := 2 + int(kRaw)%6
		g := randomGraph(n, 3*n, seed)
		part, err := Partition(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		var total int64
		loads := Loads(g, part, k)
		for _, l := range loads {
			total += l
		}
		return total == g.TotalVWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), int64(1+rng.Intn(4)))
	}
	return b.Build()
}

func star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, 1)
	}
	return b.Build()
}
