package owlhorst

import (
	"fmt"
	"sort"

	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
	"powl/internal/vocab"
)

// Compiled is the result of compiling an ontology: the schema closure (to be
// replicated on every partition) and the instance rule set the workers run.
type Compiled struct {
	// Schema is the TBox closed under the meta rules.
	Schema *rdf.Graph
	// InstanceRules are the ground-schema rules. All are single-join rules
	// except those generated for owl:intersectionOf, whose body atoms all
	// share the one variable ?x — the "all but one" exception the paper
	// notes in §II.
	InstanceRules []rules.Rule
}

// Compile splits g into schema and instance triples, closes the schema under
// the OWL-Horst meta rules, and emits the instance rule set of the paper's
// hybrid strategy: one ground rule per schema axiom. The input graph is not
// modified.
func Compile(dict *rdf.Dict, g *rdf.Graph) *Compiled {
	v := newVocabIDs(dict)
	schema := rdf.NewGraph()
	for _, t := range g.TriplesSince(0) {
		if v.isSchemaTriple(dict, t) {
			schema.Add(t)
		}
	}
	reason.Forward{}.Materialize(schema, MetaRules(dict))
	return &Compiled{Schema: schema, InstanceRules: generate(dict, v, schema)}
}

// SplitInstance returns the instance (non-schema) triples of g, the inputs
// to data partitioning per Algorithm 1 step 1.
func SplitInstance(dict *rdf.Dict, g *rdf.Graph) []rdf.Triple {
	v := newVocabIDs(dict)
	var out []rdf.Triple
	for _, t := range g.TriplesSince(0) {
		if !v.isSchemaTriple(dict, t) {
			out = append(out, t)
		}
	}
	return out
}

// SchemaElements returns every resource that appears in the (closed) schema
// or in the vocabulary — classes, restriction nodes, properties. These are
// the "schema elements" of Algorithm 1 step 1: they occur in instance
// triples (e.g. as the object of rdf:type) but act as graph-wide hubs, so
// the data partitioner must not treat them as partitionable nodes; they are
// replicated everywhere instead.
func SchemaElements(dict *rdf.Dict, schema *rdf.Graph) map[rdf.ID]struct{} {
	out := map[rdf.ID]struct{}{}
	for _, t := range schema.TriplesSince(0) {
		out[t.S] = struct{}{}
		out[t.P] = struct{}{}
		out[t.O] = struct{}{}
	}
	// Vocabulary IRIs that may appear in instance triples even when the
	// schema never mentions them (e.g. rdf:type itself).
	for id := rdf.ID(1); int(id) <= dict.Len(); id++ {
		term := dict.Term(id)
		if term.Kind == rdf.IRI && vocab.IsSchemaIRI(term.Value) {
			out[id] = struct{}{}
		}
	}
	return out
}

// vocabIDs caches the interned IDs of the vocabulary terms consulted during
// compilation.
type vocabIDs struct {
	typ, subClassOf, subPropertyOf, domain, rng                rdf.ID
	equivClass, equivProp, inverseOf, sameAs                   rdf.ID
	transitive, symmetric, functional, inverseFunctional       rdf.ID
	onProperty, hasValue, someValuesFrom, allValuesFrom        rdf.ID
	intersectionOf, first, rest, nil_                          rdf.ID
	owlClass, rdfsClass, restriction, objectProp, datatypeProp rdf.ID
	rdfProperty, owlThing                                      rdf.ID
}

func newVocabIDs(dict *rdf.Dict) *vocabIDs {
	iri := dict.InternIRI
	return &vocabIDs{
		typ:               iri(vocab.RDFType),
		subClassOf:        iri(vocab.RDFSSubClassOf),
		subPropertyOf:     iri(vocab.RDFSSubPropertyOf),
		domain:            iri(vocab.RDFSDomain),
		rng:               iri(vocab.RDFSRange),
		equivClass:        iri(vocab.OWLEquivalentClass),
		equivProp:         iri(vocab.OWLEquivalentProperty),
		inverseOf:         iri(vocab.OWLInverseOf),
		sameAs:            iri(vocab.OWLSameAs),
		transitive:        iri(vocab.OWLTransitiveProperty),
		symmetric:         iri(vocab.OWLSymmetricProperty),
		functional:        iri(vocab.OWLFunctionalProperty),
		inverseFunctional: iri(vocab.OWLInverseFunctionalProperty),
		onProperty:        iri(vocab.OWLOnProperty),
		hasValue:          iri(vocab.OWLHasValue),
		someValuesFrom:    iri(vocab.OWLSomeValuesFrom),
		allValuesFrom:     iri(vocab.OWLAllValuesFrom),
		intersectionOf:    iri(vocab.OWLIntersectionOf),
		first:             iri(vocab.RDFFirst),
		rest:              iri(vocab.RDFRest),
		nil_:              iri(vocab.RDFNil),
		owlClass:          iri(vocab.OWLClass),
		rdfsClass:         iri(vocab.RDFSClass),
		restriction:       iri(vocab.OWLRestriction),
		objectProp:        iri(vocab.OWLObjectProperty),
		datatypeProp:      iri(vocab.OWLDatatypeProperty),
		rdfProperty:       iri(vocab.RDFProperty),
		owlThing:          iri(vocab.OWLThing),
	}
}

// isSchemaTriple reports whether t belongs to the ontology (TBox) rather
// than the instance data, per Algorithm 1 step 1 ("remove all the tuples
// involving the schema elements").
func (v *vocabIDs) isSchemaTriple(dict *rdf.Dict, t rdf.Triple) bool {
	switch t.P {
	case v.subClassOf, v.subPropertyOf, v.domain, v.rng, v.equivClass,
		v.equivProp, v.inverseOf, v.onProperty, v.hasValue,
		v.someValuesFrom, v.allValuesFrom, v.intersectionOf, v.first, v.rest:
		return true
	case v.typ:
		switch t.O {
		case v.transitive, v.symmetric, v.functional, v.inverseFunctional,
			v.owlClass, v.rdfsClass, v.restriction, v.objectProp,
			v.datatypeProp, v.rdfProperty:
			return true
		}
		return false
	default:
		// A predicate from a schema namespace (e.g. rdfs:label) counts as
		// schema metadata; instance predicates live in application
		// namespaces.
		term := dict.Term(t.P)
		return term.Kind == rdf.IRI && vocab.IsSchemaIRI(term.Value)
	}
}

// generate emits the instance rules for the closed schema, sorted by name:
// ForEachMatch iterates in map order, and a deterministic rule list is what
// makes compiled rule files and cluster runs reproducible across processes.
func generate(dict *rdf.Dict, v *vocabIDs, schema *rdf.Graph) []rules.Rule {
	var out []rules.Rule
	add := func(r rules.Rule) { out = append(out, r) }
	x, y, z := rules.Var("x"), rules.Var("y"), rules.Var("z")
	p := rules.Var("p")
	typeC := rules.Const(v.typ)
	sameC := rules.Const(v.sameAs)

	isVocab := func(id rdf.ID) bool {
		t := dict.Term(id)
		return t.Kind == rdf.IRI && vocab.IsSchemaIRI(t.Value)
	}

	// Subclass / subproperty / domain / range axioms.
	schema.ForEachMatch(rdf.Wildcard, v.subClassOf, rdf.Wildcard, func(t rdf.Triple) bool {
		if t.S != t.O && !isVocab(t.S) && !isVocab(t.O) {
			add(rules.Rule{
				Name: fmt.Sprintf("sc-%d-%d", t.S, t.O),
				Body: []rules.Atom{{S: x, P: typeC, O: rules.Const(t.S)}},
				Head: []rules.Atom{{S: x, P: typeC, O: rules.Const(t.O)}},
			})
		}
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.subPropertyOf, rdf.Wildcard, func(t rdf.Triple) bool {
		if t.S != t.O && !isVocab(t.S) && !isVocab(t.O) {
			add(rules.Rule{
				Name: fmt.Sprintf("sp-%d-%d", t.S, t.O),
				Body: []rules.Atom{{S: x, P: rules.Const(t.S), O: y}},
				Head: []rules.Atom{{S: x, P: rules.Const(t.O), O: y}},
			})
		}
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.domain, rdf.Wildcard, func(t rdf.Triple) bool {
		if !isVocab(t.S) {
			add(rules.Rule{
				Name: fmt.Sprintf("dom-%d-%d", t.S, t.O),
				Body: []rules.Atom{{S: x, P: rules.Const(t.S), O: y}},
				Head: []rules.Atom{{S: x, P: typeC, O: rules.Const(t.O)}},
			})
		}
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.rng, rdf.Wildcard, func(t rdf.Triple) bool {
		if !isVocab(t.S) {
			add(rules.Rule{
				Name: fmt.Sprintf("rng-%d-%d", t.S, t.O),
				Body: []rules.Atom{{S: x, P: rules.Const(t.S), O: y}},
				Head: []rules.Atom{{S: y, P: typeC, O: rules.Const(t.O)}},
			})
		}
		return true
	})

	// Property characteristics.
	schema.ForEachMatch(rdf.Wildcard, v.typ, v.transitive, func(t rdf.Triple) bool {
		pc := rules.Const(t.S)
		add(rules.Rule{
			Name: fmt.Sprintf("trans-%d", t.S),
			Body: []rules.Atom{{S: x, P: pc, O: y}, {S: y, P: pc, O: z}},
			Head: []rules.Atom{{S: x, P: pc, O: z}},
		})
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.typ, v.symmetric, func(t rdf.Triple) bool {
		pc := rules.Const(t.S)
		add(rules.Rule{
			Name: fmt.Sprintf("sym-%d", t.S),
			Body: []rules.Atom{{S: x, P: pc, O: y}},
			Head: []rules.Atom{{S: y, P: pc, O: x}},
		})
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.typ, v.functional, func(t rdf.Triple) bool {
		pc := rules.Const(t.S)
		add(rules.Rule{
			Name: fmt.Sprintf("func-%d", t.S),
			Body: []rules.Atom{{S: x, P: pc, O: y}, {S: x, P: pc, O: z}},
			Head: []rules.Atom{{S: y, P: sameC, O: z}},
		})
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.typ, v.inverseFunctional, func(t rdf.Triple) bool {
		pc := rules.Const(t.S)
		add(rules.Rule{
			Name: fmt.Sprintf("ifunc-%d", t.S),
			Body: []rules.Atom{{S: x, P: pc, O: z}, {S: y, P: pc, O: z}},
			Head: []rules.Atom{{S: x, P: sameC, O: y}},
		})
		return true
	})
	schema.ForEachMatch(rdf.Wildcard, v.inverseOf, rdf.Wildcard, func(t rdf.Triple) bool {
		pc, qc := rules.Const(t.S), rules.Const(t.O)
		add(rules.Rule{
			Name: fmt.Sprintf("inv-%d-%d", t.S, t.O),
			Body: []rules.Atom{{S: x, P: pc, O: y}},
			Head: []rules.Atom{{S: y, P: qc, O: x}},
		})
		add(rules.Rule{
			Name: fmt.Sprintf("inv-%d-%d-r", t.S, t.O),
			Body: []rules.Atom{{S: x, P: qc, O: y}},
			Head: []rules.Atom{{S: y, P: pc, O: x}},
		})
		return true
	})

	// Restrictions.
	schema.ForEachMatch(rdf.Wildcard, v.onProperty, rdf.Wildcard, func(t rdf.Triple) bool {
		r, prop := t.S, t.O
		rc, pc := rules.Const(r), rules.Const(prop)
		schema.ForEachMatch(r, v.hasValue, rdf.Wildcard, func(hv rdf.Triple) bool {
			vc := rules.Const(hv.O)
			add(rules.Rule{
				Name: fmt.Sprintf("hv1-%d", r),
				Body: []rules.Atom{{S: x, P: pc, O: vc}},
				Head: []rules.Atom{{S: x, P: typeC, O: rc}},
			})
			add(rules.Rule{
				Name: fmt.Sprintf("hv2-%d", r),
				Body: []rules.Atom{{S: x, P: typeC, O: rc}},
				Head: []rules.Atom{{S: x, P: pc, O: vc}},
			})
			return true
		})
		schema.ForEachMatch(r, v.someValuesFrom, rdf.Wildcard, func(sv rdf.Triple) bool {
			add(rules.Rule{
				Name: fmt.Sprintf("svf-%d", r),
				Body: []rules.Atom{{S: x, P: pc, O: y}, {S: y, P: typeC, O: rules.Const(sv.O)}},
				Head: []rules.Atom{{S: x, P: typeC, O: rc}},
			})
			return true
		})
		schema.ForEachMatch(r, v.allValuesFrom, rdf.Wildcard, func(av rdf.Triple) bool {
			add(rules.Rule{
				Name: fmt.Sprintf("avf-%d", r),
				Body: []rules.Atom{{S: x, P: typeC, O: rc}, {S: x, P: pc, O: y}},
				Head: []rules.Atom{{S: y, P: typeC, O: rules.Const(av.O)}},
			})
			return true
		})
		return true
	})

	// intersectionOf: C ≡ C1 ⊓ … ⊓ Cn. The membership-composition rule has
	// an n-atom body — the one non-single-join rule — but every body atom
	// shares ?x, so the ownership argument of §III-A still applies.
	schema.ForEachMatch(rdf.Wildcard, v.intersectionOf, rdf.Wildcard, func(t rdf.Triple) bool {
		members := listMembers(schema, v, t.O)
		if len(members) == 0 {
			return true
		}
		var body []rules.Atom
		for i, m := range members {
			body = append(body, rules.Atom{S: x, P: typeC, O: rules.Const(m)})
			add(rules.Rule{
				Name: fmt.Sprintf("int-%d-m%d", t.S, i),
				Body: []rules.Atom{{S: x, P: typeC, O: rules.Const(t.S)}},
				Head: []rules.Atom{{S: x, P: typeC, O: rules.Const(m)}},
			})
		}
		add(rules.Rule{
			Name: fmt.Sprintf("int-%d", t.S),
			Body: body,
			Head: []rules.Atom{{S: x, P: typeC, O: rules.Const(t.S)}},
		})
		return true
	})

	// owl:sameAs semantics is data-driven and always present.
	add(rules.Rule{
		Name: "same-sym",
		Body: []rules.Atom{{S: x, P: sameC, O: y}},
		Head: []rules.Atom{{S: y, P: sameC, O: x}},
	})
	add(rules.Rule{
		Name: "same-trans",
		Body: []rules.Atom{{S: x, P: sameC, O: y}, {S: y, P: sameC, O: z}},
		Head: []rules.Atom{{S: x, P: sameC, O: z}},
	})
	add(rules.Rule{
		Name: "same-subj",
		Body: []rules.Atom{{S: x, P: sameC, O: y}, {S: x, P: p, O: z}},
		Head: []rules.Atom{{S: y, P: p, O: z}},
	})
	add(rules.Rule{
		Name: "same-obj",
		Body: []rules.Atom{{S: x, P: sameC, O: y}, {S: z, P: p, O: x}},
		Head: []rules.Atom{{S: z, P: p, O: y}},
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// listMembers walks an rdf:first/rdf:rest list and returns its member IDs.
func listMembers(schema *rdf.Graph, v *vocabIDs, head rdf.ID) []rdf.ID {
	var out []rdf.ID
	seen := map[rdf.ID]struct{}{}
	cur := head
	for cur != v.nil_ {
		if _, dup := seen[cur]; dup {
			return out // malformed cyclic list; stop rather than loop
		}
		seen[cur] = struct{}{}
		first := schema.Match(cur, v.first, rdf.Wildcard)
		if len(first) == 0 {
			return out
		}
		out = append(out, first[0].O)
		rest := schema.Match(cur, v.rest, rdf.Wildcard)
		if len(rest) == 0 {
			return out
		}
		cur = rest[0].O
	}
	return out
}
