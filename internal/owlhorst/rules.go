// Package owlhorst implements the OWL-Horst (pD*) entailment regime of
// ter Horst (ISWC 2005) as a datalog rule set, together with the
// ontology-compilation step of the paper's §V: the schema (TBox) is closed
// under the meta rules and then compiled into instance rules in which every
// schema position is ground. The compiled rules are — with one documented
// exception (intersectionOf) — single-join rules, which is the property the
// paper's data-partitioning correctness argument rests on (§II, §III-A).
package owlhorst

import (
	"powl/internal/rdf"
	"powl/internal/rules"
)

// MetaRuleText is the OWL-Horst rule set over schema *and* instance triples,
// in the package rules syntax. These rules are applied directly by the
// generic forward engine, and drive the TBox closure during compilation.
//
// Deliberate omissions from full pD*: the reflexivity axioms (rdfs6/rdfs10,
// rdfp5a/b) which only add x⊑x / x sameAs x noise, and the rules for
// rdf:_n container membership properties. This matches what OWLIM and Jena's
// default OWL-Horst configurations ship.
const MetaRuleText = `
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .

# --- RDFS entailment -------------------------------------------------------
[rdfs2:  (?p rdfs:domain ?c) (?x ?p ?y) -> (?x rdf:type ?c)]
[rdfs3:  (?p rdfs:range ?c)  (?x ?p ?y) -> (?y rdf:type ?c)]
[rdfs5:  (?p rdfs:subPropertyOf ?q) (?q rdfs:subPropertyOf ?r) -> (?p rdfs:subPropertyOf ?r)]
[rdfs7:  (?p rdfs:subPropertyOf ?q) (?x ?p ?y) -> (?x ?q ?y)]
[rdfs9:  (?c rdfs:subClassOf ?d) (?x rdf:type ?c) -> (?x rdf:type ?d)]
[rdfs11: (?c rdfs:subClassOf ?d) (?d rdfs:subClassOf ?e) -> (?c rdfs:subClassOf ?e)]

# --- OWL property semantics (pD*) ------------------------------------------
[rdfp1:  (?p rdf:type owl:FunctionalProperty) (?x ?p ?y) (?x ?p ?z) -> (?y owl:sameAs ?z)]
[rdfp2:  (?p rdf:type owl:InverseFunctionalProperty) (?x ?p ?z) (?y ?p ?z) -> (?x owl:sameAs ?y)]
[rdfp3:  (?p rdf:type owl:SymmetricProperty) (?x ?p ?y) -> (?y ?p ?x)]
[rdfp4:  (?p rdf:type owl:TransitiveProperty) (?x ?p ?y) (?y ?p ?z) -> (?x ?p ?z)]
[rdfp6:  (?x owl:sameAs ?y) -> (?y owl:sameAs ?x)]
[rdfp7:  (?x owl:sameAs ?y) (?y owl:sameAs ?z) -> (?x owl:sameAs ?z)]
[rdfp8a: (?p owl:inverseOf ?q) (?x ?p ?y) -> (?y ?q ?x)]
[rdfp8b: (?p owl:inverseOf ?q) (?x ?q ?y) -> (?y ?p ?x)]
[rdfp11s: (?x owl:sameAs ?x2) (?x ?p ?y) -> (?x2 ?p ?y)]
[rdfp11o: (?y owl:sameAs ?y2) (?x ?p ?y) -> (?x ?p ?y2)]

# --- class/property equivalence --------------------------------------------
[rdfp12a: (?c owl:equivalentClass ?d) -> (?c rdfs:subClassOf ?d)]
[rdfp12b: (?c owl:equivalentClass ?d) -> (?d rdfs:subClassOf ?c)]
[rdfp12c: (?c rdfs:subClassOf ?d) (?d rdfs:subClassOf ?c) -> (?c owl:equivalentClass ?d)]
[rdfp13a: (?p owl:equivalentProperty ?q) -> (?p rdfs:subPropertyOf ?q)]
[rdfp13b: (?p owl:equivalentProperty ?q) -> (?q rdfs:subPropertyOf ?p)]
[rdfp13c: (?p rdfs:subPropertyOf ?q) (?q rdfs:subPropertyOf ?p) -> (?p owl:equivalentProperty ?q)]

# --- restrictions -----------------------------------------------------------
[rdfp14a: (?r owl:hasValue ?v) (?r owl:onProperty ?p) (?x ?p ?v) -> (?x rdf:type ?r)]
[rdfp14b: (?r owl:hasValue ?v) (?r owl:onProperty ?p) (?x rdf:type ?r) -> (?x ?p ?v)]
[rdfp15:  (?r owl:someValuesFrom ?d) (?r owl:onProperty ?p) (?x ?p ?y) (?y rdf:type ?d) -> (?x rdf:type ?r)]
[rdfp16:  (?r owl:allValuesFrom ?d) (?r owl:onProperty ?p) (?x rdf:type ?r) (?x ?p ?y) -> (?y rdf:type ?d)]
`

// MetaRules parses MetaRuleText against dict.
func MetaRules(dict *rdf.Dict) []rules.Rule {
	return rules.MustParse(MetaRuleText, dict)
}
