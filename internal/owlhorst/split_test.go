package owlhorst

import (
	"testing"

	"powl/internal/datagen"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// TestSplitCoversEverything: schema triples + instance triples partition
// the input graph exactly — nothing lost, nothing duplicated — for all
// three generators.
func TestSplitCoversEverything(t *testing.T) {
	datasets := []*datagen.Dataset{
		datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3}),
		datagen.UOBM(datagen.UOBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3}),
		datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7}),
	}
	for _, ds := range datasets {
		v := newVocabIDs(ds.Dict)
		instance := SplitInstance(ds.Dict, ds.Graph)
		nSchema := 0
		for _, tr := range ds.Graph.Triples() {
			if v.isSchemaTriple(ds.Dict, tr) {
				nSchema++
			}
		}
		if nSchema+len(instance) != ds.Graph.Len() {
			t.Errorf("%s: schema %d + instance %d != total %d",
				ds.Name, nSchema, len(instance), ds.Graph.Len())
		}
		// No instance triple classifies as schema.
		for _, tr := range instance {
			if v.isSchemaTriple(ds.Dict, tr) {
				t.Errorf("%s: instance triple classified as schema: %s",
					ds.Name, ds.Dict.FormatTriple(tr))
				break
			}
		}
	}
}

// TestSchemaElementsDisjointFromDataResources: ordinary entity IRIs must
// never be classified as schema elements (that would exempt them from
// ownership and silently shrink the partitioning problem).
func TestSchemaElementsDisjointFromDataResources(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
	cp := Compile(ds.Dict, ds.Graph)
	elems := SchemaElements(ds.Dict, cp.Schema)
	instance := SplitInstance(ds.Dict, ds.Graph)

	// Count how many instance subject/object occurrences are schema
	// elements; only type-objects (classes) should qualify.
	typ := ds.Dict.InternIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	for _, tr := range instance {
		if _, isSchema := elems[tr.S]; isSchema {
			t.Errorf("instance subject is a schema element: %s", ds.Dict.FormatTriple(tr))
			break
		}
		if _, isSchema := elems[tr.O]; isSchema && tr.P != typ {
			// Degrees/accreditors etc. are plain entities; only class IRIs
			// in type position should be schema.
			t.Errorf("non-type instance object is a schema element: %s", ds.Dict.FormatTriple(tr))
			break
		}
	}
}

// TestCompileIsIdempotent: compiling twice yields the same rule set and
// schema closure.
func TestCompileIsIdempotent(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 1, Seed: 7})
	a := Compile(ds.Dict, ds.Graph)
	b := Compile(ds.Dict, ds.Graph)
	if len(a.InstanceRules) != len(b.InstanceRules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.InstanceRules), len(b.InstanceRules))
	}
	if !a.Schema.Equal(b.Schema) {
		t.Fatal("schema closures differ")
	}
	for i := range a.InstanceRules {
		if a.InstanceRules[i].Name != b.InstanceRules[i].Name {
			t.Fatalf("rule order differs at %d: %s vs %s",
				i, a.InstanceRules[i].Name, b.InstanceRules[i].Name)
		}
	}
}

// TestRuleFormatRoundTrip: every compiled rule survives Format → Parse (the
// contract the shared-filesystem cluster's rule file relies on).
func TestRuleFormatRoundTrip(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2})
	cp := Compile(ds.Dict, ds.Graph)
	var text string
	for _, r := range cp.InstanceRules {
		text += r.Format(ds.Dict) + "\n"
	}
	dict2 := rdf.NewDict()
	reparsed, err := rules.Parse(text, dict2)
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if len(reparsed) != len(cp.InstanceRules) {
		t.Fatalf("re-parsed %d rules, want %d", len(reparsed), len(cp.InstanceRules))
	}
	for i := range reparsed {
		if reparsed[i].Name != cp.InstanceRules[i].Name {
			t.Fatalf("rule %d name changed: %q vs %q", i, reparsed[i].Name, cp.InstanceRules[i].Name)
		}
		if len(reparsed[i].Body) != len(cp.InstanceRules[i].Body) ||
			len(reparsed[i].Head) != len(cp.InstanceRules[i].Head) {
			t.Fatalf("rule %s shape changed", reparsed[i].Name)
		}
	}
}
