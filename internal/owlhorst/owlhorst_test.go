package owlhorst

import (
	"strings"
	"testing"

	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/vocab"
)

// fixture builds a small ontology + data graph exercising each OWL-Horst
// construct the compiler handles.
type fixture struct {
	dict *rdf.Dict
	g    *rdf.Graph
}

func newFixture() *fixture {
	return &fixture{dict: rdf.NewDict(), g: rdf.NewGraph()}
}

func (f *fixture) iri(s string) rdf.ID { return f.dict.InternIRI("http://t/" + s) }
func (f *fixture) v(s string) rdf.ID   { return f.dict.InternIRI(s) }
func (f *fixture) add(s, p, o rdf.ID)  { f.g.Add(rdf.Triple{S: s, P: p, O: o}) }

func (f *fixture) has(t *testing.T, closed *rdf.Graph, s, p, o rdf.ID, label string) {
	t.Helper()
	if !closed.Has(rdf.Triple{S: s, P: p, O: o}) {
		t.Errorf("%s: missing %s", label, f.dict.FormatTriple(rdf.Triple{S: s, P: p, O: o}))
	}
}

func TestMetaRulesParse(t *testing.T) {
	dict := rdf.NewDict()
	rs := MetaRules(dict)
	if len(rs) < 20 {
		t.Fatalf("only %d meta rules parsed", len(rs))
	}
	names := map[string]bool{}
	for _, r := range rs {
		if names[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		if !r.IsSafe() {
			t.Errorf("meta rule %s is unsafe", r.Name)
		}
	}
	for _, want := range []string{"rdfs9", "rdfp4", "rdfp15", "rdfp16", "rdfs7"} {
		if !names[want] {
			t.Errorf("meta rule %s missing", want)
		}
	}
}

func TestCompileSubClassChain(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	sub := f.v(vocab.RDFSSubClassOf)
	a, b, c := f.iri("A"), f.iri("B"), f.iri("C")
	x := f.iri("x")
	f.add(a, sub, b)
	f.add(b, sub, c)
	f.add(x, typ, a)

	cp := Compile(f.dict, f.g)
	// The schema closure must contain the transitive subclass edge.
	if !cp.Schema.Has(rdf.Triple{S: a, P: sub, O: c}) {
		t.Error("schema closure missing A ⊑ C")
	}
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)
	f.has(t, g, x, typ, b, "direct subclass")
	f.has(t, g, x, typ, c, "transitive subclass")
}

func TestCompilePropertySemantics(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	subP := f.v(vocab.RDFSSubPropertyOf)
	dom := f.v(vocab.RDFSDomain)
	rng := f.v(vocab.RDFSRange)
	trans := f.v(vocab.OWLTransitiveProperty)
	sym := f.v(vocab.OWLSymmetricProperty)
	inv := f.v(vocab.OWLInverseOf)

	person := f.iri("Person")
	p, q, anc, friend, childOf, parentOf := f.iri("p"), f.iri("q"), f.iri("anc"), f.iri("friend"), f.iri("childOf"), f.iri("parentOf")
	x, y, z := f.iri("x"), f.iri("y"), f.iri("z")

	f.add(p, subP, q)
	f.add(p, dom, person)
	f.add(p, rng, person)
	f.add(anc, typ, trans)
	f.add(friend, typ, sym)
	f.add(childOf, inv, parentOf)

	f.add(x, p, y)
	f.add(x, anc, y)
	f.add(y, anc, z)
	f.add(x, friend, y)
	f.add(x, childOf, y)
	f.add(z, parentOf, x)

	cp := Compile(f.dict, f.g)
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)

	f.has(t, g, x, q, y, "subPropertyOf")
	f.has(t, g, x, typ, person, "domain")
	f.has(t, g, y, typ, person, "range")
	f.has(t, g, x, anc, z, "transitive")
	f.has(t, g, y, friend, x, "symmetric")
	f.has(t, g, y, parentOf, x, "inverseOf forward")
	f.has(t, g, x, childOf, z, "inverseOf backward")
}

func TestCompileFunctionalAndSameAs(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	fun := f.v(vocab.OWLFunctionalProperty)
	ifun := f.v(vocab.OWLInverseFunctionalProperty)
	same := f.v(vocab.OWLSameAs)

	ssn, email := f.iri("ssn"), f.iri("email")
	x, y1, y2, a, b := f.iri("x"), f.iri("y1"), f.iri("y2"), f.iri("a"), f.iri("b")
	e := f.iri("e")
	other := f.iri("other")

	f.add(ssn, typ, fun)
	f.add(email, typ, ifun)
	f.add(x, ssn, y1)
	f.add(x, ssn, y2)
	f.add(a, email, e)
	f.add(b, email, e)
	f.add(y1, other, x)

	cp := Compile(f.dict, f.g)
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)

	f.has(t, g, y1, same, y2, "functional")
	f.has(t, g, y2, same, y1, "sameAs symmetry")
	f.has(t, g, a, same, b, "inverse functional")
	f.has(t, g, y2, other, x, "sameAs subject substitution")
	f.has(t, g, x, ssn, y2, "sameAs object substitution") // already asserted, sanity
}

func TestCompileRestrictions(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	onProp := f.v(vocab.OWLOnProperty)
	hasValue := f.v(vocab.OWLHasValue)
	someFrom := f.v(vocab.OWLSomeValuesFrom)
	allFrom := f.v(vocab.OWLAllValuesFrom)
	sub := f.v(vocab.RDFSSubClassOf)

	dept := f.iri("Dept")
	headOf := f.iri("headOf")
	color, red := f.iri("color"), f.iri("red")
	teaches, course := f.iri("teaches"), f.iri("Course")

	rHV := f.iri("RedThing")
	f.add(rHV, onProp, color)
	f.add(rHV, hasValue, red)

	rSV := f.iri("ChairLike")
	f.add(rSV, onProp, headOf)
	f.add(rSV, someFrom, dept)

	rAV := f.iri("TeachesOnlyCourses")
	f.add(rAV, onProp, teaches)
	f.add(rAV, allFrom, course)
	prof := f.iri("Prof")
	f.add(prof, sub, rAV)

	x, d, c1 := f.iri("x"), f.iri("d"), f.iri("c1")
	f.add(d, typ, dept)
	f.add(x, headOf, d)
	f.add(x, color, red)
	f.add(x, typ, prof)
	f.add(x, teaches, c1)

	cp := Compile(f.dict, f.g)
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)

	f.has(t, g, x, typ, rHV, "hasValue classification")
	f.has(t, g, x, typ, rSV, "someValuesFrom")
	f.has(t, g, c1, typ, course, "allValuesFrom")

	// hasValue also works in the other direction: type ⇒ value.
	y := f.iri("y")
	g2 := f.g.Clone()
	g2.Add(rdf.Triple{S: y, P: typ, O: rHV})
	g2.Union(cp.Schema)
	reason.Forward{}.Materialize(g2, cp.InstanceRules)
	f.has(t, g2, y, color, red, "hasValue value derivation")
}

func TestCompileIntersectionOf(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	inter := f.v(vocab.OWLIntersectionOf)
	first := f.v(vocab.RDFFirst)
	rest := f.v(vocab.RDFRest)
	nilID := f.v(vocab.RDFNil)

	a, b, c := f.iri("A"), f.iri("B"), f.iri("C")
	l1 := f.dict.InternBlank("l1")
	l2 := f.dict.InternBlank("l2")
	f.add(c, inter, l1)
	f.add(l1, first, a)
	f.add(l1, rest, l2)
	f.add(l2, first, b)
	f.add(l2, rest, nilID)

	x, y := f.iri("x"), f.iri("y")
	f.add(x, typ, a)
	f.add(x, typ, b)
	f.add(y, typ, c)

	cp := Compile(f.dict, f.g)
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)

	f.has(t, g, x, typ, c, "intersection composition")
	f.has(t, g, y, typ, a, "intersection member A")
	f.has(t, g, y, typ, b, "intersection member B")

	// The composition rule is the documented single-join exception.
	found := false
	for _, r := range cp.InstanceRules {
		if strings.HasPrefix(r.Name, "int-") && len(r.Body) == 2 && !r.IsSingleJoin() {
			t.Errorf("2-member intersection rule %s should be single-join", r.Name)
		}
		if strings.HasPrefix(r.Name, "int-") && len(r.Body) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no intersection composition rule generated")
	}
}

// TestCompiledRulesAreSingleJoin verifies the paper's §II claim on the LUBM
// schema shape: every compiled rule except intersectionOf composition is a
// single-join rule.
func TestCompiledRulesAreSingleJoin(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	sub := f.v(vocab.RDFSSubClassOf)
	trans := f.v(vocab.OWLTransitiveProperty)
	f.add(f.iri("A"), sub, f.iri("B"))
	f.add(f.iri("p"), typ, trans)
	cp := Compile(f.dict, f.g)
	for _, r := range cp.InstanceRules {
		if strings.HasPrefix(r.Name, "int-") {
			continue
		}
		if !r.IsSingleJoin() {
			t.Errorf("compiled rule %s is not single-join: %s", r.Name, r.Format(f.dict))
		}
	}
}

func TestSplitInstanceSeparatesSchema(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	sub := f.v(vocab.RDFSSubClassOf)
	a, b, x := f.iri("A"), f.iri("B"), f.iri("x")
	p := f.iri("p")
	f.add(a, sub, b)        // schema
	f.add(x, typ, a)        // instance (type with non-meta class)
	f.add(x, p, f.iri("y")) // instance
	inst := SplitInstance(f.dict, f.g)
	if len(inst) != 2 {
		t.Fatalf("SplitInstance returned %d triples, want 2", len(inst))
	}
	for _, tr := range inst {
		if tr.P == sub {
			t.Error("schema triple leaked into instance set")
		}
	}
}

func TestSchemaElements(t *testing.T) {
	f := newFixture()
	sub := f.v(vocab.RDFSSubClassOf)
	a, b := f.iri("A"), f.iri("B")
	f.add(a, sub, b)
	cp := Compile(f.dict, f.g)
	elems := SchemaElements(f.dict, cp.Schema)
	for _, id := range []rdf.ID{a, b, sub} {
		if _, ok := elems[id]; !ok {
			t.Errorf("schema element %d missing", id)
		}
	}
	typ := f.v(vocab.RDFType)
	if _, ok := elems[typ]; !ok {
		t.Error("rdf:type must always be a schema element")
	}
	x := f.iri("x")
	if _, ok := elems[x]; ok {
		t.Error("instance resource misclassified as schema element")
	}
}

// TestCompileEquivalences checks equivalentClass/equivalentProperty both
// directions.
func TestCompileEquivalences(t *testing.T) {
	f := newFixture()
	typ := f.v(vocab.RDFType)
	eqC := f.v(vocab.OWLEquivalentClass)
	eqP := f.v(vocab.OWLEquivalentProperty)
	a, b := f.iri("A"), f.iri("B")
	p, q := f.iri("p"), f.iri("q")
	x, y := f.iri("x"), f.iri("y")
	f.add(a, eqC, b)
	f.add(p, eqP, q)
	f.add(x, typ, a)
	f.add(x, p, y)

	cp := Compile(f.dict, f.g)
	g := f.g.Clone()
	g.Union(cp.Schema)
	reason.Forward{}.Materialize(g, cp.InstanceRules)
	f.has(t, g, x, typ, b, "equivalentClass")
	f.has(t, g, x, q, y, "equivalentProperty")
}
