package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WorkerProfile is one worker's phase decomposition summed from a journal.
type WorkerProfile struct {
	Worker int
	Reason time.Duration
	Send   time.Duration
	Recv   time.Duration
	Sync   time.Duration
	Rounds int
}

// IO is the worker's combined transport time (Figure 2's "IO").
func (w WorkerProfile) IO() time.Duration { return w.Send + w.Recv }

// Busy is the worker's productive time: everything but barrier waiting.
func (w WorkerProfile) Busy() time.Duration { return w.Reason + w.Send + w.Recv }

// Summarize folds a journal into per-worker phase profiles (sorted by
// worker id), cumulative per-rule profiles across workers, and the
// transport/retry events, ready for reporting.
func Summarize(events []Event) (workers []WorkerProfile, rules map[string]RuleStats, transports, retries []Event) {
	byWorker := map[int]*WorkerProfile{}
	rules = map[string]RuleStats{}
	for _, e := range events {
		switch e.Type {
		case EvPhase:
			if e.Worker == MasterWorker {
				continue
			}
			w := byWorker[e.Worker]
			if w == nil {
				w = &WorkerProfile{Worker: e.Worker}
				byWorker[e.Worker] = w
			}
			d := e.Duration()
			switch e.Phase {
			case PhaseReason:
				w.Reason += d
				w.Rounds++ // one reason phase per round
			case PhaseSend:
				w.Send += d
			case PhaseRecv:
				w.Recv += d
			case PhaseSync:
				w.Sync += d
			}
		case EvRuleProfile:
			s := rules[e.Name]
			s.Firings += e.N
			s.Matches += e.N2
			s.Derived += e.N3
			s.Duplicate += e.N4
			s.Time += e.Duration()
			rules[e.Name] = s
		case EvTransport:
			transports = append(transports, e)
		case EvRetry:
			retries = append(retries, e)
		}
	}
	for _, w := range byWorker {
		workers = append(workers, *w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].Worker < workers[j].Worker })
	return workers, rules, transports, retries
}

// WriteReport renders the post-run text report: the top-k rules by
// cumulative time, the per-worker phase table with the busy-time imbalance
// factor (max/mean — 1.0 is a perfectly balanced run), and the transport
// totals. This is what `owlcluster -report` and `experiments -journal`
// print after a run.
func WriteReport(w io.Writer, events []Event, topK int) {
	workers, rules, transports, retries := Summarize(events)

	if len(rules) > 0 {
		// Split the profile into rules that did work and rules that never
		// fired: a dead rule would otherwise sort to the invisible tail of
		// the table, and "this rule never fires on this dataset" is exactly
		// the signal a rule-partitioning strategy needs surfaced.
		fired := map[string]RuleStats{}
		var dead []string
		hasProv := false
		for name, s := range rules {
			if s.Firings == 0 && s.Matches == 0 && s.Time == 0 {
				dead = append(dead, name)
				continue
			}
			fired[name] = s
			if s.Derived != 0 || s.Duplicate != 0 {
				hasProv = true
			}
		}
		fmt.Fprintf(w, "Top rules by cumulative time (all workers):\n")
		if hasProv {
			fmt.Fprintf(w, "  %-28s %12s %12s %12s %10s %10s\n", "rule", "time", "firings", "matches", "derived", "dup")
		} else {
			fmt.Fprintf(w, "  %-28s %12s %12s %12s\n", "rule", "time", "firings", "matches")
		}
		for _, p := range TopRules(fired, topK) {
			if hasProv {
				fmt.Fprintf(w, "  %-28s %12v %12d %12d %10d %10d\n",
					p.Name, p.Time.Round(time.Microsecond), p.Firings, p.Matches, p.Derived, p.Duplicate)
			} else {
				fmt.Fprintf(w, "  %-28s %12v %12d %12d\n",
					p.Name, p.Time.Round(time.Microsecond), p.Firings, p.Matches)
			}
		}
		if len(fired) > topK && topK > 0 {
			fmt.Fprintf(w, "  ... and %d more rules\n", len(fired)-topK)
		}
		if len(dead) > 0 {
			sort.Strings(dead)
			fmt.Fprintf(w, "  never fired (%d): %s\n", len(dead), strings.Join(dead, ", "))
		}
	}

	if len(workers) > 0 {
		fmt.Fprintf(w, "\nPer-worker phases:\n")
		fmt.Fprintf(w, "  %-8s %8s %12s %12s %12s %12s\n", "worker", "rounds", "reason", "io", "sync", "busy")
		var maxBusy, sumBusy time.Duration
		for _, wp := range workers {
			busy := wp.Busy()
			sumBusy += busy
			if busy > maxBusy {
				maxBusy = busy
			}
			fmt.Fprintf(w, "  %-8d %8d %12v %12v %12v %12v\n",
				wp.Worker, wp.Rounds,
				wp.Reason.Round(time.Microsecond), wp.IO().Round(time.Microsecond),
				wp.Sync.Round(time.Microsecond), busy.Round(time.Microsecond))
		}
		if sumBusy > 0 {
			mean := sumBusy / time.Duration(len(workers))
			fmt.Fprintf(w, "  imbalance (max/mean busy): %.2f\n", float64(maxBusy)/float64(mean))
		}
	}

	if len(transports) > 0 {
		var msgs, triples, bytes int64
		for _, e := range transports {
			msgs += e.N
			triples += e.N2
			bytes += e.Bytes
		}
		fmt.Fprintf(w, "\nTransport: %d messages, %d triples, %s across %d peer pairs\n",
			msgs, triples, FormatBytes(bytes), len(transports))
		for _, e := range transports {
			fmt.Fprintf(w, "  %-8s %6d msgs %10d triples %10s\n", e.Name, e.N, e.N2, FormatBytes(e.Bytes))
		}
	}
	for _, e := range retries {
		fmt.Fprintf(w, "  retries(%s): %d, backoff slept %v\n", e.Name, e.N, e.Duration().Round(time.Microsecond))
	}

	for _, e := range events {
		switch e.Type {
		case EvFault:
			fmt.Fprintf(w, "\nfault: worker %d round %d: %s\n", e.Worker, e.Round, e.Name)
		case EvRecovery:
			fmt.Fprintf(w, "recovery: worker %d adopted worker %d at round %d\n", e.Worker, e.N, e.Round)
		case EvRunEnd:
			fmt.Fprintf(w, "\nrun: %d rounds, elapsed %v\n", e.N, e.Duration().Round(time.Microsecond))
		}
	}
}
