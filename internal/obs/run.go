package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Run is the per-run observer the cluster layers thread through their
// phases: it owns the journal sink, the optional metrics registry, one
// rule collector per worker, and the transport recorder. A nil *Run
// disables everything — every method is nil-safe and the instrumented
// call sites pay one nil check.
type Run struct {
	// Registry receives run-level metrics (may be nil).
	Registry *Registry

	sink      Sink
	start     time.Time
	transport *TransportRecorder

	mu         sync.Mutex
	collectors map[int]*RuleCollector
	pieces     map[int]*PieceCollector
}

// NewRun returns an observer journaling to sink (nil = journal discarded)
// with metrics in reg (nil = no metrics).
func NewRun(sink Sink, reg *Registry) *Run {
	return &Run{
		Registry:   reg,
		sink:       sink,
		start:      time.Now(),
		transport:  &TransportRecorder{},
		collectors: map[int]*RuleCollector{},
	}
}

// Now returns nanoseconds since the run started — the journal clock for
// Concurrent-mode events. Simulated mode ignores it and stamps events with
// its reconstructed clock instead.
func (r *Run) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.start))
}

// Emit appends one event to the journal.
func (r *Run) Emit(e Event) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(e)
}

// Rules returns worker's rule collector, creating it on first use.
func (r *Run) Rules(worker int) *RuleCollector {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.collectors[worker]
	if c == nil {
		c = &RuleCollector{}
		r.collectors[worker] = c
	}
	return c
}

// Pieces returns worker's piece-span collector, creating it on first use.
// The cluster layer attaches it to the worker's context; the parallel
// engine records one span per stratum firing into it.
func (r *Run) Pieces(worker int) *PieceCollector {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pieces == nil {
		r.pieces = map[int]*PieceCollector{}
	}
	c := r.pieces[worker]
	if c == nil {
		c = &PieceCollector{}
		r.pieces[worker] = c
	}
	return c
}

// Transport returns the run's transport recorder for attaching to
// transports (nil on a nil run).
func (r *Run) Transport() *TransportRecorder {
	if r == nil {
		return nil
	}
	return r.transport
}

// FlushProfiles emits one rule_profile event per (worker, rule) and the
// transport/retry summary events, stamped at ts. The cluster layer calls
// it once, just before run_end.
func (r *Run) FlushProfiles(ts int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	workers := make([]int, 0, len(r.collectors))
	for w := range r.collectors {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	collectors := make([]*RuleCollector, len(workers))
	for i, w := range workers {
		collectors[i] = r.collectors[w]
	}
	pieceWorkers := make([]int, 0, len(r.pieces))
	for w := range r.pieces {
		pieceWorkers = append(pieceWorkers, w)
	}
	sort.Ints(pieceWorkers)
	pieceCollectors := make([]*PieceCollector, len(pieceWorkers))
	for i, w := range pieceWorkers {
		pieceCollectors[i] = r.pieces[w]
	}
	r.mu.Unlock()

	for i, w := range workers {
		snap := collectors[i].Snapshot()
		for _, p := range TopRules(snap, 0) {
			r.Emit(Event{
				Type: EvRuleProfile, TS: ts, Worker: w, Name: p.Name,
				N: p.Firings, N2: p.Matches, N3: p.Derived, N4: p.Duplicate,
				Dur: int64(p.Time),
			})
			r.Registry.Counter("rules." + p.Name + ".firings").Add(p.Firings)
		}
	}
	for i, w := range pieceWorkers {
		for _, sp := range pieceCollectors[i].Snapshot() {
			r.Emit(Event{
				Type: EvPiece, TS: ts, Worker: w,
				Name:  fmt.Sprintf("stratum-%d/%dp", sp.Stratum, sp.Pieces),
				Round: sp.Sweep,
				N:     int64(sp.Delta), N2: int64(sp.Derived), N3: int64(sp.Threads),
				Dur: int64(sp.Dur),
			})
		}
	}
	r.transport.flush(r, ts)
}

// --- transport accounting ----------------------------------------------------

// PairStats accumulates one ordered worker pair's send-side traffic.
type PairStats struct {
	Msgs    int64
	Triples int64
	Bytes   int64
}

// TransportRecorder accumulates per-peer-pair traffic and retry costs.
// Transports call Batch once per sent message; Retry calls Retried and
// Slept. All methods are nil-safe and take one short lock per message —
// negligible next to serialization, and zero when observability is off
// (the recorder is nil).
type TransportRecorder struct {
	mu      sync.Mutex
	pairs   map[[2]int]*PairStats
	retries map[string]int64
	redials map[[2]int]int64
	slept   time.Duration
}

// Batch records one delivered message of n triples (and, when the
// transport serializes, its payload bytes) from worker `from` to `to`.
func (t *TransportRecorder) Batch(from, to, n int, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pairs == nil {
		t.pairs = map[[2]int]*PairStats{}
	}
	key := [2]int{from, to}
	p := t.pairs[key]
	if p == nil {
		p = &PairStats{}
		t.pairs[key] = p
	}
	p.Msgs++
	p.Triples += int64(n)
	p.Bytes += bytes
}

// Redialed records one reconnection of the from->to link (a connection-
// oriented transport re-establishing a broken connection mid-run).
func (t *TransportRecorder) Redialed(from, to int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.redials == nil {
		t.redials = map[[2]int]int64{}
	}
	t.redials[[2]int{from, to}]++
}

// Retried records one retry of the named operation ("send", "recv").
func (t *TransportRecorder) Retried(op string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.retries == nil {
		t.retries = map[string]int64{}
	}
	t.retries[op]++
}

// Slept records backoff time spent between retries.
func (t *TransportRecorder) Slept(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slept += d
	t.mu.Unlock()
}

// Pairs returns a copy of the per-pair stats keyed by [from, to].
func (t *TransportRecorder) Pairs() map[[2]int]PairStats {
	out := map[[2]int]PairStats{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.pairs {
		out[k] = *v
	}
	return out
}

// flush emits one transport event per pair plus one retry event per op.
func (t *TransportRecorder) flush(r *Run, ts int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	type pairRow struct {
		key [2]int
		p   PairStats
	}
	rows := make([]pairRow, 0, len(t.pairs))
	for k, p := range t.pairs {
		rows = append(rows, pairRow{k, *p})
	}
	retries := make(map[string]int64, len(t.retries))
	for op, n := range t.retries {
		retries[op] = n
	}
	redials := make([]pairRow, 0, len(t.redials))
	for k, n := range t.redials {
		redials = append(redials, pairRow{k, PairStats{Msgs: n}})
	}
	slept := t.slept
	t.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key[0] != rows[j].key[0] {
			return rows[i].key[0] < rows[j].key[0]
		}
		return rows[i].key[1] < rows[j].key[1]
	})
	for _, row := range rows {
		r.Emit(Event{
			Type: EvTransport, TS: ts,
			Worker: row.key[0],
			Name:   fmt.Sprintf("%d->%d", row.key[0], row.key[1]),
			N:      row.p.Msgs, N2: row.p.Triples, Bytes: row.p.Bytes,
		})
		r.Registry.Counter("transport.msgs").Add(row.p.Msgs)
		r.Registry.Counter("transport.triples").Add(row.p.Triples)
		r.Registry.Counter("transport.bytes").Add(row.p.Bytes)
	}
	sort.Slice(redials, func(i, j int) bool {
		if redials[i].key[0] != redials[j].key[0] {
			return redials[i].key[0] < redials[j].key[0]
		}
		return redials[i].key[1] < redials[j].key[1]
	})
	for _, row := range redials {
		r.Emit(Event{
			Type: EvRedial, TS: ts, Worker: row.key[0],
			Name: fmt.Sprintf("%d->%d", row.key[0], row.key[1]),
			N:    row.p.Msgs,
		})
		r.Registry.Counter("transport.redials").Add(row.p.Msgs)
	}
	ops := make([]string, 0, len(retries))
	for op := range retries {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		r.Emit(Event{
			Type: EvRetry, TS: ts, Worker: MasterWorker,
			Name: op, N: retries[op], Dur: int64(slept),
		})
		r.Registry.Counter("transport.retries." + op).Add(retries[op])
	}
}
