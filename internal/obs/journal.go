package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted into the run journal.
const (
	EvRunStart    = "run_start"    // N = worker count
	EvRoundStart  = "round_start"  // Round set
	EvRoundEnd    = "round_end"    // N = tuples sent cluster-wide this round
	EvPhase       = "phase"        // Phase, Worker, Round, TS, Dur; N = tuples (send/recv)
	EvRuleProfile = "rule_profile" // Name = rule, Worker; N = firings, N2 = matches, N3 = derived, N4 = duplicates, Dur = time
	EvPiece       = "piece"        // one stratum firing of the parallel engine; Name = "stratum-<level>/<pieces>p", Worker, Round = sweep, N = delta triples, N2 = derived, N3 = threads, Dur = span
	EvDerive      = "derive"       // sampled derivation; Name = rule, Round, N = log offset, N2 = sampling stride
	EvTransport   = "transport"    // Name = "from->to"; N = messages, N2 = triples, Bytes
	EvRetry       = "retry"        // Name = op; N = retries, Dur = backoff slept
	EvCheckpoint  = "checkpoint"   // Worker, Round; N = tuples, Bytes
	EvFault       = "fault"        // Worker, Round; Name = description
	EvRecovery    = "recovery"     // Worker adopts N (= victim id) at Round
	EvDeath       = "death"        // Worker declared dead at Round; Name = cause, N = adopter
	EvAdopt       = "adopt"        // Worker adopts N (= victim id) at Round; N2 = tuples absorbed
	EvRejoin      = "rejoin"       // Worker rejoins at Round; N = epoch
	EvWarn        = "warn"         // degraded-mode warning; Name = description
	EvRedial      = "redial"       // Name = "from->to"; N = reconnects on that link
	EvRunEnd      = "run_end"      // Dur = elapsed, N = rounds

	// Serve-layer events (cmd/owlserve). Worker is MasterWorker throughout.
	EvQuery = "query" // one query; Name = outcome (ok/shed/deadline/watchdog/cancelled/panic/parse_error), Dur = latency, N = rows
	EvEpoch = "epoch" // writer published a snapshot; N = watermark, N2 = triples derived from the batch
	EvServe = "serve" // lifecycle; Name = start/drain/drained, N = in-flight at drain start
)

// Phase names used by phase events. Reason/Send/Recv/Sync are per-worker;
// Aggregate is the master-side merge (Worker == MasterWorker). The cluster
// layer's Timings map onto them as Reason = reason, IO = send + recv,
// Sync = sync.
const (
	PhaseReason    = "reason"
	PhaseSend      = "send"
	PhaseRecv      = "recv"
	PhaseSync      = "sync"
	PhaseAggregate = "aggregate"
)

// MasterWorker is the Worker value for master-side events (aggregation,
// supervision) that belong to no worker track.
const MasterWorker = -1

// Event is one record of the run journal. TS is nanoseconds since run
// start — wall-clock in Concurrent mode, the barrier-reconstructed virtual
// clock in Simulated mode — so a journal replays into a timeline in either
// mode. Dur is the span length in nanoseconds for span-shaped events.
type Event struct {
	Type   string `json:"type"`
	TS     int64  `json:"ts,omitempty"`
	Dur    int64  `json:"dur,omitempty"`
	Worker int    `json:"worker"`
	Round  int    `json:"round,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Name   string `json:"name,omitempty"`
	N      int64  `json:"n,omitempty"`
	N2     int64  `json:"n2,omitempty"`
	N3     int64  `json:"n3,omitempty"`
	N4     int64  `json:"n4,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// Duration returns the event's span length.
func (e Event) Duration() time.Duration { return time.Duration(e.Dur) }

// Sink consumes journal events. Implementations must be safe for
// concurrent Emit calls (concurrent workers journal simultaneously).
type Sink interface {
	Emit(e Event)
}

// JSONLSink writes one JSON object per line. Wrap the target in a
// bufio.Writer for file sinks and call Flush when the run ends.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink returns a sink writing JSONL to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit implements Sink. Encoding errors are sticky and reported by Flush.
func (s *JSONLSink) Emit(e Event) {
	b, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Flush drains the buffer and returns the first error encountered.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// MemSink buffers events in memory — the test and report sink.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *MemSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// MultiSink fans every event out to all children.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// ParseJournal reads a JSONL journal back into events. Blank lines are
// skipped; a malformed line fails the parse with its line number.
func ParseJournal(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<24)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
