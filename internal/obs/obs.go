// Package obs is powl's zero-dependency telemetry layer: a metrics
// registry (atomic counters, gauges, log-scale duration histograms), a
// structured run journal (JSONL event stream) with a Chrome/Perfetto
// trace-event exporter, per-rule engine profiles, per-peer transport
// accounting, and HTTP serving (/metrics JSON + net/http/pprof).
//
// Everything is nil-safe by design: a nil *Registry, *Run, *RuleCollector
// or *TransportRecorder turns every recording call into a no-op behind a
// single nil check, so instrumented hot paths pay nothing measurable when
// observability is disabled and allocate nothing on the recording path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of fixed log-scale histogram buckets. Bucket i
// counts observations with d < 1µs·2^i; the final bucket is the overflow,
// so the covered range is 1µs .. ~1.2h.
const histBuckets = 33

// Histogram is a duration histogram with fixed log2 buckets plus atomic
// count/sum/min/max, so it is safe for concurrent observation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // ns
	min     atomic.Int64 // ns; math.MaxInt64 until first observation
	max     atomic.Int64 // ns
}

// histBucket returns the bucket index for d: the smallest i with
// d < 1µs·2^i, clamped to the overflow bucket.
func histBucket(d time.Duration) int {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	us := ns / 1000
	i := 0
	for us > 0 && i < histBuckets-1 {
		us >>= 1
		i++
	}
	return i
}

// Observe records one duration. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.buckets[histBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns {
			break
		}
		// 0 doubles as "unset": durations of exactly 0ns keep min at 0,
		// which is also correct.
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets[i] counts observations below BucketBound(i).
	Buckets []int64 `json:"buckets"`
}

// BucketBound returns the exclusive upper bound of histogram bucket i
// (the last bucket is unbounded).
func BucketBound(i int) time.Duration {
	if i >= histBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Microsecond << i
}

// Snapshot returns the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	s.Buckets = make([]int64, histBuckets)
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed duration.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Percentile returns an upper estimate of the p-th percentile (0 < p <= 100)
// from the log2 bucket counts: the bound of the bucket the rank lands in,
// clamped to the observed min/max (so p=100 is exactly Max). The log2 layout
// makes the estimate at worst 2x the true value — the right resolution for
// latency gating, where the question is "which power of two", not "which
// microsecond".
func (s HistSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			b := BucketBound(i)
			if b > s.Max {
				b = s.Max
			}
			if b < s.Min {
				b = s.Min
			}
			return b
		}
	}
	return s.Max
}

// Registry names and owns a process's metrics. The zero registry must not
// be used; a nil *Registry is the disabled state: every lookup returns nil
// and every recording through the returned nil metric is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry. Look metrics up once outside loops: the lookup takes a lock,
// the returned handle does not.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every metric into a JSON-encodable map:
// counters/gauges as int64, histograms as HistSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the sorted metric names (for deterministic reports).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FormatBytes renders a byte count human-readably for reports.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
