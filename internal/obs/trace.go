package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// traceEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), which Perfetto and chrome://tracing both load. Timestamps and
// durations are microseconds; fractional values are allowed, so the
// journal's nanosecond clock survives the conversion.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
}

// traceTID maps a journal worker id to a trace thread id: the master track
// is tid 0, worker i is tid i+1.
func traceTID(worker int) int {
	if worker == MasterWorker {
		return 0
	}
	return worker + 1
}

// phaseTitle renders a journal phase name as a trace slice title.
func phaseTitle(phase string) string {
	if phase == "" {
		return "phase"
	}
	return strings.ToUpper(phase[:1]) + phase[1:]
}

// WriteTrace converts a run journal into Chrome trace-event JSON: one
// process, one named thread ("track") per worker plus a master track,
// complete ("X") slices for every phase span, and instant events for
// faults, recoveries and round boundaries. Rules with journaled activity
// (rule_profile summaries, sampled derive events) get their own lanes after
// the worker tracks, so per-rule attribution reads as a timeline next to
// the phase decomposition. The output loads directly into Perfetto
// (ui.perfetto.dev) or chrome://tracing and reproduces Figure 2's
// Reason/IO/Sync decomposition as a timeline.
func WriteTrace(w io.Writer, events []Event) error {
	var out []traceEvent

	// Track names. Collect the worker ids actually present so the trace
	// has exactly one named track per worker (plus the master), and the
	// rule names so each gets a lane above the worker tracks.
	workers := map[int]bool{}
	ruleSet := map[string]bool{}
	maxWorker := 0
	for _, e := range events {
		switch e.Type {
		case EvPhase, EvFault, EvRecovery, EvCheckpoint:
			workers[e.Worker] = true
			if e.Worker > maxWorker {
				maxWorker = e.Worker
			}
		case EvRuleProfile, EvDerive:
			ruleSet[e.Name] = true
		}
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ruleNames := make([]string, 0, len(ruleSet))
	for name := range ruleSet {
		ruleNames = append(ruleNames, name)
	}
	sort.Strings(ruleNames)
	ruleTID := map[string]int{}
	ruleBase := traceTID(maxWorker) + 1
	for i, name := range ruleNames {
		ruleTID[name] = ruleBase + i
	}
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "powl run"},
	})
	for _, id := range ids {
		name := fmt.Sprintf("worker %d", id)
		if id == MasterWorker {
			name = "master"
		}
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: traceTID(id),
			Args: map[string]any{"name": name},
		})
	}
	for _, name := range ruleNames {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: ruleTID[name],
			Args: map[string]any{"name": "rule " + name},
		})
	}

	for _, e := range events {
		ts := float64(e.TS) / 1e3
		dur := float64(e.Dur) / 1e3
		switch e.Type {
		case EvPhase:
			args := map[string]any{"round": e.Round}
			if e.N != 0 {
				args["tuples"] = e.N
			}
			out = append(out, traceEvent{
				Name: phaseTitle(e.Phase), Ph: "X", TS: ts, Dur: dur,
				PID: 0, TID: traceTID(e.Worker), Args: args,
			})
		case EvRoundStart:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("round %d", e.Round), Ph: "i", TS: ts,
				PID: 0, TID: 0, S: "p",
			})
		case EvCheckpoint:
			out = append(out, traceEvent{
				Name: "checkpoint", Ph: "i", TS: ts, PID: 0, TID: traceTID(e.Worker), S: "t",
				Args: map[string]any{"round": e.Round, "tuples": e.N, "bytes": e.Bytes},
			})
		case EvFault:
			out = append(out, traceEvent{
				Name: "FAULT: " + e.Name, Ph: "i", TS: ts, PID: 0, TID: traceTID(e.Worker), S: "g",
				Args: map[string]any{"round": e.Round},
			})
		case EvRecovery:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("adopt worker %d", e.N), Ph: "i", TS: ts,
				PID: 0, TID: traceTID(e.Worker), S: "g",
				Args: map[string]any{"round": e.Round},
			})
		case EvRuleProfile:
			// Summary slice on the rule's lane: Dur is the rule's
			// cumulative time, drawn ending at the flush timestamp.
			start := ts - dur
			if start < 0 {
				start = 0
			}
			out = append(out, traceEvent{
				Name: fmt.Sprintf("%s (w%d)", e.Name, e.Worker), Ph: "X",
				TS: start, Dur: dur, PID: 0, TID: ruleTID[e.Name],
				Args: map[string]any{
					"worker": e.Worker, "firings": e.N, "matches": e.N2,
					"derived": e.N3, "duplicates": e.N4,
				},
			})
		case EvDerive:
			out = append(out, traceEvent{
				Name: "derive", Ph: "i", TS: ts, PID: 0, TID: ruleTID[e.Name], S: "t",
				Args: map[string]any{"round": e.Round, "offset": e.N, "stride": e.N2},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}
