package obs

import (
	"context"
	"sync/atomic"
)

// DeriveSampler journals a 1-in-N sample of derivations as EvDerive events:
// enough to see which rules are producing, in which rounds, without paying a
// journal write per derived triple. A nil sampler is a no-op, in the obs
// nil-safe style, so engines call Sample unconditionally.
type DeriveSampler struct {
	run    *Run
	worker int
	stride int64
	n      atomic.Int64
}

// DefaultDeriveStride is the sampling stride used when callers pass
// stride <= 0.
const DefaultDeriveStride = 256

// DeriveSampler returns a sampler journaling under worker's track with the
// given stride (1 = every derivation, <= 0 = DefaultDeriveStride). Nil-safe:
// a nil run or a run without a journal sink yields nil.
func (r *Run) DeriveSampler(worker, stride int) *DeriveSampler {
	if r == nil || r.sink == nil {
		return nil
	}
	if stride <= 0 {
		stride = DefaultDeriveStride
	}
	return &DeriveSampler{run: r, worker: worker, stride: int64(stride)}
}

// Sample counts one derivation of rule at log offset off during round, and
// journals every stride-th one. Safe for concurrent use and nil-safe.
func (s *DeriveSampler) Sample(rule string, round int, off uint32) {
	if s == nil {
		return
	}
	if s.n.Add(1)%s.stride != 1 && s.stride != 1 {
		return
	}
	s.run.Emit(Event{
		Type: EvDerive, TS: s.run.Now(), Worker: s.worker, Round: round,
		Name: rule, N: int64(off), N2: s.stride,
	})
}

type derivesCtxKey struct{}

// ContextWithDerives attaches a derivation sampler to ctx; engines pick it
// up in MaterializeCtx. Attaching nil returns ctx unchanged.
func ContextWithDerives(ctx context.Context, s *DeriveSampler) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, derivesCtxKey{}, s)
}

// DerivesFrom returns the derivation sampler attached to ctx, or nil. One
// context lookup per materialization, not per derivation.
func DerivesFrom(ctx context.Context) *DeriveSampler {
	s, _ := ctx.Value(derivesCtxKey{}).(*DeriveSampler)
	return s
}
