package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// RuleStats is one rule's cumulative execution profile.
//
//   - Firings: head instantiations emitted (pre-deduplication — a firing
//     whose conclusion already existed still counts, because its join work
//     was still paid).
//   - Matches: complete body matches (successful joins reaching the head).
//   - Time: cumulative wall time attributed to the rule. Forward/Rete
//     attribute the triple-driven activation work per rule exactly; the
//     hybrid engine attributes each outermost resolution (nested SLD
//     subgoals stay within the rule that opened them), so times partition
//     the engine's rule-evaluation time in all three engines.
type RuleStats struct {
	Firings int64
	Matches int64
	Time    time.Duration

	// Provenance-era split of Firings: Derived counts firings whose
	// conclusion was new to the graph, Duplicate those whose conclusion
	// already existed (wasted join work — the re-derivation signal the
	// paper's duplicate-elimination discussion cares about). Engines only
	// tally these when provenance recording is on, so Derived+Duplicate
	// may be less than Firings across a mixed run.
	Derived   int64
	Duplicate int64
}

// RuleCollector accumulates per-rule profiles across materialize calls.
// Engines flush one locally-tallied batch per call, so the mutex is taken
// once per materialization, not per firing. All methods are nil-safe.
type RuleCollector struct {
	mu sync.Mutex
	m  map[string]*RuleStats
}

// Record merges one rule's tallied batch into the collector.
func (c *RuleCollector) Record(name string, firings, matches int64, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*RuleStats{}
	}
	s := c.m[name]
	if s == nil {
		s = &RuleStats{}
		c.m[name] = s
	}
	s.Firings += firings
	s.Matches += matches
	s.Time += d
}

// RecordDerived merges one rule's derived/duplicate tallies (provenance
// attribution) into the collector.
func (c *RuleCollector) RecordDerived(name string, derived, duplicate int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*RuleStats{}
	}
	s := c.m[name]
	if s == nil {
		s = &RuleStats{}
		c.m[name] = s
	}
	s.Derived += derived
	s.Duplicate += duplicate
}

// Snapshot returns a copy of the accumulated per-rule profiles.
func (c *RuleCollector) Snapshot() map[string]RuleStats {
	out := map[string]RuleStats{}
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, s := range c.m {
		out[name] = *s
	}
	return out
}

// RuleProfile is one rule's profile with its name attached, for sorting.
type RuleProfile struct {
	Name string
	RuleStats
}

// TopRules returns the rules sorted by descending cumulative time
// (firings, then name, break ties), truncated to k (k <= 0 = all).
func TopRules(m map[string]RuleStats, k int) []RuleProfile {
	out := make([]RuleProfile, 0, len(m))
	for name, s := range m {
		out = append(out, RuleProfile{Name: name, RuleStats: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		if out[i].Firings != out[j].Firings {
			return out[i].Firings > out[j].Firings
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

type rulesCtxKey struct{}

// ContextWithRules attaches a rule collector to ctx; engines pick it up in
// MaterializeCtx. Attaching nil returns ctx unchanged, so callers can pass
// through a disabled observer without branching.
func ContextWithRules(ctx context.Context, c *RuleCollector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, rulesCtxKey{}, c)
}

// RulesFrom returns the rule collector attached to ctx, or nil. Engines
// call this once per materialization — the disabled cost is one context
// lookup per call, not per rule firing.
func RulesFrom(ctx context.Context) *RuleCollector {
	c, _ := ctx.Value(rulesCtxKey{}).(*RuleCollector)
	return c
}
