package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the registry as JSON — the expvar-style /metrics
// endpoint. A nil registry serves an empty object, so the endpoint is
// always safe to mount.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort debug endpoint
	})
}

// DebugMux builds the debug endpoint set: /metrics (registry JSON) plus
// the standard net/http/pprof family under /debug/pprof/.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (e.g. "localhost:6060") and serves the debug mux
// in a background goroutine for the life of the process. It returns the
// bound address so callers can log it (addr ":0" picks a free port), or an
// error if the listen fails. The cmds call this behind -debug-addr.
func ServeDebug(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // background debug server dies with the process
	return ln.Addr().String(), nil
}
