package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5) // must not panic
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}

	r := NewRegistry()
	r.Counter("derived").Add(3)
	r.Counter("derived").Add(4)
	if got := r.Counter("derived").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	r.Gauge("rounds").Set(9)
	if got := r.Gauge("rounds").Value(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}

	var nilReg *Registry
	nilReg.Counter("x").Add(1) // nil registry hands out nil metrics
	nilReg.Gauge("y").Set(1)
	nilReg.Histogram("z").Observe(time.Second)
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("phase.reason")
	h.Observe(time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Microsecond || s.Max != time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Sum != time.Millisecond+3*time.Microsecond {
		t.Errorf("sum = %v", s.Sum)
	}
	if s.Mean() <= 0 {
		t.Error("mean must be positive")
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total != 3 {
		t.Errorf("bucket total = %d, want 3", total)
	}
	var nilH *Histogram
	nilH.Observe(time.Second)
	if nilH.Snapshot().Count != 0 {
		t.Error("nil histogram must snapshot empty")
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Histogram("h").Observe(time.Millisecond)
	names := r.Names()
	if len(names) != 3 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
	snap := r.Snapshot()
	if snap["a"].(int64) != 2 {
		t.Errorf("snapshot a = %v", snap["a"])
	}
	if _, ok := snap["h"]; !ok {
		t.Error("histogram missing from snapshot")
	}
	var nilReg *Registry
	if len(nilReg.Snapshot()) != 0 {
		t.Error("nil registry must snapshot empty")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []Event{
		{Type: EvRunStart, Worker: MasterWorker, Name: "forward", N: 4},
		{Type: EvPhase, TS: 10, Dur: 100, Worker: 0, Round: 0, Phase: PhaseReason},
		{Type: EvPhase, TS: 110, Dur: 50, Worker: 0, Round: 0, Phase: PhaseSend, N: 12},
		{Type: EvRuleProfile, TS: 200, Worker: 1, Name: "sc-1-2", N: 7, N2: 9, Dur: 77},
		{Type: EvTransport, TS: 200, Worker: 0, Name: "0->1", N: 2, N2: 40, Bytes: 512},
		{Type: EvRunEnd, TS: 300, Dur: 300, Worker: MasterWorker, N: 3},
	}
	for _, e := range want {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseJournalRejectsMalformed(t *testing.T) {
	_, err := ParseJournal(strings.NewReader("{\"type\":\"phase\",\"worker\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestMemAndMultiSink(t *testing.T) {
	m1, m2 := &MemSink{}, &MemSink{}
	multi := MultiSink{m1, m2}
	multi.Emit(Event{Type: EvRunStart})
	if len(m1.Events()) != 1 || len(m2.Events()) != 1 {
		t.Error("MultiSink must fan out to all children")
	}
}

func TestTopRules(t *testing.T) {
	m := map[string]RuleStats{
		"slow":  {Firings: 1, Time: 3 * time.Second},
		"fast":  {Firings: 100, Time: time.Millisecond},
		"mid":   {Firings: 10, Time: time.Second},
		"empty": {},
	}
	top := TopRules(m, 2)
	if len(top) != 2 || top[0].Name != "slow" || top[1].Name != "mid" {
		t.Errorf("TopRules = %+v", top)
	}
	all := TopRules(m, 0)
	if len(all) != 4 {
		t.Errorf("TopRules(0) returned %d rules", len(all))
	}
}

func TestRuleCollectorAndContext(t *testing.T) {
	var nilC *RuleCollector
	nilC.Record("r", 1, 1, time.Second) // nil-safe
	if ctx := ContextWithRules(context.Background(), nilC); RulesFrom(ctx) != nil {
		t.Error("nil collector must leave ctx without rules")
	}

	c := &RuleCollector{}
	ctx := ContextWithRules(context.Background(), c)
	got := RulesFrom(ctx)
	if got != c {
		t.Fatal("RulesFrom must return the attached collector")
	}
	got.Record("sc", 2, 3, time.Millisecond)
	got.Record("sc", 1, 1, time.Millisecond)
	snap := c.Snapshot()
	if s := snap["sc"]; s.Firings != 3 || s.Matches != 4 || s.Time != 2*time.Millisecond {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestTransportRecorder(t *testing.T) {
	var nilT *TransportRecorder
	nilT.Batch(0, 1, 5, 100) // nil-safe
	nilT.Retried("send")
	nilT.Slept(time.Second)

	r := &TransportRecorder{}
	r.Batch(0, 1, 5, 100)
	r.Batch(0, 1, 3, 50)
	r.Batch(1, 0, 1, 10)
	pairs := r.Pairs()
	if p := pairs[[2]int{0, 1}]; p.Msgs != 2 || p.Triples != 8 || p.Bytes != 150 {
		t.Errorf("pair 0->1 = %+v", p)
	}
	if p := pairs[[2]int{1, 0}]; p.Msgs != 1 {
		t.Errorf("pair 1->0 = %+v", p)
	}
}

func TestRunNilSafe(t *testing.T) {
	var r *Run
	if r.Now() != 0 {
		t.Error("nil run Now must be 0")
	}
	r.Emit(Event{Type: EvRunStart}) // must not panic
	if r.Rules(0) != nil {
		t.Error("nil run must hand out nil collectors")
	}
	if r.Transport() != nil {
		t.Error("nil run must hand out a nil recorder")
	}
	r.FlushProfiles(0)
}

func TestRunFlushProfiles(t *testing.T) {
	sink := &MemSink{}
	run := NewRun(sink, NewRegistry())
	run.Rules(1).Record("sc-a", 5, 6, time.Millisecond)
	run.Rules(0).Record("sc-b", 1, 1, time.Microsecond)
	run.Transport().Batch(0, 1, 10, 1024)
	run.Transport().Retried("send")
	run.Transport().Slept(3 * time.Millisecond)
	run.FlushProfiles(42)

	events := sink.Events()
	var profiles, transports, retries []Event
	for _, e := range events {
		switch e.Type {
		case EvRuleProfile:
			profiles = append(profiles, e)
		case EvTransport:
			transports = append(transports, e)
		case EvRetry:
			retries = append(retries, e)
		}
	}
	if len(profiles) != 2 || profiles[0].Worker != 0 || profiles[1].Worker != 1 {
		t.Errorf("profiles = %+v", profiles)
	}
	if len(transports) != 1 || transports[0].Name != "0->1" || transports[0].Bytes != 1024 {
		t.Errorf("transports = %+v", transports)
	}
	if len(retries) != 1 || retries[0].N != 1 || retries[0].Duration() != 3*time.Millisecond {
		t.Errorf("retries = %+v", retries)
	}
	if run.Registry.Counter("transport.bytes").Value() != 1024 {
		t.Error("registry counters not updated on flush")
	}
}

// TestWriteTrace checks the Chrome trace-event export: valid JSON, one named
// track per worker plus the master, and phase slices with µs timestamps.
func TestWriteTrace(t *testing.T) {
	events := []Event{
		{Type: EvRunStart, Worker: MasterWorker, N: 2},
		{Type: EvRoundStart, TS: 0, Worker: MasterWorker, Round: 0},
		{Type: EvPhase, TS: 0, Dur: 2000, Worker: 0, Round: 0, Phase: PhaseReason},
		{Type: EvPhase, TS: 0, Dur: 1000, Worker: 1, Round: 0, Phase: PhaseReason},
		{Type: EvPhase, TS: 1000, Dur: 1000, Worker: 1, Round: 0, Phase: PhaseSync},
		{Type: EvFault, TS: 1500, Worker: 1, Round: 0, Name: "injected crash"},
		{Type: EvRecovery, TS: 1800, Worker: 0, Round: 0, N: 1},
		{Type: EvCheckpoint, TS: 500, Worker: 0, Round: 0, N: 10, Bytes: 99},
		{Type: EvPhase, TS: 2000, Dur: 500, Worker: MasterWorker, Phase: PhaseAggregate},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[string]float64{}
	slices := 0
	instants := 0
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				tracks[e["args"].(map[string]any)["name"].(string)] = e["tid"].(float64)
			}
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	for name, tid := range map[string]float64{"master": 0, "worker 0": 1, "worker 1": 2} {
		if tracks[name] != tid {
			t.Errorf("track %q tid = %v, want %v (tracks: %v)", name, tracks[name], tid, tracks)
		}
	}
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	if instants != 4 { // round_start, fault, recovery, checkpoint
		t.Errorf("instants = %d, want 4", instants)
	}
}

func TestSummarizeAndReport(t *testing.T) {
	events := []Event{
		{Type: EvPhase, Dur: int64(2 * time.Millisecond), Worker: 0, Phase: PhaseReason},
		{Type: EvPhase, Dur: int64(time.Millisecond), Worker: 0, Phase: PhaseSend},
		{Type: EvPhase, Dur: int64(time.Millisecond), Worker: 0, Phase: PhaseRecv},
		{Type: EvPhase, Dur: int64(3 * time.Millisecond), Worker: 0, Phase: PhaseSync},
		{Type: EvPhase, Dur: int64(4 * time.Millisecond), Worker: 1, Phase: PhaseReason},
		{Type: EvPhase, Dur: int64(5 * time.Millisecond), Worker: MasterWorker, Phase: PhaseAggregate},
		{Type: EvRuleProfile, Worker: 0, Name: "sc-x", N: 3, N2: 4, Dur: int64(time.Millisecond)},
		{Type: EvRuleProfile, Worker: 1, Name: "sc-x", N: 1, N2: 1, Dur: int64(time.Millisecond)},
		{Type: EvTransport, Worker: 0, Name: "0->1", N: 1, N2: 10, Bytes: 100},
		{Type: EvRunEnd, Dur: int64(10 * time.Millisecond), Worker: MasterWorker, N: 2},
	}
	workers, rules, transports, _ := Summarize(events)
	if len(workers) != 2 {
		t.Fatalf("workers = %d", len(workers))
	}
	w0 := workers[0]
	if w0.Reason != 2*time.Millisecond || w0.IO() != 2*time.Millisecond || w0.Sync != 3*time.Millisecond {
		t.Errorf("worker 0 profile = %+v", w0)
	}
	if w0.Rounds != 1 || w0.Busy() != 4*time.Millisecond {
		t.Errorf("worker 0 rounds/busy = %d/%v", w0.Rounds, w0.Busy())
	}
	if s := rules["sc-x"]; s.Firings != 4 || s.Matches != 5 {
		t.Errorf("rule sc-x = %+v", s)
	}
	if len(transports) != 1 {
		t.Errorf("transports = %d", len(transports))
	}

	var buf bytes.Buffer
	WriteReport(&buf, events, 5)
	out := buf.String()
	for _, want := range []string{"sc-x", "imbalance", "Transport:", "run: 2 rounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsHandlerAndDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	srvAddr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srvAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap["hits"].(float64) != 3 {
		t.Errorf("metrics = %v", snap)
	}
	// pprof index must be mounted.
	resp2, err := http.Get("http://" + srvAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp2.StatusCode)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		2048:    "2.0KiB",
		1 << 20: "1.0MiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
