package obs

import (
	"context"
	"sync"
	"time"
)

// PieceSpan is one stratum firing of the intra-worker parallel engine: the
// engine fired `Pieces` independent rule pieces at dependency level
// `Stratum` over a `Delta`-triple queue across `Threads` goroutines,
// committing `Derived` new triples, in `Dur`. Sweep is the firing's
// position in the materialization (the parallel analogue of the semi-naive
// round). Journalled as EvPiece events; with the same materialization run
// at different thread counts, the per-span durations are what the
// speedup@cores figure in BENCH_10.json is computed from.
type PieceSpan struct {
	Stratum int
	Pieces  int
	Sweep   int
	Threads int
	Delta   int
	Derived int
	Dur     time.Duration
}

// PieceCollector accumulates piece spans across materialize calls. The
// engine records once per stratum firing from its coordinator goroutine;
// the mutex is for cross-materialization aggregation, not the hot path.
// All methods are nil-safe.
type PieceCollector struct {
	mu    sync.Mutex
	spans []PieceSpan
}

// Record appends one stratum firing's span.
func (c *PieceCollector) Record(sp PieceSpan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

// Snapshot returns a copy of the spans recorded so far.
func (c *PieceCollector) Snapshot() []PieceSpan {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PieceSpan, len(c.spans))
	copy(out, c.spans)
	return out
}

type piecesCtxKey struct{}

// ContextWithPieces attaches a piece collector to ctx; the parallel engine
// picks it up in MaterializeCtx. Attaching nil returns ctx unchanged.
func ContextWithPieces(ctx context.Context, c *PieceCollector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, piecesCtxKey{}, c)
}

// PiecesFrom returns the piece collector attached to ctx, or nil. Looked up
// once per materialization.
func PiecesFrom(ctx context.Context) *PieceCollector {
	c, _ := ctx.Value(piecesCtxKey{}).(*PieceCollector)
	return c
}
