package vocab

import "testing"

func TestIsSchemaIRI(t *testing.T) {
	schema := []string{
		RDFType, RDFSSubClassOf, OWLSameAs, RDF + "anything",
		RDFS + "x", OWL + "y", XSD[:len(XSD)] + "",
	}
	for _, iri := range schema[:6] {
		if !IsSchemaIRI(iri) {
			t.Errorf("IsSchemaIRI(%q) = false, want true", iri)
		}
	}
	nonSchema := []string{
		"http://example.org/Person",
		"http://benchmark.powl/lubm#Student",
		"",
		"http://www.w3.org/", // prefix of the namespaces but not within one
	}
	for _, iri := range nonSchema {
		if IsSchemaIRI(iri) {
			t.Errorf("IsSchemaIRI(%q) = true, want false", iri)
		}
	}
}

func TestNamespaceConstantsWellFormed(t *testing.T) {
	for _, ns := range []string{RDF, RDFS, OWL, XSD} {
		if ns[len(ns)-1] != '#' {
			t.Errorf("namespace %q does not end in '#'", ns)
		}
	}
	if RDFType != RDF+"type" {
		t.Error("RDFType mismatch")
	}
	if OWLTransitiveProperty != OWL+"TransitiveProperty" {
		t.Error("OWLTransitiveProperty mismatch")
	}
}
