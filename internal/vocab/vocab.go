// Package vocab defines the RDF, RDFS, OWL and XSD IRIs used by the
// OWL-Horst rule set and the benchmark ontologies.
package vocab

// Namespace prefixes.
const (
	RDF  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFS = "http://www.w3.org/2000/01/rdf-schema#"
	OWL  = "http://www.w3.org/2002/07/owl#"
	XSD  = "http://www.w3.org/2001/XMLSchema#"
)

// RDF vocabulary.
const (
	RDFType      = RDF + "type"
	RDFProperty  = RDF + "Property"
	RDFFirst     = RDF + "first"
	RDFRest      = RDF + "rest"
	RDFNil       = RDF + "nil"
	RDFStatement = RDF + "Statement"
	RDFSubject   = RDF + "subject"
	RDFPredicate = RDF + "predicate"
	RDFObject    = RDF + "object"
)

// RDFS vocabulary.
const (
	RDFSSubClassOf    = RDFS + "subClassOf"
	RDFSSubPropertyOf = RDFS + "subPropertyOf"
	RDFSDomain        = RDFS + "domain"
	RDFSRange         = RDFS + "range"
	RDFSClass         = RDFS + "Class"
	RDFSResource      = RDFS + "Resource"
	RDFSLiteral       = RDFS + "Literal"
	RDFSDatatype      = RDFS + "Datatype"
	RDFSMember        = RDFS + "member"
	RDFSLabel         = RDFS + "label"
	RDFSComment       = RDFS + "comment"
	RDFSSeeAlso       = RDFS + "seeAlso"
	RDFSIsDefinedBy   = RDFS + "isDefinedBy"
)

// OWL vocabulary (the OWL-Horst / pD* fragment plus common declarations).
const (
	OWLClass                     = OWL + "Class"
	OWLThing                     = OWL + "Thing"
	OWLNothing                   = OWL + "Nothing"
	OWLObjectProperty            = OWL + "ObjectProperty"
	OWLDatatypeProperty          = OWL + "DatatypeProperty"
	OWLTransitiveProperty        = OWL + "TransitiveProperty"
	OWLSymmetricProperty         = OWL + "SymmetricProperty"
	OWLFunctionalProperty        = OWL + "FunctionalProperty"
	OWLInverseFunctionalProperty = OWL + "InverseFunctionalProperty"
	OWLInverseOf                 = OWL + "inverseOf"
	OWLSameAs                    = OWL + "sameAs"
	OWLDifferentFrom             = OWL + "differentFrom"
	OWLEquivalentClass           = OWL + "equivalentClass"
	OWLEquivalentProperty        = OWL + "equivalentProperty"
	OWLDisjointWith              = OWL + "disjointWith"
	OWLRestriction               = OWL + "Restriction"
	OWLOnProperty                = OWL + "onProperty"
	OWLHasValue                  = OWL + "hasValue"
	OWLSomeValuesFrom            = OWL + "someValuesFrom"
	OWLAllValuesFrom             = OWL + "allValuesFrom"
	OWLIntersectionOf            = OWL + "intersectionOf"
	OWLUnionOf                   = OWL + "unionOf"
	OWLOntology                  = OWL + "Ontology"
	OWLImports                   = OWL + "imports"
)

// IsSchemaIRI reports whether iri belongs to one of the schema namespaces
// (RDF, RDFS, OWL). Triples whose predicate is a schema IRI, or whose object
// is a schema class, define the ontology rather than instance data; the data
// partitioner treats them separately per Algorithm 1 of the paper.
func IsSchemaIRI(iri string) bool {
	return hasPrefix(iri, RDF) || hasPrefix(iri, RDFS) || hasPrefix(iri, OWL)
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
