// Package asciiplot renders small line charts and bar charts as text, so
// cmd/experiments can show the paper's figures as curves, not just tables.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	// Points are (x, y) pairs; x values should be shared across series.
	X []float64
	Y []float64
}

// Line renders series as an ASCII chart of the given size (columns × rows of
// the plotting area, excluding axes). Each series is drawn with its own
// glyph; a legend follows.
func Line(title string, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at 0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY <= minY {
		return title + "\n(no data)\n"
	}
	spanX := maxX - minX
	if spanX == 0 {
		spanX = 1
	}
	spanY := maxY - minY

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		c := int(math.Round((x - minX) / spanX * float64(width-1)))
		r := height - 1 - int(math.Round((y-minY)/spanY*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		grid[r][c] = glyph
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			plot(s.X[i], s.Y[i], g)
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for r, row := range grid {
		yVal := maxY - float64(r)/float64(height-1)*spanY
		fmt.Fprintf(&b, "%8.1f |%s\n", yVal, string(row))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%9s %-8.3g%s%8.3g\n", "", minX,
		strings.Repeat(" ", maxInt(1, width-16)), maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "%11c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Bars renders labeled horizontal bars scaled to the largest value.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	wLabel := 0
	for _, l := range labels {
		if len(l) > wLabel {
			wLabel = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %.2f\n", wLabel, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
