package asciiplot

import (
	"strings"
	"testing"
)

func TestLineRendersAllSeries(t *testing.T) {
	out := Line("speedup", []Series{
		{Name: "lubm", X: []float64{2, 4, 8, 16}, Y: []float64{2, 4, 9, 15}},
		{Name: "uobm", X: []float64{2, 4, 8, 16}, Y: []float64{1, 1.3, 1.8, 2.8}},
	}, 40, 10)
	if !strings.Contains(out, "speedup") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* = lubm") || !strings.Contains(out, "o = uobm") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing from plot area")
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Errorf("plot too short:\n%s", out)
	}
}

func TestLineEmptyData(t *testing.T) {
	out := Line("empty", nil, 20, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot output: %q", out)
	}
	// All-zero series also degrade gracefully.
	out = Line("zeros", []Series{{Name: "z", X: []float64{1, 2}, Y: []float64{0, 0}}}, 20, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("zero plot output: %q", out)
	}
}

func TestLineClampsTinySizes(t *testing.T) {
	out := Line("tiny", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}}, 1, 1)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestLineSinglePoint(t *testing.T) {
	out := Line("point", []Series{{Name: "p", X: []float64{5}, Y: []float64{3}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("IR", []string{"graph", "domain", "hash"}, []float64{0.17, 0.01, 3.21}, 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("bar chart lines = %d:\n%s", len(lines), out)
	}
	// hash has the longest bar.
	hashBars := strings.Count(lines[3], "█")
	graphBars := strings.Count(lines[1], "█")
	if hashBars <= graphBars {
		t.Errorf("hash bar (%d) not longer than graph bar (%d)", hashBars, graphBars)
	}
	if !strings.Contains(lines[3], "3.21") {
		t.Error("value label missing")
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars("zeros", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "0.00") {
		t.Errorf("zero bars output: %q", out)
	}
}
