package core

import (
	"testing"

	"powl/internal/datagen"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// refStore is a deliberately naive triple store — a plain set plus one
// by-predicate bucket — sharing no code with rdf.Graph's compact log and
// posting-list indexes. It exists so the closure test below checks the
// production store against an independent implementation, not against
// itself.
type refStore struct {
	set map[rdf.Triple]struct{}
	byP map[rdf.ID][]rdf.Triple
	all []rdf.Triple
}

func newRefStore() *refStore {
	return &refStore{set: map[rdf.Triple]struct{}{}, byP: map[rdf.ID][]rdf.Triple{}}
}

func (r *refStore) add(t rdf.Triple) bool {
	if _, ok := r.set[t]; ok {
		return false
	}
	r.set[t] = struct{}{}
	r.byP[t.P] = append(r.byP[t.P], t)
	r.all = append(r.all, t)
	return true
}

// refBind extends the named-variable binding with one atom/triple match,
// returning the variables it newly bound (for undo) and whether it matched.
func refBind(a rules.Atom, t rdf.Triple, b map[string]rdf.ID) ([]string, bool) {
	var fresh []string
	undo := func() {
		for _, v := range fresh {
			delete(b, v)
		}
	}
	for _, pv := range [3]struct {
		spec rules.TermSpec
		val  rdf.ID
	}{{a.S, t.S}, {a.P, t.P}, {a.O, t.O}} {
		if !pv.spec.IsVar {
			if pv.spec.ID != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		if cur, ok := b[pv.spec.Var]; ok {
			if cur != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		b[pv.spec.Var] = pv.val
		fresh = append(fresh, pv.spec.Var)
	}
	return fresh, true
}

// refEvalBody enumerates body matches left to right (no reordering, no
// selectivity tricks) and calls yield under each complete binding.
func refEvalBody(st *refStore, body []rules.Atom, i int, b map[string]rdf.ID, yield func()) {
	if i == len(body) {
		yield()
		return
	}
	a := body[i]
	candidates := st.all
	if !a.P.IsVar {
		candidates = st.byP[a.P.ID]
	} else if v, ok := b[a.P.Var]; ok {
		candidates = st.byP[v]
	}
	// Appends during iteration are invisible to this range (len is
	// snapshotted); the enclosing naive fixpoint loop re-runs the rule, so
	// nothing is lost.
	for _, t := range candidates {
		if fresh, ok := refBind(a, t, b); ok {
			refEvalBody(st, body, i+1, b, yield)
			for _, v := range fresh {
				delete(b, v)
			}
		}
	}
}

func refInstantiate(a rules.Atom, b map[string]rdf.ID) rdf.Triple {
	resolve := func(s rules.TermSpec) rdf.ID {
		if s.IsVar {
			return b[s.Var]
		}
		return s.ID
	}
	return rdf.Triple{S: resolve(a.S), P: resolve(a.P), O: resolve(a.O)}
}

// refClosure computes the closure of base under rs by naive (not semi-naive)
// fixpoint iteration: every rule re-evaluated from scratch each pass until a
// full pass derives nothing new.
func refClosure(base []rdf.Triple, rs []rules.Rule) *refStore {
	st := newRefStore()
	for _, t := range base {
		st.add(t)
	}
	for changed := true; changed; {
		changed = false
		for _, r := range rs {
			b := map[string]rdf.ID{}
			refEvalBody(st, r.Body, 0, b, func() {
				for _, h := range r.Head {
					if st.add(refInstantiate(h, b)) {
						changed = true
					}
				}
			})
		}
	}
	return st
}

// TestClosureMatchesReferenceStore materializes the Quick-scale LUBM and
// UOBM datasets through the production path (compact graph store + forward
// engine) and through the naive reference store above, and requires
// identical closures. This is the end-to-end guard for the store rewrite:
// any divergence in indexing, dedup, match extents, or join ordering shows
// up as a closure mismatch here.
func TestClosureMatchesReferenceStore(t *testing.T) {
	if testing.Short() {
		t.Skip("closure cross-check is slow under -short")
	}
	datasets := []*datagen.Dataset{
		datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7}),
		datagen.UOBM(datagen.UOBMConfig{Universities: 2, Seed: 7}),
	}
	for _, ds := range datasets {
		t.Run(ds.Name, func(t *testing.T) {
			res, err := MaterializeSerial(ds, ForwardEngine)
			if err != nil {
				t.Fatal(err)
			}

			compiled := owlhorst.Compile(ds.Dict, ds.Graph)
			base := append(owlhorst.SplitInstance(ds.Dict, ds.Graph), compiled.Schema.Triples()...)
			ref := refClosure(base, compiled.InstanceRules)

			if res.Graph.Len() != len(ref.set) {
				t.Fatalf("closure size mismatch: graph store %d, reference %d", res.Graph.Len(), len(ref.set))
			}
			for _, tr := range res.Graph.Triples() {
				if _, ok := ref.set[tr]; !ok {
					t.Fatalf("graph store derived %v; reference closure does not contain it", tr)
				}
			}
		})
	}
}
