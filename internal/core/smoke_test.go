package core

import (
	"testing"

	"powl/internal/datagen"
)

// TestSmoke_ParallelMatchesSerial is the foundational invariant: for every
// strategy × policy, the union of the workers' outputs equals the serial
// forward closure.
func TestSmoke_ParallelMatchesSerial(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
	t.Logf("lubm tiny: %d triples", ds.Graph.Len())

	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial closure: %d triples (%d inferred)", serial.Graph.Len(), serial.Inferred)
	if serial.Inferred == 0 {
		t.Fatal("serial run inferred nothing; dataset or rules are broken")
	}

	hybrid, err := MaterializeSerial(ds, HybridEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !hybrid.Graph.Equal(serial.Graph) {
		only := hybrid.Graph.Diff(serial.Graph)
		missing := serial.Graph.Diff(hybrid.Graph)
		for i, tr := range only {
			if i >= 5 {
				break
			}
			t.Errorf("hybrid-only: %s", ds.Dict.FormatTriple(tr))
		}
		for i, tr := range missing {
			if i >= 5 {
				break
			}
			t.Errorf("hybrid-missing: %s", ds.Dict.FormatTriple(tr))
		}
		t.Fatalf("hybrid closure %d != forward closure %d", hybrid.Graph.Len(), serial.Graph.Len())
	}

	for _, cfg := range []Config{
		{Workers: 3, Strategy: DataPartitioning, Policy: GraphPolicy},
		{Workers: 3, Strategy: DataPartitioning, Policy: HashPolicy},
		{Workers: 3, Strategy: DataPartitioning, Policy: DomainPolicy},
		{Workers: 3, Strategy: RulePartitioning},
	} {
		res, err := Materialize(ds, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Strategy, cfg.Policy, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			missing := serial.Graph.Diff(res.Graph)
			for i, tr := range missing {
				if i >= 10 {
					break
				}
				t.Errorf("%s/%s missing: %s", cfg.Strategy, cfg.Policy, ds.Dict.FormatTriple(tr))
			}
			extra := res.Graph.Diff(serial.Graph)
			for i, tr := range extra {
				if i >= 10 {
					break
				}
				t.Errorf("%s/%s extra: %s", cfg.Strategy, cfg.Policy, ds.Dict.FormatTriple(tr))
			}
			t.Fatalf("%s/%s: parallel %d != serial %d (rounds=%d)",
				cfg.Strategy, cfg.Policy, res.Graph.Len(), serial.Graph.Len(), res.Rounds)
		}
		t.Logf("%s/%s ok: rounds=%d inferred=%d", cfg.Strategy, cfg.Policy, res.Rounds, res.Inferred)
	}
}
