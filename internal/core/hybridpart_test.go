package core

import (
	"testing"

	"powl/internal/datagen"
)

// TestHybridPartitioningMatchesSerial: the future-work combined strategy
// produces the exact serial closure for several worker grids.
func TestHybridPartitioningMatchesSerial(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7, DeptsPerUniv: 4})
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 6, 8} {
		res, err := Materialize(ds, Config{
			Workers:  k,
			Strategy: HybridPartitioning,
			Policy:   GraphPolicy,
			Seed:     42,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			missing := serial.Graph.Diff(res.Graph)
			for i, tr := range missing {
				if i >= 5 {
					break
				}
				t.Errorf("missing: %s", ds.Dict.FormatTriple(tr))
			}
			t.Fatalf("k=%d: hybrid closure %d != serial %d", k, res.Graph.Len(), serial.Graph.Len())
		}
		if res.Metrics == nil {
			t.Errorf("k=%d: hybrid strategy should report data-partition metrics", k)
		}
	}
}

func TestHybridPartitioningAllPolicies(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 3, Seed: 7})
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []PolicyKind{GraphPolicy, HashPolicy, DomainPolicy} {
		res, err := Materialize(ds, Config{
			Workers: 6, Strategy: HybridPartitioning, Policy: pol, Seed: 42,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("%s: closure mismatch", pol)
		}
	}
}

func TestFactorWorkers(t *testing.T) {
	cases := []struct {
		k, nRules, kd, kr int
	}{
		{8, 100, 4, 2},
		{6, 100, 3, 2},
		{9, 100, 3, 3},
		{7, 100, 7, 1}, // prime: degenerate to pure data partitioning
		{4, 1, 4, 1},   // too few rules to split
		{1, 100, 1, 1},
	}
	for _, c := range cases {
		kd, kr := factorWorkers(c.k, c.nRules)
		if kd != c.kd || kr != c.kr {
			t.Errorf("factorWorkers(%d, %d) = (%d,%d), want (%d,%d)", c.k, c.nRules, kd, kr, c.kd, c.kr)
		}
		if kd*kr != c.k {
			t.Errorf("factorWorkers(%d, %d) does not multiply back", c.k, c.nRules)
		}
	}
}

// TestHybridPartitioningSimulated exercises the simulated-time path and the
// reporting fields.
func TestHybridPartitioningSimulated(t *testing.T) {
	ds := datagen.UOBM(datagen.UOBMConfig{Universities: 2, Seed: 7, DeptsPerUniv: 4})
	res, err := Materialize(ds, Config{
		Workers: 4, Strategy: HybridPartitioning, Policy: HashPolicy,
		Engine: ForwardEngine, Simulate: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || len(res.RoundStats) == 0 {
		t.Error("simulated hybrid run missing timings")
	}
	if res.RuleCut < 0 {
		t.Error("negative rule cut")
	}
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(serial.Graph) {
		t.Fatal("closure mismatch")
	}
}
