// Package core is powl's public façade: it wires the paper's pipeline
// together — ontology compilation (owlhorst), workload partitioning
// (partition / rulepart), transports, and the round-based parallel reasoner
// (cluster) — behind a single Materialize call. The cmd tools, examples and
// benchmarks all drive this package.
package core

import (
	"fmt"
	"os"
	"time"

	"powl/internal/cluster"
	"powl/internal/datagen"
	"powl/internal/faultinject"
	"powl/internal/gpart"
	"powl/internal/obs"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rulepart"
	"powl/internal/rules"
	"powl/internal/transport"
)

// Strategy selects how the computational workload is partitioned (§III).
type Strategy string

const (
	// DataPartitioning partitions the instance triples; every worker runs
	// the full rule set (§III-A).
	DataPartitioning Strategy = "data"
	// RulePartitioning partitions the rule set; every worker holds the full
	// data (§III-B).
	RulePartitioning Strategy = "rule"
)

// PolicyKind selects the ownership policy for data partitioning.
type PolicyKind string

const (
	// GraphPolicy uses the multilevel graph partitioner (the METIS
	// stand-in).
	GraphPolicy PolicyKind = "graph"
	// HashPolicy hashes resource names.
	HashPolicy PolicyKind = "hash"
	// DomainPolicy groups resources by the dataset's locality key.
	DomainPolicy PolicyKind = "domain"
)

// EngineKind selects the rule engine.
type EngineKind string

const (
	// ForwardEngine is semi-naive bottom-up datalog.
	ForwardEngine EngineKind = "forward"
	// HybridEngine is the Jena-style per-resource backward materializer.
	HybridEngine EngineKind = "hybrid"
	// HybridSharedEngine is HybridEngine with the subgoal table shared
	// across resource queries (an ablation of the paper's worst case).
	HybridSharedEngine EngineKind = "hybrid-shared"
	// ReteEngine is forward chaining through a Rete network, the algorithm
	// Jena's forward engine uses (§V).
	ReteEngine EngineKind = "rete"
)

// TransportKind selects the inter-partition communication mechanism.
type TransportKind string

const (
	// MemTransport exchanges interned triples through shared memory.
	MemTransport TransportKind = "mem"
	// FileTransport writes N-Triples files into a shared directory, as the
	// paper's implementation did.
	FileTransport TransportKind = "file"
	// TCPTransport is an MPI-like mesh of loopback TCP connections.
	TCPTransport TransportKind = "tcp"
)

// Config configures a parallel materialization.
type Config struct {
	// Workers is the number of partitions/processors; 1 degenerates to a
	// serial run through the same machinery.
	Workers int
	// Strategy defaults to DataPartitioning.
	Strategy Strategy
	// Policy defaults to GraphPolicy (data strategy only).
	Policy PolicyKind
	// Engine defaults to ForwardEngine.
	Engine EngineKind
	// Threads fans rule firing inside each worker out over this many
	// goroutines (reason.Forward.Threads): piecewise stratified scheduling
	// with per-goroutine scratches, merged through the single-writer
	// commit. 0 or 1 keeps every worker's fixpoint serial. Orthogonal to
	// Workers: Workers partitions the KB across processes, Threads fans the
	// fixpoint out inside each one. The hybrid engines apply it to their
	// incremental closes only; Rete ignores it (its memories are one
	// mutable network).
	Threads int
	// Transport defaults to MemTransport.
	Transport TransportKind
	// Seed drives the deterministic pseudo-random choices of the graph
	// partitioner.
	Seed int64
	// TempDir hosts the FileTransport's message directory; "" uses the
	// system temp dir.
	TempDir string
	// Simulate runs the workers sequentially and reconstructs the parallel
	// elapsed time from per-phase measurements (cluster.Simulated); use it
	// to measure speedups on hosts with fewer cores than workers.
	Simulate bool
	// MaxRounds caps reasoning rounds (safety net); 0 means the cluster
	// default.
	MaxRounds int
	// Obs, when non-nil, journals the run (phase spans, per-rule profiles,
	// per-pair transport traffic); its recorder is attached to whichever
	// transport the run constructs. nil disables all telemetry.
	Obs *obs.Run
	// Provenance enables the derivation side-column on every worker graph
	// and the aggregated result: each derived triple records the rule,
	// round and premises that produced it, and lineage rides along with
	// shipped deltas and checkpoints so cross-worker derivations stay
	// explainable. Costs ~16 B per derivation plus sidecar traffic.
	Provenance bool
	// Recovery, when non-nil, arms the cluster layer's transport-generic
	// worker recovery: per-round delta checkpoints, a failure detector, and
	// partition adoption by a surviving worker. nil fails the whole run on
	// any worker error, as before.
	Recovery *cluster.RecoveryConfig
	// Inject holds optional per-worker fault schedules passed through to the
	// cluster layer: Inject[i] drives worker i; nil entries inject nothing.
	Inject []*faultinject.Injector
	// TransportFault, when non-nil, wraps the constructed transport in a
	// fault-injecting shim driven by this injector — send/recv faults,
	// delays, and scheduled connection drops (drop=..,dropfrom=..,dropto=..).
	TransportFault *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Strategy == "" {
		c.Strategy = DataPartitioning
	}
	if c.Policy == "" {
		c.Policy = GraphPolicy
	}
	if c.Engine == "" {
		c.Engine = ForwardEngine
	}
	if c.Transport == "" {
		c.Transport = MemTransport
	}
	return c
}

// Result of a parallel materialization.
type Result struct {
	// Graph is the union of base and inferred triples across all workers.
	Graph *rdf.Graph
	// Inferred is the number of triples beyond the input.
	Inferred int
	// Rounds until global quiescence.
	Rounds int
	// Elapsed is total wall-clock time (partitioning excluded).
	Elapsed time.Duration
	// PerWorker timing breakdowns (Figure 2's categories).
	PerWorker []cluster.Timings
	// PartitionTime is the cost of the partitioning step (Table I).
	PartitionTime time.Duration
	// Metrics holds bal/IR for the data strategy (nil for rule strategy).
	Metrics *partition.Metrics
	// OR is the output replication: Σ(per-worker result size)/|union| − 1.
	OR float64
	// RuleCut is the dependency edge cut (rule strategy only).
	RuleCut int64
	// RoundStats holds per-round maxima (Simulate mode only).
	RoundStats []cluster.RoundStat
	// Recovered maps each dead worker to the live worker that adopted its
	// partition (recovery runs only; empty otherwise).
	Recovered map[int]int
}

// Materialize runs the configured parallel reasoner over the dataset and
// returns the materialized KB.
//
//powl:ignore wallclock cost-model timing is a real measurement reported as a duration, never a timestamp in serialized output.
func Materialize(ds *datagen.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	engine, err := engineFor(cfg.Engine, cfg.Threads)
	if err != nil {
		return nil, err
	}
	if err := reason.ValidateRules(compiled.InstanceRules); err != nil {
		return nil, err
	}

	var (
		assigns []cluster.Assignment
		router  cluster.Router
		res     = &Result{}
	)
	schema := compiled.Schema.Triples()

	switch cfg.Strategy {
	case DataPartitioning:
		pol, err := policyFor(cfg, ds)
		if err != nil {
			return nil, err
		}
		in := &partition.Input{
			Dict:     ds.Dict,
			Instance: instance,
			Skip:     owlhorst.SchemaElements(ds.Dict, compiled.Schema),
		}
		var costModelTime time.Duration
		if gp, ok := pol.(partition.GraphPolicy); ok {
			// Refine the graph policy's balance objective with an a-priori
			// cost model: a node's reasoning load tracks its degree in the
			// *closure*, not the base graph, so estimate it with one cheap
			// forward-engine pass. This is the weighting the paper suggests
			// when distribution knowledge is available (§III-B); its cost
			// counts toward the measured partitioning time.
			t0 := time.Now()
			gp.CostWeights = closureCostWeights(instance, compiled)
			costModelTime = time.Since(t0)
			pol = gp
		}
		pres, err := partition.Partition(in, cfg.Workers, pol)
		if err != nil {
			return nil, err
		}
		res.PartitionTime = pres.Elapsed + costModelTime
		m := partition.ComputeMetrics(in, pres)
		res.Metrics = &m
		assigns = make([]cluster.Assignment, cfg.Workers)
		for i := range assigns {
			base := make([]rdf.Triple, 0, len(pres.Parts[i])+len(schema))
			base = append(base, pres.Parts[i]...)
			base = append(base, schema...)
			assigns[i] = cluster.Assignment{Base: base, Rules: compiled.InstanceRules}
		}
		router = ownerRouter{owner: pres.Owner}

	case RulePartitioning:
		rres, err := rulepart.Partition(compiled.InstanceRules, cfg.Workers, rulepart.Options{
			Gpart: gpart.Options{Seed: cfg.Seed},
		})
		if err != nil {
			return nil, err
		}
		res.PartitionTime = rres.Elapsed
		res.RuleCut = rres.CutWeight
		assigns = make([]cluster.Assignment, cfg.Workers)
		for i := range assigns {
			base := make([]rdf.Triple, 0, len(instance)+len(schema))
			base = append(base, instance...)
			base = append(base, schema...)
			assigns[i] = cluster.Assignment{Base: base, Rules: subset(compiled.InstanceRules, rres.Groups[i])}
		}
		router = rulepart.NewRouter(compiled.InstanceRules, rres)

	case HybridPartitioning:
		assigns, router, err = hybridAssignments(ds, cfg, compiled, instance, res)
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("core: unknown strategy %q", cfg.Strategy)
	}

	tr, cleanup, err := transportFor(cfg, ds.Dict)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if cfg.TransportFault != nil {
		tr = &faultinject.Transport{Inner: tr, Inj: cfg.TransportFault}
	}

	mode := cluster.Concurrent
	if cfg.Simulate {
		mode = cluster.Simulated
	}
	cres, err := cluster.Run(cluster.Config{
		Engine:     engine,
		Transport:  tr,
		Router:     router,
		Mode:       mode,
		MaxRounds:  cfg.MaxRounds,
		Obs:        cfg.Obs,
		Provenance: cfg.Provenance,
		Recovery:   cfg.Recovery,
		Inject:     cfg.Inject,
	}, assigns)
	if err != nil {
		return nil, err
	}

	res.Graph = cres.Graph
	res.RoundStats = cres.RoundStats
	res.Rounds = cres.Rounds
	res.Elapsed = cres.Elapsed
	res.PerWorker = cres.PerWorker
	res.Inferred = cres.Graph.Len() - ds.Graph.Len()
	res.OR = partition.OutputReplication(cres.OutputSizes, cres.Graph.Len())
	res.Recovered = cres.Recovered
	return res, nil
}

// SerialResult is the outcome of a single-processor materialization.
type SerialResult struct {
	Graph    *rdf.Graph
	Inferred int
	Elapsed  time.Duration
}

// MaterializeSerial closes the dataset on one processor with the given
// engine — the baseline all speedups are measured against. It uses the same
// compile-then-run pipeline as the parallel path.
//
//powl:ignore wallclock the serial baseline's Elapsed is the paper's wall-clock measurement (Table I).
func MaterializeSerial(ds *datagen.Dataset, kind EngineKind) (*SerialResult, error) {
	engine, err := engineFor(kind, 0)
	if err != nil {
		return nil, err
	}
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	g := rdf.NewGraphCap(len(instance) + compiled.Schema.Len())
	g.AddAll(instance)
	g.Union(compiled.Schema)
	start := time.Now()
	n := engine.Materialize(g, compiled.InstanceRules)
	return &SerialResult{Graph: g, Inferred: n, Elapsed: time.Since(start)}, nil
}

// closureCostWeights estimates each node's reasoning cost as 2 plus its
// degree in the forward closure of the instance data.
func closureCostWeights(instance []rdf.Triple, compiled *owlhorst.Compiled) map[rdf.ID]int64 {
	g := rdf.NewGraphCap(2 * len(instance))
	g.AddAll(instance)
	g.Union(compiled.Schema)
	reason.Forward{}.Materialize(g, compiled.InstanceRules)
	w := map[rdf.ID]int64{}
	for _, t := range g.TriplesSince(0) {
		w[t.S]++
		w[t.O]++
	}
	for id := range w {
		w[id] += 2
	}
	return w
}

// ownerRouter implements the data-partitioning routing rule of §IV: a tuple
// goes to the owner of its subject and the owner of its object. Terms
// without an owner (schema resources, replicated everywhere) route nowhere.
type ownerRouter struct {
	owner map[rdf.ID]int
}

// Destinations implements cluster.Router.
func (r ownerRouter) Destinations(t rdf.Triple, from int) []int {
	var out []int
	if p, ok := r.owner[t.S]; ok && p != from {
		out = append(out, p)
	}
	if q, ok := r.owner[t.O]; ok && q != from {
		if len(out) == 0 || out[0] != q {
			out = append(out, q)
		}
	}
	return out
}

func engineFor(kind EngineKind, threads int) (reason.Engine, error) {
	switch kind {
	case ForwardEngine, "":
		return reason.Forward{Threads: threads}, nil
	case HybridEngine:
		return reason.Hybrid{Threads: threads}, nil
	case HybridSharedEngine:
		return reason.Hybrid{SharedTable: true, Threads: threads}, nil
	case ReteEngine:
		return reason.Rete{}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine %q", kind)
	}
}

func policyFor(cfg Config, ds *datagen.Dataset) (partition.Policy, error) {
	switch cfg.Policy {
	case GraphPolicy, "":
		// A tight balance target: the slowest partition bounds the round
		// time, so 2% slack beats the partitioner's default 5%.
		return partition.GraphPolicy{Opts: gpart.Options{
			Seed:         cfg.Seed,
			Imbalance:    0.02,
			RefinePasses: 12,
		}}, nil
	case HashPolicy:
		return partition.HashPolicy{}, nil
	case DomainPolicy:
		if ds.DomainKey == nil {
			return nil, fmt.Errorf("core: dataset %q has no domain key for the domain policy", ds.Name)
		}
		return partition.DomainPolicy{KeyFunc: ds.DomainKey}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", cfg.Policy)
	}
}

func transportFor(cfg Config, dict *rdf.Dict) (transport.Transport, func(), error) {
	// rec is nil when telemetry is off; the transports skip recording then.
	rec := cfg.Obs.Transport()
	switch cfg.Transport {
	case MemTransport, "":
		tr := transport.NewMem()
		tr.Obs = rec
		return tr, func() { tr.Close() }, nil
	case FileTransport:
		dir, err := os.MkdirTemp(cfg.TempDir, "powl-msgs-*")
		if err != nil {
			return nil, nil, err
		}
		tr, err := transport.NewFile(dir, dict)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		tr.Obs = rec
		return tr, func() { tr.Close() }, nil
	case TCPTransport:
		tr, err := transport.NewTCP(cfg.Workers, dict)
		if err != nil {
			return nil, nil, err
		}
		tr.Obs = rec
		return tr, func() { tr.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown transport %q", cfg.Transport)
	}
}

func subset(rs []rules.Rule, idx []int) []rules.Rule {
	out := make([]rules.Rule, 0, len(idx))
	for _, i := range idx {
		out = append(out, rs[i])
	}
	return out
}
