package core

import (
	"strings"
	"testing"

	"powl/internal/datagen"
	"powl/internal/rdf"
)

func tinyLUBM() *datagen.Dataset {
	return datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2})
}

func TestUnknownConfigValuesRejected(t *testing.T) {
	ds := tinyLUBM()
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"engine", Config{Workers: 2, Engine: "magic"}, "unknown engine"},
		{"policy", Config{Workers: 2, Policy: "nope"}, "unknown policy"},
		{"transport", Config{Workers: 2, Transport: "pigeon"}, "unknown transport"},
		{"strategy", Config{Workers: 2, Strategy: "vibes"}, "unknown strategy"},
	}
	for _, c := range cases {
		_, err := Materialize(ds, c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestDomainPolicyRequiresDatasetKey(t *testing.T) {
	ds := tinyLUBM()
	ds.DomainKey = nil
	if _, err := Materialize(ds, Config{Workers: 2, Policy: DomainPolicy}); err == nil {
		t.Fatal("domain policy without KeyFunc accepted")
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers != 1 || cfg.Strategy != DataPartitioning || cfg.Policy != GraphPolicy ||
		cfg.Engine != ForwardEngine || cfg.Transport != MemTransport {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestMaterializeSerialUnknownEngine(t *testing.T) {
	if _, err := MaterializeSerial(tinyLUBM(), "bogus"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestAllEngineKindsMaterialize runs every engine kind end to end through
// the parallel path.
func TestAllEngineKindsMaterialize(t *testing.T) {
	ds := tinyLUBM()
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{ForwardEngine, ReteEngine, HybridEngine, HybridSharedEngine} {
		res, err := Materialize(ds, Config{Workers: 2, Engine: kind, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("%s: closure mismatch", kind)
		}
	}
}

// TestAllTransportsEndToEnd covers the full matrix transport × strategy.
func TestAllTransportsEndToEnd(t *testing.T) {
	ds := tinyLUBM()
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []TransportKind{MemTransport, FileTransport, TCPTransport} {
		for _, st := range []Strategy{DataPartitioning, RulePartitioning} {
			res, err := Materialize(ds, Config{Workers: 3, Strategy: st, Transport: tr, Seed: 42})
			if err != nil {
				t.Fatalf("%s/%s: %v", tr, st, err)
			}
			if !res.Graph.Equal(serial.Graph) {
				t.Fatalf("%s/%s: closure mismatch", tr, st)
			}
		}
	}
}

// TestWorkersClampAndDegenerate: Workers=0 behaves as serial; Workers larger
// than the node count still works.
func TestWorkersClampAndDegenerate(t *testing.T) {
	ds := tinyLUBM()
	serial, err := MaterializeSerial(ds, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 64} {
		res, err := Materialize(ds, Config{Workers: k, Policy: HashPolicy, Seed: 42})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("k=%d: closure mismatch", k)
		}
	}
}

// TestResultFieldsPopulated sanity-checks the reporting surface.
func TestResultFieldsPopulated(t *testing.T) {
	ds := tinyLUBM()
	res, err := Materialize(ds, Config{Workers: 3, Simulate: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferred <= 0 {
		t.Error("no inferences")
	}
	if res.Metrics == nil || len(res.Metrics.NodesPerPart) != 3 {
		t.Error("metrics missing")
	}
	if res.PartitionTime <= 0 {
		t.Error("partition time missing")
	}
	if len(res.PerWorker) != 3 {
		t.Error("per-worker timings missing")
	}
	if res.OR < 0 {
		t.Error("negative OR")
	}
	if res.Graph == nil || res.Graph.Len() <= ds.Graph.Len() {
		t.Error("result graph not grown")
	}
}

// TestClosureCostWeights: weights exist for every instance node and grow
// with connectivity.
func TestClosureCostWeights(t *testing.T) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	iri := func(s string) rdf.ID { return dict.InternIRI("http://t/" + s) }
	p := iri("p")
	hub := iri("hub")
	for i := 0; i < 5; i++ {
		g.Add(rdf.Triple{S: hub, P: p, O: iri("leaf" + string(rune('0'+i)))})
	}
	ds := &datagen.Dataset{Name: "w", Dict: dict, Graph: g}
	res, err := Materialize(ds, Config{Workers: 2, Policy: GraphPolicy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // the cost-model path ran; correctness covered elsewhere
}
