package core

import (
	"testing"
)

// TestMaterializeWithProvenance: the end-to-end parallel path (partition →
// cluster → aggregate) with Config.Provenance on must produce the same
// closure as without, carry a provenance side-column on the result graph,
// and explain at least one derivation down to asserted premises — the
// contract `owlinfer -explain` builds on.
func TestMaterializeWithProvenance(t *testing.T) {
	ds := tinyLUBM()
	plain, err := Materialize(ds, Config{Workers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Materialize(ds, Config{Workers: 2, Seed: 42, Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Len() != plain.Graph.Len() {
		t.Fatalf("provenance changed the closure: %d vs %d", res.Graph.Len(), plain.Graph.Len())
	}
	if res.Graph.Prov() == nil {
		t.Fatal("result graph has no provenance side-column")
	}
	explained := 0
	for _, tr := range res.Graph.Triples() {
		lin, ok := res.Graph.LineageOf(tr)
		if !ok {
			continue
		}
		if lin.Rule == "" {
			t.Fatalf("derived %v without rule attribution", tr)
		}
		if n, ok := res.Graph.Explain(tr, 0); !ok || !n.IsDerived() {
			t.Fatalf("Explain failed for %v", tr)
		}
		explained++
	}
	if explained == 0 {
		t.Fatal("no derivations recorded through the parallel path")
	}
}
