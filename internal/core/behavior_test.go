package core

import (
	"strings"
	"testing"
	"time"

	"powl/internal/datagen"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

// TestHybridEngineSuperLinearCost pins the cost profile the reproduction
// depends on (§VI-A): the hybrid engine's per-triple time must grow with
// dataset size on LUBM (worst-case searches) and stay roughly flat on UOBM.
func TestHybridEngineSuperLinearCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	measure := func(ds *datagen.Dataset) float64 {
		res, err := MaterializeSerial(ds, HybridEngine)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds() / float64(ds.Graph.Len())
	}
	lubmSmall := measure(datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7}))
	lubmBig := measure(datagen.LUBM(datagen.LUBMConfig{Universities: 10, Seed: 7}))
	if lubmBig < 1.25*lubmSmall {
		t.Errorf("LUBM per-triple cost should grow ≥1.25x from 1 to 10 universities; got %.1fµs -> %.1fµs",
			lubmSmall*1e6, lubmBig*1e6)
	}
	uobmSmall := measure(datagen.UOBM(datagen.UOBMConfig{Universities: 2, Seed: 7}))
	uobmBig := measure(datagen.UOBM(datagen.UOBMConfig{Universities: 6, Seed: 7}))
	if uobmBig > 2*uobmSmall {
		t.Errorf("UOBM per-triple cost should stay near-flat; got %.1fµs -> %.1fµs",
			uobmSmall*1e6, uobmBig*1e6)
	}
}

// TestAvfRulesDriveTheWorstCase verifies the mechanism: removing the
// compiled allValuesFrom rules removes a large share of LUBM's serial
// hybrid time.
func TestAvfRulesDriveTheWorstCase(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 6, Seed: 7})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	run := func(rs []rules.Rule) time.Duration {
		g := rdf.NewGraph()
		g.AddAll(owlhorst.SplitInstance(ds.Dict, ds.Graph))
		g.Union(compiled.Schema)
		start := time.Now()
		reason.Hybrid{}.Materialize(g, rs)
		return time.Since(start)
	}
	full := run(compiled.InstanceRules)
	var noAvf []rules.Rule
	for _, r := range compiled.InstanceRules {
		if strings.HasPrefix(r.Name, "avf-") {
			continue
		}
		noAvf = append(noAvf, r)
	}
	bare := run(noAvf)
	share := 1 - bare.Seconds()/full.Seconds()
	t.Logf("avf scan share of serial time: %.0f%% (%v vs %v)", share*100, full, bare)
	if share < 0.15 {
		t.Errorf("avf scan share %.0f%% too small to produce the paper's super-linear speedups", share*100)
	}
}

// TestRoundStatsPopulated checks the simulated runner's per-round maxima.
func TestRoundStatsPopulated(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7, DeptsPerUniv: 4})
	res, err := Materialize(ds, Config{
		Workers: 4, Strategy: DataPartitioning, Policy: GraphPolicy,
		Engine: ForwardEngine, Simulate: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundStats) != res.Rounds {
		t.Fatalf("RoundStats has %d entries for %d rounds", len(res.RoundStats), res.Rounds)
	}
	if res.RoundStats[0].MaxWork <= 0 {
		t.Error("round 0 has no work recorded")
	}
	if last := res.RoundStats[len(res.RoundStats)-1]; last.Sent != 0 {
		t.Errorf("final round sent %d tuples; termination requires 0", last.Sent)
	}
	var sum time.Duration
	for _, rs := range res.RoundStats {
		sum += rs.MaxWork + rs.MaxRecv
	}
	if sum > res.Elapsed {
		t.Errorf("round maxima (%v) exceed elapsed (%v)", sum, res.Elapsed)
	}
}

// TestSpeedupShapes is a lightweight end-to-end check of the three Fig-1
// shapes at small scale: LUBM/MDC parallelize well (speedup comfortably
// above half of k), UOBM poorly (well below).
func TestSpeedupShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	run := func(ds *datagen.Dataset, k int) float64 {
		serial, err := MaterializeSerial(ds, HybridEngine)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Materialize(ds, Config{
			Workers: k, Strategy: DataPartitioning, Policy: GraphPolicy,
			Engine: HybridEngine, Simulate: true, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("%s: closure mismatch", ds.Name)
		}
		return serial.Elapsed.Seconds() / res.Elapsed.Seconds()
	}
	if s := run(datagen.LUBM(datagen.LUBMConfig{Universities: 6, Seed: 7}), 4); s < 2 {
		t.Errorf("LUBM speedup at k=4 = %.2f; expected well above 2", s)
	}
	if s := run(datagen.UOBM(datagen.UOBMConfig{Universities: 4, Seed: 7}), 4); s > 3 {
		t.Errorf("UOBM speedup at k=4 = %.2f; expected clearly sub-linear", s)
	}
}
