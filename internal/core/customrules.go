package core

import (
	"fmt"
	"time"

	"powl/internal/cluster"
	"powl/internal/datagen"
	"powl/internal/gpart"
	"powl/internal/partition"
	"powl/internal/reason"
	"powl/internal/rulepart"
	"powl/internal/rules"
)

// MaterializeRules runs the parallel reasoner with a caller-supplied rule
// set instead of the OWL-Horst compilation pipeline — the "any reasoner
// that adheres to datalog semantics" generality the paper claims (§V).
// Every triple of the dataset is treated as instance data (there is no
// schema to split off), and nothing is replicated up front.
//
// Correctness of the data-partitioning strategy rests on the single-join
// property (§II): for rules whose body atoms all share one variable the
// ownership placement guarantees co-location of joinable tuples. Rule sets
// violating it are rejected unless cfg allows them via RulePartitioning
// (whose correctness argument does not need the property) or the rule's
// body atoms all share a common variable (the intersectionOf-style n-ary
// case, which ownership still covers).
func MaterializeRules(ds *datagen.Dataset, rs []rules.Rule, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	for _, r := range rs {
		if !r.IsSafe() {
			return nil, fmt.Errorf("core: rule %q is unsafe (head variable not bound in body)", r.Name)
		}
	}
	if cfg.Strategy == DataPartitioning || cfg.Strategy == HybridPartitioning {
		for _, r := range rs {
			if len(r.Body) >= 2 && !sharesOwnedVariable(r) {
				return nil, fmt.Errorf(
					"core: rule %q has no variable shared across all body atoms in subject/object position; data partitioning cannot guarantee completeness for it (use Strategy: RulePartitioning)", r.Name)
			}
		}
	}

	engine, err := engineFor(cfg.Engine, cfg.Threads)
	if err != nil {
		return nil, err
	}
	if err := reason.ValidateRules(rs); err != nil {
		return nil, err
	}
	instance := ds.Graph.Triples()

	var (
		assigns []cluster.Assignment
		router  cluster.Router
		res     = &Result{}
	)
	switch cfg.Strategy {
	case DataPartitioning:
		pol, err := policyFor(cfg, ds)
		if err != nil {
			return nil, err
		}
		in := &partition.Input{Dict: ds.Dict, Instance: instance}
		pres, err := partition.Partition(in, cfg.Workers, pol)
		if err != nil {
			return nil, err
		}
		res.PartitionTime = pres.Elapsed
		m := partition.ComputeMetrics(in, pres)
		res.Metrics = &m
		assigns = make([]cluster.Assignment, cfg.Workers)
		for i := range assigns {
			assigns[i] = cluster.Assignment{Base: pres.Parts[i], Rules: rs}
		}
		router = ownerRouter{owner: pres.Owner}

	case RulePartitioning:
		rres, err := rulepart.Partition(rs, cfg.Workers, rulepart.Options{
			Gpart: gpart.Options{Seed: cfg.Seed},
		})
		if err != nil {
			return nil, err
		}
		res.PartitionTime = rres.Elapsed
		res.RuleCut = rres.CutWeight
		assigns = make([]cluster.Assignment, cfg.Workers)
		for i := range assigns {
			assigns[i] = cluster.Assignment{Base: instance, Rules: subset(rs, rres.Groups[i])}
		}
		router = rulepart.NewRouter(rs, rres)

	default:
		return nil, fmt.Errorf("core: strategy %q is not supported with custom rules", cfg.Strategy)
	}

	tr, cleanup, err := transportFor(cfg, ds.Dict)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	mode := cluster.Concurrent
	if cfg.Simulate {
		mode = cluster.Simulated
	}
	cres, err := cluster.Run(cluster.Config{
		Engine:     engine,
		Transport:  tr,
		Router:     router,
		Mode:       mode,
		MaxRounds:  cfg.MaxRounds,
		Provenance: cfg.Provenance,
	}, assigns)
	if err != nil {
		return nil, err
	}
	res.Graph = cres.Graph
	res.RoundStats = cres.RoundStats
	res.Rounds = cres.Rounds
	res.Elapsed = cres.Elapsed
	res.PerWorker = cres.PerWorker
	res.Inferred = cres.Graph.Len() - ds.Graph.Len()
	res.OR = partition.OutputReplication(cres.OutputSizes, cres.Graph.Len())
	return res, nil
}

// sharesOwnedVariable reports whether some variable occurs in the subject
// or object position of *every* body atom of r. This is the n-ary
// generalization of the single-join property under which resource ownership
// co-locates all joinable tuples: triples are placed on the owners of their
// subject and object, so only a join variable in those positions guarantees
// that every participating tuple is present on the shared resource's owner.
// (A variable shared through a predicate position — as in the rdfs7 meta
// rule — does not qualify: tuples are not placed on their predicate's
// owner. The compiled OWL-Horst instance rules never join on predicates,
// which is why the paper's data partitioning is complete for them.)
func sharesOwnedVariable(r rules.Rule) bool {
	if len(r.Body) == 0 {
		return true
	}
	ownedVars := func(a rules.Atom) map[string]bool {
		out := map[string]bool{}
		if a.S.IsVar {
			out[a.S.Var] = true
		}
		if a.O.IsVar {
			out[a.O.Var] = true
		}
		return out
	}
	candidates := ownedVars(r.Body[0])
	for _, a := range r.Body[1:] {
		here := ownedVars(a)
		for v := range candidates {
			if !here[v] {
				delete(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return false
		}
	}
	return true
}

// SerialRules closes the dataset under rs on one processor — the baseline
// for MaterializeRules.
//
//powl:ignore wallclock serial baseline Elapsed is a wall-clock measurement, mirroring MaterializeSerial.
func SerialRules(ds *datagen.Dataset, rs []rules.Rule, kind EngineKind) (*SerialResult, error) {
	engine, err := engineFor(kind, 0)
	if err != nil {
		return nil, err
	}
	if err := reason.ValidateRules(rs); err != nil {
		return nil, err
	}
	g := ds.Graph.Clone()
	start := time.Now()
	n := engine.Materialize(g, rs)
	return &SerialResult{Graph: g, Inferred: n, Elapsed: time.Since(start)}, nil
}
