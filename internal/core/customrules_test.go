package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"powl/internal/datagen"
	"powl/internal/rdf"
	"powl/internal/rules"
)

func customDataset(t *testing.T, nChains, chainLen int) *datagen.Dataset {
	t.Helper()
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	p := dict.InternIRI("http://t/p")
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < nChains; c++ {
		prev := dict.InternIRI(fmt.Sprintf("http://t/c%d/n0", c))
		for i := 1; i < chainLen; i++ {
			cur := dict.InternIRI(fmt.Sprintf("http://t/c%d/n%d", c, i))
			g.Add(rdf.Triple{S: prev, P: p, O: cur})
			prev = cur
		}
		// A few random extra edges inside the chain's namespace.
		for i := 0; i < 3; i++ {
			a := dict.InternIRI(fmt.Sprintf("http://t/c%d/n%d", c, rng.Intn(chainLen)))
			b := dict.InternIRI(fmt.Sprintf("http://t/c%d/n%d", c, rng.Intn(chainLen)))
			g.Add(rdf.Triple{S: a, P: p, O: b})
		}
	}
	return &datagen.Dataset{Name: "chains", Dict: dict, Graph: g}
}

const customRuleText = `
@prefix t: <http://t/> .
[trans: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]
[sym:   (?x t:p ?y) -> (?y t:q ?x)]
[chain: (?x t:q ?y) (?y t:q ?z) -> (?x t:r ?z)]
`

func TestMaterializeRulesMatchesSerial(t *testing.T) {
	ds := customDataset(t, 4, 8)
	rs := rules.MustParse(customRuleText, ds.Dict)
	serial, err := SerialRules(ds, rs, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Inferred == 0 {
		t.Fatal("custom rules inferred nothing")
	}
	for _, cfg := range []Config{
		{Workers: 3, Strategy: DataPartitioning, Policy: GraphPolicy, Seed: 42},
		{Workers: 3, Strategy: DataPartitioning, Policy: HashPolicy, Seed: 42},
		{Workers: 2, Strategy: RulePartitioning, Seed: 42},
	} {
		res, err := MaterializeRules(ds, rs, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Strategy, cfg.Policy, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("%s/%s: closure %d != serial %d; missing=%v",
				cfg.Strategy, cfg.Policy, res.Graph.Len(), serial.Graph.Len(),
				serial.Graph.Diff(res.Graph))
		}
	}
}

func TestMaterializeRulesRejectsUnsafeRules(t *testing.T) {
	ds := customDataset(t, 1, 3)
	x, y, z := rules.Var("x"), rules.Var("y"), rules.Var("z")
	p := rules.Const(ds.Dict.InternIRI("http://t/p"))
	unsafe := []rules.Rule{{
		Name: "unsafe",
		Body: []rules.Atom{{S: x, P: p, O: y}},
		Head: []rules.Atom{{S: x, P: p, O: z}}, // z unbound
	}}
	if _, err := MaterializeRules(ds, unsafe, Config{Workers: 2}); err == nil {
		t.Fatal("unsafe rule accepted")
	}
}

func TestMaterializeRulesRejectsNonSingleJoinForDataStrategy(t *testing.T) {
	ds := customDataset(t, 1, 4)
	rs := rules.MustParse(`
@prefix t: <http://t/> .
[cart: (?a t:p ?b) (?c t:p ?d) -> (?a t:r ?d)]
[loop: (?a t:r ?b) -> (?b t:s ?a)]
`, ds.Dict)
	_, err := MaterializeRules(ds, rs, Config{Workers: 2, Strategy: DataPartitioning})
	if err == nil || !strings.Contains(err.Error(), "subject/object position") {
		t.Fatalf("cartesian rule accepted under data partitioning: %v", err)
	}
	// The same rule set is legal under rule partitioning (full data on
	// every worker).
	serial, err := SerialRules(ds, rs, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaterializeRules(ds, rs, Config{Workers: 2, Strategy: RulePartitioning})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Equal(serial.Graph) {
		t.Fatal("rule partitioning closure mismatch on cartesian rule")
	}
}

func TestMaterializeRulesRejectsPredicatePositionJoin(t *testing.T) {
	ds := customDataset(t, 1, 4)
	// rdfs7-style: the join variable ?p occurs as atom 2's predicate —
	// ownership cannot co-locate these tuples.
	rs := rules.MustParse(`
@prefix t: <http://t/> .
[sp: (?p t:sub ?q) (?x ?p ?y) -> (?x ?q ?y)]
`, ds.Dict)
	_, err := MaterializeRules(ds, rs, Config{Workers: 2, Strategy: DataPartitioning})
	if err == nil {
		t.Fatal("predicate-position join accepted under data partitioning")
	}
}

func TestSharesOwnedVariable(t *testing.T) {
	dict := rdf.NewDict()
	p := rules.Const(dict.InternIRI("http://t/p"))
	x, y, z, w := rules.Var("x"), rules.Var("y"), rules.Var("z"), rules.Var("w")
	cases := []struct {
		name string
		r    rules.Rule
		want bool
	}{
		{"empty body", rules.Rule{}, true},
		{"single atom", rules.Rule{Body: []rules.Atom{{S: x, P: p, O: y}}}, true},
		{"shared subject", rules.Rule{Body: []rules.Atom{{S: x, P: p, O: y}, {S: x, P: p, O: z}}}, true},
		{"chained S-O", rules.Rule{Body: []rules.Atom{{S: x, P: p, O: y}, {S: y, P: p, O: z}}}, true},
		{"disjoint", rules.Rule{Body: []rules.Atom{{S: x, P: p, O: y}, {S: z, P: p, O: w}}}, false},
		{"predicate join", rules.Rule{Body: []rules.Atom{{S: x, P: p, O: y}, {S: z, P: y, O: w}}}, false},
		{"triple shared", rules.Rule{Body: []rules.Atom{
			{S: x, P: p, O: y}, {S: x, P: p, O: z}, {S: w, P: p, O: x},
		}}, true},
	}
	for _, c := range cases {
		if got := sharesOwnedVariable(c.r); got != c.want {
			t.Errorf("%s: sharesOwnedVariable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMaterializeRulesSimulatedAndTransports(t *testing.T) {
	ds := customDataset(t, 3, 6)
	rs := rules.MustParse(customRuleText, ds.Dict)
	serial, err := SerialRules(ds, rs, ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []TransportKind{MemTransport, FileTransport, TCPTransport} {
		res, err := MaterializeRules(ds, rs, Config{
			Workers: 3, Strategy: DataPartitioning, Policy: HashPolicy,
			Transport: tr, Simulate: tr == MemTransport, Seed: 42,
		})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if !res.Graph.Equal(serial.Graph) {
			t.Fatalf("%s: closure mismatch", tr)
		}
	}
}
