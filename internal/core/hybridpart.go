package core

import (
	"fmt"

	"powl/internal/cluster"
	"powl/internal/datagen"
	"powl/internal/gpart"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/rulepart"
)

// HybridPartitioning is the combined strategy the paper lists as future
// work (§VII, citing Shao/Bell/Hull's PDIS'91 hybrid decomposition): the
// data is partitioned kd ways by resource ownership AND the rule base kr
// ways by its dependency graph; worker (i, j) holds data slice i and rule
// group j, so Workers = kd × kr.
//
// Correctness inherits from both parents: a single-join rule r in group j
// joining tuples t1, t2 that share resource v fires on worker
// (owner(v), j), which holds both tuples (data placement) and the rule
// (rule placement). Derived tuples route to every (owner-of-endpoint,
// consuming-group) pair.
const HybridPartitioning Strategy = "hybrid"

// hybridAssignments builds the kd×kr worker grid.
func hybridAssignments(ds *datagen.Dataset, cfg Config, compiled *owlhorst.Compiled,
	instance []rdf.Triple, res *Result) ([]cluster.Assignment, cluster.Router, error) {

	kd, kr := factorWorkers(cfg.Workers, len(compiled.InstanceRules))
	if kd*kr != cfg.Workers {
		return nil, nil, fmt.Errorf("core: hybrid strategy cannot factor %d workers", cfg.Workers)
	}

	pol, err := policyFor(cfg, ds)
	if err != nil {
		return nil, nil, err
	}
	in := &partition.Input{
		Dict:     ds.Dict,
		Instance: instance,
		Skip:     owlhorst.SchemaElements(ds.Dict, compiled.Schema),
	}
	dres, err := partition.Partition(in, kd, pol)
	if err != nil {
		return nil, nil, err
	}
	rres, err := rulepart.Partition(compiled.InstanceRules, kr, rulepart.Options{
		Gpart: gpart.Options{Seed: cfg.Seed},
	})
	if err != nil {
		return nil, nil, err
	}
	res.PartitionTime = dres.Elapsed + rres.Elapsed
	m := partition.ComputeMetrics(in, dres)
	res.Metrics = &m
	res.RuleCut = rres.CutWeight

	schema := compiled.Schema.Triples()
	assigns := make([]cluster.Assignment, cfg.Workers)
	for i := 0; i < kd; i++ {
		for j := 0; j < kr; j++ {
			base := make([]rdf.Triple, 0, len(dres.Parts[i])+len(schema))
			base = append(base, dres.Parts[i]...)
			base = append(base, schema...)
			assigns[i*kr+j] = cluster.Assignment{
				Base:  base,
				Rules: subset(compiled.InstanceRules, rres.Groups[j]),
			}
		}
	}
	router := &hybridRouter{
		kd:    kd,
		kr:    kr,
		owner: dres.Owner,
		rules: rulepart.NewRouter(compiled.InstanceRules, rres),
	}
	return assigns, router, nil
}

// factorWorkers splits k into kd×kr with kr as small as possible (rule sets
// are small, §VI-D) while kr > 1 whenever k is not prime and the rule count
// allows it.
func factorWorkers(k, nRules int) (kd, kr int) {
	for _, cand := range []int{2, 3} {
		if k%cand == 0 && k > cand && cand <= nRules {
			return k / cand, cand
		}
	}
	return k, 1
}

// hybridRouter sends a tuple to every (data-owner, rule-group) worker that
// can both hold and consume it.
type hybridRouter struct {
	kd, kr int
	owner  map[rdf.ID]int
	rules  *rulepart.Router
}

// Destinations implements cluster.Router.
func (r *hybridRouter) Destinations(t rdf.Triple, from int) []int {
	var dataParts []int
	if p, ok := r.owner[t.S]; ok {
		dataParts = append(dataParts, p)
	}
	if q, ok := r.owner[t.O]; ok && (len(dataParts) == 0 || dataParts[0] != q) {
		dataParts = append(dataParts, q)
	}
	// Rule groups that consume t anywhere. The rule router's `from` is a
	// group index; pass an out-of-range group so no group is excluded.
	groups := r.rules.Destinations(t, -1)
	var out []int
	for _, dp := range dataParts {
		for _, g := range groups {
			w := dp*r.kr + g
			if w != from {
				out = append(out, w)
			}
		}
	}
	return out
}
