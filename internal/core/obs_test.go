package core

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"

	"powl/internal/obs"
)

// TestJournalReconcilesWithTimings is the telemetry acceptance test: a
// 4-worker Simulated run's journal, summed per worker and phase, must equal
// Result.PerWorker exactly — the phase events carry the same measured
// durations the cluster layer accumulates into Timings.
func TestJournalReconcilesWithTimings(t *testing.T) {
	ds := tinyLUBM()
	sink := &obs.MemSink{}
	run := obs.NewRun(sink, obs.NewRegistry())
	res, err := Materialize(ds, Config{
		Workers:  4,
		Engine:   ForwardEngine,
		Simulate: true,
		Seed:     42,
		Obs:      run,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("journal is empty")
	}

	workers, _, _, _ := obs.Summarize(events)
	if len(workers) != 4 {
		t.Fatalf("journal covers %d workers, want 4", len(workers))
	}
	for _, w := range workers {
		tm := res.PerWorker[w.Worker]
		if w.Reason != tm.Reason {
			t.Errorf("worker %d: journal reason %v != Timings.Reason %v", w.Worker, w.Reason, tm.Reason)
		}
		if w.IO() != tm.IO {
			t.Errorf("worker %d: journal send+recv %v != Timings.IO %v", w.Worker, w.IO(), tm.IO)
		}
		if w.Sync != tm.Sync {
			t.Errorf("worker %d: journal sync %v != Timings.Sync %v", w.Worker, w.Sync, tm.Sync)
		}
		if w.Rounds != tm.Rounds {
			t.Errorf("worker %d: journal rounds %d != Timings.Rounds %d", w.Worker, w.Rounds, tm.Rounds)
		}
	}

	// The aggregate phase is a master-track event carrying Timings.Aggregate.
	var agg time.Duration
	for _, e := range events {
		if e.Type == obs.EvPhase && e.Phase == obs.PhaseAggregate {
			agg += e.Duration()
		}
	}
	if agg != res.PerWorker[0].Aggregate {
		t.Errorf("journal aggregate %v != Timings.Aggregate %v", agg, res.PerWorker[0].Aggregate)
	}

	// The Simulated virtual clock must reconstruct the reported elapsed
	// time: run_end is stamped at parallel-finish + aggregation.
	var runEnd *obs.Event
	for i := range events {
		if events[i].Type == obs.EvRunEnd {
			runEnd = &events[i]
		}
	}
	if runEnd == nil {
		t.Fatal("no run_end event")
	}
	if runEnd.Duration() != res.Elapsed {
		t.Errorf("run_end dur %v != Result.Elapsed %v", runEnd.Duration(), res.Elapsed)
	}
	if runEnd.TS != int64(res.Elapsed) {
		t.Errorf("run_end ts %d != elapsed ns %d", runEnd.TS, int64(res.Elapsed))
	}

	// Per-rule profiles must be present for an instrumented engine run.
	_, rules, _, _ := obs.Summarize(events)
	if len(rules) == 0 {
		t.Error("no rule profiles journaled")
	}
	var firings int64
	for _, s := range rules {
		firings += s.Firings
	}
	if firings == 0 {
		t.Error("rule profiles recorded zero firings")
	}
}

// TestTraceExportFromRun converts a 4-worker run journal to a Chrome trace
// and checks it is valid JSON with one named track per worker plus master.
func TestTraceExportFromRun(t *testing.T) {
	ds := tinyLUBM()
	sink := &obs.MemSink{}
	res, err := Materialize(ds, Config{
		Workers:  4,
		Simulate: true,
		Seed:     42,
		Obs:      obs.NewRun(sink, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, sink.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var tracks []string
	ruleLanes := 0
	slices := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			name := e["args"].(map[string]any)["name"].(string)
			// Per-rule lanes are additive and data-dependent; the stable
			// contract is the master + per-worker tracks.
			if strings.HasPrefix(name, "rule ") {
				ruleLanes++
				continue
			}
			tracks = append(tracks, name)
		}
		if e["ph"] == "X" {
			slices++
		}
	}
	sort.Strings(tracks)
	want := []string{"master", "worker 0", "worker 1", "worker 2", "worker 3"}
	if len(tracks) != len(want) {
		t.Fatalf("tracks = %v, want %v", tracks, want)
	}
	for i := range want {
		if tracks[i] != want[i] {
			t.Fatalf("tracks = %v, want %v", tracks, want)
		}
	}
	if ruleLanes == 0 {
		t.Error("trace has no per-rule lanes")
	}
	// At least reason+send+sync+recv per worker per round, plus aggregate.
	if minSlices := 4*4*res.Rounds + 1; slices < minSlices {
		t.Errorf("trace has %d slices, want >= %d", slices, minSlices)
	}
}

// TestObsOffIdenticalClosure checks that observability changes no results:
// the closure from an instrumented run must be triple-for-triple identical
// to the closure from an uninstrumented one.
func TestObsOffIdenticalClosure(t *testing.T) {
	ds1 := tinyLUBM()
	plain, err := Materialize(ds1, Config{Workers: 4, Simulate: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds2 := tinyLUBM()
	sink := &obs.MemSink{}
	observed, err := Materialize(ds2, Config{
		Workers: 4, Simulate: true, Seed: 42,
		Obs: obs.NewRun(sink, obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Graph.Len() != observed.Graph.Len() {
		t.Fatalf("closure sizes differ: %d (plain) vs %d (observed)",
			plain.Graph.Len(), observed.Graph.Len())
	}
	// Same generator and seeds, so the interned IDs line up and triples
	// compare directly.
	for _, tr := range plain.Graph.Triples() {
		if !observed.Graph.Has(tr) {
			t.Fatalf("triple %v missing from observed-run closure", tr)
		}
	}
	if len(sink.Events()) == 0 {
		t.Fatal("observed run journaled nothing")
	}
}

// TestObsRecorderOnAllTransports checks every transport kind feeds the
// per-pair recorder.
func TestObsRecorderOnAllTransports(t *testing.T) {
	for _, kind := range []TransportKind{MemTransport, FileTransport, TCPTransport} {
		sink := &obs.MemSink{}
		run := obs.NewRun(sink, nil)
		_, err := Materialize(tinyLUBM(), Config{
			Workers: 2, Transport: kind, Simulate: true, Seed: 42,
			TempDir: t.TempDir(), Obs: run,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pairs := run.Transport().Pairs()
		if len(pairs) == 0 {
			t.Errorf("%s: no transport pairs recorded", kind)
			continue
		}
		var triples, bytes int64
		for _, p := range pairs {
			triples += p.Triples
			bytes += p.Bytes
		}
		if triples == 0 {
			t.Errorf("%s: zero triples recorded", kind)
		}
		// Serializing transports must account payload bytes; mem must not.
		if kind == MemTransport && bytes != 0 {
			t.Errorf("mem: recorded %d bytes, want 0", bytes)
		}
		if kind != MemTransport && bytes == 0 {
			t.Errorf("%s: recorded zero payload bytes", kind)
		}
	}
}
