package datagen

import "powl/internal/rdf"

// UOBMConfig scales the UOBM generator; the paper used UOBM-4
// (Universities = 4).
type UOBMConfig struct {
	Universities int
	Seed         int64
	DeptsPerUniv int
}

const uobmNS = "http://benchmark.powl/uobm#"

// UOBM generates a University-Ontology-Benchmark-shaped dataset. Its
// distinguishing feature, relative to LUBM, is density: symmetric
// cross-university friendships, cross enrolment, and sameAs aliases tie
// universities together, so every partitioning policy cuts many edges and
// the replication (IR) stays high. The ontology deliberately has no
// allValuesFrom axiom, so the backward engine's per-query work stays local
// — this is the combination that made UOBM scale linearly and speed up
// sub-linearly in the paper (§VI-A).
func UOBM(cfg UOBMConfig) *Dataset {
	if cfg.Universities < 1 {
		cfg.Universities = 1
	}
	b := newBuilder(cfg.Seed ^ 0x0b3b)

	// ----- TBox ------------------------------------------------------------
	organization := b.class(uobmNS + "Organization")
	university := b.class(uobmNS+"University", organization)
	department := b.class(uobmNS+"Department", organization)
	person := b.class(uobmNS + "Person")
	employee := b.class(uobmNS+"Employee", person)
	faculty := b.class(uobmNS+"Faculty", employee)
	professor := b.class(uobmNS+"Professor", faculty)
	student := b.class(uobmNS+"Student", person)
	ugStudent := b.class(uobmNS+"UndergraduateStudent", student)
	gradStudent := b.class(uobmNS+"GraduateStudent", student)
	course := b.class(uobmNS + "Course")
	sportsLover := b.class(uobmNS+"SportsLover", person)

	memberOf := b.prop(uobmNS+"isMemberOf", person, organization)
	worksFor := b.prop(uobmNS+"worksFor", 0, 0)
	b.add(worksFor, b.subPropertyOf, memberOf)
	subOrgOf := b.prop(uobmNS+"subOrganizationOf", organization, 0) // no range: see LUBM generator
	b.add(subOrgOf, b.typ, b.transitive)
	hasFriend := b.prop(uobmNS+"hasFriend", person, person)
	b.add(hasFriend, b.typ, b.symmetric)
	// Symmetric but deliberately NOT transitive: UOBM's workload must stay
	// in the reasoner's linear regime (the paper found UOBM does not
	// exhibit worst-case complexity, §VI-A), and symmetric+transitive over
	// random links would collapse the dataset into equivalence cliques.
	hasSameHomeTownWith := b.prop(uobmNS+"hasSameHomeTownWith", person, person)
	b.add(hasSameHomeTownWith, b.typ, b.symmetric)
	takesCourse := b.prop(uobmNS+"takesCourse", student, course)
	teacherOf := b.prop(uobmNS+"teacherOf", faculty, course)
	likes := b.prop(uobmNS+"like", 0, 0)
	loves := b.prop(uobmNS+"love", 0, 0)
	b.add(loves, b.subPropertyOf, likes)

	// SportsFan ≡ ∃like.SportsEvent — a someValuesFrom inference like
	// LUBM's Chair, cheap for the backward engine.
	sportsEvent := b.class(uobmNS + "SportsEvent")
	fanRestr := b.someValues(uobmNS+"SportsFanRestriction", likes, sportsEvent)
	b.add(fanRestr, b.subClassOf, sportsLover)

	// ----- ABox ------------------------------------------------------------
	type deptRec struct {
		people  []rdf.ID
		courses []rdf.ID
	}
	var all []deptRec
	var allPeople []rdf.ID

	for u := 0; u < cfg.Universities; u++ {
		univNS := func(rest string) string { return uobmNS + "univ" + itoa(u) + "/" + rest }
		univ := b.iri(uobmNS + "univ" + itoa(u))
		b.add(univ, b.typ, university)

		depts := cfg.DeptsPerUniv
		if depts <= 0 {
			depts = b.between(10, 14)
		}
		for d := 0; d < depts; d++ {
			deptName := "dept" + itoa(d)
			dept := b.iri(univNS(deptName))
			b.add(dept, b.typ, department)
			b.add(dept, subOrgOf, univ)
			rec := deptRec{}

			for ci := 0; ci < b.between(4, 6); ci++ {
				c := b.iri(univNS(deptName + "/course" + itoa(ci)))
				b.add(c, b.typ, course)
				rec.courses = append(rec.courses, c)
			}
			for pi := 0; pi < b.between(4, 6); pi++ {
				p := b.iri(univNS(deptName + "/prof" + itoa(pi)))
				b.add(p, b.typ, professor)
				b.add(p, worksFor, dept)
				b.add(p, teacherOf, rec.courses[b.rng.Intn(len(rec.courses))])
				rec.people = append(rec.people, p)
			}
			for si := 0; si < b.between(10, 14); si++ {
				s := b.iri(univNS(deptName + "/student" + itoa(si)))
				if si%3 == 0 {
					b.add(s, b.typ, gradStudent)
				} else {
					b.add(s, b.typ, ugStudent)
				}
				b.add(s, memberOf, dept)
				for c := 0; c < b.between(1, 2); c++ {
					b.add(s, takesCourse, rec.courses[b.rng.Intn(len(rec.courses))])
				}
				rec.people = append(rec.people, s)
			}
			all = append(all, rec)
			allPeople = append(allPeople, rec.people...)
		}

		// A campus-wide sports event liked by a sample of people.
		ev := b.iri(univNS("sportsEvent0"))
		b.add(ev, b.typ, sportsEvent)
		for i := 0; i < 10 && i < len(allPeople); i++ {
			b.add(allPeople[b.rng.Intn(len(allPeople))], loves, ev)
		}
	}

	// Dense cross-cutting relations: each person gets 2–4 friends anywhere
	// in the dataset and occasionally a same-home-town link. These are the
	// edges that resist partitioning and drive UOBM's replication up.
	// (No owl:sameAs instance data: each alias would drag whole per-resource
	// sub-queries into every query and push the reasoner out of the linear
	// regime the paper observed for UOBM.)
	for _, p := range allPeople {
		for f := 0; f < b.between(2, 4); f++ {
			b.add(p, hasFriend, allPeople[b.rng.Intn(len(allPeople))])
		}
		if b.rng.Intn(6) == 0 {
			b.add(p, hasSameHomeTownWith, allPeople[b.rng.Intn(len(allPeople))])
		}
	}
	// Cross enrolment: students occasionally take a course in another
	// department (possibly another university).
	for i, rec := range all {
		for _, person := range rec.people {
			if b.rng.Intn(5) == 0 {
				other := all[b.rng.Intn(len(all))]
				if len(other.courses) > 0 && b.rng.Intn(len(all)) != i {
					b.add(person, takesCourse, other.courses[b.rng.Intn(len(other.courses))])
				}
			}
		}
	}
	return &Dataset{Name: "uobm", Dict: b.dict, Graph: b.g, DomainKey: universityKey}
}
