// Package datagen generates the three benchmark datasets of the paper's
// evaluation, scaled to run on one machine:
//
//   - LUBM  — the Lehigh University Benchmark: universities, departments,
//     faculty, students, courses, publications. Strong intra-university
//     locality; a class hierarchy, transitive subOrganizationOf, an
//     inverseOf pair, a someValuesFrom Chair definition, and an
//     allValuesFrom axiom that triggers the backward engine's worst-case
//     extent scans (the behaviour behind the paper's super-linear LUBM
//     speedups).
//   - UOBM  — the University Ontology Benchmark shape: LUBM-like entities
//     plus dense cross-university links (symmetric friendships, cross
//     enrolment, sameAs aliases), which raise the edge cut of any
//     partitioning and push speedups sub-linear, as in the paper.
//   - MDC   — a stand-in for the paper's proprietary Chevron oilfield
//     dataset: fields, wells, devices, sensors with deep transitive partOf
//     chains and near-perfect per-field locality.
//
// All generators are deterministic given their Config.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// Dataset bundles a generated benchmark: its dictionary, the graph holding
// TBox and ABox triples, and the locality key function used by the
// domain-specific partitioning policy.
type Dataset struct {
	Name  string
	Dict  *rdf.Dict
	Graph *rdf.Graph
	// DomainKey extracts the locality group of a term ("" if none); for the
	// university benchmarks it is the university, for MDC the field.
	DomainKey func(rdf.Term) string
}

// builder wraps the common triple-emission plumbing of the generators.
type builder struct {
	dict *rdf.Dict
	g    *rdf.Graph
	rng  *rand.Rand

	typ, subClassOf, subPropertyOf, domain, rng_, transitive,
	symmetric, inverseOf, someValuesFrom, allValuesFrom, onProperty,
	owlClass, objectProp, restriction, sameAs rdf.ID
}

func newBuilder(seed int64) *builder {
	d := rdf.NewDict()
	b := &builder{dict: d, g: rdf.NewGraph(), rng: rand.New(rand.NewSource(seed))}
	b.typ = d.InternIRI(vocab.RDFType)
	b.subClassOf = d.InternIRI(vocab.RDFSSubClassOf)
	b.subPropertyOf = d.InternIRI(vocab.RDFSSubPropertyOf)
	b.domain = d.InternIRI(vocab.RDFSDomain)
	b.rng_ = d.InternIRI(vocab.RDFSRange)
	b.transitive = d.InternIRI(vocab.OWLTransitiveProperty)
	b.symmetric = d.InternIRI(vocab.OWLSymmetricProperty)
	b.inverseOf = d.InternIRI(vocab.OWLInverseOf)
	b.someValuesFrom = d.InternIRI(vocab.OWLSomeValuesFrom)
	b.allValuesFrom = d.InternIRI(vocab.OWLAllValuesFrom)
	b.onProperty = d.InternIRI(vocab.OWLOnProperty)
	b.owlClass = d.InternIRI(vocab.OWLClass)
	b.objectProp = d.InternIRI(vocab.OWLObjectProperty)
	b.restriction = d.InternIRI(vocab.OWLRestriction)
	b.sameAs = d.InternIRI(vocab.OWLSameAs)
	return b
}

func (b *builder) iri(s string) rdf.ID { return b.dict.InternIRI(s) }

func (b *builder) add(s, p, o rdf.ID) { b.g.Add(rdf.Triple{S: s, P: p, O: o}) }

// class declares a class, optionally a subclass of parents.
func (b *builder) class(iri string, parents ...rdf.ID) rdf.ID {
	c := b.iri(iri)
	b.add(c, b.typ, b.owlClass)
	for _, p := range parents {
		b.add(c, b.subClassOf, p)
	}
	return c
}

// prop declares an object property with optional domain and range (0 skips).
func (b *builder) prop(iri string, dom, ran rdf.ID) rdf.ID {
	p := b.iri(iri)
	b.add(p, b.typ, b.objectProp)
	if dom != 0 {
		b.add(p, b.domain, dom)
	}
	if ran != 0 {
		b.add(p, b.rng_, ran)
	}
	return p
}

// someValues declares R ≡ ∃prop.filler as a restriction node and returns it.
func (b *builder) someValues(iri string, prop, filler rdf.ID) rdf.ID {
	r := b.iri(iri)
	b.add(r, b.typ, b.restriction)
	b.add(r, b.onProperty, prop)
	b.add(r, b.someValuesFrom, filler)
	return r
}

// allValues declares R ≡ ∀prop.filler as a restriction node and returns it.
func (b *builder) allValues(iri string, prop, filler rdf.ID) rdf.ID {
	r := b.iri(iri)
	b.add(r, b.typ, b.restriction)
	b.add(r, b.onProperty, prop)
	b.add(r, b.allValuesFrom, filler)
	return r
}

// between returns a uniform int in [lo, hi].
func (b *builder) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Intn(hi-lo+1)
}

// extractKey finds "marker<digits>" in s and returns it ("" if absent); used
// by the DomainKey functions, which work on both IRIs and literals because
// the generators embed the locality group in every name.
func extractKey(s, marker string) string {
	i := strings.Index(s, marker)
	if i < 0 {
		return ""
	}
	j := i + len(marker)
	start := j
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	if j == start {
		return ""
	}
	return s[i:j]
}

// universityKey is the DomainKey for the university benchmarks.
func universityKey(t rdf.Term) string { return extractKey(t.Value, "univ") }

// fieldKey is the DomainKey for MDC.
func fieldKey(t rdf.Term) string { return extractKey(t.Value, "field") }

// lit interns a plain string literal.
func (b *builder) lit(format string, args ...any) rdf.ID {
	return b.dict.InternLiteral(`"` + fmt.Sprintf(format, args...) + `"`)
}
