package datagen

import "powl/internal/rdf"

// LUBMConfig scales the LUBM generator. The paper's LUBM-N datasets set
// Universities = N; the per-department entity counts below keep the LUBM
// entity mix but at roughly one tenth the volume so that the worst-case
// backward engine finishes in seconds rather than hours.
type LUBMConfig struct {
	Universities int
	Seed         int64
	// DeptsPerUniv overrides the LUBM default range of 12–18; 0 keeps it.
	DeptsPerUniv int
}

const lubmNS = "http://benchmark.powl/lubm#"

// LUBM generates a Lehigh-University-Benchmark-shaped dataset.
func LUBM(cfg LUBMConfig) *Dataset {
	if cfg.Universities < 1 {
		cfg.Universities = 1
	}
	b := newBuilder(cfg.Seed ^ 0x10bb)

	// ----- TBox ------------------------------------------------------------
	organization := b.class(lubmNS + "Organization")
	university := b.class(lubmNS+"University", organization)
	department := b.class(lubmNS+"Department", organization)
	researchGroup := b.class(lubmNS+"ResearchGroup", organization)
	person := b.class(lubmNS + "Person")
	employee := b.class(lubmNS+"Employee", person)
	faculty := b.class(lubmNS+"Faculty", employee)
	professor := b.class(lubmNS+"Professor", faculty)
	fullProf := b.class(lubmNS+"FullProfessor", professor)
	assocProf := b.class(lubmNS+"AssociateProfessor", professor)
	assistProf := b.class(lubmNS+"AssistantProfessor", professor)
	lecturer := b.class(lubmNS+"Lecturer", faculty)
	student := b.class(lubmNS+"Student", person)
	ugStudent := b.class(lubmNS+"UndergraduateStudent", student)
	gradStudent := b.class(lubmNS+"GraduateStudent", student)
	course := b.class(lubmNS + "Course")
	gradCourse := b.class(lubmNS+"GraduateCourse", course)
	publication := b.class(lubmNS + "Publication")
	article := b.class(lubmNS+"Article", publication)
	journalArticle := b.class(lubmNS+"JournalArticle", article)
	confPaper := b.class(lubmNS+"ConferencePaper", article)
	techReport := b.class(lubmNS+"TechnicalReport", publication)
	book := b.class(lubmNS+"Book", publication)
	pubClasses := []rdf.ID{journalArticle, confPaper, techReport, book}

	memberOf := b.prop(lubmNS+"memberOf", person, organization)
	worksFor := b.prop(lubmNS+"worksFor", 0, 0)
	b.add(worksFor, b.subPropertyOf, memberOf)
	headOf := b.prop(lubmNS+"headOf", 0, 0)
	b.add(headOf, b.subPropertyOf, worksFor)
	// subOrganizationOf keeps its domain but deliberately has no rdfs:range:
	// a range axiom compiles to a rule consumed through goals of the shape
	// (?x subOrganizationOf r), whose backward resolution opens the
	// transitive rule completely and enumerates the full subOrganizationOf
	// closure on every query — quadratic work that would overshoot the
	// paper's mild super-linearity by an order of magnitude.
	subOrgOf := b.prop(lubmNS+"subOrganizationOf", organization, 0)
	b.add(subOrgOf, b.typ, b.transitive)
	teacherOf := b.prop(lubmNS+"teacherOf", faculty, course)
	takesCourse := b.prop(lubmNS+"takesCourse", student, 0)
	advisor := b.prop(lubmNS+"advisor", person, professor)
	pubAuthor := b.prop(lubmNS+"publicationAuthor", publication, person)
	// degreeFrom deliberately has no rdfs:range and hasAlumnus no
	// rdfs:domain: a range/domain of University would let the backward
	// engine derive (?x type University) from every degreeFrom edge, and
	// the AlumniArePeople scan below would then walk the whole degreeFrom
	// extent per query instead of the small university extent (pushing the
	// super-linearity far beyond the paper's ~18x at 16 nodes).
	degreeFrom := b.prop(lubmNS+"degreeFrom", person, 0)
	ugDegreeFrom := b.prop(lubmNS+"undergraduateDegreeFrom", 0, 0)
	b.add(ugDegreeFrom, b.subPropertyOf, degreeFrom)
	docDegreeFrom := b.prop(lubmNS+"doctoralDegreeFrom", 0, 0)
	b.add(docDegreeFrom, b.subPropertyOf, degreeFrom)
	hasAlumnus := b.prop(lubmNS+"hasAlumnus", 0, person)
	b.add(hasAlumnus, b.inverseOf, degreeFrom)
	name := b.prop(lubmNS+"name", 0, 0)

	// Chair ≡ ∃headOf.Department — LUBM's flagship inference.
	chairRestr := b.someValues(lubmNS+"ChairRestriction", headOf, department)
	chair := b.class(lubmNS+"Chair", person)
	b.add(chairRestr, b.subClassOf, chair)

	// University ⊑ ∀grants.Degree. It compiles to an allValuesFrom rule
	// whose leading body atom is unbound under per-resource goals, forcing
	// the SLD engine to walk the University extent on every query — the
	// worst-case search-space behaviour the paper reports for LUBM (§VI-A).
	// `grants` is deliberately a plain property (no inverse, no
	// sub-properties) so each extent visit costs O(1): the excess work per
	// query then grows only with the number of universities, matching the
	// paper's mildly super-linear speedups (~18x on 16 nodes) and the small
	// cubic term of its fitted performance model (Fig. 4).
	// Two university-extent allValuesFrom restrictions, each over a property
	// with two sub-properties. Under left-to-right SLD each per-resource
	// query walks the University extent for both restrictions and, per
	// university visited, resolves the sub-property rules of the second
	// body atom — a per-query excess proportional to the number of
	// universities in the searched partition. This is the worst-case search
	// space of §VI-A, calibrated so the super-linearity lands near the
	// paper's ~18x on 16 processors (see EXPERIMENTS.md).
	degree := b.class(lubmNS + "Degree")
	grants := b.prop(lubmNS+"grants", 0, 0)
	grantsUG := b.prop(lubmNS+"grantsUndergraduateDegree", 0, 0)
	b.add(grantsUG, b.subPropertyOf, grants)
	grantsGrad := b.prop(lubmNS+"grantsGraduateDegree", 0, 0)
	b.add(grantsGrad, b.subPropertyOf, grants)
	grantedBy := b.prop(lubmNS+"grantedBy", 0, 0)
	b.add(grants, b.inverseOf, grantedBy)
	avfRestr := b.allValues(lubmNS+"GrantsOnlyDegrees", grants, degree)
	b.add(university, b.subClassOf, avfRestr)

	accreditation := b.class(lubmNS + "Accreditation")
	endorsedBy := b.prop(lubmNS+"endorsedBy", 0, 0)
	endorsedNat := b.prop(lubmNS+"endorsedByNationalBoard", 0, 0)
	b.add(endorsedNat, b.subPropertyOf, endorsedBy)
	endorsedReg := b.prop(lubmNS+"endorsedByRegionalBoard", 0, 0)
	b.add(endorsedReg, b.subPropertyOf, endorsedBy)
	avfRestr2 := b.allValues(lubmNS+"EndorsedByAccreditors", endorsedBy, accreditation)
	b.add(university, b.subClassOf, avfRestr2)

	// ----- ABox ------------------------------------------------------------
	for u := 0; u < cfg.Universities; u++ {
		univNS := func(rest string) string { return lubmNS + "univ" + itoa(u) + "/" + rest }
		univ := b.iri(lubmNS + "univ" + itoa(u))
		b.add(univ, b.typ, university)
		deg := b.iri(lubmNS + "univ" + itoa(u) + "/degree0")
		b.add(univ, grantsUG, deg)
		b.add(deg, b.typ, degree)
		deg = b.iri(lubmNS + "univ" + itoa(u) + "/degree1")
		b.add(univ, grantsGrad, deg)
		b.add(deg, b.typ, degree)
		acc := b.iri(lubmNS + "univ" + itoa(u) + "/accreditor0")
		b.add(univ, endorsedNat, acc)
		b.add(acc, b.typ, accreditation)

		depts := cfg.DeptsPerUniv
		if depts <= 0 {
			depts = b.between(12, 18)
		}
		for d := 0; d < depts; d++ {
			deptName := "dept" + itoa(d)
			dept := b.iri(univNS(deptName))
			b.add(dept, b.typ, department)
			b.add(dept, subOrgOf, univ)

			groups := make([]rdf.ID, b.between(2, 3))
			for gi := range groups {
				groups[gi] = b.iri(univNS(deptName + "/group" + itoa(gi)))
				b.add(groups[gi], b.typ, researchGroup)
				b.add(groups[gi], subOrgOf, dept)
			}

			courses := make([]rdf.ID, b.between(4, 6))
			for ci := range courses {
				courses[ci] = b.iri(univNS(deptName + "/course" + itoa(ci)))
				b.add(courses[ci], b.typ, course)
			}
			gradCourses := make([]rdf.ID, b.between(3, 4))
			for ci := range gradCourses {
				gradCourses[ci] = b.iri(univNS(deptName + "/gradcourse" + itoa(ci)))
				b.add(gradCourses[ci], b.typ, gradCourse)
			}

			profClasses := []rdf.ID{fullProf, fullProf, assocProf, assocProf, assistProf, assistProf}
			profs := make([]rdf.ID, len(profClasses))
			for pi, pc := range profClasses {
				p := b.iri(univNS(deptName + "/prof" + itoa(pi)))
				profs[pi] = p
				b.add(p, b.typ, pc)
				b.add(p, worksFor, dept)
				b.add(p, docDegreeFrom, univ)
				b.add(p, name, b.lit("prof%d dept%d univ%d", pi, d, u))
				// Every professor teaches 1–2 courses.
				b.add(p, teacherOf, courses[b.rng.Intn(len(courses))])
				if b.rng.Intn(2) == 0 {
					b.add(p, teacherOf, gradCourses[b.rng.Intn(len(gradCourses))])
				}
			}
			// The department head: drives the Chair inference.
			b.add(profs[0], headOf, dept)

			for li := 0; li < 2; li++ {
				l := b.iri(univNS(deptName + "/lecturer" + itoa(li)))
				b.add(l, b.typ, lecturer)
				b.add(l, worksFor, dept)
				b.add(l, teacherOf, courses[b.rng.Intn(len(courses))])
			}

			nUG := b.between(8, 12)
			for si := 0; si < nUG; si++ {
				s := b.iri(univNS(deptName + "/ug" + itoa(si)))
				b.add(s, b.typ, ugStudent)
				b.add(s, memberOf, dept)
				for c := 0; c < b.between(2, 3); c++ {
					b.add(s, takesCourse, courses[b.rng.Intn(len(courses))])
				}
				if b.rng.Intn(4) == 0 {
					b.add(s, advisor, profs[b.rng.Intn(len(profs))])
				}
			}
			nGrad := b.between(4, 6)
			for si := 0; si < nGrad; si++ {
				s := b.iri(univNS(deptName + "/grad" + itoa(si)))
				b.add(s, b.typ, gradStudent)
				b.add(s, memberOf, groups[b.rng.Intn(len(groups))])
				b.add(s, advisor, profs[b.rng.Intn(len(profs))])
				for c := 0; c < b.between(1, 2); c++ {
					b.add(s, takesCourse, gradCourses[b.rng.Intn(len(gradCourses))])
				}
				// ~10% earned their undergraduate degree elsewhere: the only
				// cross-university edges, keeping LUBM's strong locality.
				if cfg.Universities > 1 && b.rng.Intn(10) == 0 {
					other := b.rng.Intn(cfg.Universities)
					if other != u {
						b.add(s, ugDegreeFrom, b.iri(lubmNS+"univ"+itoa(other)))
					}
				} else {
					b.add(s, ugDegreeFrom, univ)
				}
			}

			nPubs := b.between(4, 6)
			for pi := 0; pi < nPubs; pi++ {
				pub := b.iri(univNS(deptName + "/pub" + itoa(pi)))
				b.add(pub, b.typ, pubClasses[b.rng.Intn(len(pubClasses))])
				b.add(pub, pubAuthor, profs[b.rng.Intn(len(profs))])
			}
		}
	}
	return &Dataset{Name: "lubm", Dict: b.dict, Graph: b.g, DomainKey: universityKey}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
