package datagen

import "powl/internal/rdf"

// MDCConfig scales the MDC generator.
type MDCConfig struct {
	// Fields is the number of oilfields (the locality unit).
	Fields int
	Seed   int64
	// WellsPerField overrides the default range of 4–6; 0 keeps it.
	WellsPerField int
}

const mdcNS = "http://benchmark.powl/mdc#"

// MDC generates an oilfield measurement dataset standing in for the paper's
// proprietary Chevron MDC data (see DESIGN.md, substitutions). Entities form
// deep containment chains — sensor ⊑ device ⊑ wellbore segment ⊑ well ⊑
// field — over a transitive partOf property, plus per-well measurement
// channels chained by a transitive `upstreamOf`. Within a field everything
// is tightly connected; across fields there are almost no edges. Like LUBM
// it carries an allValuesFrom axiom, so the backward engine exhibits its
// worst-case scan behaviour and data partitioning wins super-linearly, which
// is how the paper describes MDC behaving (§VI-A).
func MDC(cfg MDCConfig) *Dataset {
	if cfg.Fields < 1 {
		cfg.Fields = 1
	}
	b := newBuilder(cfg.Seed ^ 0x3dc0)

	// ----- TBox ------------------------------------------------------------
	asset := b.class(mdcNS + "Asset")
	field := b.class(mdcNS+"Field", asset)
	well := b.class(mdcNS+"Well", asset)
	segment := b.class(mdcNS+"WellboreSegment", asset)
	device := b.class(mdcNS+"Device", asset)
	sensor := b.class(mdcNS+"Sensor", device)
	pressureSensor := b.class(mdcNS+"PressureSensor", sensor)
	tempSensor := b.class(mdcNS+"TemperatureSensor", sensor)
	channel := b.class(mdcNS + "Channel")
	measurement := b.class(mdcNS + "Measurement")

	// partOf and upstreamOf keep domains only; a range axiom would make every
	// query enumerate the full transitive closure (see the LUBM generator).
	// For the same reason there is no owl:inverseOf bridge onto partOf: an
	// inverse property would let bounded-object goals re-open the transitive
	// rule with both positions free.
	partOf := b.prop(mdcNS+"partOf", asset, 0)
	b.add(partOf, b.typ, b.transitive)
	upstreamOf := b.prop(mdcNS+"upstreamOf", channel, 0)
	b.add(upstreamOf, b.typ, b.transitive)
	measures := b.prop(mdcNS+"measures", sensor, channel)
	hasSensor := b.prop(mdcNS+"hasSensor", device, sensor)
	recordedBy := b.prop(mdcNS+"recordedBy", measurement, channel)
	calibratedWith := b.prop(mdcNS+"calibratedWith", sensor, sensor)
	b.add(calibratedWith, b.typ, b.symmetric)

	// InstrumentedDevice ≡ ∃hasSensor.Sensor — the MDC someValuesFrom
	// inference, analogous to LUBM's Chair.
	monRestr := b.someValues(mdcNS+"InstrumentedRestriction", hasSensor, sensor)
	monitored := b.class(mdcNS+"InstrumentedDevice", device)
	b.add(monRestr, b.subClassOf, monitored)

	// Field ⊑ ∀operates.Well — the worst-case-scan trigger (see LUBM's
	// GrantsOnlyDegrees axiom for the rationale). `operates` is a plain
	// property, so the per-query excess work is proportional to the number
	// of fields in the searched partition; together with the per-query
	// re-derivation of the partOf/upstreamOf transitive chains this makes
	// MDC noticeably super-linear, as the paper describes.
	operates := b.prop(mdcNS+"operates", 0, 0)
	avf := b.allValues(mdcNS+"OperatesOnlyWells", operates, well)
	b.add(field, b.subClassOf, avf)

	// ----- ABox ------------------------------------------------------------
	for f := 0; f < cfg.Fields; f++ {
		fieldNS := func(rest string) string { return mdcNS + "field" + itoa(f) + "/" + rest }
		fld := b.iri(mdcNS + "field" + itoa(f))
		b.add(fld, b.typ, field)

		wells := cfg.WellsPerField
		if wells <= 0 {
			wells = b.between(4, 6)
		}
		for w := 0; w < wells; w++ {
			wellName := "well" + itoa(w)
			wl := b.iri(fieldNS(wellName))
			b.add(wl, b.typ, well)
			b.add(wl, partOf, fld)
			b.add(fld, operates, wl)

			// Deep containment: a chain of wellbore segments.
			nSeg := b.between(3, 5)
			prev := wl
			var segs []rdf.ID
			for s := 0; s < nSeg; s++ {
				sg := b.iri(fieldNS(wellName + "/seg" + itoa(s)))
				b.add(sg, b.typ, segment)
				b.add(sg, partOf, prev)
				segs = append(segs, sg)
				prev = sg
			}

			// Devices and sensors hang off segments.
			var sensors []rdf.ID
			var channels []rdf.ID
			for s, sg := range segs {
				dv := b.iri(fieldNS(wellName + "/dev" + itoa(s)))
				b.add(dv, b.typ, device)
				b.add(dv, partOf, sg)
				for si := 0; si < 2; si++ {
					sn := b.iri(fieldNS(wellName + "/sensor" + itoa(s) + "_" + itoa(si)))
					if si == 0 {
						b.add(sn, b.typ, pressureSensor)
					} else {
						b.add(sn, b.typ, tempSensor)
					}
					b.add(sn, partOf, dv)
					b.add(dv, hasSensor, sn)
					sensors = append(sensors, sn)
					ch := b.iri(fieldNS(wellName + "/chan" + itoa(s) + "_" + itoa(si)))
					b.add(ch, b.typ, channel)
					b.add(sn, measures, ch)
					channels = append(channels, ch)
				}
			}
			// Channels along a well form an upstreamOf chain — the second
			// deep transitive structure.
			for i := 1; i < len(channels); i++ {
				b.add(channels[i-1], upstreamOf, channels[i])
			}
			// Sensor pairs are cross-calibrated within the well.
			for i := 1; i < len(sensors); i += 2 {
				b.add(sensors[i-1], calibratedWith, sensors[i])
			}
			// A few measurements per channel.
			for ci, ch := range channels {
				for m := 0; m < b.between(1, 2); m++ {
					ms := b.iri(fieldNS(wellName + "/meas" + itoa(ci) + "_" + itoa(m)))
					b.add(ms, b.typ, measurement)
					b.add(ms, recordedBy, ch)
				}
			}
		}
	}
	return &Dataset{Name: "mdc", Dict: b.dict, Graph: b.g, DomainKey: fieldKey}
}
