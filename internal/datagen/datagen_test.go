package datagen

import (
	"strings"
	"testing"

	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/vocab"
)

func TestGeneratorsAreDeterministic(t *testing.T) {
	gens := map[string]func() *Dataset{
		"lubm": func() *Dataset { return LUBM(LUBMConfig{Universities: 2, Seed: 9}) },
		"uobm": func() *Dataset { return UOBM(UOBMConfig{Universities: 2, Seed: 9}) },
		"mdc":  func() *Dataset { return MDC(MDCConfig{Fields: 2, Seed: 9}) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if a.Graph.Len() != b.Graph.Len() {
			t.Fatalf("%s: sizes differ across runs: %d vs %d", name, a.Graph.Len(), b.Graph.Len())
		}
		// Compare by serialized term triples (IDs are dict-order dependent
		// but generation order is deterministic, so IDs align too).
		for _, tr := range a.Graph.SortedTriples() {
			if !b.Graph.Has(tr) {
				t.Fatalf("%s: triple sets differ", name)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := LUBM(LUBMConfig{Universities: 2, Seed: 1})
	b := LUBM(LUBMConfig{Universities: 2, Seed: 2})
	if a.Graph.Len() == b.Graph.Len() {
		diff := 0
		for _, tr := range a.Graph.Triples() {
			if !b.Graph.Has(tr) {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestScalesGrow(t *testing.T) {
	small := LUBM(LUBMConfig{Universities: 1, Seed: 3}).Graph.Len()
	big := LUBM(LUBMConfig{Universities: 4, Seed: 3}).Graph.Len()
	if big < 3*small {
		t.Fatalf("LUBM-4 (%d) not ≳4x LUBM-1 (%d)", big, small)
	}
	if MDC(MDCConfig{Fields: 4, Seed: 3}).Graph.Len() <= MDC(MDCConfig{Fields: 1, Seed: 3}).Graph.Len() {
		t.Fatal("MDC does not grow with fields")
	}
	if UOBM(UOBMConfig{Universities: 4, Seed: 3}).Graph.Len() <= UOBM(UOBMConfig{Universities: 1, Seed: 3}).Graph.Len() {
		t.Fatal("UOBM does not grow with universities")
	}
}

// TestDatasetsProduceInferences compiles each dataset's ontology and checks
// the hallmark inferences appear in the closure.
func TestDatasetsProduceInferences(t *testing.T) {
	ds := LUBM(LUBMConfig{Universities: 1, Seed: 4, DeptsPerUniv: 2})
	cp := owlhorst.Compile(ds.Dict, ds.Graph)
	g := ds.Graph.Clone()
	g.Union(cp.Schema)
	n := (reason.Forward{}).Materialize(g, cp.InstanceRules)
	if n == 0 {
		t.Fatal("LUBM closure added nothing")
	}
	typ, _ := ds.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: vocab.RDFType})
	chair, ok := ds.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/lubm#Chair"})
	if !ok {
		t.Fatal("Chair class missing from LUBM TBox")
	}
	if len(g.Match(rdf.Wildcard, typ, chair)) == 0 {
		t.Error("no Chair inferred (someValuesFrom broken)")
	}
	person, _ := ds.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/lubm#Person"})
	if len(g.Match(rdf.Wildcard, typ, person)) == 0 {
		t.Error("no Person inferred (subclass chain broken)")
	}

	mdc := MDC(MDCConfig{Fields: 1, Seed: 4})
	mcp := owlhorst.Compile(mdc.Dict, mdc.Graph)
	mg := mdc.Graph.Clone()
	mg.Union(mcp.Schema)
	(reason.Forward{}).Materialize(mg, mcp.InstanceRules)
	mtyp, _ := mdc.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: vocab.RDFType})
	instr, ok := mdc.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/mdc#InstrumentedDevice"})
	if !ok {
		t.Fatal("InstrumentedDevice missing from MDC TBox")
	}
	if len(mg.Match(rdf.Wildcard, mtyp, instr)) == 0 {
		t.Error("no InstrumentedDevice inferred")
	}
	// Deep partOf chains: the closure must contain sensor→field edges.
	partOf, _ := mdc.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/mdc#partOf"})
	field, _ := mdc.Dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://benchmark.powl/mdc#field0"})
	chain := mg.Match(rdf.Wildcard, partOf, field)
	base := mdc.Graph.Match(rdf.Wildcard, partOf, field)
	if len(chain) <= len(base) {
		t.Error("transitive partOf closure did not extend the chain")
	}
}

func TestDomainKeys(t *testing.T) {
	ds := LUBM(LUBMConfig{Universities: 3, Seed: 5, DeptsPerUniv: 2})
	keys := map[string]int{}
	unkeyed := 0
	for id := range ds.Graph.Resources() {
		term := ds.Dict.Term(id)
		key := ds.DomainKey(term)
		if key == "" {
			unkeyed++
			continue
		}
		if !strings.HasPrefix(key, "univ") {
			t.Fatalf("unexpected key %q for %v", key, term)
		}
		keys[key]++
	}
	if len(keys) != 3 {
		t.Fatalf("expected 3 university keys, got %v", keys)
	}
	// Only schema-level resources (classes, properties) lack a key.
	total := len(ds.Graph.Resources())
	if unkeyed > total/5 {
		t.Errorf("%d of %d resources unkeyed", unkeyed, total)
	}

	mdc := MDC(MDCConfig{Fields: 2, Seed: 5})
	mkeys := map[string]bool{}
	for id := range mdc.Graph.Resources() {
		if k := mdc.DomainKey(mdc.Dict.Term(id)); k != "" {
			mkeys[k] = true
		}
	}
	if len(mkeys) != 2 {
		t.Fatalf("expected 2 field keys, got %v", mkeys)
	}
}

func TestExtractKey(t *testing.T) {
	cases := []struct{ s, marker, want string }{
		{"http://x/univ12/dept3", "univ", "univ12"},
		{"no marker here", "univ", ""},
		{"http://x/university", "univ", ""}, // no digits after marker
		{`"prof1 dept2 univ3"`, "univ", "univ3"},
		{"http://x/field0/well1", "field", "field0"},
	}
	for _, c := range cases {
		if got := extractKey(c.s, c.marker); got != c.want {
			t.Errorf("extractKey(%q, %q) = %q, want %q", c.s, c.marker, got, c.want)
		}
	}
}

// TestUOBMIsDenserThanLUBM checks the structural property the paper's
// UOBM result rests on: a much larger fraction of cross-locality edges.
func TestUOBMIsDenserThanLUBM(t *testing.T) {
	crossFraction := func(ds *Dataset) float64 {
		cross, total := 0, 0
		for _, tr := range ds.Graph.Triples() {
			ks := ds.DomainKey(ds.Dict.Term(tr.S))
			ko := ds.DomainKey(ds.Dict.Term(tr.O))
			if ks == "" || ko == "" {
				continue
			}
			total++
			if ks != ko {
				cross++
			}
		}
		return float64(cross) / float64(total)
	}
	lubm := crossFraction(LUBM(LUBMConfig{Universities: 4, Seed: 6}))
	uobm := crossFraction(UOBM(UOBMConfig{Universities: 4, Seed: 6}))
	t.Logf("cross-university edge fraction: lubm=%.4f uobm=%.4f", lubm, uobm)
	if uobm < 5*lubm {
		t.Errorf("UOBM cross fraction %.4f not ≫ LUBM's %.4f", uobm, lubm)
	}
	if uobm < 0.10 {
		t.Errorf("UOBM cross fraction %.4f too low to resist partitioning", uobm)
	}
}

func TestMinimumScales(t *testing.T) {
	// Scale < 1 clamps to 1 rather than panicking or returning empty data.
	if LUBM(LUBMConfig{Universities: 0, Seed: 1}).Graph.Len() == 0 {
		t.Error("LUBM-0 empty")
	}
	if UOBM(UOBMConfig{}).Graph.Len() == 0 {
		t.Error("UOBM-0 empty")
	}
	if MDC(MDCConfig{}).Graph.Len() == 0 {
		t.Error("MDC-0 empty")
	}
}
