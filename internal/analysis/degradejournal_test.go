package analysis

import "testing"

// The degradejournal corpus. Each scratch module carries its own /obs
// package so journal emission resolves the same way powl/internal/obs does.

const corpusObs = `package obs

type Event struct {
	Type int
	Name string
}

const EvWarn = 1

type Run struct{}

func (r *Run) Emit(e Event) {}
`

func TestDegradeJournalFlagsDocWithoutEmit(t *testing.T) {
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

// Recover replays the log; when the sidecar is missing it degrades to
// plain asserted adds.
func Recover(n int) int {
	return n
}
`,
	})
	wantFindings(t, fs,
		"r.go:5:6: [degradejournal] function documents a degraded fallback but the scope never emits an obs journal event")
}

func TestDegradeJournalDirectEmitPasses(t *testing.T) {
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

import "scratch/internal/obs"

// Recover degrades to plain asserted adds when the sidecar is missing.
func Recover(o *obs.Run) {
	o.Emit(obs.Event{Type: obs.EvWarn, Name: "sidecar missing"})
}
`,
	})
	wantFindings(t, fs)
}

func TestDegradeJournalEmittingCalleePasses(t *testing.T) {
	// The emit sits one call away in another package; the Emits fact on the
	// resolved callee satisfies the scope.
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/warnx/w.go": `package warnx

import "scratch/internal/obs"

func Warn(o *obs.Run, msg string) {
	o.Emit(obs.Event{Type: obs.EvWarn, Name: msg})
}
`,
		"internal/core/r.go": `package core

import (
	"scratch/internal/obs"
	"scratch/internal/warnx"
)

// Recover degrades to plain asserted adds when the sidecar is missing.
func Recover(o *obs.Run) {
	warnx.Warn(o, "sidecar missing")
}
`,
	})
	wantFindings(t, fs)
}

func TestDegradeJournalInnermostBlockScope(t *testing.T) {
	// A body comment scopes to its innermost block: emitting after the if
	// does not journal the degraded branch itself.
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

import "scratch/internal/obs"

func Recover(o *obs.Run, ok bool) {
	if !ok {
		// sidecar missing; degrade to plain asserted adds
		_ = ok
	}
	o.Emit(obs.Event{Type: obs.EvWarn})
}
`,
	})
	wantFindings(t, fs,
		"r.go:7:3: [degradejournal] comment documents a degraded fallback but the scope never emits an obs journal event")
}

func TestDegradeJournalWarnClosurePasses(t *testing.T) {
	// The `warn := func(...) { o.Emit(...) }` idiom from fscluster: calling
	// the local emitter closure inside the degraded branch counts.
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

import "scratch/internal/obs"

func Recover(o *obs.Run, ok bool) {
	warn := func(msg string) {
		o.Emit(obs.Event{Type: obs.EvWarn, Name: msg})
	}
	if !ok {
		// sidecar missing; degrade to plain asserted adds
		warn("sidecar missing")
	}
}
`,
	})
	wantFindings(t, fs)
}

func TestDegradeJournalFlagsSwallowedError(t *testing.T) {
	// The in-module callee resolves, so the error position is exact: the
	// blank on the error result inside a degrade scope is flagged even
	// though the scope journals.
	fs := runOne(t, &DegradeJournal{}, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

import "scratch/internal/obs"

func load(path string) (int, error) { return 0, nil }

func Recover(o *obs.Run, path string) {
	// checkpoint missing; degrade to full replay
	n, _ := load(path)
	o.Emit(obs.Event{Type: obs.EvWarn, Name: "full replay"})
	_ = n
}
`,
	})
	wantFindings(t, fs,
		"r.go:9:5: [degradejournal] error discarded on a degraded path")
}

func TestDegradeJournalDirectiveCommentIsNotProse(t *testing.T) {
	// A //powl: directive mentioning "degraded" in its reason text is not a
	// degradation narrative and must not open a scope. Full suite: the
	// directive suppresses only the wallclock finding it names, so a
	// wrongly-opened degradejournal scope would still surface.
	fs := runAll(t, map[string]string{
		"internal/obs/obs.go": corpusObs,
		"internal/core/r.go": `package core

import "time"

func Recover(n int) int {
	//powl:ignore wallclock measured duration on the degraded replay path
	_ = time.Now()
	return n
}
`,
	})
	wantFindings(t, fs)
}
