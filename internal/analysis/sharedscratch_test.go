package analysis

import "testing"

// The sharedscratch corpus: a //powl:goroutinelocal type (mirroring the
// reason engines' scratch) crossing — or staying on the right side of —
// each goroutine boundary the analyzer patrols.

const scratchDecl = `package core

// scratch is a per-goroutine join buffer.
//
//powl:goroutinelocal
type scratch struct {
	env []uint64
}

func newScratch() *scratch { return &scratch{env: make([]uint64, 8)} }
`

func TestSharedScratchFlagsClosureCapture(t *testing.T) {
	fs := runOne(t, &SharedScratch{}, map[string]string{
		"internal/core/scratch.go": scratchDecl,
		"internal/core/fire.go": `package core

import "sync"

func fire(n int) {
	sc := newScratch()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc.env[0] = 1
		}()
	}
	wg.Wait()
}
`,
	})
	wantFindings(t, fs,
		`fire.go:12:4: [sharedscratch] go closure captures "sc" involving //powl:goroutinelocal`)
}

func TestSharedScratchFlagsGoCallArgAndReceiver(t *testing.T) {
	fs := runOne(t, &SharedScratch{}, map[string]string{
		"internal/core/scratch.go": scratchDecl,
		"internal/core/fire.go": `package core

func (s *scratch) run() {}

func use(s *scratch) {}

func fire() {
	sc := newScratch()
	go use(sc)
	go sc.run()
}
`,
	})
	wantFindings(t, fs,
		"fire.go:9:9: [sharedscratch] goroutine argument shares a value involving //powl:goroutinelocal",
		"fire.go:10:5: [sharedscratch] goroutine method receiver shares a value involving //powl:goroutinelocal")
}

func TestSharedScratchFlagsChannelSend(t *testing.T) {
	// Confinement violations travel through containers too: a struct holding
	// a scratch pointer sent on a channel hands the scratch to the receiver.
	fs := runOne(t, &SharedScratch{}, map[string]string{
		"internal/core/scratch.go": scratchDecl,
		"internal/core/fire.go": `package core

type work struct {
	sc *scratch
}

func fire(ch chan work) {
	ch <- work{sc: newScratch()}
}
`,
	})
	wantFindings(t, fs,
		"fire.go:8:5: [sharedscratch] channel send shares a value involving //powl:goroutinelocal")
}

func TestSharedScratchAllowsConfinedUse(t *testing.T) {
	// The sanctioned shape: each goroutine creates its own scratch inside
	// the closure, and synchronous calls pass it freely within one
	// goroutine.
	fs := runOne(t, &SharedScratch{}, map[string]string{
		"internal/core/scratch.go": scratchDecl,
		"internal/core/fire.go": `package core

import "sync"

func consume(s *scratch) {}

func fire(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch()
			consume(sc)
		}()
	}
	wg.Wait()
}
`,
	})
	wantFindings(t, fs)
}

func TestSharedScratchIgnoresUnannotatedTypes(t *testing.T) {
	fs := runOne(t, &SharedScratch{}, map[string]string{
		"internal/core/p.go": `package core

type buf struct{ b []byte }

func fire(ch chan *buf) {
	b := &buf{}
	go func() { _ = b }()
	ch <- b
}
`,
	})
	wantFindings(t, fs)
}
