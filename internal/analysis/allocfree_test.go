package analysis

import "testing"

// The allocfree corpus. Each module annotates a root with //powl:allocfree
// and the analyzer must judge the whole in-module call cone.

func TestAllocFreeFlagsMakeInRoot(t *testing.T) {
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

//powl:allocfree hot
func Join(n int) int {
	buf := make([]int, n)
	return len(buf)
}
`,
	})
	wantFindings(t, fs, "j.go:5:9: [allocfree] make() allocates in //powl:allocfree Join")
}

func TestAllocFreeFlagsConstructsAcrossCone(t *testing.T) {
	// The allocation sits two calls below the annotation, in another
	// package — the finding names the root and the path into it.
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

import "scratch/internal/util"

//powl:allocfree hot
func Join(n int) int {
	return step(n)
}

func step(n int) int {
	return util.Leaf(n)
}
`,
		"internal/util/u.go": `package util

func Leaf(n int) int {
	m := map[int]int{}
	m[n] = n
	return len(m)
}
`,
	})
	wantFindings(t, fs,
		"u.go:4:7: [allocfree] slice/map composite literal allocates in Leaf, reachable from //powl:allocfree Join via step")
}

func TestAllocFreeAllowsResliceAppend(t *testing.T) {
	// Appending onto a [:0] reslice of persistent scratch is the sanctioned
	// amortized idiom; appending onto anything else is flagged.
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

type scratch struct {
	rest []int
	out  []int
}

//powl:allocfree hot
func Fill(sc *scratch, n int) {
	rest := sc.rest[:0]
	for i := 0; i < n; i++ {
		rest = append(rest, i)
	}
	sc.rest = rest
	sc.out = append(sc.out, n)
}
`,
	})
	wantFindings(t, fs, "j.go:15:11: [allocfree] append may grow and allocate")
}

func TestAllocFreeClosureToCallOnlyParamAllowed(t *testing.T) {
	// yield is only ever called by the callee (the call-only fact from the
	// module call graph), so the closure literal does not escape. The
	// recursive forwarding mirrors joinRest's shape.
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

//powl:allocfree hot
func Join(n int) {
	walk(n, func(int) {})
}

func walk(n int, yield func(int)) {
	if n == 0 {
		return
	}
	yield(n)
	walk(n-1, yield)
}
`,
	})
	wantFindings(t, fs)
}

func TestAllocFreeFlagsEscapingClosure(t *testing.T) {
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

var hook func(int)

//powl:allocfree hot
func Join(n int) {
	stash(func(int) {})
}

func stash(fn func(int)) {
	hook = fn
}
`,
	})
	wantFindings(t, fs, "j.go:7:8: [allocfree] closure may escape and allocate")
}

func TestAllocFreeFlagsBoxingGoDeferFmt(t *testing.T) {
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

import "fmt"

func sink(v any) {}

//powl:allocfree hot
func Join(n int) {
	sink(n)
	go func() {}()
	defer fmt.Println(n)
}
`,
	})
	wantFindings(t, fs,
		"j.go:9:7: [allocfree] passing concrete value into interface parameter boxes",
		"j.go:10:2: [allocfree] go statement allocates",
		"j.go:10:5: [allocfree] closure may escape",
		"j.go:11:2: [allocfree] defer allocates",
		"j.go:11:8: [allocfree] fmt.Println allocates",
	)
}

func TestAllocFreeUnannotatedModuleClean(t *testing.T) {
	// No annotation, no cone: the module may allocate freely.
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

func Build(n int) []int {
	return make([]int, n)
}
`,
	})
	wantFindings(t, fs)
}

func TestAllocFreeValueLiteralAllowed(t *testing.T) {
	// A struct/array value literal stays off the heap; only &lit and
	// slice/map literals are allocations. Mirrors bindTriple's [3]struct
	// pattern table.
	fs := runOne(t, &AllocFree{}, map[string]string{
		"internal/core/j.go": `package core

type pair struct{ a, b int }

//powl:allocfree hot
func Join(x, y int) int {
	for _, p := range [2]pair{{x, y}, {y, x}} {
		if p.a < p.b {
			return p.a
		}
	}
	return 0
}
`,
	})
	wantFindings(t, fs)
}

func TestAllocFreeSuppressedByDirective(t *testing.T) {
	// The arena-refill idiom: one make per block, suppressed with a reason.
	fs := runAll(t, map[string]string{
		"internal/core/j.go": `package core

type arena struct{ buf []int }

//powl:allocfree hot
func Grab(a *arena, n int) []int {
	if cap(a.buf)-len(a.buf) < n {
		//powl:ignore allocfree amortized block refill, one make per 4096 elements
		a.buf = make([]int, 0, 4096)
	}
	s := len(a.buf)
	a.buf = a.buf[:s+n]
	return a.buf[s : s+n]
}
`,
	})
	wantFindings(t, fs)
}
