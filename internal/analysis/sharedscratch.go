package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLocalDirective marks a type whose values must stay confined to
// the goroutine that created them.
const GoroutineLocalDirective = "//powl:goroutinelocal"

// SharedScratch enforces goroutine confinement for types annotated
//
//	//powl:goroutinelocal
//
// in their declaration's doc comment — the reason engines' scratch being
// the motivating case: its env slice and join buffers are reused across
// firings with no synchronization, so a scratch visible to two goroutines
// is a data race the race detector only catches on the schedules it
// happens to see. The parallel fire loop's contract is structural — each
// worker goroutine creates its own scratch — and this analyzer verifies
// the structure: a value whose type involves an annotated type must not be
// captured by a `go` closure, passed as a `go` call argument, or sent on a
// channel. Plain (synchronous) calls and returns are fine; confinement is
// about crossing a goroutine boundary, not about aliasing within one.
type SharedScratch struct {
	mod       *Module
	annotated map[string]bool // qualified "pkgpath.Name" of annotated types
}

// Name implements Analyzer.
func (*SharedScratch) Name() string { return "sharedscratch" }

// Doc implements Analyzer.
func (*SharedScratch) Doc() string {
	return "values of //powl:goroutinelocal types never cross a goroutine boundary (go-closure capture, go-call argument, channel send)"
}

// Run implements Analyzer.
func (a *SharedScratch) Run(pass *Pass) error {
	if pass.Mod == nil {
		return nil
	}
	a.collect(pass.Mod)
	if len(a.annotated) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		a.scanFile(pass, f)
	}
	return nil
}

// collect gathers the module's annotated type names once; the directive may
// sit on the GenDecl (shared by a grouped declaration) or on an individual
// TypeSpec.
func (a *SharedScratch) collect(mod *Module) {
	if a.mod == mod {
		return
	}
	a.mod = mod
	a.annotated = map[string]bool{}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				declWide := hasDirective(gd.Doc, GoroutineLocalDirective)
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if declWide || hasDirective(ts.Doc, GoroutineLocalDirective) {
						a.annotated[pkg.Path+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), directive) {
			return true
		}
	}
	return false
}

// scanFile flags the three goroutine-boundary crossings in one file.
func (a *SharedScratch) scanFile(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	if info == nil {
		return
	}
	involves := func(t types.Type) (string, bool) {
		return a.typeInvolves(t, map[types.Type]bool{})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if t := info.TypeOf(x.Value); t != nil {
				if name, bad := involves(t); bad {
					pass.reportf(x.Arrow,
						"channel send shares a value involving //powl:goroutinelocal %s across goroutines", name)
				}
			}
		case *ast.GoStmt:
			a.checkGoCall(pass, info, x, involves)
		}
		return true
	})
}

// checkGoCall flags annotated-type-involving values handed to the spawned
// goroutine: call arguments, the method receiver, and — for a closure
// literal — every free variable the body captures.
func (a *SharedScratch) checkGoCall(pass *Pass, info *types.Info, g *ast.GoStmt, involves func(types.Type) (string, bool)) {
	call := g.Call
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil {
			if name, bad := involves(t); bad {
				pass.reportf(arg.Pos(),
					"goroutine argument shares a value involving //powl:goroutinelocal %s; create it inside the goroutine", name)
			}
		}
	}
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// `go sc.fire()` smuggles sc just as surely as `go fire(sc)`.
		if t := info.TypeOf(sel.X); t != nil {
			if _, isPkg := info.Uses[firstIdent(sel.X)].(*types.PkgName); !isPkg {
				if name, bad := involves(t); bad {
					pass.reportf(sel.X.Pos(),
						"goroutine method receiver shares a value involving //powl:goroutinelocal %s", name)
				}
			}
		}
	}
	lit, ok := fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// Free variables: identifiers used in the body but declared outside the
	// literal. Parameters and locals of the literal itself have positions
	// inside it and are skipped.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the closure: confined
		}
		if name, bad := involves(obj.Type()); bad {
			pass.reportf(id.Pos(),
				"go closure captures %q involving //powl:goroutinelocal %s; create it inside the goroutine", id.Name, name)
		}
		return true
	})
}

// firstIdent returns the leftmost identifier of a selector chain, or nil.
func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// typeInvolves reports whether t is, contains, or points at an annotated
// type, returning the qualified name that matched. The visited set breaks
// recursive types (a struct holding a pointer to itself).
func (a *SharedScratch) typeInvolves(t types.Type, visited map[types.Type]bool) (string, bool) {
	if t == nil || visited[t] {
		return "", false
	}
	visited[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			q := obj.Pkg().Path() + "." + obj.Name()
			if a.annotated[q] {
				return q, true
			}
		}
		return a.typeInvolves(named.Underlying(), visited)
	}
	switch u := t.(type) {
	case *types.Pointer:
		return a.typeInvolves(u.Elem(), visited)
	case *types.Slice:
		return a.typeInvolves(u.Elem(), visited)
	case *types.Array:
		return a.typeInvolves(u.Elem(), visited)
	case *types.Map:
		if name, ok := a.typeInvolves(u.Key(), visited); ok {
			return name, true
		}
		return a.typeInvolves(u.Elem(), visited)
	case *types.Chan:
		return a.typeInvolves(u.Elem(), visited)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := a.typeInvolves(u.Field(i).Type(), visited); ok {
				return name, true
			}
		}
	}
	return "", false
}
