package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// MapIter flags `range` over a map whose loop body writes to an ordered sink
// — a writer, encoder, journal emit, transport send, or file save. Go map
// iteration order is randomized per run, so such a loop makes the bytes (or
// the send/fault schedule) nondeterministic, which breaks Simulated-mode
// reconstruction, checkpoint replay and the closure == serial-fixpoint
// assertions. The fix is always the same shape: extract the keys, sort them,
// range over the sorted slice. Loops that only accumulate into other
// in-memory structures (append to a slice that is sorted later, build
// another map) are not flagged.
type MapIter struct{}

// Name implements Analyzer.
func (*MapIter) Name() string { return "mapiter" }

// Doc implements Analyzer.
func (*MapIter) Doc() string {
	return "no ordered sink (write/encode/emit/send/save) inside a range over a map — sort the keys first"
}

// sinkName matches call names whose invocation order or payload order is
// observable outside the process: stream writers, printers, encoders,
// journal emits, transport sends, file saves. Lowercase module-internal
// helpers (writeGraphFile, writeAtomic, emitPhase) match too.
var sinkName = regexp.MustCompile(`(?i)^(write|fprint|print|encode|emit|save|send|marshal|flush|output)`)

// Run implements Analyzer.
func (a *MapIter) Run(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true // unresolved (stdlib-flavored): unknown, skip
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if call, name := firstSinkCall(rng.Body); call != nil {
				pass.reportf(rng.For,
					"map iteration order reaches an ordered sink (%s at line %d): extract and sort the keys, then range over the slice",
					name, pass.Fset.Position(call.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// firstSinkCall returns the first call in body (source order, including
// nested blocks but not nested function literals) whose callee name looks
// like an ordered sink, plus the rendered callee for the message. Channel
// sends count as sinks too: the receiver observes arrival order.
func firstSinkCall(body *ast.BlockStmt) (ast.Node, string) {
	var found ast.Node
	var foundName string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.SendStmt:
			found, foundName = x, "channel send"
			return false
		case *ast.CallExpr:
			var name string
			switch fn := x.Fun.(type) {
			case *ast.Ident:
				name = fn.Name
			case *ast.SelectorExpr:
				name = fn.Sel.Name
			default:
				return true
			}
			if sinkName.MatchString(name) {
				found, foundName = x, exprString(x.Fun)
				return false
			}
		}
		return true
	})
	return found, foundName
}
