package analysis

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Suppression debt. Every //powl:ignore directive is a standing exception to
// an invariant — individually justified, collectively a liability: ignores
// accrete one reasonable decision at a time until the analyzer is decoration.
// The debt report makes the total visible (`owlvet -debt`), and the budget
// file pins it: CI fails when the count grows past the checked-in ceiling,
// so adding an ignore costs a same-PR budget bump that a reviewer sees.

// DebtEntry is one ignore directive, attributed to one check it names.
type DebtEntry struct {
	Check  string `json:"check"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// DebtReport is the module's suppression debt grouped by check.
type DebtReport struct {
	// Entries are sorted by check, then file, then line. A directive naming
	// n checks contributes n entries but counts once toward Total.
	Entries []DebtEntry `json:"entries"`
	// PerCheck counts entries per check.
	PerCheck map[string]int `json:"per_check"`
	// Total is the number of ignore directives in the module.
	Total int `json:"total"`
}

// CollectDebt gathers every ignore directive in the module (test files
// included — a suppression in a test is still debt).
func CollectDebt(mod *Module) *DebtReport {
	r := &DebtReport{PerCheck: map[string]int{}}
	for _, d := range collectDirectives(mod) {
		r.Total++
		file := d.file
		if rel, err := filepath.Rel(mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		for _, check := range d.checks {
			r.PerCheck[check]++
			r.Entries = append(r.Entries, DebtEntry{Check: check, File: file, Line: d.pos.Line, Reason: d.reason})
		}
	}
	sort.Slice(r.Entries, func(i, j int) bool {
		a, b := r.Entries[i], r.Entries[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return r
}

// WriteDebt renders the report grouped by check with counts.
func WriteDebt(w io.Writer, r *DebtReport) error {
	checks := make([]string, 0, len(r.PerCheck))
	for c := range r.PerCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		if _, err := fmt.Fprintf(w, "%s: %d\n", c, r.PerCheck[c]); err != nil {
			return err
		}
		for _, e := range r.Entries {
			if e.Check != c {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %s:%d  %s\n", e.File, e.Line, e.Reason); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "total: %d directive(s)\n", r.Total)
	return err
}

// Budget is the checked-in suppression ceiling: per-check maxima plus the
// special key "total" for the directive count.
type Budget map[string]int

// DefaultBudgetFile is the budget's path relative to the module root.
const DefaultBudgetFile = "owlvet.budget"

// LoadBudget parses a budget file: one `<check> <max>` pair per line,
// #-comments and blank lines ignored.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := Budget{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("analysis: %s:%d: want `<check> <max>`, got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("analysis: %s:%d: bad max %q", path, i+1, fields[1])
		}
		b[fields[0]] = n
	}
	return b, nil
}

// Exceeds returns one message per budget violation: the total over its
// ceiling, a check over its ceiling, or a check with suppressions but no
// budget line at all (every named check must be budgeted explicitly).
func (r *DebtReport) Exceeds(b Budget) []string {
	var out []string
	if max, ok := b["total"]; ok && r.Total > max {
		out = append(out, fmt.Sprintf("total suppressions %d exceed budget %d", r.Total, max))
	}
	checks := make([]string, 0, len(r.PerCheck))
	for c := range r.PerCheck {
		checks = append(checks, c)
	}
	sort.Strings(checks)
	for _, c := range checks {
		max, ok := b[c]
		if !ok {
			out = append(out, fmt.Sprintf("check %s has %d suppression(s) but no budget line", c, r.PerCheck[c]))
			continue
		}
		if r.PerCheck[c] > max {
			out = append(out, fmt.Sprintf("check %s suppressions %d exceed budget %d", c, r.PerCheck[c], max))
		}
	}
	return out
}
