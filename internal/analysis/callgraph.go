package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the dataflow layer the PR-9 analyzers stand on: a module-wide
// static call graph over go/types plus per-function facts that compose across
// packages. The loader stubs everything outside the module, so the graph is
// deliberately partial — calls into the stdlib and calls through function
// values or interfaces stay unresolved — and every fact is computed to be
// sound under that partiality: "call-only" starts optimistic and is demoted
// by any use the analysis cannot prove harmless, while "emits" starts
// pessimistic and is promoted only by an actual journal call.

// FuncInfo is one declared function or method of the module, with its
// resolved static callees and the facts analyzers compose over.
type FuncInfo struct {
	// Obj is the declared (generic-origin) object; methods of instantiated
	// generics resolve back to it via types.Func.Origin.
	Obj *types.Func
	// Decl is the syntax, body included (nil for bodyless declarations).
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package

	// Callees are the statically resolved in-module callees, in first-call
	// source order; CallPos[f] is the first call site of callee f, for
	// reporting reachability paths.
	Callees []*FuncInfo
	CallPos map[*FuncInfo]token.Pos

	// Emits reports that the function's own body (closures included)
	// contains a direct journal emit ((*obs.Run).Emit). Deliberately NOT
	// closed transitively: almost everything eventually reaches some Emit
	// through the instrumented engine, and a fact diluted that far would
	// credit a degraded fallback for journal lines that say nothing about
	// it. Callers that need one level of indirection (a journalDegrade-style
	// wrapper) get it from the scope check, not from the fact.
	Emits bool

	// callOnly[i] is true when func-typed parameter i provably never escapes
	// the callee: every use is a direct call, a nil comparison, or a pass
	// into another call-only position. Closure literals handed to such a
	// parameter need not be heap-allocated.
	callOnly map[int]bool
	// funcParams maps a func-typed parameter's object back to its index.
	funcParams map[types.Object]int
}

// Name renders the function for messages: Recv.Method or pkg-local name.
func (fi *FuncInfo) Name() string {
	if fi.Decl != nil && fi.Decl.Recv != nil && len(fi.Decl.Recv.List) > 0 {
		return exprString(fi.Decl.Recv.List[0].Type) + "." + fi.Decl.Name.Name
	}
	if fi.Decl != nil {
		return fi.Decl.Name.Name
	}
	return fi.Obj.Name()
}

// CallGraph is the module-wide static call graph plus composed facts.
type CallGraph struct {
	Mod *Module
	// Funcs is every declared function, sorted by source position for
	// deterministic iteration.
	Funcs []*FuncInfo

	byObj  map[*types.Func]*FuncInfo
	byDecl map[*ast.FuncDecl]*FuncInfo
}

// CallGraph builds (once) and returns the module's call graph. Test files
// are excluded: facts describe the shipped code.
func (m *Module) CallGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &CallGraph{
		Mod:    m,
		byObj:  map[*types.Func]*FuncInfo{},
		byDecl: map[*ast.FuncDecl]*FuncInfo{},
	}
	// Pass 1: one FuncInfo per declaration.
	for _, pkg := range m.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, CallPos: map[*FuncInfo]token.Pos{}}
				cg.Funcs = append(cg.Funcs, fi)
				cg.byDecl[fd] = fi
				if obj != nil {
					cg.byObj[obj] = fi
				}
			}
		}
	}
	sort.Slice(cg.Funcs, func(i, j int) bool { return cg.Funcs[i].Decl.Pos() < cg.Funcs[j].Decl.Pos() })
	// Pass 2: edges. A call through a FuncLit, parameter, field, or stubbed
	// import resolves to nothing and simply contributes no edge.
	for _, fi := range cg.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := cg.Resolve(fi.Pkg, call); callee != nil {
				if _, seen := fi.CallPos[callee]; !seen {
					fi.Callees = append(fi.Callees, callee)
					fi.CallPos[callee] = call.Pos()
				}
			}
			return true
		})
	}
	cg.computeCallOnly()
	cg.computeEmits()
	m.cg = cg
	return cg
}

// Resolve returns the module function a call statically targets, or nil for
// calls the type information cannot pin down (func values, interface
// dispatch, stubbed imports). Methods of instantiated generics resolve to
// their declared origin.
func (cg *CallGraph) Resolve(pkg *Package, call *ast.CallExpr) *FuncInfo {
	if pkg == nil || pkg.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return cg.byObj[obj]
}

// ByDecl returns the FuncInfo of a declaration, or nil for declarations
// outside the graph (test files).
func (cg *CallGraph) ByDecl(fd *ast.FuncDecl) *FuncInfo { return cg.byDecl[fd] }

// CallOnlyParam reports whether func-typed parameter index i of fi provably
// never escapes fi.
func (fi *FuncInfo) CallOnlyParam(i int) bool { return fi != nil && fi.callOnly[i] }

// computeCallOnly runs the optimistic fixpoint for the call-only-parameter
// fact: every func-typed parameter starts call-only; a use that is not a
// direct call, a nil comparison, or a pass into a (currently) call-only
// position demotes it, and demotions propagate until stable.
func (cg *CallGraph) computeCallOnly() {
	// Seed: collect func-typed parameters per function.
	for _, fi := range cg.Funcs {
		fi.callOnly = map[int]bool{}
		fi.funcParams = map[types.Object]int{}
		if fi.Decl.Type.Params == nil || fi.Pkg.Info == nil {
			continue
		}
		idx := 0
		for _, field := range fi.Decl.Type.Params.List {
			names := field.Names
			if len(names) == 0 {
				idx++ // unnamed parameter cannot be used, let alone escape
				continue
			}
			_, isFuncType := field.Type.(*ast.FuncType)
			for _, name := range names {
				if isFuncType {
					fi.callOnly[idx] = true
					if obj := fi.Pkg.Info.Defs[name]; obj != nil {
						fi.funcParams[obj] = idx
					}
				}
				idx++
			}
		}
	}
	// Iterate to fixpoint; the module is small, so a few whole-graph sweeps
	// beat maintaining a worklist.
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if len(fi.funcParams) == 0 || fi.Decl.Body == nil {
				continue
			}
			if cg.demoteEscapingParams(fi) {
				changed = true
			}
		}
	}
}

// demoteEscapingParams re-examines every use of fi's func-typed parameters
// and demotes those with an escaping use. Returns whether anything changed.
func (cg *CallGraph) demoteEscapingParams(fi *FuncInfo) bool {
	changed := false
	demote := func(idx int) {
		if fi.callOnly[idx] {
			fi.callOnly[idx] = false
			changed = true
		}
	}
	var walk func(n ast.Node, parent ast.Node)
	// A parent-aware walk: the verdict for an identifier depends on the
	// node wrapping it.
	paramIdx := func(e ast.Expr) (int, bool) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := fi.Pkg.Info.Uses[id]
		if obj == nil {
			return 0, false
		}
		idx, ok := fi.funcParams[obj]
		return idx, ok
	}
	walk = func(n ast.Node, parent ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			// The callee position is a safe use; arguments are safe only
			// when the target parameter is itself call-only.
			walk(x.Fun, x)
			callee := cg.Resolve(fi.Pkg, x)
			for ai, arg := range x.Args {
				if idx, ok := paramIdx(arg); ok {
					if callee == nil || !callee.callOnly[calleeParamIndex(callee, ai)] {
						demote(idx)
					}
					continue
				}
				walk(arg, x)
			}
			return
		case *ast.BinaryExpr:
			// fn == nil / fn != nil guards are safe.
			if idx, ok := paramIdx(x.X); ok && isNilIdent(x.Y) {
				_ = idx
				walk(x.Y, x)
				return
			}
			if idx, ok := paramIdx(x.Y); ok && isNilIdent(x.X) {
				_ = idx
				walk(x.X, x)
				return
			}
		case *ast.Ident:
			if obj := fi.Pkg.Info.Uses[x]; obj != nil {
				if idx, ok := fi.funcParams[obj]; ok {
					// Bare use outside a call head: escapes unless the
					// parent is the call's Fun (handled above).
					if ce, isCall := parent.(*ast.CallExpr); !isCall || unparen(ce.Fun) != x {
						demote(idx)
					}
				}
			}
			return
		}
		// Generic recursion over children.
		children(n, func(c ast.Node) { walk(c, n) })
	}
	walk(fi.Decl.Body, fi.Decl)
	return changed
}

// calleeParamIndex maps an argument position to the callee's parameter
// index, folding variadic overflow onto the last parameter.
func calleeParamIndex(callee *FuncInfo, argIdx int) int {
	n := 0
	if callee.Decl.Type.Params != nil {
		for _, f := range callee.Decl.Type.Params.List {
			if len(f.Names) == 0 {
				n++
			} else {
				n += len(f.Names)
			}
		}
	}
	if n > 0 && argIdx >= n {
		return n - 1
	}
	return argIdx
}

// computeEmits seeds the journal-emit fact from direct (*obs.Run).Emit
// calls. See the Emits field doc for why the fact is not transitive.
func (cg *CallGraph) computeEmits() {
	for _, fi := range cg.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isJournalEmit(fi.Pkg, call, cg.Mod.Path) {
				fi.Emits = true
				return false
			}
			return true
		})
	}
}

// isJournalEmit reports whether call is a journal emission: a call to Emit
// resolving into the module's obs package, or — when the receiver's type is
// unresolved — any .Emit(...) selector call (conservatively credited, so a
// nil-safe obs.Run plumbed through an interface still counts).
func isJournalEmit(pkg *Package, call *ast.CallExpr, modPath string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			p := obj.Pkg()
			return p != nil && strings.HasSuffix(p.Path(), "/obs")
		}
	}
	return true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// children invokes fn on each direct child node of n, in source order.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false // n itself
			return true
		}
		fn(c)
		return false // fn recurses as it sees fit
	})
}
