package analysis

import (
	"go/ast"
)

// GlobalRand flags use of math/rand's implicit global generator. Every
// random decision in this repo — datagen's synthetic universities, the
// fault injector's drop schedules, retry jitter, gpart's refinement — must
// flow through a seeded *rand.Rand so a (dataset, seed) pair reproduces
// byte-identically and a chaos run replays the same fault schedule.
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are the sanctioned
// way in; the package-level stateful functions are the violation. Test
// files are checked too: an unseeded test is a flaky test.
type GlobalRand struct{}

// Name implements Analyzer.
func (*GlobalRand) Name() string { return "globalrand" }

// Doc implements Analyzer.
func (*GlobalRand) Doc() string {
	return "no math/rand global-state use — all randomness flows through seeded *rand.Rand instances"
}

// globalRandFuncs are math/rand package-level functions backed by the
// shared, unseeded global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings of the same global-state shape.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint": true, "N": true,
}

// Run implements Analyzer.
func (a *GlobalRand) Run(pass *Pass) error {
	// Tests included deliberately: append them regardless of suite config.
	files := pass.Files
	if pass.Pkg != nil {
		seen := map[*ast.File]bool{}
		for _, f := range files {
			seen[f] = true
		}
		for _, f := range pass.Pkg.TestFiles {
			if !seen[f] {
				files = append(append([]*ast.File{}, files...), pass.Pkg.TestFiles...)
				break
			}
		}
	}
	for _, f := range files {
		name, ok := importName(f, "math/rand")
		if !ok {
			if name, ok = importName(f, "math/rand/v2"); !ok {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			if !pass.isPkgSelector(sel, name, sel.Sel.Name) {
				return true
			}
			pass.reportf(sel.Pos(),
				"global math/rand state (rand.%s): thread a seeded *rand.Rand so the run is reproducible from its seed",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
