package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Seeded-violation end-to-end tests for the dataflow analyzers: each plants
// one deliberate violation in a scratch module and runs the real cmd/owlvet
// binary, asserting exit code 1 and the exact file:line — the same contract
// the CI lint job consumes.

// seedAndRunOwlvet lays files out as a scratch module and runs owlvet over it
// from the repo root, returning combined output and exit code.
func seedAndRunOwlvet(t *testing.T, files map[string]string, extraArgs ...string) (string, int) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	args := append([]string{"run", "./cmd/owlvet"}, extraArgs...)
	args = append(args, dir)
	cmd := exec.Command("go", args...)
	cmd.Dir = mod.Root
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running owlvet: %v\n%s", err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func wantSeededFinding(t *testing.T, out string, code int, want string) {
	t.Helper()
	if code != 1 {
		t.Fatalf("owlvet exit code = %d, want 1 (findings); output:\n%s", code, out)
	}
	if !strings.Contains(out, want) {
		t.Errorf("owlvet output missing %q:\n%s", want, out)
	}
}

func TestSeededAtomicPubViolation(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]uint32]
}

func (p *posting) grow(n int, x uint32) {
	na := make([]uint32, n*2)
	p.arr.Store(&na)
	na[n] = x
}
`,
	})
	wantSeededFinding(t, out, code, "internal/core/bad.go:12:2: [atomicpub]")
}

func TestSeededAllocFreeViolation(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

//powl:allocfree hot join path
func Join(n int) int {
	buf := make([]int, n)
	return len(buf)
}
`,
	})
	wantSeededFinding(t, out, code, "internal/core/bad.go:5:9: [allocfree]")
}

func TestSeededDegradeJournalViolation(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

// Recover replays the log; when the sidecar is missing it degrades to
// plain asserted adds.
func Recover(n int) int {
	return n
}
`,
	})
	wantSeededFinding(t, out, code, "internal/core/bad.go:5:6: [degradejournal]")
}

func TestSeededDebtBudgetExceeded(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod":        "module seeded\n\ngo 1.22\n",
		"owlvet.budget": "wallclock 1\ntotal 1\n",
		"internal/core/x.go": `package core

import "time"

var T = time.Now() //powl:ignore wallclock startup stamp
var U = time.Now() //powl:ignore wallclock second stamp
`,
	}, "-debt")
	if code != 1 {
		t.Fatalf("owlvet -debt exit code = %d, want 1 (budget exceeded); output:\n%s", code, out)
	}
	for _, want := range []string{
		"owlvet: debt: total suppressions 2 exceed budget 1",
		"owlvet: debt: check wallclock suppressions 2 exceed budget 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("owlvet -debt output missing %q:\n%s", want, out)
		}
	}
}

func TestSeededDebtWithinBudgetPasses(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod":        "module seeded\n\ngo 1.22\n",
		"owlvet.budget": "wallclock 1\ntotal 1\n",
		"internal/core/x.go": `package core

import "time"

var T = time.Now() //powl:ignore wallclock startup stamp
`,
	}, "-debt")
	if code != 0 {
		t.Fatalf("owlvet -debt exit code = %d, want 0 (within budget); output:\n%s", code, out)
	}
	if !strings.Contains(out, "total: 1 directive(s)") {
		t.Errorf("owlvet -debt output missing report total:\n%s", out)
	}
}

func TestSeededSharedScratchViolation(t *testing.T) {
	out, code := seedAndRunOwlvet(t, map[string]string{
		"go.mod": "module seeded\n\ngo 1.22\n",
		"internal/core/bad.go": `package core

// scratch is a per-goroutine join buffer.
//
//powl:goroutinelocal
type scratch struct {
	env []uint64
}

func fire(n int) {
	sc := &scratch{env: make([]uint64, 8)}
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			sc.env[0] = 1
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
`,
	})
	wantSeededFinding(t, out, code,
		`bad.go:15:4: [sharedscratch] go closure captures "sc" involving //powl:goroutinelocal seeded/internal/core.scratch`)
}
