package analysis

import "testing"

// Edge cases of the //powl:ignore grammar: one directive naming several
// checks, and doc-comment scope on methods (receiver declarations).

func TestSuppressionMultiCheckDirective(t *testing.T) {
	// One line violates two checks; a single comma-separated directive
	// suppresses both.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import (
	"fmt"
	"time"
)

func dump(m map[int]int) {
	//powl:ignore mapiter,wallclock operator debug dump, order and stamp irrelevant
	for k := range m { fmt.Println(k, time.Now()) }
}
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionMultiCheckWithUnknownSuppressesNothing(t *testing.T) {
	// A directive is all-or-nothing: naming one unknown check invalidates it,
	// so the real finding surfaces alongside the directive finding.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

//powl:ignore wallclock,bogus half of this directive is wrong
var T = time.Now()
`,
	})
	wantFindings(t, fs,
		"[powlignore] ignore directive names unknown check bogus",
		"[wallclock]")
}

func TestSuppressionDocCommentCoversMethodBody(t *testing.T) {
	// Directive in a method's doc comment covers the whole declaration, so a
	// violation several lines into the body is still in scope.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "fmt"

type store struct {
	m map[int]int
}

// dump prints the table for operator debugging.
//
//powl:ignore mapiter operator debug dump, row order irrelevant
func (s *store) dump() {
	for k, v := range s.m {
		if v > 0 {
			fmt.Println(k, v)
		}
	}
}
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionDocCommentDoesNotLeakPastDeclaration(t *testing.T) {
	// The doc-comment scope ends with the declaration it documents: the next
	// function's violation is not covered.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

//powl:ignore wallclock measured duration feeds the cost model
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func stamp() time.Time {
	return time.Now()
}
`,
	})
	wantFindings(t, fs, "internal/core/x.go:12:9: [wallclock]")
}
