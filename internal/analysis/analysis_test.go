package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays a throwaway module out on disk and loads it. Keys of files
// are module-relative paths ("internal/core/x.go").
func writeModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return mod
}

// runOne runs a single analyzer (as its own suite) over an in-memory module
// and returns the findings with module-relative paths.
func runOne(t *testing.T, a Analyzer, files map[string]string) []Finding {
	t.Helper()
	mod := writeModule(t, files)
	suite := &Suite{Analyzers: []Analyzer{a}}
	fs, err := suite.Run(mod)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	RelPaths(mod.Root, fs)
	return fs
}

// runAll runs the full standard suite.
func runAll(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	mod := writeModule(t, files)
	fs, err := NewSuite().Run(mod)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	RelPaths(mod.Root, fs)
	return fs
}

func wantFindings(t *testing.T, fs []Finding, want ...string) {
	t.Helper()
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(fs), len(want), findingLines(fs))
	}
	for i, w := range want {
		if !strings.Contains(fs[i].String(), w) {
			t.Errorf("finding %d = %q, want it to contain %q", i, fs[i].String(), w)
		}
	}
}

func findingLines(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestMapIterFlagsSinkInRange(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import (
	"fmt"
	"os"
)

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s %d\n", k, v)
	}
}
`,
	})
	wantFindings(t, fs, "internal/p/p.go:9:2: [mapiter]")
}

func TestMapIterFlagsChannelSend(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

func route(m map[int]string, ch chan<- string) {
	for _, v := range m {
		ch <- v
	}
}
`,
	})
	wantFindings(t, fs, "channel send")
}

func TestMapIterAllowsAccumulation(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "sort"

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
	})
	wantFindings(t, fs)
}

func TestMapIterIgnoresNestedFuncLit(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "fmt"

func collect(m map[string]int) []func() {
	var fns []func()
	for k := range m {
		k := k
		fns = append(fns, func() { fmt.Println(k) })
	}
	return fns
}
`,
	})
	wantFindings(t, fs)
}

func TestMapIterAllowsRangeOverSlice(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "fmt"

func dump(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`,
	})
	wantFindings(t, fs)
}

// TestMapIterFlagsLineageMapEmit models the provenance-sidecar shape: a
// lineage map ranged straight into an encoder would serialize records in
// nondeterministic order, so the sidecar files would differ run to run.
func TestMapIterFlagsLineageMapEmit(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "io"

type Triple struct{ S, P, O uint32 }

type Lineage struct {
	Rule string
}

func writeSidecar(w io.Writer, lins map[Triple]Lineage) error {
	for _, lin := range lins {
		if _, err := io.WriteString(w, lin.Rule+"\n"); err != nil {
			return err
		}
	}
	return nil
}
`,
	})
	wantFindings(t, fs, "internal/p/p.go:12:2: [mapiter]")
}

// TestMapIterAllowsLineageProbeByOrderedSlice is the clean counterpart: the
// real sidecar code ranges the deterministic triple slice and only probes the
// map per element, so emission order is fixed by the slice.
func TestMapIterAllowsLineageProbeByOrderedSlice(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "io"

type Triple struct{ S, P, O uint32 }

type Lineage struct {
	Rule string
}

func writeSidecar(w io.Writer, ts []Triple, lins map[Triple]Lineage) error {
	for _, t := range ts {
		lin, ok := lins[t]
		if !ok {
			continue
		}
		if _, err := io.WriteString(w, lin.Rule+"\n"); err != nil {
			return err
		}
	}
	return nil
}
`,
	})
	wantFindings(t, fs)
}

// TestMapIterFlagsOverdeleteQueueSend models the DRed overdelete set: the
// set of offsets to retract is naturally a map, and ranging it straight into
// the rederivation queue makes restore order nondeterministic — premises
// must be reinstated before their consumers, so the queue must be fed in
// sorted offset order.
func TestMapIterFlagsOverdeleteQueueSend(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

func enqueue(overdeleted map[uint32]struct{}, rederive chan<- uint32) {
	for off := range overdeleted {
		rederive <- off
	}
}
`,
	})
	wantFindings(t, fs, "channel send")
}

// TestMapIterAllowsSortedOverdelete is the production shape in
// reason.Retractor.Retract: collect the overdelete set into a slice, sort
// ascending, and feed the rederivation loop from the slice — offset order is
// then a property of the data, not of map iteration.
func TestMapIterAllowsSortedOverdelete(t *testing.T) {
	fs := runOne(t, &MapIter{}, map[string]string{
		"internal/p/p.go": `package p

import "sort"

func enqueue(overdeleted map[uint32]struct{}, rederive chan<- uint32) {
	offs := make([]uint32, 0, len(overdeleted))
	for off := range overdeleted {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		rederive <- off
	}
}
`,
	})
	wantFindings(t, fs)
}

func TestWallClockFlagsOutsideAllowlist(t *testing.T) {
	fs := runOne(t, &WallClock{}, map[string]string{
		"internal/core/x.go": `package core

import "time"

func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`,
	})
	wantFindings(t, fs,
		"internal/core/x.go:6:11: [wallclock]",
		"internal/core/x.go:7:9: [wallclock]")
}

func TestWallClockAllowsSanctionedPackages(t *testing.T) {
	src := `package p

import "time"

var T = time.Now()
`
	fs := runOne(t, &WallClock{}, map[string]string{
		"internal/obs/x.go":       src,
		"internal/transport/x.go": src,
		"cmd/tool/x.go":           src,
		"examples/demo/x.go":      src,
	})
	wantFindings(t, fs)
}

func TestWallClockDoesNotMatchPrefixOfPackageName(t *testing.T) {
	// internal/obsolete must NOT inherit internal/obs's allowance.
	fs := runOne(t, &WallClock{}, map[string]string{
		"internal/obsolete/x.go": `package obsolete

import "time"

var T = time.Now()
`,
	})
	wantFindings(t, fs, "[wallclock]")
}

func TestWallClockSkipsTestFiles(t *testing.T) {
	fs := runOne(t, &WallClock{}, map[string]string{
		"internal/core/x_test.go": `package core

import (
	"testing"
	"time"
)

func TestTiming(t *testing.T) { _ = time.Now() }
`,
	})
	wantFindings(t, fs)
}

func TestWallClockIgnoresShadowingVariable(t *testing.T) {
	fs := runOne(t, &WallClock{}, map[string]string{
		"internal/core/x.go": `package core

type clock struct{}

func (clock) Now() int { return 0 }

func f() int {
	var time clock
	return time.Now()
}
`,
	})
	wantFindings(t, fs)
}

func TestGlobalRandFlagsGlobalState(t *testing.T) {
	fs := runOne(t, &GlobalRand{}, map[string]string{
		"internal/p/p.go": `package p

import "math/rand"

func pick(n int) int { return rand.Intn(n) }
`,
	})
	wantFindings(t, fs, "rand.Intn")
}

func TestGlobalRandFlagsV2(t *testing.T) {
	fs := runOne(t, &GlobalRand{}, map[string]string{
		"internal/p/p.go": `package p

import "math/rand/v2"

func pick(n int) int { return rand.IntN(n) }
`,
	})
	wantFindings(t, fs, "rand.IntN")
}

func TestGlobalRandAllowsSeededRand(t *testing.T) {
	fs := runOne(t, &GlobalRand{}, map[string]string{
		"internal/p/p.go": `package p

import "math/rand"

func pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
`,
	})
	wantFindings(t, fs)
}

func TestGlobalRandChecksTestFilesUnconditionally(t *testing.T) {
	// Suite.Tests is false here, yet the _test.go violation must surface.
	fs := runOne(t, &GlobalRand{}, map[string]string{
		"internal/p/p.go": "package p\n",
		"internal/p/p_test.go": `package p

import (
	"math/rand"
	"testing"
)

func TestFlaky(t *testing.T) { _ = rand.Intn(3) }
`,
	})
	wantFindings(t, fs, "p_test.go")
}

func TestCtxSpawnFlagsBareBlockingGoroutine(t *testing.T) {
	fs := runOne(t, &CtxSpawn{}, map[string]string{
		"internal/p/p.go": `package p

func leak(ch chan int) {
	go func() {
		<-ch
	}()
}
`,
	})
	wantFindings(t, fs, "[ctxspawn]")
}

func TestCtxSpawnAllowsCancellation(t *testing.T) {
	fs := runOne(t, &CtxSpawn{}, map[string]string{
		"internal/p/p.go": `package p

import "context"

func okCtx(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case <-ch:
		}
	}()
}

func okStop(stop chan struct{}, ch chan int) {
	go func() {
		select {
		case <-stop:
		case <-ch:
		}
	}()
}

func okArg(ctx context.Context, ch chan int) {
	go func(c context.Context) {
		<-ch
	}(ctx)
}

func okNonBlocking(n *int) {
	go func() { *n++ }()
}
`,
	})
	wantFindings(t, fs)
}

func TestLockedSendFlagsSendUnderLock(t *testing.T) {
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

func bad(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
	})
	wantFindings(t, fs, "channel send on ch while holding mu")
}

func TestLockedSendFlagsDeferredUnlock(t *testing.T) {
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

func bad(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}
`,
	})
	wantFindings(t, fs, "[lockedsend]")
}

func TestLockedSendFlagsWaitUnderLock(t *testing.T) {
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

func bad(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait()
	mu.Unlock()
}
`,
	})
	wantFindings(t, fs, "wg.Wait()")
}

func TestLockedSendAllowsReleaseBeforeSend(t *testing.T) {
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

func ok(mu *sync.Mutex, m map[int]int, ch chan int) {
	mu.Lock()
	v := m[0]
	mu.Unlock()
	ch <- v
}
`,
	})
	wantFindings(t, fs)
}

func TestLockedSendExemptsCondWait(t *testing.T) {
	// Cond.Wait must be called with its lock held: that is its contract.
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

type barrier struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (b *barrier) await() {
	b.mu.Lock()
	for b.n > 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
`,
	})
	wantFindings(t, fs)
}

func TestLockedSendTreatsFuncLitAsSeparateScope(t *testing.T) {
	// The literal runs on another goroutine's stack at another time; the
	// enclosing function's lock state does not transfer.
	fs := runOne(t, &LockedSend{}, map[string]string{
		"internal/p/p.go": `package p

import "sync"

func ok(mu *sync.Mutex, ch chan int) func() {
	mu.Lock()
	f := func() { ch <- 1 }
	mu.Unlock()
	return f
}
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionSameLine(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

var T = time.Now() //powl:ignore wallclock startup stamp, reported to the operator only
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionLineAbove(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

//powl:ignore wallclock startup stamp, reported to the operator only
var T = time.Now()
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionDocCommentCoversDeclaration(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

// measure times one probe round.
//powl:ignore wallclock measured duration feeds the cost model, not run output
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`,
	})
	wantFindings(t, fs)
}

func TestSuppressionMissingReasonIsAFinding(t *testing.T) {
	// A reasonless directive suppresses nothing: the wallclock violation AND
	// the malformed directive both surface.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

var T = time.Now() //powl:ignore wallclock
`,
	})
	wantFindings(t, fs,
		"[wallclock]",
		"[powlignore] ignore directive for wallclock has no reason")
}

func TestSuppressionUnknownCheckIsAFinding(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

//powl:ignore nosuchcheck this check does not exist
var T = 0
`,
	})
	wantFindings(t, fs, "[powlignore] ignore directive names unknown check nosuchcheck")
}

func TestSuppressionNoCheckIsAFinding(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

//powl:ignore
var T = 0
`,
	})
	wantFindings(t, fs, "[powlignore] ignore directive names no check")
}

func TestSuppressionOnlyCoversNamedCheck(t *testing.T) {
	// An ignore for one check must not swallow another check's finding on the
	// same line.
	fs := runAll(t, map[string]string{
		"internal/core/x.go": `package core

import (
	"math/rand"
	"time"
)

//powl:ignore wallclock sanctioned for this test
func f() int {
	_ = time.Now()
	return rand.Intn(3)
}
`,
	})
	wantFindings(t, fs, "[globalrand]")
}

func TestFindingsAreSortedByPosition(t *testing.T) {
	fs := runAll(t, map[string]string{
		"internal/b/b.go": `package b

import "time"

var T = time.Now()
`,
		"internal/a/a.go": `package a

import "math/rand"

func f() int { return rand.Intn(3) }
`,
	})
	wantFindings(t, fs,
		"internal/a/a.go:5", // globalrand, sorts first by file
		"internal/b/b.go:5") // wallclock
}
