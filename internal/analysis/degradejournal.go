package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// DegradeJournal enforces the repo's degradation contract: whenever the
// system falls back to a weaker mode — replaying a batch without its lineage
// sidecar, rebuilding a retraction without provenance, adopting a partition
// past a missing checkpoint — it must say so in the obs journal before
// continuing, and it must not swallow the error that put it there. PR 7/8
// established the convention ("degrade to asserted, journal the decision");
// this analyzer makes it checkable:
//
//   - a function whose doc comment documents a degradation must reach a
//     journal emit ((*obs.Run).Emit, directly or through a callee — the
//     Emits fact from callgraph.go) somewhere in its body;
//   - a degradation documented by a comment inside a body must emit within
//     the innermost enclosing block, so the journal line sits on the
//     degraded path itself rather than a sibling branch;
//   - inside any degrade scope, discarding an error with a blank identifier
//     is flagged: a degraded path that also eats its error is invisible at
//     the worst possible time.
//
// The trigger is the documentation itself (any comment matching
// /\bdegrad/i): the repo consistently narrates its fallbacks, so the prose
// is a reliable index of exactly the seams this check must guard.
type DegradeJournal struct{}

func (d *DegradeJournal) Name() string { return "degradejournal" }

func (d *DegradeJournal) Doc() string {
	return "documented degraded fallbacks emit an obs journal event before continuing and do not swallow errors on the degraded path"
}

var degradeRE = regexp.MustCompile(`(?i)\bdegrad`)

func (d *DegradeJournal) Run(pass *Pass) error {
	if pass.Mod == nil || pass.Pkg == nil {
		return nil
	}
	// The analysis framework and its tests talk about degradation as a
	// subject, not as a runtime state; analyzing the analyzer would make the
	// trigger word unwritable.
	if strings.Contains(pass.Pkg.Path, "internal/analysis") {
		return nil
	}
	cg := pass.Mod.CallGraph()
	for _, f := range pass.Files {
		if FileIsTest(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d.checkFunc(pass, cg, f, fd)
		}
	}
	return nil
}

// checkFunc evaluates the degrade scopes of one function: the whole body
// when the doc comment documents a degradation, plus the innermost enclosing
// block of every in-body degradation comment.
func (d *DegradeJournal) checkFunc(pass *Pass, cg *CallGraph, f *ast.File, fd *ast.FuncDecl) {
	emitters := localEmitterFuncs(pass, fd)
	type scope struct {
		block ast.Node  // subtree that must journal
		pos   token.Pos // where to report a missing emit
		what  string
	}
	var scopes []scope
	if fd.Doc != nil && degradeRE.MatchString(fd.Doc.Text()) {
		scopes = append(scopes, scope{fd.Body, fd.Name.Pos(), "function documents a degraded fallback"})
	}
	for _, cg2 := range f.Comments {
		if cg2.Pos() <= fd.Body.Pos() || cg2.End() >= fd.Body.End() {
			continue
		}
		if !degradeRE.MatchString(cg2.Text()) {
			continue
		}
		if hasIgnoreDirective(cg2) {
			continue // an ignore directive mentioning the word is not prose
		}
		block := innermostBlock(fd.Body, cg2.Pos())
		scopes = append(scopes, scope{block, cg2.Pos(), "comment documents a degraded fallback"})
	}
	for _, sc := range scopes {
		if !d.scopeEmits(pass, cg, sc.block, emitters) {
			pass.reportf(sc.pos, "%s but the scope never emits an obs journal event; emit (e.g. obs.EvWarn) before continuing degraded", sc.what)
		}
		d.checkSwallowedErrors(pass, cg, sc.block)
	}
}

// hasIgnoreDirective reports whether the comment group is (or contains) a
// powl directive rather than prose.
func hasIgnoreDirective(g *ast.CommentGroup) bool {
	for _, c := range g.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//powl:") {
			return true
		}
	}
	return false
}

// innermostBlock returns the smallest BlockStmt in body containing pos
// (body itself when the comment sits between statements at the top level).
func innermostBlock(body *ast.BlockStmt, pos token.Pos) ast.Node {
	var best ast.Node = body
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		if b.Pos() <= pos && pos <= b.End() {
			// Inspect visits outer blocks first; the last hit is innermost.
			best = b
		}
		return true
	})
	return best
}

// scopeEmits reports whether the scope subtree reaches a journal emission:
// a direct .Emit call, a statically resolved callee carrying the Emits fact,
// or a call to a local closure that itself emits.
func (d *DegradeJournal) scopeEmits(pass *Pass, cg *CallGraph, scope ast.Node, emitters map[types.Object]bool) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isJournalEmit(pass.Pkg, call, pass.Mod.Path) {
			found = true
			return false
		}
		if callee := cg.Resolve(pass.Pkg, call); callee != nil && callee.Emits {
			found = true
			return false
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && pass.Pkg.Info != nil {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && emitters[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// localEmitterFuncs collects the function's `warn := func(...) { o.Emit(...) }`
// style locals: closure-typed variables whose literal body emits.
func localEmitterFuncs(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if pass.Pkg.Info == nil {
		return out
	}
	bind := func(nameExpr ast.Expr, val ast.Expr) {
		lit, ok := unparen(val).(*ast.FuncLit)
		if !ok {
			return
		}
		hasEmit := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isJournalEmit(pass.Pkg, call, "") {
				hasEmit = true
				return false
			}
			return true
		})
		if !hasEmit {
			return
		}
		if id, ok := unparen(nameExpr).(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			bind(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	return out
}

// checkSwallowedErrors flags blank-identifier discards of (possible) errors
// inside a degrade scope.
func (d *DegradeJournal) checkSwallowedErrors(pass *Pass, cg *CallGraph, scope ast.Node) {
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			if d.discardsError(pass, cg, call, i, len(as.Lhs)) {
				pass.reportf(l.Pos(), "error discarded on a degraded path; handle it or journal it — a degraded path that eats its error is invisible")
			}
		}
		return true
	})
}

// discardsError decides whether blank position i of an n-result assignment
// from call drops an error. With resolved types the result type answers
// exactly; unresolved calls fall back to the Go convention that the error is
// the final result.
func (d *DegradeJournal) discardsError(pass *Pass, cg *CallGraph, call *ast.CallExpr, i, n int) bool {
	if t := pass.TypeOf(call); t != nil {
		switch rt := t.(type) {
		case *types.Tuple:
			if i < rt.Len() {
				return isErrorType(rt.At(i).Type())
			}
			return false
		default:
			return n == 1 && isErrorType(rt)
		}
	}
	// Unresolved (stubbed) callee: assume the trailing result is an error.
	return i == n-1
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
