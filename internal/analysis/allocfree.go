package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFreeDirective marks a function whose transitive in-module call cone
// must be free of allocating constructs.
const AllocFreeDirective = "//powl:allocfree"

// AllocFree statically verifies the zero-alloc join path. PR 5/6 made the
// steady-state materialize and serve reads 0 allocs/op, and
// TestJoinPathZeroAllocs pins that at runtime — but AllocsPerRun samples one
// workload; a branch it never takes can still allocate. A function annotated
//
//	//powl:allocfree
//
// in its doc comment is verified structurally instead: the analyzer walks
// its transitive in-module callees (over the module call graph) and flags
// every allocating construct in the cone — make/new, slice/map composite
// literals, &composite, growing append onto anything but a same-function
// `buf[:0]` reslice, go/defer, string<->[]byte conversions, fmt calls,
// interface boxing at resolved call sites, and closures that escape (a
// FuncLit is allowed only as a direct argument to a call-only parameter of
// a resolved callee — see callgraph.go for that fact). Calls that resolve
// outside the module (stubbed stdlib) are skipped: the runtime test remains
// the net for those.
type AllocFree struct {
	mod  *Module
	pend map[*Package][]pendingFinding
}

type pendingFinding struct {
	pos token.Pos
	msg string
}

func (a *AllocFree) Name() string { return "allocfree" }

func (a *AllocFree) Doc() string {
	return "transitive callees of //powl:allocfree functions contain no allocating constructs (statically verifies the zero-alloc join path)"
}

func (a *AllocFree) Run(pass *Pass) error {
	if pass.Mod == nil {
		return nil
	}
	a.build(pass.Mod)
	for _, f := range a.pend[pass.Pkg] {
		pass.reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// build computes the module-wide findings once and buckets them by package,
// so the per-package Run calls report each finding exactly once.
func (a *AllocFree) build(mod *Module) {
	if a.mod == mod {
		return
	}
	a.mod = mod
	a.pend = map[*Package][]pendingFinding{}
	cg := mod.CallGraph()

	// Roots: declarations carrying the annotation in their doc comment.
	var roots []*FuncInfo
	for _, fi := range cg.Funcs {
		if hasAllocFreeDirective(fi.Decl.Doc) {
			roots = append(roots, fi)
		}
	}
	// BFS the cone; remember how each function was reached for messages.
	via := map[*FuncInfo]*FuncInfo{} // callee -> caller on first discovery
	root := map[*FuncInfo]*FuncInfo{}
	queue := append([]*FuncInfo{}, roots...)
	for _, r := range roots {
		root[r] = r
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, c := range fi.Callees {
			if _, seen := root[c]; seen {
				continue
			}
			via[c] = fi
			root[c] = root[fi]
			queue = append(queue, c)
		}
	}
	// Scan every cone member (roots first, then discovery order is
	// irrelevant: findings are position-sorted by the suite).
	for _, fi := range cg.Funcs {
		if _, in := root[fi]; in {
			a.scanFunc(cg, fi, a.reachNote(fi, via, root))
		}
	}
}

// reachNote renders "in <fn>" for a root or "reachable from //powl:allocfree
// <root> via <caller>" for cone members, so a finding names the hot path
// that pulls the construct in.
func (a *AllocFree) reachNote(fi *FuncInfo, via, root map[*FuncInfo]*FuncInfo) string {
	r := root[fi]
	if r == fi {
		return "in //powl:allocfree " + fi.Name()
	}
	if caller := via[fi]; caller != nil && caller != r {
		return "in " + fi.Name() + ", reachable from //powl:allocfree " + r.Name() + " via " + caller.Name()
	}
	return "in " + fi.Name() + ", reachable from //powl:allocfree " + r.Name()
}

func hasAllocFreeDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), AllocFreeDirective) {
			return true
		}
	}
	return false
}

// scanFunc flags the allocating constructs in one cone member's body.
func (a *AllocFree) scanFunc(cg *CallGraph, fi *FuncInfo, note string) {
	if fi.Decl.Body == nil {
		return
	}
	pkg := fi.Pkg
	report := func(pos token.Pos, msg string) {
		a.pend[pkg] = append(a.pend[pkg], pendingFinding{pos, msg + " " + note})
	}
	file := fileOf(pkg, fi.Decl.Pos())
	fmtName := ""
	if file != nil {
		fmtName, _ = importName(file, "fmt")
	}

	// Track locals bound from a zero-length reslice (`buf := sc.buf[:0]`):
	// appending onto those reuses a persistent scratch buffer and is the
	// sanctioned amortized-growth idiom.
	reslice := map[types.Object]bool{}
	markReslices := func(lhs, rhs []ast.Expr) {
		for i, l := range lhs {
			if i >= len(rhs) {
				break
			}
			if !isZeroReslice(rhs[i]) {
				continue
			}
			if id, ok := unparen(l).(*ast.Ident); ok && pkg.Info != nil {
				if obj := pkg.Info.Defs[id]; obj != nil {
					reslice[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					reslice[obj] = true
				}
			}
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			markReslices(as.Lhs, as.Rhs)
		}
		return true
	})

	// okLits are FuncLits sanctioned as non-escaping (direct argument to a
	// call-only parameter of a resolved callee).
	okLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := cg.Resolve(pkg, call)
		if callee == nil {
			return true
		}
		for ai, arg := range call.Args {
			if lit, isLit := unparen(arg).(*ast.FuncLit); isLit {
				if callee.CallOnlyParam(calleeParamIndex(callee, ai)) {
					okLits[lit] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(x.Pos(), "defer allocates a deferred frame")
		case *ast.FuncLit:
			if !okLits[x] {
				report(x.Pos(), "closure may escape and allocate (pass it to a call-only parameter or hoist it)")
			}
			// Keep descending: the closure body runs on the hot path too.
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := unparen(x.X).(*ast.CompositeLit); isLit {
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if isSliceOrMapLit(pkg, x) {
				report(x.Pos(), "slice/map composite literal allocates")
			}
		case *ast.CallExpr:
			a.checkCall(cg, pkg, x, fmtName, reslice, report)
		}
		return true
	})
}

// checkCall flags allocating call shapes: builtins, conversions, fmt, and
// interface boxing at resolved call sites.
func (a *AllocFree) checkCall(cg *CallGraph, pkg *Package, call *ast.CallExpr, fmtName string, reslice map[types.Object]bool, report func(token.Pos, string)) {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fn.Name {
		case "make", "new":
			report(call.Pos(), fn.Name+"() allocates")
			return
		case "append":
			if len(call.Args) > 0 && !isResliceTarget(pkg, call.Args[0], reslice) {
				report(call.Pos(), "append may grow and allocate; append onto a `buf[:0]` reslice of a persistent scratch buffer")
			}
			return
		case "string":
			if len(call.Args) == 1 {
				report(call.Pos(), "string conversion allocates")
			}
			return
		}
	case *ast.ArrayType:
		// []byte(s) / []rune(s) conversion.
		if fn.Len == nil {
			report(call.Pos(), "slice conversion allocates")
		}
		return
	case *ast.SelectorExpr:
		if fmtName != "" {
			if id, ok := fn.X.(*ast.Ident); ok && id.Name == fmtName {
				if pkg.Info == nil || pkg.Info.Uses[id] == nil || isPkgName(pkg.Info.Uses[id]) {
					report(call.Pos(), "fmt."+fn.Sel.Name+" allocates (boxing + buffering)")
					return
				}
			}
		}
	}
	// Interface boxing on resolved in-module calls: a concrete argument
	// passed into an interface-typed parameter escapes.
	callee := cg.Resolve(pkg, call)
	if callee == nil || callee.Obj == nil {
		return
	}
	sig, ok := callee.Obj.Type().(*types.Signature)
	if !ok || pkg.Info == nil {
		return
	}
	params := sig.Params()
	for ai, arg := range call.Args {
		pi := ai
		if sig.Variadic() && pi >= params.Len() {
			pi = params.Len() - 1
		}
		if pi < 0 || pi >= params.Len() {
			continue
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || at == types.Typ[types.Invalid] || types.IsInterface(at) {
			continue
		}
		if isNilIdent(arg) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "passing concrete value into interface parameter boxes (allocates)")
	}
}

// isZeroReslice matches `x[:0]`.
func isZeroReslice(e ast.Expr) bool {
	se, ok := unparen(e).(*ast.SliceExpr)
	if !ok || se.Low != nil || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isResliceTarget reports whether the append target is sanctioned: either a
// local previously bound from a `[:0]` reslice, or an inline `x[:0]`.
func isResliceTarget(pkg *Package, e ast.Expr, reslice map[types.Object]bool) bool {
	if isZeroReslice(e) {
		return true
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok || pkg.Info == nil {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	return obj != nil && reslice[obj]
}

// isSliceOrMapLit reports whether the composite literal builds a slice or
// map (array and struct literals are values and stay off the heap unless
// their address is taken, which is flagged separately).
func isSliceOrMapLit(pkg *Package, lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.ArrayType:
		return t.Len == nil
	case *ast.MapType:
		return true
	case nil:
		return false // inner literal of an enclosing composite; typed by context
	}
	if pkg.Info != nil {
		if t := pkg.Info.TypeOf(lit); t != nil && t != types.Typ[types.Invalid] {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
			return false
		}
	}
	return false
}

func isPkgName(obj types.Object) bool {
	_, ok := obj.(*types.PkgName)
	return ok
}

// fileOf returns the syntax file of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
