package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCollectDebtCountsAndGroups(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

//powl:ignore wallclock,mapiter one directive, two checks
var T = time.Now()

var U = time.Now() //powl:ignore wallclock second stamp
`,
	})
	r := CollectDebt(mod)
	if r.Total != 2 {
		t.Errorf("Total = %d, want 2 (a multi-check directive counts once)", r.Total)
	}
	if r.PerCheck["wallclock"] != 2 || r.PerCheck["mapiter"] != 1 {
		t.Errorf("PerCheck = %v, want wallclock:2 mapiter:1", r.PerCheck)
	}
	if len(r.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(r.Entries))
	}
	// Sorted by check then file then line; paths are module-relative.
	want := []DebtEntry{
		{Check: "mapiter", File: "internal/core/x.go", Line: 5, Reason: "one directive, two checks"},
		{Check: "wallclock", File: "internal/core/x.go", Line: 5, Reason: "one directive, two checks"},
		{Check: "wallclock", File: "internal/core/x.go", Line: 8, Reason: "second stamp"},
	}
	for i, w := range want {
		if r.Entries[i] != w {
			t.Errorf("entry %d = %+v, want %+v", i, r.Entries[i], w)
		}
	}
}

func TestCollectDebtIncludesTestFiles(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/core/x.go": "package core\n",
		"internal/core/x_test.go": `package core

import "testing"

//powl:ignore globalrand deliberately unseeded fuzz corpus
func TestNoop(t *testing.T) {}
`,
	})
	r := CollectDebt(mod)
	if r.Total != 1 || r.PerCheck["globalrand"] != 1 {
		t.Errorf("Total=%d PerCheck=%v, want the test-file directive counted", r.Total, r.PerCheck)
	}
}

func TestWriteDebtRendersGroupedReport(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/core/x.go": `package core

import "time"

var T = time.Now() //powl:ignore wallclock startup stamp
`,
	})
	var b strings.Builder
	if err := WriteDebt(&b, CollectDebt(mod)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"wallclock: 1\n",
		"  internal/core/x.go:5  startup stamp\n",
		"total: 1 directive(s)\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "owlvet.budget")
	if err := os.WriteFile(path, []byte("# ceilings\n\nwallclock 3\ntotal 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if b["wallclock"] != 3 || b["total"] != 5 || len(b) != 2 {
		t.Errorf("budget = %v, want wallclock:3 total:5", b)
	}
}

func TestLoadBudgetRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"wallclock\n",        // missing max
		"wallclock three\n",  // non-numeric
		"wallclock -1\n",     // negative
		"wallclock 1 more\n", // trailing junk
	} {
		path := filepath.Join(t.TempDir(), "owlvet.budget")
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBudget(path); err == nil {
			t.Errorf("LoadBudget accepted %q, want error", bad)
		}
	}
}

func TestExceeds(t *testing.T) {
	r := &DebtReport{
		PerCheck: map[string]int{"wallclock": 2, "mapiter": 1},
		Total:    3,
	}
	if msgs := r.Exceeds(Budget{"wallclock": 2, "mapiter": 1, "total": 3}); len(msgs) != 0 {
		t.Errorf("at-ceiling budget violated: %v", msgs)
	}
	msgs := r.Exceeds(Budget{"wallclock": 1, "mapiter": 1, "total": 3})
	if len(msgs) != 1 || !strings.Contains(msgs[0], "check wallclock suppressions 2 exceed budget 1") {
		t.Errorf("per-check overrun: %v", msgs)
	}
	msgs = r.Exceeds(Budget{"wallclock": 2, "total": 2})
	if len(msgs) != 2 ||
		!strings.Contains(msgs[0], "total suppressions 3 exceed budget 2") ||
		!strings.Contains(msgs[1], "check mapiter has 1 suppression(s) but no budget line") {
		t.Errorf("total overrun + unbudgeted check: %v", msgs)
	}
}
