package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// importName returns the local name under which file imports path, and
// whether it imports it at all. A dot or blank import returns ok=false —
// neither produces the pkg.Func selector shape the analyzers match.
func importName(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name == nil {
			return defaultImportName(p), true
		}
		if imp.Name.Name == "." || imp.Name.Name == "_" {
			return "", false
		}
		return imp.Name.Name, true
	}
	return "", false
}

// defaultImportName derives the package identifier an unaliased import of
// path binds: the last segment, skipping a major-version suffix
// (math/rand/v2 imports as rand).
func defaultImportName(path string) string {
	segs := strings.Split(path, "/")
	name := segs[len(segs)-1]
	if len(segs) > 1 && len(name) > 1 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
		name = segs[len(segs)-2]
	}
	return name
}

// isPkgSelector reports whether e is a selector on the package identifier
// pkgName (e.g. time.Now with pkgName "time") — as opposed to a method or
// field access on a variable that happens to share the name. The identifier
// must not resolve to any local object.
func (p *Pass) isPkgSelector(e ast.Expr, pkgName, sel string) bool {
	s, ok := e.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return false
	}
	return p.identIsPackage(id)
}

// identIsPackage reports whether id denotes a package name rather than a
// variable shadowing one. With best-effort type info the identifier resolves
// to a *types.PkgName (or to nothing, when the import is stubbed and the
// file-scope lookup failed) — a resolution to a variable, field or function
// means it is not the package.
func (p *Pass) identIsPackage(id *ast.Ident) bool {
	if p.Pkg == nil || p.Pkg.Info == nil {
		return true // no type info at all: assume package use
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return true // unresolved: stubbed import, assume package use
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}

// funcBodies yields every function body in f — declarations and literals —
// paired with its declaring node. Nested literals are yielded separately AND
// remain part of the enclosing body's subtree; analyzers that must treat
// them as separate scopes (lockedsend) prune nested literals themselves.
func funcBodies(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// exprString renders a small expression (receiver chains like w.coord.mu)
// for lock-identity comparison and messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	default:
		return "?"
	}
}
