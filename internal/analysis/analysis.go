// Package analysis is a from-scratch, stdlib-only static-analysis framework
// (go/ast + go/parser + go/token + go/types) that enforces the repo's
// determinism and concurrency invariants. The paper's reproduction claims —
// speedup figures reconstructed by Simulated mode, closure == serial fixpoint
// under chaos — hold only while every run is deterministic, and that property
// is exactly the kind that rots silently: one unsorted map iteration in a
// writer, one stray wall-clock read in a partitioner, and the outputs stop
// being byte-stable without any test noticing. The analyzers in this package
// turn those conventions into machine-checked invariants; cmd/owlvet runs
// them over the module and the self-hosting test pins the repo at zero
// findings.
//
// Suppression: a finding can be acknowledged in source with
//
//	//powl:ignore <check>[,<check>...] <reason>
//
// placed on the offending line, on the line directly above it, or in the doc
// comment of the enclosing declaration (which suppresses the named checks for
// the whole declaration). The reason is mandatory — an ignore directive
// without one is itself a finding — and so is naming a real check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Check is the analyzer name that produced the finding.
	Check string `json:"check"`
	// Pos locates the violation (file is module-root-relative in reports).
	Pos token.Position `json:"-"`
	// Message states the violation and what to do about it.
	Message string `json:"message"`

	// File/Line/Col mirror Pos for the JSON reporter.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one check over a loaded package.
type Analyzer interface {
	// Name is the check's identifier, used in reports and ignore directives.
	Name() string
	// Doc is the one-line invariant statement for -list and DESIGN.md.
	Doc() string
	// Run inspects one package and reports findings through pass.Report.
	Run(pass *Pass) error
}

// Pass hands one package to one analyzer.
type Pass struct {
	Fset *token.FileSet
	// Pkg is the loaded package under analysis.
	Pkg *Package
	// Files are the syntax trees the analyzer should inspect. Test files are
	// excluded unless the suite was configured with Tests.
	Files []*ast.File
	// Mod is the whole loaded module, for analyzers that compose facts
	// across packages (call graph, cross-package annotations).
	Mod *Module

	report func(Finding)
}

// TypeOf returns the best-effort type of e, or nil when type checking could
// not resolve it (imports outside the module are stubbed, so expressions
// flowing through the stdlib may be unresolved — analyzers must treat nil as
// "unknown", not "not a match").
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg == nil || p.Pkg.Info == nil {
		return nil
	}
	t := p.Pkg.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// Suite is a configured set of analyzers plus run options.
type Suite struct {
	Analyzers []Analyzer
	// Tests includes _test.go files in the analysis when set.
	Tests bool
}

// NewSuite returns the repo's standard analyzer suite.
func NewSuite() *Suite {
	return &Suite{Analyzers: []Analyzer{
		&MapIter{},
		&WallClock{},
		&GlobalRand{},
		&CtxSpawn{},
		&LockedSend{},
		&AtomicPub{},
		&AllocFree{},
		&DegradeJournal{},
		&SharedScratch{},
	}}
}

// CheckNames returns the sorted analyzer names, the vocabulary valid in
// ignore directives.
func (s *Suite) CheckNames() []string {
	names := make([]string, 0, len(s.Analyzers))
	for _, a := range s.Analyzers {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}

// Run loads nothing itself: it analyzes the already-loaded packages, applies
// the ignore directives, and returns the surviving findings sorted by
// position. Directive misuse (missing reason, unknown check) is returned as
// findings of the "powlignore" pseudo-check.
func (s *Suite) Run(mod *Module) ([]Finding, error) {
	var all []Finding
	for _, pkg := range mod.Packages {
		files := pkg.Files
		if s.Tests {
			files = append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		}
		for _, a := range s.Analyzers {
			pass := &Pass{Fset: mod.Fset, Pkg: pkg, Files: files, Mod: mod}
			if err := runAnalyzer(a, pass, &all); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name(), pkg.Path, err)
			}
		}
	}
	// Ignore directives are gathered over every file of every package —
	// including test files even when analyzers skip them, so a stale
	// directive in a test still gets validated.
	dirs := collectDirectives(mod)
	kept := applyDirectives(all, dirs, s.CheckNames())
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Check < kept[j].Check
	})
	return kept, nil
}

// runAnalyzer executes a with a reporting hook that stamps the check name
// and module-relative path onto each finding.
func runAnalyzer(a Analyzer, pass *Pass, out *[]Finding) error {
	pass.report = func(f Finding) {
		f.Check = a.Name()
		*out = append(*out, f)
	}
	return a.Run(pass)
}

// reportf is the helper analyzers use: position + message in one call.
func (p *Pass) reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}
