package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxSpawn flags `go func() { ... }()` literals that block on channel
// operations with no cancellation path: no ctx.Done()/context selector use,
// no context.Context in scope being consulted, and no select case draining a
// stop/done/quit channel. This is the goroutine-leak shape that bit the TCP
// readLoop in PR 1 — a goroutine parked on a channel nobody will ever close
// survives the run, holds its captures, and in tests trips the leak
// detectors nondeterministically. A goroutine that performs no blocking
// channel operation (e.g. one that only calls a bounded function) is not
// flagged; neither is one that can see a cancellation signal, even if a
// particular operation forgets to select on it — that finer discipline is
// the -race suite's job.
type CtxSpawn struct{}

// Name implements Analyzer.
func (*CtxSpawn) Name() string { return "ctxspawn" }

// Doc implements Analyzer.
func (*CtxSpawn) Doc() string {
	return "no `go func` blocking on channels without a cancellation path (ctx.Done / stop channel) in scope"
}

// Run implements Analyzer.
func (a *CtxSpawn) Run(pass *Pass) error {
	for _, f := range pass.Files {
		if FileIsTest(pass.Fset, f.Pos()) {
			continue // the testing framework bounds test goroutines
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named funcs own their lifecycle; literals leak
			}
			if !blocksOnChannels(lit.Body) {
				return true
			}
			if seesCancellation(lit) || argsCarryCancellation(g.Call) {
				return true
			}
			pass.reportf(g.Pos(),
				"goroutine blocks on channel operations with no cancellation path: plumb a context (select on ctx.Done()) or a stop channel")
			return true
		})
	}
	return nil
}

// blocksOnChannels reports whether body contains a potentially-blocking
// channel operation: a send, a receive, a range over a channel shape, or a
// select without a default case. Nested function literals are separate
// goroutine bodies only when spawned — but any channel op inside still
// executes under this goroutine unless spawned again, so they count.
func blocksOnChannels(body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocking = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = true
			}
			return false // cases already decided the verdict
		}
		return !blocking
	})
	return blocking
}

// seesCancellation reports whether the literal's body references a
// cancellation signal: a .Done() call/selector, an identifier that names a
// context (ctx, wctx, rctx, …) or a stop/done/quit channel.
func seesCancellation(lit *ast.FuncLit) bool {
	// A context parameter on the literal itself counts even if unused in a
	// channel op — the author wired cancellation through.
	if lit.Type.Params != nil {
		for _, p := range lit.Type.Params.List {
			for _, name := range p.Names {
				if isCancelName(name.Name) {
					return true
				}
			}
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Done" || isCancelName(x.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if isCancelName(x.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// argsCarryCancellation reports whether the spawn call passes a cancellation
// signal in as an argument (go func(ctx context.Context) {...}(ctx)).
func argsCarryCancellation(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && isCancelName(id.Name) {
			return true
		}
	}
	return false
}

// isCancelName matches identifiers conventionally carrying a cancellation
// signal: any *ctx/ctx* spelling, stop/done/quit/closed channels.
func isCancelName(name string) bool {
	lower := strings.ToLower(name)
	if strings.Contains(lower, "ctx") || strings.Contains(lower, "context") {
		return true
	}
	switch lower {
	case "stop", "done", "quit", "closed", "closing", "shutdown", "cancel":
		return true
	}
	return false
}
