package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPub enforces the copy-on-write discipline around the store's atomic
// publication points. The MVCC substrate (PR 6) publishes posting-list
// arrays, tombstone bitsets, and the prov name table by swapping an
// atomic.Pointer: readers Load and walk a frozen value with no lock, so the
// one rule that keeps them race-free is that a value, once Stored, is never
// written through again — growth happens by cloning, mutating the clone,
// and swapping. This analyzer proves the rule at the source level:
//
//   - post-publication mutation: any write through a variable that aliases a
//     value already handed to Store/Swap, or obtained from Load, is flagged
//     (the intra-procedural alias tracking lives in dataflow.go);
//   - mixed access: an atomic field must only ever be used as the receiver
//     of Load/Store/Swap/CompareAndSwap — indexing it, taking its address,
//     or assigning it directly bypasses the happens-before edge the atomic
//     provides.
//
// Atomic fields are collected module-wide and syntactically (struct fields
// and package vars declared as atomic.Pointer[...]/atomic.Value): the loader
// stubs sync/atomic, so their types are unresolved and the declaration shape
// is the ground truth.
type AtomicPub struct {
	mod *Module
	// fields are the declared atomic field/var objects.
	fields map[types.Object]bool
	// names is the fallback for uses the checker could not resolve to the
	// declared object (e.g. through generic instantiation).
	names map[string]bool
}

func (a *AtomicPub) Name() string { return "atomicpub" }

func (a *AtomicPub) Doc() string {
	return "values published via atomic.Pointer/atomic.Value follow COW discipline: no post-publication mutation, no mixed atomic/plain access"
}

// atomicMethods are the sanctioned operations on an atomic field.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true,
	"CompareAndSwap": true, "CompareAndDelete": true,
	"Add": true, "And": true, "Or": true,
}

func (a *AtomicPub) Run(pass *Pass) error {
	if pass.Mod == nil {
		return nil
	}
	a.collect(pass.Mod)
	if len(a.fields) == 0 && len(a.names) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if FileIsTest(pass.Fset, f.Pos()) {
			// Test bodies mutate snapshots on purpose to prove detection;
			// the shipped invariant lives in non-test code.
			continue
		}
		a.checkMixedAccess(pass, f)
		funcBodies(f, func(node ast.Node, body *ast.BlockStmt) {
			if _, ok := node.(*ast.FuncLit); ok {
				return // covered by the enclosing declaration's scan
			}
			a.checkBody(pass, body)
		})
	}
	return nil
}

// collect gathers every atomic.Pointer/atomic.Value struct field and package
// var in the module, once per loaded module.
func (a *AtomicPub) collect(mod *Module) {
	if a.mod == mod {
		return
	}
	a.mod = mod
	a.fields = map[types.Object]bool{}
	a.names = map[string]bool{}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			atomicName, ok := importName(f, "sync/atomic")
			if !ok {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.StructType:
					for _, field := range x.Fields.List {
						if !isAtomicType(field.Type, atomicName) {
							continue
						}
						for _, name := range field.Names {
							a.names[name.Name] = true
							if pkg.Info != nil {
								if obj := pkg.Info.Defs[name]; obj != nil {
									a.fields[obj] = true
								}
							}
						}
					}
				case *ast.ValueSpec:
					if !isAtomicType(x.Type, atomicName) {
						return true
					}
					for _, name := range x.Names {
						a.names[name.Name] = true
						if pkg.Info != nil {
							if obj := pkg.Info.Defs[name]; obj != nil {
								a.fields[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isAtomicType matches the declared type shapes atomic.Value,
// atomic.Pointer[T], and *atomic.X.
func isAtomicType(t ast.Expr, atomicName string) bool {
	switch x := t.(type) {
	case *ast.StarExpr:
		return isAtomicType(x.X, atomicName)
	case *ast.IndexExpr: // atomic.Pointer[T]
		return isAtomicType(x.X, atomicName)
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == atomicName
	}
	return false
}

// isAtomicField reports whether the identifier (field selector or package
// var) denotes a collected atomic field. The identifier must resolve to an
// object: a selector the checker could not resolve at all has an
// unknown-typed receiver (typically a value that already flowed through the
// stubbed atomic API), and judging those by bare name would flag every
// method or field that happens to share one.
func (a *AtomicPub) isAtomicField(pass *Pass, id *ast.Ident) bool {
	if pass.Pkg.Info == nil {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	if a.fields[obj] {
		return true
	}
	// Generic instantiation can mint a distinct field object; fall back to
	// the declared-name set only when the object's type is unresolved
	// (which is what a stubbed atomic type looks like).
	if obj.Type() != nil && obj.Type() != types.Typ[types.Invalid] {
		return false
	}
	return a.names[id.Name]
}

// atomicFieldExpr reports whether e is an access to an atomic field: x.field
// or a bare package-var identifier. Returns the rendered field path.
func (a *AtomicPub) atomicFieldExpr(pass *Pass, e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if a.isAtomicField(pass, x.Sel) {
			return exprString(x), true
		}
	case *ast.Ident:
		if a.isAtomicField(pass, x) {
			return x.Name, true
		}
	}
	return "", false
}

// checkMixedAccess flags every use of an atomic field that is not the
// receiver of a sanctioned atomic method call.
func (a *AtomicPub) checkMixedAccess(pass *Pass, f *ast.File) {
	// First mark the sanctioned receiver positions...
	ok := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || !atomicMethods[sel.Sel.Name] {
			return true
		}
		if _, isAtomic := a.atomicFieldExpr(pass, sel.X); isAtomic {
			ok[unparen(sel.X)] = true
		}
		return true
	})
	// ...then every remaining atomic-field access is a plain access.
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.StructType, *ast.Field:
			return false // declarations, not accesses
		case *ast.SelectorExpr:
			if ok[x] {
				return false
			}
			if field, isAtomic := a.atomicFieldExpr(pass, x); isAtomic {
				pass.reportf(x.Pos(), "plain access to atomic field %s bypasses its happens-before edge; use %s.Load/Store", field, field)
				return false
			}
		}
		return true
	})
}

// checkBody runs the publication-alias scan over one function body and
// reports post-publication mutations.
func (a *AtomicPub) checkBody(pass *Pass, body *ast.BlockStmt) {
	tr := NewAliasTracker(pass.Pkg)
	WalkStmts(body, func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.ExprStmt:
			a.checkPublish(pass, tr, st.X, nil)
			a.checkMutatingBuiltins(pass, tr, st.X)
		case *ast.AssignStmt:
			a.assign(pass, tr, st.Lhs, st.Rhs)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, n := range vs.Names {
							lhs[i] = n
						}
						a.assign(pass, tr, lhs, vs.Values)
					}
				}
			}
		case *ast.IncDecStmt:
			if info := tr.Lookup(st.X); info != nil {
				a.reportMutation(pass, st.X.Pos(), info)
			}
		case *ast.RangeStmt:
			// `for i := range published` only reads; writes inside the loop
			// body are seen as their own statements.
		}
	})
}

// assign processes one (possibly parallel) assignment: mutation checks on
// path-writes, publication on Store results, alias propagation otherwise.
func (a *AtomicPub) assign(pass *Pass, tr *AliasTracker, lhs, rhs []ast.Expr) {
	for i, l := range lhs {
		var r ast.Expr
		if len(rhs) == len(lhs) {
			r = rhs[i]
		} else if len(rhs) == 1 {
			r = rhs[0]
		}
		// Direct assignment TO an atomic field is mixed access, reported by
		// checkMixedAccess; here we care about writes through aliases.
		if !isBareIdent(l) {
			if info := tr.Lookup(l); info != nil {
				a.reportMutation(pass, l.Pos(), info)
			}
			continue
		}
		// Publication via x := field.Load() / Swap result.
		if r != nil {
			if call, ok := unparen(r).(*ast.CallExpr); ok {
				if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Load" || sel.Sel.Name == "Swap") {
					if field, isAtomic := a.atomicFieldExpr(pass, sel.X); isAtomic {
						tr.Publish(tr.directObj(l), &PubInfo{Field: field, Pos: call.Pos()})
						continue
					}
				}
			}
		}
		tr.Assign(l, r)
	}
	// Store calls can also appear on the RHS of an assignment chain.
	for _, r := range rhs {
		a.checkPublish(pass, tr, r, nil)
	}
}

// checkPublish finds field.Store(v) / field.Swap(v) calls in e and publishes
// the stored value's base variable.
func (a *AtomicPub) checkPublish(pass *Pass, tr *AliasTracker, e ast.Expr, _ ast.Stmt) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap" && sel.Sel.Name != "CompareAndSwap") {
			return true
		}
		field, isAtomic := a.atomicFieldExpr(pass, sel.X)
		if !isAtomic || len(call.Args) == 0 {
			return true
		}
		// The published value is the last argument (new value for CAS).
		arg := call.Args[len(call.Args)-1]
		if obj := tr.baseObj(arg); obj != nil {
			tr.Publish(obj, &PubInfo{Field: field, Pos: call.Pos()})
		}
		return true
	})
}

// checkMutatingBuiltins flags copy/clear into a published value.
func (a *AtomicPub) checkMutatingBuiltins(pass *Pass, tr *AliasTracker, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "copy" && id.Name != "clear") || len(call.Args) == 0 {
			return true
		}
		if info := tr.Lookup(call.Args[0]); info != nil {
			a.reportMutation(pass, call.Pos(), info)
		}
		return true
	})
}

func (a *AtomicPub) reportMutation(pass *Pass, pos token.Pos, info *PubInfo) {
	at := pass.Fset.Position(info.Pos)
	pass.reportf(pos, "mutation of value published via %s (published at line %d); COW discipline: clone, mutate the clone, then Store", info.Field, at.Line)
}

func isBareIdent(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.Ident)
	return ok
}
