package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Intra-procedural reaching-writes support. The analyzers that enforce COW
// discipline need to answer one question about a function body: "at this
// write, does the written-through variable alias a value that was already
// published?" The tracker below maintains that alias set over a source-order
// scan of the body. Source order is an approximation of control flow — loops
// are scanned once and branches are merged optimistically — which is the
// right trade for an invariant checker: the sanctioned repo idioms publish
// and mutate in straight-line code, and a back-edge false negative is
// recoverable by the runtime race detector while a flow-join false positive
// would train people to sprinkle ignores.

// PubInfo describes one publication event: the atomic field (or value) the
// object was published through, and where.
type PubInfo struct {
	Field string    // rendered field expression, e.g. "p.arr"
	Pos   token.Pos // the Store/Load call that made the alias visible
}

// AliasTracker tracks which local objects alias published values inside one
// function body.
type AliasTracker struct {
	pkg       *Package
	published map[types.Object]*PubInfo
}

// NewAliasTracker returns an empty tracker for a body in pkg.
func NewAliasTracker(pkg *Package) *AliasTracker {
	return &AliasTracker{pkg: pkg, published: map[types.Object]*PubInfo{}}
}

// Publish records that obj now aliases a published value.
func (t *AliasTracker) Publish(obj types.Object, info *PubInfo) {
	if obj != nil {
		t.published[obj] = info
	}
}

// Lookup reports the publication info the base variable of e carries, or nil.
// The base variable is found by stripping the write path: parens, *p, x[i],
// x.f, &x — so `(*a)[n]`, `a.f.g`, and `&a` all resolve to `a`.
func (t *AliasTracker) Lookup(e ast.Expr) *PubInfo {
	obj := t.baseObj(e)
	if obj == nil {
		return nil
	}
	return t.published[obj]
}

// Assign updates the alias set for one assignment pair: lhs gains rhs's
// publication (alias propagation through `a = b`, `a = &b`, `a, b := ...`)
// or loses its own when rhs is unrelated (kill on wholesale reassignment).
// Writes through lhs (index/selector/star targets) are mutations, not
// rebindings, and leave the alias set alone — the caller reports those.
func (t *AliasTracker) Assign(lhs, rhs ast.Expr) {
	obj := t.directObj(lhs)
	if obj == nil {
		return // not a rebinding of a tracked variable
	}
	if rhs != nil {
		if info := t.Lookup(rhs); info != nil {
			t.published[obj] = info
			return
		}
	}
	delete(t.published, obj)
}

// directObj returns the object of a bare identifier target (possibly
// parenthesized); writes through a path return nil.
func (t *AliasTracker) directObj(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || t.pkg.Info == nil {
		return nil
	}
	if obj := t.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return t.pkg.Info.Uses[id]
}

// baseObj strips the access path off e and returns the base variable's
// object: parens, &x, *p, x[i], x.f, x[i:j].
func (t *AliasTracker) baseObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Stop at a qualified package identifier: pkg.V is not a path
			// through a local.
			if id, ok := x.X.(*ast.Ident); ok && t.pkg.Info != nil {
				if _, isPkg := t.pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.Ident:
			if t.pkg.Info == nil {
				return nil
			}
			if obj := t.pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return t.pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// WalkStmts visits every statement in body in source order, calling fn for
// each. Nested function literals are included: a goroutine or deferred
// closure mutating a published value is still a post-publication write.
func WalkStmts(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			fn(s)
		}
		return true
	})
}
