package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //powl:ignore comment.
type directive struct {
	pos    token.Position
	checks []string // check names the directive suppresses
	reason string   // justification text (mandatory)
	// endLine extends the suppressed range: same line as the directive,
	// the next line, or — when the directive sits in a declaration's doc
	// comment — the declaration's whole extent.
	startLine, endLine int
	file               string
	used               bool
}

const ignorePrefix = "//powl:ignore"

// collectDirectives parses every powl:ignore comment in the module,
// including test files (a directive in a test is still validated).
func collectDirectives(mod *Module) []*directive {
	var out []*directive
	for _, pkg := range mod.Packages {
		for _, files := range [2][]*ast.File{pkg.Files, pkg.TestFiles} {
			for _, f := range files {
				out = append(out, fileDirectives(mod.Fset, f)...)
			}
		}
	}
	return out
}

// fileDirectives extracts the directives of one file and computes each one's
// suppressed line range.
func fileDirectives(fset *token.FileSet, f *ast.File) []*directive {
	// Doc-comment directives cover the whole declaration they document.
	docScope := map[*ast.Comment][2]int{} // comment -> [startLine, endLine]
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		start := fset.Position(decl.Pos()).Line
		end := fset.Position(decl.End()).Line
		for _, c := range doc.List {
			docScope[c] = [2]int{start, end}
		}
	}

	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := &directive{pos: pos, file: pos.Filename}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						d.checks = append(d.checks, name)
					}
				}
				d.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			if scope, ok := docScope[c]; ok {
				d.startLine, d.endLine = scope[0], scope[1]
			} else {
				// Same line (trailing comment) or the next code line.
				d.startLine, d.endLine = pos.Line, pos.Line+1
			}
			out = append(out, d)
		}
	}
	return out
}

// applyDirectives filters findings through the directives and appends the
// directive-misuse findings (missing reason, unknown check). Every directive
// must name at least one known check and carry a non-empty reason.
func applyDirectives(fs []Finding, dirs []*directive, known []string) []Finding {
	knownSet := make(map[string]bool, len(known))
	for _, k := range known {
		knownSet[k] = true
	}
	var out []Finding
	for _, f := range fs {
		suppressed := false
		for _, d := range dirs {
			if d.file != f.Pos.Filename {
				continue
			}
			if f.Line < d.startLine || f.Line > d.endLine {
				continue
			}
			if !d.matches(f.Check) {
				continue
			}
			// A malformed directive suppresses nothing: the violation and the
			// bad directive both surface.
			if d.reason == "" || !allKnown(d.checks, knownSet) {
				continue
			}
			d.used = true
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		switch {
		case len(d.checks) == 0:
			out = append(out, directiveFinding(d, "ignore directive names no check: want //powl:ignore <check> <reason>"))
		case d.reason == "":
			out = append(out, directiveFinding(d, "ignore directive for "+strings.Join(d.checks, ",")+" has no reason: a suppression must say why the violation is sanctioned"))
		default:
			for _, c := range d.checks {
				if !knownSet[c] {
					out = append(out, directiveFinding(d, "ignore directive names unknown check "+c))
				}
			}
		}
	}
	return out
}

func (d *directive) matches(check string) bool {
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

func allKnown(checks []string, known map[string]bool) bool {
	for _, c := range checks {
		if !known[c] {
			return false
		}
	}
	return true
}

func directiveFinding(d *directive, msg string) Finding {
	return Finding{
		Check:   "powlignore",
		Pos:     d.pos,
		File:    d.pos.Filename,
		Line:    d.pos.Line,
		Col:     d.pos.Column,
		Message: msg,
	}
}
