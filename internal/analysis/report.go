package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line as file:line:col: [check] message —
// the format editors and CI log scanners pick up as a source location.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (empty array, not null, when
// clean) so CI consumers can iterate without a null guard.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
