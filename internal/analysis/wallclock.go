package analysis

import (
	"go/ast"
	"strings"
)

// WallClock flags time.Now and time.Since outside the packages where real
// time is architecturally sanctioned. Simulated mode reconstructs parallel
// elapsed time from replayed per-worker costs and stamps its journal on that
// reconstructed clock; a wall-clock read leaking into partitioning, rule
// evaluation order, checkpoint contents or simulated timestamps makes runs
// unreproducible. Real time is legitimate in:
//
//   - internal/obs — it owns the run clock (Run.Now) and the journal;
//   - internal/transport — dial/ack deadlines, heartbeats, backoff;
//   - cmd/* and examples/* — operator-facing wall-clock reporting.
//
// Everywhere else a time.Now is either a measured duration that feeds the
// cost model (annotate it: //powl:ignore wallclock <why>) or a bug.
type WallClock struct{}

// Name implements Analyzer.
func (*WallClock) Name() string { return "wallclock" }

// Doc implements Analyzer.
func (*WallClock) Doc() string {
	return "no time.Now/time.Since outside obs, transport, cmd and examples — Simulated mode runs on a reconstructed clock"
}

// wallclockAllowed are the import-path prefixes (relative to the module
// path) where real-time reads are sanctioned wholesale.
var wallclockAllowed = []string{
	"internal/obs",
	"internal/transport",
	"cmd/",
	"examples/",
}

// Run implements Analyzer.
func (a *WallClock) Run(pass *Pass) error {
	rel := pass.Pkg.Path
	if i := strings.Index(rel, "/"); i >= 0 {
		rel = rel[i+1:]
	} else {
		rel = "" // module root package
	}
	for _, prefix := range wallclockAllowed {
		if strings.HasSuffix(prefix, "/") {
			if strings.HasPrefix(rel, prefix) {
				return nil
			}
		} else if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return nil
		}
	}
	for _, f := range pass.Files {
		if FileIsTest(pass.Fset, f.Pos()) {
			continue // test harness timing is not run output
		}
		timeName, ok := importName(f, "time")
		if !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
				return true
			}
			if !pass.isPkgSelector(sel, timeName, sel.Sel.Name) {
				return true
			}
			pass.reportf(sel.Pos(),
				"wall-clock read (time.%s) outside the sanctioned packages: derive it from the run clock or annotate why real time is correct here",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
