package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is every package of one Go module, parsed and best-effort
// type-checked, ready for analysis.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from go.mod (e.g. "powl").
	Path string
	Fset *token.FileSet
	// Packages are sorted by import path for deterministic analysis order.
	Packages []*Package

	// cg memoizes the module-wide call graph (built on first use).
	cg *CallGraph
}

// Package is one directory's worth of parsed Go files.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files are the non-test syntax trees, sorted by file name.
	Files []*ast.File
	// TestFiles are the _test.go syntax trees (both in-package and external
	// test package files), sorted by file name.
	TestFiles []*ast.File
	// Types is the best-effort type-checked package (may be nil when the
	// directory holds only test files).
	Types *types.Package
	// Info holds whatever the tolerant type check resolved. Imports outside
	// the module are stubbed with empty packages, so stdlib-flavored
	// expressions are often unresolved; analyzers treat that as "unknown".
	Info *types.Info
}

// LoadModule walks the module rooted at or above dir, parses every package,
// and type-checks each with a module-internal importer. It never shells out
// and uses only the standard library, which is what lets owlvet run inside
// `go test` with no toolchain assumptions beyond the source tree itself.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk %s: %w", root, err)
	}
	sort.Strings(dirs)

	ld := &loader{mod: mod, byPath: map[string]*Package{}, stubs: map[string]*types.Package{}, checking: map[string]bool{}}
	for _, d := range dirs {
		pkg, err := ld.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Packages = append(mod.Packages, pkg)
			ld.byPath[pkg.Path] = pkg
		}
	}
	for _, pkg := range mod.Packages {
		ld.check(pkg)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].Path < mod.Packages[j].Path })
	return mod, nil
}

// findModule walks up from dir to the nearest go.mod and extracts the module
// path from its first `module` directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

type loader struct {
	mod    *Module
	byPath map[string]*Package
	// stubs caches the empty stand-in packages minted for imports outside
	// the module (stdlib and beyond): type checking proceeds around them and
	// every expression flowing through one simply stays unresolved.
	stubs map[string]*types.Package
	// checking guards against import cycles (illegal Go, but the loader must
	// not recurse forever on code it is supposed to diagnose).
	checking map[string]bool
}

// parseDir parses one directory into a Package, or nil when it holds no Go
// files.
func (ld *loader) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	rel, err := filepath.Rel(ld.mod.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := ld.mod.Path
	if rel != "." {
		importPath = ld.mod.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(ld.mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	return pkg, nil
}

// check type-checks pkg's non-test files with a tolerant configuration:
// every error is swallowed, imports inside the module resolve to the real
// (recursively checked) package, and everything else resolves to an empty
// stub. The resulting Info is partial by design — see Package.Info.
func (ld *loader) check(pkg *Package) {
	if pkg.Types != nil || len(pkg.Files) == 0 || ld.checking[pkg.Path] {
		return
	}
	ld.checking[pkg.Path] = true
	defer delete(ld.checking, pkg.Path)
	conf := types.Config{
		Error:            func(error) {}, // best-effort: keep going
		Importer:         (*moduleImporter)(ld),
		IgnoreFuncBodies: false,
	}
	info := &types.Info{
		Types:  map[ast.Expr]types.TypeAndValue{},
		Uses:   map[*ast.Ident]types.Object{},
		Defs:   map[*ast.Ident]types.Object{},
		Scopes: map[ast.Node]*types.Scope{},
	}
	// Check never hard-fails with a non-nil Error handler short of a
	// misconfiguration; the partially-filled package is still useful.
	tpkg, _ := conf.Check(pkg.Path, ld.mod.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}

// moduleImporter resolves module-internal imports to real packages and
// everything else to cached empty stubs.
type moduleImporter loader

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(m)
	if pkg, ok := ld.byPath[path]; ok {
		ld.check(pkg)
		if pkg.Types != nil {
			return pkg.Types, nil
		}
	}
	if stub, ok := ld.stubs[path]; ok {
		return stub, nil
	}
	stub := types.NewPackage(path, defaultImportName(path))
	stub.MarkComplete()
	ld.stubs[path] = stub
	return stub, nil
}

// FileIsTest reports whether the file position belongs to a _test.go file.
func FileIsTest(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// RelPaths rewrites every finding's file to be relative to root, for stable
// report output independent of where the tool ran.
func RelPaths(root string, fs []Finding) {
	for i := range fs {
		if rel, err := filepath.Rel(root, fs[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].File = filepath.ToSlash(rel)
		}
	}
}
