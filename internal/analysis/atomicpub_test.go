package analysis

import "testing"

// The atomicpub corpus: each case is the smallest module exhibiting one
// publication shape the analyzer must judge. The struct under test mirrors
// the rdf posting-list idiom (atomic.Pointer[[]T] + length).

func TestAtomicPubFlagsStoreThenMutate(t *testing.T) {
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) grow(n, x int) {
	na := make([]int, n*2)
	p.arr.Store(&na)
	na[n] = x
}
`,
	})
	wantFindings(t, fs, "p.go:12:2: [atomicpub] mutation of value published via p.arr")
}

func TestAtomicPubFlagsLoadThenMutate(t *testing.T) {
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) poke(n, x int) {
	a := p.arr.Load()
	(*a)[n] = x
}
`,
	})
	wantFindings(t, fs, "p.go:11:2: [atomicpub] mutation of value published via p.arr")
}

func TestAtomicPubFlagsAliasedMutation(t *testing.T) {
	// Publication reaches the write through an alias chain:
	// Store(&na) ... a = &na ... (*a)[i] = x.
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) append1(n, x int) {
	a := p.arr.Load()
	if a == nil {
		na := make([]int, 8)
		p.arr.Store(&na)
		a = &na
	}
	(*a)[n] = x
}
`,
	})
	wantFindings(t, fs,
		"p.go:16:2: [atomicpub] mutation of value published via p.arr")
}

func TestAtomicPubFlagsCopyIntoPublished(t *testing.T) {
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) refill(src []int) {
	a := p.arr.Load()
	copy(*a, src)
}
`,
	})
	wantFindings(t, fs, "p.go:11:2: [atomicpub] mutation of value published via p.arr")
}

func TestAtomicPubAllowsCOWPublish(t *testing.T) {
	// The sanctioned discipline: clone, mutate the clone, then Store. No
	// write after publication.
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) replace(n, x int) {
	na := make([]int, n+1)
	if old := p.arr.Load(); old != nil {
		copy(na, *old)
	}
	na[n] = x
	p.arr.Store(&na)
}
`,
	})
	wantFindings(t, fs)
}

func TestAtomicPubKillsAliasOnReassignment(t *testing.T) {
	// Rebinding the alias to a fresh value ends the published association;
	// writes through the fresh value are COW business as usual.
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) rebuild(n, x int) {
	na := make([]int, 8)
	p.arr.Store(&na)
	na = make([]int, 16)
	na[n] = x
	p.arr.Store(&na)
}
`,
	})
	wantFindings(t, fs)
}

func TestAtomicPubFlagsMixedPlainAccess(t *testing.T) {
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) first() *[]int {
	return p.arr.Load()
}

func (p *posting) raw() any {
	return p.arr
}
`,
	})
	wantFindings(t, fs, "p.go:14:9: [atomicpub] plain access to atomic field p.arr")
}

func TestAtomicPubAllowsCounterMethods(t *testing.T) {
	// Add/Load on numeric atomics is the sanctioned counter idiom, not
	// mixed access.
	fs := runOne(t, &AtomicPub{}, map[string]string{
		"internal/core/c.go": `package core

import "sync/atomic"

type counters struct {
	admitted atomic.Int64
}

func (c *counters) bump() int64 {
	c.admitted.Add(1)
	return c.admitted.Load()
}
`,
	})
	wantFindings(t, fs)
}

func TestAtomicPubSuppressedByDirective(t *testing.T) {
	// The element-below-published-length idiom in rdf carries a reasoned
	// ignore; the directive must suppress exactly that finding.
	fs := runAll(t, map[string]string{
		"internal/core/p.go": `package core

import "sync/atomic"

type posting struct {
	arr atomic.Pointer[[]int]
}

func (p *posting) append1(n, x int) {
	na := make([]int, n*2)
	p.arr.Store(&na)
	//powl:ignore atomicpub element write below the published length; the length store is the commit point
	na[n] = x
}
`,
	})
	wantFindings(t, fs)
}
