package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfHostZeroFindings is the suite's self-hosting gate: the repo itself
// must be clean under every analyzer. Every sanctioned real-time read carries
// a //powl:ignore wallclock <reason> annotation; everything else was fixed.
// A new violation anywhere in the module fails this test with its file:line.
func TestSelfHostZeroFindings(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.Path != "powl" {
		t.Fatalf("loaded module %q, want powl (test must run inside the repo)", mod.Path)
	}
	fs, err := NewSuite().Run(mod)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	RelPaths(mod.Root, fs)
	if len(fs) != 0 {
		t.Errorf("owlvet must report zero findings over the repo, got %d:\n%s",
			len(fs), findingLines(fs))
	}
}

// TestSeededViolationCaughtByOwlvet plants a deliberate violation in a
// scratch module and runs the real cmd/owlvet binary over it: the tool must
// exit non-zero and name the exact file:line. This exercises the whole
// pipeline end to end — loader, analyzer, reporter, exit status — the same
// way the CI lint job consumes it.
func TestSeededViolationCaughtByOwlvet(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}

	dir := t.TempDir()
	writeFile := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module seeded\n\ngo 1.22\n")
	writeFile("internal/core/bad.go", `package core

import "time"

func Stamp() time.Time {
	return time.Now()
}
`)

	cmd := exec.Command("go", "run", "./cmd/owlvet", dir)
	cmd.Dir = mod.Root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("owlvet exited 0 on a seeded violation; output:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running owlvet: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("owlvet exit code = %d, want 1 (findings); output:\n%s", code, out)
	}
	want := "internal/core/bad.go:6:9: [wallclock]"
	if !strings.Contains(string(out), want) {
		t.Errorf("owlvet output missing %q:\n%s", want, out)
	}
}
