package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockedSend flags channel sends and WaitGroup/barrier Wait calls made while
// a sync.Mutex/RWMutex acquired in the same function is still held. A send
// can block until a receiver runs; if every receiver needs that same lock,
// the run deadlocks — the barrier-deadlock shape from the cluster/recover
// work. The check is a source-order heuristic per function body: a
// mu.Lock()/mu.RLock() (or successful TryLock) opens a held region that a
// matching Unlock closes; `defer mu.Unlock()` holds to the end of the
// function. sync.Cond receivers are exempt — Cond.Wait must be called with
// the lock held, that is its contract. Nested function literals are scanned
// as their own scopes: they run on their own goroutine's stack at their own
// time, so the enclosing function's lock state does not transfer.
type LockedSend struct{}

// Name implements Analyzer.
func (*LockedSend) Name() string { return "lockedsend" }

// Doc implements Analyzer.
func (*LockedSend) Doc() string {
	return "no channel send or Wait() while holding a mutex acquired in the same function"
}

// Run implements Analyzer.
func (a *LockedSend) Run(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			scanLockedSends(pass, body)
		})
	}
	return nil
}

// lockEvent is one lock-state-relevant occurrence inside a function body,
// ordered by source position.
type lockEvent struct {
	pos  token.Pos
	kind string // "lock", "unlock", "deferUnlock", "send", "wait"
	recv string // lock identity (mu, c.mu, …) or offending expression
}

// scanLockedSends performs the source-order scan of one function body.
func scanLockedSends(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // separate scope, scanned on its own
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: x.Pos(), kind: "send", recv: exprString(x.Chan)})
		case *ast.DeferStmt:
			if recv, kind := lockCallKind(x.Call); kind == "unlock" {
				events = append(events, lockEvent{pos: x.Pos(), kind: "deferUnlock", recv: recv})
				return false
			}
			return true
		case *ast.CallExpr:
			recv, kind := lockCallKind(x)
			switch kind {
			case "lock", "unlock":
				events = append(events, lockEvent{pos: x.Pos(), kind: kind, recv: recv})
			case "wait":
				events = append(events, lockEvent{pos: x.Pos(), kind: "wait", recv: recv})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}     // lock identity -> currently held
	deferred := map[string]bool{} // lock identity -> held to function end
	for _, e := range events {
		switch e.kind {
		case "lock":
			held[e.recv] = true
		case "unlock":
			if !deferred[e.recv] {
				delete(held, e.recv)
			}
		case "deferUnlock":
			deferred[e.recv] = true
		case "send", "wait":
			if len(held) == 0 {
				continue
			}
			locks := heldNames(held)
			verb := "channel send on " + e.recv
			if e.kind == "wait" {
				verb = e.recv + ".Wait()"
			}
			pass.reportf(e.pos,
				"%s while holding %s (acquired in this function): a blocked counterpart needing the lock deadlocks the run — release before blocking",
				verb, strings.Join(locks, ", "))
		}
	}
}

// lockCallKind classifies a call as a lock acquire, release, or a blocking
// Wait, returning the receiver's identity string. Cond receivers (any path
// segment containing "cond") are exempt from the wait classification:
// Cond.Wait is specified to be called with the lock held.
func lockCallKind(call *ast.CallExpr) (recv, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	r := exprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		// Only treat receivers that look like mutexes: plain identifiers or
		// field chains — a method call result is something else.
		if strings.Contains(r, "()") {
			return "", ""
		}
		return r, "lock"
	case "Unlock", "RUnlock":
		if strings.Contains(r, "()") {
			return "", ""
		}
		return r, "unlock"
	case "Wait":
		if strings.Contains(strings.ToLower(r), "cond") {
			return "", ""
		}
		return r, "wait"
	}
	return "", ""
}

func heldNames(held map[string]bool) []string {
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
