// Package rules provides the datalog rule model used by the OWL-Horst
// reasoners: atoms over variables and interned constants, a Jena-style text
// rule parser, single-join classification, and the rule dependency graph
// used by the rule-partitioning strategy (paper §III-B).
package rules

import (
	"fmt"
	"sort"
	"strings"

	"powl/internal/rdf"
)

// TermSpec is one position of an atom: either a named variable or an
// interned constant.
type TermSpec struct {
	IsVar bool
	ID    rdf.ID // valid when !IsVar
	Var   string // valid when IsVar
}

// Var returns a variable TermSpec.
func Var(name string) TermSpec { return TermSpec{IsVar: true, Var: name} }

// Const returns a constant TermSpec.
func Const(id rdf.ID) TermSpec { return TermSpec{ID: id} }

func (t TermSpec) String() string {
	if t.IsVar {
		return "?" + t.Var
	}
	return fmt.Sprintf("#%d", t.ID)
}

// Format renders the term using dict for constants.
func (t TermSpec) Format(dict *rdf.Dict) string {
	if t.IsVar {
		return "?" + t.Var
	}
	return dict.Term(t.ID).String()
}

// Atom is a triple pattern (s, p, o) over TermSpecs.
type Atom struct {
	S, P, O TermSpec
}

func (a Atom) String() string {
	return "(" + a.S.String() + " " + a.P.String() + " " + a.O.String() + ")"
}

// Format renders the atom using dict for constants.
func (a Atom) Format(dict *rdf.Dict) string {
	return "(" + a.S.Format(dict) + " " + a.P.Format(dict) + " " + a.O.Format(dict) + ")"
}

// Vars returns the variable names of the atom in position order.
func (a Atom) Vars() []string {
	var vs []string
	for _, t := range []TermSpec{a.S, a.P, a.O} {
		if t.IsVar {
			vs = append(vs, t.Var)
		}
	}
	return vs
}

// Rule is a datalog rule: Head ← Body. OWL-Horst rules have a single head
// atom; the slice form also accommodates authored multi-head rules, which
// the engines treat as one rule per head atom.
type Rule struct {
	Name string
	Body []Atom
	Head []Atom
}

func (r Rule) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(r.Name)
	b.WriteString(": ")
	for i, a := range r.Body {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	for i, a := range r.Head {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Format renders the rule using dict for constants.
func (r Rule) Format(dict *rdf.Dict) string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(r.Name)
	b.WriteString(": ")
	for i, a := range r.Body {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Format(dict))
	}
	b.WriteString(" -> ")
	for i, a := range r.Head {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Format(dict))
	}
	b.WriteByte(']')
	return b.String()
}

// BodyVars returns the sorted set of variable names occurring in the body.
func (r Rule) BodyVars() []string {
	set := map[string]struct{}{}
	for _, a := range r.Body {
		for _, v := range a.Vars() {
			set[v] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsSafe reports whether every head variable occurs in the body, the datalog
// safety condition required for bottom-up evaluation.
func (r Rule) IsSafe() bool {
	body := map[string]struct{}{}
	for _, v := range r.BodyVars() {
		body[v] = struct{}{}
	}
	for _, a := range r.Head {
		for _, v := range a.Vars() {
			if _, ok := body[v]; !ok {
				return false
			}
		}
	}
	return true
}

// IsSingleJoin reports whether the rule is a single-join rule in the paper's
// sense (§II): at most two body atoms, and if there are two they share at
// least one variable. The data-partitioning correctness argument (ownership
// of the shared join resource) applies exactly to this class.
func (r Rule) IsSingleJoin() bool {
	switch len(r.Body) {
	case 0, 1:
		return true
	case 2:
		v0 := r.Body[0].Vars()
		v1 := map[string]struct{}{}
		for _, v := range r.Body[1].Vars() {
			v1[v] = struct{}{}
		}
		for _, v := range v0 {
			if _, ok := v1[v]; ok {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// unifies reports whether atoms a and b can match the same triple: each
// position unifies when either side is a variable or the constants agree.
func unifies(a, b Atom) bool {
	pairs := [3][2]TermSpec{{a.S, b.S}, {a.P, b.P}, {a.O, b.O}}
	for _, p := range pairs {
		if !p[0].IsVar && !p[1].IsVar && p[0].ID != p[1].ID {
			return false
		}
	}
	return true
}

// MatchesTriple reports whether the atom's constant positions agree with t.
func (a Atom) MatchesTriple(t rdf.Triple) bool {
	if !a.S.IsVar && a.S.ID != t.S {
		return false
	}
	if !a.P.IsVar && a.P.ID != t.P {
		return false
	}
	if !a.O.IsVar && a.O.ID != t.O {
		return false
	}
	return true
}

// DepEdge is a directed, weighted edge of the rule dependency graph: a triple
// produced by rule From may feed a body atom of rule To.
type DepEdge struct {
	From, To int
	Weight   int
}

// DependencyGraph computes the rule dependency graph of Algorithm 2: a vertex
// per rule and an edge (r1 → r2) whenever some head atom of r1 unifies with
// some body atom of r2. Edge weight counts the number of such head/body atom
// pairs; callers with predicate statistics can reweigh via ScaleDepWeights.
func DependencyGraph(rs []Rule) []DepEdge {
	var edges []DepEdge
	for i, r1 := range rs {
		for j, r2 := range rs {
			w := 0
			for _, h := range r1.Head {
				for _, b := range r2.Body {
					if unifies(h, b) {
						w++
					}
				}
			}
			if w > 0 {
				edges = append(edges, DepEdge{From: i, To: j, Weight: w})
			}
		}
	}
	return edges
}

// ScaleDepWeights multiplies each dependency edge's weight by the estimated
// productivity of its source rule, supplied as produced[i] = expected number
// of triples rule i derives (e.g. from predicate frequency statistics of the
// data set). Edges from more productive rules then cost more to cut, as the
// paper suggests for improving rule partitions.
func ScaleDepWeights(edges []DepEdge, produced []int) []DepEdge {
	out := make([]DepEdge, len(edges))
	for i, e := range edges {
		w := e.Weight
		if e.From < len(produced) && produced[e.From] > 0 {
			w *= produced[e.From]
		}
		out[i] = DepEdge{From: e.From, To: e.To, Weight: w}
	}
	return out
}
