package rules

import (
	"strings"
	"testing"

	"powl/internal/rdf"
)

func mustParseOne(t *testing.T, src string, dict *rdf.Dict) Rule {
	t.Helper()
	rs, err := Parse(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("parsed %d rules, want 1", len(rs))
	}
	return rs[0]
}

func TestParseTransitiveRule(t *testing.T) {
	dict := rdf.NewDict()
	src := `
@prefix ex: <http://example.org/> .
[trans: (?a ex:brotherOf ?b) (?b ex:brotherOf ?c) -> (?a ex:brotherOf ?c)]
`
	r := mustParseOne(t, src, dict)
	if r.Name != "trans" {
		t.Errorf("Name = %q", r.Name)
	}
	if len(r.Body) != 2 || len(r.Head) != 1 {
		t.Fatalf("body/head sizes = %d/%d", len(r.Body), len(r.Head))
	}
	p, ok := dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://example.org/brotherOf"})
	if !ok {
		t.Fatal("predicate IRI not interned")
	}
	if r.Body[0].P.IsVar || r.Body[0].P.ID != p {
		t.Errorf("body predicate = %v", r.Body[0].P)
	}
	if !r.Body[0].S.IsVar || r.Body[0].S.Var != "a" {
		t.Errorf("body subject = %v", r.Body[0].S)
	}
}

func TestParseFullIRIAndLiteral(t *testing.T) {
	dict := rdf.NewDict()
	src := `[r: (?x <http://x/p> "lit"^^<http://x/dt>) -> (?x <http://x/q> "plain")]`
	r := mustParseOne(t, src, dict)
	if r.Body[0].O.IsVar {
		t.Fatal("literal parsed as variable")
	}
	term := dict.Term(r.Body[0].O.ID)
	if term.Kind != rdf.Literal || term.Value != `"lit"^^<http://x/dt>` {
		t.Fatalf("literal term = %v", term)
	}
}

func TestParseMultipleRulesAndComments(t *testing.T) {
	dict := rdf.NewDict()
	src := `
@prefix ex: <http://example.org/> .
# first rule
[r1: (?x ex:p ?y) -> (?y ex:q ?x)]
# second
[r2: (?x ex:q ?y) -> (?x ex:p ?y)]
`
	rs, err := Parse(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "r1" || rs[1].Name != "r2" {
		t.Fatalf("rules = %v", rs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`[r (?x <http://x/p> ?y) -> (?x <http://x/p> ?y)]`, "name"},
		{`[r: (?x <http://x/p> ?y)]`, "->"},
		{`[r: (?x <http://x/p> ?y) -> ]`, "empty head"},
		{`[r: (?x ex:p ?y) -> (?x ex:p ?y)]`, "unknown prefix"},
		{`[r: (?x <http://x/p> ?y) -> (?x <http://x/p> ?z)]`, "unsafe"},
		{`[r: (?x <http://x/p ?y) -> (?x <http://x/p> ?y)]`, "line 1"},
		{`[r: (?x <http://x/p> ?y) -> (?x <http://x/p> ?y)`, "unterminated"},
		{`@prefix ex <http://x/> .`, "expected"},
		{`nonsense`, "expected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, rdf.NewDict())
		if err == nil {
			t.Errorf("source %q parsed without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("garbage", rdf.NewDict())
}

func TestIsSafe(t *testing.T) {
	dict := rdf.NewDict()
	p := Const(dict.InternIRI("http://x/p"))
	safe := Rule{Body: []Atom{{S: Var("x"), P: p, O: Var("y")}}, Head: []Atom{{S: Var("y"), P: p, O: Var("x")}}}
	if !safe.IsSafe() {
		t.Error("safe rule reported unsafe")
	}
	unsafe := Rule{Body: []Atom{{S: Var("x"), P: p, O: Var("y")}}, Head: []Atom{{S: Var("z"), P: p, O: Var("x")}}}
	if unsafe.IsSafe() {
		t.Error("unsafe rule reported safe")
	}
}

func TestIsSingleJoin(t *testing.T) {
	dict := rdf.NewDict()
	p := Const(dict.InternIRI("http://x/p"))
	x, y, z, w := Var("x"), Var("y"), Var("z"), Var("w")

	cases := []struct {
		name string
		r    Rule
		want bool
	}{
		{"no body", Rule{Head: []Atom{{S: x, P: p, O: y}}, Body: nil}, true},
		{"one atom", Rule{Body: []Atom{{S: x, P: p, O: y}}}, true},
		{"shared var", Rule{Body: []Atom{{S: x, P: p, O: y}, {S: y, P: p, O: z}}}, true},
		{"disjoint", Rule{Body: []Atom{{S: x, P: p, O: y}, {S: z, P: p, O: w}}}, false},
		{"three atoms", Rule{Body: []Atom{{S: x, P: p, O: y}, {S: y, P: p, O: z}, {S: z, P: p, O: w}}}, false},
	}
	for _, c := range cases {
		if got := c.r.IsSingleJoin(); got != c.want {
			t.Errorf("%s: IsSingleJoin = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMatchesTriple(t *testing.T) {
	dict := rdf.NewDict()
	p := dict.InternIRI("http://x/p")
	a := Atom{S: Var("x"), P: Const(p), O: Var("y")}
	if !a.MatchesTriple(rdf.Triple{S: 5, P: p, O: 6}) {
		t.Error("atom should match triple with its predicate")
	}
	if a.MatchesTriple(rdf.Triple{S: 5, P: p + 1, O: 6}) {
		t.Error("atom matched wrong predicate")
	}
	ground := Atom{S: Const(5), P: Const(p), O: Const(6)}
	if !ground.MatchesTriple(rdf.Triple{S: 5, P: p, O: 6}) || ground.MatchesTriple(rdf.Triple{S: 5, P: p, O: 7}) {
		t.Error("ground atom matching wrong")
	}
}

func TestDependencyGraph(t *testing.T) {
	dict := rdf.NewDict()
	src := `
@prefix ex: <http://x/> .
[r1: (?x ex:a ?y) -> (?x ex:b ?y)]
[r2: (?x ex:b ?y) -> (?x ex:c ?y)]
[r3: (?x ex:d ?y) -> (?x ex:e ?y)]
`
	rs, err := Parse(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	edges := DependencyGraph(rs)
	has := func(from, to int) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(0, 1) {
		t.Error("missing edge r1 -> r2 (b feeds b)")
	}
	if has(1, 0) {
		t.Error("spurious edge r2 -> r1")
	}
	if has(0, 2) || has(2, 0) || has(1, 2) {
		t.Error("r3 must be isolated")
	}
}

func TestDependencyGraphVariablePredicate(t *testing.T) {
	dict := rdf.NewDict()
	src := `
@prefix ex: <http://x/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
[same: (?x owl:sameAs ?y) (?x ?p ?z) -> (?y ?p ?z)]
[use: (?x ex:b ?y) -> (?x ex:c ?y)]
`
	rs, err := Parse(src, dict)
	if err != nil {
		t.Fatal(err)
	}
	edges := DependencyGraph(rs)
	// The variable-predicate head of `same` can feed anything, including
	// itself and `use`.
	var sawSelf, sawUse bool
	for _, e := range edges {
		if e.From == 0 && e.To == 0 {
			sawSelf = true
		}
		if e.From == 0 && e.To == 1 {
			sawUse = true
		}
	}
	if !sawSelf || !sawUse {
		t.Errorf("variable-predicate head edges missing: self=%v use=%v", sawSelf, sawUse)
	}
}

func TestScaleDepWeights(t *testing.T) {
	edges := []DepEdge{{From: 0, To: 1, Weight: 2}, {From: 1, To: 0, Weight: 3}}
	scaled := ScaleDepWeights(edges, []int{10, 0})
	if scaled[0].Weight != 20 {
		t.Errorf("edge 0 weight = %d, want 20", scaled[0].Weight)
	}
	if scaled[1].Weight != 3 {
		t.Errorf("edge with zero-production source must keep weight, got %d", scaled[1].Weight)
	}
}

func TestRuleStringAndFormat(t *testing.T) {
	dict := rdf.NewDict()
	r := mustParseOne(t, `[r: (?x <http://x/p> ?y) -> (?y <http://x/p> ?x)]`, dict)
	s := r.String()
	if !strings.Contains(s, "r:") || !strings.Contains(s, "->") {
		t.Errorf("String = %q", s)
	}
	f := r.Format(dict)
	if !strings.Contains(f, "<http://x/p>") || !strings.Contains(f, "?x") {
		t.Errorf("Format = %q", f)
	}
}

func TestBodyVarsSortedUnique(t *testing.T) {
	dict := rdf.NewDict()
	r := mustParseOne(t, `[r: (?z <http://x/p> ?a) (?a <http://x/p> ?z) -> (?z <http://x/p> ?z)]`, dict)
	vs := r.BodyVars()
	if len(vs) != 2 || vs[0] != "a" || vs[1] != "z" {
		t.Fatalf("BodyVars = %v", vs)
	}
}
