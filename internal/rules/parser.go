package rules

import (
	"fmt"
	"strings"

	"powl/internal/rdf"
)

// Parse reads a rule text in the Jena-style syntax and interns constants
// into dict. The syntax is:
//
//	# comment
//	@prefix ex: <http://example.org/> .
//	[ruleName: (?a ex:brotherOf ?b) (?b ex:brotherOf ?c) -> (?a ex:brotherOf ?c)]
//
// Terms inside atoms are variables (?x), full IRIs (<...>), prefixed names
// (pfx:local), or literals ("..." with optional @lang / ^^<dt> suffix).
func Parse(src string, dict *rdf.Dict) ([]Rule, error) {
	p := &parser{src: src, dict: dict, prefixes: map[string]string{}}
	var out []Rule
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return out, nil
		}
		switch {
		case p.peek('@'):
			if err := p.prefixDecl(); err != nil {
				return nil, err
			}
		case p.peek('['):
			r, err := p.rule()
			if err != nil {
				return nil, err
			}
			if !r.IsSafe() {
				return nil, fmt.Errorf("rules: line %d: rule %q is unsafe (head variable not bound in body)", p.line(), r.Name)
			}
			out = append(out, r)
		default:
			return nil, fmt.Errorf("rules: line %d: expected '@prefix' or '[', got %q", p.line(), p.src[p.i])
		}
	}
}

// MustParse is Parse but panics on error; for package-internal rule texts
// that are compile-time constants.
func MustParse(src string, dict *rdf.Dict) []Rule {
	rs, err := Parse(src, dict)
	if err != nil {
		panic(err)
	}
	return rs
}

type parser struct {
	src      string
	i        int
	dict     *rdf.Dict
	prefixes map[string]string
}

func (p *parser) line() int { return 1 + strings.Count(p.src[:p.i], "\n") }

func (p *parser) skipWS() {
	for p.i < len(p.src) {
		c := p.src[p.i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',':
			p.i++
		case c == '#':
			for p.i < len(p.src) && p.src[p.i] != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func (p *parser) peek(c byte) bool { return p.i < len(p.src) && p.src[p.i] == c }

func (p *parser) expect(c byte) error {
	p.skipWS()
	if !p.peek(c) {
		return fmt.Errorf("rules: line %d: expected %q", p.line(), string(c))
	}
	p.i++
	return nil
}

func (p *parser) prefixDecl() error {
	if !strings.HasPrefix(p.src[p.i:], "@prefix") {
		return fmt.Errorf("rules: line %d: expected '@prefix'", p.line())
	}
	p.i += len("@prefix")
	p.skipWS()
	start := p.i
	for p.i < len(p.src) && p.src[p.i] != ':' {
		p.i++
	}
	if p.i >= len(p.src) {
		return fmt.Errorf("rules: line %d: malformed prefix declaration", p.line())
	}
	name := strings.TrimSpace(p.src[start:p.i])
	p.i++ // ':'
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	if err := p.expect('.'); err != nil {
		return err
	}
	p.prefixes[name] = iri
	return nil
}

func (p *parser) iriRef() (string, error) {
	if !p.peek('<') {
		return "", fmt.Errorf("rules: line %d: expected '<'", p.line())
	}
	p.i++
	end := strings.IndexByte(p.src[p.i:], '>')
	if end < 0 {
		return "", fmt.Errorf("rules: line %d: unterminated IRI", p.line())
	}
	iri := p.src[p.i : p.i+end]
	p.i += end + 1
	return iri, nil
}

func (p *parser) rule() (Rule, error) {
	p.i++ // '['
	p.skipWS()
	start := p.i
	for p.i < len(p.src) && p.src[p.i] != ':' {
		if p.src[p.i] == '(' || p.src[p.i] == ']' {
			return Rule{}, fmt.Errorf("rules: line %d: rule must start with 'name:'", p.line())
		}
		p.i++
	}
	if p.i >= len(p.src) {
		return Rule{}, fmt.Errorf("rules: line %d: unterminated rule", p.line())
	}
	name := strings.TrimSpace(p.src[start:p.i])
	if name == "" {
		return Rule{}, fmt.Errorf("rules: line %d: empty rule name", p.line())
	}
	p.i++ // ':'

	var body, head []Atom
	cur := &body
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return Rule{}, fmt.Errorf("rules: line %d: unterminated rule %q", p.line(), name)
		}
		switch {
		case p.peek(']'):
			p.i++
			if cur == &body {
				return Rule{}, fmt.Errorf("rules: line %d: rule %q has no '->'", p.line(), name)
			}
			if len(head) == 0 {
				return Rule{}, fmt.Errorf("rules: line %d: rule %q has empty head", p.line(), name)
			}
			return Rule{Name: name, Body: body, Head: head}, nil
		case p.peek('('):
			a, err := p.atom()
			if err != nil {
				return Rule{}, err
			}
			*cur = append(*cur, a)
		case strings.HasPrefix(p.src[p.i:], "->"):
			if cur == &head {
				return Rule{}, fmt.Errorf("rules: line %d: duplicate '->' in rule %q", p.line(), name)
			}
			p.i += 2
			cur = &head
		default:
			return Rule{}, fmt.Errorf("rules: line %d: unexpected %q in rule %q", p.line(), p.src[p.i], name)
		}
	}
}

func (p *parser) atom() (Atom, error) {
	p.i++ // '('
	s, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	o, err := p.term()
	if err != nil {
		return Atom{}, err
	}
	if err := p.expect(')'); err != nil {
		return Atom{}, err
	}
	return Atom{S: s, P: pr, O: o}, nil
}

func (p *parser) term() (TermSpec, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return TermSpec{}, fmt.Errorf("rules: line %d: unexpected end of input in atom", p.line())
	}
	switch c := p.src[p.i]; {
	case c == '?':
		p.i++
		start := p.i
		for p.i < len(p.src) && isNameChar(p.src[p.i]) {
			p.i++
		}
		if p.i == start {
			return TermSpec{}, fmt.Errorf("rules: line %d: empty variable name", p.line())
		}
		return Var(p.src[start:p.i]), nil
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return TermSpec{}, err
		}
		return Const(p.dict.InternIRI(iri)), nil
	case c == '"':
		lex, err := p.literalLex()
		if err != nil {
			return TermSpec{}, err
		}
		return Const(p.dict.InternLiteral(lex)), nil
	case c == '_' && p.i+1 < len(p.src) && p.src[p.i+1] == ':':
		// Blank node constant (restriction nodes from Turtle ontologies
		// survive rule serialization as _:labels).
		p.i += 2
		start := p.i
		for p.i < len(p.src) && isNameChar(p.src[p.i]) {
			p.i++
		}
		if p.i == start {
			return TermSpec{}, fmt.Errorf("rules: line %d: empty blank node label", p.line())
		}
		return Const(p.dict.InternBlank(p.src[start:p.i])), nil
	default:
		start := p.i
		for p.i < len(p.src) && (isNameChar(p.src[p.i]) || p.src[p.i] == ':') {
			p.i++
		}
		word := p.src[start:p.i]
		colon := strings.IndexByte(word, ':')
		if colon < 0 {
			return TermSpec{}, fmt.Errorf("rules: line %d: expected prefixed name, got %q", p.line(), word)
		}
		ns, ok := p.prefixes[word[:colon]]
		if !ok {
			return TermSpec{}, fmt.Errorf("rules: line %d: unknown prefix %q", p.line(), word[:colon])
		}
		return Const(p.dict.InternIRI(ns + word[colon+1:])), nil
	}
}

func (p *parser) literalLex() (string, error) {
	start := p.i
	p.i++
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case '\\':
			p.i += 2
			if p.i > len(p.src) {
				p.i = len(p.src)
				return "", fmt.Errorf("rules: line %d: dangling escape in literal", p.line())
			}
		case '"':
			p.i++
			if p.i+1 < len(p.src) && p.src[p.i] == '^' && p.src[p.i+1] == '^' {
				p.i += 2
				if _, err := p.iriRef(); err != nil {
					return "", err
				}
			} else if p.i < len(p.src) && p.src[p.i] == '@' {
				for p.i < len(p.src) && (isNameChar(p.src[p.i]) || p.src[p.i] == '@' || p.src[p.i] == '-') {
					p.i++
				}
			}
			return p.src[start:p.i], nil
		default:
			p.i++
		}
	}
	return "", fmt.Errorf("rules: line %d: unterminated literal", p.line())
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '/' || c == '#'
}
