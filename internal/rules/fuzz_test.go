package rules

import (
	"testing"

	"powl/internal/rdf"
)

// FuzzParse checks the rule parser never panics; accepted rules must be
// safe, printable, and have non-empty bodies or heads as the grammar
// guarantees.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"@prefix t: <http://t/> .\n[r: (?x t:p ?y) -> (?y t:p ?x)]",
		"[r: (?x <http://p> ?y) (?y <http://p> ?z) -> (?x <http://p> ?z)]",
		`[r: (?x <http://p> "lit") -> (?x <http://q> "lit")]`,
		"# comment\n[a: (?x <http://p> ?y) -> (?x <http://q> ?y)]\n[b: (?x <http://q> ?y) -> (?x <http://p> ?y)]",
		"[r: (?x ?p ?y) -> (?y ?p ?x)]",
		"[[[", "@prefix", "[r: -> ]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := Parse(src, rdf.NewDict())
		if err != nil {
			return
		}
		for _, r := range rs {
			if len(r.Head) == 0 {
				t.Fatalf("accepted rule with empty head: %v", r)
			}
			if !r.IsSafe() {
				t.Fatalf("accepted unsafe rule: %v", r)
			}
			if r.String() == "" {
				t.Fatal("empty String()")
			}
		}
	})
}
