// Package stats provides the small numeric toolkit the experiment harness
// needs: least-squares polynomial regression (the paper fits a cubic
// performance model to serial reasoning times, Figure 4), speedup series,
// and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// PolyFit fits ys ≈ Σ c[i]·xs^i of the given degree by least squares,
// returning the coefficients c[0..degree]. It solves the normal equations
// with Gaussian elimination and partial pivoting.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: PolyFit needs len(xs)==len(ys), got %d and %d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	if len(xs) < degree+1 {
		return nil, fmt.Errorf("stats: need at least %d points for degree %d, got %d", degree+1, degree, len(xs))
	}
	n := degree + 1
	// Normal equations: (AᵀA)c = Aᵀy with A[i][j] = xs[i]^j.
	ata := make([][]float64, n)
	aty := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for p := range xs {
		pow := make([]float64, 2*n-1)
		pow[0] = 1
		for i := 1; i < len(pow); i++ {
			pow[i] = pow[i-1] * xs[p]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += pow[i+j]
			}
			aty[i] += pow[i] * ys[p]
		}
	}
	return solve(ata, aty)
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (m, rhs).
func solve(m [][]float64, rhs []float64) ([]float64, error) {
	n := len(rhs)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64{}, m[i]...)
		a[i] = append(a[i], rhs[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		x[r] = a[r][n]
		for c := r + 1; c < n; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

// PolyEval evaluates the polynomial with coefficients c (c[i] multiplies
// x^i) at x.
func PolyEval(c []float64, x float64) float64 {
	y := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// RSquared is the coefficient of determination of fit c over (xs, ys).
func RSquared(c []float64, xs, ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		d := ys[i] - PolyEval(c, xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Speedup returns serial/parallel for each parallel time.
func Speedup(serial float64, parallel []float64) []float64 {
	out := make([]float64, len(parallel))
	for i, p := range parallel {
		if p > 0 {
			out[i] = serial / p
		}
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Max returns the maximum of xs. The i==0 branch seeds the running maximum
// from the first element, so all-negative inputs return their true maximum;
// only the empty slice yields 0.
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input), seeded from the first
// element like Max.
func Min(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation between closest ranks, without modifying xs. It returns 0
// for empty input; p is clamped to [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
