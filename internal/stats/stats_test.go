package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPolyFitExactCubic(t *testing.T) {
	// y = 2 + 3x − x² + 0.5x³ sampled exactly must be recovered exactly.
	want := []float64{2, 3, -1, 0.5}
	var xs, ys []float64
	for x := 0.0; x < 8; x++ {
		xs = append(xs, x)
		ys = append(ys, PolyEval(want, x))
	}
	got, err := PolyFit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !approx(got[i], want[i], 1e-6) {
			t.Fatalf("coefficient %d = %g, want %g", i, got[i], want[i])
		}
	}
	if r2 := RSquared(got, xs, ys); !approx(r2, 1, 1e-9) {
		t.Fatalf("R² = %g, want 1", r2)
	}
}

func TestPolyFitLeastSquares(t *testing.T) {
	// Noisy linear data: degree-1 fit should recover slope≈2, intercept≈1.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{1.1, 2.9, 5.2, 6.8, 9.1, 10.9}
	c, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c[1], 2, 0.1) || !approx(c[0], 1, 0.3) {
		t.Fatalf("fit = %v", c)
	}
	if r2 := RSquared(c, xs, ys); r2 < 0.99 {
		t.Fatalf("R² = %g", r2)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree accepted")
	}
	// Singular: all x identical cannot determine a slope.
	if _, err := PolyFit([]float64{3, 3, 3}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("singular system accepted")
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	c, err := PolyFit([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c[0], 6, 1e-9) {
		t.Fatalf("mean fit = %v, want [6]", c)
	}
}

// TestPolyFitInterpolationProperty: for any degree-2 polynomial and ≥3
// distinct sample points, the fit reproduces the values.
func TestPolyFitInterpolationProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		coef := []float64{float64(a), float64(b), float64(c)}
		xs := []float64{-2, -1, 0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = PolyEval(coef, x)
		}
		got, err := PolyFit(xs, ys, 2)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if !approx(PolyEval(got, x), ys[i], 1e-6*(1+math.Abs(ys[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	s := Speedup(10, []float64{10, 5, 2.5, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if !approx(s[i], want[i], 1e-9) {
			t.Fatalf("Speedup[%d] = %g, want %g", i, s[i], want[i])
		}
	}
}

func TestMeanStdDevMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5, 1e-9) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !approx(StdDev(xs), 2, 1e-9) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if Max(xs) != 9 {
		t.Errorf("Max = %g", Max(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input helpers must return 0")
	}
	if Max([]float64{-5, -2, -9}) != -2 {
		t.Error("Max mishandles all-negative input")
	}
}

func TestMin(t *testing.T) {
	if Min([]float64{3, 1, 4, 1, 5}) != 1 {
		t.Errorf("Min = %g", Min([]float64{3, 1, 4, 1, 5}))
	}
	// Seeded from the first element, so all-positive inputs do not report 0
	// and all-negative inputs report the true minimum.
	if Min([]float64{5, 7, 9}) != 5 {
		t.Error("Min mishandles all-positive input")
	}
	if Min([]float64{-2, -9, -5}) != -9 {
		t.Error("Min mishandles all-negative input")
	}
	if Min(nil) != 0 {
		t.Error("Min(empty) must return 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35},
		{25, 20}, {75, 40},
		{40, 29},            // rank 1.6: 20 + 0.6*(35-20)
		{-5, 15}, {120, 50}, // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(empty) must return 0")
	}
	if Percentile([]float64{42}, 99) != 42 {
		t.Error("Percentile(single) must return the element")
	}
	// The input must not be reordered.
	orig := []float64{9, 1, 5}
	Percentile(orig, 50)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}
