// Package rio provides format-dispatching RDF file I/O for the command-line
// tools: N-Triples (.nt) and Turtle (.ttl) readers behind one call.
package rio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powl/internal/ntriples"
	"powl/internal/rdf"
	"powl/internal/turtle"
)

// LoadFile parses path into g, interning into dict. The format is chosen by
// extension: .ttl/.turtle → Turtle, anything else → N-Triples. Returns the
// number of triples added.
func LoadFile(path string, dict *rdf.Dict, g *rdf.Graph) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".ttl", ".turtle":
		n, err := turtle.ReadGraph(f, dict, g)
		if err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		return n, nil
	default:
		n, err := ntriples.ReadGraph(f, dict, g)
		if err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		return n, nil
	}
}

// SaveFile writes g to path as N-Triples in deterministic order.
func SaveFile(path string, dict *rdf.Dict, g *rdf.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ntriples.WriteGraph(f, dict, g)
}
