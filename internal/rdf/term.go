// Package rdf provides the core RDF data model used throughout powl: interned
// terms, triples, and an indexed in-memory triple store.
//
// Terms (IRIs, literals, blank nodes) are interned into a Dict, which maps
// each distinct term to a dense uint32 ID. All higher layers (rule engines,
// partitioners, transports) operate on IDs; the Dict is consulted only at
// the edges (parsing, serialization, display).
package rdf

import "fmt"

// ID is a dense identifier for an interned term. The zero ID is reserved and
// never names a term; pattern-matching APIs use it as a wildcard.
type ID uint32

// Wildcard is the reserved ID used by Graph.Match to mean "any term".
const Wildcard ID = 0

// TermKind distinguishes the three syntactic categories of RDF terms.
type TermKind uint8

const (
	// IRI is an absolute IRI reference, e.g. <http://example.org/a>.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal. The Value
	// holds the full lexical surface including quotes and any suffix, e.g.
	// `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`.
	Literal
	// Blank is a blank node label, e.g. _:b0.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is the decoded form of an interned term.
type Term struct {
	Kind TermKind
	// Value is the term's text without the kind-specific delimiters for
	// IRIs (no angle brackets) and blank nodes (no "_:" prefix). For
	// literals it is the full N-Triples lexical form including quotes,
	// so typed and language-tagged literals round-trip exactly.
	Value string
}

// String renders the term in N-Triples surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		return t.Value
	}
}

// Triple is a subject–predicate–object statement over interned term IDs.
type Triple struct {
	S, P, O ID
}

// Less orders triples lexicographically by (S, P, O); used for deterministic
// output.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}
