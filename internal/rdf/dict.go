package rdf

import (
	"fmt"
	"sync"
)

// Dict interns terms, assigning each distinct (kind, value) pair a dense ID
// starting at 1. It is safe for concurrent use; interning takes a write lock
// only on first sight of a term.
type Dict struct {
	mu    sync.RWMutex
	ids   map[Term]ID
	terms []Term // terms[i] is the term with ID i+1
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Term]ID)}
}

// Intern returns the ID for term, assigning a fresh one if the term has not
// been seen before.
func (d *Dict) Intern(t Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.ids[t] = id
	return id
}

// InternIRI interns an IRI given its text (without angle brackets).
func (d *Dict) InternIRI(iri string) ID { return d.Intern(Term{Kind: IRI, Value: iri}) }

// InternLiteral interns a literal given its full lexical form (with quotes).
func (d *Dict) InternLiteral(lex string) ID { return d.Intern(Term{Kind: Literal, Value: lex}) }

// InternBlank interns a blank node given its label (without the "_:" prefix).
func (d *Dict) InternBlank(label string) ID { return d.Intern(Term{Kind: Blank, Value: label}) }

// Lookup returns the ID for term and whether it is interned, without
// modifying the dictionary.
func (d *Dict) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the term with the given ID. It panics if id is Wildcard or out
// of range, since that always indicates a programming error.
func (d *Dict) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == Wildcard || int(id) > len(d.terms) {
		panic(fmt.Sprintf("rdf: no term with ID %d (dict has %d terms)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Len reports the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// FormatTriple renders t in N-Triples surface syntax (without trailing dot).
func (d *Dict) FormatTriple(t Triple) string {
	return d.Term(t.S).String() + " " + d.Term(t.P).String() + " " + d.Term(t.O).String()
}
