package rdf

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDeleteBasics(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.Add(tr(1, 2, 4))
	g.Add(tr(5, 2, 3))

	if n := g.Delete([]Triple{tr(1, 2, 3), tr(9, 9, 9)}); n != 1 {
		t.Fatalf("Delete = %d, want 1", n)
	}
	if g.Has(tr(1, 2, 3)) {
		t.Fatal("deleted triple still Has")
	}
	if g.Len() != 3 || g.LiveLen() != 2 || g.Dead() != 1 {
		t.Fatalf("Len=%d LiveLen=%d Dead=%d, want 3/2/1", g.Len(), g.LiveLen(), g.Dead())
	}
	// Idempotent.
	if n := g.Delete([]Triple{tr(1, 2, 3)}); n != 0 {
		t.Fatalf("second Delete = %d, want 0", n)
	}
	// Every pattern shape excludes the dead triple.
	for _, pat := range [][3]ID{
		{1, 2, 3}, {1, 2, Wildcard}, {Wildcard, 2, 3}, {1, Wildcard, 3},
		{1, Wildcard, Wildcard}, {Wildcard, 2, Wildcard}, {Wildcard, Wildcard, 3},
		{Wildcard, Wildcard, Wildcard},
	} {
		for _, got := range g.Match(pat[0], pat[1], pat[2]) {
			if got == tr(1, 2, 3) {
				t.Fatalf("pattern %v matched deleted triple", pat)
			}
		}
		if c, m := g.CountMatch(pat[0], pat[1], pat[2]), len(g.Match(pat[0], pat[1], pat[2])); c < m {
			t.Fatalf("CountMatch%v = %d < Match length %d", pat, c, m)
		}
	}
	if got := len(g.Triples()); got != 2 {
		t.Fatalf("Triples() len = %d, want 2", got)
	}
}

func TestDeleteThenReAdd(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.Delete([]Triple{tr(1, 2, 3)})
	if !g.Add(tr(1, 2, 3)) {
		t.Fatal("re-Add after Delete reported not-new")
	}
	if !g.Has(tr(1, 2, 3)) {
		t.Fatal("re-added triple missing")
	}
	off, ok := g.Offset(tr(1, 2, 3))
	if !ok || off != 1 {
		t.Fatalf("re-added offset = %d,%v, want 1,true", off, ok)
	}
	if g.LiveLen() != 1 || g.Len() != 2 {
		t.Fatalf("LiveLen=%d Len=%d, want 1/2", g.LiveLen(), g.Len())
	}
	if got := g.Match(1, 2, Wildcard); len(got) != 1 {
		t.Fatalf("match after re-add = %v, want one triple", got)
	}
	// Deleting the old offset again must not disturb the live re-add.
	if n := g.DeleteOffsets([]uint32{0}); n != 0 {
		t.Fatalf("re-deleting dead offset = %d, want 0", n)
	}
	if !g.Has(tr(1, 2, 3)) {
		t.Fatal("live re-add lost after dead-offset delete")
	}
}

// TestSnapshotPinsPreDeleteEpoch is the acceptance-criterion test: a
// snapshot taken before a deletion keeps answering its original epoch
// exactly, while a snapshot taken after sees the deletion.
func TestSnapshotPinsPreDeleteEpoch(t *testing.T) {
	g := NewGraph()
	for i := 1; i <= 50; i++ {
		g.Add(tr(ID(i), 1, ID(i+1)))
	}
	pre := g.Snapshot()
	preTriples := append([]Triple(nil), pre.Triples()...)

	var dels []Triple
	for i := 1; i <= 50; i += 3 {
		dels = append(dels, tr(ID(i), 1, ID(i+1)))
	}
	g.Delete(dels)
	g.Add(tr(100, 1, 101))
	post := g.Snapshot()

	if pre.Len() != 50 {
		t.Fatalf("pre Len = %d, want 50", pre.Len())
	}
	for _, d := range dels {
		if !pre.Has(d) {
			t.Fatalf("pre-delete snapshot lost %v", d)
		}
		if post.Has(d) {
			t.Fatalf("post-delete snapshot still has %v", d)
		}
	}
	got := pre.Triples()
	if len(got) != len(preTriples) {
		t.Fatalf("pre Triples len changed: %d vs %d", len(got), len(preTriples))
	}
	for i := range got {
		if got[i] != preTriples[i] {
			t.Fatalf("pre Triples[%d] changed", i)
		}
	}
	// All 8 shapes on the pinned snapshot still see a deleted triple.
	d := dels[0]
	for _, pat := range [][3]ID{
		{d.S, d.P, d.O}, {d.S, d.P, Wildcard}, {Wildcard, d.P, d.O}, {d.S, Wildcard, d.O},
		{d.S, Wildcard, Wildcard}, {Wildcard, d.P, Wildcard}, {Wildcard, Wildcard, d.O},
		{Wildcard, Wildcard, Wildcard},
	} {
		found := false
		pre.ForEachMatch(pat[0], pat[1], pat[2], func(x Triple) bool {
			if x == d {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("pre-delete snapshot pattern %v lost %v", pat, d)
		}
		post.ForEachMatch(pat[0], pat[1], pat[2], func(x Triple) bool {
			if x == d {
				t.Fatalf("post-delete snapshot pattern %v matched %v", pat, d)
			}
			return true
		})
	}
	if post.Len() != 50-len(dels)+1 {
		t.Fatalf("post Len = %d, want %d", post.Len(), 50-len(dels)+1)
	}
}

func TestDeadAndAssertedTriples(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.AddDerived(tr(4, 5, 6), Derivation{})
	g.Add(tr(7, 8, 9))
	if got := g.AssertedTriples(); len(got) != 2 {
		t.Fatalf("AssertedTriples = %v, want the two asserted", got)
	}
	if !g.IsDerivedOffset(1) || g.IsDerivedOffset(0) || g.IsDerivedOffset(2) {
		t.Fatal("derived bits wrong")
	}
	g.Delete([]Triple{tr(7, 8, 9), tr(4, 5, 6)})
	dead := g.DeadTriples()
	want := []Triple{tr(4, 5, 6), tr(7, 8, 9)}
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	if len(dead) != 2 || dead[0] != want[0] || dead[1] != want[1] {
		t.Fatalf("DeadTriples = %v, want %v", dead, want)
	}
	// Re-add one: it leaves the dead set (live again).
	g.Add(tr(7, 8, 9))
	if got := g.DeadTriples(); len(got) != 1 || got[0] != tr(4, 5, 6) {
		t.Fatalf("DeadTriples after re-add = %v", got)
	}
	if got := g.AssertedTriples(); len(got) != 2 {
		t.Fatalf("AssertedTriples after churn = %v", got)
	}
}

func TestRepairDedup(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.Add(tr(4, 5, 6))
	g.Delete([]Triple{tr(1, 2, 3)})
	// Simulate a writer panic between tombstone publication and map pruning:
	// clobber the map and rebuild from published state.
	g.set[tr(1, 2, 3)] = 0
	delete(g.set, tr(4, 5, 6))
	g.RepairDedup()
	if g.Has(tr(1, 2, 3)) {
		t.Fatal("RepairDedup resurrected a dead triple")
	}
	if !g.Has(tr(4, 5, 6)) {
		t.Fatal("RepairDedup lost a live triple")
	}
	if off, ok := g.Offset(tr(4, 5, 6)); !ok || off != 1 {
		t.Fatalf("Offset after repair = %d,%v", off, ok)
	}
}

func TestCloneCarriesTombstones(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.AddDerived(tr(4, 5, 6), Derivation{})
	g.Delete([]Triple{tr(1, 2, 3)})
	c := g.Clone()
	if c.Has(tr(1, 2, 3)) || !c.Has(tr(4, 5, 6)) {
		t.Fatal("clone liveness wrong")
	}
	if c.LiveLen() != 1 || c.Dead() != 1 {
		t.Fatalf("clone LiveLen=%d Dead=%d", c.LiveLen(), c.Dead())
	}
	if !c.IsDerivedOffset(1) {
		t.Fatal("clone lost derived bit")
	}
	// Deleting in the clone must not affect the original (copy-on-write).
	c.Delete([]Triple{tr(4, 5, 6)})
	if !g.Has(tr(4, 5, 6)) {
		t.Fatal("clone delete leaked into original")
	}
}

func TestCompact(t *testing.T) {
	g := NewGraph()
	g.EnableProv()
	rule := g.Prov().RuleID("r1")
	g.Add(tr(1, 2, 3))                    // off 0
	g.Add(tr(3, 2, 5))                    // off 1
	g.AddDerived(tr(1, 2, 5), Derivation{ // off 2: derived from 0,1
		Rule: rule, Round: 1, Prem: [3]uint32{0, 1, NoPremise}})
	g.Add(tr(9, 9, 9)) // off 3: will die
	g.Delete([]Triple{tr(9, 9, 9)})

	c := g.Compact()
	if c.Len() != 3 || c.LiveLen() != 3 || c.Dead() != 0 {
		t.Fatalf("compact Len=%d LiveLen=%d Dead=%d, want 3/3/0", c.Len(), c.LiveLen(), c.Dead())
	}
	if !g.Equal(c) {
		t.Fatalf("compact not Equal: diff %v / %v", g.Diff(c), c.Diff(g))
	}
	if !c.IsDerivedOffset(2) || c.IsDerivedOffset(0) {
		t.Fatal("compact derived bits wrong")
	}
	lin, ok := c.LineageOf(tr(1, 2, 5))
	if !ok || lin.Rule != "r1" || len(lin.Prem) != 2 {
		t.Fatalf("compact lineage = %+v,%v", lin, ok)
	}
	if lin.Prem[0] != tr(1, 2, 3) || lin.Prem[1] != tr(3, 2, 5) {
		t.Fatalf("compact premises = %v", lin.Prem)
	}
	// A dead premise degrades to NoPremise rather than dangling.
	g.Delete([]Triple{tr(1, 2, 3)})
	c2 := g.Compact()
	lin2, ok := c2.LineageOf(tr(1, 2, 5))
	if !ok || len(lin2.Prem) != 1 || lin2.Prem[0] != tr(3, 2, 5) {
		t.Fatalf("compact-with-dead-premise lineage = %+v,%v", lin2, ok)
	}
	// The source graph is untouched and its pinned snapshots stay valid.
	if g.Len() != 4 {
		t.Fatalf("source Len mutated: %d", g.Len())
	}
}

// TestDeleteRandomizedVsModel drives random add/delete/re-add traffic and
// checks every pattern shape against a map reference model after each step.
func TestDeleteRandomizedVsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewGraph()
	model := map[Triple]struct{}{}
	universe := func() Triple {
		return tr(ID(rng.Intn(12)+1), ID(rng.Intn(4)+1), ID(rng.Intn(12)+1))
	}
	check := func(step int) {
		if g.LiveLen() != len(model) {
			t.Fatalf("step %d: LiveLen=%d model=%d", step, g.LiveLen(), len(model))
		}
		sn := g.Snapshot()
		for i := 0; i < 6; i++ {
			x := universe()
			pats := [][3]ID{
				{x.S, x.P, x.O}, {x.S, x.P, Wildcard}, {Wildcard, x.P, x.O},
				{x.S, Wildcard, x.O}, {x.S, Wildcard, Wildcard},
				{Wildcard, x.P, Wildcard}, {Wildcard, Wildcard, x.O},
				{Wildcard, Wildcard, Wildcard},
			}
			for _, pat := range pats {
				want := map[Triple]int{}
				for m := range model {
					if (pat[0] == Wildcard || pat[0] == m.S) &&
						(pat[1] == Wildcard || pat[1] == m.P) &&
						(pat[2] == Wildcard || pat[2] == m.O) {
						want[m]++
					}
				}
				for _, got := range [][]Triple{g.Match(pat[0], pat[1], pat[2]), sn.Match(pat[0], pat[1], pat[2])} {
					if len(got) != len(want) {
						t.Fatalf("step %d pat %v: got %d matches, want %d", step, pat, len(got), len(want))
					}
					for _, m := range got {
						if want[m] == 0 {
							t.Fatalf("step %d pat %v: spurious %v", step, pat, m)
						}
					}
				}
			}
		}
	}
	for step := 0; step < 400; step++ {
		x := universe()
		if rng.Intn(3) == 0 {
			g.Delete([]Triple{x})
			delete(model, x)
		} else {
			g.Add(x)
			model[x] = struct{}{}
		}
		if step%40 == 39 {
			check(step)
		}
	}
	check(400)
}
