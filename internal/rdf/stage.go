package rdf

// DeltaStage is the sharded staging area for concurrently produced delta
// triples: one shard per firing goroutine, each an append buffer with a
// local dedup set. It is how the parallel fire loop keeps the graph's
// single-writer contract intact — goroutines never touch the graph's
// mutable state, they stage into their own shard, and the coordinator
// drains every shard into the log after the fork joins.
//
// Ownership protocol (not locked — the structure has no synchronization of
// its own):
//
//   - between two coordinator sync points, shard i is written by exactly
//     one goroutine;
//   - Triples, Reset, and Len on any shard are coordinator-only, after the
//     firing goroutines have been joined.
//
// Shards dedup only their own triples; the same triple staged by two
// shards is resolved at drain time by the graph insert itself (AddDerived
// reports whether the triple was new).
type DeltaStage struct {
	shards []StageShard
}

// NewDeltaStage returns a stage with n shards (n < 1 is treated as 1).
func NewDeltaStage(n int) *DeltaStage {
	if n < 1 {
		n = 1
	}
	s := &DeltaStage{shards: make([]StageShard, n)}
	for i := range s.shards {
		s.shards[i].seen = map[Triple]struct{}{}
	}
	return s
}

// Shards returns the shard count.
func (d *DeltaStage) Shards() int { return len(d.shards) }

// Shard returns shard i for the goroutine that owns it.
func (d *DeltaStage) Shard(i int) *StageShard { return &d.shards[i] }

// Len sums the staged triple counts across shards (coordinator-only).
func (d *DeltaStage) Len() int {
	n := 0
	for i := range d.shards {
		n += len(d.shards[i].buf)
	}
	return n
}

// StageShard is one goroutine's staging buffer.
type StageShard struct {
	seen map[Triple]struct{}
	buf  []Triple
}

// Add stages t unless this shard already holds it, reporting whether it was
// staged. At a materialization's fixpoint nothing is staged, so the
// steady-state cost is one map probe — no allocation.
func (s *StageShard) Add(t Triple) bool {
	if _, ok := s.seen[t]; ok {
		return false
	}
	s.seen[t] = struct{}{}
	s.buf = append(s.buf, t)
	return true
}

// Len returns the staged triple count.
func (s *StageShard) Len() int { return len(s.buf) }

// Triples returns the staged triples in insertion order. The slice is a
// view into the shard's buffer — valid until the next Add or Reset.
func (s *StageShard) Triples() []Triple { return s.buf }

// Reset empties the shard, keeping its map and buffer capacity so a reused
// stage stops allocating once it has seen its high-water mark.
func (s *StageShard) Reset() {
	clear(s.seen)
	s.buf = s.buf[:0]
}
