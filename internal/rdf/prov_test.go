package rdf

import (
	"strings"
	"testing"
)

func provTriple(s, p, o ID) Triple { return Triple{S: s, P: p, O: o} }

func TestEnableProvBackfillsBaseRecords(t *testing.T) {
	g := NewGraph()
	g.Add(provTriple(1, 2, 3))
	g.Add(provTriple(4, 2, 3))
	p := g.EnableProv()
	if p.Len() != 2 {
		t.Fatalf("prov len = %d, want 2", p.Len())
	}
	for off := uint32(0); off < 2; off++ {
		if d := p.At(off); d.IsDerived() {
			t.Fatalf("offset %d backfilled as derived: %+v", off, d)
		}
	}
	if again := g.EnableProv(); again != p {
		t.Fatal("EnableProv not idempotent")
	}
	// Post-enable adds keep the side-column in lockstep.
	g.Add(provTriple(5, 2, 3))
	if p.Len() != g.Len() {
		t.Fatalf("prov len %d != graph len %d", p.Len(), g.Len())
	}
}

func TestAddDerivedAndLineage(t *testing.T) {
	g := NewGraph()
	p := g.EnableProv()
	a, b, c := provTriple(1, 10, 2), provTriple(2, 10, 3), provTriple(1, 10, 3)
	g.Add(a)
	g.Add(b)
	id := p.RuleID("trans")
	if id2 := p.RuleID("trans"); id2 != id {
		t.Fatalf("re-intern gave %d, want %d", id2, id)
	}
	offA, _ := g.Offset(a)
	offB, _ := g.Offset(b)
	if !g.AddDerived(c, Derivation{Rule: id, Round: 1, Prem: [3]uint32{offA, offB, NoPremise}}) {
		t.Fatal("AddDerived reported existing")
	}
	// Re-deriving must not rewrite the record (first wins).
	if g.AddDerived(c, Derivation{Rule: id, Round: 9}) {
		t.Fatal("duplicate AddDerived reported new")
	}
	lin, ok := g.LineageOf(c)
	if !ok {
		t.Fatal("LineageOf failed for derived triple")
	}
	if lin.Rule != "trans" || lin.Round != 1 {
		t.Fatalf("lineage = %+v", lin)
	}
	if len(lin.Prem) != 2 || lin.Prem[0] != a || lin.Prem[1] != b {
		t.Fatalf("premises = %v, want [%v %v]", lin.Prem, a, b)
	}
	if _, ok := g.LineageOf(a); ok {
		t.Fatal("asserted triple has lineage")
	}
}

func TestAddWithLineageTranslatesOffsets(t *testing.T) {
	src := NewGraph()
	src.EnableProv()
	a, b, c := provTriple(1, 10, 2), provTriple(2, 10, 3), provTriple(1, 10, 3)
	src.Add(a)
	src.Add(b)
	id := src.Prov().RuleID("trans")
	offA, _ := src.Offset(a)
	offB, _ := src.Offset(b)
	src.AddDerived(c, Derivation{Rule: id, Round: 2, Prem: [3]uint32{offA, offB, NoPremise}})

	// Destination has different offsets (extra triple first).
	dst := NewGraph()
	dst.EnableProv()
	dst.Add(provTriple(9, 9, 9))
	lin, _ := src.LineageOf(c)
	dst.Add(a)
	dst.Add(b)
	if !dst.AddWithLineage(c, lin) {
		t.Fatal("AddWithLineage reported existing")
	}
	got, ok := dst.LineageOf(c)
	if !ok || got.Rule != "trans" || got.Round != 2 {
		t.Fatalf("translated lineage = %+v ok=%v", got, ok)
	}
	if len(got.Prem) != 2 || got.Prem[0] != a || got.Prem[1] != b {
		t.Fatalf("translated premises = %v", got.Prem)
	}
}

func TestUnionAndClonePreserveLineage(t *testing.T) {
	src := NewGraph()
	src.EnableProv()
	a, b, c := provTriple(1, 10, 2), provTriple(2, 10, 3), provTriple(1, 10, 3)
	src.Add(a)
	src.Add(b)
	id := src.Prov().RuleID("trans")
	offA, _ := src.Offset(a)
	offB, _ := src.Offset(b)
	src.AddDerived(c, Derivation{Rule: id, Round: 1, Prem: [3]uint32{offA, offB, NoPremise}})

	cl := src.Clone()
	if lin, ok := cl.LineageOf(c); !ok || lin.Rule != "trans" || len(lin.Prem) != 2 {
		t.Fatalf("clone lineage = %+v ok=%v", lin, ok)
	}

	dst := NewGraph()
	dst.EnableProv()
	dst.Union(src)
	lin, ok := dst.LineageOf(c)
	if !ok || lin.Rule != "trans" || len(lin.Prem) != 2 || lin.Prem[0] != a {
		t.Fatalf("union lineage = %+v ok=%v", lin, ok)
	}
}

func TestExplainBuildsDAG(t *testing.T) {
	g := NewGraph()
	p := g.EnableProv()
	// chain: t0, t1 asserted; t2 = trans(t0, t1); t3 = trans(t0, t2).
	t0, t1 := provTriple(1, 10, 2), provTriple(2, 10, 3)
	t2, t3 := provTriple(1, 10, 3), provTriple(1, 10, 4)
	g.Add(t0)
	g.Add(t1)
	id := p.RuleID("trans")
	off0, _ := g.Offset(t0)
	off1, _ := g.Offset(t1)
	g.AddDerived(t2, Derivation{Rule: id, Round: 1, Prem: [3]uint32{off0, off1, NoPremise}})
	off2, _ := g.Offset(t2)
	g.AddDerived(t3, Derivation{Rule: id, Round: 2, Prem: [3]uint32{off0, off2, NoPremise}})

	n, ok := g.Explain(t3, 0)
	if !ok {
		t.Fatal("Explain failed")
	}
	if n.Rule != "trans" || n.Round != 2 || len(n.Premises) != 2 {
		t.Fatalf("root = %+v", n)
	}
	if n.Premises[0].Triple != t0 || n.Premises[0].IsDerived() {
		t.Fatalf("premise 0 = %+v", n.Premises[0])
	}
	inner := n.Premises[1]
	if inner.Triple != t2 || inner.Rule != "trans" || len(inner.Premises) != 2 {
		t.Fatalf("premise 1 = %+v", inner)
	}
	// Shared node: t0 appears under both the root and the inner derivation,
	// and must be the same *ExplainNode.
	if inner.Premises[0] != n.Premises[0] {
		t.Fatal("shared premise not deduplicated across the DAG")
	}

	// Depth bound truncates instead of recursing.
	shallow, ok := g.Explain(t3, 1)
	if !ok || !shallow.Truncated || len(shallow.Premises) != 0 {
		t.Fatalf("depth-1 explain = %+v ok=%v", shallow, ok)
	}

	// Asserted triples explain as leaves; absent triples fail.
	leaf, ok := g.Explain(t0, 0)
	if !ok || leaf.IsDerived() || len(leaf.Premises) != 0 {
		t.Fatalf("asserted explain = %+v ok=%v", leaf, ok)
	}
	if _, ok := g.Explain(provTriple(7, 7, 7), 0); ok {
		t.Fatal("explained an absent triple")
	}
}

func TestExplainRespectsSnapshotCut(t *testing.T) {
	g := NewGraph()
	p := g.EnableProv()
	t0, t1 := provTriple(1, 10, 2), provTriple(2, 10, 3)
	g.Add(t0)
	snap := g.Snapshot()
	g.Add(t1)
	id := p.RuleID("r")
	off0, _ := g.Offset(t0)
	off1, _ := g.Offset(t1)
	t2 := provTriple(1, 10, 3)
	g.AddDerived(t2, Derivation{Rule: id, Round: 1, Prem: [3]uint32{off0, off1, NoPremise}})

	if _, ok := snap.Explain(t2, 0); ok {
		t.Fatal("snapshot explained a triple above its watermark")
	}
	if _, ok := snap.Explain(t0, 0); !ok {
		t.Fatal("snapshot failed to explain a visible triple")
	}
	if _, ok := g.Snapshot().Explain(t2, 0); !ok {
		t.Fatal("fresh snapshot failed to explain the derived triple")
	}
}

func TestExplainRenderers(t *testing.T) {
	dict := NewDict()
	g := NewGraph()
	p := g.EnableProv()
	s := dict.InternIRI("http://t/s")
	sub := dict.InternIRI("http://t/sub")
	sup := dict.InternIRI("http://t/sup")
	ty := dict.InternIRI("http://t/type")
	t0 := Triple{S: s, P: ty, O: sub}
	t1 := Triple{S: sub, P: ty, O: sup}
	g.Add(t0)
	g.Add(t1)
	id := p.RuleID("sc")
	off0, _ := g.Offset(t0)
	off1, _ := g.Offset(t1)
	t2 := Triple{S: s, P: ty, O: sup}
	g.AddDerived(t2, Derivation{Rule: id, Round: 1, Prem: [3]uint32{off0, off1, NoPremise}})

	n, _ := g.Explain(t2, 0)
	text := ExplainString(dict, n)
	for _, want := range []string{"[rule sc, round 1]", "[asserted]", "├─", "└─", "http://t/sup"} {
		if !strings.Contains(text, want) {
			t.Errorf("text render missing %q:\n%s", want, text)
		}
	}
	doc := NewExplainDoc(dict, n)
	if doc.Rule != "sc" || len(doc.Premises) != 2 || doc.Premises[0].Rule != "" {
		t.Fatalf("doc = %+v", doc)
	}
	if !strings.Contains(doc.Triple, "http://t/sup") {
		t.Fatalf("doc triple = %q", doc.Triple)
	}
}

func TestProvLengthNeverBelowWatermark(t *testing.T) {
	g := NewGraph()
	p := g.EnableProv()
	for i := 0; i < 1000; i++ {
		g.Add(provTriple(ID(i+1), 5, ID(i+2)))
		if p.Len() < g.Len() {
			t.Fatalf("at %d: prov %d < log %d", i, p.Len(), g.Len())
		}
	}
}
