package rdf

// Snapshot is an epoch-pinned, zero-copy, read-only view of a Graph: the
// MVCC read side of the store. Taking one costs two atomic loads (the log
// watermark and the log array); no triples or posting lists are copied.
//
// A snapshot pinned at watermark W sees exactly the first W triples of the
// log — never more, never fewer — no matter how far the writer has appended
// since. Pattern matches run over the same posting lists the writer is
// extending, pinned per lookup by binary-searching the list's log-offset
// column down to W: posting lists grow in log order, so "the list as of W"
// is a prefix, found in O(log n) with no allocation. That prefix is the
// "pinned posting-list length" — it is computed, not stored, which is what
// keeps Snapshot itself two words wide.
//
// Snapshots may be taken from any goroutine at any time while a single
// writer mutates the graph, and any number of snapshots may be read
// concurrently. A snapshot never blocks the writer and holds no lock; it
// does pin the log array it captured, so an extremely long-lived snapshot
// keeps at most one superseded backing array alive.
//
// The fully-bound and (s,·,o) cases deliberately avoid the writer's private
// dedup map: they scan the shorter of the two relevant pinned posting
// prefixes instead.
//
// Deletions pin the same way: the snapshot captures the graph's tombstone
// set (an immutable bitset, see tombstone.go) when it is taken, and every
// match filters through that pinned set. A snapshot taken before a Delete
// keeps the older set and keeps answering its original epoch exactly — a
// later deletion can never reach into an already-pinned view. The set is
// loaded before the log watermark, so a concurrently-taken snapshot may at
// worst lag one delete batch behind its log cut, never run ahead of it; the
// serving layer sidesteps even that by publishing snapshots from the writer
// goroutine between batches.
type Snapshot struct {
	g    *Graph
	dead *tombSet // pinned tombstone set; nil = no deletions at pin time
	log  []Triple // pinned log prefix; len(log) is the watermark
}

// Snapshot pins the graph's current watermark and returns the read view.
// Safe to call from any goroutine concurrently with the single writer.
func (g *Graph) Snapshot() Snapshot {
	return Snapshot{g: g, dead: g.dead.Load(), log: g.log.view()}
}

// Len reports the number of triples visible in the snapshot: the pinned log
// prefix minus the tombstones pinned with it.
func (s Snapshot) Len() int {
	return len(s.log) - s.dead.countBelow(uint32(len(s.log)))
}

// Watermark returns the log offset the snapshot is pinned at — the epoch of
// the MVCC view. Snapshots with equal watermarks over the same graph and
// equal pinned tombstone sets are identical views.
func (s Snapshot) Watermark() int { return len(s.log) }

// Dead returns the number of tombstoned offsets below the watermark.
func (s Snapshot) Dead() int { return s.dead.countBelow(uint32(len(s.log))) }

// ProvEnabled reports whether the snapshotted graph records provenance —
// the concurrent-safe form of Graph.Prov() != nil (the prov column is fixed
// at graph construction, so reading it through the pinned graph pointer
// never races the writer).
func (s Snapshot) ProvEnabled() bool { return s.g.prov != nil }

// Triples returns the visible triples. With no pinned tombstones this is
// the pinned log prefix itself — a read-only view, valid forever, that the
// caller must not modify; with tombstones it is a fresh filtered copy.
func (s Snapshot) Triples() []Triple {
	if s.dead.count() == 0 {
		return s.log
	}
	out := make([]Triple, 0, s.Len())
	for i, t := range s.log {
		if !s.dead.has(uint32(i)) {
			out = append(out, t)
		}
	}
	return out
}

// cutOffsets returns the prefix of v whose offsets are below w. Posting
// lists grow in log-offset order, so this is the pinned view of the list.
func cutOffsets(v []uint32, w uint32) []uint32 {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v[:lo]
}

// cutEntries is cutOffsets for (term, offset) pair postings.
func cutEntries(v []spEntry, w uint32) []spEntry {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].Off < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v[:lo]
}

// Has reports whether t is visible in the snapshot. It scans the shorter of
// the (s,p) and (p,o) pinned posting prefixes rather than touching the
// writer's dedup map.
func (s Snapshot) Has(t Triple) bool {
	w := uint32(len(s.log))
	sp := cutEntries(s.g.bySP.get(key2(t.S, t.P)).entries(), w)
	po := cutEntries(s.g.byPO.get(key2(t.P, t.O)).entries(), w)
	if len(sp) <= len(po) {
		for _, e := range sp {
			if e.Term == t.O && !s.dead.has(e.Off) {
				return true
			}
		}
	} else {
		for _, e := range po {
			if e.Term == t.S && !s.dead.has(e.Off) {
				return true
			}
		}
	}
	return false
}

// ForEachMatch calls fn for every visible triple matching the pattern, where
// Wildcard in any position matches all terms. Iteration stops early if fn
// returns false; order is log insertion order. Safe concurrently with the
// writer and with other readers.
//
//powl:allocfree the serve read path probes here per query row
func (s Snapshot) ForEachMatch(sub, p, o ID, fn func(Triple) bool) {
	w := uint32(len(s.log))
	switch {
	case sub != Wildcard && p != Wildcard && o != Wildcard:
		t := Triple{sub, p, o}
		if s.Has(t) {
			fn(t)
		}
	case sub != Wildcard && p != Wildcard:
		for _, e := range cutEntries(s.g.bySP.get(key2(sub, p)).entries(), w) {
			if s.dead.has(e.Off) {
				continue
			}
			if !fn(Triple{sub, p, e.Term}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, e := range cutEntries(s.g.byPO.get(key2(p, o)).entries(), w) {
			if s.dead.has(e.Off) {
				continue
			}
			if !fn(Triple{e.Term, p, o}) {
				return
			}
		}
	case sub != Wildcard && o != Wildcard:
		sl := cutOffsets(s.g.byS.get(key1(sub)).entries(), w)
		ol := cutOffsets(s.g.byO.get(key1(o)).entries(), w)
		if len(sl) <= len(ol) {
			for _, off := range sl {
				if s.dead.has(off) {
					continue
				}
				if t := s.log[off]; t.O == o && !fn(t) {
					return
				}
			}
		} else {
			for _, off := range ol {
				if s.dead.has(off) {
					continue
				}
				if t := s.log[off]; t.S == sub && !fn(t) {
					return
				}
			}
		}
	case sub != Wildcard:
		for _, off := range cutOffsets(s.g.byS.get(key1(sub)).entries(), w) {
			if s.dead.has(off) {
				continue
			}
			if !fn(s.log[off]) {
				return
			}
		}
	case p != Wildcard:
		for _, off := range cutOffsets(s.g.byP.get(key1(p)).entries(), w) {
			if s.dead.has(off) {
				continue
			}
			if !fn(s.log[off]) {
				return
			}
		}
	case o != Wildcard:
		for _, off := range cutOffsets(s.g.byO.get(key1(o)).entries(), w) {
			if s.dead.has(off) {
				continue
			}
			if !fn(s.log[off]) {
				return
			}
		}
	default:
		for i, t := range s.log {
			if s.dead.has(uint32(i)) {
				continue
			}
			if !fn(t) {
				return
			}
		}
	}
}

// Match returns all visible triples matching the pattern as a fresh slice.
func (s Snapshot) Match(sub, p, o ID) []Triple {
	var out []Triple
	s.ForEachMatch(sub, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of visible triples matching the pattern
// without materializing them: O(log n) for every index-backed shape (the
// binary-searched pinned prefix length), a shorter-side scan for (s,·,o).
// With pinned tombstones the index-backed shapes become upper bounds, the
// same soundness contract as Graph.CountMatch (never zero for a nonempty
// extent); the fully-bound, (s,·,o), and unbound shapes stay exact.
//
//powl:allocfree query-planner selectivity ranking per join level
func (s Snapshot) CountMatch(sub, p, o ID) int {
	w := uint32(len(s.log))
	switch {
	case sub != Wildcard && p != Wildcard && o != Wildcard:
		if s.Has(Triple{sub, p, o}) {
			return 1
		}
		return 0
	case sub != Wildcard && p != Wildcard:
		return len(cutEntries(s.g.bySP.get(key2(sub, p)).entries(), w))
	case p != Wildcard && o != Wildcard:
		return len(cutEntries(s.g.byPO.get(key2(p, o)).entries(), w))
	case sub != Wildcard && o != Wildcard:
		n := 0
		sl := cutOffsets(s.g.byS.get(key1(sub)).entries(), w)
		ol := cutOffsets(s.g.byO.get(key1(o)).entries(), w)
		if len(sl) <= len(ol) {
			for _, off := range sl {
				if s.log[off].O == o && !s.dead.has(off) {
					n++
				}
			}
		} else {
			for _, off := range ol {
				if s.log[off].S == sub && !s.dead.has(off) {
					n++
				}
			}
		}
		return n
	case sub != Wildcard:
		return len(cutOffsets(s.g.byS.get(key1(sub)).entries(), w))
	case p != Wildcard:
		return len(cutOffsets(s.g.byP.get(key1(p)).entries(), w))
	case o != Wildcard:
		return len(cutOffsets(s.g.byO.get(key1(o)).entries(), w))
	default:
		return s.Len()
	}
}
