package rdf

// Snapshot is an epoch-pinned, zero-copy, read-only view of a Graph: the
// MVCC read side of the store. Taking one costs two atomic loads (the log
// watermark and the log array); no triples or posting lists are copied.
//
// A snapshot pinned at watermark W sees exactly the first W triples of the
// log — never more, never fewer — no matter how far the writer has appended
// since. Pattern matches run over the same posting lists the writer is
// extending, pinned per lookup by binary-searching the list's log-offset
// column down to W: posting lists grow in log order, so "the list as of W"
// is a prefix, found in O(log n) with no allocation. That prefix is the
// "pinned posting-list length" — it is computed, not stored, which is what
// keeps Snapshot itself two words wide.
//
// Snapshots may be taken from any goroutine at any time while a single
// writer mutates the graph, and any number of snapshots may be read
// concurrently. A snapshot never blocks the writer and holds no lock; it
// does pin the log array it captured, so an extremely long-lived snapshot
// keeps at most one superseded backing array alive.
//
// The fully-bound and (s,·,o) cases deliberately avoid the writer's private
// dedup map: they scan the shorter of the two relevant pinned posting
// prefixes instead.
type Snapshot struct {
	g   *Graph
	log []Triple // pinned log prefix; len(log) is the watermark
}

// Snapshot pins the graph's current watermark and returns the read view.
// Safe to call from any goroutine concurrently with the single writer.
func (g *Graph) Snapshot() Snapshot {
	return Snapshot{g: g, log: g.log.view()}
}

// Len reports the number of triples visible in the snapshot.
func (s Snapshot) Len() int { return len(s.log) }

// Watermark returns the log offset the snapshot is pinned at — the epoch of
// the MVCC view. Snapshots with equal watermarks over the same graph are
// identical views.
func (s Snapshot) Watermark() int { return len(s.log) }

// Triples returns the pinned log prefix itself — a read-only view, valid
// forever, that the caller must not modify.
func (s Snapshot) Triples() []Triple { return s.log }

// cutOffsets returns the prefix of v whose offsets are below w. Posting
// lists grow in log-offset order, so this is the pinned view of the list.
func cutOffsets(v []uint32, w uint32) []uint32 {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v[:lo]
}

// cutEntries is cutOffsets for (term, offset) pair postings.
func cutEntries(v []spEntry, w uint32) []spEntry {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].Off < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v[:lo]
}

// Has reports whether t is visible in the snapshot. It scans the shorter of
// the (s,p) and (p,o) pinned posting prefixes rather than touching the
// writer's dedup map.
func (s Snapshot) Has(t Triple) bool {
	w := uint32(len(s.log))
	sp := cutEntries(s.g.bySP.get(key2(t.S, t.P)).entries(), w)
	po := cutEntries(s.g.byPO.get(key2(t.P, t.O)).entries(), w)
	if len(sp) <= len(po) {
		for _, e := range sp {
			if e.Term == t.O {
				return true
			}
		}
	} else {
		for _, e := range po {
			if e.Term == t.S {
				return true
			}
		}
	}
	return false
}

// ForEachMatch calls fn for every visible triple matching the pattern, where
// Wildcard in any position matches all terms. Iteration stops early if fn
// returns false; order is log insertion order. Safe concurrently with the
// writer and with other readers.
func (s Snapshot) ForEachMatch(sub, p, o ID, fn func(Triple) bool) {
	w := uint32(len(s.log))
	switch {
	case sub != Wildcard && p != Wildcard && o != Wildcard:
		t := Triple{sub, p, o}
		if s.Has(t) {
			fn(t)
		}
	case sub != Wildcard && p != Wildcard:
		for _, e := range cutEntries(s.g.bySP.get(key2(sub, p)).entries(), w) {
			if !fn(Triple{sub, p, e.Term}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, e := range cutEntries(s.g.byPO.get(key2(p, o)).entries(), w) {
			if !fn(Triple{e.Term, p, o}) {
				return
			}
		}
	case sub != Wildcard && o != Wildcard:
		sl := cutOffsets(s.g.byS.get(key1(sub)).entries(), w)
		ol := cutOffsets(s.g.byO.get(key1(o)).entries(), w)
		if len(sl) <= len(ol) {
			for _, off := range sl {
				if t := s.log[off]; t.O == o && !fn(t) {
					return
				}
			}
		} else {
			for _, off := range ol {
				if t := s.log[off]; t.S == sub && !fn(t) {
					return
				}
			}
		}
	case sub != Wildcard:
		for _, off := range cutOffsets(s.g.byS.get(key1(sub)).entries(), w) {
			if !fn(s.log[off]) {
				return
			}
		}
	case p != Wildcard:
		for _, off := range cutOffsets(s.g.byP.get(key1(p)).entries(), w) {
			if !fn(s.log[off]) {
				return
			}
		}
	case o != Wildcard:
		for _, off := range cutOffsets(s.g.byO.get(key1(o)).entries(), w) {
			if !fn(s.log[off]) {
				return
			}
		}
	default:
		for _, t := range s.log {
			if !fn(t) {
				return
			}
		}
	}
}

// Match returns all visible triples matching the pattern as a fresh slice.
func (s Snapshot) Match(sub, p, o ID) []Triple {
	var out []Triple
	s.ForEachMatch(sub, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of visible triples matching the pattern
// without materializing them: O(log n) for every index-backed shape (the
// binary-searched pinned prefix length), a shorter-side scan for (s,·,o).
func (s Snapshot) CountMatch(sub, p, o ID) int {
	w := uint32(len(s.log))
	switch {
	case sub != Wildcard && p != Wildcard && o != Wildcard:
		if s.Has(Triple{sub, p, o}) {
			return 1
		}
		return 0
	case sub != Wildcard && p != Wildcard:
		return len(cutEntries(s.g.bySP.get(key2(sub, p)).entries(), w))
	case p != Wildcard && o != Wildcard:
		return len(cutEntries(s.g.byPO.get(key2(p, o)).entries(), w))
	case sub != Wildcard && o != Wildcard:
		n := 0
		sl := cutOffsets(s.g.byS.get(key1(sub)).entries(), w)
		ol := cutOffsets(s.g.byO.get(key1(o)).entries(), w)
		if len(sl) <= len(ol) {
			for _, off := range sl {
				if s.log[off].O == o {
					n++
				}
			}
		} else {
			for _, off := range ol {
				if s.log[off].S == sub {
					n++
				}
			}
		}
		return n
	case sub != Wildcard:
		return len(cutOffsets(s.g.byS.get(key1(sub)).entries(), w))
	case p != Wildcard:
		return len(cutOffsets(s.g.byP.get(key1(p)).entries(), w))
	case o != Wildcard:
		return len(cutOffsets(s.g.byO.get(key1(o)).entries(), w))
	default:
		return len(s.log)
	}
}
