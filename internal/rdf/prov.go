package rdf

import "sync/atomic"

// Provenance is a structure-of-arrays side-column to the triple log: one
// fixed-size Derivation record per log offset, appended by the same single
// writer that appends the triple, published under the same MVCC discipline.
// The invariant tying the two logs together is publication order: Graph.Add
// appends the provenance record *before* the triple-log append that commits
// the watermark, so at every instant
//
//	prov.Len() >= log.length()
//
// and a Snapshot pinned at watermark W can read records [0, W) without any
// coordination — they were complete before W was published. Records are
// never rewritten (first derivation wins), so the side-column inherits the
// element-immutability argument of index.go wholesale.
//
// A record is ~16 bytes: rule id (uint16), round (uint16), and up to three
// premise log-offsets (3x uint32). Premises are stored in body-atom order of
// the compiled rule, truncated at three — enough for every OWL-Horst rule
// shape; the long intersectionOf bodies keep their first three atoms, which
// still pins the derivation to its rule and lets Explain recurse.

// NoRule marks a base (asserted, not derived) triple's rule column, and
// NoPremise an absent premise slot.
const (
	NoRule    = ^uint16(0)
	NoPremise = ^uint32(0)
)

// Derivation is the per-offset provenance record.
type Derivation struct {
	Rule  uint16    // index into the Prov rule-name table, or NoRule
	Round uint16    // semi-naive round the derivation fired in (0 if unknown)
	Prem  [3]uint32 // premise log offsets in body-atom order, NoPremise-padded
}

// baseDerivation is the record written for asserted triples.
func baseDerivation() Derivation {
	return Derivation{Rule: NoRule, Prem: [3]uint32{NoPremise, NoPremise, NoPremise}}
}

// IsDerived reports whether the record names a rule.
func (d Derivation) IsDerived() bool { return d.Rule != NoRule }

// provLog is the append-only Derivation log, structured exactly like
// tripleLog: single writer appends, any goroutine reads the published
// prefix.
type provLog struct {
	arr atomic.Pointer[[]Derivation]
	n   atomic.Uint32
}

func (l *provLog) grow(n int) {
	have := int(l.n.Load())
	a := l.arr.Load()
	if a != nil && have+n <= len(*a) {
		return
	}
	c := growCap(have)
	if c < have+n {
		c = have + n
	}
	na := make([]Derivation, c)
	if a != nil {
		copy(na, (*a)[:have])
	}
	l.arr.Store(&na)
}

func (l *provLog) append1(d Derivation) {
	n := int(l.n.Load())
	a := l.arr.Load()
	if a == nil || n == len(*a) {
		l.grow(1)
		a = l.arr.Load()
	}
	//powl:ignore atomicpub element write lands below the published length n; readers slice arr[:n.Load()], so the length store below is the commit point
	(*a)[n] = d
	l.n.Store(uint32(n + 1))
}

func (l *provLog) view() []Derivation {
	n := l.n.Load()
	if n == 0 {
		return nil
	}
	a := l.arr.Load()
	return (*a)[:n:n]
}

func (l *provLog) length() int { return int(l.n.Load()) }

// Prov holds the provenance side-column plus the rule-name table that maps
// the compact uint16 rule ids back to compiled-rule names. Rule names are
// interned by the writer and published copy-on-write, so readers resolving
// ids from a pinned snapshot never race the writer's interning.
type Prov struct {
	recs   provLog
	names  atomic.Pointer[[]string]
	byName map[string]uint16 // writer-only
	// alt records at most one alternate derivation per log offset: the
	// first duplicate firing the engines observed for an already-present
	// triple. First derivation still wins the primary record (immutable);
	// the alternate is the counting-style fast path DRed consults — a
	// triple whose alternate's premises all survive a deletion needs no
	// rederivation join. Writer-only, lazily allocated, best-effort (it is
	// a cache: Retract verifies premise liveness before trusting it).
	alt map[uint32]Derivation
}

// RuleID interns name and returns its compact id. Writer-only. Returns
// NoRule if the 16-bit id space is exhausted (the record then degrades to
// "derived by an unnamed rule").
//
//powl:ignore degradejournal rdf sits below obs; id-space exhaustion is a data property surfaced as NoRule, which Explain renders and callers may journal
func (p *Prov) RuleID(name string) uint16 {
	if id, ok := p.byName[name]; ok {
		return id
	}
	old := p.names.Load()
	var cur []string
	if old != nil {
		cur = *old
	}
	if len(cur) >= int(NoRule) {
		return NoRule
	}
	id := uint16(len(cur))
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[id] = name
	p.names.Store(&next)
	p.byName[name] = id
	return id
}

// RuleName resolves a rule id to its name. Safe from any goroutine; returns
// "" for NoRule or an unknown id.
func (p *Prov) RuleName(id uint16) string {
	if p == nil || id == NoRule {
		return ""
	}
	names := p.names.Load()
	if names == nil || int(id) >= len(*names) {
		return ""
	}
	return (*names)[id]
}

// RuleNames returns the published rule-name table (index = rule id). Safe
// from any goroutine; the returned slice is immutable.
func (p *Prov) RuleNames() []string {
	if p == nil {
		return nil
	}
	names := p.names.Load()
	if names == nil {
		return nil
	}
	return *names
}

// Len returns the number of published records. Safe from any goroutine.
func (p *Prov) Len() int {
	if p == nil {
		return 0
	}
	return p.recs.length()
}

// At returns the record for log offset off. Safe from any goroutine as long
// as off is below a watermark the caller pinned (prov length >= watermark by
// the publication-order invariant).
func (p *Prov) At(off uint32) Derivation {
	v := p.recs.view()
	if int(off) >= len(v) {
		return baseDerivation()
	}
	return v[off]
}

// RecordAlt stores an alternate derivation for the triple at log offset off.
// First alternate wins; records equal to nothing are not validated here —
// consumers must check premise liveness themselves. Writer-only.
func (p *Prov) RecordAlt(off uint32, d Derivation) {
	if p == nil || !d.IsDerived() {
		return
	}
	if _, ok := p.alt[off]; ok {
		return
	}
	if p.alt == nil {
		p.alt = map[uint32]Derivation{}
	}
	p.alt[off] = d
}

// AltAt returns the alternate derivation recorded for off, if any.
// Writer-only.
func (p *Prov) AltAt(off uint32) (Derivation, bool) {
	if p == nil {
		return Derivation{}, false
	}
	d, ok := p.alt[off]
	return d, ok
}

// EnableProv switches provenance recording on and returns the side-column.
// Idempotent. Writer-only, and must be called before the graph is shared
// with concurrent readers: enabling backfills one base record per existing
// triple, and that backfill is not covered by the snapshot cut argument.
// Triples added before enabling read as asserted (NoRule).
func (g *Graph) EnableProv() *Prov {
	if g.prov != nil {
		return g.prov
	}
	p := &Prov{byName: make(map[string]uint16)}
	n := g.log.length()
	p.recs.grow(n)
	for i := 0; i < n; i++ {
		p.recs.append1(baseDerivation())
	}
	g.prov = p
	return p
}

// Prov returns the provenance side-column, or nil when recording is off.
func (g *Graph) Prov() *Prov { return g.prov }

// Offset returns the log offset of t, if present. Writer-only (dedup map).
func (g *Graph) Offset(t Triple) (uint32, bool) {
	off, ok := g.set[t]
	return off, ok
}

// AddDerived inserts t with an explicit derivation record and reports
// whether it was newly added. With provenance off it is exactly Add.
// Writer-only. First derivation wins: re-deriving an existing triple does
// not rewrite its record (records below the watermark are immutable).
func (g *Graph) AddDerived(t Triple, d Derivation) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.addNew(t, d, true)
	return true
}

// Lineage is the transportable form of one derivation: self-contained (it
// carries the derived triple and its premise triples by value, not by log
// offset), so it survives shipping to a worker whose log has different
// offsets. Premises are in body-atom order.
type Lineage struct {
	T     Triple
	Rule  string
	Round uint16
	Prem  []Triple
}

// LineageOf resolves t's derivation record into transportable form.
// Writer-only (offset lookup via the dedup map). ok is false when t is
// absent or asserted rather than derived.
func (g *Graph) LineageOf(t Triple) (Lineage, bool) {
	off, ok := g.set[t]
	if !ok || g.prov == nil {
		return Lineage{}, false
	}
	return g.lineageAt(t, off)
}

// lineageAt builds the Lineage for the triple at log offset off.
func (g *Graph) lineageAt(t Triple, off uint32) (Lineage, bool) {
	d := g.prov.At(off)
	if !d.IsDerived() {
		return Lineage{}, false
	}
	lin := Lineage{T: t, Rule: g.prov.RuleName(d.Rule), Round: d.Round}
	log := g.log.view()
	for _, p := range d.Prem {
		if p == NoPremise || int(p) >= len(log) {
			continue
		}
		lin.Prem = append(lin.Prem, log[p])
	}
	return lin, true
}

// AddWithLineage inserts t, translating a shipped Lineage into a local
// derivation record: the rule name is interned locally and premise triples
// are resolved to local log offsets (premises not yet present record as
// NoPremise — the shipper orders deltas so premises normally land first).
// Reports whether t was newly added; an existing triple keeps its original
// record (first wins). Writer-only. With provenance off it is exactly Add.
func (g *Graph) AddWithLineage(t Triple, lin Lineage) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	if g.prov == nil {
		g.addNew(t, Derivation{}, true)
		return true
	}
	d := Derivation{Rule: g.prov.RuleID(lin.Rule), Round: lin.Round,
		Prem: [3]uint32{NoPremise, NoPremise, NoPremise}}
	for i, p := range lin.Prem {
		if i >= len(d.Prem) {
			break
		}
		if off, ok := g.set[p]; ok {
			d.Prem[i] = off
		}
	}
	g.addNew(t, d, true)
	return true
}
