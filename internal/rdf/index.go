package rdf

import "sync/atomic"

// This file holds the single-writer / multi-reader structures the graph is
// built on. The contract is the MVCC one the serving layer needs: exactly one
// goroutine mutates (the writer that owns the Graph), while any number of
// goroutines read *pinned* prefixes concurrently, with no locks on either
// side. Three properties make that safe:
//
//  1. Element immutability below the published length. An entry, once
//     published, is never rewritten, so a reader holding a watermark W only
//     ever touches memory the writer finished with before publishing W.
//  2. Atomic publication. Backing arrays and lengths are published through
//     sync/atomic (seq-cst in Go), so a reader that observes length n also
//     observes every element write and every index append that happened
//     before n was stored.
//  3. Grow-by-replacement. Appends that outgrow a backing array allocate a
//     fresh one and publish it via an atomic pointer; readers still holding
//     the old array see a valid (shorter) prefix, which their watermark
//     filter already restricts them to.
//
// The posting lists additionally keep their entries in insertion order, which
// is log-offset order — so "the list as of watermark W" is a binary-searched
// prefix, not a copy. That is what makes rdf.Snapshot zero-copy.

// spEntry is one bySP/byPO posting: the completing term of the triple plus
// the triple's log offset. The offset is what lets a Snapshot cut the list at
// its watermark; the completing term keeps the two-bound join path free of
// log indirection (the pattern already fixes the other two positions).
type spEntry struct {
	Term ID
	Off  uint32
}

// posting is an append-only list with an atomically published length. The
// single writer appends; readers take view() and slice it down to their
// watermark. The backing array always has len == cap and is published before
// the length that makes its new tail element reachable.
type posting[T any] struct {
	arr atomic.Pointer[[]T]
	n   atomic.Uint32
}

// append1 appends one element. Writer-only.
func (p *posting[T]) append1(x T) {
	n := int(p.n.Load())
	a := p.arr.Load()
	if a == nil || n == len(*a) {
		na := make([]T, growCap(n))
		if a != nil {
			copy(na, (*a)[:n])
		}
		p.arr.Store(&na)
		a = &na
	}
	//powl:ignore atomicpub element write lands below the published length n; readers only walk arr[:n.Load()], so the length store below is the commit point
	(*a)[n] = x
	p.n.Store(uint32(n + 1))
}

func growCap(n int) int {
	if n == 0 {
		return 4
	}
	return 2 * n
}

// view returns the published prefix of the list. Safe from any goroutine;
// the returned slice is immutable (capacity-capped, contents never
// rewritten). The length is loaded before the array: the array only ever
// grows, so any array observed after a length n holds at least n elements.
func (p *posting[T]) view() []T {
	n := p.n.Load()
	if n == 0 {
		return nil
	}
	a := p.arr.Load()
	return (*a)[:n:n]
}

// length returns the published element count.
func (p *posting[T]) length() int {
	if p == nil {
		return 0
	}
	return int(p.n.Load())
}

// islot is one open-addressing slot. key 0 means empty — valid keys are
// always nonzero because every interned ID is >= 1 and packed two-ID keys
// keep the low half nonzero. The posting pointer is published before the key
// so a reader that wins the race to see the key always sees the posting.
type islot[T any] struct {
	key atomic.Uint64
	p   atomic.Pointer[posting[T]]
}

// itable is one published generation of the hash table; resize builds a new
// itable and swaps the pointer, leaving readers on the old generation with a
// valid (if stale) view whose missing keys can only name entries above any
// already-pinned watermark.
type itable[T any] struct {
	slots []islot[T]
	shift uint // Fibonacci-hash shift: index = (key * fibMul) >> shift
}

const fibMul = 0x9E3779B97F4A7C15

func (t *itable[T]) slotFor(key uint64) int {
	return int((key * fibMul) >> t.shift)
}

// index maps a packed uint64 key to a posting list: the lock-free
// replacement for the previous map[ID][]uint32 / map[[2]ID][]ID indexes.
// One writer inserts; any goroutine looks up.
type index[T any] struct {
	tab   atomic.Pointer[itable[T]]
	count int // distinct keys; writer-only
}

// newTable allocates a table with 1<<bits slots.
func newTable[T any](bits uint) *itable[T] {
	return &itable[T]{slots: make([]islot[T], 1<<bits), shift: 64 - bits}
}

// presize readies the index for about n distinct keys. Writer-only, and only
// meaningful before heavy insertion (NewGraphCap).
func (ix *index[T]) presize(n int) {
	bits := uint(4)
	for (1 << bits) < n*4/3 {
		bits++
	}
	if t := ix.tab.Load(); t == nil || len(t.slots) < 1<<bits {
		ix.rehash(bits)
	}
}

// get returns the posting for key, or nil if absent. Safe from any
// goroutine.
func (ix *index[T]) get(key uint64) *posting[T] {
	t := ix.tab.Load()
	if t == nil {
		return nil
	}
	mask := len(t.slots) - 1
	for i := t.slotFor(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		k := s.key.Load()
		if k == key {
			return s.p.Load()
		}
		if k == 0 {
			return nil
		}
	}
}

// getOrCreate returns the posting for key, inserting an empty one if absent.
// Writer-only.
func (ix *index[T]) getOrCreate(key uint64) *posting[T] {
	t := ix.tab.Load()
	if t == nil || (ix.count+1)*4 > len(t.slots)*3 {
		bits := uint(4)
		if t != nil {
			bits = 64 - t.shift + 1
		}
		ix.rehash(bits)
		t = ix.tab.Load()
	}
	mask := len(t.slots) - 1
	for i := t.slotFor(key); ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key.Load() {
		case key:
			return s.p.Load()
		case 0:
			p := &posting[T]{}
			s.p.Store(p)
			s.key.Store(key) // publish after the posting: readers racing the probe see both
			ix.count++
			return p
		}
	}
}

// rehash publishes a fresh table of 1<<bits slots holding every existing
// entry. Writer-only; readers continue on the old generation until they
// reload the pointer.
func (ix *index[T]) rehash(bits uint) {
	old := ix.tab.Load()
	nt := newTable[T](bits)
	if old != nil {
		mask := len(nt.slots) - 1
		for si := range old.slots {
			s := &old.slots[si]
			k := s.key.Load()
			if k == 0 {
				continue
			}
			for i := nt.slotFor(k); ; i = (i + 1) & mask {
				d := &nt.slots[i]
				if d.key.Load() == 0 {
					d.p.Store(s.p.Load())
					d.key.Store(k)
					break
				}
			}
		}
	}
	ix.tab.Store(nt)
}

// forEach calls fn for every (key, posting) pair. Writer-side bulk
// operations (Clone) use it; iteration order is table order and therefore
// not deterministic — callers must not let it reach any ordered output.
func (ix *index[T]) forEach(fn func(key uint64, p *posting[T])) {
	t := ix.tab.Load()
	if t == nil {
		return
	}
	for i := range t.slots {
		s := &t.slots[i]
		if k := s.key.Load(); k != 0 {
			fn(k, s.p.Load())
		}
	}
}

// tripleLog is the append-only triple log with an atomically published
// length — the graph's backbone and the snapshot watermark's meaning.
type tripleLog struct {
	arr atomic.Pointer[[]Triple]
	n   atomic.Uint32
}

// grow reserves capacity for n more triples. Writer-only.
func (l *tripleLog) grow(n int) {
	have := int(l.n.Load())
	a := l.arr.Load()
	if a != nil && have+n <= len(*a) {
		return
	}
	c := growCap(have)
	if c < have+n {
		c = have + n
	}
	na := make([]Triple, c)
	if a != nil {
		copy(na, (*a)[:have])
	}
	l.arr.Store(&na)
}

// append1 appends one triple and publishes the new length. Writer-only.
// This is the commit point of Graph.Add: every index append for this triple
// happens before it, so a reader that observes length n sees a fully indexed
// prefix of n triples.
func (l *tripleLog) append1(t Triple) {
	n := int(l.n.Load())
	a := l.arr.Load()
	if a == nil || n == len(*a) {
		l.grow(1)
		a = l.arr.Load()
	}
	//powl:ignore atomicpub element write lands below the published length n; view() slices arr[:n.Load()], so the length store below is the commit point
	(*a)[n] = t
	l.n.Store(uint32(n + 1))
}

// view returns the published prefix of the log. Safe from any goroutine.
func (l *tripleLog) view() []Triple {
	n := l.n.Load()
	if n == 0 {
		return nil
	}
	a := l.arr.Load()
	return (*a)[:n:n]
}

// length returns the published triple count.
func (l *tripleLog) length() int { return int(l.n.Load()) }

// key packing: the five indexes are keyed by one ID or an ID pair. IDs are
// nonzero for interned terms, so both packings are nonzero and never collide
// with the empty-slot sentinel.

func key1(a ID) uint64    { return uint64(a) }
func key2(a, b ID) uint64 { return uint64(a)<<32 | uint64(b) }
