package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(n int) (*Graph, []Triple) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraphCap(n)
	ts := make([]Triple, 0, n)
	for len(ts) < n {
		t := Triple{
			S: ID(1 + rng.Intn(n/4+1)),
			P: ID(1 + rng.Intn(16)),
			O: ID(1 + rng.Intn(n/4+1)),
		}
		if g.Add(t) {
			ts = append(ts, t)
		}
	}
	return g, ts
}

func BenchmarkGraphAdd(b *testing.B) {
	_, ts := benchGraph(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraphCap(len(ts))
		for _, t := range ts {
			g.Add(t)
		}
	}
	b.ReportMetric(float64(len(ts)), "triples/op")
}

func BenchmarkGraphMatchSP(b *testing.B) {
	g, ts := benchGraph(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		n := 0
		g.ForEachMatch(t.S, t.P, Wildcard, func(Triple) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkGraphMatchPO(b *testing.B) {
	g, ts := benchGraph(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		n := 0
		g.ForEachMatch(Wildcard, t.P, t.O, func(Triple) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkDictIntern(b *testing.B) {
	d := NewDict()
	terms := make([]Term, 4096)
	for i := range terms {
		terms[i] = Term{Kind: IRI, Value: fmt.Sprintf("http://bench/x%d", i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(terms[i%len(terms)])
	}
}

func BenchmarkGraphClone(b *testing.B) {
	g, _ := benchGraph(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		if c.Len() != g.Len() {
			b.Fatal("clone lost triples")
		}
	}
	b.ReportMetric(float64(g.Len()), "triples/op")
}

func BenchmarkGraphCountMatch(b *testing.B) {
	g, ts := benchGraph(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		// The three shapes the join planner ranks on every step.
		if g.CountMatch(t.S, t.P, Wildcard) == 0 ||
			g.CountMatch(Wildcard, t.P, t.O) == 0 ||
			g.CountMatch(Wildcard, t.P, Wildcard) == 0 {
			b.Fatal("stored triple has empty extent")
		}
	}
}

func BenchmarkGraphUnion(b *testing.B) {
	g1, _ := benchGraph(20000)
	g2, _ := benchGraph(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewGraphCap(g1.Len() + g2.Len())
		u.Union(g1)
		u.Union(g2)
	}
}
