package rdf

import (
	"math/bits"
	"sort"
)

// Deletion support: tombstone epochs over the append-only log.
//
// The log itself never shrinks and offsets are never reused — that is what
// keeps every offset-keyed structure (posting lists, provenance premises,
// pinned snapshots) valid forever. A deletion instead marks the triple's log
// offset dead in a tombSet: an immutable bitset published through an atomic
// pointer, exactly like the posting tables. Readers pin the pointer once
// (Snapshot captures it next to the log watermark) and filter matches
// through it; a snapshot taken before a Delete keeps the older (possibly
// nil) set and therefore keeps answering its original epoch bit-for-bit.
//
// A deleted triple may be re-added later; it then occupies a fresh log
// offset while the dead offset stays dead, so "the triple" and "the offset"
// diverge deliberately: liveness questions about offsets use tombSet.has,
// liveness questions about triples use the dedup map (Graph.Has), which
// Delete prunes.
//
// The nil tombSet is the fast path: a graph that has never seen a deletion
// pays one pointer load per match call and nothing per candidate.

// tombSet is an immutable deleted-offset bitset. Published whole via
// Graph.dead; never mutated after publication (copy-on-write per Delete
// batch), so readers need no further synchronization.
type tombSet struct {
	bits []uint64
	n    int // set bits — the dead-offset count
}

// has reports whether off is tombstoned. Nil-safe: a nil set has no dead
// offsets.
func (t *tombSet) has(off uint32) bool {
	if t == nil {
		return false
	}
	w := int(off >> 6)
	return w < len(t.bits) && t.bits[w]>>(off&63)&1 != 0
}

// count returns the number of dead offsets. Nil-safe.
func (t *tombSet) count() int {
	if t == nil {
		return 0
	}
	return t.n
}

// countBelow returns the number of dead offsets strictly below w — the
// correction a snapshot pinned at watermark w applies to its visible length.
func (t *tombSet) countBelow(w uint32) int {
	if t == nil {
		return 0
	}
	n := 0
	full := int(w >> 6)
	if full > len(t.bits) {
		full = len(t.bits)
	}
	for _, word := range t.bits[:full] {
		n += bits.OnesCount64(word)
	}
	if rem := w & 63; rem != 0 && full < len(t.bits) {
		n += bits.OnesCount64(t.bits[full] & (1<<rem - 1))
	}
	return n
}

// Delete tombstones every triple of ts that is currently live and returns
// the number deleted. Writer-only. The new tombstone set is published
// atomically in one step per batch — before the dedup entries are pruned —
// so a concurrent Snapshot observes either none or all of the batch's
// deletions, and a crash between the two steps leaves the published state
// correct (RepairDedup reconciles the writer-private map).
func (g *Graph) Delete(ts []Triple) int {
	if len(ts) == 0 {
		return 0
	}
	offs := make([]uint32, 0, len(ts))
	for _, t := range ts {
		if off, ok := g.set[t]; ok {
			offs = append(offs, off)
		}
	}
	return g.DeleteOffsets(offs)
}

// DeleteOffsets tombstones the given log offsets and returns the number
// newly tombstoned. Writer-only. Offsets already dead (or out of range) are
// skipped, so the call is idempotent. Callers iterating a map to build offs
// must sort first if anything downstream is order-sensitive; DeleteOffsets
// itself is order-insensitive.
func (g *Graph) DeleteOffsets(offs []uint32) int {
	if len(offs) == 0 {
		return 0
	}
	old := g.dead.Load()
	logv := g.log.view()
	bits := make([]uint64, (len(logv)+63)/64)
	if old != nil {
		copy(bits, old.bits)
	}
	deleted := 0
	for _, off := range offs {
		if int(off) >= len(logv) {
			continue
		}
		w, b := off>>6, uint64(1)<<(off&63)
		if bits[w]&b != 0 {
			continue
		}
		bits[w] |= b
		deleted++
	}
	if deleted == 0 {
		return 0
	}
	g.dead.Store(&tombSet{bits: bits, n: old.count() + deleted})
	// Prune the dedup map after publication so the triples can be re-added
	// at fresh offsets. Guard on the stored offset: if a triple was already
	// deleted and re-added, its map entry names the newer live offset and
	// must survive.
	for _, off := range offs {
		if int(off) >= len(logv) {
			continue
		}
		t := logv[off]
		if cur, ok := g.set[t]; ok && cur == off {
			delete(g.set, t)
		}
	}
	return deleted
}

// Dead returns the number of tombstoned log offsets. Safe from any
// goroutine.
func (g *Graph) Dead() int { return g.dead.Load().count() }

// LiveLen returns the number of live (non-tombstoned) triples. Safe from
// any goroutine. Len() stays the raw log length — the watermark the MVCC
// and shipping layers are built on.
func (g *Graph) LiveLen() int { return g.log.length() - g.Dead() }

// IsLiveOffset reports whether the triple at log offset off is live.
func (g *Graph) IsLiveOffset(off uint32) bool {
	return int(off) < g.log.length() && !g.dead.Load().has(off)
}

// DeadTriples returns the tombstoned triples, sorted, for deterministic
// persistence (the fscluster checkpoint sidecar). A triple deleted and
// later re-added is live and therefore excluded. Writer-only (consults the
// dedup map).
func (g *Graph) DeadTriples() []Triple {
	dead := g.dead.Load()
	if dead.count() == 0 {
		return nil
	}
	var out []Triple
	for i, t := range g.log.view() {
		if dead.has(uint32(i)) && !g.Has(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IsDerivedOffset reports whether the triple at log offset off was inserted
// through a derived path (AddDerived/AddWithLineage) rather than asserted.
// Maintained independently of the provenance side-column so the
// provenance-off deletion fallback can still separate base facts from
// inferences. Writer-only.
func (g *Graph) IsDerivedOffset(off uint32) bool {
	w := int(off >> 6)
	return w < len(g.derived) && g.derived[w]>>(off&63)&1 != 0
}

// AssertedTriples returns the live asserted (non-derived) triples in log
// order — the base facts a from-scratch rematerialization starts from.
// Writer-only.
func (g *Graph) AssertedTriples() []Triple {
	dead := g.dead.Load()
	var out []Triple
	for i, t := range g.log.view() {
		off := uint32(i)
		if !dead.has(off) && !g.IsDerivedOffset(off) {
			out = append(out, t)
		}
	}
	return out
}

// RepairDedup rebuilds the writer-private dedup map from the published log
// and tombstone set. The published (reader-visible) state is always
// consistent on its own; the map is the only structure a writer-goroutine
// panic can leave half-updated, and this restores it. Writer-only.
func (g *Graph) RepairDedup() {
	dead := g.dead.Load()
	clear(g.set)
	for i, t := range g.log.view() {
		off := uint32(i)
		if !dead.has(off) {
			g.set[t] = off
		}
	}
}

// Compact rewrites the graph without its dead triples and returns the fresh
// copy: a new log holding only live triples, rebuilt posting lists, no
// tombstones. Provenance survives with premise offsets remapped to the new
// log; a premise that is itself dead (possible only transiently, between a
// retraction's overdelete and its rederivation) degrades to NoPremise.
// Alternate-derivation records (Prov.RecordAlt) are not carried over — they
// are a cache and rebuild naturally.
//
// The receiver is left untouched, so snapshots pinned on it remain valid
// forever; the owner swaps the fresh graph in (a single pointer publish in
// the serving layer) and the old epoch chain is garbage-collected once the
// last pinned snapshot is dropped. Writer-only on g.
//
//powl:ignore degradejournal rdf sits below obs; the NoPremise remap is a transient data property of the copy, and the serving layer journals every compaction it triggers
func (g *Graph) Compact() *Graph {
	dead := g.dead.Load()
	logv := g.log.view()
	live := len(logv) - dead.count()
	c := NewGraphCap(live)
	var remap []uint32
	if g.prov != nil {
		cp := &Prov{byName: make(map[string]uint16, len(g.prov.byName))}
		if names := g.prov.names.Load(); names != nil {
			nn := make([]string, len(*names))
			copy(nn, *names)
			cp.names.Store(&nn)
			for id, name := range nn {
				cp.byName[name] = uint16(id)
			}
		}
		c.prov = cp
		remap = make([]uint32, len(logv))
		for i := range remap {
			remap[i] = NoPremise
		}
	}
	for i, t := range logv {
		off := uint32(i)
		if dead.has(off) {
			continue
		}
		d := baseDerivation()
		if g.prov != nil {
			d = g.prov.At(off)
			if d.IsDerived() {
				for j, p := range d.Prem {
					if p == NoPremise || int(p) >= len(remap) {
						d.Prem[j] = NoPremise
						continue
					}
					// Premises precede their consequence in the log, so the
					// remap entry is already final here.
					d.Prem[j] = remap[p]
				}
			}
			remap[off] = uint32(c.log.length())
		}
		c.addNew(t, d, g.IsDerivedOffset(off))
	}
	return c
}
