package rdf

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// refCount brute-forces a pattern count over a triple slice.
func refCount(ts []Triple, s, p, o ID) int {
	n := 0
	for _, t := range ts {
		if (s == Wildcard || t.S == s) && (p == Wildcard || t.P == p) && (o == Wildcard || t.O == o) {
			n++
		}
	}
	return n
}

// patternShapes enumerates all 8 bound/wildcard shapes for t.
func patternShapes(t Triple) [8][3]ID {
	w := Wildcard
	return [8][3]ID{
		{t.S, t.P, t.O},
		{t.S, t.P, w},
		{w, t.P, t.O},
		{t.S, w, t.O},
		{t.S, w, w},
		{w, t.P, w},
		{w, w, t.O},
		{w, w, w},
	}
}

// TestSnapshotPrefixSemantics pins a snapshot after every insertion and
// verifies, once the graph has grown far past each pin, that every snapshot
// still answers exactly as a graph containing only its prefix would.
func TestSnapshotPrefixSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 400
	stream := make([]Triple, n)
	for i := range stream {
		stream[i] = Triple{ID(rng.Intn(20) + 1), ID(rng.Intn(6) + 1), ID(rng.Intn(20) + 1)}
	}
	g := NewGraph()
	var snaps []Snapshot
	for _, tr := range stream {
		g.Add(tr)
		snaps = append(snaps, g.Snapshot())
	}
	full := g.Triples()
	for i, sn := range snaps {
		if sn.Len() != sn.Watermark() {
			t.Fatalf("snapshot %d: Len %d != Watermark %d", i, sn.Len(), sn.Watermark())
		}
		prefix := full[:sn.Len()]
		if got := sn.Triples(); len(got) != len(prefix) {
			t.Fatalf("snapshot %d: %d visible triples, want %d", i, len(got), len(prefix))
		}
		// Check a sample of patterns: in-prefix, most recent (boundary), and
		// beyond-watermark triples.
		samples := []Triple{prefix[0], prefix[len(prefix)-1]}
		if sn.Len() < len(full) {
			samples = append(samples, full[sn.Len()])
		}
		for _, tr := range samples {
			for _, pat := range patternShapes(tr) {
				want := refCount(prefix, pat[0], pat[1], pat[2])
				if got := sn.CountMatch(pat[0], pat[1], pat[2]); got != want {
					t.Fatalf("snapshot %d: CountMatch(%v) = %d, want %d", i, pat, got, want)
				}
				if got := len(sn.Match(pat[0], pat[1], pat[2])); got != want {
					t.Fatalf("snapshot %d: Match(%v) = %d rows, want %d", i, pat, got, want)
				}
			}
			if got, want := sn.Has(tr), refCount(prefix, tr.S, tr.P, tr.O) > 0; got != want {
				t.Fatalf("snapshot %d: Has(%v) = %v, want %v", i, tr, got, want)
			}
		}
	}
}

// TestSnapshotStableUnderConcurrentWriter is the MVCC acceptance test: one
// writer goroutine keeps appending via Add/AddAll while N reader goroutines
// pin snapshots and interrogate them. Every reader asserts that each pinned
// view holds exactly its watermark — same length on re-read, pattern counts
// that agree with a brute-force scan of the pinned triples, and no triple
// from beyond the watermark leaking in. Run under -race this also proves
// the lock-free publication protocol has no data races.
func TestSnapshotStableUnderConcurrentWriter(t *testing.T) {
	g := NewGraph()
	const writerTriples = 30000
	var done atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(7))
		i := 0
		for i < writerTriples {
			if rng.Intn(4) == 0 {
				batch := make([]Triple, rng.Intn(64)+1)
				for j := range batch {
					batch[j] = Triple{ID(rng.Intn(500) + 1), ID(rng.Intn(12) + 1), ID(rng.Intn(500) + 1)}
				}
				g.AddAll(batch)
				i += len(batch)
			} else {
				g.Add(Triple{ID(rng.Intn(500) + 1), ID(rng.Intn(12) + 1), ID(rng.Intn(500) + 1)})
				i++
			}
		}
	}()

	const readers = 8
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				sn := g.Snapshot()
				w := sn.Len()
				visible := sn.Triples()
				if len(visible) != w {
					t.Errorf("reader: Triples() returned %d, watermark %d", len(visible), w)
					return
				}
				// The wildcard scan must see exactly the watermark.
				count := 0
				sn.ForEachMatch(Wildcard, Wildcard, Wildcard, func(Triple) bool {
					count++
					return true
				})
				if count != w {
					t.Errorf("reader: wildcard scan saw %d triples, watermark %d", count, w)
					return
				}
				if w == 0 {
					continue
				}
				// Spot-check pattern shapes against a brute-force scan of the
				// pinned view. The writer keeps appending while this runs; a
				// stable snapshot answers identically regardless.
				tr := visible[rng.Intn(len(visible))]
				for _, pat := range patternShapes(tr) {
					want := refCount(visible, pat[0], pat[1], pat[2])
					if got := sn.CountMatch(pat[0], pat[1], pat[2]); got != want {
						t.Errorf("reader: CountMatch(%v)@%d = %d, want %d", pat, w, got, want)
						return
					}
				}
				if !sn.Has(tr) {
					t.Errorf("reader: Has(%v)@%d = false for a visible triple", tr, w)
					return
				}
				// Re-pinning must never shrink: watermarks are monotone.
				if w2 := g.Snapshot().Len(); w2 < w {
					t.Errorf("reader: watermark went backwards: %d then %d", w, w2)
					return
				}
			}
			errs <- nil
		}(int64(100 + r))
	}
	wg.Wait()

	// After the writer stops, a late snapshot sees everything, and an early
	// pinned view re-checked now is still exactly its prefix.
	final := g.Snapshot()
	if final.Len() != g.Len() {
		t.Fatalf("final snapshot %d != graph %d", final.Len(), g.Len())
	}
}

// TestSnapshotOldPinSurvivesGrowth pins one early snapshot, then grows the
// graph by orders of magnitude (forcing log and posting reallocation and
// table rehashes) and verifies the old pin still reads its exact prefix.
func TestSnapshotOldPinSurvivesGrowth(t *testing.T) {
	g := NewGraph()
	for i := 1; i <= 10; i++ {
		g.Add(Triple{ID(i), 1, ID(i + 1)})
	}
	sn := g.Snapshot()
	want := append([]Triple(nil), sn.Triples()...)

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		g.Add(Triple{ID(rng.Intn(3000) + 1), ID(rng.Intn(20) + 1), ID(rng.Intn(3000) + 1)})
	}

	if sn.Len() != 10 {
		t.Fatalf("old snapshot watermark moved: %d", sn.Len())
	}
	got := sn.Triples()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("old snapshot triple %d changed: %v != %v", i, got[i], want[i])
		}
	}
	if n := sn.CountMatch(Wildcard, 1, Wildcard); n != 10 {
		t.Fatalf("old snapshot CountMatch(·,1,·) = %d, want 10", n)
	}
	for _, tr := range want {
		if !sn.Has(tr) {
			t.Fatalf("old snapshot lost %v", tr)
		}
	}
}
