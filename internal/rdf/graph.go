package rdf

import (
	"slices"
	"sort"
)

// Graph is an in-memory triple store with set semantics, laid out as a
// structure of arrays: a single append-only triple log plus slice-backed
// per-key posting lists. The log holds each distinct triple exactly once, in
// insertion order; the five indexes the rule engines need are:
//
//	byS, byP, byO — posting lists of log offsets (4 bytes/entry), for the
//	                one-bound patterns and the (s,·,o) two-sided scan;
//	bySP, byPO    — posting lists of the completing term (object resp.
//	                subject, 4 bytes/entry): the pattern already fixes the
//	                other two positions, so the join path reads the answer
//	                directly with no log indirection.
//
// Compared with the previous maps-of-[]Triple layout this stores each triple
// once (12 bytes) plus five 4-byte postings instead of materializing it three
// times in value slices, and makes whole-graph iteration (Triples, Union,
// Equal, Diff, Resources) a deterministic linear walk of the log instead of a
// map range.
//
// Graph is not safe for concurrent mutation; in powl each cluster worker owns
// its graph exclusively and exchanges triples by value.
type Graph struct {
	log  []Triple
	set  map[Triple]struct{}
	byS  map[ID][]uint32
	byP  map[ID][]uint32
	byO  map[ID][]uint32
	bySP map[[2]ID][]ID // objects for (s, p), in insertion order
	byPO map[[2]ID][]ID // subjects for (p, o), in insertion order
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return NewGraphCap(0) }

// NewGraphCap returns an empty graph pre-sized for about n triples, which
// avoids rehashing when bulk-loading (e.g. when aggregating worker outputs).
func NewGraphCap(n int) *Graph {
	return &Graph{
		log:  make([]Triple, 0, n),
		set:  make(map[Triple]struct{}, n),
		byS:  make(map[ID][]uint32, n/4+1),
		byP:  make(map[ID][]uint32, 64),
		byO:  make(map[ID][]uint32, n/4+1),
		bySP: make(map[[2]ID][]ID, n),
		byPO: make(map[[2]ID][]ID, n/2+1),
	}
}

// Grow pre-sizes the triple log for n additional triples. The posting-list
// maps grow incrementally regardless; the log is the bulk of the appended
// bytes, so reserving it up front is what the bulk-load paths (AddAll,
// Union) benefit from.
func (g *Graph) Grow(n int) {
	g.log = slices.Grow(g.log, n)
}

// Add inserts t and reports whether it was not already present.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	off := uint32(len(g.log))
	g.log = append(g.log, t)
	g.byS[t.S] = append(g.byS[t.S], off)
	g.byP[t.P] = append(g.byP[t.P], off)
	g.byO[t.O] = append(g.byO[t.O], off)
	g.bySP[[2]ID{t.S, t.P}] = append(g.bySP[[2]ID{t.S, t.P}], t.O)
	g.byPO[[2]ID{t.P, t.O}] = append(g.byPO[[2]ID{t.P, t.O}], t.S)
	return true
}

// AddAll inserts every triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	g.Grow(len(ts))
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Has reports whether t is in the graph.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len reports the number of triples.
func (g *Graph) Len() int { return len(g.log) }

// Triples returns all triples in insertion order, as a fresh slice the
// caller may modify.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, len(g.log))
	copy(out, g.log)
	return out
}

// TriplesSince returns a read-only view of the triples added at log offset n
// or later — the graph's delta since the caller last observed Len() == n.
// The log is append-only, so the view stays valid across later Adds, but the
// caller must not modify it; use Triples for an owned copy.
func (g *Graph) TriplesSince(n int) []Triple {
	if n >= len(g.log) {
		return nil
	}
	return g.log[n:len(g.log):len(g.log)]
}

// SortedTriples returns all triples ordered by (S, P, O), for deterministic
// output.
func (g *Graph) SortedTriples() []Triple {
	out := g.Triples()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// clonePostings deep-copies one posting-list map: all lists land in a single
// flat backing buffer of exactly cap n (full-capacity subslices, so a later
// append to any list copies out instead of clobbering its neighbour), which
// costs one allocation instead of one per key.
func clonePostings[K comparable, V ID | uint32](m map[K][]V, n int) map[K][]V {
	out := make(map[K][]V, len(m))
	buf := make([]V, 0, n)
	for k, v := range m {
		start := len(buf)
		buf = append(buf, v...)
		out[k] = buf[start:len(buf):len(buf)]
	}
	return out
}

// Clone returns a deep copy of the graph. It copies the log and the index
// posting lists directly — no per-triple re-insertion, no map rehashing —
// so cloning costs a handful of bulk copies plus one map insert per distinct
// index key.
func (g *Graph) Clone() *Graph {
	n := len(g.log)
	c := &Graph{
		log:  slices.Clone(g.log),
		set:  make(map[Triple]struct{}, n),
		byS:  clonePostings(g.byS, n),
		byP:  clonePostings(g.byP, n),
		byO:  clonePostings(g.byO, n),
		bySP: clonePostings(g.bySP, n),
		byPO: clonePostings(g.byPO, n),
	}
	for _, t := range c.log {
		c.set[t] = struct{}{}
	}
	return c
}

// ForEachMatch calls fn for every triple matching the pattern, where Wildcard
// in any position matches all terms. Iteration stops early if fn returns
// false. Iteration order is the insertion order of the matching triples. The
// graph must not be mutated during iteration.
func (g *Graph) ForEachMatch(s, p, o ID, fn func(Triple) bool) {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		t := Triple{s, p, o}
		if g.Has(t) {
			fn(t)
		}
	case s != Wildcard && p != Wildcard:
		for _, obj := range g.bySP[[2]ID{s, p}] {
			if !fn(Triple{s, p, obj}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, subj := range g.byPO[[2]ID{p, o}] {
			if !fn(Triple{subj, p, o}) {
				return
			}
		}
	case s != Wildcard && o != Wildcard:
		// Scan the shorter of the two posting lists; both sides index the
		// same log, so either yields exactly the (s,·,o) matches.
		if sl, ol := g.byS[s], g.byO[o]; len(sl) <= len(ol) {
			for _, off := range sl {
				if t := g.log[off]; t.O == o && !fn(t) {
					return
				}
			}
		} else {
			for _, off := range ol {
				if t := g.log[off]; t.S == s && !fn(t) {
					return
				}
			}
		}
	case s != Wildcard:
		for _, off := range g.byS[s] {
			if !fn(g.log[off]) {
				return
			}
		}
	case p != Wildcard:
		for _, off := range g.byP[p] {
			if !fn(g.log[off]) {
				return
			}
		}
	case o != Wildcard:
		for _, off := range g.byO[o] {
			if !fn(g.log[off]) {
				return
			}
		}
	default:
		for _, t := range g.log {
			if !fn(t) {
				return
			}
		}
	}
}

// Match returns all triples matching the pattern as a slice.
func (g *Graph) Match(s, p, o ID) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them. Every pattern that lands on an index whose length is
// the answer — all but (s,·,o) — is O(1): the stored posting-list cardinality
// is returned directly. (s,·,o) scans the shorter of the two posting lists.
// The rule engines use this as the selectivity estimate for join ordering,
// so it must stay cheap for every pattern shape.
func (g *Graph) CountMatch(s, p, o ID) int {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		if g.Has(Triple{s, p, o}) {
			return 1
		}
		return 0
	case s != Wildcard && p != Wildcard:
		return len(g.bySP[[2]ID{s, p}])
	case p != Wildcard && o != Wildcard:
		return len(g.byPO[[2]ID{p, o}])
	case s != Wildcard && o != Wildcard:
		n := 0
		if sl, ol := g.byS[s], g.byO[o]; len(sl) <= len(ol) {
			for _, off := range sl {
				if g.log[off].O == o {
					n++
				}
			}
		} else {
			for _, off := range ol {
				if g.log[off].S == s {
					n++
				}
			}
		}
		return n
	case s != Wildcard:
		return len(g.byS[s])
	case p != Wildcard:
		return len(g.byP[p])
	case o != Wildcard:
		return len(g.byO[o])
	default:
		return len(g.log)
	}
}

// Resources returns the set of IDs that appear as subject or object of some
// triple (the nodes of the RDF graph, excluding predicates).
func (g *Graph) Resources() map[ID]struct{} {
	res := make(map[ID]struct{}, len(g.byS)+len(g.byO))
	for _, t := range g.log {
		res[t.S] = struct{}{}
		res[t.O] = struct{}{}
	}
	return res
}

// Subjects returns the set of IDs appearing in subject position.
func (g *Graph) Subjects() map[ID]struct{} {
	res := make(map[ID]struct{}, len(g.byS))
	for _, t := range g.log {
		res[t.S] = struct{}{}
	}
	return res
}

// Union adds every triple of other into g and returns the number newly
// added. It walks other's log — deterministic order, no map iteration — and
// pre-sizes g's log for the incoming bulk.
func (g *Graph) Union(other *Graph) int {
	g.Grow(other.Len())
	n := 0
	for _, t := range other.log {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Equal reports whether g and other contain exactly the same triples.
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for _, t := range g.log {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// Diff returns the triples present in g but not in other, sorted.
func (g *Graph) Diff(other *Graph) []Triple {
	var out []Triple
	for _, t := range g.log {
		if !other.Has(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
