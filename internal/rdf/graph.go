package rdf

import (
	"sort"
	"sync/atomic"
)

// Graph is an in-memory triple store with set semantics, laid out as a
// structure of arrays: a single append-only triple log plus per-key posting
// lists. The log holds each distinct triple exactly once, in insertion
// order; the five indexes the rule engines need are:
//
//	byS, byP, byO — posting lists of log offsets (4 bytes/entry), for the
//	                one-bound patterns and the (s,·,o) two-sided scan;
//	bySP, byPO    — posting lists of (completing term, log offset) pairs:
//	                the pattern already fixes the other two positions, so
//	                the join path reads the answer directly with no log
//	                indirection, and the offset lets a Snapshot cut the
//	                list at its watermark.
//
// Since PR 6 the store is a single-writer / multi-reader MVCC substrate:
// exactly one goroutine may mutate the graph, but Snapshot may be called
// from any goroutine at any time and the returned view is stable — pinned
// at the log watermark current when it was taken — while the writer keeps
// appending. There are no locks anywhere: the log and every posting list
// publish their lengths atomically and never rewrite published entries, and
// the index tables are open-addressing with atomic slot publication (see
// index.go for the full argument).
//
// All mutating methods (Add, AddAll, Union, Grow) and the dedup-consulting
// reads (Has, and through it the fully-bound ForEachMatch/CountMatch case)
// remain writer-only: they touch the private dedup map. Concurrent readers
// must go through Snapshot.
type Graph struct {
	log  tripleLog
	set  map[Triple]uint32 // writer-only dedup; value = log offset
	byS  index[uint32]
	byP  index[uint32]
	byO  index[uint32]
	bySP index[spEntry] // completing object for (s, p), in log order
	byPO index[spEntry] // completing subject for (p, o), in log order
	prov *Prov          // derivation side-column; nil = recording off
	// dead is the published tombstone set (see tombstone.go); nil until the
	// first Delete, so append-only graphs pay one pointer load per match
	// call and nothing per candidate.
	dead atomic.Pointer[tombSet]
	// derived marks the log offsets inserted through a derived path, one bit
	// per offset. Writer-only; kept even with provenance off so the deletion
	// fallback can separate base facts from inferences.
	derived []uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return NewGraphCap(0) }

// NewGraphCap returns an empty graph pre-sized for about n triples, which
// avoids log regrowth and index rehashing when bulk-loading (e.g. when
// aggregating worker outputs).
func NewGraphCap(n int) *Graph {
	g := &Graph{set: make(map[Triple]uint32, n)}
	if n > 0 {
		g.log.grow(n)
		g.byS.presize(n/4 + 1)
		g.byP.presize(64)
		g.byO.presize(n/4 + 1)
		g.bySP.presize(n)
		g.byPO.presize(n/2 + 1)
	}
	return g
}

// Grow pre-sizes the triple log for n additional triples. The posting lists
// grow incrementally regardless; the log is the bulk of the appended bytes,
// so reserving it up front is what the bulk-load paths (AddAll, Union)
// benefit from.
func (g *Graph) Grow(n int) {
	g.log.grow(n)
}

// Add inserts t and reports whether it was not already present. Writer-only.
//
// The log append is last deliberately: it publishes the new watermark, and a
// Snapshot pinned at watermark W must see every index entry for the triples
// below W. Appending the five postings — and, when recording, the provenance
// record — first makes the log length the commit point.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.addNew(t, baseDerivation(), false)
	return true
}

// addNew appends a triple known to be absent, with provenance record d when
// recording is on, marking the offset derived when the insert came through a
// derived path. Every insert path funnels through here so the publication
// order (postings, then provenance, then log commit) is stated once.
func (g *Graph) addNew(t Triple, d Derivation, derived bool) {
	off := uint32(g.log.length())
	g.set[t] = off
	g.byS.getOrCreate(key1(t.S)).append1(off)
	g.byP.getOrCreate(key1(t.P)).append1(off)
	g.byO.getOrCreate(key1(t.O)).append1(off)
	g.bySP.getOrCreate(key2(t.S, t.P)).append1(spEntry{Term: t.O, Off: off})
	g.byPO.getOrCreate(key2(t.P, t.O)).append1(spEntry{Term: t.S, Off: off})
	if derived {
		for int(off>>6) >= len(g.derived) {
			g.derived = append(g.derived, 0)
		}
		g.derived[off>>6] |= 1 << (off & 63)
	}
	if g.prov != nil {
		g.prov.recs.append1(d)
	}
	g.log.append1(t)
}

// AddAll inserts every triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	g.Grow(len(ts))
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Has reports whether t is in the graph. Writer-only (it reads the dedup
// map); concurrent readers use Snapshot.Has.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len reports the raw log length — the MVCC watermark, which counts
// tombstoned triples too. Use LiveLen for the live-triple count; the two
// agree until the first Delete. Safe from any goroutine.
func (g *Graph) Len() int { return g.log.length() }

// Triples returns all live triples in insertion order, as a fresh slice the
// caller may modify.
func (g *Graph) Triples() []Triple {
	v := g.log.view()
	dead := g.dead.Load()
	if dead.count() == 0 {
		out := make([]Triple, len(v))
		copy(out, v)
		return out
	}
	out := make([]Triple, 0, len(v)-dead.count())
	for i, t := range v {
		if !dead.has(uint32(i)) {
			out = append(out, t)
		}
	}
	return out
}

// TriplesSince returns a read-only view of the triples added at log offset n
// or later — the graph's delta since the caller last observed Len() == n.
// The log is append-only, so the view stays valid across later Adds, but the
// caller must not modify it; use Triples for an owned copy. The view is the
// raw log and therefore includes tombstoned triples — callers that mix
// deletions with watermark shipping must filter through IsLiveOffset. Safe
// from any goroutine.
func (g *Graph) TriplesSince(n int) []Triple {
	v := g.log.view()
	if n >= len(v) {
		return nil
	}
	return v[n:]
}

// SortedTriples returns all triples ordered by (S, P, O), for deterministic
// output.
func (g *Graph) SortedTriples() []Triple {
	out := g.Triples()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// cloneIndex rebuilds src's postings into dst: all lists land in a single
// flat backing buffer of exactly cap total (capacity-capped subslices, so a
// later append to any list reallocates instead of clobbering its
// neighbour), which costs one big allocation instead of one per key.
func cloneIndex[T any](dst, src *index[T], total int) {
	dst.presize(src.count)
	buf := make([]T, 0, total)
	src.forEach(func(k uint64, p *posting[T]) {
		v := p.view()
		start := len(buf)
		buf = append(buf, v...)
		seg := buf[start:len(buf):len(buf)]
		np := dst.getOrCreate(k)
		np.arr.Store(&seg)
		np.n.Store(uint32(len(seg)))
	})
}

// Clone returns a deep copy of the graph. It copies the log and the index
// posting lists directly — no per-triple re-insertion — so cloning costs a
// handful of bulk copies plus one table insert per distinct index key.
// Writer-only on g; the clone is a fresh graph owned by the caller.
func (g *Graph) Clone() *Graph {
	v := g.log.view()
	n := len(v)
	dead := g.dead.Load()
	c := &Graph{set: make(map[Triple]uint32, n)}
	c.log.grow(n)
	for i, t := range v {
		if !dead.has(uint32(i)) {
			c.set[t] = uint32(i)
		}
		c.log.append1(t)
	}
	// The tombstone set is immutable, so the clone shares it; the first
	// Delete on either graph copies on write. The derived bitmap is
	// writer-private and copied.
	if dead != nil {
		c.dead.Store(dead)
	}
	if len(g.derived) > 0 {
		c.derived = append([]uint64(nil), g.derived...)
	}
	if g.prov != nil {
		cp := &Prov{byName: make(map[string]uint16, len(g.prov.byName))}
		recs := g.prov.recs.view()
		cp.recs.grow(len(recs))
		for _, d := range recs {
			cp.recs.append1(d)
		}
		if names := g.prov.names.Load(); names != nil {
			nn := make([]string, len(*names))
			copy(nn, *names)
			cp.names.Store(&nn)
			for id, name := range nn {
				cp.byName[name] = uint16(id)
			}
		}
		if len(g.prov.alt) > 0 {
			cp.alt = make(map[uint32]Derivation, len(g.prov.alt))
			for off, d := range g.prov.alt {
				cp.alt[off] = d
			}
		}
		c.prov = cp
	}
	cloneIndex(&c.byS, &g.byS, n)
	cloneIndex(&c.byP, &g.byP, n)
	cloneIndex(&c.byO, &g.byO, n)
	cloneIndex(&c.bySP, &g.bySP, n)
	cloneIndex(&c.byPO, &g.byPO, n)
	return c
}

// ForEachMatch calls fn for every triple matching the pattern, where Wildcard
// in any position matches all terms. Iteration stops early if fn returns
// false. Iteration order is the insertion order of the matching triples. The
// graph must not be mutated during iteration; writer-only (the fully-bound
// case consults the dedup map) — concurrent readers use Snapshot.
//
//powl:allocfree every join probe of every engine lands here
func (g *Graph) ForEachMatch(s, p, o ID, fn func(Triple) bool) {
	dead := g.dead.Load()
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		t := Triple{s, p, o}
		if g.Has(t) {
			fn(t)
		}
	case s != Wildcard && p != Wildcard:
		for _, e := range g.bySP.get(key2(s, p)).entries() {
			if dead.has(e.Off) {
				continue
			}
			if !fn(Triple{s, p, e.Term}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, e := range g.byPO.get(key2(p, o)).entries() {
			if dead.has(e.Off) {
				continue
			}
			if !fn(Triple{e.Term, p, o}) {
				return
			}
		}
	case s != Wildcard && o != Wildcard:
		// Scan the shorter of the two posting lists; both sides index the
		// same log, so either yields exactly the (s,·,o) matches.
		log := g.log.view()
		if sl, ol := g.byS.get(key1(s)).entries(), g.byO.get(key1(o)).entries(); len(sl) <= len(ol) {
			for _, off := range sl {
				if dead.has(off) {
					continue
				}
				if t := log[off]; t.O == o && !fn(t) {
					return
				}
			}
		} else {
			for _, off := range ol {
				if dead.has(off) {
					continue
				}
				if t := log[off]; t.S == s && !fn(t) {
					return
				}
			}
		}
	case s != Wildcard:
		log := g.log.view()
		for _, off := range g.byS.get(key1(s)).entries() {
			if dead.has(off) {
				continue
			}
			if !fn(log[off]) {
				return
			}
		}
	case p != Wildcard:
		log := g.log.view()
		for _, off := range g.byP.get(key1(p)).entries() {
			if dead.has(off) {
				continue
			}
			if !fn(log[off]) {
				return
			}
		}
	case o != Wildcard:
		log := g.log.view()
		for _, off := range g.byO.get(key1(o)).entries() {
			if dead.has(off) {
				continue
			}
			if !fn(log[off]) {
				return
			}
		}
	default:
		for i, t := range g.log.view() {
			if dead.has(uint32(i)) {
				continue
			}
			if !fn(t) {
				return
			}
		}
	}
}

// entries returns the published posting view, tolerating a nil posting (key
// absent from the index).
func (p *posting[T]) entries() []T {
	if p == nil {
		return nil
	}
	return p.view()
}

// Match returns all triples matching the pattern as a slice.
func (g *Graph) Match(s, p, o ID) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them. Every pattern that lands on an index whose length is
// the answer — all but (s,·,o) — is O(1): the stored posting-list cardinality
// is returned directly. (s,·,o) scans the shorter of the two posting lists.
// The rule engines use this as the selectivity estimate for join ordering,
// so it must stay cheap for every pattern shape. Writer-only (the
// fully-bound case consults the dedup map).
//
// Once the graph has tombstones, the O(1) index-backed shapes become upper
// bounds (posting cardinalities count dead entries). That keeps the
// estimate sound for its two consumers — join ordering, and the "zero
// extent annihilates the join" early exit, which only needs that a zero is
// never reported for a nonempty extent. The fully-bound and (s,·,o) shapes
// stay exact.
//
//powl:allocfree selectivity ranking runs before every join level
func (g *Graph) CountMatch(s, p, o ID) int {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		if g.Has(Triple{s, p, o}) {
			return 1
		}
		return 0
	case s != Wildcard && p != Wildcard:
		return g.bySP.get(key2(s, p)).length()
	case p != Wildcard && o != Wildcard:
		return g.byPO.get(key2(p, o)).length()
	case s != Wildcard && o != Wildcard:
		n := 0
		dead := g.dead.Load()
		log := g.log.view()
		if sl, ol := g.byS.get(key1(s)).entries(), g.byO.get(key1(o)).entries(); len(sl) <= len(ol) {
			for _, off := range sl {
				if log[off].O == o && !dead.has(off) {
					n++
				}
			}
		} else {
			for _, off := range ol {
				if log[off].S == s && !dead.has(off) {
					n++
				}
			}
		}
		return n
	case s != Wildcard:
		return g.byS.get(key1(s)).length()
	case p != Wildcard:
		return g.byP.get(key1(p)).length()
	case o != Wildcard:
		return g.byO.get(key1(o)).length()
	default:
		return g.LiveLen()
	}
}

// Resources returns the set of IDs that appear as subject or object of some
// triple (the nodes of the RDF graph, excluding predicates).
func (g *Graph) Resources() map[ID]struct{} {
	v := g.log.view()
	dead := g.dead.Load()
	res := make(map[ID]struct{}, len(v)/2+1)
	for i, t := range v {
		if dead.has(uint32(i)) {
			continue
		}
		res[t.S] = struct{}{}
		res[t.O] = struct{}{}
	}
	return res
}

// Subjects returns the set of IDs appearing in subject position.
func (g *Graph) Subjects() map[ID]struct{} {
	v := g.log.view()
	dead := g.dead.Load()
	res := make(map[ID]struct{}, len(v)/4+1)
	for i, t := range v {
		if dead.has(uint32(i)) {
			continue
		}
		res[t.S] = struct{}{}
	}
	return res
}

// Union adds every triple of other into g and returns the number newly
// added. It walks other's log — deterministic order — and pre-sizes g's log
// for the incoming bulk. When both graphs record provenance, each absorbed
// triple carries its lineage across: the log walk guarantees premises land
// before their dependents, so offset translation succeeds. Writer-only on g.
func (g *Graph) Union(other *Graph) int {
	g.Grow(other.Len())
	dead := other.dead.Load()
	n := 0
	if g.prov != nil && other.prov != nil {
		for i, t := range other.log.view() {
			if dead.has(uint32(i)) {
				continue
			}
			if lin, ok := other.lineageAt(t, uint32(i)); ok {
				if g.AddWithLineage(t, lin) {
					n++
				}
			} else if g.Add(t) {
				n++
			}
		}
		return n
	}
	for i, t := range other.log.view() {
		if dead.has(uint32(i)) {
			continue
		}
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Equal reports whether g and other contain exactly the same live triples.
func (g *Graph) Equal(other *Graph) bool {
	if g.LiveLen() != other.LiveLen() {
		return false
	}
	dead := g.dead.Load()
	for i, t := range g.log.view() {
		if dead.has(uint32(i)) {
			continue
		}
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// Diff returns the live triples present in g but not in other, sorted.
func (g *Graph) Diff(other *Graph) []Triple {
	var out []Triple
	dead := g.dead.Load()
	for i, t := range g.log.view() {
		if dead.has(uint32(i)) {
			continue
		}
		if !other.Has(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
