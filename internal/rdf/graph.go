package rdf

import "sort"

// Graph is an in-memory triple store with set semantics and indexes for the
// access patterns rule engines need: by subject, predicate, object, and the
// composite (subject, predicate) and (predicate, object) keys.
//
// Graph is not safe for concurrent mutation; in powl each cluster worker owns
// its graph exclusively and exchanges triples by value.
type Graph struct {
	set  map[Triple]struct{}
	byS  map[ID][]Triple
	byP  map[ID][]Triple
	byO  map[ID][]Triple
	bySP map[[2]ID][]ID // objects for (s, p)
	byPO map[[2]ID][]ID // subjects for (p, o)
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return NewGraphCap(0) }

// NewGraphCap returns an empty graph pre-sized for about n triples, which
// avoids rehashing when bulk-loading (e.g. when aggregating worker outputs).
func NewGraphCap(n int) *Graph {
	return &Graph{
		set:  make(map[Triple]struct{}, n),
		byS:  make(map[ID][]Triple, n/4+1),
		byP:  make(map[ID][]Triple, 64),
		byO:  make(map[ID][]Triple, n/4+1),
		bySP: make(map[[2]ID][]ID, n),
		byPO: make(map[[2]ID][]ID, n/2+1),
	}
}

// Add inserts t and reports whether it was not already present.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	g.byS[t.S] = append(g.byS[t.S], t)
	g.byP[t.P] = append(g.byP[t.P], t)
	g.byO[t.O] = append(g.byO[t.O], t)
	g.bySP[[2]ID{t.S, t.P}] = append(g.bySP[[2]ID{t.S, t.P}], t.O)
	g.byPO[[2]ID{t.P, t.O}] = append(g.byPO[[2]ID{t.P, t.O}], t.S)
	return true
}

// AddAll inserts every triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Has reports whether t is in the graph.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len reports the number of triples.
func (g *Graph) Len() int { return len(g.set) }

// Triples returns all triples in unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	return out
}

// SortedTriples returns all triples ordered by (S, P, O), for deterministic
// output.
func (g *Graph) SortedTriples() []Triple {
	out := g.Triples()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for t := range g.set {
		c.Add(t)
	}
	return c
}

// ForEachMatch calls fn for every triple matching the pattern, where Wildcard
// in any position matches all terms. Iteration stops early if fn returns
// false. The graph must not be mutated during iteration.
func (g *Graph) ForEachMatch(s, p, o ID, fn func(Triple) bool) {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		t := Triple{s, p, o}
		if g.Has(t) {
			fn(t)
		}
	case s != Wildcard && p != Wildcard:
		for _, obj := range g.bySP[[2]ID{s, p}] {
			if !fn(Triple{s, p, obj}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, subj := range g.byPO[[2]ID{p, o}] {
			if !fn(Triple{subj, p, o}) {
				return
			}
		}
	case s != Wildcard && o != Wildcard:
		for _, t := range g.byS[s] {
			if t.O == o && !fn(t) {
				return
			}
		}
	case s != Wildcard:
		for _, t := range g.byS[s] {
			if !fn(t) {
				return
			}
		}
	case p != Wildcard:
		for _, t := range g.byP[p] {
			if !fn(t) {
				return
			}
		}
	case o != Wildcard:
		for _, t := range g.byO[o] {
			if !fn(t) {
				return
			}
		}
	default:
		for t := range g.set {
			if !fn(t) {
				return
			}
		}
	}
}

// Match returns all triples matching the pattern as a slice.
func (g *Graph) Match(s, p, o ID) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) CountMatch(s, p, o ID) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool {
		n++
		return true
	})
	return n
}

// Resources returns the set of IDs that appear as subject or object of some
// triple (the nodes of the RDF graph, excluding predicates).
func (g *Graph) Resources() map[ID]struct{} {
	res := make(map[ID]struct{})
	for t := range g.set {
		res[t.S] = struct{}{}
		res[t.O] = struct{}{}
	}
	return res
}

// Subjects returns the set of IDs appearing in subject position.
func (g *Graph) Subjects() map[ID]struct{} {
	res := make(map[ID]struct{})
	for t := range g.set {
		res[t.S] = struct{}{}
	}
	return res
}

// Union adds every triple of other into g and returns the number newly added.
func (g *Graph) Union(other *Graph) int {
	n := 0
	for t := range other.set {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Equal reports whether g and other contain exactly the same triples.
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for t := range g.set {
		if !other.Has(t) {
			return false
		}
	}
	return true
}

// Diff returns the triples present in g but not in other, sorted.
func (g *Graph) Diff(other *Graph) []Triple {
	var out []Triple
	for t := range g.set {
		if !other.Has(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
