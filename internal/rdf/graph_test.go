package rdf

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func tr(s, p, o ID) Triple { return Triple{S: s, P: p, O: o} }

func TestGraphAddAndHas(t *testing.T) {
	g := NewGraph()
	if !g.Add(tr(1, 2, 3)) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tr(1, 2, 3)) {
		t.Fatal("duplicate Add returned true")
	}
	if !g.Has(tr(1, 2, 3)) || g.Has(tr(3, 2, 1)) {
		t.Fatal("Has is wrong")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestGraphAddAllCountsNew(t *testing.T) {
	g := NewGraph()
	n := g.AddAll([]Triple{tr(1, 2, 3), tr(1, 2, 3), tr(4, 5, 6)})
	if n != 2 {
		t.Fatalf("AddAll = %d, want 2", n)
	}
}

// TestGraphMatchAllPatterns checks every wildcard combination against a
// brute-force scan.
func TestGraphMatchAllPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	var all []Triple
	for i := 0; i < 300; i++ {
		x := tr(ID(1+rng.Intn(10)), ID(1+rng.Intn(5)), ID(1+rng.Intn(10)))
		if g.Add(x) {
			all = append(all, x)
		}
	}
	brute := func(s, p, o ID) []Triple {
		var out []Triple
		for _, x := range all {
			if (s == Wildcard || x.S == s) && (p == Wildcard || x.P == p) && (o == Wildcard || x.O == o) {
				out = append(out, x)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
	patterns := [][3]ID{}
	for _, s := range []ID{Wildcard, 3, 99} {
		for _, p := range []ID{Wildcard, 2, 99} {
			for _, o := range []ID{Wildcard, 7, 99} {
				patterns = append(patterns, [3]ID{s, p, o})
			}
		}
	}
	for _, pat := range patterns {
		got := g.Match(pat[0], pat[1], pat[2])
		sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
		want := brute(pat[0], pat[1], pat[2])
		if len(got) != len(want) {
			t.Fatalf("pattern %v: got %d matches, want %d", pat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern %v: got[%d] = %v, want %v", pat, i, got[i], want[i])
			}
		}
		if n := g.CountMatch(pat[0], pat[1], pat[2]); n != len(want) {
			t.Fatalf("pattern %v: CountMatch = %d, want %d", pat, n, len(want))
		}
	}
}

func TestGraphForEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := ID(1); i <= 10; i++ {
		g.Add(tr(i, 1, i))
	}
	n := 0
	g.ForEachMatch(Wildcard, 1, Wildcard, func(Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("iteration visited %d triples after early stop, want 3", n)
	}
}

func TestGraphSortedTriplesIsDeterministic(t *testing.T) {
	g := NewGraph()
	g.Add(tr(2, 1, 1))
	g.Add(tr(1, 2, 1))
	g.Add(tr(1, 1, 2))
	got := g.SortedTriples()
	want := []Triple{tr(1, 1, 2), tr(1, 2, 1), tr(2, 1, 1)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedTriples[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	c := g.Clone()
	c.Add(tr(4, 5, 6))
	if g.Has(tr(4, 5, 6)) {
		t.Fatal("mutating the clone affected the original")
	}
	if !c.Has(tr(1, 2, 3)) {
		t.Fatal("clone lost a triple")
	}
}

func TestGraphUnionAndEqual(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Add(tr(1, 2, 3))
	b.Add(tr(1, 2, 3))
	b.Add(tr(4, 5, 6))
	if a.Equal(b) {
		t.Fatal("Equal true for different graphs")
	}
	if n := a.Union(b); n != 1 {
		t.Fatalf("Union added %d, want 1", n)
	}
	if !a.Equal(b) {
		t.Fatal("Equal false after union")
	}
}

func TestGraphDiff(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Add(tr(1, 2, 3))
	a.Add(tr(4, 5, 6))
	b.Add(tr(1, 2, 3))
	d := a.Diff(b)
	if len(d) != 1 || d[0] != tr(4, 5, 6) {
		t.Fatalf("Diff = %v", d)
	}
	if len(b.Diff(a)) != 0 {
		t.Fatal("Diff of subset must be empty")
	}
}

func TestGraphResourcesAndSubjects(t *testing.T) {
	g := NewGraph()
	g.Add(tr(1, 2, 3))
	g.Add(tr(3, 2, 4))
	res := g.Resources()
	for _, id := range []ID{1, 3, 4} {
		if _, ok := res[id]; !ok {
			t.Fatalf("Resources missing %d", id)
		}
	}
	if _, ok := res[2]; ok {
		t.Fatal("Resources must not include predicates")
	}
	subj := g.Subjects()
	if len(subj) != 2 {
		t.Fatalf("Subjects = %v", subj)
	}
}

// TestGraphIndexConsistencyProperty: after any sequence of adds, every
// triple is findable through every index path.
func TestGraphIndexConsistencyProperty(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		g := NewGraph()
		var all []Triple
		for _, r := range raw {
			x := tr(ID(r[0])+1, ID(r[1])+1, ID(r[2])+1)
			if g.Add(x) {
				all = append(all, x)
			}
		}
		if g.Len() != len(all) {
			return false
		}
		for _, x := range all {
			if !g.Has(x) {
				return false
			}
			for _, pat := range [][3]ID{
				{x.S, x.P, x.O},
				{x.S, x.P, Wildcard},
				{Wildcard, x.P, x.O},
				{x.S, Wildcard, x.O},
				{x.S, Wildcard, Wildcard},
				{Wildcard, x.P, Wildcard},
				{Wildcard, Wildcard, x.O},
			} {
				found := false
				g.ForEachMatch(pat[0], pat[1], pat[2], func(y Triple) bool {
					if y == x {
						found = true
						return false
					}
					return true
				})
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
