package rdf

import (
	"math/rand"
	"sort"
	"testing"
)

// graphModel is the reference implementation the property test checks the
// compact store against: a plain triple set with brute-force matching.
type graphModel map[Triple]struct{}

func (m graphModel) add(t Triple) {
	m[t] = struct{}{}
}

func (m graphModel) countMatch(s, p, o ID) int {
	n := 0
	for t := range m {
		if (s == Wildcard || t.S == s) && (p == Wildcard || t.P == p) && (o == Wildcard || t.O == o) {
			n++
		}
	}
	return n
}

func (m graphModel) sorted() []Triple {
	out := make([]Triple, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func randTriple(rng *rand.Rand) Triple {
	return Triple{
		S: ID(1 + rng.Intn(24)),
		P: ID(1 + rng.Intn(8)),
		O: ID(1 + rng.Intn(24)),
	}
}

// checkCoherent verifies every read-side invariant of g against the model:
// cardinality, membership, log contents, match extents, and count/match
// agreement for all eight pattern shapes.
func checkCoherent(t *testing.T, g *Graph, m graphModel, rng *rand.Rand) {
	t.Helper()
	if g.Len() != len(m) {
		t.Fatalf("Len = %d, model has %d", g.Len(), len(m))
	}
	got := g.Triples()
	sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
	want := m.sorted()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Triples()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := g.TriplesSince(0); len(v) != len(m) {
		t.Fatalf("TriplesSince(0) has %d triples, want %d", len(v), len(m))
	}
	// Probe membership with both present and (mostly) absent triples.
	for i := 0; i < 16; i++ {
		pt := randTriple(rng)
		_, inModel := m[pt]
		if g.Has(pt) != inModel {
			t.Fatalf("Has(%v) = %v, model says %v", pt, !inModel, inModel)
		}
	}
	if len(want) > 0 {
		pt := want[rng.Intn(len(want))]
		if !g.Has(pt) {
			t.Fatalf("Has(%v) = false for stored triple", pt)
		}
	}
	// All eight pattern shapes: each position independently bound/wild.
	probe := randTriple(rng)
	if len(want) > 0 && rng.Intn(2) == 0 {
		probe = want[rng.Intn(len(want))] // bias toward non-empty extents
	}
	for mask := 0; mask < 8; mask++ {
		s, p, o := Wildcard, Wildcard, Wildcard
		if mask&1 != 0 {
			s = probe.S
		}
		if mask&2 != 0 {
			p = probe.P
		}
		if mask&4 != 0 {
			o = probe.O
		}
		wantN := m.countMatch(s, p, o)
		if gotN := g.CountMatch(s, p, o); gotN != wantN {
			t.Fatalf("CountMatch(%d,%d,%d) = %d, want %d", s, p, o, gotN, wantN)
		}
		seen := map[Triple]struct{}{}
		g.ForEachMatch(s, p, o, func(tr Triple) bool {
			if _, dup := seen[tr]; dup {
				t.Fatalf("ForEachMatch(%d,%d,%d) yielded %v twice", s, p, o, tr)
			}
			seen[tr] = struct{}{}
			if _, ok := m[tr]; !ok {
				t.Fatalf("ForEachMatch(%d,%d,%d) yielded %v not in model", s, p, o, tr)
			}
			if (s != Wildcard && tr.S != s) || (p != Wildcard && tr.P != p) || (o != Wildcard && tr.O != o) {
				t.Fatalf("ForEachMatch(%d,%d,%d) yielded non-matching %v", s, p, o, tr)
			}
			return true
		})
		if len(seen) != wantN {
			t.Fatalf("ForEachMatch(%d,%d,%d) yielded %d triples, want %d", s, p, o, len(seen), wantN)
		}
	}
}

// TestGraphPropertyCoherence drives randomized interleavings of
// Add/AddAll/Union/Clone against the reference model and checks after every
// operation that the set, the log, and all the posting-list indexes agree.
// Clone switches the walk onto the copy and later re-verifies the original,
// so mutations of a clone must never leak backing arrays into its source.
func TestGraphPropertyCoherence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		m := graphModel{}
		// Snapshots taken at Clone points: the original graph and a frozen
		// copy of its model, re-checked at the end for leaked mutations.
		type snap struct {
			g *Graph
			m graphModel
		}
		var snaps []snap
		for step := 0; step < 120; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // Add one
				tr := randTriple(rng)
				_, had := m[tr]
				if added := g.Add(tr); added == had {
					t.Fatalf("seed %d step %d: Add(%v) = %v, model had %v", seed, step, tr, added, had)
				}
				m.add(tr)
			case op < 6: // AddAll a batch
				batch := make([]Triple, rng.Intn(20))
				for i := range batch {
					batch[i] = randTriple(rng)
				}
				g.AddAll(batch)
				for _, tr := range batch {
					m.add(tr)
				}
			case op < 8: // Union with a random other graph
				other := NewGraph()
				for i, k := 0, rng.Intn(25); i < k; i++ {
					other.Add(randTriple(rng))
				}
				g.Union(other)
				for _, tr := range other.Triples() {
					m.add(tr)
				}
			default: // Clone and continue on the copy
				fm := graphModel{}
				for tr := range m {
					fm.add(tr)
				}
				snaps = append(snaps, snap{g: g, m: fm})
				g = g.Clone()
			}
			checkCoherent(t, g, m, rng)
		}
		// The clones diverged after the snapshots; the originals must not
		// have moved.
		for i, s := range snaps {
			checkCoherent(t, s.g, s.m, rng)
			if i > 20 {
				break
			}
		}
	}
}

// TestGraphTriplesSinceView pins the read-only-view contract: the slice
// returned by TriplesSince must stay valid and unchanged while the graph
// keeps growing (the log is append-only, never moved in place).
func TestGraphTriplesSinceView(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.Add(randTriple(rng))
	}
	mark := g.Len()
	var fresh []Triple
	for len(fresh) < 30 {
		tr := randTriple(rng)
		if g.Add(tr) {
			fresh = append(fresh, tr)
		}
	}
	view := g.TriplesSince(mark)
	if len(view) != len(fresh) {
		t.Fatalf("TriplesSince(%d) has %d triples, want %d", mark, len(view), len(fresh))
	}
	for i := range fresh {
		if view[i] != fresh[i] {
			t.Fatalf("view[%d] = %v, want %v (log must preserve insertion order)", i, view[i], fresh[i])
		}
	}
	// Growing the graph afterwards must not disturb the captured view.
	before := append([]Triple(nil), view...)
	for i := 0; i < 500; i++ {
		g.Add(randTriple(rng))
	}
	for i := range before {
		if view[i] != before[i] {
			t.Fatalf("view[%d] changed from %v to %v after growth", i, before[i], view[i])
		}
	}
}
