package rdf

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictInternAssignsDenseIDs(t *testing.T) {
	d := NewDict()
	a := d.InternIRI("http://example.org/a")
	b := d.InternIRI("http://example.org/b")
	if a != 1 || b != 2 {
		t.Fatalf("expected IDs 1,2; got %d,%d", a, b)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictInternIsIdempotent(t *testing.T) {
	d := NewDict()
	a := d.InternIRI("http://example.org/a")
	if again := d.InternIRI("http://example.org/a"); again != a {
		t.Fatalf("re-intern returned %d, want %d", again, a)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDictKindsAreDistinct(t *testing.T) {
	d := NewDict()
	iri := d.InternIRI("x")
	lit := d.InternLiteral("x")
	blank := d.InternBlank("x")
	if iri == lit || lit == blank || iri == blank {
		t.Fatalf("same value in different kinds must get distinct IDs: %d %d %d", iri, lit, blank)
	}
}

func TestDictTermRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{
		{Kind: IRI, Value: "http://example.org/x"},
		{Kind: Literal, Value: `"hello"`},
		{Kind: Literal, Value: `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{Kind: Blank, Value: "b0"},
	}
	for _, tm := range terms {
		id := d.Intern(tm)
		if got := d.Term(id); got != tm {
			t.Errorf("Term(Intern(%v)) = %v", tm, got)
		}
	}
}

func TestDictLookupDoesNotIntern(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup(Term{Kind: IRI, Value: "missing"}); ok {
		t.Fatal("Lookup found a term that was never interned")
	}
	if d.Len() != 0 {
		t.Fatalf("Lookup interned a term; Len = %d", d.Len())
	}
	id := d.InternIRI("present")
	got, ok := d.Lookup(Term{Kind: IRI, Value: "present"})
	if !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
}

func TestDictTermPanicsOnWildcard(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Fatal("Term(Wildcard) did not panic")
		}
	}()
	d.Term(Wildcard)
}

func TestDictTermPanicsOutOfRange(t *testing.T) {
	d := NewDict()
	d.InternIRI("only")
	defer func() {
		if recover() == nil {
			t.Fatal("Term(99) did not panic")
		}
	}()
	d.Term(99)
}

// TestDictConcurrentIntern hammers the dictionary from many goroutines and
// checks the intern/lookup bijection afterwards.
func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// Heavy overlap across goroutines: only 100 distinct terms.
				ids[g][i] = d.InternIRI(fmt.Sprintf("http://x/%d", i%100))
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	// All goroutines must have observed identical IDs per term.
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d saw ID %d for term %d, goroutine 0 saw %d", g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

// TestDictBijectionProperty property-tests that Intern∘Term is the identity
// for arbitrary term values.
func TestDictBijectionProperty(t *testing.T) {
	d := NewDict()
	f := func(value string, kind uint8) bool {
		tm := Term{Kind: TermKind(kind % 3), Value: value}
		id := d.Intern(tm)
		return d.Term(id) == tm && d.Intern(tm) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Term{Kind: IRI, Value: "http://x/a"}, "<http://x/a>"},
		{Term{Kind: Blank, Value: "b1"}, "_:b1"},
		{Term{Kind: Literal, Value: `"v"`}, `"v"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Error("TermKind.String misnames a kind")
	}
	if TermKind(9).String() != "TermKind(9)" {
		t.Errorf("unknown kind printed as %q", TermKind(9).String())
	}
}

func TestFormatTriple(t *testing.T) {
	d := NewDict()
	s := d.InternIRI("http://x/s")
	p := d.InternIRI("http://x/p")
	o := d.InternLiteral(`"v"`)
	got := d.FormatTriple(Triple{s, p, o})
	want := `<http://x/s> <http://x/p> "v"`
	if got != want {
		t.Fatalf("FormatTriple = %q, want %q", got, want)
	}
}

func TestTripleLess(t *testing.T) {
	a := Triple{1, 2, 3}
	if !a.Less(Triple{2, 0, 0}) || !a.Less(Triple{1, 3, 0}) || !a.Less(Triple{1, 2, 4}) {
		t.Error("Less misorders on some position")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}
