package rdf

import (
	"fmt"
	"io"
	"strings"
)

// ExplainNode is one node of a derivation DAG: the triple, how it came to be
// (rule name, or "" for an asserted triple), and the sub-DAGs of its
// premises. Nodes for the same log offset are shared, so diamond-shaped
// derivations stay DAGs rather than exploding into trees.
type ExplainNode struct {
	Triple    Triple
	Off       uint32
	Rule      string // "" = asserted (base) triple
	Round     int
	Premises  []*ExplainNode
	Truncated bool // depth bound hit: premises omitted
}

// IsDerived reports whether the node was produced by a rule.
func (n *ExplainNode) IsDerived() bool { return n.Rule != "" }

// DefaultExplainDepth bounds Explain's recursion when callers pass depth<=0.
const DefaultExplainDepth = 16

// offsetOf resolves t to its log offset without touching the writer's dedup
// map: it scans the shorter of the two pinned two-bound posting prefixes,
// which carry the offset column. ok is false when t is not visible.
func (s Snapshot) offsetOf(t Triple) (uint32, bool) {
	w := uint32(len(s.log))
	sp := cutEntries(s.g.bySP.get(key2(t.S, t.P)).entries(), w)
	po := cutEntries(s.g.byPO.get(key2(t.P, t.O)).entries(), w)
	if len(sp) <= len(po) {
		for _, e := range sp {
			if e.Term == t.O && !s.dead.has(e.Off) {
				return e.Off, true
			}
		}
	} else {
		for _, e := range po {
			if e.Term == t.S && !s.dead.has(e.Off) {
				return e.Off, true
			}
		}
	}
	return 0, false
}

// Explain reconstructs the derivation DAG of t down to maxDepth levels of
// premises (maxDepth <= 0 means DefaultExplainDepth). ok is false when t is
// not visible in the snapshot or the graph records no provenance. Safe from
// any goroutine: offsets are resolved through pinned posting prefixes and
// provenance records below the watermark are immutable.
//
// Recorded premise offsets are always strictly below the derived triple's
// own offset (premises are in the log before their consequence is appended),
// so the DAG is acyclic by construction even for sameAs-style mutual
// derivations — each direction's record points at the earlier occurrence. A
// visited guard still bounds the walk defensively against corrupt columns.
func (s Snapshot) Explain(t Triple, maxDepth int) (*ExplainNode, bool) {
	if s.g.prov == nil {
		return nil, false
	}
	off, ok := s.offsetOf(t)
	if !ok {
		return nil, false
	}
	if maxDepth <= 0 {
		maxDepth = DefaultExplainDepth
	}
	b := &explainBuilder{s: s, done: make(map[uint32]*ExplainNode), onPath: make(map[uint32]bool)}
	return b.build(off, maxDepth), true
}

// Explain is the writer-side convenience: it pins a snapshot and explains t
// within it.
func (g *Graph) Explain(t Triple, maxDepth int) (*ExplainNode, bool) {
	return g.Snapshot().Explain(t, maxDepth)
}

type explainBuilder struct {
	s      Snapshot
	done   map[uint32]*ExplainNode // fully expanded nodes, shared across the DAG
	onPath map[uint32]bool         // defensive cycle guard
}

// build returns the node for log offset off, expanding premises while depth
// lasts. Only fully expanded subtrees are memoized, so a node truncated deep
// in one branch can still be fully expanded when reached along a shorter
// path.
func (b *explainBuilder) build(off uint32, depth int) *ExplainNode {
	if n, ok := b.done[off]; ok {
		return n
	}
	t := b.s.log[off]
	d := b.s.g.prov.At(off)
	n := &ExplainNode{Triple: t, Off: off, Round: int(d.Round)}
	if !d.IsDerived() {
		n.Round = 0
		b.done[off] = n
		return n
	}
	n.Rule = b.s.g.prov.RuleName(d.Rule)
	if depth <= 1 {
		n.Truncated = true
		return n
	}
	b.onPath[off] = true
	complete := true
	for _, p := range d.Prem {
		// A tombstoned premise offset can only be observed transiently
		// (mid-retraction, before rederivation restores the fixpoint);
		// treat it like NoPremise rather than explaining a dead triple.
		if p == NoPremise || int(p) >= len(b.s.log) || b.s.dead.has(p) || b.onPath[p] {
			continue
		}
		pn := b.build(p, depth-1)
		n.Premises = append(n.Premises, pn)
		if pn.Truncated || !b.isDone(pn) {
			complete = false
		}
	}
	delete(b.onPath, off)
	if complete {
		b.done[off] = n
	}
	return n
}

func (b *explainBuilder) isDone(n *ExplainNode) bool {
	return b.done[n.Off] == n
}

// ExplainDoc is the JSON-ready form of an ExplainNode, with terms rendered
// in N-Triples surface syntax.
type ExplainDoc struct {
	Triple    string        `json:"triple"`
	Rule      string        `json:"rule,omitempty"`
	Round     int           `json:"round,omitempty"`
	Premises  []*ExplainDoc `json:"premises,omitempty"`
	Truncated bool          `json:"truncated,omitempty"`
}

// NewExplainDoc renders the DAG into its JSON form. Shared nodes are
// expanded per reference (JSON has no aliasing), which is fine under the
// depth bound.
func NewExplainDoc(dict *Dict, n *ExplainNode) *ExplainDoc {
	if n == nil {
		return nil
	}
	doc := &ExplainDoc{
		Triple:    dict.FormatTriple(n.Triple),
		Rule:      n.Rule,
		Round:     n.Round,
		Truncated: n.Truncated,
	}
	for _, p := range n.Premises {
		doc.Premises = append(doc.Premises, NewExplainDoc(dict, p))
	}
	return doc
}

// WriteExplainText renders the DAG as an indented text tree:
//
//	<.. Professor> ... [rule rdfs9, round 2]
//	├─ <.. AssociateProfessor> ... [asserted]
//	└─ <.. subClassOf ..> [asserted]
func WriteExplainText(w io.Writer, dict *Dict, n *ExplainNode) error {
	return writeExplainNode(w, dict, n, "", "")
}

func writeExplainNode(w io.Writer, dict *Dict, n *ExplainNode, lead, childLead string) error {
	tag := "[asserted]"
	if n.IsDerived() {
		tag = fmt.Sprintf("[rule %s, round %d]", n.Rule, n.Round)
		if n.Truncated {
			tag += " [premises truncated]"
		}
	}
	if _, err := fmt.Fprintf(w, "%s%s . %s\n", lead, dict.FormatTriple(n.Triple), tag); err != nil {
		return err
	}
	for i, p := range n.Premises {
		branch, next := "├─ ", "│  "
		if i == len(n.Premises)-1 {
			branch, next = "└─ ", "   "
		}
		if err := writeExplainNode(w, dict, p, childLead+branch, childLead+next); err != nil {
			return err
		}
	}
	return nil
}

// ExplainString is WriteExplainText into a string, for CLI and test use.
func ExplainString(dict *Dict, n *ExplainNode) string {
	var sb strings.Builder
	_ = WriteExplainText(&sb, dict, n)
	return sb.String()
}
