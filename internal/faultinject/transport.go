package faultinject

import (
	"context"

	"powl/internal/rdf"
	"powl/internal/transport"
)

// Transport wraps t so that every Send/Recv first consults the injector.
// Compose with transport.NewRetry to exercise the recovery path:
//
//	tr := transport.NewRetry(faultinject.Transport(inner, inj), transport.RetryConfig{})
type Transport struct {
	Inner transport.Transport
	Inj   *Injector
}

// Name implements transport.Transport.
func (f *Transport) Name() string { return f.Inner.Name() + "+fault" }

// Send implements transport.Transport.
func (f *Transport) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if err := f.Inj.Send(); err != nil {
		return err
	}
	return f.Inner.Send(ctx, round, from, to, ts)
}

// Recv implements transport.Transport.
func (f *Transport) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := f.Inj.Recv(); err != nil {
		return nil, err
	}
	return f.Inner.Recv(ctx, round, to)
}

// Close implements transport.Transport.
func (f *Transport) Close() error { return f.Inner.Close() }
