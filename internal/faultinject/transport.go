package faultinject

import (
	"context"
	"time"

	"powl/internal/rdf"
	"powl/internal/transport"
)

// Transport wraps t so that every Send/Recv first consults the injector.
// Compose with transport.NewRetry to exercise the recovery path:
//
//	tr := transport.NewRetry(faultinject.Transport(inner, inj), transport.RetryConfig{})
type Transport struct {
	Inner transport.Transport
	Inj   *Injector
}

// Name implements transport.Transport.
func (f *Transport) Name() string { return f.Inner.Name() + "+fault" }

// Send implements transport.Transport. A scheduled connection drop
// (DropRound/DropFrom/DropTo) is applied to the inner transport's
// LinkDropper just before the matching send, so the send itself runs over
// the severed link and must reconnect.
func (f *Transport) Send(ctx context.Context, round, from, to int, ts []rdf.Triple) error {
	if f.Inj.DropConn(round, from, to) {
		if d, ok := f.Inner.(transport.LinkDropper); ok {
			d.DropLink(from, to)
		}
	}
	if err := f.Inj.Send(); err != nil {
		return err
	}
	return f.Inner.Send(ctx, round, from, to, ts)
}

// Recv implements transport.Transport.
func (f *Transport) Recv(ctx context.Context, round, to int) ([]rdf.Triple, error) {
	if err := f.Inj.Recv(); err != nil {
		return nil, err
	}
	return f.Inner.Recv(ctx, round, to)
}

// Close implements transport.Transport.
func (f *Transport) Close() error { return f.Inner.Close() }

// DropLink forwards to the inner transport's LinkDropper, if any.
func (f *Transport) DropLink(from, to int) bool {
	if d, ok := f.Inner.(transport.LinkDropper); ok {
		return d.DropLink(from, to)
	}
	return false
}

// Health forwards to the inner transport's HealthReporter, if any.
func (f *Transport) Health() map[int]time.Time {
	if h, ok := f.Inner.(transport.HealthReporter); ok {
		return h.Health()
	}
	return nil
}
