package faultinject

import (
	"errors"
	"testing"
	"time"

	"powl/internal/transport"
)

func TestNthCallTriggers(t *testing.T) {
	in := New(Config{SendNth: 3, RecvNth: 2})
	for i := 1; i <= 5; i++ {
		err := in.Send()
		if (i == 3) != (err != nil) {
			t.Fatalf("send %d: err=%v", i, err)
		}
	}
	for i := 1; i <= 4; i++ {
		err := in.Recv()
		if (i == 2) != (err != nil) {
			t.Fatalf("recv %d: err=%v", i, err)
		}
	}
	if in.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", in.Faults())
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(Config{Seed: 99, SendProb: 0.5})
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.Send() != nil
		}
		return out
	}
	a, b := run(), run()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("p=0.5 produced %d/%d failures", failed, len(a))
	}
}

func TestMaxFaultsCapsSchedule(t *testing.T) {
	in := New(Config{Seed: 1, SendProb: 1, MaxFaults: 3})
	failed := 0
	for i := 0; i < 20; i++ {
		if in.Send() != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("injected %d faults, cap was 3", failed)
	}
}

func TestFaultIsTransient(t *testing.T) {
	in := New(Config{SendNth: 1})
	err := in.Send()
	var f *Fault
	if !errors.As(err, &f) || !f.Transient() {
		t.Fatalf("injected fault not transient: %v", err)
	}
	if !transport.DefaultClassify(err) {
		t.Fatal("DefaultClassify should retry injected faults")
	}
}

func TestCrashRound(t *testing.T) {
	in := New(Config{CrashRound: 2})
	if in.Crash(0) {
		t.Fatal("crash=2 must survive round 0")
	}
	if !in.Crash(1) || !in.Crash(5) {
		t.Fatal("crash=2 must die from round 1 on")
	}
	var none *Injector
	if none.Crash(0) {
		t.Fatal("nil injector crashed")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,send=0.25,recv=0.5,sendnth=3,max=10,delay=5ms,delayp=0.3,crash=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, SendProb: 0.25, RecvProb: 0.5, SendNth: 3,
		MaxFaults: 10, Delay: 5 * time.Millisecond, DelayProb: 0.3, CrashRound: 2}
	if cfg != want {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("send"); err == nil {
		t.Fatal("missing value accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
}

func TestDropConnSchedule(t *testing.T) {
	inj := New(Config{DropRound: 2, DropFrom: 0, DropTo: 1})
	if inj.DropConn(0, 0, 1) {
		t.Fatal("drop fired before its round")
	}
	if inj.DropConn(1, 2, 1) || inj.DropConn(1, 0, 2) {
		t.Fatal("drop fired on the wrong pair")
	}
	if !inj.DropConn(1, 0, 1) {
		t.Fatal("drop did not fire at its round on its pair")
	}
	if inj.DropConn(1, 0, 1) || inj.DropConn(5, 0, 1) {
		t.Fatal("drop fired twice")
	}
	if !inj.DropConnFired() {
		t.Fatal("DropConnFired not recorded")
	}
	if inj.Faults() != 1 {
		t.Fatalf("drop not counted as a fault: %d", inj.Faults())
	}
	var nilInj *Injector
	if nilInj.DropConn(1, 0, 1) {
		t.Fatal("nil injector dropped a connection")
	}
}

func TestParseSpecDropKeys(t *testing.T) {
	cfg, err := ParseSpec("drop=3,dropfrom=1,dropto=2,crash=4")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DropRound != 3 || cfg.DropFrom != 1 || cfg.DropTo != 2 || cfg.CrashRound != 4 {
		t.Fatalf("spec mis-parsed: %+v", cfg)
	}
}
