// Package faultinject provides deterministic fault injection for the
// parallel reasoner's communication layer. An Injector decides, per
// operation, whether to fail it, delay it, or crash the whole node, driven
// by a seeded random source plus exact nth-call triggers — so a failing
// schedule found by a seed sweep can be replayed bit-for-bit.
//
// The injected Fault error reports itself as transient
// (`Transient() bool`), which is exactly the class transport.Retry
// re-attempts: a run wired as faultinject → Retry → real transport
// exercises the full recovery path. Both the test suites and the `-fault`
// flag of cmd/owlcluster / cmd/owlnode consume this package.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config describes a fault schedule.
type Config struct {
	// Seed seeds the probability draws; the same seed and call sequence
	// reproduce the same faults.
	Seed int64
	// SendProb / RecvProb are per-call probabilities of injecting a
	// transient fault into Send / Recv.
	SendProb, RecvProb float64
	// SendNth / RecvNth fail exactly the nth (1-based) Send / Recv call,
	// independent of the probability draws; 0 disables.
	SendNth, RecvNth int
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	// Tests set it so a bounded-retry run is guaranteed to outlast the
	// schedule.
	MaxFaults int
	// Delay is added to an operation with probability DelayProb, modelling
	// slow links and shared-FS stalls.
	Delay     time.Duration
	DelayProb float64
	// CrashRound, if > 0, makes Crash(round) report true from that round
	// on — a fail-stop node death for the fscluster recovery path.
	CrashRound int
	// DropRound, if > 0, makes DropConn fire once when a send of that round
	// (1-based, same convention as CrashRound: drop=2 severs during the
	// second round) matches the DropFrom->DropTo pair. The cluster layer
	// relays the drop to the transport's LinkDropper, severing a live
	// connection mid-run so the reconnect path is exercised.
	DropRound int
	// DropFrom / DropTo select the ordered pair whose link DropRound severs.
	DropFrom, DropTo int
}

// Fault is an injected transient error.
type Fault struct {
	Op   string // "send" or "recv"
	Call int    // 1-based call number that was failed
}

// Error implements error.
func (f *Fault) Error() string { return fmt.Sprintf("faultinject: %s call %d failed", f.Op, f.Call) }

// Transient marks injected faults as retryable for transport.Classify.
func (f *Fault) Transient() bool { return true }

// Injector applies a Config. All methods are safe for concurrent use.
type Injector struct {
	cfg Config

	mu           sync.Mutex
	rng          *rand.Rand
	sends, recvs int
	faults       int
	dropped      bool
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Send decides the fate of the next send: it may sleep an injected delay,
// then returns either nil or a *Fault.
func (in *Injector) Send() error { return in.op("send") }

// Recv decides the fate of the next receive.
func (in *Injector) Recv() error { return in.op("recv") }

// Crash reports whether a node should fail-stop in the given (0-based)
// round: true from round CrashRound-1 on, so crash=1 dies before doing any
// work and crash=2 dies after completing one round.
func (in *Injector) Crash(round int) bool {
	return in != nil && in.cfg.CrashRound > 0 && round >= in.cfg.CrashRound-1
}

// DropConn reports whether the from->to link should be severed before the
// given (0-based) round's send — true exactly once, when the schedule's
// DropRound has been reached and the pair matches. The caller is expected
// to relay a true answer to the transport's DropLink.
func (in *Injector) DropConn(round, from, to int) bool {
	if in == nil || in.cfg.DropRound <= 0 {
		return false
	}
	if round < in.cfg.DropRound-1 || from != in.cfg.DropFrom || to != in.cfg.DropTo {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dropped {
		return false
	}
	in.dropped = true
	in.faults++
	return true
}

// DropConnFired reports whether the scheduled connection drop has fired.
func (in *Injector) DropConnFired() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

// Faults reports how many faults have been injected so far.
func (in *Injector) Faults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

func (in *Injector) op(op string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var call int
	var nth int
	var prob float64
	switch op {
	case "send":
		in.sends++
		call, nth, prob = in.sends, in.cfg.SendNth, in.cfg.SendProb
	default:
		in.recvs++
		call, nth, prob = in.recvs, in.cfg.RecvNth, in.cfg.RecvProb
	}
	delay := time.Duration(0)
	if in.cfg.Delay > 0 && in.rng.Float64() < in.cfg.DelayProb {
		delay = in.cfg.Delay
	}
	fail := call == nth
	if !fail && prob > 0 && in.rng.Float64() < prob {
		fail = in.cfg.MaxFaults == 0 || in.faults < in.cfg.MaxFaults
	}
	if fail {
		in.faults++
	}
	in.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return &Fault{Op: op, Call: call}
	}
	return nil
}

// ParseSpec parses the comma-separated key=value syntax of the -fault flag:
//
//	seed=7,send=0.1,recv=0.05,sendnth=3,recvnth=0,max=10,delay=5ms,delayp=0.3,crash=2,drop=2,dropfrom=0,dropto=1
//
// Unknown keys are an error; an empty spec is the zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "send":
			cfg.SendProb, err = strconv.ParseFloat(v, 64)
		case "recv":
			cfg.RecvProb, err = strconv.ParseFloat(v, 64)
		case "sendnth":
			cfg.SendNth, err = strconv.Atoi(v)
		case "recvnth":
			cfg.RecvNth, err = strconv.Atoi(v)
		case "max":
			cfg.MaxFaults, err = strconv.Atoi(v)
		case "delay":
			cfg.Delay, err = time.ParseDuration(v)
		case "delayp":
			cfg.DelayProb, err = strconv.ParseFloat(v, 64)
		case "crash":
			cfg.CrashRound, err = strconv.Atoi(v)
		case "drop":
			cfg.DropRound, err = strconv.Atoi(v)
		case "dropfrom":
			cfg.DropFrom, err = strconv.Atoi(v)
		case "dropto":
			cfg.DropTo, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: %s: %w", k, err)
		}
	}
	return cfg, nil
}
