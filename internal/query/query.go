// Package query implements a small SPARQL-subset query engine over
// materialized graphs: basic graph patterns (BGP) with SELECT/DISTINCT/
// LIMIT. Materialized knowledge bases exist to make queries cheap (the
// trade-off the paper's introduction motivates: reasoning is paid at load
// time so queries need no inference); this package is the consumer side of
// that trade-off and is used by the examples and tests to interrogate
// closures.
//
// Supported syntax:
//
//	PREFIX ub: <http://benchmark.powl/lubm#>
//	SELECT DISTINCT ?x ?d WHERE {
//	    ?x a ub:Professor .
//	    ?x ub:worksFor ?d .
//	} LIMIT 10
//
// `a` abbreviates rdf:type. SELECT * selects all variables in order of
// first appearance.
package query

import (
	"fmt"
	"sort"
	"strings"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// Query is a parsed SELECT query.
type Query struct {
	// Vars are the projected variable names (without '?'), in SELECT order.
	Vars []string
	// Distinct deduplicates result rows.
	Distinct bool
	// Limit caps the number of rows; 0 means unlimited.
	Limit int
	// Patterns is the BGP.
	Patterns []Pattern
	star     bool
}

// Pattern is one triple pattern; a position is either a variable name or a
// constant ID.
type Pattern struct {
	S, P, O PatternTerm
}

// PatternTerm is one position of a pattern.
type PatternTerm struct {
	IsVar bool
	Var   string
	ID    rdf.ID
}

// Result holds the rows produced by Solve.
type Result struct {
	// Vars names the columns.
	Vars []string
	// Rows hold one ID per column.
	Rows [][]rdf.ID
}

// Parse reads the SPARQL-subset text, interning constants into dict.
func Parse(src string, dict *rdf.Dict) (*Query, error) {
	p := &qparser{src: src, dict: dict, prefixes: map[string]string{
		"rdf":  vocab.RDF,
		"rdfs": vocab.RDFS,
		"owl":  vocab.OWL,
		"xsd":  vocab.XSD,
	}}
	return p.parse()
}

// MustParse is Parse but panics on error.
func MustParse(src string, dict *rdf.Dict) *Query {
	q, err := Parse(src, dict)
	if err != nil {
		panic(err)
	}
	return q
}

// Solve evaluates the query against g. Patterns are joined in a greedy
// selectivity order: at each step the pattern with the smallest estimated
// extent under the current bindings runs next.
func (q *Query) Solve(g *rdf.Graph) *Result {
	res := &Result{Vars: q.Vars}
	if len(q.Patterns) == 0 {
		return res
	}
	slots := map[string]int{}
	collect := func(t PatternTerm) {
		if t.IsVar {
			if _, ok := slots[t.Var]; !ok {
				slots[t.Var] = len(slots)
			}
		}
	}
	for _, pat := range q.Patterns {
		collect(pat.S)
		collect(pat.P)
		collect(pat.O)
	}
	for _, v := range q.Vars {
		if _, ok := slots[v]; !ok {
			// Projected variable not bound by any pattern: always empty.
			return res
		}
	}

	env := make([]rdf.ID, len(slots))
	remaining := make([]Pattern, len(q.Patterns))
	copy(remaining, q.Patterns)
	seen := map[string]struct{}{}

	var walk func(rem []Pattern) bool // returns false to stop (limit hit)
	walk = func(rem []Pattern) bool {
		if len(rem) == 0 {
			row := make([]rdf.ID, len(q.Vars))
			for i, v := range q.Vars {
				row[i] = env[slots[v]]
			}
			if q.Distinct {
				key := rowKey(row)
				if _, dup := seen[key]; dup {
					return true
				}
				seen[key] = struct{}{}
			}
			res.Rows = append(res.Rows, row)
			return q.Limit == 0 || len(res.Rows) < q.Limit
		}
		// Pick the most selective pattern under current bindings.
		best, bestCount := 0, -1
		for i, pat := range rem {
			s, p, o := resolveTerm(pat.S, env, slots), resolveTerm(pat.P, env, slots), resolveTerm(pat.O, env, slots)
			n := g.CountMatch(s, p, o)
			if bestCount < 0 || n < bestCount {
				best, bestCount = i, n
			}
		}
		pat := rem[best]
		rest := make([]Pattern, 0, len(rem)-1)
		rest = append(rest, rem[:best]...)
		rest = append(rest, rem[best+1:]...)

		s, p, o := resolveTerm(pat.S, env, slots), resolveTerm(pat.P, env, slots), resolveTerm(pat.O, env, slots)
		cont := true
		g.ForEachMatch(s, p, o, func(t rdf.Triple) bool {
			bound, ok := bindPattern(pat, t, env, slots)
			if ok {
				cont = walk(rest)
			}
			for _, b := range bound {
				env[b] = 0
			}
			return cont
		})
		return cont
	}
	walk(remaining)
	return res
}

func rowKey(row []rdf.ID) string {
	var b strings.Builder
	for _, id := range row {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

func resolveTerm(t PatternTerm, env []rdf.ID, slots map[string]int) rdf.ID {
	if !t.IsVar {
		return t.ID
	}
	return env[slots[t.Var]]
}

func bindPattern(pat Pattern, t rdf.Triple, env []rdf.ID, slots map[string]int) ([]int, bool) {
	var bound []int
	undo := func() {
		for _, b := range bound {
			env[b] = 0
		}
	}
	for _, pv := range [3]struct {
		term PatternTerm
		val  rdf.ID
	}{{pat.S, t.S}, {pat.P, t.P}, {pat.O, t.O}} {
		if !pv.term.IsVar {
			if pv.term.ID != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		slot := slots[pv.term.Var]
		if cur := env[slot]; cur != 0 {
			if cur != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		env[slot] = pv.val
		bound = append(bound, slot)
	}
	return bound, true
}

// SortRows orders the result rows lexicographically, for deterministic
// output in examples and tests.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Format renders the result as an aligned text table using dict.
func (r *Result) Format(dict *rdf.Dict) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, id := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(dict.Term(id).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
