// Package query implements a small SPARQL-subset query engine over
// materialized graphs: basic graph patterns (BGP) with SELECT/DISTINCT/
// LIMIT. Materialized knowledge bases exist to make queries cheap (the
// trade-off the paper's introduction motivates: reasoning is paid at load
// time so queries need no inference); this package is the consumer side of
// that trade-off and is used by the examples and tests to interrogate
// closures.
//
// Supported syntax:
//
//	PREFIX ub: <http://benchmark.powl/lubm#>
//	SELECT DISTINCT ?x ?d WHERE {
//	    ?x a ub:Professor .
//	    ?x ub:worksFor ?d .
//	} LIMIT 10
//
// `a` abbreviates rdf:type. SELECT * selects all variables in order of
// first appearance.
package query

import (
	"context"
	"encoding/binary"
	"sort"
	"strings"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// Query is a parsed SELECT query.
type Query struct {
	// Vars are the projected variable names (without '?'), in SELECT order.
	Vars []string
	// Distinct deduplicates result rows.
	Distinct bool
	// Limit caps the number of rows; 0 means unlimited.
	Limit int
	// Patterns is the BGP.
	Patterns []Pattern
	star     bool
}

// Pattern is one triple pattern; a position is either a variable name or a
// constant ID.
type Pattern struct {
	S, P, O PatternTerm
}

// PatternTerm is one position of a pattern.
type PatternTerm struct {
	IsVar bool
	Var   string
	ID    rdf.ID
}

// Result holds the rows produced by Solve.
type Result struct {
	// Vars names the columns.
	Vars []string
	// Rows hold one ID per column.
	Rows [][]rdf.ID
}

// Parse reads the SPARQL-subset text, interning constants into dict.
func Parse(src string, dict *rdf.Dict) (*Query, error) {
	p := &qparser{src: src, dict: dict, prefixes: map[string]string{
		"rdf":  vocab.RDF,
		"rdfs": vocab.RDFS,
		"owl":  vocab.OWL,
		"xsd":  vocab.XSD,
	}}
	return p.parse()
}

// MustParse is Parse but panics on error.
func MustParse(src string, dict *rdf.Dict) *Query {
	q, err := Parse(src, dict)
	if err != nil {
		panic(err)
	}
	return q
}

// Source is what a query evaluates against: the two pattern primitives
// shared by *rdf.Graph (single-owner access, as the engines and CLIs use)
// and rdf.Snapshot (the epoch-pinned MVCC view the query server hands each
// request while a writer keeps appending).
type Source interface {
	// ForEachMatch visits every triple matching the pattern (rdf.Wildcard
	// matches anything), stopping early if fn returns false.
	ForEachMatch(s, p, o rdf.ID, fn func(rdf.Triple) bool)
	// CountMatch estimates the pattern's extent, used for join ordering.
	CountMatch(s, p, o rdf.ID) int
}

// Solve evaluates the query against g. Patterns are joined in a greedy
// selectivity order: at each step the pattern with the smallest estimated
// extent under the current bindings runs next.
func (q *Query) Solve(g *rdf.Graph) *Result {
	res, _ := q.SolveContext(context.Background(), g)
	return res
}

// ctxCheckEvery is how many binding attempts pass between cancellation
// checks: frequent enough that a pathological cross-join notices a deadline
// within microseconds, rare enough to stay invisible on the hot path.
const ctxCheckEvery = 1024

// SolveContext evaluates the query against src, honouring ctx cancellation
// and deadlines. The recursive join is unbounded in the worst case (a
// pattern set with no shared variables is a cross product), so the walk
// checks ctx every few thousand binding attempts and unwinds with ctx's
// error; the partial Result accumulated so far is returned alongside it.
func (q *Query) SolveContext(ctx context.Context, src Source) (*Result, error) {
	res := &Result{Vars: q.Vars}
	if len(q.Patterns) == 0 {
		return res, nil
	}
	slots := map[string]int{}
	collect := func(t PatternTerm) {
		if t.IsVar {
			if _, ok := slots[t.Var]; !ok {
				slots[t.Var] = len(slots)
			}
		}
	}
	for _, pat := range q.Patterns {
		collect(pat.S)
		collect(pat.P)
		collect(pat.O)
	}
	for _, v := range q.Vars {
		if _, ok := slots[v]; !ok {
			// Projected variable not bound by any pattern: always empty.
			return res, nil
		}
	}

	env := make([]rdf.ID, len(slots))
	remaining := make([]Pattern, len(q.Patterns))
	copy(remaining, q.Patterns)
	var (
		seen   map[string]struct{}
		keyBuf []byte
	)
	if q.Distinct {
		seen = map[string]struct{}{}
		keyBuf = make([]byte, 0, 4*len(q.Vars))
	}
	steps := 0
	var ctxErr error

	var walk func(rem []Pattern) bool // returns false to stop (limit hit or ctx done)
	walk = func(rem []Pattern) bool {
		if steps++; steps >= ctxCheckEvery {
			steps = 0
			if ctxErr = ctx.Err(); ctxErr != nil {
				return false
			}
		}
		if len(rem) == 0 {
			row := make([]rdf.ID, len(q.Vars))
			for i, v := range q.Vars {
				row[i] = env[slots[v]]
			}
			if q.Distinct {
				keyBuf = rowKey(keyBuf[:0], row)
				// string(keyBuf) in the lookup does not allocate; only a
				// newly seen row pays for the key copy.
				if _, dup := seen[string(keyBuf)]; dup {
					return true
				}
				seen[string(keyBuf)] = struct{}{}
			}
			res.Rows = append(res.Rows, row)
			return q.Limit == 0 || len(res.Rows) < q.Limit
		}
		// Pick the most selective pattern under current bindings.
		best, bestCount := 0, -1
		for i, pat := range rem {
			s, p, o := resolveTerm(pat.S, env, slots), resolveTerm(pat.P, env, slots), resolveTerm(pat.O, env, slots)
			n := src.CountMatch(s, p, o)
			if bestCount < 0 || n < bestCount {
				best, bestCount = i, n
			}
		}
		pat := rem[best]
		rest := make([]Pattern, 0, len(rem)-1)
		rest = append(rest, rem[:best]...)
		rest = append(rest, rem[best+1:]...)

		s, p, o := resolveTerm(pat.S, env, slots), resolveTerm(pat.P, env, slots), resolveTerm(pat.O, env, slots)
		cont := true
		src.ForEachMatch(s, p, o, func(t rdf.Triple) bool {
			bound, ok := bindPattern(pat, t, env, slots)
			if ok {
				cont = walk(rest)
			}
			for _, b := range bound {
				env[b] = 0
			}
			return cont
		})
		return cont
	}
	walk(remaining)
	return res, ctxErr
}

// rowKey appends the row's dedup key to dst: 4 fixed bytes per ID, no
// separators needed. Replaces a fmt.Fprintf-per-column string build that
// dominated DISTINCT-heavy query profiles (BenchmarkDistinct pins the win).
//
//powl:allocfree DISTINCT keying runs once per result row
func rowKey(dst []byte, row []rdf.ID) []byte {
	for _, id := range row {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst
}

func resolveTerm(t PatternTerm, env []rdf.ID, slots map[string]int) rdf.ID {
	if !t.IsVar {
		return t.ID
	}
	return env[slots[t.Var]]
}

func bindPattern(pat Pattern, t rdf.Triple, env []rdf.ID, slots map[string]int) ([]int, bool) {
	var bound []int
	undo := func() {
		for _, b := range bound {
			env[b] = 0
		}
	}
	for _, pv := range [3]struct {
		term PatternTerm
		val  rdf.ID
	}{{pat.S, t.S}, {pat.P, t.P}, {pat.O, t.O}} {
		if !pv.term.IsVar {
			if pv.term.ID != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		slot := slots[pv.term.Var]
		if cur := env[slot]; cur != 0 {
			if cur != pv.val {
				undo()
				return nil, false
			}
			continue
		}
		env[slot] = pv.val
		bound = append(bound, slot)
	}
	return bound, true
}

// SortRows orders the result rows lexicographically, for deterministic
// output in examples and tests.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Format renders the result as an aligned text table using dict.
func (r *Result) Format(dict *rdf.Dict) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, id := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(dict.Term(id).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
