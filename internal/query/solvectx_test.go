package query

import (
	"context"
	"errors"
	"testing"
	"time"

	"powl/internal/rdf"
)

// crossJoinFixture builds a graph where a cross-product query explodes:
// two unrelated predicates with n subjects each, so a two-pattern query
// with disjoint variables enumerates n² bindings.
func crossJoinFixture(n int) (*rdf.Dict, *rdf.Graph, string) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	p1 := dict.InternIRI("http://x/p1")
	p2 := dict.InternIRI("http://x/p2")
	for i := 0; i < n; i++ {
		s := dict.InternIRI("http://x/a" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)) + string(rune('0'+(i/1000)%10)))
		g.Add(rdf.Triple{S: s, P: p1, O: s})
		g.Add(rdf.Triple{S: s, P: p2, O: s})
	}
	q := `SELECT ?x ?y WHERE { ?x <http://x/p1> ?x . ?y <http://x/p2> ?y . }`
	return dict, g, q
}

func TestSolveContextCancelsPathologicalQuery(t *testing.T) {
	dict, g, src := crossJoinFixture(3000)
	q := MustParse(src, dict)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := q.SolveContext(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// 9M rows would take far longer; the deadline must cut it short fast.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, deadline was 20ms", elapsed)
	}
	if res == nil {
		t.Fatal("partial result should still be returned")
	}
}

func TestSolveContextPreCancelled(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`PREFIX s: <http://s/> SELECT ?x WHERE { ?x a s:Person . }`, dict)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A tiny query may finish before the first periodic check; it must
	// never return rows AND an error inconsistently — either the full
	// result with nil error, or a ctx error.
	res, err := q.SolveContext(ctx, g)
	if err == nil && len(res.Rows) != 3 {
		t.Fatalf("no error but %d rows, want 3", len(res.Rows))
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled or nil", err)
	}
}

// TestSolveOnSnapshot runs the same query against the graph and against a
// pinned snapshot, then grows the graph and checks the snapshot's answer is
// frozen while the graph's moves.
func TestSolveOnSnapshot(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`PREFIX s: <http://s/> SELECT ?x WHERE { ?x a s:Person . }`, dict)
	sn := g.Snapshot()

	res, err := q.SolveContext(context.Background(), sn)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("snapshot solve: %d rows, err %v; want 3, nil", len(res.Rows), err)
	}

	typ := dict.InternIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	person := dict.InternIRI("http://s/Person")
	dave := dict.InternIRI("http://s/dave")
	g.Add(rdf.Triple{S: dave, P: typ, O: person})

	res, _ = q.SolveContext(context.Background(), sn)
	if len(res.Rows) != 3 {
		t.Fatalf("pinned snapshot now answers %d rows, want 3", len(res.Rows))
	}
	res, _ = q.SolveContext(context.Background(), g.Snapshot())
	if len(res.Rows) != 4 {
		t.Fatalf("fresh snapshot answers %d rows, want 4", len(res.Rows))
	}
	if got := q.Solve(g); len(got.Rows) != 4 {
		t.Fatalf("graph answers %d rows, want 4", len(got.Rows))
	}
}

func TestDistinctBinaryKeyCorrect(t *testing.T) {
	dict, g := socialGraph()
	// knows has 2 rows with distinct subjects; project only ?x typed —
	// exercise dedup across multiple patterns.
	q := MustParse(`
PREFIX s: <http://s/>
SELECT DISTINCT ?t WHERE {
  ?x a ?t .
}`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("DISTINCT ?t: got %d rows, want 1", len(res.Rows))
	}
	// And a non-distinct control.
	q2 := MustParse(`PREFIX s: <http://s/> SELECT ?t WHERE { ?x a ?t . }`, dict)
	if res2 := q2.Solve(g); len(res2.Rows) != 3 {
		t.Fatalf("non-distinct control: got %d rows, want 3", len(res2.Rows))
	}
}
