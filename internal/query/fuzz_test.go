package query

import (
	"testing"

	"powl/internal/rdf"
)

// FuzzParse checks the query parser never panics; accepted queries must
// solve without panicking against a small graph.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE { ?x ?p ?o . }",
		"PREFIX s: <http://s/>\nSELECT DISTINCT ?x ?y WHERE { ?x s:p ?y . ?y a s:T . } LIMIT 3",
		"SELECT * WHERE { ?x ?p \"lit\" . }",
		"select ?x where { ?x <http://p> ?y }",
		"SELECT", "{}", "SELECT ?x WHERE { ?x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	dictTemplate := func() (*rdf.Dict, *rdf.Graph) {
		dict := rdf.NewDict()
		g := rdf.NewGraph()
		a := dict.InternIRI("http://s/a")
		p := dict.InternIRI("http://s/p")
		b := dict.InternIRI("http://s/b")
		g.Add(rdf.Triple{S: a, P: p, O: b})
		g.Add(rdf.Triple{S: b, P: p, O: a})
		return dict, g
	}
	f.Fuzz(func(t *testing.T, src string) {
		dict, g := dictTemplate()
		q, err := Parse(src, dict)
		if err != nil {
			return
		}
		res := q.Solve(g)
		if q.Limit > 0 && len(res.Rows) > q.Limit {
			t.Fatalf("LIMIT %d violated: %d rows", q.Limit, len(res.Rows))
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Vars) {
				t.Fatal("row width mismatch")
			}
			for _, id := range row {
				if id == 0 {
					t.Fatal("unbound projected variable in result row")
				}
			}
		}
	})
}
