package query

import (
	"fmt"
	"math/rand"
	"testing"

	"powl/internal/rdf"
)

// starGraph builds hubCount hubs each with fanout spokes over two
// predicates, a shape where join order matters enormously.
func starGraph(hubCount, fanout int) (*rdf.Dict, *rdf.Graph) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	owns := dict.InternIRI("http://s/owns")
	tagged := dict.InternIRI("http://s/tagged")
	rare := dict.InternIRI("http://s/rareTag")
	for h := 0; h < hubCount; h++ {
		hub := dict.InternIRI(fmt.Sprintf("http://s/hub%d", h))
		for i := 0; i < fanout; i++ {
			item := dict.InternIRI(fmt.Sprintf("http://s/hub%d/item%d", h, i))
			g.Add(rdf.Triple{S: hub, P: owns, O: item})
			g.Add(rdf.Triple{S: item, P: tagged, O: dict.InternIRI(fmt.Sprintf("http://s/tag%d", i%7))})
		}
	}
	// Exactly one rare item.
	g.Add(rdf.Triple{S: dict.InternIRI("http://s/hub0/item0"), P: tagged, O: rare})
	return dict, g
}

// TestSelectiveJoinOrder: the greedy planner must start from the rare
// pattern; a correct result in reasonable work is asserted by the test
// simply completing fast with the right single answer.
func TestSelectiveJoinOrder(t *testing.T) {
	dict, g := starGraph(50, 40)
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?hub WHERE {
  ?hub s:owns ?item .
  ?item s:tagged s:rareTag .
}`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("rare-tag join returned %d rows, want 1", len(res.Rows))
	}
	hub0, _ := dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://s/hub0"})
	if res.Rows[0][0] != hub0 {
		t.Fatalf("wrong hub: %v", dict.Term(res.Rows[0][0]))
	}
}

// TestFourWayJoin: longer BGPs still produce exactly the expected matches.
func TestFourWayJoin(t *testing.T) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	p := dict.InternIRI("http://s/p")
	// A diamond a->b->d, a->c->d plus noise.
	a := dict.InternIRI("http://s/a")
	bn := dict.InternIRI("http://s/b")
	c := dict.InternIRI("http://s/c")
	d := dict.InternIRI("http://s/d")
	for _, tr := range []rdf.Triple{{S: a, P: p, O: bn}, {S: a, P: p, O: c}, {S: bn, P: p, O: d}, {S: c, P: p, O: d}} {
		g.Add(tr)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		g.Add(rdf.Triple{
			S: dict.InternIRI(fmt.Sprintf("http://s/n%d", rng.Intn(50))),
			P: p,
			O: dict.InternIRI(fmt.Sprintf("http://s/n%d", rng.Intn(50))),
		})
	}
	q := MustParse(`
PREFIX s: <http://s/>
SELECT DISTINCT ?x ?w WHERE {
  ?x s:p ?y .
  ?x s:p ?z .
  ?y s:p ?w .
  ?z s:p ?w .
}`, dict)
	res := q.Solve(g)
	// The diamond (x=a, w=d) must be among the results; with y=z
	// permitted, self-pairs also appear — verify a,d present.
	found := false
	for _, row := range res.Rows {
		if row[0] == a && row[1] == d {
			found = true
		}
	}
	if !found {
		t.Fatal("diamond match missing")
	}
}

// TestLimitShortCircuits: with LIMIT 1 on a huge extent, evaluation stops
// early (observable as a fast test rather than a hang on adversarial data).
func TestLimitShortCircuits(t *testing.T) {
	dict, g := starGraph(100, 100)
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?h ?i WHERE { ?h s:owns ?i . } LIMIT 1
`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("LIMIT 1 returned %d rows", len(res.Rows))
	}
}
