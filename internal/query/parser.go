package query

import (
	"fmt"
	"strings"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

type qparser struct {
	src      string
	i        int
	dict     *rdf.Dict
	prefixes map[string]string
}

func (p *qparser) parse() (*Query, error) {
	q := &Query{}
	for {
		p.skipWS()
		if !p.hasKeyword("PREFIX") {
			break
		}
		p.i += len("PREFIX")
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	p.skipWS()
	if !p.hasKeyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	p.i += len("SELECT")
	p.skipWS()
	if p.hasKeyword("DISTINCT") {
		p.i += len("DISTINCT")
		q.Distinct = true
	}
	for {
		p.skipWS()
		if p.i < len(p.src) && p.src[p.i] == '*' {
			p.i++
			q.star = true
			break
		}
		if p.i >= len(p.src) || p.src[p.i] != '?' {
			break
		}
		p.i++
		name := p.name()
		if name == "" {
			return nil, p.errf("empty variable name")
		}
		q.Vars = append(q.Vars, name)
	}
	if !q.star && len(q.Vars) == 0 {
		return nil, p.errf("SELECT needs variables or *")
	}
	p.skipWS()
	if !p.hasKeyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	p.i += len("WHERE")
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != '{' {
		return nil, p.errf("expected '{'")
	}
	p.i++
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return nil, p.errf("unterminated WHERE block")
		}
		if p.src[p.i] == '}' {
			p.i++
			break
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		p.skipWS()
		if p.i < len(p.src) && p.src[p.i] == '.' {
			p.i++
		}
	}
	p.skipWS()
	if p.hasKeyword("LIMIT") {
		p.i += len("LIMIT")
		p.skipWS()
		n := 0
		start := p.i
		for p.i < len(p.src) && p.src[p.i] >= '0' && p.src[p.i] <= '9' {
			n = n*10 + int(p.src[p.i]-'0')
			p.i++
		}
		if p.i == start {
			return nil, p.errf("LIMIT needs a number")
		}
		q.Limit = n
	}
	p.skipWS()
	if p.i != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.i:])
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("empty WHERE block")
	}
	if q.star {
		seen := map[string]bool{}
		for _, pat := range q.Patterns {
			for _, t := range []PatternTerm{pat.S, pat.P, pat.O} {
				if t.IsVar && !seen[t.Var] {
					seen[t.Var] = true
					q.Vars = append(q.Vars, t.Var)
				}
			}
		}
	}
	return q, nil
}

func (p *qparser) pattern() (Pattern, error) {
	s, err := p.term(false)
	if err != nil {
		return Pattern{}, err
	}
	pr, err := p.term(true)
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.term(false)
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

// term parses one pattern position; predicate position accepts the `a`
// shorthand for rdf:type.
func (p *qparser) term(predicate bool) (PatternTerm, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return PatternTerm{}, p.errf("unexpected end of query")
	}
	switch c := p.src[p.i]; {
	case c == '?':
		p.i++
		name := p.name()
		if name == "" {
			return PatternTerm{}, p.errf("empty variable name")
		}
		return PatternTerm{IsVar: true, Var: name}, nil
	case c == '<':
		end := strings.IndexByte(p.src[p.i:], '>')
		if end < 0 {
			return PatternTerm{}, p.errf("unterminated IRI")
		}
		iri := p.src[p.i+1 : p.i+end]
		p.i += end + 1
		return PatternTerm{ID: p.dict.InternIRI(iri)}, nil
	case c == '"':
		lex, err := p.literalLex()
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{ID: p.dict.InternLiteral(lex)}, nil
	default:
		word := p.name()
		if word == "" {
			return PatternTerm{}, p.errf("unexpected character %q", c)
		}
		if predicate && word == "a" {
			return PatternTerm{ID: p.dict.InternIRI(vocab.RDFType)}, nil
		}
		colon := strings.IndexByte(word, ':')
		if colon < 0 {
			return PatternTerm{}, p.errf("expected prefixed name, got %q", word)
		}
		ns, ok := p.prefixes[word[:colon]]
		if !ok {
			return PatternTerm{}, p.errf("unknown prefix %q", word[:colon])
		}
		return PatternTerm{ID: p.dict.InternIRI(ns + word[colon+1:])}, nil
	}
}

func (p *qparser) prefixDecl() error {
	p.skipWS()
	start := p.i
	for p.i < len(p.src) && p.src[p.i] != ':' {
		p.i++
	}
	if p.i >= len(p.src) {
		return p.errf("malformed PREFIX")
	}
	name := strings.TrimSpace(p.src[start:p.i])
	p.i++
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != '<' {
		return p.errf("PREFIX needs <iri>")
	}
	end := strings.IndexByte(p.src[p.i:], '>')
	if end < 0 {
		return p.errf("unterminated IRI in PREFIX")
	}
	p.prefixes[name] = p.src[p.i+1 : p.i+end]
	p.i += end + 1
	return nil
}

func (p *qparser) literalLex() (string, error) {
	start := p.i
	p.i++
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case '\\':
			p.i += 2
			if p.i > len(p.src) {
				p.i = len(p.src)
				return "", p.errf("dangling escape in literal")
			}
		case '"':
			p.i++
			return p.src[start:p.i], nil
		default:
			p.i++
		}
	}
	return "", p.errf("unterminated literal")
}

func (p *qparser) name() string {
	start := p.i
	for p.i < len(p.src) {
		c := p.src[p.i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == ':' || c == '/' || c == '#' || c == '.' {
			p.i++
			continue
		}
		break
	}
	// A trailing '.' is the pattern separator, not part of the name.
	for p.i > start && p.src[p.i-1] == '.' {
		p.i--
	}
	return p.src[start:p.i]
}

func (p *qparser) skipWS() {
	for p.i < len(p.src) {
		c := p.src[p.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.i++
			continue
		}
		if c == '#' {
			for p.i < len(p.src) && p.src[p.i] != '\n' {
				p.i++
			}
			continue
		}
		break
	}
}

func (p *qparser) hasKeyword(kw string) bool {
	if len(p.src)-p.i < len(kw) {
		return false
	}
	return strings.EqualFold(p.src[p.i:p.i+len(kw)], kw)
}

func (p *qparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.i], "\n")
	return fmt.Errorf("query: line %d: %s", line, fmt.Sprintf(format, args...))
}
