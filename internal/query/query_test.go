package query

import (
	"strings"
	"testing"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/rdf"
)

// fixture: a tiny social graph.
func socialGraph() (*rdf.Dict, *rdf.Graph) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	iri := func(s string) rdf.ID { return dict.InternIRI("http://s/" + s) }
	typ := dict.InternIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	add := func(s, p, o rdf.ID) { g.Add(rdf.Triple{S: s, P: p, O: o}) }

	person, knows, age := iri("Person"), iri("knows"), iri("age")
	alice, bob, carol := iri("alice"), iri("bob"), iri("carol")
	add(alice, typ, person)
	add(bob, typ, person)
	add(carol, typ, person)
	add(alice, knows, bob)
	add(bob, knows, carol)
	add(alice, age, dict.InternLiteral(`"30"`))
	return dict, g
}

func TestSimpleSelect(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?x WHERE { ?x a s:Person . }
`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?x ?z WHERE {
  ?x s:knows ?y .
  ?y s:knows ?z .
}`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	alice, _ := dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://s/alice"})
	carol, _ := dict.Lookup(rdf.Term{Kind: rdf.IRI, Value: "http://s/carol"})
	if res.Rows[0][0] != alice || res.Rows[0][1] != carol {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestConstantSubjectAndLiteral(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?a WHERE { s:alice s:age ?a . }
`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if term := dict.Term(res.Rows[0][0]); term.Value != `"30"` {
		t.Fatalf("age = %v", term)
	}
	// Literal as a constraint.
	q2 := MustParse(`
PREFIX s: <http://s/>
SELECT ?x WHERE { ?x s:age "30" . }
`, dict)
	if res := q2.Solve(g); len(res.Rows) != 1 {
		t.Fatalf("literal constraint: %d rows", len(res.Rows))
	}
}

func TestDistinctAndLimit(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT DISTINCT ?t WHERE { ?x a ?t . }
`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("distinct types: %d rows, want 1", len(res.Rows))
	}
	q2 := MustParse(`
PREFIX s: <http://s/>
SELECT ?x WHERE { ?x a s:Person . } LIMIT 2
`, dict)
	if res := q2.Solve(g); len(res.Rows) != 2 {
		t.Fatalf("limit: %d rows, want 2", len(res.Rows))
	}
}

func TestSelectStar(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT * WHERE { ?x s:knows ?y . }
`, dict)
	if len(q.Vars) != 2 || q.Vars[0] != "x" || q.Vars[1] != "y" {
		t.Fatalf("star vars = %v", q.Vars)
	}
	if res := q.Solve(g); len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestUnboundProjectionIsEmpty(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?nope WHERE { ?x a s:Person . }
`, dict)
	if res := q.Solve(g); len(res.Rows) != 0 {
		t.Fatal("projection of unbound variable must be empty")
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	dict, g := socialGraph()
	iri := func(s string) rdf.ID { return dict.InternIRI("http://s/" + s) }
	g.Add(rdf.Triple{S: iri("dave"), P: iri("knows"), O: iri("dave")})
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?x WHERE { ?x s:knows ?x . }
`, dict)
	res := q.Solve(g)
	if len(res.Rows) != 1 {
		t.Fatalf("self-loop rows = %d, want 1", len(res.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	dict := rdf.NewDict()
	bad := []string{
		`WHERE { ?x ?p ?o . }`,                       // no SELECT
		`SELECT WHERE { ?x ?p ?o . }`,                // no vars
		`SELECT ?x { ?x ?p ?o . }`,                   // missing WHERE
		`SELECT ?x WHERE { ?x ?p ?o . `,              // unterminated block
		`SELECT ?x WHERE { }`,                        // empty block
		`SELECT ?x WHERE { ?x unknown:p ?o . }`,      // unknown prefix
		`SELECT ?x WHERE { ?x <http://p ?o . }`,      // unterminated IRI
		`SELECT ?x WHERE { ?x ?p ?o . } LIMIT`,       // missing limit count
		`SELECT ?x WHERE { ?x ?p ?o . } LIMIT 5 huh`, // trailing garbage
	}
	for _, src := range bad {
		if _, err := Parse(src, dict); err == nil {
			t.Errorf("query %q parsed without error", src)
		}
	}
}

func TestFormatAndSort(t *testing.T) {
	dict, g := socialGraph()
	q := MustParse(`
PREFIX s: <http://s/>
SELECT ?x ?y WHERE { ?x s:knows ?y . }
`, dict)
	res := q.Solve(g)
	res.SortRows()
	out := res.Format(dict)
	if !strings.Contains(out, "alice") || !strings.Contains(out, "x\ty") {
		t.Fatalf("Format output:\n%s", out)
	}
	if len(res.Rows) == 2 && res.Rows[0][0] > res.Rows[1][0] {
		t.Error("SortRows did not order rows")
	}
}

// TestQueryOverMaterializedKB is the end-to-end story: materialize a LUBM
// KB in parallel, then answer an inference-dependent query with plain
// lookups — the headline use-case of materialized knowledge bases.
func TestQueryOverMaterializedKB(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
	res, err := core.Materialize(ds, core.Config{Workers: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Chairs are only derivable through someValuesFrom + subclass
	// reasoning; Person only through the class hierarchy.
	q := MustParse(`
PREFIX ub: <http://benchmark.powl/lubm#>
SELECT DISTINCT ?x WHERE {
  ?x a ub:Chair .
  ?x a ub:Person .
}`, ds.Dict)
	rows := q.Solve(res.Graph)
	if len(rows.Rows) == 0 {
		t.Fatal("no chairs found in materialized KB")
	}
	// Without materialization the same query finds nothing.
	if raw := q.Solve(ds.Graph); len(raw.Rows) != 0 {
		t.Fatal("base graph should not contain derived Chair facts")
	}
}

func TestLessUsedInSort(t *testing.T) {
	// rdf.Triple.Less coverage via rows using IDs.
	if !(rdf.Triple{S: 1}).Less(rdf.Triple{S: 2}) {
		t.Error("Less broken")
	}
}
