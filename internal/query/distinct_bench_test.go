package query

import (
	"fmt"
	"strings"
	"testing"

	"powl/internal/rdf"
)

// legacyRowKey is the fmt.Fprintf-based dedup key the binary rowKey
// replaced; kept here so the benchmark records the before/after delta.
func legacyRowKey(row []rdf.ID) string {
	var b strings.Builder
	for _, id := range row {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

func benchRows(n int) [][]rdf.ID {
	rows := make([][]rdf.ID, n)
	for i := range rows {
		rows[i] = []rdf.ID{rdf.ID(i % 97), rdf.ID(i % 31), rdf.ID(i)}
	}
	return rows
}

func BenchmarkDistinctKey(b *testing.B) {
	rows := benchRows(1024)
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := map[string]struct{}{}
			for _, row := range rows {
				key := legacyRowKey(row)
				if _, dup := seen[key]; !dup {
					seen[key] = struct{}{}
				}
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			seen := map[string]struct{}{}
			for _, row := range rows {
				buf = rowKey(buf[:0], row)
				if _, dup := seen[string(buf)]; !dup {
					seen[string(buf)] = struct{}{}
				}
			}
		}
	})
}

// BenchmarkDistinctQuery measures the end-to-end effect on a DISTINCT-heavy
// query: every person row projects the same type, so dedup runs per binding.
func BenchmarkDistinctQuery(b *testing.B) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	typ := dict.InternIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	person := dict.InternIRI("http://b/Person")
	knows := dict.InternIRI("http://b/knows")
	for i := 0; i < 2000; i++ {
		s := dict.InternIRI(fmt.Sprintf("http://b/p%d", i))
		o := dict.InternIRI(fmt.Sprintf("http://b/p%d", (i+1)%2000))
		g.Add(rdf.Triple{S: s, P: typ, O: person})
		g.Add(rdf.Triple{S: s, P: knows, O: o})
	}
	q := MustParse(`SELECT DISTINCT ?t WHERE { ?x a ?t . ?x <http://b/knows> ?y . }`, dict)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := q.Solve(g)
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}
