package reason

import (
	"context"
	"sort"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Hybrid materializes a KB the way the paper's §V describes Jena doing it:
// for each resource in the graph it issues the query "all triples with this
// resource as subject" against a tabled SLD backward engine, and stores the
// answers. Rule bodies are evaluated strictly left-to-right (SLD order,
// no boundness reordering), so rules whose leading body atom is unbound by
// the goal — e.g. the compiled allValuesFrom rule — scan a predicate extent
// of the whole partition. That per-query work grows with partition size,
// which is exactly the worst-case behaviour the paper observed on LUBM and
// MDC and exploited for super-linear speedups (§VI-A).
//
// Subgoals are tabled with Tarjan-style SCC completion: mutually recursive
// subgoals (e.g. transitive chains) are closed together by iterating their
// strongly connected component to fixpoint, then marked complete. By
// default the table is reset between resource queries (matching Jena's
// per-query tabling); SharedTable keeps one table for the whole
// materialization, removing most re-derivation — the ablation benchmark
// BenchmarkAblation_Tabling quantifies the difference.
type Hybrid struct {
	// SharedTable shares the subgoal table across all per-resource queries.
	SharedTable bool
	// FrontierDelta makes MaterializeFrom close deltas with frontier-guided
	// backward queries instead of delegating to the forward engine; see
	// that method's documentation.
	FrontierDelta bool
	// Threads is forwarded to the forward engine MaterializeFrom delegates
	// to (see Forward.Threads). The full per-resource backward driver stays
	// single-threaded: its table is one mutable structure per
	// materialization, and its sequential per-query cost is the behaviour
	// the paper's experiments measure.
	Threads int
}

// Name implements Engine.
func (h Hybrid) Name() string {
	if h.SharedTable {
		return "hybrid-shared"
	}
	return "hybrid"
}

// Materialize implements Engine. Like Forward.Materialize it panics on a
// rule set that fails ValidateRules — validate caller-supplied rules first.
func (h Hybrid) Materialize(g *rdf.Graph, rs []rules.Rule) int {
	n, err := h.MaterializeCtx(context.Background(), g, rs)
	if err != nil {
		panic(err)
	}
	return n
}

// MaterializeCtx implements ContextEngine: the per-resource query loop
// checks ctx before each resource, so cancellation lands within one
// backward query.
func (h Hybrid) MaterializeCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule) (int, error) {
	crs, err := compileRules(rs)
	if err != nil {
		return 0, err
	}
	prof := newRuleProf(ctx, crs)
	defer prof.flush()

	// Query plan: every resource appearing as subject or object, in ID
	// order for determinism. Inference cannot invent constants, so every
	// closure triple's subject is already in this set.
	resSet := g.Resources()
	resources := make([]rdf.ID, 0, len(resSet))
	for r := range resSet {
		resources = append(resources, r)
	}
	sort.Slice(resources, func(i, j int) bool { return resources[i] < resources[j] })

	prov := g.Prov()
	var (
		sampler *obs.DeriveSampler
		provIDs []uint16
	)
	if prov != nil {
		sampler = obs.DerivesFrom(ctx)
		provIDs = make([]uint16, len(crs))
		for i := range crs {
			provIDs[i] = prov.RuleID(crs[i].name)
		}
	}

	added := 0
	var s *solver
	var pending []rdf.Triple
	for _, r := range resources {
		if err := ctx.Err(); err != nil {
			return added, err
		}
		if s == nil || !h.SharedTable {
			s = newSolver(g, crs)
			s.prof = prof
			if prov != nil {
				s.rec = true
				s.lin = map[rdf.Triple]pendDeriv{}
			}
		}
		goal := rdf.Triple{S: r, P: rdf.Wildcard, O: rdf.Wildcard}
		e := s.solve(goal)
		pending = pending[:0]
		for t := range e.answers {
			if !g.Has(t) {
				// Defer insertion: the solver's base-fact scans iterate g.
				pending = append(pending, t)
			}
		}
		for _, t := range pending {
			if prov == nil {
				// Derived-marking insert: keeps the graph's derived bitset
				// accurate for the provenance-off Retract fallback.
				if g.AddDerived(t, rdf.Derivation{}) {
					added++
				}
			} else if s.addDerivedFromLin(provIDs, sampler, t) {
				added++
			}
		}
	}
	return added, nil
}

// addDerivedFromLin inserts t with the lineage the solver captured at yield
// time. Backward-chained premises may themselves still be pending (tabled
// answers not yet inserted), so premise offsets resolve best-effort:
// unresolvable slots record NoPremise. The rule attribution is always exact.
func (s *solver) addDerivedFromLin(provIDs []uint16, sampler *obs.DeriveSampler, t rdf.Triple) bool {
	pd, ok := s.lin[t]
	if !ok {
		return s.g.AddDerived(t, rdf.Derivation{})
	}
	d := rdf.Derivation{
		Rule: provIDs[pd.rule.idx],
		Prem: [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
	}
	for i := 0; i < int(pd.np); i++ {
		if off, ok := s.g.Offset(pd.prem[i]); ok {
			d.Prem[i] = off
		}
	}
	if !s.g.AddDerived(t, d) {
		return false
	}
	s.prof.addDerived(pd.rule.idx, 1, 0)
	if sampler != nil {
		if off, ok := s.g.Offset(t); ok {
			sampler.Sample(pd.rule.name, 0, off)
		}
	}
	return true
}

// tableEntry is the memo record for one subgoal pattern.
type tableEntry struct {
	goal     rdf.Triple
	answers  map[rdf.Triple]struct{}
	active   bool // on the SLD stack (its SCC is still being computed)
	complete bool // answers are final
	depth    int  // Tarjan DFS index
	low      int  // Tarjan lowlink
}

// headRef locates one head atom of one rule.
type headRef struct {
	rule *cRule
	head int
}

type solver struct {
	g     *rdf.Graph
	rules []cRule
	table map[rdf.Triple]*tableEntry
	total int // total answers across all entries, for fixpoint detection
	stack []*tableEntry
	depth int
	// byHeadPred indexes head atoms by their constant predicate;
	// anyHeadPred lists heads with a variable predicate. Subgoals with a
	// bound predicate only resolve against heads that can produce it.
	byHeadPred  map[rdf.ID][]headRef
	anyHeadPred []headRef
	// prof, when non-nil, tallies per-rule work. Time is attributed to the
	// outermost rule resolution only (profDepth guards nesting), so the
	// per-rule times partition the solver's rule-evaluation time even
	// though SLD subgoal resolution recurses through other rules.
	prof      *ruleProf
	profDepth int
	// envPool recycles binding environments across rule resolutions. SLD
	// evaluation nests (a body atom's subgoal resolves other rules), so a
	// single scratch buffer would be clobbered; a stack of retired envs
	// keeps the steady state allocation-free instead.
	envPool []env
	maxSlot int
	// rec enables provenance capture: each first derivation of a non-base
	// answer stores its rule and instantiated premises in lin, which the
	// driver consults when it inserts pending answers into the graph.
	rec bool
	lin map[rdf.Triple]pendDeriv
}

func newSolver(g *rdf.Graph, crs []cRule) *solver {
	s := &solver{g: g, rules: crs, table: map[rdf.Triple]*tableEntry{},
		byHeadPred: map[rdf.ID][]headRef{}, maxSlot: 1}
	for ri := range crs {
		r := &crs[ri]
		if r.nslot > s.maxSlot {
			s.maxSlot = r.nslot
		}
		for hi, h := range r.head {
			if h.p.isVar {
				s.anyHeadPred = append(s.anyHeadPred, headRef{r, hi})
			} else {
				s.byHeadPred[h.p.id] = append(s.byHeadPred[h.p.id], headRef{r, hi})
			}
		}
	}
	return s
}

// getEnv pops a zeroed environment of the given width from the pool (or
// grows the pool by one buffer sized for the widest rule); putEnv retires it
// for reuse once a resolution completes.
func (s *solver) getEnv(n int) env {
	var e env
	if k := len(s.envPool); k > 0 {
		e = s.envPool[k-1]
		s.envPool = s.envPool[:k-1]
	} else {
		e = make(env, s.maxSlot)
	}
	e = e[:n]
	for i := range e {
		e[i] = 0
	}
	return e
}

func (s *solver) putEnv(e env) {
	s.envPool = append(s.envPool, e[:cap(e)])
}

func (s *solver) entry(goal rdf.Triple) *tableEntry {
	e := s.table[goal]
	if e == nil {
		e = &tableEntry{goal: goal, answers: map[rdf.Triple]struct{}{}}
		s.table[goal] = e
	}
	return e
}

// solve evaluates the subgoal pattern to completion unless it participates
// in an SCC still open higher up the stack, in which case the current
// partial answers are returned and the SCC leader finishes the job.
func (s *solver) solve(goal rdf.Triple) *tableEntry {
	e := s.entry(goal)
	if e.complete || e.active {
		return e
	}
	e.active = true
	s.depth++
	e.depth = s.depth
	e.low = e.depth
	s.stack = append(s.stack, e)
	stackPos := len(s.stack) - 1

	// Local fixpoint for this goal.
	for {
		before := s.total
		s.evaluateOnce(e)
		if s.total == before {
			break
		}
	}

	if e.low == e.depth {
		// e is its SCC's leader: close the whole component by iterating
		// every member until no member gains an answer, then complete them.
		scc := s.stack[stackPos:]
		if len(scc) > 1 {
			for {
				before := s.total
				for _, m := range scc {
					s.evaluateOnce(m)
				}
				if s.total == before {
					break
				}
			}
		}
		for _, m := range scc {
			m.complete = true
			m.active = false
		}
		s.stack = s.stack[:stackPos]
	}
	return e
}

// evaluateOnce runs one resolution pass for e's goal: base facts plus every
// rule whose head unifies, with bodies evaluated left-to-right.
//
//powl:ignore wallclock per-rule profiling clock, same contract as forward.materialize.
func (s *solver) evaluateOnce(e *tableEntry) {
	goal := e.goal
	s.g.ForEachMatch(goal.S, goal.P, goal.O, func(t rdf.Triple) bool {
		s.addAnswer(e, t)
		return true
	})
	resolve := func(ref headRef) {
		r := ref.rule
		hAtom := r.head[ref.head]
		env := s.getEnv(r.nslot)
		defer s.putEnv(env)
		if !unifyGoal(hAtom, goal, env) {
			return
		}
		if s.prof == nil {
			s.evalBody(e, r, 0, env, func() {
				t := env.instantiate(hAtom)
				if matchesGoal(t, goal) {
					if s.rec {
						s.captureLin(r, env, t)
					}
					s.addAnswer(e, t)
				}
			})
			return
		}
		outer := s.profDepth == 0
		var t0 time.Time
		if outer {
			t0 = time.Now()
		}
		s.profDepth++
		s.evalBody(e, r, 0, env, func() {
			s.prof.matches[r.idx]++
			t := env.instantiate(hAtom)
			if matchesGoal(t, goal) {
				s.prof.firings[r.idx]++
				if s.rec {
					s.captureLin(r, env, t)
				}
				s.addAnswer(e, t)
			}
		})
		s.profDepth--
		if outer {
			s.prof.time[r.idx] += time.Since(t0)
		}
	}
	if goal.P != rdf.Wildcard {
		for _, ref := range s.byHeadPred[goal.P] {
			resolve(ref)
		}
		for _, ref := range s.anyHeadPred {
			resolve(ref)
		}
		return
	}
	for ri := range s.rules {
		r := &s.rules[ri]
		for hi := range r.head {
			resolve(headRef{r, hi})
		}
	}
}

// captureLin records t's first derivation: the rule plus its premises,
// instantiated from the fully-bound environment in body-atom order. Base
// triples (already in g) need no record, and the first derivation wins, to
// match the graph-side first-wins discipline.
func (s *solver) captureLin(r *cRule, en env, t rdf.Triple) {
	if s.g.Has(t) {
		return
	}
	if _, ok := s.lin[t]; ok {
		return
	}
	pd := pendDeriv{rule: r}
	np := len(r.body)
	if np > len(pd.prem) {
		np = len(pd.prem)
	}
	for i := 0; i < np; i++ {
		pd.prem[i] = en.instantiate(r.body[i])
	}
	pd.np = uint8(np)
	s.lin[t] = pd
}

func (s *solver) addAnswer(e *tableEntry, t rdf.Triple) {
	if _, ok := e.answers[t]; !ok {
		e.answers[t] = struct{}{}
		s.total++
	}
}

// evalBody runs the rule body strictly left-to-right (SLD order) under env,
// calling yield for each complete derivation. Lowlinks propagate from
// subgoals still on the stack, so mutually recursive goals end up in one
// SCC.
func (s *solver) evalBody(e *tableEntry, r *cRule, i int, en env, yield func()) {
	if i == len(r.body) {
		yield()
		return
	}
	a := r.body[i]
	sub := rdf.Triple{S: en.resolve(a.s), P: en.resolve(a.p), O: en.resolve(a.o)}
	se := s.solve(sub)
	if se.active && se.low < e.low {
		e.low = se.low
	}
	// Recursive solve calls underneath may grow se.answers while we range
	// over it; Go permits that (new entries may or may not be visited), and
	// the enclosing fixpoint loops pick up any answers missed here.
	for t := range se.answers {
		if bound, ok := en.bindTriple(a, t); ok {
			s.evalBody(e, r, i+1, en, yield)
			en.unbind(bound)
		}
	}
}

// unifyGoal binds head-atom variables from the goal's bound positions and
// checks constants; it reports whether the head can produce goal matches.
func unifyGoal(h cAtom, goal rdf.Triple, e env) bool {
	for _, pv := range [3]struct {
		term slotTerm
		val  rdf.ID
	}{{h.s, goal.S}, {h.p, goal.P}, {h.o, goal.O}} {
		if pv.val == rdf.Wildcard {
			continue
		}
		if !pv.term.isVar {
			if pv.term.id != pv.val {
				return false
			}
			continue
		}
		if cur := e[pv.term.slot]; cur != 0 && cur != pv.val {
			return false
		}
		e[pv.term.slot] = pv.val
	}
	return true
}

func matchesGoal(t, goal rdf.Triple) bool {
	return (goal.S == rdf.Wildcard || goal.S == t.S) &&
		(goal.P == rdf.Wildcard || goal.P == t.P) &&
		(goal.O == rdf.Wildcard || goal.O == t.O)
}
