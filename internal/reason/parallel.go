package reason

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Intra-worker parallel rule firing.
//
// The paper's parallelism stops at the partition boundary: each cluster
// worker runs its OWL-Horst fixpoint single-threaded. This file fans the
// fixpoint itself out over Forward.Threads goroutines, built on two
// invariants the rest of the repo already established:
//
//   - The graph is single-writer/multi-reader: during a *fire phase* no
//     goroutine mutates the graph — firing goroutines read it (Has,
//     CountMatch, ForEachMatch, Offset) and stage their conclusions into
//     per-goroutine DeltaStage shards. All log appends, posting-list
//     publications, and provenance writes happen in the *commit phase*, on
//     the coordinator goroutine, after the fork has joined. The WaitGroup
//     join is the happens-before edge between the two phases, so the MVCC
//     publication invariants (graph.go) are untouched.
//   - The join path is per-scratch zero-alloc: each firing goroutine
//     creates its own scratch inside the goroutine and never shares it
//     (the sharedscratch invariant, enforced by owlvet), so the serial
//     engine's 0-allocs/op steady state holds per shard.
//
// Scheduling is piecewise stratified (pieces.go): the compiled rule set is
// decomposed into dependency pieces grouped by level, each stratum keeps
// its own delta queue, and strata are swept in topological order so
// conclusions cascade downward within one sweep. Within a stratum the
// pieces are mutually independent, so the whole stratum's delta is chunked
// and claimed from a shared atomic cursor — the work-stealing fallback
// that keeps goroutines busy when a few delta triples are far more
// expensive than the rest (skew).
//
// Determinism contract: the closure is set-identical to the serial run,
// and with provenance on the derived-triple set is too; every record still
// round-trips through the verifier. Firing order differs, so *which*
// derivation is recorded for a multiply-derivable triple (and the log
// order within a sweep) may differ — exactly the latitude the serial
// engine already takes by iterating its pending set in map order. Journal
// counts (per-rule firings/derived/duplicates) reconcile with the work
// performed.

// parallelMinDelta is the queue size below which a stratum is fired inline
// on the coordinator goroutine: forking over a handful of triples costs
// more than the join work itself. Incremental closes over small seed sets
// (the live-serving path) take this branch and behave exactly like the
// serial engine plus one staging hop.
const parallelMinDelta = 128

// parallelMinChunk is the smallest delta chunk a goroutine claims; claims
// this coarse keep the atomic cursor off the per-triple path.
const parallelMinChunk = 64

// stratumPlan indexes one stratum's body atoms by predicate, the same
// trigger scheme as the serial loop but scoped to the stratum's rules.
type stratumPlan struct {
	byPred  map[rdf.ID][]trigger
	anyPred []trigger
	pieces  int
}

func (p *stratumPlan) empty() bool { return len(p.byPred) == 0 && len(p.anyPred) == 0 }

// wants reports whether t can trigger any rule of this stratum.
func (p *stratumPlan) wants(t rdf.Triple) bool {
	if len(p.anyPred) > 0 {
		return true
	}
	_, ok := p.byPred[t.P]
	return ok
}

// parRun carries one parallel materialization's shared state. Everything a
// firing goroutine writes is indexed by its shard number; the scratches
// themselves are *not* here — each goroutine creates its own and never
// publishes it (the sharedscratch invariant).
type parRun struct {
	g       *rdf.Graph
	crs     []cRule
	threads int

	stage    *rdf.DeltaStage
	sidecars [][]pendDeriv              // per shard, aligned with its staged triples (prov on)
	alts     []map[rdf.Triple]pendDeriv // per shard, first alternate candidate per duplicate (prov on)

	prov    *rdf.Prov
	provIDs []uint16
	sampler *obs.DeriveSampler

	// Per-shard profile tallies: ruleProf's slices are not goroutine-safe,
	// so shards tally locally and the coordinator folds them in after each
	// fork joins.
	prof    *ruleProf
	profOn  bool
	firings [][]int64
	matches [][]int64
	times   [][]time.Duration
	dups    [][]int64 // prov on: duplicate firings per rule, per shard

	// Coordinator-only provenance accounting, folded into prof at the end.
	derivedOf, dupOf []int64
}

// materializeParallel is the Threads>1 fire loop; see the file comment for
// the phase discipline and determinism contract.
//
//powl:ignore wallclock per-piece spans and per-rule profiling accumulate real durations, mirroring the serial loop; both are disabled when no collector is attached.
func (f Forward) materializeParallel(ctx context.Context, g *rdf.Graph, rs []rules.Rule, delta []rdf.Triple) (int, error) {
	crs, err := compileRules(rs)
	if err != nil {
		return 0, err
	}
	strata := stratify(crs)
	plans := make([]stratumPlan, len(strata))
	for s, ps := range strata {
		plan := &plans[s]
		plan.pieces = len(ps)
		plan.byPred = map[rdf.ID][]trigger{}
		for _, pc := range ps {
			for _, ri := range pc.rules {
				r := &crs[ri]
				for j, a := range r.body {
					if a.p.isVar {
						plan.anyPred = append(plan.anyPred, trigger{r, j})
					} else {
						plan.byPred[a.p.id] = append(plan.byPred[a.p.id], trigger{r, j})
					}
				}
			}
		}
	}

	prof := newRuleProf(ctx, crs)
	defer prof.flush()
	spans := obs.PiecesFrom(ctx)

	r := &parRun{
		g: g, crs: crs, threads: f.Threads,
		stage:  rdf.NewDeltaStage(f.Threads),
		prof:   prof,
		profOn: prof != nil,
	}
	if r.profOn {
		r.firings = perShardInt64(f.Threads, len(crs))
		r.matches = perShardInt64(f.Threads, len(crs))
		r.times = make([][]time.Duration, f.Threads)
		for i := range r.times {
			r.times[i] = make([]time.Duration, len(crs))
		}
	}
	if prov := g.Prov(); prov != nil {
		r.prov = prov
		r.sampler = obs.DerivesFrom(ctx)
		r.provIDs = make([]uint16, len(crs))
		for i := range crs {
			r.provIDs[i] = prov.RuleID(crs[i].name)
		}
		r.sidecars = make([][]pendDeriv, f.Threads)
		r.alts = make([]map[rdf.Triple]pendDeriv, f.Threads)
		for i := range r.alts {
			r.alts[i] = map[rdf.Triple]pendDeriv{}
		}
		r.dups = perShardInt64(f.Threads, len(crs))
		r.derivedOf = make([]int64, len(crs))
		r.dupOf = make([]int64, len(crs))
	}

	// Queue the initial delta at every stratum with a matching trigger. The
	// three-index slice caps capacity so routing appends can never scribble
	// on the caller's backing array.
	queues := make([][]rdf.Triple, len(strata))
	for s := range plans {
		if !plans[s].empty() {
			queues[s] = delta[:len(delta):len(delta)]
		}
	}

	added := 0
	sweep := 0
	var fresh []rdf.Triple
	for {
		progressed := false
		for s := range plans {
			d := queues[s]
			if len(d) == 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return added, err
			}
			queues[s] = nil
			progressed = true
			sweep++
			start := time.Now()
			if err := r.fireStratum(ctx, &plans[s], d); err != nil {
				return added, err
			}
			fresh = r.commit(sweep, fresh[:0])
			added += len(fresh)
			// Route the sweep's conclusions to every stratum that can
			// consume them — including this one, for recursive pieces.
			for _, t := range fresh {
				for s2 := range plans {
					if plans[s2].wants(t) {
						queues[s2] = append(queues[s2], t)
					}
				}
			}
			if spans != nil {
				spans.Record(obs.PieceSpan{
					Stratum: s, Pieces: plans[s].pieces, Sweep: sweep,
					Threads: f.Threads, Delta: len(d), Derived: len(fresh),
					Dur: time.Since(start),
				})
			}
		}
		if !progressed {
			break
		}
	}
	if r.prov != nil {
		for i := range crs {
			if r.derivedOf[i] != 0 || r.dupOf[i] != 0 {
				prof.addDerived(i, r.derivedOf[i], r.dupOf[i])
			}
		}
	}
	return added, nil
}

func perShardInt64(shards, rules int) [][]int64 {
	out := make([][]int64, shards)
	for i := range out {
		out[i] = make([]int64, rules)
	}
	return out
}

// fireStratum fans d out over the run's goroutines. Chunks are claimed
// from a shared atomic cursor — the work-stealing fallback: a goroutine
// that drew cheap triples keeps claiming chunks while a slow one is still
// inside its own, so a skewed delta cannot serialize the stratum. Small
// deltas fire inline on the coordinator (shard 0) instead of forking.
func (r *parRun) fireStratum(ctx context.Context, plan *stratumPlan, d []rdf.Triple) error {
	nw := r.threads
	if len(d) < parallelMinDelta {
		nw = 1
	}
	chunk := len(d) / (nw * 4)
	if chunk < parallelMinChunk {
		chunk = parallelMinChunk
	}
	var next atomic.Int64
	var failed atomic.Bool
	if nw == 1 {
		r.fireShard(ctx, plan, d, 0, &next, chunk, &failed)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r.fireShard(ctx, plan, d, w, &next, chunk, &failed)
			}(w)
		}
		wg.Wait()
	}
	r.mergeProf()
	if failed.Load() {
		return ctx.Err()
	}
	return nil
}

// fireShard is one goroutine's share of a stratum firing. The scratch is
// created here, inside the goroutine that uses it, and never escapes — the
// sharedscratch invariant owlvet enforces. During the firing the graph is
// read-only (every conclusion is staged into this goroutine's shard), so
// the concurrent Has/CountMatch/ForEachMatch/Offset calls race with
// nothing; the coordinator is parked on the WaitGroup until every shard
// returns.
//
//powl:ignore wallclock chained per-rule profiling timestamps, mirroring the serial fire loop; disabled when no collector is attached.
func (r *parRun) fireShard(ctx context.Context, plan *stratumPlan, d []rdf.Triple, w int, next *atomic.Int64, chunk int, failed *atomic.Bool) {
	sc := newScratch(r.crs)
	sh := r.stage.Shard(w)
	g := r.g
	var emit func(rdf.Triple)
	if r.prov == nil {
		emit = func(t rdf.Triple) {
			if !g.Has(t) {
				sh.Add(t)
			}
		}
	} else {
		sc.rec = true
		alt := r.alts[w]
		dup := r.dups[w]
		emit = func(t rdf.Triple) {
			if g.Has(t) {
				dup[sc.cur.idx]++
				// First independent re-derivation of an existing triple:
				// buffer it as the offset's alternate candidate — the
				// coordinator records it at commit, because Prov is
				// coordinator-write-only. The AltAt probe is a concurrent
				// read of a map nothing writes during the fire phase, and
				// it is what keeps this path allocation-free once the
				// alternate is on record.
				if len(sc.cur.body) > len(sc.prem) {
					return
				}
				if _, have := alt[t]; have {
					return
				}
				if off, ok := g.Offset(t); ok {
					if _, has := r.prov.AltAt(off); has {
						return
					}
				}
				alt[t] = capturePend(sc)
				return
			}
			if !sh.Add(t) {
				// Same-shard duplicate: the primary has no offset yet, so
				// always buffer; the commit resolves it after the insert.
				dup[sc.cur.idx]++
				if _, have := alt[t]; !have && len(sc.cur.body) <= len(sc.prem) {
					alt[t] = capturePend(sc)
				}
				return
			}
			r.sidecars[w] = append(r.sidecars[w], capturePend(sc))
		}
	}
	for {
		if failed.Load() {
			return
		}
		c := next.Add(1) - 1
		lo := int(c) * chunk
		if lo >= len(d) {
			return
		}
		hi := lo + chunk
		if hi > len(d) {
			hi = len(d)
		}
		for i, t := range d[lo:hi] {
			if i&255 == 255 && ctx.Err() != nil {
				failed.Store(true)
				return
			}
			if !r.profOn {
				for _, tr := range plan.byPred[t.P] {
					fireOn(g, sc, tr, t, emit)
				}
				for _, tr := range plan.anyPred {
					fireOn(g, sc, tr, t, emit)
				}
			} else {
				t0 := time.Now()
				for _, tr := range plan.byPred[t.P] {
					m, fr := fireOn(g, sc, tr, t, emit)
					t1 := time.Now()
					r.firings[w][tr.rule.idx] += fr
					r.matches[w][tr.rule.idx] += m
					r.times[w][tr.rule.idx] += t1.Sub(t0)
					t0 = t1
				}
				for _, tr := range plan.anyPred {
					m, fr := fireOn(g, sc, tr, t, emit)
					t1 := time.Now()
					r.firings[w][tr.rule.idx] += fr
					r.matches[w][tr.rule.idx] += m
					r.times[w][tr.rule.idx] += t1.Sub(t0)
					t0 = t1
				}
			}
		}
	}
}

// capturePend snapshots the current firing's provenance out of the
// scratch: the rule plus its first three premises, body-atom order.
func capturePend(sc *scratch) pendDeriv {
	pd := pendDeriv{rule: sc.cur}
	np := len(sc.cur.body)
	if np > len(pd.prem) {
		np = len(pd.prem)
	}
	copy(pd.prem[:np], sc.prem[:np])
	pd.np = uint8(np)
	return pd
}

// mergeProf folds the shards' tallies into the shared profile and zeroes
// them for the next firing. Coordinator-only, after the fork joins.
func (r *parRun) mergeProf() {
	if !r.profOn {
		return
	}
	for w := range r.firings {
		for i := range r.crs {
			if r.firings[w][i] != 0 || r.matches[w][i] != 0 || r.times[w][i] != 0 {
				r.prof.add(i, r.firings[w][i], r.matches[w][i], r.times[w][i])
				r.firings[w][i], r.matches[w][i], r.times[w][i] = 0, 0, 0
			}
		}
	}
}

// commit drains the stage into the log — the single-writer commit the MVCC
// publication invariants require — and returns the triples that were new
// to the graph, appended to fresh. Cross-shard duplicates lose the
// AddDerived race and are recorded as the winner's alternate derivation,
// which is exactly what the serial engine's same-round duplicate handling
// records. Coordinator-only.
func (r *parRun) commit(sweep int, fresh []rdf.Triple) []rdf.Triple {
	r16 := uint16(sweep)
	if sweep > int(^uint16(0)) {
		r16 = ^uint16(0)
	}
	for w := 0; w < r.stage.Shards(); w++ {
		sh := r.stage.Shard(w)
		if r.prov == nil {
			for _, t := range sh.Triples() {
				// AddDerived rather than Add, as in the serial loop: the
				// derived bit is what the provenance-off Retract fallback
				// keys on.
				if r.g.AddDerived(t, rdf.Derivation{}) {
					fresh = append(fresh, t)
				}
			}
		} else {
			side := r.sidecars[w]
			for i, t := range sh.Triples() {
				pd := side[i]
				if r.g.AddDerived(t, r.resolve(pd, r16)) {
					fresh = append(fresh, t)
					r.derivedOf[pd.rule.idx]++
					if r.sampler != nil {
						if off, ok := r.g.Offset(t); ok {
							r.sampler.Sample(pd.rule.name, sweep, off)
						}
					}
				} else {
					r.dupOf[pd.rule.idx]++
					r.recordAlt(t, pd, r16)
				}
			}
			r.sidecars[w] = side[:0]
		}
		sh.Reset()
	}
	if r.prov != nil {
		for w := range r.alts {
			for t, pd := range r.alts[w] {
				r.recordAlt(t, pd, r16)
			}
			clear(r.alts[w])
		}
		for w := range r.dups {
			for i, n := range r.dups[w] {
				if n != 0 {
					r.dupOf[i] += n
					r.dups[w][i] = 0
				}
			}
		}
	}
	return fresh
}

// resolve rebuilds pd on its premises' current log offsets. Premises were
// graph triples at fire time (or delta seeds the caller never inserted, in
// which case the slot stays NoPremise and the record is fragile — same as
// the serial path).
func (r *parRun) resolve(pd pendDeriv, round uint16) rdf.Derivation {
	d := rdf.Derivation{
		Rule:  r.provIDs[pd.rule.idx],
		Round: round,
		Prem:  [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
	}
	for i := 0; i < int(pd.np); i++ {
		if off, ok := r.g.Offset(pd.prem[i]); ok {
			d.Prem[i] = off
		}
	}
	return d
}

// recordAlt records pd as t's alternate derivation when t is live, the
// rule's whole body fits the record, and no alternate is on file yet.
// Coordinator-only (Prov writes).
func (r *parRun) recordAlt(t rdf.Triple, pd pendDeriv, round uint16) {
	if len(pd.rule.body) > len(pd.prem) {
		return
	}
	off, ok := r.g.Offset(t)
	if !ok {
		return
	}
	if _, have := r.prov.AltAt(off); have {
		return
	}
	r.prov.RecordAlt(off, r.resolve(pd, round))
}
