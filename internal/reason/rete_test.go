package reason

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powl/internal/rdf"
)

func TestReteMatchesForwardOnBasics(t *testing.T) {
	f := newFx()
	p := f.id("p")
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	f.add(a, p, b)
	f.add(b, p, c)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	fw := f.g.Clone()
	Forward{}.Materialize(fw, rs)
	rt := f.g.Clone()
	Rete{}.Materialize(rt, rs)
	if !rt.Equal(fw) {
		t.Fatalf("rete %d != forward %d", rt.Len(), fw.Len())
	}
}

func TestReteTransitiveCycle(t *testing.T) {
	f := newFx()
	p := f.id("p")
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	f.add(a, p, b)
	f.add(b, p, c)
	f.add(c, p, a)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	g := f.g.Clone()
	Rete{}.Materialize(g, rs)
	if g.Len() != 9 {
		t.Fatalf("cycle closure has %d triples, want 9", g.Len())
	}
}

func TestReteVariablePredicateAndMultiHead(t *testing.T) {
	f := newFx()
	same := f.id("same")
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	p := f.id("p")
	f.add(a, same, b)
	f.add(a, p, c)
	rs := f.parse(`
[subst: (?x t:same ?y) (?x ?q ?z) -> (?y ?q ?z)]
[mh: (?x t:p ?y) -> (?x t:q ?y) (?y t:r ?x)]
`)
	fw := f.g.Clone()
	Forward{}.Materialize(fw, rs)
	rt := f.g.Clone()
	Rete{}.Materialize(rt, rs)
	if !rt.Equal(fw) {
		t.Fatalf("rete disagrees: missing=%v extra=%v", fw.Diff(rt), rt.Diff(fw))
	}
}

func TestReteThreeAtomBody(t *testing.T) {
	f := newFx()
	p, q, r, out := f.id("p"), f.id("q"), f.id("r"), f.id("out")
	a, b, c, d := f.id("a"), f.id("b"), f.id("c"), f.id("d")
	f.add(a, p, b)
	f.add(b, q, c)
	f.add(c, r, d)
	rs := f.parse(`[j3: (?w t:p ?x) (?x t:q ?y) (?y t:r ?z) -> (?w t:out ?z)]`)
	g := f.g.Clone()
	Rete{}.Materialize(g, rs)
	if !g.Has(rdf.Triple{S: a, P: out, O: d}) {
		t.Error("3-way join missing")
	}
}

// TestReteAssertionOrderIrrelevant: the memories make joins retroactive, so
// any assertion order yields the same closure.
func TestReteAssertionOrderIrrelevant(t *testing.T) {
	f := newFx()
	p := f.id("p")
	nodes := make([]rdf.ID, 8)
	for i := range nodes {
		nodes[i] = f.id("n" + string(rune('0'+i)))
	}
	for i := 0; i+1 < len(nodes); i++ {
		f.add(nodes[i], p, nodes[i+1])
	}
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	want := f.g.Clone()
	Rete{}.Materialize(want, rs)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		ts := f.g.Triples()
		rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
		g := rdf.NewGraph()
		g.AddAll(ts)
		Rete{}.Materialize(g, rs)
		if !g.Equal(want) {
			t.Fatalf("trial %d: order-dependent closure", trial)
		}
	}
}

func TestReteIncrementalMatchesFull(t *testing.T) {
	f := newFx()
	p := f.id("p")
	a, b, c, d := f.id("a"), f.id("b"), f.id("c"), f.id("d")
	f.add(a, p, b)
	f.add(b, p, c)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	g := f.g.Clone()
	Rete{}.Materialize(g, rs)
	seed := rdf.Triple{S: c, P: p, O: d}
	g.Add(seed)
	Rete{}.MaterializeFrom(g, rs, []rdf.Triple{seed})

	ref := f.g.Clone()
	ref.Add(seed)
	Forward{}.Materialize(ref, rs)
	if !g.Equal(ref) {
		t.Fatalf("incremental rete %d != reference %d; missing=%v", g.Len(), ref.Len(), ref.Diff(g))
	}
}

// TestReteAgreesProperty: random graphs and rule sets, rete vs forward.
func TestReteAgreesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := newFx()
		nPreds := 2 + rng.Intn(3)
		rs := randomRuleSet(f, rng, nPreds)
		nNodes := 4 + rng.Intn(8)
		nodes := make([]rdf.ID, nNodes)
		for i := range nodes {
			nodes[i] = f.id("n" + string(rune('0'+i)))
		}
		for i := 0; i < 3*nNodes; i++ {
			f.add(nodes[rng.Intn(nNodes)],
				f.id("pred"+string(rune('A'+rng.Intn(nPreds)))),
				nodes[rng.Intn(nNodes)])
		}
		fw := f.g.Clone()
		Forward{}.Materialize(fw, rs)
		rt := f.g.Clone()
		Rete{}.Materialize(rt, rs)
		return fw.Equal(rt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReteName(t *testing.T) {
	if (Rete{}).Name() != "rete" {
		t.Error("rete name")
	}
}
