package reason

import (
	"testing"

	"powl/internal/rdf"
)

// BenchmarkJoinFireOn measures the steady-state per-delta join path: the
// graph is at fixpoint, so every firing runs the full bind → selectivity
// rank → index scan → emit-dedup sequence without growing anything. This is
// the path the zero-allocation regression test pins; allocs/op here should
// stay at 0.
func BenchmarkJoinFireOn(b *testing.B) {
	g, rs, deltas := allocFixture()
	Forward{}.Materialize(g, rs)
	crs := mustCompileRules(rs)
	byPred := map[rdf.ID][]trigger{}
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
		}
	}
	sc := newScratch(crs)
	emit := func(tr rdf.Triple) {
		if !g.Has(tr) {
			b.Fatal("fixture not at fixpoint")
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := deltas[i%len(deltas)]
		for _, tr := range byPred[d.P] {
			fireOn(g, sc, tr, d, emit)
		}
	}
}

// BenchmarkJoinMaterialize measures a full semi-naive materialization of the
// join fixture from scratch — clone, fixpoint rounds, pending-buffer churn —
// i.e. everything BenchmarkJoinFireOn's steady state leaves out.
func BenchmarkJoinMaterialize(b *testing.B) {
	g, rs, _ := allocFixture()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		if (Forward{}).Materialize(c, rs) == 0 {
			b.Fatal("fixture derived nothing")
		}
	}
}
