package reason

import (
	"testing"

	"powl/internal/rdf"
)

// TestJoinPathZeroAllocsProvCapture pins the provenance-recording join path:
// with sc.rec set, fireOn and joinRest additionally write the firing rule
// and premise triples into the scratch, and that capture must be as
// allocation-free as the disabled path — the premises live in a fixed
// [3]rdf.Triple, not a growing slice.
func TestJoinPathZeroAllocsProvCapture(t *testing.T) {
	g, rs, deltas := allocFixture()
	Forward{}.Materialize(g, rs)

	crs := mustCompileRules(rs)
	byPred := map[rdf.ID][]trigger{}
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
		}
	}
	sc := newScratch(crs)
	sc.rec = true
	pending := map[rdf.Triple]struct{}{}
	emit := func(tr rdf.Triple) {
		if !g.Has(tr) {
			pending[tr] = struct{}{}
		}
	}
	run := func() {
		for _, d := range deltas {
			for _, tr := range byPred[d.P] {
				fireOn(g, sc, tr, d, emit)
			}
		}
	}
	run()
	if len(pending) != 0 {
		t.Fatalf("graph not at fixpoint: %d pending emits", len(pending))
	}
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("recording join path allocates %.1f times per run, want 0", avg)
	}
}

// The Materialize pair below is what CI diffs for BENCH_7: the full
// semi-naive materialization with provenance off versus on, same fixture.
// The on-path cost is the side-column append, the pendProv bookkeeping, and
// offset resolution at round flush.

func BenchmarkMaterializeProvOff(b *testing.B) {
	g0, rs, _ := allocFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := g0.Clone()
		Forward{}.Materialize(g, rs)
	}
}

func BenchmarkMaterializeProvOn(b *testing.B) {
	g0, rs, _ := allocFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := g0.Clone()
		g.EnableProv()
		Forward{}.Materialize(g, rs)
	}
}
