package reason

import (
	"context"
	"time"

	"powl/internal/obs"
)

// ruleProf is the engine-local per-rule tally used while a materialization
// runs under an obs.RuleCollector (attached to the context by the cluster
// layer). It is indexed by compiled-rule index, so the recording path is
// plain slice arithmetic with no locks or map lookups; the shared
// collector is touched exactly once, at flush. A nil *ruleProf is the
// disabled state: engines check it once per activation, which is the whole
// hot-path cost when observability is off.
type ruleProf struct {
	rc      *obs.RuleCollector
	names   []string
	firings []int64
	matches []int64
	time    []time.Duration
	derived []int64 // conclusions new to the graph (provenance on)
	dup     []int64 // conclusions that already existed (provenance on)
}

// newRuleProf returns a tally for the compiled rules when ctx carries a
// rule collector, nil otherwise.
func newRuleProf(ctx context.Context, crs []cRule) *ruleProf {
	rc := obs.RulesFrom(ctx)
	if rc == nil {
		return nil
	}
	p := &ruleProf{
		rc:      rc,
		names:   make([]string, len(crs)),
		firings: make([]int64, len(crs)),
		matches: make([]int64, len(crs)),
		time:    make([]time.Duration, len(crs)),
		derived: make([]int64, len(crs)),
		dup:     make([]int64, len(crs)),
	}
	for i, r := range crs {
		p.names[i] = r.name
	}
	return p
}

// add merges one activation's counts into rule idx's tally.
func (p *ruleProf) add(idx int, firings, matches int64, d time.Duration) {
	p.firings[idx] += firings
	p.matches[idx] += matches
	p.time[idx] += d
}

// addDerived merges one materialization's derived/duplicate split (tallied
// by the provenance path) into rule idx's tally. Nil-safe, unlike add: the
// provenance flush calls it once per rule, not per firing.
func (p *ruleProf) addDerived(idx int, derived, dup int64) {
	if p == nil {
		return
	}
	p.derived[idx] += derived
	p.dup[idx] += dup
}

// flush pushes the tally into the shared collector — every compiled rule,
// including those that never fired: a rule absent from the profile is
// indistinguishable from a rule that was never compiled, and "this rule is
// dead on this dataset" is a signal the report must be able to surface.
// Call via defer so cancelled materializations still report the work they
// did.
func (p *ruleProf) flush() {
	if p == nil {
		return
	}
	for i, name := range p.names {
		p.rc.Record(name, p.firings[i], p.matches[i], p.time[i])
		if p.derived[i] != 0 || p.dup[i] != 0 {
			p.rc.RecordDerived(name, p.derived[i], p.dup[i])
		}
	}
}
