package reason

import (
	"context"
	"sort"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Incremental is implemented by engines that can re-establish the closure of
// an already-materialized graph after new tuples arrive, without redoing the
// full materialization. The cluster workers use it for every round after the
// first: the graph was at fixpoint at the end of the previous round, so only
// derivations involving the newly received seed tuples can be missing.
type Incremental interface {
	// MaterializeFrom adds all triples derivable from g given that g was
	// closed under rs before the seed tuples were inserted. It returns the
	// number of triples added. Calling it with an arbitrary (non-closed) g
	// is not complete — use Materialize for that.
	MaterializeFrom(g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) int
}

// MaterializeFrom implements Incremental for the forward engine: it is the
// semi-naive round with the delta seeded by the new tuples instead of the
// whole graph. Because g was previously at fixpoint, every missing
// derivation joins at least one seed, so seeding the delta with the seeds is
// complete.
func (f Forward) MaterializeFrom(g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) int {
	n, err := f.MaterializeFromCtx(context.Background(), g, rs, seeds)
	if err != nil {
		// Background ctx never expires, so the only error here is an
		// inexecutable rule set — a caller-side validation bug (see
		// Materialize).
		panic(err)
	}
	return n
}

// MaterializeFromCtx implements IncrementalContext.
func (f Forward) MaterializeFromCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) (int, error) {
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	return f.materialize(ctx, g, rs, seeds)
}

// MaterializeFrom implements Incremental for the hybrid engine.
//
// By default the delta is closed bottom-up with the forward engine's
// semi-naive round: the paper's expensive per-resource backward driver is
// the *full* materialization the experiments measure, while closing over a
// handful of received tuples is wrapper-level machinery for which any
// datalog evaluation produces the same closure (§V: "our work is applicable
// to any kind of reasoner that adheres to datalog semantics").
//
// With FrontierDelta set, the delta instead re-uses the backward engine:
// every missing closure triple joins (transitively) through the seeds, and
// with single-join rules the subject of a derived triple is always a term
// of one of the two joined tuples, so per-resource queries over an
// expanding frontier — the seed tuples' resources plus their graph
// neighbours, then the resources (and neighbours) of each new triple —
// reach every affected subject. BenchmarkAblation_Delta compares the two.
func (h Hybrid) MaterializeFrom(g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) int {
	n, _ := h.MaterializeFromCtx(context.Background(), g, rs, seeds)
	return n
}

// MaterializeFromCtx implements IncrementalContext; the frontier loop
// checks ctx per batch.
func (h Hybrid) MaterializeFromCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) (int, error) {
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	if !h.FrontierDelta {
		return Forward{Threads: h.Threads}.MaterializeFromCtx(ctx, g, rs, seeds)
	}
	crs, err := compileRules(rs)
	if err != nil {
		return 0, err
	}
	prof := newRuleProf(ctx, crs)
	defer prof.flush()
	queried := map[rdf.ID]struct{}{}
	frontier := map[rdf.ID]struct{}{}
	addWithNeighbors := func(id rdf.ID) {
		if _, done := queried[id]; !done {
			frontier[id] = struct{}{}
		}
		g.ForEachMatch(id, rdf.Wildcard, rdf.Wildcard, func(t rdf.Triple) bool {
			if _, done := queried[t.O]; !done {
				frontier[t.O] = struct{}{}
			}
			return true
		})
		g.ForEachMatch(rdf.Wildcard, rdf.Wildcard, id, func(t rdf.Triple) bool {
			if _, done := queried[t.S]; !done {
				frontier[t.S] = struct{}{}
			}
			return true
		})
	}
	for _, t := range seeds {
		addWithNeighbors(t.S)
		addWithNeighbors(t.O)
	}

	// One table for the whole delta pass: the per-query table reset that
	// models Jena's worst case applies to the full materialization driver;
	// the incremental close is powl's own wrapper-level machinery, so it
	// uses tabling efficiently.
	added := 0
	s := newSolver(g, crs)
	s.prof = prof
	prov := g.Prov()
	var (
		sampler *obs.DeriveSampler
		provIDs []uint16
	)
	if prov != nil {
		sampler = obs.DerivesFrom(ctx)
		provIDs = make([]uint16, len(crs))
		for i := range crs {
			provIDs[i] = prov.RuleID(crs[i].name)
		}
		s.rec = true
		s.lin = map[rdf.Triple]pendDeriv{}
	}
	var pending []rdf.Triple
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return added, err
		}
		batch := make([]rdf.ID, 0, len(frontier))
		for id := range frontier {
			batch = append(batch, id)
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
		frontier = map[rdf.ID]struct{}{}

		pending = pending[:0]
		for _, r := range batch {
			if _, done := queried[r]; done {
				continue
			}
			queried[r] = struct{}{}
			e := s.solve(rdf.Triple{S: r, P: rdf.Wildcard, O: rdf.Wildcard})
			for t := range e.answers {
				if !g.Has(t) {
					pending = append(pending, t)
				}
			}
		}
		for _, t := range pending {
			ok := false
			if prov == nil {
				// Mark derived even without records (see forward.go): the
				// derived bit is what the provenance-off Retract fallback
				// keys its delete-and-rematerialize on.
				ok = g.AddDerived(t, rdf.Derivation{})
			} else {
				ok = s.addDerivedFromLin(provIDs, sampler, t)
			}
			if ok {
				added++
				addWithNeighbors(t.S)
				addWithNeighbors(t.O)
			}
		}
	}
	return added, nil
}
