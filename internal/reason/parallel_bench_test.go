// Threads-scaling benchmark for the intra-worker parallel fire loop. CI's
// bench-smoke job parses the threads=1/2/4 rows into BENCH_10.json and
// records speedup@4 = t1/t4 — the artifact the ≥2× acceptance gate reads on
// multi-core runners (a single-core container reports ~1×; the equality
// tests, not this benchmark, are the correctness net there).
package reason_test

import (
	"fmt"
	"testing"

	"powl/internal/datagen"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
)

func BenchmarkMaterializeThreads(b *testing.B) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := rdf.NewGraphCap(2 * (len(instance) + compiled.Schema.Len()))
				g.AddAll(instance)
				g.Union(compiled.Schema)
				b.StartTimer()
				if (reason.Forward{Threads: threads}).Materialize(g, compiled.InstanceRules) == 0 {
					b.Fatal("fixture derived nothing")
				}
			}
		})
	}
}
