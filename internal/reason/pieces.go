package reason

// Piece stratification: the static analysis behind the intra-worker
// parallel fire loop (parallel.go), after the piece decomposition of
// "Parallelisable Existential Rules: a Story of Pieces".
//
// Rule i *feeds* rule j when some head atom of i can produce a triple that
// matches some body atom of j. The check is predicate overlap only — equal
// predicate constants, or either predicate a variable — which is
// conservative: subject/object constants that would rule a match out are
// ignored, so the dependency graph may have edges the data never exercises,
// never the reverse. Missing an edge would let a piece fire before its
// premises exist within a sweep; an extra edge only costs scheduling
// freedom.
//
// The strongly connected components of the feeds graph are the *pieces*:
// mutually recursive rules that must iterate to fixpoint together. The
// condensation DAG is levelled by longest path from the sources; pieces on
// the same level share no dependency path in either direction, so their
// firings are independent and a level's whole delta can fan out across
// goroutines with no barrier between pieces. Processing levels in ascending
// order lets one sweep cascade derivations downward: a stratum-0 conclusion
// reaches its stratum-1 consumers within the same sweep instead of waiting
// a full semi-naive round.
//
// OWL-Horst instance rule sets are dominated by rdf:type-headed,
// rdf:type-bodied rules, so most of them collapse into one large piece plus
// a tail of small downstream strata — the parallel win there comes from
// fanning each stratum's delta across threads. Layered rule sets (custom
// datalog without recursion through every predicate) additionally gain the
// fewer-sweeps cascade.

// piece is one strongly connected component of the rule dependency graph.
type piece struct {
	rules []int // compiled-rule indices, ascending
}

// feeds reports whether a conclusion of a can match a body atom of b,
// judged on predicates alone.
func feeds(a, b *cRule) bool {
	for _, h := range a.head {
		for _, t := range b.body {
			if h.p.isVar || t.p.isVar || h.p.id == t.p.id {
				return true
			}
		}
	}
	return false
}

// stratify decomposes the compiled rule set into pieces grouped by
// dependency level: strata[0] holds the pieces fed by no other piece, and
// every piece's feeders sit at strictly lower levels. Within a stratum,
// pieces are ordered by their smallest rule index, so the decomposition is
// deterministic for a given rule set.
func stratify(crs []cRule) [][]piece {
	n := len(crs)
	if n == 0 {
		return nil
	}
	adj := make([][]int, n)
	for i := range crs {
		for j := range crs {
			if feeds(&crs[i], &crs[j]) {
				adj[i] = append(adj[i], j)
			}
		}
	}

	// Tarjan's SCC, iterative (rule sets are small, but recursion depth
	// should not depend on rule count). comp[v] is v's component id;
	// components are numbered in reverse topological order.
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	ncomp := 0
	next := 0
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				switch {
				case index[w] == unvisited:
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				case onStack[w]:
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}

	// Level the condensation by longest path. Tarjan numbers components in
	// reverse topological order, so iterating components descending visits
	// every feeder before its consumers.
	level := make([]int, ncomp)
	maxLevel := 0
	for c := ncomp - 1; c >= 0; c-- {
		for v := 0; v < n; v++ {
			if comp[v] != c {
				continue
			}
			for _, w := range adj[v] {
				if d := comp[w]; d != c && level[c]+1 > level[d] {
					level[d] = level[c] + 1
				}
			}
		}
		if level[c] > maxLevel {
			maxLevel = level[c]
		}
	}

	members := make([][]int, ncomp)
	for v := 0; v < n; v++ {
		members[comp[v]] = append(members[comp[v]], v) // ascending: v ascends
	}
	strata := make([][]piece, maxLevel+1)
	// Descending component id = ascending discovery order of the smallest
	// member, which keeps piece order within a stratum deterministic.
	for c := ncomp - 1; c >= 0; c-- {
		strata[level[c]] = append(strata[level[c]], piece{rules: members[c]})
	}
	return strata
}
