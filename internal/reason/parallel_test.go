// Equality and accounting tests for the intra-worker parallel fire loop.
// Run them under -race (the CI race job does): the fire phase's concurrent
// graph reads against the coordinator-only commit phase is precisely the
// discipline the race detector can falsify.
//
// External test package: owlhorst imports reason, so importing owlhorst
// from package reason would cycle.
package reason_test

import (
	"context"
	"fmt"
	"testing"

	"powl/internal/datagen"
	"powl/internal/obs"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

// parallelFixture is one dataset the equality tests close: base builds a
// fresh unclosed graph (instance + schema) so every engine run starts from
// an identical state.
type parallelFixture struct {
	name  string
	rs    []rules.Rule
	base  func(prov bool) *rdf.Graph
	seeds []rdf.Triple
}

func parallelFixtures(t *testing.T) []parallelFixture {
	t.Helper()
	var out []parallelFixture
	build := func(name string, ds *datagen.Dataset) {
		compiled := owlhorst.Compile(ds.Dict, ds.Graph)
		instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
		out = append(out, parallelFixture{
			name: name,
			rs:   compiled.InstanceRules,
			base: func(prov bool) *rdf.Graph {
				g := rdf.NewGraph()
				if prov {
					g.EnableProv()
				}
				g.AddAll(instance)
				g.Union(compiled.Schema)
				return g
			},
			seeds: instance,
		})
	}
	build("lubm", datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2}))
	build("uobm", datagen.UOBM(datagen.UOBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2}))
	return out
}

// closureSet maps every live triple to whether the engine derived it — the
// two facts the determinism contract fixes. Log order and premise choice
// are free to differ (they differ between serial runs already).
func closureSet(g *rdf.Graph) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool, g.Len())
	for off, t := range g.Triples() {
		out[t] = g.IsDerivedOffset(uint32(off))
	}
	return out
}

func diffClosure(t *testing.T, label string, want, got map[rdf.Triple]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: closure size %d, serial %d", label, len(got), len(want))
	}
	missing, extra, flipped := 0, 0, 0
	for tr, derived := range want {
		gd, ok := got[tr]
		switch {
		case !ok:
			missing++
		case gd != derived:
			flipped++
		}
		_ = gd
	}
	for tr := range got {
		if _, ok := want[tr]; !ok {
			extra++
		}
	}
	if missing != 0 || extra != 0 || flipped != 0 {
		t.Errorf("%s: closure diverges from serial: %d missing, %d extra, %d derived-bit flips",
			label, missing, extra, flipped)
	}
}

// TestParallelMaterializeEquivalence closes lubm and uobm Quick at
// Threads ∈ {1, 2, 4}, with and without provenance, and checks the closure
// (and derived partition) is set-identical to the serial engine's. With
// provenance on, every parallel-recorded derivation must also round-trip
// through the verifier — "provenance set-identical" in the contract's
// sense: same derived set, every record valid.
func TestParallelMaterializeEquivalence(t *testing.T) {
	for _, fx := range parallelFixtures(t) {
		for _, prov := range []bool{false, true} {
			serial := fx.base(prov)
			sn := reason.Forward{}.Materialize(serial, fx.rs)
			want := closureSet(serial)
			for _, threads := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s/prov=%v/threads=%d", fx.name, prov, threads)
				g := fx.base(prov)
				n := reason.Forward{Threads: threads}.Materialize(g, fx.rs)
				if n != sn {
					t.Errorf("%s: added %d triples, serial added %d", label, n, sn)
				}
				diffClosure(t, label, want, closureSet(g))
				if prov {
					verifyAllDerived(t, g, fx.rs)
				}
			}
		}
	}
}

// TestParallelIncrementalEquivalence exercises the MaterializeFrom path the
// live-serving writer uses: close a graph missing a slice of its instance
// triples, then insert the slice and close incrementally at each thread
// count. The fixpoint must match the all-at-once serial closure.
func TestParallelIncrementalEquivalence(t *testing.T) {
	fx := parallelFixtures(t)[0] // lubm
	full := fx.base(true)
	reason.Forward{}.Materialize(full, fx.rs)
	want := len(closureSet(full))

	hold := len(fx.seeds) / 10
	for _, threads := range []int{1, 2, 4} {
		g := rdf.NewGraph()
		g.EnableProv()
		g.AddAll(fx.seeds[hold:])
		ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2})
		compiled := owlhorst.Compile(ds.Dict, ds.Graph)
		g.Union(compiled.Schema)
		f := reason.Forward{Threads: threads}
		f.Materialize(g, fx.rs)
		seeds := make([]rdf.Triple, 0, hold)
		for _, tr := range fx.seeds[:hold] {
			if g.Add(tr) {
				seeds = append(seeds, tr)
			}
		}
		f.MaterializeFrom(g, fx.rs, seeds)
		if got := len(closureSet(g)); got != want {
			t.Errorf("threads=%d: incremental close reached %d triples, full serial closure has %d", threads, got, want)
		}
		verifyAllDerived(t, g, fx.rs)
	}
}

// TestParallelProfileReconciles pins the journal-count side of the
// contract: with a rule collector and piece collector attached, the
// per-rule derived tallies must sum to the triples actually added, and the
// per-piece spans must account for the same total.
func TestParallelProfileReconciles(t *testing.T) {
	fx := parallelFixtures(t)[0] // lubm
	g := fx.base(true)
	rc := &obs.RuleCollector{}
	pc := &obs.PieceCollector{}
	ctx := obs.ContextWithPieces(obs.ContextWithRules(context.Background(), rc), pc)
	added, err := reason.Forward{Threads: 4}.MaterializeCtx(ctx, g, fx.rs)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("fixture derived nothing; the test would measure nothing")
	}
	var derived, firings int64
	for _, st := range rc.Snapshot() {
		derived += st.Derived
		firings += st.Firings
	}
	if derived != int64(added) {
		t.Errorf("rule profiles report %d derived, engine added %d", derived, added)
	}
	if firings < derived {
		t.Errorf("rule profiles report %d firings < %d derived", firings, derived)
	}
	spans := pc.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no piece spans recorded")
	}
	spanDerived := 0
	for _, sp := range spans {
		spanDerived += sp.Derived
		if sp.Threads != 4 {
			t.Errorf("span records %d threads, want 4", sp.Threads)
		}
	}
	if spanDerived != added {
		t.Errorf("piece spans account for %d derived, engine added %d", spanDerived, added)
	}
}

// wideRule returns a rule with more variables than the engines' maxSlots
// (64): 22 three-variable atoms bind 66 distinct variables.
func wideRule() rules.Rule {
	r := rules.Rule{Name: "too-wide"}
	v := 0
	for i := 0; i < 22; i++ {
		r.Body = append(r.Body, rules.Atom{
			S: rules.Var(fmt.Sprintf("v%d", v)),
			P: rules.Var(fmt.Sprintf("v%d", v+1)),
			O: rules.Var(fmt.Sprintf("v%d", v+2)),
		})
		v += 3
	}
	r.Head = append(r.Head, rules.Atom{
		S: rules.Var("v0"), P: rules.Var("v1"), O: rules.Var("v2"),
	})
	return r
}

// TestValidateRulesTooWide pins the satellite bugfix: a rule exceeding
// maxSlots variables must surface as an error from validation and from the
// cancellable materialize entry points — not as a panic inside a live
// server's writer loop.
func TestValidateRulesTooWide(t *testing.T) {
	bad := []rules.Rule{wideRule()}
	if err := reason.ValidateRules(bad); err == nil {
		t.Fatal("ValidateRules accepted a 66-variable rule")
	}
	if err := reason.ValidateRules(nil); err != nil {
		t.Fatalf("ValidateRules rejected an empty rule set: %v", err)
	}
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: 1, P: 2, O: 3})
	if _, err := (reason.Forward{}).MaterializeCtx(context.Background(), g, bad); err == nil {
		t.Error("Forward.MaterializeCtx accepted the rule set")
	}
	if _, err := (reason.Forward{Threads: 4}).MaterializeCtx(context.Background(), g, bad); err == nil {
		t.Error("parallel Forward.MaterializeCtx accepted the rule set")
	}
	if _, err := (reason.Hybrid{}).MaterializeCtx(context.Background(), g, bad); err == nil {
		t.Error("Hybrid.MaterializeCtx accepted the rule set")
	}
	if _, err := (reason.Rete{}).MaterializeCtx(context.Background(), g, bad); err == nil {
		t.Error("Rete.MaterializeCtx accepted the rule set")
	}
}

// TestRetractorSetRules pins the scratch-sizing regression: a Retractor
// built for a narrow rule set, rebound to a wider one with SetRules, must
// rederive through the wider rules without indexing past its environment.
// Before SetRules existed the Retractor's env was sized once at
// construction, so a rederive after a rule-set change could index past it.
func TestRetractorSetRules(t *testing.T) {
	const (
		pLink = rdf.ID(1)
		pNear = rdf.ID(2)
		pFar  = rdf.ID(3)
	)
	narrow := []rules.Rule{{
		Name: "near",
		Body: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pLink), O: rules.Var("y")}},
		Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pNear), O: rules.Var("y")}},
	}}
	// Wider: three variables and a two-atom body, so both the binding env
	// and the head-index shape change.
	wide := append(narrow, rules.Rule{
		Name: "far",
		Body: []rules.Atom{
			{S: rules.Var("x"), P: rules.Const(pLink), O: rules.Var("y")},
			{S: rules.Var("y"), P: rules.Const(pLink), O: rules.Var("z")},
		},
		Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pFar), O: rules.Var("z")}},
	})

	g := rdf.NewGraph()
	g.EnableProv()
	asserted := []rdf.Triple{
		{S: 10, P: pLink, O: 11},
		{S: 11, P: pLink, O: 12},
		{S: 12, P: pLink, O: 13},
	}
	g.AddAll(asserted)
	ret := reason.NewRetractor(narrow)
	reason.Forward{}.Materialize(g, narrow)

	if err := ret.SetRules(wide); err != nil {
		t.Fatal(err)
	}
	reason.Forward{}.Materialize(g, wide)
	if !g.Has(rdf.Triple{S: 10, P: pFar, O: 12}) {
		t.Fatal("wide closure missing far(10,12)")
	}

	// Deleting link(11,12) must drop far(10,12) and far(11,13) — the
	// rederive joins the wide rule's two-atom body through the env sized by
	// SetRules.
	st := ret.Retract(g, []rdf.Triple{{S: 11, P: pLink, O: 12}})
	if st.Requested != 1 {
		t.Fatalf("retract found %d of 1 requested", st.Requested)
	}
	if g.Has(rdf.Triple{S: 10, P: pFar, O: 12}) || g.Has(rdf.Triple{S: 11, P: pFar, O: 13}) {
		t.Error("far conclusions of the deleted link survived")
	}
	if !g.Has(rdf.Triple{S: 12, P: pNear, O: 13}) {
		t.Error("near(12,13) should survive: its premise is live")
	}
	if err := ret.SetRules([]rules.Rule{wideRule()}); err == nil {
		t.Error("SetRules accepted a 66-variable rule")
	}
}
