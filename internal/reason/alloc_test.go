package reason

import (
	"math/rand"
	"testing"

	"powl/internal/rdf"
	"powl/internal/rules"
)

// allocFixture builds a graph and rule set exercising the full join path:
// a two-atom transitive-style chain rule and a three-atom rule, over data
// dense enough that joins succeed and fail on every delta triple.
func allocFixture() (*rdf.Graph, []rules.Rule, []rdf.Triple) {
	const (
		pLink = rdf.ID(1)
		pType = rdf.ID(2)
		pNear = rdf.ID(3)
		cNode = rdf.ID(4)
	)
	rs := []rules.Rule{
		{
			Name: "chain",
			Body: []rules.Atom{
				{S: rules.Var("x"), P: rules.Const(pLink), O: rules.Var("y")},
				{S: rules.Var("y"), P: rules.Const(pLink), O: rules.Var("z")},
			},
			Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pNear), O: rules.Var("z")}},
		},
		{
			Name: "typed-near",
			Body: []rules.Atom{
				{S: rules.Var("x"), P: rules.Const(pType), O: rules.Const(cNode)},
				{S: rules.Var("x"), P: rules.Const(pLink), O: rules.Var("y")},
				{S: rules.Var("y"), P: rules.Const(pType), O: rules.Const(cNode)},
			},
			Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pNear), O: rules.Var("y")}},
		},
	}
	rng := rand.New(rand.NewSource(7))
	g := rdf.NewGraphCap(4096)
	var deltas []rdf.Triple
	for i := 0; i < 400; i++ {
		s := rdf.ID(10 + rng.Intn(60))
		o := rdf.ID(10 + rng.Intn(60))
		t := rdf.Triple{S: s, P: pLink, O: o}
		if g.Add(t) {
			deltas = append(deltas, t)
		}
		g.Add(rdf.Triple{S: s, P: pType, O: cNode})
		g.Add(rdf.Triple{S: o, P: pType, O: cNode})
	}
	return g, rs, deltas
}

// TestJoinPathZeroAllocs pins the steady-state join path at zero heap
// allocations per delta triple: once the graph is at fixpoint and the
// scratch buffers are warm, firing every trigger for a delta triple —
// binding, selectivity ranking, index scans, head instantiation, and the
// duplicate-suppressing emit — must not allocate. A regression here is the
// per-firing garbage the compact store was built to eliminate.
func TestJoinPathZeroAllocs(t *testing.T) {
	g, rs, deltas := allocFixture()
	// Close the graph so every emit during measurement hits the Has fast
	// path (steady state: re-deriving known triples).
	Forward{}.Materialize(g, rs)

	crs := mustCompileRules(rs)
	byPred := map[rdf.ID][]trigger{}
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			if a.p.isVar {
				t.Fatalf("fixture rules must have constant predicates")
			} else {
				byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
			}
		}
	}
	sc := newScratch(crs)
	pending := map[rdf.Triple]struct{}{}
	emit := func(tr rdf.Triple) {
		if !g.Has(tr) {
			pending[tr] = struct{}{}
		}
	}
	fired := 0
	run := func() {
		for _, d := range deltas {
			for _, tr := range byPred[d.P] {
				m, _ := fireOn(g, sc, tr, d, emit)
				fired += int(m)
			}
		}
	}
	run() // warm up scratch and any lazy state before measuring
	if fired == 0 {
		t.Fatal("fixture produced no body matches; the test would measure nothing")
	}
	if len(pending) != 0 {
		t.Fatalf("graph not at fixpoint: %d pending emits", len(pending))
	}
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("join path allocates %.1f times per %d delta firings, want 0", avg, len(deltas))
	}
}

// TestJoinPathZeroAllocsWithDeletions pins the same property with a
// non-empty tombstone set: every index scan now filters through the pinned
// bitset, and that filter must not cost an allocation either. The graph is
// brought back to fixpoint through Retract (which rematerializes), so the
// steady-state measurement below is identical in shape to the tombstone-free
// test.
func TestJoinPathZeroAllocsWithDeletions(t *testing.T) {
	g, rs, deltas := allocFixture()
	Forward{}.Materialize(g, rs)
	ret := NewRetractor(rs)
	if st := ret.Retract(g, deltas[:40]); st.Requested == 0 {
		t.Fatal("fixture retraction deleted nothing")
	}
	if g.Dead() == 0 {
		t.Fatal("retraction left no tombstones; test would not exercise the filter")
	}
	deltas = deltas[40:]

	crs := mustCompileRules(rs)
	byPred := map[rdf.ID][]trigger{}
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
		}
	}
	sc := newScratch(crs)
	pending := map[rdf.Triple]struct{}{}
	emit := func(tr rdf.Triple) {
		if !g.Has(tr) {
			pending[tr] = struct{}{}
		}
	}
	fired := 0
	run := func() {
		for _, d := range deltas {
			for _, tr := range byPred[d.P] {
				m, _ := fireOn(g, sc, tr, d, emit)
				fired += int(m)
			}
		}
	}
	run()
	if fired == 0 {
		t.Fatal("fixture produced no body matches; the test would measure nothing")
	}
	if len(pending) != 0 {
		t.Fatalf("graph not at fixpoint after retract: %d pending emits", len(pending))
	}
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("join path with tombstones allocates %.1f times per %d delta firings, want 0",
			avg, len(deltas))
	}
}

// TestJoinPathZeroAllocsParallelShard pins the steady-state property for
// the parallel fire loop's per-shard path: a firing goroutine's emit stages
// into its own DeltaStage shard instead of the round's pending map, and at
// fixpoint (every conclusion already in the graph) the g.Has probe plus the
// shard's dedup probe must not allocate. This is the per-goroutine mirror
// of TestJoinPathZeroAllocs — one scratch, one shard, exactly what each
// worker of fireShard owns.
func TestJoinPathZeroAllocsParallelShard(t *testing.T) {
	g, rs, deltas := allocFixture()
	Forward{Threads: 4}.Materialize(g, rs)

	crs := mustCompileRules(rs)
	byPred := map[rdf.ID][]trigger{}
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
		}
	}
	sc := newScratch(crs)
	sh := rdf.NewDeltaStage(1).Shard(0)
	emit := func(tr rdf.Triple) {
		if !g.Has(tr) {
			sh.Add(tr)
		}
	}
	fired := 0
	run := func() {
		for _, d := range deltas {
			for _, tr := range byPred[d.P] {
				m, _ := fireOn(g, sc, tr, d, emit)
				fired += int(m)
			}
		}
	}
	run()
	if fired == 0 {
		t.Fatal("fixture produced no body matches; the test would measure nothing")
	}
	if sh.Len() != 0 {
		t.Fatalf("graph not at fixpoint: %d staged emits", sh.Len())
	}
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("per-shard join path allocates %.1f times per %d delta firings, want 0", avg, len(deltas))
	}
}

// TestBindTripleNoAlloc pins the binding primitive itself: bitmask
// bind/unbind over a scratch environment must be allocation-free.
func TestBindTripleNoAlloc(t *testing.T) {
	g, rs, deltas := allocFixture()
	_ = g
	crs := mustCompileRules(rs)
	sc := newScratch(crs)
	r := &crs[0]
	if avg := testing.AllocsPerRun(100, func() {
		e := sc.env[:r.nslot]
		for i := range e {
			e[i] = 0
		}
		for _, d := range deltas {
			if bound, ok := e.bindTriple(r.body[0], d); ok {
				e.unbind(bound)
			}
		}
	}); avg != 0 {
		t.Errorf("bindTriple/unbind allocates %.1f times per run, want 0", avg)
	}
}
