// Package reason provides the two rule engines behind powl's reasoning, both
// operating on datalog rules over RDF triples:
//
//   - Forward: semi-naive bottom-up evaluation to fixpoint. Fast, and the
//     reference implementation the parallel results are checked against.
//   - Hybrid: the strategy of the paper's §V — the ontology is first
//     compiled into instance rules (package owlhorst), then a tabled SLD
//     backward engine materializes the KB by issuing one "all statements
//     about this resource" query per resource, exactly as Jena's hybrid
//     reasoner does. Its per-query cost grows with the size of the searched
//     partition, which is what produces the paper's super-linear speedups.
//
// Both engines compute the same closure (tested); they differ only in cost
// profile.
package reason

import (
	"context"
	"fmt"
	"math/bits"

	"powl/internal/rdf"
	"powl/internal/rules"
)

// Engine materializes the closure of a graph under a rule set.
type Engine interface {
	// Name identifies the engine in reports ("forward", "hybrid").
	Name() string
	// Materialize adds all derivable triples to g and returns the number of
	// triples added.
	Materialize(g *rdf.Graph, rs []rules.Rule) int
}

// ContextEngine is implemented by engines whose fixpoint loop is
// cancellable: MaterializeCtx checks ctx between iterations and stops with
// ctx.Err() when it is cancelled or its deadline passes, leaving g in a
// consistent (sound but possibly incomplete) state. All three built-in
// engines implement it; the cluster layer uses it to enforce per-round
// deadlines and run cancellation.
type ContextEngine interface {
	Engine
	MaterializeCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule) (int, error)
}

// IncrementalContext is the cancellable counterpart of Incremental.
type IncrementalContext interface {
	Incremental
	MaterializeFromCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) (int, error)
}

// MaterializeCtx runs e under ctx when the engine supports cancellation and
// falls back to the plain blocking call otherwise.
func MaterializeCtx(ctx context.Context, e Engine, g *rdf.Graph, rs []rules.Rule) (int, error) {
	if ce, ok := e.(ContextEngine); ok {
		return ce.MaterializeCtx(ctx, g, rs)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Materialize(g, rs), nil
}

// MaterializeFromCtx is MaterializeCtx for the incremental path. The caller
// must already know inc implements Incremental.
func MaterializeFromCtx(ctx context.Context, inc Incremental, g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) (int, error) {
	if ic, ok := inc.(IncrementalContext); ok {
		return ic.MaterializeFromCtx(ctx, g, rs, seeds)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return inc.MaterializeFrom(g, rs, seeds), nil
}

// slotTerm is a body/head position in compiled form: either a constant ID or
// a variable slot index.
type slotTerm struct {
	isVar bool
	id    rdf.ID
	slot  int
}

type cAtom struct {
	s, p, o slotTerm
}

type cRule struct {
	name  string
	body  []cAtom
	head  []cAtom
	nslot int
	// idx is the rule's position in the compiled set — the ruleProf tally
	// index when the materialization is being profiled.
	idx int
}

// maxSlots bounds the variables of one rule: slot sets are tracked as uint64
// bitmasks on the zero-allocation bind/unbind path. OWL-Horst rules use at
// most a handful of variables, so the bound is far from any real rule set.
const maxSlots = 64

// ValidateRules reports whether the engines can execute every rule in rs —
// today the only way a parsed rule can be inexecutable is by exceeding
// maxSlots variables. It is the construction-time validation entry:
// core.Config paths and serve.New call it up front so a bad ruleset
// surfaces as an error when the KB is built, not as a panic at materialize
// time inside a live server.
func ValidateRules(rs []rules.Rule) error {
	_, err := compileRules(rs)
	return err
}

// mustCompileRules is compileRules for construction-time callers whose rule
// set was already validated (ValidateRules); it panics on a rule the
// engines cannot execute.
func mustCompileRules(rs []rules.Rule) []cRule {
	crs, err := compileRules(rs)
	if err != nil {
		panic(err)
	}
	return crs
}

// compileRules lowers parsed rules into slot-indexed form. Variable names are
// assigned dense slots per rule.
func compileRules(rs []rules.Rule) ([]cRule, error) {
	out := make([]cRule, 0, len(rs))
	for _, r := range rs {
		slots := map[string]int{}
		lower := func(t rules.TermSpec) slotTerm {
			if !t.IsVar {
				return slotTerm{id: t.ID}
			}
			s, ok := slots[t.Var]
			if !ok {
				s = len(slots)
				slots[t.Var] = s
			}
			return slotTerm{isVar: true, slot: s}
		}
		lowerAtom := func(a rules.Atom) cAtom {
			return cAtom{s: lower(a.S), p: lower(a.P), o: lower(a.O)}
		}
		cr := cRule{name: r.Name, idx: len(out)}
		for _, a := range r.Body {
			cr.body = append(cr.body, lowerAtom(a))
		}
		for _, a := range r.Head {
			cr.head = append(cr.head, lowerAtom(a))
		}
		cr.nslot = len(slots)
		if cr.nslot > maxSlots {
			return nil, fmt.Errorf("reason: rule %q uses %d variables; the engines support at most %d", r.Name, cr.nslot, maxSlots)
		}
		out = append(out, cr)
	}
	return out, nil
}

// env is a per-rule binding environment: env[slot] == 0 means unbound
// (term IDs are always ≥ 1).
type env []rdf.ID

// resolve returns the pattern ID for a position under e: the constant, the
// bound value, or Wildcard.
func (e env) resolve(t slotTerm) rdf.ID {
	if !t.isVar {
		return t.id
	}
	return e[t.slot]
}

// bindTriple attempts to extend e so that atom a matches triple t. It
// returns a bitmask of the slots newly bound (for undoing) and whether the
// match is consistent. The mask representation keeps the hot join path free
// of per-bind slice allocations; compileRules enforces nslot <= maxSlots.
//
//powl:allocfree per-candidate bind/unbind must stay mask-only
func (e env) bindTriple(a cAtom, t rdf.Triple) (uint64, bool) {
	var bound uint64
	for _, pv := range [3]struct {
		term slotTerm
		val  rdf.ID
	}{{a.s, t.S}, {a.p, t.P}, {a.o, t.O}} {
		if !pv.term.isVar {
			if pv.term.id != pv.val {
				e.unbind(bound)
				return 0, false
			}
			continue
		}
		if cur := e[pv.term.slot]; cur != 0 {
			if cur != pv.val {
				e.unbind(bound)
				return 0, false
			}
			continue
		}
		e[pv.term.slot] = pv.val
		bound |= 1 << pv.term.slot
	}
	return bound, true
}

// unbind clears the slots named by the bitmask.
func (e env) unbind(bound uint64) {
	for bound != 0 {
		s := bits.TrailingZeros64(bound)
		e[s] = 0
		bound &= bound - 1
	}
}

// instantiate builds the triple for a fully-bound head atom.
func (e env) instantiate(a cAtom) rdf.Triple {
	return rdf.Triple{S: e.resolve(a.s), P: e.resolve(a.p), O: e.resolve(a.o)}
}

// grounded reports whether every variable of a is bound in e.
func (e env) grounded(a cAtom) bool {
	return e.resolve(a.s) != rdf.Wildcard &&
		e.resolve(a.p) != rdf.Wildcard &&
		e.resolve(a.o) != rdf.Wildcard
}
