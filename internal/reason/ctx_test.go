package reason

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"powl/internal/rdf"
	"powl/internal/rules"
)

// bigChain builds a long transitive chain whose closure is quadratic, so
// materialization does enough work for mid-flight cancellation to land.
func bigChain(n int) (*rdf.Graph, []rules.Rule) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	p := dict.InternIRI("http://t/p")
	prev := dict.InternIRI("http://t/n0")
	for i := 1; i < n; i++ {
		cur := dict.InternIRI(fmt.Sprintf("http://t/n%d", i))
		g.Add(rdf.Triple{S: prev, P: p, O: cur})
		prev = cur
	}
	rs := rules.MustParse(
		"@prefix t: <http://t/> .\n[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]", dict)
	return g, rs
}

func ctxEngines() []ContextEngine {
	return []ContextEngine{Forward{}, Rete{}, Hybrid{}, Hybrid{SharedTable: true}}
}

func TestMaterializeCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range ctxEngines() {
		g, rs := bigChain(64)
		n, err := e.MaterializeCtx(ctx, g, rs)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want Canceled", e.Name(), err)
		}
		// A cancelled run may have partial results but must stop early.
		if n == 63*62/2 {
			t.Errorf("%s: cancelled run completed the full closure", e.Name())
		}
	}
}

func TestMaterializeCtxBackgroundMatchesPlain(t *testing.T) {
	for _, e := range ctxEngines() {
		g1, rs := bigChain(32)
		g2 := g1.Clone()
		want := e.Materialize(g1, rs)
		got, err := e.MaterializeCtx(context.Background(), g2, rs)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if got != want || !g1.Equal(g2) {
			t.Errorf("%s: ctx run diverges from plain run (%d vs %d)", e.Name(), got, want)
		}
	}
}

func TestMaterializeFromCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range ctxEngines() {
		inc, ok := any(e).(IncrementalContext)
		if !ok {
			t.Fatalf("%s does not implement IncrementalContext", e.Name())
		}
		g, rs := bigChain(32)
		seed := g.Triples()[:1]
		if _, err := inc.MaterializeFromCtx(ctx, g, rs, seed); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want Canceled", e.Name(), err)
		}
	}
}

// TestMaterializeCtxHelperFallback: the helper must work for engines that
// do not implement ContextEngine.
type plainEngine struct{ Engine }

func TestMaterializeCtxHelperFallback(t *testing.T) {
	g, rs := bigChain(16)
	n, err := MaterializeCtx(context.Background(), plainEngine{Forward{}}, g, rs)
	if err != nil || n == 0 {
		t.Fatalf("fallback: n=%d err=%v", n, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MaterializeCtx(ctx, plainEngine{Forward{}}, rdf.NewGraph(), rs); !errors.Is(err, context.Canceled) {
		t.Fatalf("fallback ignored cancelled ctx: %v", err)
	}
}

// TestFrontierDeltaCtx covers the FrontierDelta incremental path.
func TestFrontierDeltaCtx(t *testing.T) {
	g, rs := bigChain(24)
	Forward{}.Materialize(g, rs)
	dict := rdf.NewDict()
	_ = dict
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := Hybrid{FrontierDelta: true}
	if _, err := h.MaterializeFromCtx(ctx, g, rs, g.Triples()[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("frontier delta ignored cancellation: %v", err)
	}
}
