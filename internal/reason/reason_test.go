package reason

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powl/internal/rdf"
	"powl/internal/rules"
)

// env/test fixtures -----------------------------------------------------

type fx struct {
	dict *rdf.Dict
	g    *rdf.Graph
}

func newFx() *fx { return &fx{dict: rdf.NewDict(), g: rdf.NewGraph()} }

func (f *fx) id(s string) rdf.ID { return f.dict.InternIRI("http://t/" + s) }
func (f *fx) add(s, p, o rdf.ID) { f.g.Add(rdf.Triple{S: s, P: p, O: o}) }
func (f *fx) parse(src string) []rules.Rule {
	return rules.MustParse("@prefix t: <http://t/> .\n"+src, f.dict)
}

var engines = []Engine{Forward{}, Hybrid{}, Hybrid{SharedTable: true}}

// checkAllEngines materializes clones of g under rs with every engine and
// requires identical results; returns the closure.
func checkAllEngines(t *testing.T, f *fx, rs []rules.Rule) *rdf.Graph {
	t.Helper()
	var ref *rdf.Graph
	for _, e := range engines {
		g := f.g.Clone()
		e.Materialize(g, rs)
		if ref == nil {
			ref = g
			continue
		}
		if !g.Equal(ref) {
			t.Fatalf("engine %s disagrees: %d vs %d triples; missing=%v extra=%v",
				e.Name(), g.Len(), ref.Len(), ref.Diff(g), g.Diff(ref))
		}
	}
	return ref
}

// ------------------------------------------------------------------------

func TestTransitiveClosureChain(t *testing.T) {
	f := newFx()
	p := f.id("p")
	const n = 12
	ids := make([]rdf.ID, n)
	for i := range ids {
		ids[i] = f.id("n" + string(rune('a'+i)))
	}
	for i := 0; i+1 < n; i++ {
		f.add(ids[i], p, ids[i+1])
	}
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	closed := checkAllEngines(t, f, rs)
	// Closure of a chain of n nodes has n(n-1)/2 edges.
	want := n * (n - 1) / 2
	if closed.Len() != want {
		t.Fatalf("closure has %d triples, want %d", closed.Len(), want)
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	f := newFx()
	p := f.id("p")
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	f.add(a, p, b)
	f.add(b, p, c)
	f.add(c, p, a)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	closed := checkAllEngines(t, f, rs)
	// A 3-cycle closes to the complete relation on {a,b,c}: 9 edges.
	if closed.Len() != 9 {
		t.Fatalf("cycle closure has %d triples, want 9", closed.Len())
	}
}

func TestSymmetricAndSubProperty(t *testing.T) {
	f := newFx()
	a, b := f.id("a"), f.id("b")
	f.add(a, f.id("knows"), b)
	rs := f.parse(`
[sym: (?x t:knows ?y) -> (?y t:knows ?x)]
[sub: (?x t:knows ?y) -> (?x t:acquainted ?y)]
`)
	closed := checkAllEngines(t, f, rs)
	if !closed.Has(rdf.Triple{S: b, P: f.id("knows"), O: a}) {
		t.Error("symmetric derivation missing")
	}
	if !closed.Has(rdf.Triple{S: b, P: f.id("acquainted"), O: a}) {
		t.Error("chained derivation through symmetric missing")
	}
}

func TestVariablePredicateRule(t *testing.T) {
	f := newFx()
	same := f.id("same")
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	p := f.id("p")
	f.add(a, same, b)
	f.add(a, p, c)
	rs := f.parse(`[subst: (?x t:same ?y) (?x ?q ?z) -> (?y ?q ?z)]`)
	closed := checkAllEngines(t, f, rs)
	if !closed.Has(rdf.Triple{S: b, P: p, O: c}) {
		t.Error("variable-predicate substitution missing")
	}
	// The rule also applies to the same triple itself: (b same b).
	if !closed.Has(rdf.Triple{S: b, P: same, O: b}) {
		t.Error("self-application through substitution missing")
	}
}

func TestRepeatedVariableAtom(t *testing.T) {
	f := newFx()
	p, q := f.id("p"), f.id("q")
	a, b := f.id("a"), f.id("b")
	f.add(a, p, a) // reflexive: matches (?x p ?x)
	f.add(a, p, b) // not reflexive
	rs := f.parse(`[refl: (?x t:p ?x) -> (?x t:q ?x)]`)
	closed := checkAllEngines(t, f, rs)
	if !closed.Has(rdf.Triple{S: a, P: q, O: a}) {
		t.Error("reflexive match missing")
	}
	if closed.Has(rdf.Triple{S: a, P: q, O: b}) || closed.Has(rdf.Triple{S: b, P: q, O: b}) {
		t.Error("repeated-variable atom matched non-reflexive triple")
	}
}

func TestThreeAtomBody(t *testing.T) {
	// The generic forward engine must handle >2-atom bodies (meta rules
	// have up to 4). The hybrid engine sees only compiled (≤2-atom+n-ary
	// intersection) rules in production but must still be correct.
	f := newFx()
	p, q, r, out := f.id("p"), f.id("q"), f.id("r"), f.id("out")
	a, b, c, d := f.id("a"), f.id("b"), f.id("c"), f.id("d")
	f.add(a, p, b)
	f.add(b, q, c)
	f.add(c, r, d)
	rs := f.parse(`[j3: (?w t:p ?x) (?x t:q ?y) (?y t:r ?z) -> (?w t:out ?z)]`)
	closed := checkAllEngines(t, f, rs)
	if !closed.Has(rdf.Triple{S: a, P: out, O: d}) {
		t.Error("3-way join missing")
	}
}

func TestNoDerivationWithoutMatch(t *testing.T) {
	f := newFx()
	f.add(f.id("a"), f.id("p"), f.id("b"))
	rs := f.parse(`[r: (?x t:q ?y) -> (?y t:q ?x)]`)
	closed := checkAllEngines(t, f, rs)
	if closed.Len() != 1 {
		t.Fatalf("engine invented triples: %d", closed.Len())
	}
}

func TestEmptyGraphAndEmptyRules(t *testing.T) {
	f := newFx()
	rs := f.parse(`[r: (?x t:p ?y) -> (?y t:p ?x)]`)
	for _, e := range engines {
		g := rdf.NewGraph()
		if n := e.Materialize(g, rs); n != 0 || g.Len() != 0 {
			t.Errorf("%s on empty graph added %d", e.Name(), n)
		}
	}
	f.add(f.id("a"), f.id("p"), f.id("b"))
	for _, e := range engines {
		g := f.g.Clone()
		if n := e.Materialize(g, nil); n != 0 {
			t.Errorf("%s with no rules added %d", e.Name(), n)
		}
	}
}

func TestMaterializeReturnsAddedCount(t *testing.T) {
	f := newFx()
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	p := f.id("p")
	f.add(a, p, b)
	f.add(b, p, c)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	for _, e := range engines {
		g := f.g.Clone()
		if n := e.Materialize(g, rs); n != 1 {
			t.Errorf("%s reported %d added, want 1", e.Name(), n)
		}
	}
}

func TestClosureLeavesInputIntact(t *testing.T) {
	f := newFx()
	a, b, c := f.id("a"), f.id("b"), f.id("c")
	p := f.id("p")
	f.add(a, p, b)
	f.add(b, p, c)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	before := f.g.Len()
	closed := Closure(f.g, rs)
	if f.g.Len() != before {
		t.Fatal("Closure mutated its input")
	}
	if closed.Len() != before+1 {
		t.Fatalf("closure size %d", closed.Len())
	}
}

// randomRuleSet builds a small random single-join rule universe over nPreds
// predicates: transitivity, symmetry, and renaming rules.
func randomRuleSet(f *fx, rng *rand.Rand, nPreds int) []rules.Rule {
	var rs []rules.Rule
	preds := make([]rdf.ID, nPreds)
	for i := range preds {
		preds[i] = f.id("pred" + string(rune('A'+i)))
	}
	x, y, z := rules.Var("x"), rules.Var("y"), rules.Var("z")
	for i, p := range preds {
		pc := rules.Const(p)
		switch rng.Intn(3) {
		case 0:
			rs = append(rs, rules.Rule{
				Name: "tr" + string(rune('A'+i)),
				Body: []rules.Atom{{S: x, P: pc, O: y}, {S: y, P: pc, O: z}},
				Head: []rules.Atom{{S: x, P: pc, O: z}},
			})
		case 1:
			rs = append(rs, rules.Rule{
				Name: "sym" + string(rune('A'+i)),
				Body: []rules.Atom{{S: x, P: pc, O: y}},
				Head: []rules.Atom{{S: y, P: pc, O: x}},
			})
		default:
			q := rules.Const(preds[rng.Intn(nPreds)])
			rs = append(rs, rules.Rule{
				Name: "ren" + string(rune('A'+i)),
				Body: []rules.Atom{{S: x, P: pc, O: y}},
				Head: []rules.Atom{{S: x, P: q, O: y}},
			})
		}
	}
	return rs
}

// TestEnginesAgreeProperty: on random graphs and random single-join rule
// sets, forward and hybrid produce identical closures.
func TestEnginesAgreeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := newFx()
		nPreds := 2 + rng.Intn(3)
		rs := randomRuleSet(f, rng, nPreds)
		nNodes := 4 + rng.Intn(8)
		nodes := make([]rdf.ID, nNodes)
		for i := range nodes {
			nodes[i] = f.id("n" + string(rune('0'+i)))
		}
		for i := 0; i < 3*nNodes; i++ {
			f.add(nodes[rng.Intn(nNodes)],
				f.id("pred"+string(rune('A'+rng.Intn(nPreds)))),
				nodes[rng.Intn(nNodes)])
		}
		fw := f.g.Clone()
		Forward{}.Materialize(fw, rs)
		hy := f.g.Clone()
		Hybrid{}.Materialize(hy, rs)
		hs := f.g.Clone()
		Hybrid{SharedTable: true}.Materialize(hs, rs)
		return fw.Equal(hy) && fw.Equal(hs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesFull: closing an already-materialized graph over
// seed tuples gives the same result as re-materializing from scratch, for
// both incremental implementations.
func TestIncrementalMatchesFull(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := newFx()
		rs := randomRuleSet(f, rng, 3)
		nNodes := 5 + rng.Intn(6)
		nodes := make([]rdf.ID, nNodes)
		for i := range nodes {
			nodes[i] = f.id("n" + string(rune('0'+i)))
		}
		mk := func() rdf.Triple {
			return rdf.Triple{
				S: nodes[rng.Intn(nNodes)],
				P: f.id("pred" + string(rune('A'+rng.Intn(3)))),
				O: nodes[rng.Intn(nNodes)],
			}
		}
		for i := 0; i < 2*nNodes; i++ {
			f.g.Add(mk())
		}
		var seeds []rdf.Triple
		for i := 0; i < 3; i++ {
			seeds = append(seeds, mk())
		}

		// Reference: full closure over base+seeds.
		ref := f.g.Clone()
		for _, s := range seeds {
			ref.Add(s)
		}
		Forward{}.Materialize(ref, rs)

		for _, inc := range []Incremental{Forward{}, Hybrid{}, Hybrid{FrontierDelta: true}} {
			g := f.g.Clone()
			Forward{}.Materialize(g, rs) // fixpoint before the seeds arrive
			var fresh []rdf.Triple
			for _, s := range seeds {
				if g.Add(s) {
					fresh = append(fresh, s)
				}
			}
			inc.MaterializeFrom(g, rs, fresh)
			if !g.Equal(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeFromEmptySeeds(t *testing.T) {
	f := newFx()
	f.add(f.id("a"), f.id("p"), f.id("b"))
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	for _, inc := range []Incremental{Forward{}, Hybrid{}, Hybrid{FrontierDelta: true}} {
		g := f.g.Clone()
		if n := inc.MaterializeFrom(g, rs, nil); n != 0 {
			t.Errorf("empty seeds derived %d", n)
		}
	}
}

func TestEngineNames(t *testing.T) {
	if (Forward{}).Name() != "forward" {
		t.Error("forward name")
	}
	if (Hybrid{}).Name() != "hybrid" {
		t.Error("hybrid name")
	}
	if (Hybrid{SharedTable: true}).Name() != "hybrid-shared" {
		t.Error("hybrid-shared name")
	}
}

// TestMultiHeadRule: rules with several head atoms instantiate all of them.
func TestMultiHeadRule(t *testing.T) {
	f := newFx()
	a, b := f.id("a"), f.id("b")
	f.add(a, f.id("p"), b)
	rs := f.parse(`[mh: (?x t:p ?y) -> (?x t:q ?y) (?y t:r ?x)]`)
	closed := checkAllEngines(t, f, rs)
	if !closed.Has(rdf.Triple{S: a, P: f.id("q"), O: b}) ||
		!closed.Has(rdf.Triple{S: b, P: f.id("r"), O: a}) {
		t.Error("multi-head instantiation incomplete")
	}
}
