package reason

import (
	"testing"

	"powl/internal/rdf"
	"powl/internal/rules"
)

// ruleHB builds a single-head rule whose body and head atoms all use
// constant predicates — the shape stratify's predicate-overlap analysis
// keys on.
func ruleHB(name string, head rdf.ID, body ...rdf.ID) rules.Rule {
	r := rules.Rule{Name: name}
	for i, p := range body {
		v := string(rune('a' + i))
		r.Body = append(r.Body, rules.Atom{
			S: rules.Var("x" + v), P: rules.Const(p), O: rules.Var("y" + v),
		})
	}
	r.Head = []rules.Atom{{S: rules.Var("xa"), P: rules.Const(head), O: rules.Var("ya")}}
	return r
}

func TestStratify(t *testing.T) {
	const (
		p0 = rdf.ID(10)
		p1 = rdf.ID(11)
		p2 = rdf.ID(12)
		p3 = rdf.ID(13)
		p4 = rdf.ID(14)
		p5 = rdf.ID(15)
	)
	// r0: p1 ← p0          (level 0; nothing produces p0)
	// r1: p2 ← p1          (level 1, fed by r0)
	// r2: p3 ← p0          (level 0, independent of r0 — second piece)
	// r3: p4 ← p2, p5      (cycle with r4 through p4/p5; fed by r1 → level 2)
	// r4: p5 ← p4
	crs := mustCompileRules([]rules.Rule{
		ruleHB("r0", p1, p0),
		ruleHB("r1", p2, p1),
		ruleHB("r2", p3, p0),
		ruleHB("r3", p4, p2, p5),
		ruleHB("r4", p5, p4),
	})
	strata := stratify(crs)
	if len(strata) != 3 {
		t.Fatalf("got %d strata, want 3: %+v", len(strata), strata)
	}
	if len(strata[0]) != 2 {
		t.Fatalf("stratum 0 has %d pieces, want 2 (r0 and r2 are independent): %+v", len(strata[0]), strata[0])
	}
	flat := func(ps []piece) map[int]bool {
		out := map[int]bool{}
		for _, p := range ps {
			for _, r := range p.rules {
				out[r] = true
			}
		}
		return out
	}
	if got := flat(strata[0]); !got[0] || !got[2] || len(got) != 2 {
		t.Errorf("stratum 0 rules = %v, want {r0, r2}", got)
	}
	if got := flat(strata[1]); !got[1] || len(got) != 1 {
		t.Errorf("stratum 1 rules = %v, want {r1}", got)
	}
	if len(strata[2]) != 1 || len(strata[2][0].rules) != 2 {
		t.Fatalf("stratum 2 should be one piece of the r3/r4 cycle: %+v", strata[2])
	}
	if got := flat(strata[2]); !got[3] || !got[4] {
		t.Errorf("stratum 2 rules = %v, want {r3, r4}", got)
	}

	// Every rule appears exactly once across all strata.
	seen := map[int]int{}
	for _, st := range strata {
		for r := range flat(st) {
			seen[r]++
		}
	}
	if len(seen) != len(crs) {
		t.Errorf("stratification covers %d of %d rules", len(seen), len(crs))
	}

	// A variable-predicate body atom is a conservative edge from everything,
	// pulling the rule into a cycle with any producer it feeds.
	wild := []rules.Rule{
		ruleHB("w0", p1, p0),
		{
			Name: "w1",
			Body: []rules.Atom{{S: rules.Var("x"), P: rules.Var("p"), O: rules.Var("y")}},
			Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(p0), O: rules.Var("y")}},
		},
	}
	ws := stratify(mustCompileRules(wild))
	if len(ws) != 1 || len(ws[0]) != 1 || len(ws[0][0].rules) != 2 {
		t.Errorf("wildcard-predicate rules should collapse into one piece, got %+v", ws)
	}

	if s := stratify(nil); s != nil {
		t.Errorf("stratify(nil) = %+v, want nil", s)
	}
}
