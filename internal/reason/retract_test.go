// Deletion tests: Retractor unit coverage on hand-built rule sets plus the
// churn property test — random insert/delete interleavings over LUBM and
// UOBM whose result must match a from-scratch materialization of the
// surviving asserted triples after every batch, with provenance on and off.
//
// External test package for the same reason as prov_roundtrip_test.go:
// owlhorst imports reason.
package reason_test

import (
	"fmt"
	"math/rand"
	"testing"

	"powl/internal/datagen"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

const (
	pLink = rdf.ID(1)
	pNear = rdf.ID(2)
	pAlt  = rdf.ID(3)
	nA    = rdf.ID(10)
	nB    = rdf.ID(11)
	nC    = rdf.ID(12)
)

// chainRules: link/link → near, plus alt → near (a second, independent way
// to derive the same head, for the fast-path tests).
func chainRules() []rules.Rule {
	return []rules.Rule{
		{
			Name: "chain",
			Body: []rules.Atom{
				{S: rules.Var("x"), P: rules.Const(pLink), O: rules.Var("y")},
				{S: rules.Var("y"), P: rules.Const(pLink), O: rules.Var("z")},
			},
			Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pNear), O: rules.Var("z")}},
		},
		{
			Name: "alt-near",
			Body: []rules.Atom{
				{S: rules.Var("x"), P: rules.Const(pAlt), O: rules.Var("y")},
			},
			Head: []rules.Atom{{S: rules.Var("x"), P: rules.Const(pNear), O: rules.Var("y")}},
		},
	}
}

// oracleClosure materializes the asserted triples from scratch — the
// reference every retraction result is compared against.
func oracleClosure(asserted []rdf.Triple, rs []rules.Rule) *rdf.Graph {
	w := rdf.NewGraph()
	w.AddAll(asserted)
	reason.Forward{}.Materialize(w, rs)
	return w
}

func requireEqual(t *testing.T, g, want *rdf.Graph, when string) {
	t.Helper()
	if !g.Equal(want) {
		t.Fatalf("%s: graph diverges from oracle (%d vs %d live): missing=%v extra=%v",
			when, g.Len()-g.Dead(), want.Len()-want.Dead(), want.Diff(g), g.Diff(want))
	}
}

func TestRetractBaseTriple(t *testing.T) {
	for _, provOn := range []bool{true, false} {
		t.Run(fmt.Sprintf("prov=%v", provOn), func(t *testing.T) {
			rs := chainRules()
			g := rdf.NewGraph()
			if provOn {
				g.EnableProv()
			}
			ab := rdf.Triple{S: nA, P: pLink, O: nB}
			bc := rdf.Triple{S: nB, P: pLink, O: nC}
			g.Add(ab)
			g.Add(bc)
			reason.Forward{}.Materialize(g, rs)
			if !g.Has(rdf.Triple{S: nA, P: pNear, O: nC}) {
				t.Fatal("closure missing derived near triple")
			}

			ret := reason.NewRetractor(rs)
			st := ret.Retract(g, []rdf.Triple{ab})
			if st.Requested != 1 {
				t.Fatalf("Requested = %d, want 1", st.Requested)
			}
			if g.Has(ab) || g.Has(rdf.Triple{S: nA, P: pNear, O: nC}) {
				t.Fatal("deleted triple or its consequence still visible")
			}
			if !g.Has(bc) {
				t.Fatal("unrelated asserted triple was lost")
			}
			requireEqual(t, g, oracleClosure([]rdf.Triple{bc}, rs), "after retract")

			// Deleting an absent triple is a no-op.
			if st := ret.Retract(g, []rdf.Triple{ab}); st.Requested != 0 || st.Overdeleted != 0 {
				t.Fatalf("retract of absent triple did work: %+v", st)
			}
		})
	}
}

func TestRetractDerivedStillDerivable(t *testing.T) {
	rs := chainRules()
	g := rdf.NewGraph()
	g.EnableProv()
	ab := rdf.Triple{S: nA, P: pLink, O: nB}
	bc := rdf.Triple{S: nB, P: pLink, O: nC}
	g.Add(ab)
	g.Add(bc)
	reason.Forward{}.Materialize(g, rs)
	near := rdf.Triple{S: nA, P: pNear, O: nC}

	// Deleting an inference whose premises survive must restore it: the
	// graph stays the closure of the asserted set.
	ret := reason.NewRetractor(rs)
	st := ret.Retract(g, []rdf.Triple{near})
	if !g.Has(near) {
		t.Fatal("still-derivable triple was not restored")
	}
	if st.Reinstated+st.Rederived == 0 {
		t.Fatalf("no restoration recorded: %+v", st)
	}
	if lin, ok := g.LineageOf(near); !ok || lin.Rule != "chain" {
		t.Fatalf("restored triple lineage = %+v, ok=%v; want chain", lin, ok)
	}
	requireEqual(t, g, oracleClosure([]rdf.Triple{ab, bc}, rs), "after retract of inference")
}

func TestRetractAltFastPath(t *testing.T) {
	rs := chainRules()
	g := rdf.NewGraph()
	g.EnableProv()
	ab := rdf.Triple{S: nA, P: pLink, O: nB}
	bc := rdf.Triple{S: nB, P: pLink, O: nC}
	alt := rdf.Triple{S: nA, P: pAlt, O: nC}
	g.Add(ab)
	g.Add(bc)
	g.Add(alt)
	reason.Forward{}.Materialize(g, rs)
	near := rdf.Triple{S: nA, P: pNear, O: nC}
	off, ok := g.Offset(near)
	if !ok {
		t.Fatal("closure missing near triple")
	}
	if _, ok := g.Prov().AltAt(off); !ok {
		t.Fatal("duplicate firing did not record an alternate derivation")
	}

	// Deleting one support leaves the other; the alternate record (whichever
	// rule lost the race for the primary record) lets Retract reinstate
	// without a join when its premises survive.
	ret := reason.NewRetractor(rs)
	st := ret.Retract(g, []rdf.Triple{ab})
	if !g.Has(near) {
		t.Fatal("doubly-derived triple lost with one support remaining")
	}
	if st.Reinstated+st.Rederived == 0 {
		t.Fatalf("no restoration recorded: %+v", st)
	}
	requireEqual(t, g, oracleClosure([]rdf.Triple{bc, alt}, rs), "after retract of one support")

	// Now the second support: the triple must finally fall.
	ret.Retract(g, []rdf.Triple{alt})
	if g.Has(near) {
		t.Fatal("triple survived deletion of its last support")
	}
	requireEqual(t, g, oracleClosure([]rdf.Triple{bc}, rs), "after retract of last support")
}

// verifyLiveDerived checks every live derived triple's lineage still
// round-trips after retractions (the tombstone-aware sibling of
// verifyAllDerived, which indexes records positionally and so only works on
// tombstone-free graphs).
func verifyLiveDerived(t *testing.T, g *rdf.Graph, rs []rules.Rule) int {
	t.Helper()
	byName := map[string][]rules.Rule{}
	for _, r := range rs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	derived := 0
	for _, tr := range g.Triples() {
		lin, ok := g.LineageOf(tr)
		if !ok {
			continue
		}
		derived++
		var lastErr error
		okAny := false
		for _, r := range byName[lin.Rule] {
			if err := reverify(g, r, tr, lin); err == nil {
				okAny = true
				break
			} else {
				lastErr = err
			}
		}
		if !okAny {
			t.Fatalf("triple %v (rule %q): %v", tr, lin.Rule, lastErr)
		}
	}
	return derived
}

// churnDataset abstracts the two benchmark generators for the property test.
type churnDataset struct {
	name string
	gen  func(seed int64) *datagen.Dataset
}

var churnDatasets = []churnDataset{
	{"lubm", func(seed int64) *datagen.Dataset {
		return datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: seed, DeptsPerUniv: 2})
	}},
	{"uobm", func(seed int64) *datagen.Dataset {
		return datagen.UOBM(datagen.UOBMConfig{Universities: 1, Seed: seed, DeptsPerUniv: 1})
	}},
}

// TestRetractChurnProperty is the deletion property test: random
// insert/delete interleavings, including re-inserts of deleted triples and
// deletions of derived triples, checked against a from-scratch
// materialization of the surviving asserted set after every batch.
func TestRetractChurnProperty(t *testing.T) {
	for _, ds := range churnDatasets {
		for _, provOn := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/prov=%v", ds.name, provOn), func(t *testing.T) {
				runChurnProperty(t, ds.gen(7), provOn, 7)
			})
		}
	}
}

func runChurnProperty(t *testing.T, ds *datagen.Dataset, provOn bool, seed int64) {
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	rs := compiled.InstanceRules
	rng := rand.New(rand.NewSource(seed))

	g := rdf.NewGraph()
	if provOn {
		g.EnableProv()
	}
	g.Union(compiled.Schema)
	schemaAsserted := compiled.Schema.Triples()

	// The test's own model of the asserted instance set.
	assertedSet := map[rdf.Triple]bool{}
	var asserted []rdf.Triple
	insert := func(ts []rdf.Triple) {
		var fresh []rdf.Triple
		for _, tr := range ts {
			if !assertedSet[tr] {
				assertedSet[tr] = true
				asserted = append(asserted, tr)
				fresh = append(fresh, tr)
			}
		}
		g.AddAll(fresh)
		reason.Forward{}.MaterializeFrom(g, rs, fresh)
	}

	half := len(instance) / 2
	g.AddAll(instance[:half])
	for _, tr := range instance[:half] {
		if !assertedSet[tr] {
			assertedSet[tr] = true
			asserted = append(asserted, tr)
		}
	}
	reason.Forward{}.Materialize(g, rs)
	pending := instance[half:]

	oracle := func() *rdf.Graph {
		w := rdf.NewGraph()
		w.AddAll(schemaAsserted)
		w.AddAll(asserted)
		reason.Forward{}.Materialize(w, rs)
		return w
	}
	requireEqual(t, g, oracle(), "initial closure")

	ret := reason.NewRetractor(rs)
	var deletedPool []rdf.Triple
	retracted := 0
	const steps = 8
	for step := 0; step < steps; step++ {
		n := 4 + rng.Intn(8)
		switch op := rng.Intn(4); {
		case op == 0 && len(pending) > 0: // insert fresh
			if n > len(pending) {
				n = len(pending)
			}
			insert(pending[:n])
			pending = pending[n:]
		case op == 1 && len(deletedPool) > 0: // re-insert previously deleted
			if n > len(deletedPool) {
				n = len(deletedPool)
			}
			insert(deletedPool[:n])
			deletedPool = deletedPool[n:]
		default: // delete: asserted triples, plus the odd derived one
			var batch []rdf.Triple
			for i := 0; i < n && len(asserted) > 0; i++ {
				j := rng.Intn(len(asserted))
				tr := asserted[j]
				asserted[j] = asserted[len(asserted)-1]
				asserted = asserted[:len(asserted)-1]
				delete(assertedSet, tr)
				deletedPool = append(deletedPool, tr)
				batch = append(batch, tr)
			}
			if live := g.Triples(); len(live) > 0 {
				// A derived (or schema-independent) victim: deleting an
				// inference must leave the closure unchanged, so the model is
				// untouched. Skip schema triples — the compiled rules bake the
				// schema in, so the oracle always reasserts it.
				tr := live[rng.Intn(len(live))]
				if !assertedSet[tr] && !compiled.Schema.Has(tr) {
					batch = append(batch, tr)
				}
			}
			st := ret.Retract(g, batch)
			retracted += st.Requested
		}
		requireEqual(t, g, oracle(), fmt.Sprintf("step %d", step))
	}
	if retracted == 0 {
		t.Fatal("interleaving performed no retractions; test is vacuous")
	}
	if provOn {
		if d := verifyLiveDerived(t, g, rs); d == 0 {
			t.Fatal("no derived triples survived to verify")
		}
	}
	t.Logf("%d steps, %d retracted, final live=%d dead=%d",
		steps, retracted, g.LiveLen(), g.Dead())
}
