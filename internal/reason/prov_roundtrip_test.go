// Round-trip property test for the provenance layer: for every derived
// triple in a randomized LUBM closure, re-evaluating the recorded rule on
// the recorded premises must reproduce the triple.
//
// External test package: owlhorst imports reason, so importing owlhorst
// from package reason would cycle.
package reason_test

import (
	"fmt"
	"testing"

	"powl/internal/datagen"
	"powl/internal/owlhorst"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

// reverify re-evaluates lin's rule on lin's premises and checks the result
// is tr. Premises are bound to body atoms in order (the engines record them
// by body-atom index); body atoms beyond the three recordable premises must
// be ground under the resulting substitution and present in the closure —
// that covers the n-ary intersectionOf bodies, whose extra atoms share the
// one variable the first atoms bind.
func reverify(g *rdf.Graph, r rules.Rule, tr rdf.Triple, lin rdf.Lineage) error {
	if len(lin.Prem) > len(r.Body) {
		return fmt.Errorf("%d premises for %d body atoms", len(lin.Prem), len(r.Body))
	}
	want := len(r.Body)
	if want > 3 {
		want = 3
	}
	if len(lin.Prem) != want {
		return fmt.Errorf("recorded %d premises, want %d", len(lin.Prem), want)
	}
	bind := map[string]rdf.ID{}
	bindTerm := func(ts rules.TermSpec, id rdf.ID) bool {
		if !ts.IsVar {
			return ts.ID == id
		}
		if old, ok := bind[ts.Var]; ok {
			return old == id
		}
		bind[ts.Var] = id
		return true
	}
	for i, p := range lin.Prem {
		a := r.Body[i]
		if !bindTerm(a.S, p.S) || !bindTerm(a.P, p.P) || !bindTerm(a.O, p.O) {
			return fmt.Errorf("premise %d %v does not match body atom %d", i, p, i)
		}
	}
	resolve := func(ts rules.TermSpec) (rdf.ID, bool) {
		if !ts.IsVar {
			return ts.ID, true
		}
		id, ok := bind[ts.Var]
		return id, ok
	}
	for i := len(lin.Prem); i < len(r.Body); i++ {
		a := r.Body[i]
		s, ok1 := resolve(a.S)
		p, ok2 := resolve(a.P)
		o, ok3 := resolve(a.O)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("body atom %d not ground after binding premises", i)
		}
		if !g.Has(rdf.Triple{S: s, P: p, O: o}) {
			return fmt.Errorf("body atom %d instantiation not in closure", i)
		}
	}
	for _, h := range r.Head {
		s, ok1 := resolve(h.S)
		p, ok2 := resolve(h.P)
		o, ok3 := resolve(h.O)
		if ok1 && ok2 && ok3 && (rdf.Triple{S: s, P: p, O: o}) == tr {
			return nil
		}
	}
	return fmt.Errorf("no head instantiation reproduces the triple")
}

// verifyAllDerived checks every derived triple in g round-trips, returning
// the derived count.
func verifyAllDerived(t *testing.T, g *rdf.Graph, rs []rules.Rule) int {
	t.Helper()
	byName := map[string][]rules.Rule{}
	for _, r := range rs {
		byName[r.Name] = append(byName[r.Name], r)
	}
	prov := g.Prov()
	derived := 0
	for off, tr := range g.Triples() {
		d := prov.At(uint32(off))
		if !d.IsDerived() {
			continue
		}
		derived++
		lin, ok := g.LineageOf(tr)
		if !ok {
			t.Fatalf("derived triple at offset %d has no lineage", off)
		}
		cands := byName[lin.Rule]
		if len(cands) == 0 {
			t.Fatalf("offset %d: recorded rule %q not in rule set", off, lin.Rule)
		}
		var lastErr error
		okAny := false
		for _, r := range cands {
			if err := reverify(g, r, tr, lin); err == nil {
				okAny = true
				break
			} else {
				lastErr = err
			}
		}
		if !okAny {
			t.Fatalf("offset %d (rule %q, round %d): %v", off, lin.Rule, lin.Round, lastErr)
		}
	}
	return derived
}

// provClosure builds the LUBM KB the way serve.BuildKB does, with
// provenance on, and materializes with the forward engine.
func provClosure(seed int64) (*rdf.Graph, []rules.Rule) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: seed, DeptsPerUniv: 2})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	g := rdf.NewGraph()
	g.EnableProv()
	g.AddAll(instance)
	g.Union(compiled.Schema)
	reason.Forward{}.Materialize(g, compiled.InstanceRules)
	return g, compiled.InstanceRules
}

func TestProvenanceRoundTripLUBM(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g, rs := provClosure(seed)
			derived := verifyAllDerived(t, g, rs)
			if derived == 0 {
				t.Fatal("closure produced no derived triples; test is vacuous")
			}
			t.Logf("verified %d derived triples of %d total", derived, g.Len())
		})
	}
}

// TestProvenanceRoundTripRete runs the same property over the rete engine,
// whose premises come from join tokens instead of the semi-naive scratch.
func TestProvenanceRoundTripRete(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	g := rdf.NewGraph()
	g.EnableProv()
	g.AddAll(instance)
	g.Union(compiled.Schema)
	reason.Rete{}.Materialize(g, compiled.InstanceRules)
	derived := verifyAllDerived(t, g, compiled.InstanceRules)
	if derived == 0 {
		t.Fatal("rete closure produced no derived triples")
	}
	t.Logf("verified %d derived triples of %d total", derived, g.Len())
}

// TestProvenanceForwardVsIncremental feeds half the instance triples as
// seeds through the incremental path and requires the same closure as the
// one-shot forward run, with every derived triple's lineage round-tripping
// in both.
func TestProvenanceForwardVsIncremental(t *testing.T) {
	const seed = 7
	full, rs := provClosure(seed)

	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: seed, DeptsPerUniv: 2})
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	half := len(instance) / 2

	g := rdf.NewGraph()
	g.EnableProv()
	g.AddAll(instance[:half])
	g.Union(compiled.Schema)
	reason.Forward{}.Materialize(g, compiled.InstanceRules)
	// Second half arrives as an update, the way serve's writer applies
	// inserts: assert the seeds, then close incrementally.
	seeds := instance[half:]
	g.AddAll(seeds)
	reason.Forward{}.MaterializeFrom(g, compiled.InstanceRules, seeds)

	if g.Len() != full.Len() {
		t.Fatalf("incremental closure has %d triples, forward has %d", g.Len(), full.Len())
	}
	for _, tr := range full.Triples() {
		if !g.Has(tr) {
			t.Fatalf("incremental closure missing %v", tr)
		}
	}
	derived := verifyAllDerived(t, g, rs)
	if derived == 0 {
		t.Fatal("incremental closure recorded no derivations")
	}
	t.Logf("verified %d derived triples (incremental) vs forward closure of %d", derived, full.Len())
}
