package reason

import (
	"sort"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Retraction: DRed (delete-and-rederive) maintenance over the tombstoned
// triple log.
//
// The invariant the serving layer relies on is
//
//	live(g) == closure(live asserted triples of g, rs)
//
// before and after every Retract. Deleting an asserted triple therefore
// has to remove exactly the inferences that no longer have any derivation —
// which the provenance side-column makes cheap: each derived offset records
// the rule and premise offsets that first produced it, so the reverse map
// (premise offset → consumer offsets) bounds the cone a deletion can
// affect.
//
// The classic three DRed phases map onto the log like this:
//
//  1. Overdelete: BFS the consumers index from the requested offsets,
//     tombstoning the whole cone in one atomic tombstone-set publication.
//     Overdeletion is a superset of the true deletion — anything in the
//     cone that is still derivable comes back in phase 3.
//  2. Counting-style fast path: triples for which the engines observed a
//     second, independent derivation (Prov.RecordAlt) are reinstated
//     without a join if every alternate premise is still live.
//  3. Rederive: each remaining overdeleted triple is checked for one
//     derivation from the surviving graph (head bound to the triple, body
//     joined through the index); everything reinstated then seeds the
//     incremental semi-naive engine, which restores the fixpoint.
//
// Soundness of the record-driven cone: a surviving derived triple's record
// premises are live (else it would be in the cone), so by induction on
// restore order every live triple is in the closure of the surviving
// asserted set. Records that cannot support that induction — a rule body
// longer than the three recorded premise slots, an unresolved NoPremise
// slot, or a rule name unknown to this rule set — are *fragile*: they are
// conservatively overdeleted on every retraction and must re-earn their
// place through rederivation.
//
// Without provenance the Retractor degrades to delete-and-rematerialize:
// tombstone the requested triples plus every derived offset (the graph
// tracks a derived bit independently of provenance) and rerun the forward
// engine from the surviving asserted triples. Slow, but exactly as correct.

// RetractStats reports what one Retract did.
type RetractStats struct {
	// Requested is the number of triples asked for that were present.
	Requested int
	// Overdeleted is the total tombstoned count: the requested triples plus
	// the provenance cone (or, without provenance, all derived triples).
	Overdeleted int
	// Reinstated is the overdeleted triples restored by the
	// alternate-derivation fast path, without a join.
	Reinstated int
	// Rederived is the overdeleted triples restored by the one-step join.
	Rederived int
	// Propagated is the triples re-added by the closing semi-naive pass
	// seeded with the restored triples (plus, without provenance, the full
	// rematerialization's additions).
	Propagated int
}

// headTrigger locates one head atom of one compiled rule.
type headTrigger struct {
	rule    *cRule
	headIdx int
}

// Retractor maintains the closure of one graph under deletions. It is
// writer-side state: call Retract from the same single goroutine that owns
// the graph. The consumers index is built lazily from the provenance
// side-column and extended incrementally from a scan watermark, so steady
// inserts pay nothing for it; binding follows the graph identity, so
// swapping in a compacted graph resets the index automatically.
type Retractor struct {
	// Obs, when set, receives an EvWarn journal event whenever a retraction
	// runs without provenance and degrades to delete-and-rematerialize.
	// Nil-safe: a nil Run swallows the emit.
	Obs *obs.Run

	// Threads is forwarded to the forward engine runs Retract seeds (the
	// closing semi-naive pass and the provenance-off rematerialization); see
	// Forward.Threads. The overdelete/rederive phases themselves stay on the
	// single writer goroutine.
	Threads int

	rs      []rules.Rule
	crs     []cRule
	byHead  map[rdf.ID][]headTrigger
	anyHead []headTrigger
	bodyLen map[string]int // rule name → body atom count

	env  env
	prem [3]rdf.Triple

	// Per-graph state, reset when the graph identity changes.
	g       *rdf.Graph
	cons    map[uint32][]uint32 // premise offset → consumer offsets
	fragile []uint32            // derived offsets needing conservative overdelete
	idLen   map[uint16]int      // prov rule id → body length; -1 = unknown rule
	scanned int                 // provenance scan watermark
}

// NewRetractor compiles rs once and returns a Retractor for graphs closed
// under it. The rule set must be executable (ValidateRules) — callers that
// accept rules from outside validate before constructing the Retractor.
func NewRetractor(rs []rules.Rule) *Retractor {
	r := &Retractor{}
	if err := r.SetRules(rs); err != nil {
		panic(err)
	}
	return r
}

// SetRules replaces the Retractor's rule set: the rules are recompiled, the
// head index and binding environment are rebuilt (sized for the widest rule
// of the *new* set — the regression this guards is a rederive after a
// rule-set change indexing past an env sized for the old set), and the
// per-graph provenance caches are reset so records resolve against the new
// rules' body lengths. The graph itself is untouched; the caller re-runs
// Materialize if the new rules derive more.
func (r *Retractor) SetRules(rs []rules.Rule) error {
	crs, err := compileRules(rs)
	if err != nil {
		return err
	}
	r.rs = rs
	r.crs = crs
	r.byHead = map[rdf.ID][]headTrigger{}
	r.anyHead = nil
	r.bodyLen = make(map[string]int, len(crs))
	maxSlot := 1
	for i := range crs {
		cr := &crs[i]
		if cr.nslot > maxSlot {
			maxSlot = cr.nslot
		}
		r.bodyLen[cr.name] = len(cr.body)
		for hi, h := range cr.head {
			if h.p.isVar {
				r.anyHead = append(r.anyHead, headTrigger{cr, hi})
			} else {
				r.byHead[h.p.id] = append(r.byHead[h.p.id], headTrigger{cr, hi})
			}
		}
	}
	r.env = make(env, maxSlot)
	// Drop per-graph state: the rule-name → body-length cache and the
	// fragility classification both depend on the rule set, so the next
	// Retract rebuilds them from scratch.
	r.g = nil
	return nil
}

// rebind resets the per-graph state for g.
func (r *Retractor) rebind(g *rdf.Graph) {
	r.g = g
	r.cons = map[uint32][]uint32{}
	r.fragile = r.fragile[:0]
	r.idLen = map[uint16]int{}
	r.scanned = 0
}

// recLen resolves a record's rule id to its body length, or -1 when the
// rule is unknown to this rule set.
func (r *Retractor) recLen(prov *rdf.Prov, id uint16) int {
	if n, ok := r.idLen[id]; ok {
		return n
	}
	n, ok := r.bodyLen[prov.RuleName(id)]
	if !ok {
		n = -1
	}
	r.idLen[id] = n
	return n
}

// extend scans provenance records from the watermark, classifying each
// derived offset as indexed (complete premise record, registered in the
// consumers map) or fragile.
func (r *Retractor) extend() {
	prov := r.g.Prov()
	n := r.g.Len()
	for off := r.scanned; off < n; off++ {
		d := prov.At(uint32(off))
		if !d.IsDerived() {
			continue
		}
		bl := r.recLen(prov, d.Rule)
		np := bl
		if np > len(d.Prem) {
			np = len(d.Prem)
		}
		complete := bl > 0 && bl <= len(d.Prem)
		for i := 0; i < np; i++ {
			if d.Prem[i] == rdf.NoPremise {
				complete = false
			}
		}
		if !complete {
			r.fragile = append(r.fragile, uint32(off))
			// Still register whatever premises the record names: a fragile
			// triple must at least fall when a recorded premise falls.
			for i := 0; i < np; i++ {
				if p := d.Prem[i]; p != rdf.NoPremise {
					r.cons[p] = append(r.cons[p], uint32(off))
				}
			}
			continue
		}
		for i := 0; i < np; i++ {
			r.cons[d.Prem[i]] = append(r.cons[d.Prem[i]], uint32(off))
		}
	}
	r.scanned = n
}

// Retract removes dels from g and restores the fixpoint
// live(g) == closure(live asserted, rs). Writer-only. Requested triples
// that are still derivable from the surviving asserted set (i.e. deleting
// an inference) are restored as derived triples.
func (r *Retractor) Retract(g *rdf.Graph, dels []rdf.Triple) RetractStats {
	var st RetractStats
	if g.Prov() == nil {
		return r.retractRebuild(g, dels)
	}
	if r.g != g {
		r.rebind(g)
	}
	r.extend()
	prov := g.Prov()

	// Overdelete cone: requested offsets, fragile offsets, and transitively
	// every recorded consumer.
	over := map[uint32]struct{}{}
	var stack []uint32
	mark := func(off uint32) {
		if _, ok := over[off]; !ok {
			over[off] = struct{}{}
			stack = append(stack, off)
		}
	}
	for _, t := range dels {
		if off, ok := g.Offset(t); ok {
			st.Requested++
			mark(off)
		}
	}
	if st.Requested == 0 {
		return st
	}
	for _, off := range r.fragile {
		if g.IsLiveOffset(off) {
			mark(off)
		}
	}
	for len(stack) > 0 {
		off := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range r.cons[off] {
			if g.IsLiveOffset(c) {
				mark(c)
			}
		}
	}

	// The cone is a map; sort before anything order-sensitive (tombstone
	// publication is order-insensitive, but the rederivation queue below
	// must run premises before consumers, i.e. ascending offsets).
	offs := make([]uint32, 0, len(over))
	for off := range over {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	logv := g.TriplesSince(0)
	st.Overdeleted = g.DeleteOffsets(offs)

	// Restore pass, ascending: premises precede consumers in the log, so a
	// candidate's overdeleted premises have already had their chance to come
	// back when it is examined.
	var seeds []rdf.Triple
	for _, off := range offs {
		t := logv[off]
		if g.Has(t) {
			// A re-added duplicate of an earlier dead offset.
			continue
		}
		if alt, ok := prov.AltAt(off); ok {
			if d, valid := r.altDerivation(g, logv, alt); valid {
				g.AddDerived(t, d)
				seeds = append(seeds, t)
				st.Reinstated++
				continue
			}
		}
		if d, ok := r.deriveOnce(g, t); ok {
			g.AddDerived(t, d)
			seeds = append(seeds, t)
			st.Rederived++
		}
	}

	// Every restored triple may unlock further derivations (and duplicates
	// of still-dead cone members); the graph minus the cone was closed, so
	// seeding the semi-naive delta with the restorations is complete.
	if len(seeds) > 0 {
		st.Propagated = Forward{Threads: r.Threads}.MaterializeFrom(g, r.rs, seeds)
	}
	return st
}

// altDerivation validates an alternate-derivation record against the
// current graph: the rule must be known with all premises recorded, and
// every premise triple must be live (checked by value, so a premise that
// was deleted and re-added at a fresh offset still counts). It returns the
// record rebuilt on the premises' current offsets.
func (r *Retractor) altDerivation(g *rdf.Graph, logv []rdf.Triple, alt rdf.Derivation) (rdf.Derivation, bool) {
	bl := r.recLen(g.Prov(), alt.Rule)
	if bl <= 0 || bl > len(alt.Prem) {
		return rdf.Derivation{}, false
	}
	d := rdf.Derivation{Rule: alt.Rule, Round: alt.Round,
		Prem: [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise}}
	for i := 0; i < bl; i++ {
		p := alt.Prem[i]
		if p == rdf.NoPremise || int(p) >= len(logv) {
			return rdf.Derivation{}, false
		}
		cur, ok := g.Offset(logv[p])
		if !ok {
			return rdf.Derivation{}, false
		}
		d.Prem[i] = cur
	}
	return d, true
}

// deriveOnce looks for one derivation of t from the current live graph: for
// every rule head unifiable with t it joins the full body through the
// index, stopping at the first complete match. It returns the provenance
// record of that derivation.
func (r *Retractor) deriveOnce(g *rdf.Graph, t rdf.Triple) (rdf.Derivation, bool) {
	tryHead := func(ht headTrigger) (rdf.Derivation, bool) {
		cr := ht.rule
		if cr.nslot > len(r.env) {
			// Defensive: SetRules sizes env for the widest rule, so this only
			// trips if crs and env ever get out of sync again. Growing is
			// off the steady path (deriveOnce already allocates nothing only
			// per-candidate, not per-call).
			r.env = make(env, cr.nslot)
		}
		e := r.env[:cr.nslot]
		for i := range e {
			e[i] = 0
		}
		if _, ok := e.bindTriple(cr.head[ht.headIdx], t); !ok {
			return rdf.Derivation{}, false
		}
		r.prem = [3]rdf.Triple{}
		if !r.joinAll(g, cr, 0, e) {
			return rdf.Derivation{}, false
		}
		d := rdf.Derivation{Rule: g.Prov().RuleID(cr.name),
			Prem: [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise}}
		np := len(cr.body)
		if np > len(d.Prem) {
			np = len(d.Prem)
		}
		for i := 0; i < np; i++ {
			if off, ok := g.Offset(r.prem[i]); ok {
				d.Prem[i] = off
			}
		}
		return d, true
	}
	for _, ht := range r.byHead[t.P] {
		if d, ok := tryHead(ht); ok {
			return d, true
		}
	}
	for _, ht := range r.anyHead {
		if d, ok := tryHead(ht); ok {
			return d, true
		}
	}
	return rdf.Derivation{}, false
}

// joinAll extends e over cr.body[i:] and reports whether a complete match
// exists, leaving the matched premise triples (body-atom order, first
// three) in r.prem. Unlike joinRest it stops at the first match — the
// rederivation check needs existence, not enumeration.
func (r *Retractor) joinAll(g *rdf.Graph, cr *cRule, i int, e env) bool {
	if i == len(cr.body) {
		return true
	}
	a := cr.body[i]
	found := false
	g.ForEachMatch(e.resolve(a.s), e.resolve(a.p), e.resolve(a.o), func(x rdf.Triple) bool {
		bound, ok := e.bindTriple(a, x)
		if !ok {
			return true
		}
		if i < len(r.prem) {
			r.prem[i] = x
		}
		if r.joinAll(g, cr, i+1, e) {
			found = true
			return false
		}
		e.unbind(bound)
		return true
	})
	return found
}

// retractRebuild is the provenance-off fallback: tombstone the requested
// triples plus every derived offset, then rematerialize from the surviving
// asserted triples. Mirrors the degradation rule of the lineage sidecars —
// missing metadata costs performance, never correctness.
func (r *Retractor) retractRebuild(g *rdf.Graph, dels []rdf.Triple) RetractStats {
	r.Obs.Emit(obs.Event{
		Type: obs.EvWarn, TS: r.Obs.Now(), Worker: obs.MasterWorker,
		Name: "retract: graph has no provenance; degraded to delete-and-rematerialize",
	})
	var st RetractStats
	offs := make([]uint32, 0, len(dels))
	for _, t := range dels {
		if off, ok := g.Offset(t); ok {
			st.Requested++
			offs = append(offs, off)
		}
	}
	if st.Requested == 0 {
		return st
	}
	n := g.Len()
	for off := 0; off < n; off++ {
		o := uint32(off)
		if g.IsDerivedOffset(o) && g.IsLiveOffset(o) {
			offs = append(offs, o)
		}
	}
	st.Overdeleted = g.DeleteOffsets(offs)
	st.Propagated = Forward{Threads: r.Threads}.Materialize(g, r.rs)
	return st
}
