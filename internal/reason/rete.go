package reason

import (
	"context"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Rete is a forward-chaining engine built as a Rete network (Forgy 1982) —
// the algorithm Jena's forward engine uses (paper §V). Each rule compiles
// into a chain of join nodes over alpha memories; asserting a triple
// right-activates the alpha nodes it matches and propagates tokens down the
// beta network; production nodes emit head instantiations, which are
// asserted recursively until fixpoint.
//
// Compared with the semi-naive Forward engine, Rete trades memory (alpha
// and beta memories persist all partial joins) for strictly incremental
// work per asserted triple; BenchmarkAblation_Engine compares them.
type Rete struct{}

// Name implements Engine.
func (Rete) Name() string { return "rete" }

// Materialize implements Engine. The assert set is a read-only view of the
// log: the network's emits grow g past the view's end, which is safe — the
// log is append-only, so the snapshot's contents never move.
func (r Rete) Materialize(g *rdf.Graph, rs []rules.Rule) int {
	n, err := r.materialize(context.Background(), g, rs, g.Triples())
	if err != nil {
		// Background ctx never expires; the only error is an inexecutable
		// rule set the caller should have run through ValidateRules.
		panic(err)
	}
	return n
}

// MaterializeCtx implements ContextEngine: the assert loop checks ctx
// between assertions, so cancellation lands within one network activation.
func (r Rete) MaterializeCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule) (int, error) {
	return r.materialize(ctx, g, rs, g.Triples())
}

// MaterializeFrom implements Incremental: Rete is inherently incremental —
// the network is rebuilt, loaded with the existing closure, and then only
// the seeds need asserting; assertion order is irrelevant because the
// memories make every join retroactive. (Rebuilding costs one pass over g;
// a long-lived network handle would amortize it, but the cluster worker API
// exchanges plain graphs.)
func (r Rete) MaterializeFrom(g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) int {
	n, err := r.MaterializeFromCtx(context.Background(), g, rs, seeds)
	if err != nil {
		panic(err)
	}
	return n
}

// MaterializeFromCtx implements IncrementalContext.
func (r Rete) MaterializeFromCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule, seeds []rdf.Triple) (int, error) {
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	return r.materialize(ctx, g, rs, g.Triples())
}

func (Rete) materialize(ctx context.Context, g *rdf.Graph, rs []rules.Rule, assertSet []rdf.Triple) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	crs, err := compileRules(rs)
	if err != nil {
		return 0, err
	}
	net := buildNetwork(crs)
	net.prof = newRuleProf(ctx, crs)
	defer net.prof.flush()

	added := 0
	var queue []rdf.Triple
	emit := func(t rdf.Triple) {
		if g.AddDerived(t, rdf.Derivation{}) {
			added++
			queue = append(queue, t)
		}
	}

	// With provenance on, tokens carry their premise triples down the beta
	// chain and the production site records which rule fired; emit turns
	// that into a derivation record. All asserted triples are already in g
	// (assertSet is the log, queue entries were just Added), so premise
	// offsets always resolve. Rete has no round structure; records carry
	// round 0.
	prov := g.Prov()
	var derivedOf, dupOf []int64
	if prov != nil {
		sampler := obs.DerivesFrom(ctx)
		provIDs := make([]uint16, len(crs))
		for i := range crs {
			provIDs[i] = prov.RuleID(crs[i].name)
		}
		derivedOf = make([]int64, len(crs))
		dupOf = make([]int64, len(crs))
		net.rec = true
		emit = func(t rdf.Triple) {
			idx := net.fireRule.idx
			if g.Has(t) {
				dupOf[idx]++
				return
			}
			d := rdf.Derivation{
				Rule: provIDs[idx],
				Prem: [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
			}
			nb := len(net.fireRule.body)
			if nb > len(net.firePrem) {
				nb = len(net.firePrem)
			}
			for i := 0; i < nb; i++ {
				if off, ok := g.Offset(net.firePrem[i]); ok {
					d.Prem[i] = off
				}
			}
			if g.AddDerived(t, d) {
				added++
				queue = append(queue, t)
				derivedOf[idx]++
				if sampler != nil {
					if off, ok := g.Offset(t); ok {
						sampler.Sample(net.fireRule.name, 0, off)
					}
				}
			}
		}
	}

	for i, t := range assertSet {
		if i&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return added, err
			}
		}
		net.assert(t, emit)
	}
	for n := 0; len(queue) > 0; n++ {
		if n&1023 == 1023 {
			if err := ctx.Err(); err != nil {
				return added, err
			}
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		net.assert(t, emit)
	}
	if prov != nil {
		for i := range crs {
			if derivedOf[i] != 0 || dupOf[i] != 0 {
				net.prof.addDerived(i, derivedOf[i], dupOf[i])
			}
		}
	}
	return added, nil
}

// --- network structures ------------------------------------------------------

// token is a partial binding flowing down a rule's beta chain. When the
// network records provenance, prem carries the triples bound to the first
// three body atoms, keyed by body-atom index, so the production site knows
// the premises of each firing without re-deriving them.
type token struct {
	env  env
	prem [3]rdf.Triple
}

// premExtend returns base with t recorded at body-atom index atomIdx
// (indices past the record width are derivable from the rule head and
// dropped).
func premExtend(base [3]rdf.Triple, atomIdx int, t rdf.Triple) [3]rdf.Triple {
	if atomIdx < len(base) {
		base[atomIdx] = t
	}
	return base
}

// alphaNode filters asserted triples by one body atom's constants and fans
// out to the join nodes consuming that atom.
type alphaNode struct {
	pattern  cAtom
	memory   []rdf.Triple
	seen     map[rdf.Triple]struct{}
	consumer []*joinNode // joins right-activated by this alpha
	ruleIdx  int         // owning rule's compiled index (alphas are per-rule)
}

func (a *alphaNode) matches(t rdf.Triple) bool {
	if !a.pattern.s.isVar && a.pattern.s.id != t.S {
		return false
	}
	if !a.pattern.p.isVar && a.pattern.p.id != t.P {
		return false
	}
	if !a.pattern.o.isVar && a.pattern.o.id != t.O {
		return false
	}
	return true
}

// joinNode joins the tokens of the previous stage with one alpha memory.
// Stage 0 has no left input: tokens are created directly from the alpha.
type joinNode struct {
	rule    *cRule
	atomIdx int
	alpha   *alphaNode
	// leftMemory holds tokens produced by the previous stage (nil for the
	// first stage).
	leftMemory []token
	next       *joinNode
	// production fires when this is the last stage.
	production *cRule
	emitHeads  func(env, func(rdf.Triple))
}

// envArena bump-allocates the environments of tokens that persist in beta
// memories: envs are carved out of large shared blocks, so steady-state
// token creation costs one allocation per block instead of one per token.
// Arena envs live as long as the network; nothing is ever freed piecemeal.
type envArena struct {
	buf []rdf.ID
}

const envArenaBlock = 4096

func (a *envArena) alloc(n int) env {
	if cap(a.buf)-len(a.buf) < n {
		size := envArenaBlock
		if n > size {
			size = n
		}
		//powl:ignore allocfree amortized block refill: one make per 4096 IDs of successful beta matches, not per trial; AllocsPerRun pins the steady state at zero
		a.buf = make([]rdf.ID, 0, size)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	return env(a.buf[start : start+n : start+n])
}

// network is the compiled Rete graph.
type network struct {
	// alphasByPred indexes alpha nodes by their constant predicate;
	// alphaAny holds variable-predicate alphas.
	alphasByPred map[rdf.ID][]*alphaNode
	alphaAny     []*alphaNode
	roots        []*joinNode // first stage of each rule, for token seeding
	// scratch is the trial-binding buffer: joins bind into it first and only
	// copy into an arena env when the binding succeeds, so failed joins
	// allocate nothing and successful ones allocate from the arena in bulk.
	scratch env
	arena   envArena
	// prof, when non-nil, tallies per-rule activations. Alphas are not
	// shared between rules here, so a right-activation (and the beta
	// cascade under it, which stays inside one rule's join chain) is
	// attributable to exactly one rule.
	prof *ruleProf
	// rec enables provenance capture: tokens carry premises, and the
	// production site publishes the firing rule and its premises here for
	// emit to read — the Rete analogue of forward's scratch fields.
	rec      bool
	fireRule *cRule
	firePrem [3]rdf.Triple
}

func buildNetwork(crs []cRule) *network {
	net := &network{alphasByPred: map[rdf.ID][]*alphaNode{}}
	maxSlot := 1
	for i := range crs {
		if crs[i].nslot > maxSlot {
			maxSlot = crs[i].nslot
		}
	}
	net.scratch = make(env, maxSlot)
	for ri := range crs {
		r := &crs[ri]
		if len(r.body) == 0 {
			continue // bodyless rules never fire from assertions
		}
		var prev *joinNode
		for ai := range r.body {
			alpha := &alphaNode{pattern: r.body[ai], seen: map[rdf.Triple]struct{}{}, ruleIdx: r.idx}
			if r.body[ai].p.isVar {
				net.alphaAny = append(net.alphaAny, alpha)
			} else {
				net.alphasByPred[r.body[ai].p.id] = append(net.alphasByPred[r.body[ai].p.id], alpha)
			}
			jn := &joinNode{rule: r, atomIdx: ai, alpha: alpha}
			alpha.consumer = append(alpha.consumer, jn)
			if prev == nil {
				net.roots = append(net.roots, jn)
			} else {
				prev.next = jn
			}
			prev = jn
		}
		prev.production = r
	}
	return net
}

// assert feeds one triple through the network, calling emit for each head
// instantiation produced.
//
//powl:ignore wallclock per-rule profiling clock, same contract as forward.materialize.
func (n *network) assert(t rdf.Triple, emit func(rdf.Triple)) {
	if n.prof == nil {
		for _, a := range n.alphasByPred[t.P] {
			n.rightActivate(a, t, emit)
		}
		for _, a := range n.alphaAny {
			n.rightActivate(a, t, emit)
		}
		return
	}
	for _, a := range n.alphasByPred[t.P] {
		t0 := time.Now()
		n.rightActivate(a, t, emit)
		n.prof.time[a.ruleIdx] += time.Since(t0)
	}
	for _, a := range n.alphaAny {
		t0 := time.Now()
		n.rightActivate(a, t, emit)
		n.prof.time[a.ruleIdx] += time.Since(t0)
	}
}

func (n *network) rightActivate(a *alphaNode, t rdf.Triple, emit func(rdf.Triple)) {
	if !a.matches(t) {
		return
	}
	if _, dup := a.seen[t]; dup {
		return
	}
	a.seen[t] = struct{}{}
	a.memory = append(a.memory, t)
	for _, jn := range a.consumer {
		if jn.atomIdx == 0 {
			// First stage: the triple itself creates a token.
			if e, ok := n.tryExtend(nil, jn.rule, 0, t); ok {
				nt := token{env: e}
				if n.rec {
					nt.prem = premExtend(nt.prem, 0, t)
				}
				n.leftActivate(jn, nt, emit)
			}
			continue
		}
		// Later stage: join the new right input against the left memory.
		for _, tok := range jn.leftMemory {
			if e, ok := n.tryExtend(tok.env, jn.rule, jn.atomIdx, t); ok {
				nt := token{env: e}
				if n.rec {
					nt.prem = premExtend(tok.prem, jn.atomIdx, t)
				}
				n.leftActivate(jn, nt, emit)
			}
		}
	}
}

// tryExtend attempts to bind body atom atomIdx of r against t on top of the
// base environment (nil means all-unbound). The trial happens in the shared
// scratch buffer; only a successful binding is copied into a persistent
// arena env, so the (dominant) failing joins are allocation-free.
//
//powl:allocfree rete beta-join trial; only arena.alloc amortizes
func (n *network) tryExtend(base env, r *cRule, atomIdx int, t rdf.Triple) (env, bool) {
	sc := n.scratch[:r.nslot]
	if base == nil {
		for i := range sc {
			sc[i] = 0
		}
	} else {
		copy(sc, base)
	}
	if _, ok := sc.bindTriple(r.body[atomIdx], t); !ok {
		return nil, false
	}
	e := n.arena.alloc(r.nslot)
	copy(e, sc)
	return e, true
}

// leftActivate receives a completed token AT jn (i.e. jn's atom is already
// bound in the token) and either fires the production or extends the token
// into the next stage.
func (n *network) leftActivate(jn *joinNode, tok token, emit func(rdf.Triple)) {
	if jn.production != nil {
		if n.prof != nil {
			n.prof.matches[jn.production.idx]++
			n.prof.firings[jn.production.idx] += int64(len(jn.production.head))
		}
		if n.rec {
			n.fireRule = jn.production
			n.firePrem = tok.prem
		}
		for _, h := range jn.production.head {
			emit(tok.env.instantiate(h))
		}
	}
	next := jn.next
	if next == nil {
		return
	}
	next.leftMemory = append(next.leftMemory, tok)
	// Join against everything already in the next stage's alpha memory.
	for _, t := range next.alpha.memory {
		if e, ok := n.tryExtend(tok.env, next.rule, next.atomIdx, t); ok {
			nt := token{env: e}
			if n.rec {
				nt.prem = premExtend(tok.prem, next.atomIdx, t)
			}
			n.leftActivate(next, nt, emit)
		}
	}
}
