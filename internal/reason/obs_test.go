package reason

import (
	"context"
	"testing"

	"powl/internal/obs"
	"powl/internal/rdf"
)

// chainFx builds an n-node transitive chain with its rule, the standard
// profiling workload: every engine fires rule "tr" many times.
func chainFx(n int) (*fx, []rdf.Triple) {
	f := newFx()
	p := f.id("p")
	ids := make([]rdf.ID, n)
	for i := range ids {
		ids[i] = f.dict.InternIRI("http://t/chain/" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	var base []rdf.Triple
	for i := 0; i+1 < n; i++ {
		tr := rdf.Triple{S: ids[i], P: p, O: ids[i+1]}
		f.g.Add(tr)
		base = append(base, tr)
	}
	return f, base
}

// TestRuleProfilesMatchAcrossEngines: every engine, run under a rule
// collector, must attribute its work to the firing rule, and the profiled
// run must produce the same closure as the unprofiled one.
func TestRuleProfilesMatchAcrossEngines(t *testing.T) {
	for _, e := range []ContextEngine{Forward{}, Rete{}, Hybrid{}, Hybrid{SharedTable: true}} {
		f, _ := chainFx(12)
		rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)

		plain := f.g.Clone()
		if _, err := e.MaterializeCtx(context.Background(), plain, rs); err != nil {
			t.Fatal(err)
		}

		rc := &obs.RuleCollector{}
		ctx := obs.ContextWithRules(context.Background(), rc)
		profiled := f.g.Clone()
		if _, err := e.MaterializeCtx(ctx, profiled, rs); err != nil {
			t.Fatal(err)
		}

		if !plain.Equal(profiled) {
			t.Errorf("%s: profiled closure differs from plain closure", e.Name())
		}
		snap := rc.Snapshot()
		st, ok := snap["tr"]
		if !ok {
			t.Errorf("%s: rule tr missing from profile %v", e.Name(), snap)
			continue
		}
		if st.Firings == 0 {
			t.Errorf("%s: rule tr profiled zero firings", e.Name())
		}
		if st.Matches < st.Firings {
			t.Errorf("%s: matches %d < firings %d", e.Name(), st.Matches, st.Firings)
		}
	}
}

// TestProfilingDisabledIsNil: without a collector in the context the tally
// is nil — the entire per-activation cost of the disabled path is one nil
// check.
func TestProfilingDisabledIsNil(t *testing.T) {
	f, _ := chainFx(4)
	rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
	crs := mustCompileRules(rs)
	if p := newRuleProf(context.Background(), crs); p != nil {
		t.Fatalf("newRuleProf without collector = %+v, want nil", p)
	}
	var nilProf *ruleProf
	nilProf.flush() // must not panic
}

// TestObsOverheadLogged measures the profiled-vs-plain forward
// materialization cost on a transitive chain. The ratio is logged, not
// asserted: timing on shared CI machines is too noisy for a hard gate, but
// the log line makes regressions visible in -v output. Locally the
// overhead sits well under the 5% budget because the hot path only touches
// an engine-local slice.
func TestObsOverheadLogged(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short")
	}
	const n = 64
	run := func(ctx context.Context) func(b *testing.B) {
		return func(b *testing.B) {
			f, _ := chainFx(n)
			rs := f.parse(`[tr: (?x t:p ?y) (?y t:p ?z) -> (?x t:p ?z)]`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := f.g.Clone()
				b.StartTimer()
				if _, err := (Forward{}).MaterializeCtx(ctx, g, rs); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	plain := testing.Benchmark(run(context.Background()))
	profiled := testing.Benchmark(run(obs.ContextWithRules(context.Background(), &obs.RuleCollector{})))
	ratio := float64(profiled.NsPerOp()) / float64(plain.NsPerOp())
	t.Logf("forward materialize, %d-node chain: plain %v/op, profiled %v/op, ratio %.3f (budget 1.05)",
		n, plain.NsPerOp(), profiled.NsPerOp(), ratio)
}
