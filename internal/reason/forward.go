package reason

import (
	"context"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Forward is the semi-naive bottom-up datalog engine. Each round joins the
// previous round's delta against the full graph, so every derivation is
// performed once; rounds continue until no new triples appear.
type Forward struct {
	// Threads fans rule firing out over this many goroutines inside one
	// materialization (see parallel.go): the compiled rule set is stratified
	// into dependency pieces and each stratum's delta is fired across
	// per-goroutine scratches and staging shards, merged back through the
	// single-writer commit so the graph's MVCC publication invariants hold.
	// 0 or 1 selects the serial loop. The closure (and, with provenance on,
	// the derived-triple set) is identical to the serial run; only firing
	// order may differ.
	Threads int
}

// Name implements Engine.
func (Forward) Name() string { return "forward" }

// trigger marks that a delta triple with a given predicate may instantiate
// body atom atomIdx of rule.
type trigger struct {
	rule    *cRule
	atomIdx int
}

// Materialize implements Engine. The rule set must be executable
// (ValidateRules): the int-only Engine interface has nowhere to surface a
// compile error, so an invalid set panics here — callers that accept rules
// from outside validate first.
func (f Forward) Materialize(g *rdf.Graph, rs []rules.Rule) int {
	n, err := f.materialize(context.Background(), g, rs, g.Triples())
	if err != nil {
		panic(err)
	}
	return n
}

// MaterializeCtx implements ContextEngine: the semi-naive loop checks ctx
// between rounds and between delta triples, so cancellation lands within
// one rule firing.
func (f Forward) MaterializeCtx(ctx context.Context, g *rdf.Graph, rs []rules.Rule) (int, error) {
	return f.materialize(ctx, g, rs, g.Triples())
}

// materialize runs semi-naive evaluation with the given initial delta.
//
//powl:ignore wallclock per-rule profiling accumulates real durations into RuleStats; disabled entirely when no collector is attached.
func (f Forward) materialize(ctx context.Context, g *rdf.Graph, rs []rules.Rule, delta []rdf.Triple) (int, error) {
	if f.Threads > 1 {
		return f.materializeParallel(ctx, g, rs, delta)
	}
	crs, err := compileRules(rs)
	if err != nil {
		return 0, err
	}
	prof := newRuleProf(ctx, crs)
	defer prof.flush()

	// Index body atoms by their predicate constant so that a delta triple
	// only visits rules it can trigger. Atoms with a variable predicate go
	// into the wildcard list.
	byPred := map[rdf.ID][]trigger{}
	var anyPred []trigger
	for i := range crs {
		r := &crs[i]
		for j, a := range r.body {
			if a.p.isVar {
				anyPred = append(anyPred, trigger{r, j})
			} else {
				byPred[a.p.id] = append(byPred[a.p.id], trigger{r, j})
			}
		}
	}

	added := 0
	sc := newScratch(crs)
	// pending is the round's dedup buffer, reused (cleared, not reallocated)
	// across semi-naive rounds so the steady state allocates nothing per
	// round beyond genuine map growth.
	pending := map[rdf.Triple]struct{}{}
	emit := func(t rdf.Triple) {
		if !g.Has(t) {
			pending[t] = struct{}{}
		}
	}

	// When the graph records provenance, swap in an emit that captures the
	// firing rule and its premises (held in the scratch by fireOn/joinRest)
	// and tallies the derived/duplicate split. The disabled path above is
	// untouched: with prov == nil the join path runs exactly as before, so
	// it stays zero-alloc per delta triple.
	prov := g.Prov()
	var (
		sampler           *obs.DeriveSampler
		provIDs           []uint16
		pendProv, pendAlt map[rdf.Triple]pendDeriv
		derivedOf, dupOf  []int64
	)
	if prov != nil {
		sampler = obs.DerivesFrom(ctx)
		provIDs = make([]uint16, len(crs))
		for i := range crs {
			provIDs[i] = prov.RuleID(crs[i].name)
		}
		pendProv = map[rdf.Triple]pendDeriv{}
		pendAlt = map[rdf.Triple]pendDeriv{}
		derivedOf = make([]int64, len(crs))
		dupOf = make([]int64, len(crs))
		sc.rec = true
		emit = func(t rdf.Triple) {
			if g.Has(t) {
				dupOf[sc.cur.idx]++
				// A duplicate firing is an independent derivation of an
				// already-present triple. Record the first one observed as the
				// triple's alternate — the counting-style fast path Retract
				// consults — resolving premise offsets now, while the premises
				// are guaranteed present. Steady state this costs two map
				// lookups per duplicate; RecordAlt keeps only the first.
				if np := len(sc.cur.body); np <= len(sc.prem) {
					if off, ok := g.Offset(t); ok {
						if _, have := prov.AltAt(off); !have {
							d := rdf.Derivation{
								Rule: provIDs[sc.cur.idx],
								Prem: [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
							}
							for i := 0; i < np; i++ {
								if p, ok := g.Offset(sc.prem[i]); ok {
									d.Prem[i] = p
								}
							}
							prov.RecordAlt(off, d)
						}
					}
				}
				return
			}
			if _, ok := pending[t]; ok {
				dupOf[sc.cur.idx]++
				// Same-round duplicate: the triple has no offset yet, so
				// buffer this firing's premises and record the alternate at
				// the round flush, once the primary insert assigns one.
				if _, have := pendAlt[t]; !have && len(sc.cur.body) <= len(sc.prem) {
					pd := pendDeriv{rule: sc.cur}
					np := len(sc.cur.body)
					copy(pd.prem[:np], sc.prem[:np])
					pd.np = uint8(np)
					pendAlt[t] = pd
				}
				return
			}
			pending[t] = struct{}{}
			pd := pendDeriv{rule: sc.cur}
			np := len(sc.cur.body)
			if np > len(pd.prem) {
				np = len(pd.prem)
			}
			copy(pd.prem[:np], sc.prem[:np])
			pd.np = uint8(np)
			pendProv[t] = pd
		}
	}

	round := 0
	for len(delta) > 0 {
		round++
		if err := ctx.Err(); err != nil {
			return added, err
		}
		for i, t := range delta {
			if i&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					return added, err
				}
			}
			if prof == nil {
				for _, tr := range byPred[t.P] {
					fireOn(g, sc, tr, t, emit)
				}
				for _, tr := range anyPred {
					fireOn(g, sc, tr, t, emit)
				}
			} else {
				// Chained timestamps: consecutive activations share one
				// clock read, so profiling costs one time.Now per fireOn
				// instead of two.
				t0 := time.Now()
				for _, tr := range byPred[t.P] {
					m, f := fireOn(g, sc, tr, t, emit)
					t1 := time.Now()
					prof.add(tr.rule.idx, f, m, t1.Sub(t0))
					t0 = t1
				}
				for _, tr := range anyPred {
					m, f := fireOn(g, sc, tr, t, emit)
					t1 := time.Now()
					prof.add(tr.rule.idx, f, m, t1.Sub(t0))
					t0 = t1
				}
			}
		}
		delta = delta[:0]
		if prov == nil {
			for t := range pending {
				// AddDerived rather than Add: even without provenance records
				// the graph tracks which offsets are engine-derived, which is
				// what lets Retract fall back to delete-and-rematerialize.
				if g.AddDerived(t, rdf.Derivation{}) {
					delta = append(delta, t)
					added++
				}
			}
		} else {
			// Premises were graph triples at fire time, so every offset
			// resolves; the derived triple lands above them in the log,
			// which is what keeps Explain's premise walk acyclic.
			r16 := uint16(round)
			if round > int(^uint16(0)) {
				r16 = ^uint16(0)
			}
			for t := range pending {
				pd := pendProv[t]
				d := rdf.Derivation{
					Rule:  provIDs[pd.rule.idx],
					Round: r16,
					Prem:  [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
				}
				for i := 0; i < int(pd.np); i++ {
					if off, ok := g.Offset(pd.prem[i]); ok {
						d.Prem[i] = off
					}
				}
				if g.AddDerived(t, d) {
					delta = append(delta, t)
					added++
					derivedOf[pd.rule.idx]++
					if sampler != nil {
						if off, ok := g.Offset(t); ok {
							sampler.Sample(pd.rule.name, round, off)
						}
					}
					if pa, ok := pendAlt[t]; ok {
						if off, ok := g.Offset(t); ok {
							ad := rdf.Derivation{
								Rule:  provIDs[pa.rule.idx],
								Round: r16,
								Prem:  [3]uint32{rdf.NoPremise, rdf.NoPremise, rdf.NoPremise},
							}
							for i := 0; i < int(pa.np); i++ {
								if p, ok := g.Offset(pa.prem[i]); ok {
									ad.Prem[i] = p
								}
							}
							prov.RecordAlt(off, ad)
						}
					}
				}
			}
			clear(pendProv)
			clear(pendAlt)
		}
		clear(pending)
	}
	if prov != nil {
		for i := range crs {
			if derivedOf[i] != 0 || dupOf[i] != 0 {
				prof.addDerived(i, derivedOf[i], dupOf[i])
			}
		}
	}
	return added, nil
}

// pendDeriv is a pending triple's provenance, buffered until the round's
// flush resolves the premise triples to their log offsets: the rule that
// first produced it plus its (body-atom-ordered, truncated-at-three)
// premises.
type pendDeriv struct {
	rule *cRule
	prem [3]rdf.Triple
	np   uint8
}

// scratch holds the reusable join buffers of one materialization: a binding
// environment sized for the widest rule and a rest-atom order buffer sized
// for the longest body. fireOn re-slices them per rule, so the steady-state
// join path performs no per-firing allocations.
//
// When rec is set (the owning graph records provenance), fireOn and
// joinRest additionally track the firing rule and the triples bound to the
// first three body atoms, so emit can read the premises of the current
// firing straight out of the scratch — still no per-firing allocation.
//
// The buffers are reused across firings with no synchronization, so a
// scratch must never be visible to two goroutines: the parallel fire loop
// creates one per worker inside the goroutine (see fireShard), and owlvet's
// sharedscratch analyzer enforces the confinement via the directive below.
//
//powl:goroutinelocal
type scratch struct {
	env  env
	rest []int
	rec  bool
	cur  *cRule
	prem [3]rdf.Triple
}

func newScratch(crs []cRule) *scratch {
	maxSlot, maxBody := 1, 1
	for i := range crs {
		if crs[i].nslot > maxSlot {
			maxSlot = crs[i].nslot
		}
		if len(crs[i].body) > maxBody {
			maxBody = len(crs[i].body)
		}
	}
	return &scratch{env: make(env, maxSlot), rest: make([]int, 0, maxBody)}
}

// fireOn seeds rule tr.rule with delta triple t at body position tr.atomIdx,
// joins the remaining body atoms against the full graph, and emits every
// resulting head instantiation. It reports the complete body matches and
// head emissions it produced, for the per-rule profile.
//
//powl:allocfree steady-state join path: all scratch comes from sc
func fireOn(g *rdf.Graph, sc *scratch, tr trigger, t rdf.Triple, emit func(rdf.Triple)) (matches, firings int64) {
	r := tr.rule
	e := sc.env[:r.nslot]
	for i := range e {
		e[i] = 0
	}
	if _, ok := e.bindTriple(r.body[tr.atomIdx], t); !ok {
		return 0, 0
	}
	if sc.rec {
		sc.cur = r
		sc.prem = [3]rdf.Triple{}
		if tr.atomIdx < len(sc.prem) {
			sc.prem[tr.atomIdx] = t
		}
	}
	rest := sc.rest[:0]
	for i := range r.body {
		if i != tr.atomIdx {
			rest = append(rest, i)
		}
	}
	joinRest(g, sc, r, rest, e, func() {
		matches++
		for _, h := range r.head {
			firings++
			emit(e.instantiate(h))
		}
	})
	return matches, firings
}

// joinRest extends e over the body atoms listed in rest (indices into
// r.body), calling yield for every complete assignment. At each step it
// picks the remaining atom with the smallest index cardinality under the
// current bindings (CountMatch is O(1) for every pattern the OWL-Horst
// bodies produce), which starts each join from its most selective extent —
// the rule-body ordering RORS and the dynamic-exchange Datalog stores
// attribute their throughput to. Selection reorders rest in place, so the
// whole join runs on the caller's scratch buffer with no per-level copies.
//
//powl:allocfree the innermost loop of every engine
func joinRest(g *rdf.Graph, sc *scratch, r *cRule, rest []int, e env, yield func()) {
	if len(rest) == 0 {
		yield()
		return
	}
	best, bestCount := 0, -1
	for i, ai := range rest {
		a := r.body[ai]
		n := g.CountMatch(e.resolve(a.s), e.resolve(a.p), e.resolve(a.o))
		if bestCount < 0 || n < bestCount {
			best, bestCount = i, n
			if n == 0 {
				// An empty extent annihilates the join; no need to rank the
				// other atoms.
				return
			}
		}
	}
	rest[0], rest[best] = rest[best], rest[0]
	ai := rest[0]
	a := r.body[ai]
	tail := rest[1:]
	g.ForEachMatch(e.resolve(a.s), e.resolve(a.p), e.resolve(a.o), func(t rdf.Triple) bool {
		if bound, ok := e.bindTriple(a, t); ok {
			if sc.rec && ai < len(sc.prem) {
				// Premises are keyed by body-atom index, not join order:
				// the selectivity reorder above shuffles rest, and the
				// round-trip verifier re-binds premises to body atoms.
				sc.prem[ai] = t
			}
			joinRest(g, sc, r, tail, e, yield)
			e.unbind(bound)
		}
		return true
	})
}

// Closure is a convenience wrapper: it clones g, materializes it under rs
// with the forward engine, and returns the closed graph, leaving g intact.
func Closure(g *rdf.Graph, rs []rules.Rule) *rdf.Graph {
	c := g.Clone()
	Forward{}.Materialize(c, rs)
	return c
}
