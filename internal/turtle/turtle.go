// Package turtle implements a reader for the commonly used subset of the
// Turtle RDF serialization: @prefix and @base directives, prefixed names,
// the `a` keyword, predicate lists (;), object lists (,), blank node
// labels, and string/typed/language-tagged literals. Anonymous blank nodes
// `[ ... ]` and RDF collections `( ... )` are also supported, expanding to
// fresh blank nodes and rdf:first/rdf:rest chains respectively (as the
// owl:intersectionOf axioms of real ontologies require).
//
// Not supported (rejected with an error): multi-line """literals""",
// numeric/boolean abbreviations, and relative IRI resolution beyond simple
// @base concatenation.
package turtle

import (
	"fmt"
	"io"
	"strings"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

// ReadGraph parses Turtle from r, interning terms into dict and adding all
// triples to g. Returns the number of triples added.
func ReadGraph(r io.Reader, dict *rdf.Dict, g *rdf.Graph) (int, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	p := &parser{
		src:  string(src),
		dict: dict,
		g:    g,
		prefixes: map[string]string{
			"rdf":  vocab.RDF,
			"rdfs": vocab.RDFS,
			"owl":  vocab.OWL,
			"xsd":  vocab.XSD,
		},
	}
	return p.parse()
}

// ParseString is ReadGraph over a string.
func ParseString(src string, dict *rdf.Dict, g *rdf.Graph) (int, error) {
	return ReadGraph(strings.NewReader(src), dict, g)
}

type parser struct {
	src      string
	i        int
	dict     *rdf.Dict
	g        *rdf.Graph
	prefixes map[string]string
	base     string
	added    int
	blankSeq int
}

func (p *parser) parse() (int, error) {
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return p.added, nil
		}
		switch {
		case p.has("@prefix"):
			p.i += len("@prefix")
			if err := p.prefixDirective(); err != nil {
				return p.added, err
			}
		case p.has("@base"):
			p.i += len("@base")
			if err := p.baseDirective(); err != nil {
				return p.added, err
			}
		default:
			if err := p.statement(); err != nil {
				return p.added, err
			}
		}
	}
}

// statement parses: subject predicateObjectList '.'
func (p *parser) statement() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if !p.eat('.') {
		return p.errf("expected '.' after statement")
	}
	return nil
}

func (p *parser) predicateObjectList(subj rdf.ID) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.object()
			if err != nil {
				return err
			}
			if p.g.Add(rdf.Triple{S: subj, P: pred, O: obj}) {
				p.added++
			}
			p.skipWS()
			if !p.eat(',') {
				break
			}
		}
		p.skipWS()
		if !p.eat(';') {
			return nil
		}
		// A trailing ';' before '.' is legal Turtle.
		p.skipWS()
		if p.i < len(p.src) && (p.src[p.i] == '.' || p.src[p.i] == ']') {
			return nil
		}
	}
}

func (p *parser) subject() (rdf.ID, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return 0, p.errf("unexpected end of input")
	}
	switch p.src[p.i] {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankLabel()
	case '[':
		return p.anonBlank()
	case '(':
		return p.collection()
	default:
		return p.prefixedName()
	}
}

func (p *parser) predicate() (rdf.ID, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return 0, p.errf("unexpected end of input in predicate")
	}
	if p.src[p.i] == 'a' && p.i+1 < len(p.src) && isWS(p.src[p.i+1]) {
		p.i++
		return p.dict.InternIRI(vocab.RDFType), nil
	}
	if p.src[p.i] == '<' {
		return p.iriRef()
	}
	return p.prefixedName()
}

func (p *parser) object() (rdf.ID, error) {
	p.skipWS()
	if p.i >= len(p.src) {
		return 0, p.errf("unexpected end of input in object")
	}
	switch p.src[p.i] {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankLabel()
	case '"':
		return p.literal()
	case '[':
		return p.anonBlank()
	case '(':
		return p.collection()
	default:
		return p.prefixedName()
	}
}

// anonBlank parses [ predicateObjectList? ] into a fresh blank node.
func (p *parser) anonBlank() (rdf.ID, error) {
	p.i++ // '['
	p.blankSeq++
	node := p.dict.InternBlank(fmt.Sprintf("anon%d", p.blankSeq))
	p.skipWS()
	if p.eat(']') {
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return 0, err
	}
	p.skipWS()
	if !p.eat(']') {
		return 0, p.errf("unterminated '['")
	}
	return node, nil
}

// collection parses ( item... ) into an rdf:first/rdf:rest chain.
func (p *parser) collection() (rdf.ID, error) {
	p.i++ // '('
	first := p.dict.InternIRI(vocab.RDFFirst)
	rest := p.dict.InternIRI(vocab.RDFRest)
	nilID := p.dict.InternIRI(vocab.RDFNil)

	var items []rdf.ID
	for {
		p.skipWS()
		if p.i >= len(p.src) {
			return 0, p.errf("unterminated '('")
		}
		if p.eat(')') {
			break
		}
		item, err := p.object()
		if err != nil {
			return 0, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return nilID, nil
	}
	head := rdf.ID(0)
	prev := rdf.ID(0)
	for _, item := range items {
		p.blankSeq++
		cell := p.dict.InternBlank(fmt.Sprintf("list%d", p.blankSeq))
		if head == 0 {
			head = cell
		} else if p.g.Add(rdf.Triple{S: prev, P: rest, O: cell}) {
			p.added++
		}
		if p.g.Add(rdf.Triple{S: cell, P: first, O: item}) {
			p.added++
		}
		prev = cell
	}
	if p.g.Add(rdf.Triple{S: prev, P: rest, O: nilID}) {
		p.added++
	}
	return head, nil
}

func (p *parser) iriRef() (rdf.ID, error) {
	p.i++ // '<'
	end := strings.IndexByte(p.src[p.i:], '>')
	if end < 0 {
		return 0, p.errf("unterminated IRI")
	}
	iri := p.src[p.i : p.i+end]
	p.i += end + 1
	if !strings.Contains(iri, ":") && p.base != "" {
		iri = p.base + iri
	}
	if iri == "" {
		return 0, p.errf("empty IRI")
	}
	return p.dict.InternIRI(iri), nil
}

func (p *parser) blankLabel() (rdf.ID, error) {
	if p.i+1 >= len(p.src) || p.src[p.i+1] != ':' {
		return 0, p.errf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.src) && isNameByte(p.src[p.i]) {
		p.i++
	}
	if p.i == start {
		return 0, p.errf("empty blank node label")
	}
	return p.dict.InternBlank(p.src[start:p.i]), nil
}

func (p *parser) prefixedName() (rdf.ID, error) {
	start := p.i
	for p.i < len(p.src) && (isNameByte(p.src[p.i]) || p.src[p.i] == ':') {
		p.i++
	}
	word := p.src[start:p.i]
	// A trailing '.' is a statement terminator, not part of the name.
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
		p.i--
	}
	colon := strings.IndexByte(word, ':')
	if colon < 0 {
		return 0, p.errf("expected a prefixed name, got %q", word)
	}
	ns, ok := p.prefixes[word[:colon]]
	if !ok {
		return 0, p.errf("unknown prefix %q", word[:colon])
	}
	return p.dict.InternIRI(ns + word[colon+1:]), nil
}

func (p *parser) literal() (rdf.ID, error) {
	if strings.HasPrefix(p.src[p.i:], `"""`) {
		return 0, p.errf("multi-line literals are not supported")
	}
	start := p.i
	p.i++
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case '\\':
			p.i += 2
			if p.i > len(p.src) {
				p.i = len(p.src)
				return 0, p.errf("dangling escape in literal")
			}
		case '"':
			p.i++
			// Optional suffix.
			if p.i < len(p.src) && p.src[p.i] == '@' {
				for p.i < len(p.src) && (isNameByte(p.src[p.i]) || p.src[p.i] == '@') {
					p.i++
				}
			} else if strings.HasPrefix(p.src[p.i:], "^^") {
				p.i += 2
				lexBase := p.src[start:p.i] // `"value"^^`
				p.skipWS()
				if p.i < len(p.src) && p.src[p.i] == '<' {
					id, err := p.iriRef()
					if err != nil {
						return 0, err
					}
					return p.dict.InternLiteral(lexBase + "<" + p.dict.Term(id).Value + ">"), nil
				}
				id, err := p.prefixedName()
				if err != nil {
					return 0, err
				}
				// Normalize prefixed datatypes to the full-IRI lexical form
				// so Turtle and N-Triples inputs intern identically.
				return p.dict.InternLiteral(lexBase + "<" + p.dict.Term(id).Value + ">"), nil
			}
			return p.dict.InternLiteral(p.src[start:p.i]), nil
		default:
			p.i++
		}
	}
	return 0, p.errf("unterminated literal")
}

func (p *parser) prefixDirective() error {
	p.skipWS()
	start := p.i
	for p.i < len(p.src) && p.src[p.i] != ':' {
		p.i++
	}
	if p.i >= len(p.src) {
		return p.errf("malformed @prefix")
	}
	name := strings.TrimSpace(p.src[start:p.i])
	p.i++
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != '<' {
		return p.errf("@prefix needs <iri>")
	}
	id, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = p.dict.Term(id).Value
	p.skipWS()
	if !p.eat('.') {
		return p.errf("@prefix must end with '.'")
	}
	return nil
}

func (p *parser) baseDirective() error {
	p.skipWS()
	if p.i >= len(p.src) || p.src[p.i] != '<' {
		return p.errf("@base needs <iri>")
	}
	end := strings.IndexByte(p.src[p.i:], '>')
	if end < 0 {
		return p.errf("unterminated IRI in @base")
	}
	p.base = p.src[p.i+1 : p.i+end]
	p.i += end + 1
	p.skipWS()
	if !p.eat('.') {
		return p.errf("@base must end with '.'")
	}
	return nil
}

func (p *parser) skipWS() {
	for p.i < len(p.src) {
		c := p.src[p.i]
		if isWS(c) {
			p.i++
			continue
		}
		if c == '#' {
			for p.i < len(p.src) && p.src[p.i] != '\n' {
				p.i++
			}
			continue
		}
		break
	}
}

func (p *parser) has(kw string) bool { return strings.HasPrefix(p.src[p.i:], kw) }

func (p *parser) eat(c byte) bool {
	if p.i < len(p.src) && p.src[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.i], "\n")
	return fmt.Errorf("turtle: line %d: %s", line, fmt.Sprintf(format, args...))
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '/' || c == '#' || c == '%'
}
