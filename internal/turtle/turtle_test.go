package turtle

import (
	"strings"
	"testing"

	"powl/internal/rdf"
	"powl/internal/vocab"
)

func parse(t *testing.T, src string) (*rdf.Dict, *rdf.Graph) {
	t.Helper()
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if _, err := ParseString(src, dict, g); err != nil {
		t.Fatal(err)
	}
	return dict, g
}

func mustHave(t *testing.T, dict *rdf.Dict, g *rdf.Graph, s, p, o rdf.Term) {
	t.Helper()
	si, ok1 := dict.Lookup(s)
	pi, ok2 := dict.Lookup(p)
	oi, ok3 := dict.Lookup(o)
	if !ok1 || !ok2 || !ok3 || !g.Has(rdf.Triple{S: si, P: pi, O: oi}) {
		t.Errorf("missing triple %v %v %v", s, p, o)
	}
}

func iri(v string) rdf.Term { return rdf.Term{Kind: rdf.IRI, Value: v} }
func lit(v string) rdf.Term { return rdf.Term{Kind: rdf.Literal, Value: v} }
func bnk(v string) rdf.Term { return rdf.Term{Kind: rdf.Blank, Value: v} }

func TestBasicTriples(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
ex:alice ex:knows ex:bob .
<http://example.org/bob> a ex:Person .
`)
	if g.Len() != 2 {
		t.Fatalf("parsed %d triples, want 2", g.Len())
	}
	mustHave(t, dict, g, iri("http://example.org/alice"), iri("http://example.org/knows"), iri("http://example.org/bob"))
	mustHave(t, dict, g, iri("http://example.org/bob"), iri(vocab.RDFType), iri("http://example.org/Person"))
}

func TestPredicateAndObjectLists(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:x , ex:y ;
     ex:q ex:z ;
     a ex:Thing .
`)
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4", g.Len())
	}
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/p"), iri("http://example.org/y"))
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/q"), iri("http://example.org/z"))
}

func TestLiterals(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:name "Alice" .
ex:a ex:bio "says \"hi\""@en .
ex:a ex:age "30"^^xsd:integer .
ex:a ex:height "1.7"^^<http://www.w3.org/2001/XMLSchema#decimal> .
`)
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4", g.Len())
	}
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/name"), lit(`"Alice"`))
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/bio"), lit(`"says \"hi\""@en`))
	// Prefixed and full-IRI datatypes normalize identically.
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/age"),
		lit(`"30"^^<http://www.w3.org/2001/XMLSchema#integer>`))
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/height"),
		lit(`"1.7"^^<http://www.w3.org/2001/XMLSchema#decimal>`))
}

func TestBlankNodes(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
_:b1 ex:p ex:x .
ex:y ex:q _:b1 .
`)
	mustHave(t, dict, g, bnk("b1"), iri("http://example.org/p"), iri("http://example.org/x"))
	mustHave(t, dict, g, iri("http://example.org/y"), iri("http://example.org/q"), bnk("b1"))
}

func TestAnonymousBlankNode(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:knows [ a ex:Person ; ex:name "Bob" ] .
`)
	if g.Len() != 3 {
		t.Fatalf("parsed %d triples, want 3", g.Len())
	}
	// The anon node is typed and named.
	typ, _ := dict.Lookup(iri(vocab.RDFType))
	person, _ := dict.Lookup(iri("http://example.org/Person"))
	anons := g.Match(rdf.Wildcard, typ, person)
	if len(anons) != 1 {
		t.Fatalf("anon typed nodes: %d", len(anons))
	}
	if dict.Term(anons[0].S).Kind != rdf.Blank {
		t.Error("anon node is not a blank node")
	}
}

func TestCollection(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
ex:C owl:intersectionOf ( ex:A ex:B ) .
`)
	// 1 intersectionOf + 2 first + 2 rest = 5.
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
	first, _ := dict.Lookup(iri(vocab.RDFFirst))
	nilID, _ := dict.Lookup(iri(vocab.RDFNil))
	rest, _ := dict.Lookup(iri(vocab.RDFRest))
	if len(g.Match(rdf.Wildcard, first, rdf.Wildcard)) != 2 {
		t.Error("rdf:first count wrong")
	}
	if len(g.Match(rdf.Wildcard, rest, nilID)) != 1 {
		t.Error("list not nil-terminated")
	}
}

func TestEmptyCollectionIsNil(t *testing.T) {
	dict, g := parse(t, `
@prefix ex: <http://example.org/> .
ex:C ex:list () .
`)
	nilID, _ := dict.Lookup(iri(vocab.RDFNil))
	c, _ := dict.Lookup(iri("http://example.org/C"))
	p, _ := dict.Lookup(iri("http://example.org/list"))
	if !g.Has(rdf.Triple{S: c, P: p, O: nilID}) {
		t.Fatal("empty collection should be rdf:nil")
	}
}

func TestBaseDirective(t *testing.T) {
	dict, g := parse(t, `
@base <http://example.org/> .
@prefix ex: <http://example.org/> .
<a> ex:p <b> .
`)
	mustHave(t, dict, g, iri("http://example.org/a"), iri("http://example.org/p"), iri("http://example.org/b"))
}

func TestBuiltinPrefixes(t *testing.T) {
	_, g := parse(t, `
@prefix ex: <http://example.org/> .
ex:P a owl:TransitiveProperty .
ex:A rdfs:subClassOf ex:B .
`)
	if g.Len() != 2 {
		t.Fatalf("builtin prefixes: %d triples", g.Len())
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`ex:a ex:p ex:o .`,                         // unknown prefix
		`@prefix ex: <http://x/> . ex:a ex:p`,      // missing object and dot
		`@prefix ex: <http://x/> . ex:a ex:p ex:o`, // missing dot
		`@prefix ex <http://x/> .`,                 // malformed prefix (no colon) — consumed as name
		`@prefix ex: <http://x/> . ex:a ex:p "unterminated .`,
		`@prefix ex: <http://x/> . ex:a ex:p """multi""" .`,
		`@prefix ex: <http://x/> . ex:a ex:p ( ex:b .`,      // unterminated collection
		`@prefix ex: <http://x/> . ex:a ex:p [ ex:q ex:r .`, // unterminated anon
		`@base missing .`,
	}
	for _, src := range bad {
		dict := rdf.NewDict()
		g := rdf.NewGraph()
		if _, err := ParseString(src, dict, g); err == nil {
			t.Errorf("source %q parsed without error", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	_, g := parse(t, `
# leading comment
@prefix ex: <http://example.org/> .   # trailing comment
ex:a   ex:p
       ex:b .  # done
`)
	if g.Len() != 1 {
		t.Fatalf("parsed %d triples, want 1", g.Len())
	}
}

// TestOntologyRoundTrip parses a Turtle ontology and checks it compiles and
// reasons end to end — the integration a user converting real-world data
// relies on.
func TestOntologyRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://shop/ns#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:PremiumCustomer rdfs:subClassOf ex:Customer .
ex:partOfOrder a owl:TransitiveProperty .

ex:item1 ex:partOfOrder ex:box1 .
ex:box1 ex:partOfOrder ex:order1 .
ex:alice a ex:PremiumCustomer .
`
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if _, err := ParseString(src, dict, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dict.Term(1).String(), "<") && dict.Len() == 0 {
		t.Fatal("dictionary empty")
	}
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
}
