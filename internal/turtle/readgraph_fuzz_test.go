package turtle_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"powl/internal/rdf"
	"powl/internal/transport"
	"powl/internal/turtle"
)

// FuzzTurtleReadGraph drives turtle.ReadGraph the way a loader fed from the
// network or a shared file system would: an arbitrary payload is parsed into
// a fresh graph, and a parse failure is wrapped as transport.ErrMalformed.
// Mirrors ntriples.FuzzReadGraph: the properties under test are no panic,
// termination on any input (the Turtle grammar has nesting — blank-node
// property lists and collections — so runaway recursion and stuck-position
// loops are the specific risks), and malformed payloads classifying fatal,
// never transient, under transport.DefaultClassify.
func FuzzTurtleReadGraph(f *testing.F) {
	seeds := []string{
		"@prefix ex: <http://x/> .\nex:a ex:p ex:b .",
		"@prefix ex: <http://x/> .\nex:a ex:p ex:b , ex:c ; ex:q ex:d .",
		"@prefix ex: <http://x/> .\nex:a ex:p [ a ex:T ] .",
		"@prefix ex: <http://x/> .\nex:C ex:l ( ex:a ex:b ) .",
		"@base <http://b/> .\n<a> <p> <o> .",
		"@prefix ex: <http://x/> .\nex:a ex:p ex:b",    // missing dot
		"@prefix ex: <http://x/> .\nex:a ex:p \"torn",  // torn literal
		"@prefix ex: <http://x/> .\nex:a ex:p [ a ex:", // torn blank node
		"@prefix ex: <http://x/> .\nex:C ex:l ( ex:a",  // torn collection
		"\x00\xff\xfe frame garbage",                   // binary noise
		strings.Repeat("<a> <b> <c> .\n", 10) + "<d>",  // good prefix, torn tail
		"@prefix : <u", // torn directive
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload string) {
		done := make(chan struct{})
		var n int
		var err error
		go func() {
			defer close(done)
			dict := rdf.NewDict()
			g := rdf.NewGraph()
			n, err = turtle.ReadGraph(strings.NewReader(payload), dict, g)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("ReadGraph looped on %d-byte payload", len(payload))
		}
		if err == nil {
			if n < 0 {
				t.Fatalf("accepted payload reported %d triples", n)
			}
			return
		}
		// Wrap as a receive path would and check the classification: a
		// malformed payload must be fatal, not retried — re-reading cannot
		// repair corrupt bytes.
		framed := fmt.Errorf("loader: %w: %v", transport.ErrMalformed, err)
		if transport.DefaultClassify(framed) {
			t.Fatalf("malformed payload classified transient: %v", framed)
		}
	})
}
