package turtle

import (
	"testing"

	"powl/internal/rdf"
)

// FuzzTurtle checks the Turtle parser never panics or loops; accepted input
// must yield a well-formed graph (no zero IDs).
func FuzzTurtle(f *testing.F) {
	seeds := []string{
		"@prefix ex: <http://x/> .\nex:a ex:p ex:b .",
		"@prefix ex: <http://x/> .\nex:a ex:p ex:b , ex:c ; ex:q ex:d .",
		"@prefix ex: <http://x/> .\nex:a ex:p [ a ex:T ] .",
		"@prefix ex: <http://x/> .\nex:C ex:l ( ex:a ex:b ) .",
		"@base <http://b/> .\n<a> <p> <o> .",
		`@prefix ex: <http://x/> . ex:a ex:p "lit"^^ex:dt .`,
		"@prefix ex: <http://x/> .\n_:n ex:p _:m .",
		"((((", "[;]", "@prefix :::",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		dict := rdf.NewDict()
		g := rdf.NewGraph()
		if _, err := ParseString(src, dict, g); err != nil {
			return
		}
		for _, tr := range g.Triples() {
			if tr.S == 0 || tr.P == 0 || tr.O == 0 {
				t.Fatalf("accepted input produced zero ID: %v", tr)
			}
		}
	})
}
