package ntriples

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"powl/internal/rdf"
)

// FuzzReader checks the N-Triples parser never panics and that everything
// it accepts survives a serialize→parse round trip.
func FuzzReader(f *testing.F) {
	seeds := []string{
		"<http://x/s> <http://x/p> <http://x/o> .",
		`_:b0 <http://x/p> "lit"@en .`,
		`<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		"# comment\n\n<http://x/s> <http://x/p> _:o .",
		`<http://x/s> <http://x/p> "esc\"aped" .`,
		"<> <http://x/p> <http://x/o> .",
		"<http://x/s> <http://x/p>",
		"\x00\x01\x02",
		strings.Repeat("<http://x/s> <http://x/p> <http://x/o> .\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		dict := rdf.NewDict()
		g := rdf.NewGraph()
		if _, err := ReadGraph(strings.NewReader(src), dict, g); err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := WriteGraph(&buf, dict, g); err != nil {
			t.Fatalf("serialize failed on accepted input: %v", err)
		}
		g2 := rdf.NewGraph()
		if _, err := ReadGraph(bytes.NewReader(buf.Bytes()), dict, g2); err != nil {
			t.Fatalf("re-parse failed: %v\noutput:\n%s", err, buf.String())
		}
		if !g.Equal(g2) {
			t.Fatalf("round trip changed graph: %d vs %d triples", g.Len(), g2.Len())
		}
	})
}

// FuzzReaderNext drives the statement-level API directly.
func FuzzReaderNext(f *testing.F) {
	f.Add("<http://a> <http://b> <http://c> .\nbroken")
	f.Fuzz(func(t *testing.T, src string) {
		r := NewReader(strings.NewReader(src))
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}
