package ntriples

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"powl/internal/rdf"
)

// Lineage sidecar codec: derivation lineage serialized as JSON Lines, one
// record per derived triple, every term in N-Triples surface syntax so the
// files are self-describing and greppable. Used for checkpoint and message
// sidecars by the cluster layers; rdf.Lineage is self-contained (premises
// by value), so a reader re-resolves records against its own log.

// lineageJSON is the wire form of one rdf.Lineage.
type lineageJSON struct {
	T     [3]string   `json:"t"`
	Rule  string      `json:"rule"`
	Round uint16      `json:"round"`
	Prem  [][3]string `json:"prem,omitempty"`
}

func termsOf(dict *rdf.Dict, t rdf.Triple) [3]string {
	return [3]string{dict.Term(t.S).String(), dict.Term(t.P).String(), dict.Term(t.O).String()}
}

func tripleOf(dict *rdf.Dict, s [3]string) (rdf.Triple, error) {
	var ids [3]rdf.ID
	for i, v := range s {
		term, err := ParseTerm(v)
		if err != nil {
			return rdf.Triple{}, err
		}
		ids[i] = dict.Intern(term)
	}
	return rdf.Triple{S: ids[0], P: ids[1], O: ids[2]}, nil
}

// WriteLineage writes lins to w as JSON Lines.
func WriteLineage(w io.Writer, dict *rdf.Dict, lins []rdf.Lineage) error {
	enc := json.NewEncoder(w)
	for _, lin := range lins {
		rec := lineageJSON{T: termsOf(dict, lin.T), Rule: lin.Rule, Round: lin.Round}
		for _, p := range lin.Prem {
			rec.Prem = append(rec.Prem, termsOf(dict, p))
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadLineage parses a JSON Lines lineage stream, interning terms through
// dict. Parse failures wrap ErrMalformed-style context with the record
// index.
func ReadLineage(r io.Reader, dict *rdf.Dict) ([]rdf.Lineage, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []rdf.Lineage
	for dec.More() {
		var rec lineageJSON
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("ntriples: lineage record %d: %w", len(out), err)
		}
		t, err := tripleOf(dict, rec.T)
		if err != nil {
			return nil, fmt.Errorf("ntriples: lineage record %d: %w", len(out), err)
		}
		lin := rdf.Lineage{T: t, Rule: rec.Rule, Round: rec.Round}
		for _, p := range rec.Prem {
			pt, perr := tripleOf(dict, p)
			if perr != nil {
				return nil, fmt.Errorf("ntriples: lineage record %d: %w", len(out), perr)
			}
			lin.Prem = append(lin.Prem, pt)
		}
		out = append(out, lin)
	}
	return out, nil
}
