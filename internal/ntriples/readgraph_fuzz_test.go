package ntriples_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"powl/internal/ntriples"
	"powl/internal/rdf"
	"powl/internal/transport"
)

// FuzzReadGraph drives ReadGraph the way a transport's receive path does:
// an arbitrary payload is parsed into a fresh graph, and a parse failure is
// wrapped as transport.ErrMalformed. The properties under test are the ones
// the reconnecting TCP mesh depends on: no panic, termination on any input,
// and the malformed-payload class being fatal — never retried — under
// transport.DefaultClassify (re-dialing cannot repair corrupt bytes).
func FuzzReadGraph(f *testing.F) {
	seeds := []string{
		"<http://x/s> <http://x/p> <http://x/o> .",
		"<http://x/s> <http://x/p> <http://x/o>",      // missing dot
		"<http://x/s> <http://x/p> .",                 // missing object
		"\x00\xff\xfe frame garbage",                  // binary noise
		"<http://x/s> <http://x/p> \"unterminated",    // torn literal
		"<http://x/s>\n<http://x/p>\n<http://x/o> .",  // stray newlines
		strings.Repeat("<a> <b> <c> .\n", 10) + "<d>", // good prefix, torn tail
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload string) {
		done := make(chan struct{})
		var n int
		var err error
		go func() {
			defer close(done)
			dict := rdf.NewDict()
			g := rdf.NewGraph()
			n, err = ntriples.ReadGraph(strings.NewReader(payload), dict, g)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("ReadGraph looped on %d-byte payload", len(payload))
		}
		if err == nil {
			if n < 0 {
				t.Fatalf("accepted payload reported %d triples", n)
			}
			return
		}
		// Wrap as the TCP readLoop does and check the classification:
		// a malformed frame must be fatal, not retried.
		framed := fmt.Errorf("transport/tcp: %w: %v", transport.ErrMalformed, err)
		if transport.DefaultClassify(framed) {
			t.Fatalf("malformed payload classified transient: %v", framed)
		}
	})
}
