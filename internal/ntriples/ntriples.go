// Package ntriples implements a streaming reader and writer for the
// N-Triples serialization of RDF graphs. It is the wire format used by the
// shared-filesystem and TCP transports and by the cmd tools.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"powl/internal/rdf"
)

// Statement is one parsed subject–predicate–object line.
type Statement struct {
	S, P, O rdf.Term
}

// Reader parses N-Triples statements from an input stream.
type Reader struct {
	scan *bufio.Scanner
	line int
}

// NewReader returns a Reader over r. Lines may be up to 1 MiB long.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{scan: sc}
}

// Next returns the next statement, or io.EOF when the input is exhausted.
// Blank lines and #-comments are skipped. Malformed lines yield an error
// naming the line number.
func (r *Reader) Next() (Statement, error) {
	for r.scan.Scan() {
		r.line++
		line := strings.TrimSpace(r.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, err := parseLine(line)
		if err != nil {
			return Statement{}, fmt.Errorf("ntriples: line %d: %w", r.line, err)
		}
		return st, nil
	}
	if err := r.scan.Err(); err != nil {
		return Statement{}, err
	}
	return Statement{}, io.EOF
}

func parseLine(line string) (Statement, error) {
	p := &lineParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Statement{}, fmt.Errorf("subject: %w", err)
	}
	if subj.Kind == rdf.Literal {
		return Statement{}, fmt.Errorf("subject must not be a literal")
	}
	pred, err := p.term()
	if err != nil {
		return Statement{}, fmt.Errorf("predicate: %w", err)
	}
	if pred.Kind != rdf.IRI {
		return Statement{}, fmt.Errorf("predicate must be an IRI")
	}
	obj, err := p.term()
	if err != nil {
		return Statement{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Statement{}, fmt.Errorf("missing terminating '.'")
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return Statement{}, fmt.Errorf("trailing garbage after '.'")
	}
	return Statement{S: subj, P: pred, O: obj}, nil
}

type lineParser struct {
	s string
	i int
}

func (p *lineParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) term() (rdf.Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return rdf.Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return rdf.Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func (p *lineParser) iri() (rdf.Term, error) {
	if p.i >= len(p.s) || p.s[p.i] != '<' {
		return rdf.Term{}, fmt.Errorf("expected '<'")
	}
	p.i++ // consume '<'
	end := strings.IndexByte(p.s[p.i:], '>')
	if end < 0 {
		return rdf.Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.s[p.i : p.i+end]
	p.i += end + 1
	if iri == "" {
		return rdf.Term{}, fmt.Errorf("empty IRI")
	}
	return rdf.Term{Kind: rdf.IRI, Value: iri}, nil
}

func (p *lineParser) blank() (rdf.Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return rdf.Term{}, fmt.Errorf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && !isTermEnd(p.s[p.i]) {
		p.i++
	}
	if p.i == start {
		return rdf.Term{}, fmt.Errorf("empty blank node label")
	}
	return rdf.Term{Kind: rdf.Blank, Value: p.s[start:p.i]}, nil
}

func isTermEnd(c byte) bool { return c == ' ' || c == '\t' }

// literal parses a quoted literal with optional @lang or ^^<datatype>
// suffix, preserving the full lexical form in the Term value.
func (p *lineParser) literal() (rdf.Term, error) {
	start := p.i
	p.i++ // consume opening quote
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '\\':
			p.i += 2
			if p.i > len(p.s) {
				return rdf.Term{}, fmt.Errorf("dangling escape in literal")
			}
			continue
		case '"':
			p.i++
			// Optional suffix.
			if p.i < len(p.s) && p.s[p.i] == '@' {
				for p.i < len(p.s) && !isTermEnd(p.s[p.i]) {
					p.i++
				}
			} else if p.i+1 < len(p.s) && p.s[p.i] == '^' && p.s[p.i+1] == '^' {
				p.i += 2
				if _, err := p.iri(); err != nil {
					return rdf.Term{}, fmt.Errorf("datatype: %w", err)
				}
			}
			return rdf.Term{Kind: rdf.Literal, Value: p.s[start:p.i]}, nil
		default:
			p.i++
		}
	}
	return rdf.Term{}, fmt.Errorf("unterminated literal")
}

// ParseTerm parses one term in N-Triples surface syntax (<iri>, _:label, or
// a quoted literal), the inverse of rdf.Term.String.
func ParseTerm(s string) (rdf.Term, error) {
	p := &lineParser{s: s}
	t, err := p.term()
	if err != nil {
		return rdf.Term{}, err
	}
	p.skipSpace()
	if p.i != len(s) {
		return rdf.Term{}, fmt.Errorf("trailing garbage after term")
	}
	return t, nil
}

// ReadGraph parses all statements from r, interning terms into dict and
// adding the triples to g. It returns the number of triples added (duplicates
// are not double-counted).
func ReadGraph(r io.Reader, dict *rdf.Dict, g *rdf.Graph) (int, error) {
	rd := NewReader(r)
	added := 0
	for {
		st, err := rd.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		t := rdf.Triple{S: dict.Intern(st.S), P: dict.Intern(st.P), O: dict.Intern(st.O)}
		if g.Add(t) {
			added++
		}
	}
}

// Writer serializes triples as N-Triples lines.
type Writer struct {
	w    *bufio.Writer
	dict *rdf.Dict
}

// NewWriter returns a Writer that resolves IDs through dict.
func NewWriter(w io.Writer, dict *rdf.Dict) *Writer {
	return &Writer{w: bufio.NewWriter(w), dict: dict}
}

// Write emits one triple as a terminated N-Triples line.
func (w *Writer) Write(t rdf.Triple) error {
	_, err := w.w.WriteString(w.dict.FormatTriple(t) + " .\n")
	return err
}

// WriteAll emits every triple in ts.
func (w *Writer) WriteAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteGraph serializes g to w in deterministic (sorted) order.
func WriteGraph(w io.Writer, dict *rdf.Dict, g *rdf.Graph) error {
	nw := NewWriter(w, dict)
	if err := nw.WriteAll(g.SortedTriples()); err != nil {
		return err
	}
	return nw.Flush()
}
