package ntriples

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"powl/internal/rdf"
)

func TestReaderParsesBasicForms(t *testing.T) {
	src := `
# a comment
<http://x/s> <http://x/p> <http://x/o> .
_:b0 <http://x/p> "plain" .
<http://x/s> <http://x/p> "typed"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s> <http://x/p> "tagged"@en .
<http://x/s> <http://x/p> "esc\"aped \\ value" .
`
	r := NewReader(strings.NewReader(src))
	var got []Statement
	for {
		st, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, st)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d statements, want 5", len(got))
	}
	if got[0].S != (rdf.Term{Kind: rdf.IRI, Value: "http://x/s"}) {
		t.Errorf("subject = %v", got[0].S)
	}
	if got[1].S != (rdf.Term{Kind: rdf.Blank, Value: "b0"}) {
		t.Errorf("blank subject = %v", got[1].S)
	}
	if got[2].O.Value != `"typed"^^<http://www.w3.org/2001/XMLSchema#integer>` {
		t.Errorf("typed literal = %q", got[2].O.Value)
	}
	if got[3].O.Value != `"tagged"@en` {
		t.Errorf("tagged literal = %q", got[3].O.Value)
	}
	if got[4].O.Value != `"esc\"aped \\ value"` {
		t.Errorf("escaped literal = %q", got[4].O.Value)
	}
}

func TestReaderRejectsMalformedLines(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> <http://x/o>`,         // no dot
		`<http://x/s> <http://x/p> .`,                    // missing object
		`"lit" <http://x/p> <http://x/o> .`,              // literal subject
		`<http://x/s> "lit" <http://x/o> .`,              // literal predicate
		`<http://x/s> _:b <http://x/o> .`,                // blank predicate
		`<http://x/s <http://x/p> <http://x/o> .`,        // unterminated IRI
		`<http://x/s> <http://x/p> "unterminated .`,      // unterminated literal
		`<http://x/s> <http://x/p> <http://x/o> . extra`, // trailing garbage
		`<> <http://x/p> <http://x/o> .`,                 // empty IRI
		`_: <http://x/p> <http://x/o> .`,                 // empty blank label
	}
	for _, line := range bad {
		r := NewReader(strings.NewReader(line))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("line %q parsed without error", line)
		}
	}
}

func TestReaderSkipsBlankAndCommentLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n\n# only comments\n\n"))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadGraphDeduplicates(t *testing.T) {
	src := `<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/p> <http://x/o> .`
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	n, err := ReadGraph(strings.NewReader(src), dict, g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || g.Len() != 1 {
		t.Fatalf("added %d triples, graph has %d; want 1", n, g.Len())
	}
}

func TestReadGraphReportsLineNumber(t *testing.T) {
	src := "<http://x/s> <http://x/p> <http://x/o> .\nbroken\n"
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	_, err := ReadGraph(strings.NewReader(src), dict, g)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name line 2", err)
	}
}

// TestRoundTrip checks parse∘serialize = identity on a generated graph.
func TestRoundTrip(t *testing.T) {
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	s := dict.InternIRI("http://x/s")
	p := dict.InternIRI("http://x/p")
	for i, o := range []rdf.ID{
		dict.InternIRI("http://x/o"),
		dict.InternLiteral(`"v"`),
		dict.InternLiteral(`"5"^^<http://www.w3.org/2001/XMLSchema#integer>`),
		dict.InternBlank("node0"),
	} {
		g.Add(rdf.Triple{S: s, P: rdf.ID(int(p) + i%1), O: o})
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, dict, g); err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if _, err := ReadGraph(bytes.NewReader(buf.Bytes()), dict, g2); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatalf("round trip changed the graph:\n%s", buf.String())
	}
}

// TestRoundTripProperty: serialize-then-parse preserves arbitrary IRI-only
// triples (IRI charset restricted to avoid '>' which N-Triples cannot carry
// unescaped).
func TestRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		b.WriteString("http://x/")
		for _, r := range s {
			if r > ' ' && r != '>' && r != '<' && r < 127 {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(subs, preds, objs []string) bool {
		dict := rdf.NewDict()
		g := rdf.NewGraph()
		n := len(subs)
		if len(preds) < n {
			n = len(preds)
		}
		if len(objs) < n {
			n = len(objs)
		}
		for i := 0; i < n; i++ {
			g.Add(rdf.Triple{
				S: dict.InternIRI(sanitize(subs[i])),
				P: dict.InternIRI(sanitize(preds[i])),
				O: dict.InternIRI(sanitize(objs[i])),
			})
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, dict, g); err != nil {
			return false
		}
		g2 := rdf.NewGraph()
		if _, err := ReadGraph(bytes.NewReader(buf.Bytes()), dict, g2); err != nil {
			return false
		}
		return g.Equal(g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterWriteAll(t *testing.T) {
	dict := rdf.NewDict()
	a := dict.InternIRI("http://x/a")
	var buf bytes.Buffer
	w := NewWriter(&buf, dict)
	if err := w.WriteAll([]rdf.Triple{{S: a, P: a, O: a}, {S: a, P: a, O: a}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}
