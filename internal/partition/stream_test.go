package partition

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"powl/internal/ntriples"
	"powl/internal/rdf"
)

const streamInput = `
<http://x/grp0/a> <http://x/p> <http://x/grp0/b> .
<http://x/grp0/b> <http://x/p> <http://x/grp0/c> .
<http://x/grp1/a> <http://x/p> <http://x/grp1/b> .
<http://x/grp1/b> <http://x/p> <http://x/grp0/a> .
<http://x/grp0/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Thing> .
<http://x/Thing> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/Top> .
`

func runStream(t *testing.T, k int, a StreamAssigner) (*StreamStats, []*bytes.Buffer) {
	t.Helper()
	bufs := make([]*bytes.Buffer, k)
	ws := make([]io.Writer, k)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
		ws[i] = bufs[i]
	}
	stats, err := StreamPartition(strings.NewReader(streamInput), k, a, ws)
	if err != nil {
		t.Fatal(err)
	}
	return stats, bufs
}

func TestStreamHashCoversEverything(t *testing.T) {
	stats, bufs := runStream(t, 3, HashAssigner{K: 3})
	if stats.Total != 6 {
		t.Fatalf("total = %d", stats.Total)
	}
	if stats.SchemaBroadcast != 1 {
		t.Fatalf("schema broadcast = %d, want 1 (the subClassOf triple)", stats.SchemaBroadcast)
	}
	// Every instance triple must be parseable from some sink; the schema
	// triple from every sink.
	dict := rdf.NewDict()
	union := rdf.NewGraph()
	for _, buf := range bufs {
		if _, err := ntriples.ReadGraph(bytes.NewReader(buf.Bytes()), dict, union); err != nil {
			t.Fatal(err)
		}
	}
	if union.Len() != 6 {
		t.Fatalf("union of sinks has %d triples, want 6", union.Len())
	}
	for _, buf := range bufs {
		if !strings.Contains(buf.String(), "subClassOf") {
			t.Error("schema triple missing from a sink")
		}
	}
}

func TestStreamDomainKeepsGroupsTogether(t *testing.T) {
	key := func(term rdf.Term) string {
		i := strings.Index(term.Value, "grp")
		if i < 0 {
			return ""
		}
		return term.Value[i : i+4]
	}
	a := NewDomainAssigner(2, key)
	stats, bufs := runStream(t, 2, a)
	// grp0 and grp1 resources land on different partitions (online LPT
	// gives the first key partition 0, the second partition 1), and the one
	// cross-group edge is the only replicated triple.
	if stats.Replicated != 1 {
		t.Fatalf("replicated = %d, want 1", stats.Replicated)
	}
	// The two groups' internal edges must live on different sinks.
	g0Edge := "<http://x/grp0/a> <http://x/p> <http://x/grp0/b>"
	g1Edge := "<http://x/grp1/a> <http://x/p> <http://x/grp1/b>"
	var g0Sink, g1Sink int
	for i, buf := range bufs {
		if strings.Contains(buf.String(), g0Edge) {
			g0Sink = i
		}
		if strings.Contains(buf.String(), g1Edge) {
			g1Sink = i
		}
	}
	if g0Sink == g1Sink {
		t.Errorf("both groups' internal edges landed on sink %d", g0Sink)
	}
}

func TestStreamTypeTriplesFollowSubject(t *testing.T) {
	a := HashAssigner{K: 4}
	_, bufs := runStream(t, 4, a)
	// The rdf:type triple must appear exactly once, on the subject's owner.
	count := 0
	for _, buf := range bufs {
		count += strings.Count(buf.String(), "22-rdf-syntax-ns#type")
	}
	if count != 1 {
		t.Fatalf("type triple appears %d times, want 1", count)
	}
}

func TestStreamValidatesSinks(t *testing.T) {
	if _, err := StreamPartition(strings.NewReader(""), 2, HashAssigner{K: 2}, nil); err == nil {
		t.Fatal("mismatched sink count accepted")
	}
}

func TestStreamPropagatesParseErrors(t *testing.T) {
	var b bytes.Buffer
	_, err := StreamPartition(strings.NewReader("garbage\n"), 1, HashAssigner{K: 1}, []io.Writer{&b})
	if err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestDomainAssignerBalancesKeys(t *testing.T) {
	a := NewDomainAssigner(2, func(term rdf.Term) string { return term.Value })
	counts := make([]int, 2)
	for _, key := range []string{"k1", "k2", "k3", "k4"} {
		counts[a.Assign(rdf.Term{Kind: rdf.IRI, Value: key})]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("online LPT distribution = %v", counts)
	}
	// Repeat assignments are stable.
	first := a.Assign(rdf.Term{Kind: rdf.IRI, Value: "k1"})
	if again := a.Assign(rdf.Term{Kind: rdf.IRI, Value: "k1"}); again != first {
		t.Fatal("assignment not stable")
	}
}
