package partition

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powl/internal/rdf"
)

// clusteredInput builds nGroups locality groups of size groupSize with dense
// intra-group edges and nCross random cross-group edges.
func clusteredInput(nGroups, groupSize, nCross int, seed int64) *Input {
	rng := rand.New(rand.NewSource(seed))
	dict := rdf.NewDict()
	p := dict.InternIRI("http://t/p")
	in := &Input{Dict: dict}
	seen := map[rdf.Triple]bool{}
	add := func(tr rdf.Triple) {
		if !seen[tr] {
			seen[tr] = true
			in.Instance = append(in.Instance, tr)
		}
	}
	groups := make([][]rdf.ID, nGroups)
	for g := 0; g < nGroups; g++ {
		groups[g] = make([]rdf.ID, groupSize)
		for i := range groups[g] {
			groups[g][i] = dict.InternIRI(fmt.Sprintf("http://t/grp%d/n%d", g, i))
		}
		for i := 1; i < groupSize; i++ {
			add(rdf.Triple{S: groups[g][i-1], P: p, O: groups[g][i]})
			add(rdf.Triple{S: groups[g][0], P: p, O: groups[g][i]})
		}
	}
	for i := 0; i < nCross; i++ {
		a := groups[rng.Intn(nGroups)][rng.Intn(groupSize)]
		b := groups[rng.Intn(nGroups)][rng.Intn(groupSize)]
		add(rdf.Triple{S: a, P: p, O: b})
	}
	return in
}

func groupKey(t rdf.Term) string {
	i := strings.Index(t.Value, "grp")
	if i < 0 {
		return ""
	}
	j := strings.IndexByte(t.Value[i:], '/')
	if j < 0 {
		return ""
	}
	return t.Value[i : i+j]
}

var policies = []Policy{
	GraphPolicy{},
	HashPolicy{},
	DomainPolicy{KeyFunc: groupKey},
}

// TestOwnershipInvariants: every node owned exactly once, owners in range.
func TestOwnershipInvariants(t *testing.T) {
	in := clusteredInput(4, 16, 20, 1)
	for _, pol := range policies {
		for _, k := range []int{1, 2, 4, 8} {
			owner, err := pol.Owners(in, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", pol.Name(), k, err)
			}
			nodes := in.Nodes()
			if len(owner) != len(nodes) {
				t.Fatalf("%s k=%d: %d owners for %d nodes", pol.Name(), k, len(owner), len(nodes))
			}
			for _, n := range nodes {
				p, ok := owner[n]
				if !ok {
					t.Fatalf("%s k=%d: node %d unowned", pol.Name(), k, n)
				}
				if p < 0 || p >= k {
					t.Fatalf("%s k=%d: owner %d out of range", pol.Name(), k, p)
				}
			}
		}
	}
}

// TestTripleAssignment: each triple appears on the owner of its subject and
// the owner of its object, and nowhere else (≤2 partitions).
func TestTripleAssignment(t *testing.T) {
	in := clusteredInput(4, 12, 15, 2)
	for _, pol := range policies {
		res, err := Partition(in, 4, pol)
		if err != nil {
			t.Fatal(err)
		}
		locations := map[rdf.Triple]map[int]bool{}
		for p, part := range res.Parts {
			for _, tr := range part {
				if locations[tr] == nil {
					locations[tr] = map[int]bool{}
				}
				if locations[tr][p] {
					t.Fatalf("%s: triple duplicated within partition %d", pol.Name(), p)
				}
				locations[tr][p] = true
			}
		}
		for _, tr := range in.Instance {
			locs := locations[tr]
			if locs == nil {
				t.Fatalf("%s: triple lost", pol.Name())
			}
			if len(locs) > 2 {
				t.Fatalf("%s: triple on %d partitions", pol.Name(), len(locs))
			}
			if !locs[res.Owner[tr.S]] {
				t.Errorf("%s: triple missing from subject owner", pol.Name())
			}
			if !locs[res.Owner[tr.O]] {
				t.Errorf("%s: triple missing from object owner", pol.Name())
			}
		}
	}
}

// TestSingleJoinCoLocation is the paper's correctness property (§III-A): any
// two triples sharing a resource as subject/object are both present on that
// resource's owner.
func TestSingleJoinCoLocation(t *testing.T) {
	in := clusteredInput(3, 10, 25, 3)
	for _, pol := range policies {
		res, err := Partition(in, 3, pol)
		if err != nil {
			t.Fatal(err)
		}
		onPart := make([]map[rdf.Triple]bool, res.K)
		for p, part := range res.Parts {
			onPart[p] = map[rdf.Triple]bool{}
			for _, tr := range part {
				onPart[p][tr] = true
			}
		}
		for i, t1 := range in.Instance {
			for j, t2 := range in.Instance {
				if i >= j {
					continue
				}
				for _, shared := range sharedResources(t1, t2) {
					p := res.Owner[shared]
					if !onPart[p][t1] || !onPart[p][t2] {
						t.Fatalf("%s: triples sharing resource %d not co-located on its owner %d",
							pol.Name(), shared, p)
					}
				}
			}
		}
	}
}

func sharedResources(a, b rdf.Triple) []rdf.ID {
	var out []rdf.ID
	for _, x := range [2]rdf.ID{a.S, a.O} {
		if x == b.S || x == b.O {
			out = append(out, x)
		}
	}
	return out
}

// TestGraphPolicyBeatsHashOnClusteredData reproduces the qualitative Table I
// result: the graph policy's replication is far below hash's.
func TestGraphPolicyBeatsHashOnClusteredData(t *testing.T) {
	in := clusteredInput(8, 24, 30, 4)
	irOf := func(pol Policy) float64 {
		res, err := Partition(in, 4, pol)
		if err != nil {
			t.Fatal(err)
		}
		return ComputeMetrics(in, res).IR
	}
	graphIR := irOf(GraphPolicy{})
	hashIR := irOf(HashPolicy{})
	domainIR := irOf(DomainPolicy{KeyFunc: groupKey})
	t.Logf("IR: graph=%.3f domain=%.3f hash=%.3f", graphIR, domainIR, hashIR)
	if graphIR >= hashIR/2 {
		t.Errorf("graph IR %.3f not clearly below hash IR %.3f", graphIR, hashIR)
	}
	if domainIR >= hashIR/2 {
		t.Errorf("domain IR %.3f not clearly below hash IR %.3f", domainIR, hashIR)
	}
}

// TestDomainPolicyKeepsGroupsTogether: all nodes of one locality group land
// on one partition.
func TestDomainPolicyKeepsGroupsTogether(t *testing.T) {
	in := clusteredInput(6, 10, 5, 5)
	owner, err := (DomainPolicy{KeyFunc: groupKey}).Owners(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	perGroup := map[string]map[int]bool{}
	for _, n := range in.Nodes() {
		key := groupKey(in.Dict.Term(n))
		if perGroup[key] == nil {
			perGroup[key] = map[int]bool{}
		}
		perGroup[key][owner[n]] = true
	}
	for key, parts := range perGroup {
		if len(parts) != 1 {
			t.Errorf("group %s split across %d partitions", key, len(parts))
		}
	}
}

func TestDomainPolicyRequiresKeyFunc(t *testing.T) {
	in := clusteredInput(2, 4, 0, 6)
	if _, err := (DomainPolicy{}).Owners(in, 2); err == nil {
		t.Fatal("nil KeyFunc accepted")
	}
}

func TestPartitionValidatesK(t *testing.T) {
	in := clusteredInput(2, 4, 0, 7)
	if _, err := Partition(in, 0, HashPolicy{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestSkipNodesAreNeverOwned(t *testing.T) {
	in := clusteredInput(2, 8, 4, 8)
	// Declare the hub node of group 0 a schema element.
	hub := in.Instance[0].S
	in.Skip = map[rdf.ID]struct{}{hub: {}}
	for _, pol := range policies {
		owner, err := pol.Owners(in, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := owner[hub]; ok {
			t.Errorf("%s assigned an owner to a schema element", pol.Name())
		}
		res, err := Partition(in, 2, pol)
		if err != nil {
			t.Fatal(err)
		}
		// Triples with the skipped subject still land somewhere (object
		// owner).
		count := 0
		for _, part := range res.Parts {
			for _, tr := range part {
				if tr.S == hub || tr.O == hub {
					count++
				}
			}
		}
		if count == 0 {
			t.Errorf("%s: triples touching the schema element vanished", pol.Name())
		}
	}
}

func TestComputeMetrics(t *testing.T) {
	dict := rdf.NewDict()
	p := dict.InternIRI("http://t/p")
	a, b, c, d := dict.InternIRI("http://t/a"), dict.InternIRI("http://t/b"),
		dict.InternIRI("http://t/c"), dict.InternIRI("http://t/d")
	in := &Input{Dict: dict, Instance: []rdf.Triple{
		{S: a, P: p, O: b},
		{S: c, P: p, O: d},
		{S: b, P: p, O: c}, // crosses the partition boundary below
	}}
	res := &Result{
		K:     2,
		Owner: map[rdf.ID]int{a: 0, b: 0, c: 1, d: 1},
		Parts: [][]rdf.Triple{
			{{S: a, P: p, O: b}, {S: b, P: p, O: c}},
			{{S: c, P: p, O: d}, {S: b, P: p, O: c}},
		},
	}
	m := ComputeMetrics(in, res)
	// Partition 0 holds {a,b,c}, partition 1 {c,d,b}: 6 total for 4 nodes.
	if m.NodesPerPart[0] != 3 || m.NodesPerPart[1] != 3 {
		t.Fatalf("NodesPerPart = %v", m.NodesPerPart)
	}
	if ir := m.IR; ir < 0.49 || ir > 0.51 {
		t.Fatalf("IR = %f, want 0.5", ir)
	}
	if m.Bal != 0 {
		t.Fatalf("Bal = %f, want 0", m.Bal)
	}
}

func TestOutputReplication(t *testing.T) {
	if or := OutputReplication([]int{60, 50}, 100); or < 0.099 || or > 0.101 {
		t.Fatalf("OR = %f, want 0.1", or)
	}
	if OutputReplication(nil, 0) != 0 {
		t.Fatal("empty OR must be 0")
	}
}

// TestPartitionProperty: for random inputs, no triple is ever lost and the
// per-partition triple sets are consistent with the ownership table.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%6
		in := clusteredInput(3, 6, 10, seed)
		res, err := Partition(in, k, HashPolicy{})
		if err != nil {
			return false
		}
		found := map[rdf.Triple]bool{}
		for _, part := range res.Parts {
			for _, tr := range part {
				found[tr] = true
			}
		}
		for _, tr := range in.Instance {
			if !found[tr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
