// Package partition implements the paper's data-partitioning approach
// (§III-A, Algorithm 1). The instance triples are viewed as a graph whose
// vertices are the resources; an ownership policy assigns every resource to
// one of k partitions, and each triple is then placed on the owner of its
// subject and the owner of its object (so a base triple lives on at most two
// partitions). Because all compiled OWL-Horst rules are single-join rules,
// any two triples that can join share a resource, and both are present on
// that resource's owner — which is the correctness argument for running the
// full rule set independently per partition.
//
// Three ownership policies are provided, matching the paper: graph
// partitioning (via package gpart, the METIS stand-in), hash partitioning,
// and domain-specific partitioning driven by a locality key.
package partition

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"powl/internal/gpart"
	"powl/internal/rdf"
)

// Input is the data handed to a policy: the instance triples (schema triples
// already removed per Algorithm 1 step 1), the set of schema elements that
// still occur inside instance triples (class IRIs in rdf:type objects and
// the like — replicated rather than owned, per Algorithm 1), and the
// dictionary for policies that inspect term text (hash, domain).
type Input struct {
	Dict     *rdf.Dict
	Instance []rdf.Triple
	// Skip contains the schema elements: they are never assigned an owner
	// and never become vertices of the partitioning graph. Without this,
	// every class IRI would be a graph-wide hub vertex and the edge cut of
	// any partitioning would be meaningless.
	Skip map[rdf.ID]struct{}
}

func (in *Input) skip(id rdf.ID) bool {
	_, ok := in.Skip[id]
	return ok
}

// Nodes returns the distinct partitionable resources (subjects and objects
// of the instance triples, minus schema elements), sorted by ID.
func (in *Input) Nodes() []rdf.ID {
	set := map[rdf.ID]struct{}{}
	for _, t := range in.Instance {
		if !in.skip(t.S) {
			set[t.S] = struct{}{}
		}
		if !in.skip(t.O) {
			set[t.O] = struct{}{}
		}
	}
	out := make([]rdf.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Policy produces an ownership list: a partition in [0,k) for every node of
// the instance graph.
type Policy interface {
	Name() string
	Owners(in *Input, k int) (map[rdf.ID]int, error)
}

// Result is a complete data partitioning.
type Result struct {
	K     int
	Owner map[rdf.ID]int
	// Parts[i] holds the base triples assigned to partition i; a triple
	// whose subject and object have different owners appears in both.
	Parts [][]rdf.Triple
	// Elapsed is the wall-clock time of ownership computation plus triple
	// assignment (the paper's "Part. Time" column of Table I).
	Elapsed time.Duration
}

// Partition runs Algorithm 1 with the given policy.
//
//powl:ignore wallclock Elapsed reproduces the paper's Part. Time measurement (Table I) — a reported duration, not an ordering input.
func Partition(in *Input, k int, pol Policy) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be ≥ 1, got %d", k)
	}
	start := time.Now()
	owner, err := pol.Owners(in, k)
	if err != nil {
		return nil, fmt.Errorf("partition: policy %s: %w", pol.Name(), err)
	}
	parts := make([][]rdf.Triple, k)
	for _, t := range in.Instance {
		po, sOwned := owner[t.S]
		if !sOwned && !in.skip(t.S) {
			return nil, fmt.Errorf("partition: policy %s left node %d unowned", pol.Name(), t.S)
		}
		qo, oOwned := owner[t.O]
		if !oOwned && !in.skip(t.O) {
			return nil, fmt.Errorf("partition: policy %s left node %d unowned", pol.Name(), t.O)
		}
		switch {
		case sOwned && oOwned:
			parts[po] = append(parts[po], t)
			if qo != po {
				parts[qo] = append(parts[qo], t)
			}
		case sOwned:
			parts[po] = append(parts[po], t)
		case oOwned:
			parts[qo] = append(parts[qo], t)
		default:
			// Both endpoints are schema elements; such triples are part of
			// the replicated schema, but tolerate them here by placing the
			// triple everywhere.
			for i := range parts {
				parts[i] = append(parts[i], t)
			}
		}
	}
	return &Result{K: k, Owner: owner, Parts: parts, Elapsed: time.Since(start)}, nil
}

// Metrics are the partition-quality measures of §III (Table I).
type Metrics struct {
	// Bal is the standard deviation of the per-partition node counts.
	Bal float64
	// IR is the input replication: Σ(nodes per partition)/|nodes| − 1,
	// i.e. the excess fraction of replicated nodes (0 = no replication).
	IR float64
	// NodesPerPart are the underlying counts.
	NodesPerPart []int
	// TriplesPerPart are the base-triple counts per partition.
	TriplesPerPart []int
}

// ComputeMetrics derives Bal and IR for a partitioning result.
func ComputeMetrics(in *Input, res *Result) Metrics {
	m := Metrics{
		NodesPerPart:   make([]int, res.K),
		TriplesPerPart: make([]int, res.K),
	}
	totalNodes := len(in.Nodes())
	sum := 0
	for i, part := range res.Parts {
		nodes := map[rdf.ID]struct{}{}
		for _, t := range part {
			if !in.skip(t.S) {
				nodes[t.S] = struct{}{}
			}
			if !in.skip(t.O) {
				nodes[t.O] = struct{}{}
			}
		}
		m.NodesPerPart[i] = len(nodes)
		m.TriplesPerPart[i] = len(part)
		sum += len(nodes)
	}
	m.Bal = stddev(m.NodesPerPart)
	if totalNodes > 0 {
		m.IR = float64(sum)/float64(totalNodes) - 1
	}
	return m
}

// OutputReplication computes OR = Σ(result tuples per partition)/|union| − 1
// from per-partition result sizes and the union size; it is only known after
// the parallel run (§III, "Efficiency").
func OutputReplication(perPart []int, unionSize int) float64 {
	if unionSize == 0 {
		return 0
	}
	sum := 0
	for _, n := range perPart {
		sum += n
	}
	return float64(sum)/float64(unionSize) - 1
}

func stddev(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := float64(x) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum / float64(len(xs)))
}

// GraphPolicy is the paper's graph-partitioning policy: build the resource
// graph (one vertex per resource, one edge per triple) and hand it to the
// multilevel partitioner, which balances vertex counts and minimizes edge
// cut — and therefore replication and communication.
type GraphPolicy struct {
	Opts gpart.Options
	// CostWeights optionally refines the balance objective with an a-priori
	// per-node reasoning-cost estimate (the paper suggests exactly this kind
	// of weighting when knowledge about the data distribution is available,
	// §III-B). Nodes absent from the map keep the structural default
	// (2 + degree).
	CostWeights map[rdf.ID]int64
}

// Name implements Policy.
func (GraphPolicy) Name() string { return "graph" }

// Owners implements Policy.
func (p GraphPolicy) Owners(in *Input, k int) (map[rdf.ID]int, error) {
	nodes := in.Nodes()
	if len(nodes) == 0 {
		return map[rdf.ID]int{}, nil
	}
	if k > len(nodes) {
		k = len(nodes)
	}
	idx := make(map[rdf.ID]int, len(nodes))
	for i, id := range nodes {
		idx[id] = i
	}
	b := gpart.NewBuilder(len(nodes))
	// Vertex weight models per-resource reasoning cost: a constant for the
	// per-resource query plus the resource's triple count (every adjacent
	// triple is enumerated by the engines). Balancing this weight rather
	// than bare node counts keeps the slowest partition close to the mean.
	weights := make([]int64, len(nodes))
	for i := range weights {
		weights[i] = 2
	}
	for _, t := range in.Instance {
		si, sok := idx[t.S]
		oi, ook := idx[t.O]
		if sok {
			weights[si]++
		}
		if ook {
			weights[oi]++
		}
		if sok && ook {
			b.AddEdge(si, oi, 1)
		}
	}
	for i, w := range weights {
		b.SetVWeight(i, w)
	}
	for id, w := range p.CostWeights {
		if i, ok := idx[id]; ok {
			b.SetVWeight(i, w)
		}
	}
	part, err := gpart.Partition(b.Build(), k, p.Opts)
	if err != nil {
		return nil, err
	}
	owner := make(map[rdf.ID]int, len(nodes))
	for i, id := range nodes {
		owner[id] = part[i]
	}
	return owner, nil
}

// HashPolicy assigns each resource by hashing its term text — streamable and
// cheap, but blind to locality, so the edge cut (and hence replication) is
// high. This is the paper's naive baseline.
type HashPolicy struct{}

// Name implements Policy.
func (HashPolicy) Name() string { return "hash" }

// Owners implements Policy.
func (HashPolicy) Owners(in *Input, k int) (map[rdf.ID]int, error) {
	owner := map[rdf.ID]int{}
	for _, t := range in.Instance {
		for _, id := range [2]rdf.ID{t.S, t.O} {
			if in.skip(id) {
				continue
			}
			if _, ok := owner[id]; !ok {
				owner[id] = hashTerm(in.Dict.Term(id)) % k
			}
		}
	}
	return owner, nil
}

func hashTerm(t rdf.Term) int {
	h := fnv.New32a()
	h.Write([]byte{byte(t.Kind)})
	h.Write([]byte(t.Value))
	return int(h.Sum32() & 0x7fffffff)
}

// DomainPolicy is the paper's domain-specific policy: a dataset-supplied
// KeyFunc maps each resource to a locality key (for LUBM, the university an
// entity belongs to), and whole key groups are placed on partitions with a
// longest-processing-time bin packing so that partitions stay balanced. Like
// hash partitioning it is streamable (one counting pass plus one assignment
// pass), but it preserves the dataset's locality.
type DomainPolicy struct {
	// KeyFunc extracts the locality key of a term; return "" for terms
	// without one (they fall back to hashing).
	KeyFunc func(rdf.Term) string
}

// Name implements Policy.
func (DomainPolicy) Name() string { return "domain" }

// Owners implements Policy.
func (p DomainPolicy) Owners(in *Input, k int) (map[rdf.ID]int, error) {
	if p.KeyFunc == nil {
		return nil, fmt.Errorf("domain policy requires a KeyFunc")
	}
	nodes := in.Nodes()
	keyOf := make(map[rdf.ID]string, len(nodes))
	count := map[string]int{}
	for _, id := range nodes {
		key := p.KeyFunc(in.Dict.Term(id))
		keyOf[id] = key
		count[key]++
	}
	// LPT bin packing of key groups onto partitions.
	keys := make([]string, 0, len(count))
	for key := range count {
		if key != "" {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if count[keys[i]] != count[keys[j]] {
			return count[keys[i]] > count[keys[j]]
		}
		return keys[i] < keys[j]
	})
	loads := make([]int, k)
	keyPart := make(map[string]int, len(keys))
	for _, key := range keys {
		best := 0
		for i := 1; i < k; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		keyPart[key] = best
		loads[best] += count[key]
	}
	owner := make(map[rdf.ID]int, len(nodes))
	for _, id := range nodes {
		if key := keyOf[id]; key != "" {
			owner[id] = keyPart[key]
		} else {
			owner[id] = hashTerm(in.Dict.Term(id)) % k
		}
	}
	return owner, nil
}
