package partition

import (
	"fmt"
	"io"

	"powl/internal/ntriples"
	"powl/internal/rdf"
	"powl/internal/vocab"
)

// The paper points out that the hash and domain-specific policies "can be
// implemented as a streaming algorithm, i.e., the whole data graph need not
// be loaded into the memory for the partitioning" (§III-A). This file is
// that implementation: triples flow from an N-Triples reader straight into
// per-partition sinks; only the assigner's per-key state is held in memory
// (none at all for hashing).

// StreamAssigner maps a resource to its owning partition on the fly.
type StreamAssigner interface {
	Name() string
	// Assign returns the partition in [0, k) owning the resource.
	Assign(term rdf.Term) int
}

// HashAssigner is the stateless streaming form of HashPolicy.
type HashAssigner struct {
	K int
}

// Name implements StreamAssigner.
func (HashAssigner) Name() string { return "hash" }

// Assign implements StreamAssigner.
func (h HashAssigner) Assign(term rdf.Term) int { return hashTerm(term) % h.K }

// DomainAssigner is the streaming form of DomainPolicy: the first time a
// locality key appears it is bound to the currently lightest partition
// (online LPT); keyless terms fall back to hashing. Memory is O(distinct
// keys), not O(graph).
type DomainAssigner struct {
	k       int
	keyFunc func(rdf.Term) string
	keyPart map[string]int
	loads   []int
}

// NewDomainAssigner returns a streaming domain assigner over k partitions.
func NewDomainAssigner(k int, keyFunc func(rdf.Term) string) *DomainAssigner {
	return &DomainAssigner{k: k, keyFunc: keyFunc, keyPart: map[string]int{}, loads: make([]int, k)}
}

// Name implements StreamAssigner.
func (*DomainAssigner) Name() string { return "domain" }

// Assign implements StreamAssigner.
func (d *DomainAssigner) Assign(term rdf.Term) int {
	key := d.keyFunc(term)
	if key == "" {
		return hashTerm(term) % d.k
	}
	if p, ok := d.keyPart[key]; ok {
		d.loads[p]++
		return p
	}
	best := 0
	for i := 1; i < d.k; i++ {
		if d.loads[i] < d.loads[best] {
			best = i
		}
	}
	d.keyPart[key] = best
	d.loads[best]++
	return best
}

// StreamStats summarizes one streaming run.
type StreamStats struct {
	// Total is the number of input triples.
	Total int
	// PerPartition counts the triples written to each sink.
	PerPartition []int
	// Replicated counts triples written to two sinks (subject and object
	// owners differ).
	Replicated int
	// SchemaBroadcast counts schema triples copied to every sink.
	SchemaBroadcast int
}

// StreamPartition reads N-Triples from r and routes every triple to the
// sink(s) of its subject's and object's owners, in one pass and without
// materializing the graph. Schema triples (predicate in the RDF/RDFS/OWL
// namespaces) are broadcast to every partition, mirroring Algorithm 1's
// replicated schema; rdf:type triples are owned by their subject (class
// IRIs are schema elements and never own data).
func StreamPartition(r io.Reader, k int, a StreamAssigner, sinks []io.Writer) (*StreamStats, error) {
	if k < 1 || len(sinks) != k {
		return nil, fmt.Errorf("partition: need k=%d sinks, got %d", k, len(sinks))
	}
	stats := &StreamStats{PerPartition: make([]int, k)}
	rd := ntriples.NewReader(r)
	for {
		st, err := rd.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		stats.Total++
		line := st.S.String() + " " + st.P.String() + " " + st.O.String() + " .\n"

		if st.P.Kind == rdf.IRI && vocab.IsSchemaIRI(st.P.Value) && st.P.Value != vocab.RDFType {
			stats.SchemaBroadcast++
			for i := range sinks {
				if _, err := io.WriteString(sinks[i], line); err != nil {
					return stats, err
				}
			}
			continue
		}

		po := a.Assign(st.S)
		qo := po
		if !(st.P.Kind == rdf.IRI && st.P.Value == vocab.RDFType) {
			qo = a.Assign(st.O)
		}
		if _, err := io.WriteString(sinks[po], line); err != nil {
			return stats, err
		}
		stats.PerPartition[po]++
		if qo != po {
			if _, err := io.WriteString(sinks[qo], line); err != nil {
				return stats, err
			}
			stats.PerPartition[qo]++
			stats.Replicated++
		}
	}
}
