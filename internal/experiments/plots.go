package experiments

import (
	"io"

	"powl/internal/asciiplot"
	"powl/internal/core"
)

// The Plot* helpers render each figure's series as ASCII charts, echoing the
// paper's visual presentation; cmd/experiments shows them with -plot.

// PlotFig1 draws the per-dataset speedup curves plus the linear reference.
func PlotFig1(w io.Writer, rows []Fig1Row) {
	byDS := map[string]*asciiplot.Series{}
	var order []string
	var ks []float64
	for _, r := range rows {
		s, ok := byDS[r.Dataset]
		if !ok {
			s = &asciiplot.Series{Name: r.Dataset}
			byDS[r.Dataset] = s
			order = append(order, r.Dataset)
		}
		s.X = append(s.X, float64(r.K))
		s.Y = append(s.Y, r.Speedup)
		if len(order) == 1 {
			ks = append(ks, float64(r.K))
		}
	}
	series := []asciiplot.Series{{Name: "linear", X: ks, Y: ks}}
	for _, name := range order {
		series = append(series, *byDS[name])
	}
	fprintf(w, "%s", asciiplot.Line("Figure 1: speedup vs processors (data partitioning)", series, 48, 14))
}

// PlotFig2 draws the per-k overhead composition as bars of the io+sync
// share.
func PlotFig2(w io.Writer, rows []Fig2Row) {
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = "k=" + itoa(r.K)
		total := r.Reason + r.IO + r.Sync + r.Aggregate
		if total > 0 {
			values[i] = 100 * float64(r.IO+r.Sync) / float64(total)
		}
	}
	fprintf(w, "%s", asciiplot.Bars("Figure 2: io+sync share of total time (%)", labels, values, 40))
}

// PlotFig3 draws measured vs theoretical-max speedup.
func PlotFig3(w io.Writer, rows []Fig3Row) {
	var ks, measured, slowest, theo []float64
	for _, r := range rows {
		ks = append(ks, float64(r.K))
		measured = append(measured, r.Measured)
		slowest = append(slowest, r.SlowestPartition)
		theo = append(theo, r.TheoreticalMax)
	}
	fprintf(w, "%s", asciiplot.Line("Figure 3: measured vs theoretical max (LUBM)", []asciiplot.Series{
		{Name: "measured", X: ks, Y: measured},
		{Name: "slowest-partition", X: ks, Y: slowest},
		{Name: "theoretical-max", X: ks, Y: theo},
	}, 48, 14))
}

// PlotFig4 draws the measured serial times against the cubic model.
func PlotFig4(w io.Writer, res *Fig4Result) {
	var xs, measured, model []float64
	for _, r := range res.Rows {
		xs = append(xs, float64(r.Triples)/1000)
		measured = append(measured, r.Measured.Seconds())
		model = append(model, r.Model.Seconds())
	}
	fprintf(w, "%s", asciiplot.Line("Figure 4: serial reasoning time vs kilotriples", []asciiplot.Series{
		{Name: "measured (s)", X: xs, Y: measured},
		{Name: "cubic model (s)", X: xs, Y: model},
	}, 48, 12))
}

// PlotFig5 draws the per-policy speedup curves.
func PlotFig5(w io.Writer, rows []Fig5Row) {
	byPol := map[core.PolicyKind]*asciiplot.Series{}
	var order []core.PolicyKind
	for _, r := range rows {
		s, ok := byPol[r.Policy]
		if !ok {
			s = &asciiplot.Series{Name: string(r.Policy)}
			byPol[r.Policy] = s
			order = append(order, r.Policy)
		}
		s.X = append(s.X, float64(r.K))
		s.Y = append(s.Y, r.Speedup)
	}
	var series []asciiplot.Series
	for _, p := range order {
		series = append(series, *byPol[p])
	}
	fprintf(w, "%s", asciiplot.Line("Figure 5: speedup per data-partitioning policy (LUBM)", series, 48, 12))
}

// PlotFig6 draws the rule-partitioning speedups per dataset.
func PlotFig6(w io.Writer, rows []Fig6Row) {
	byDS := map[string]*asciiplot.Series{}
	var order []string
	for _, r := range rows {
		s, ok := byDS[r.Dataset]
		if !ok {
			s = &asciiplot.Series{Name: r.Dataset}
			byDS[r.Dataset] = s
			order = append(order, r.Dataset)
		}
		s.X = append(s.X, float64(r.K))
		s.Y = append(s.Y, r.Speedup)
	}
	var series []asciiplot.Series
	for _, name := range order {
		series = append(series, *byDS[name])
	}
	fprintf(w, "%s", asciiplot.Line("Figure 6: rule-partitioning speedup", series, 40, 10))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
