package experiments

import (
	"fmt"
	"io"
	"time"

	"powl/internal/core"
)

// Fig1Row is one point of Figure 1: speedup of the data-partitioning
// approach (graph-partitioning policy) over the serial reasoner.
type Fig1Row struct {
	Dataset string
	Triples int
	K       int
	Serial  time.Duration
	Elapsed time.Duration
	Speedup float64
	Rounds  int
	IR      float64
}

// Fig1 reproduces Figure 1: "Speedup for the LUBM-10, UOBM benchmarks on
// different number of processors" (plus MDC, §VI-A) under data partitioning
// with the graph policy and the hybrid engine. Expected shape: super-linear
// for LUBM and MDC, sub-linear for UOBM.
func Fig1(scale Scale) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, ds := range scale.Datasets() {
		serial, serialRes, err := medianSerial(ds, scale.Repeats())
		if err != nil {
			return nil, err
		}
		for _, k := range scale.Workers() {
			res, err := medianRun(ds, core.Config{
				Workers:   k,
				Strategy:  core.DataPartitioning,
				Policy:    core.GraphPolicy,
				Engine:    core.HybridEngine,
				Transport: core.MemTransport,
				Simulate:  true,
				Seed:      42,
			}, scale.Repeats())
			if err != nil {
				return nil, err
			}
			if !res.Graph.Equal(serialRes.Graph) {
				return nil, fmt.Errorf("fig1 %s k=%d: parallel closure %d != serial %d",
					ds.Name, k, res.Graph.Len(), serialRes.Graph.Len())
			}
			rows = append(rows, Fig1Row{
				Dataset: ds.Name,
				Triples: ds.Graph.Len(),
				K:       k,
				Serial:  serial,
				Elapsed: res.Elapsed,
				Speedup: serial.Seconds() / res.Elapsed.Seconds(),
				Rounds:  res.Rounds,
				IR:      res.Metrics.IR,
			})
		}
	}
	return rows, nil
}

// PrintFig1 renders the Figure 1 series.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fprintf(w, "Figure 1: speedup, data partitioning (graph policy), hybrid engine\n")
	fprintf(w, "%-8s %8s %4s %12s %12s %8s %7s %6s\n",
		"dataset", "triples", "k", "serial", "parallel", "speedup", "rounds", "IR")
	for _, r := range rows {
		fprintf(w, "%-8s %8d %4d %12v %12v %8.2f %7d %6.2f\n",
			r.Dataset, r.Triples, r.K, r.Serial.Round(time.Millisecond),
			r.Elapsed.Round(time.Millisecond), r.Speedup, r.Rounds, r.IR)
	}
}
