package experiments

import (
	"io"
	"time"

	"powl/internal/cluster"
	"powl/internal/core"
)

// Fig2Row is one bar group of Figure 2: the maximum over partitions of the
// time each parallel sub-task consumed, for LUBM with the shared-filesystem
// transport (the paper's implementation, §V).
type Fig2Row struct {
	K         int
	Reason    time.Duration
	IO        time.Duration
	Sync      time.Duration
	Aggregate time.Duration
}

// Fig2 reproduces Figure 2: "Overhead of various sub-tasks of parallel
// processing for LUBM-10". Expected shape: reasoning shrinks with k while
// the IO + synchronization share grows.
func Fig2(scale Scale) ([]Fig2Row, error) {
	ds := scale.Datasets()[0] // LUBM
	var rows []Fig2Row
	for _, k := range scale.Workers() {
		res, err := medianRun(ds, core.Config{
			Workers:   k,
			Strategy:  core.DataPartitioning,
			Policy:    core.GraphPolicy,
			Engine:    core.HybridEngine,
			Transport: core.FileTransport,
			Simulate:  true,
			Seed:      42,
		}, scale.Repeats())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			K:         k,
			Reason:    maxWorker(res, func(tm cluster.Timings) time.Duration { return tm.Reason }),
			IO:        maxWorker(res, func(tm cluster.Timings) time.Duration { return tm.IO }),
			Sync:      maxWorker(res, func(tm cluster.Timings) time.Duration { return tm.Sync }),
			Aggregate: res.PerWorker[0].Aggregate,
		})
	}
	return rows, nil
}

// PrintFig2 renders the Figure 2 series.
func PrintFig2(w io.Writer, rows []Fig2Row) {
	fprintf(w, "Figure 2: max per-partition time per sub-task, LUBM, file transport\n")
	fprintf(w, "%4s %12s %12s %12s %12s %9s\n", "k", "reason", "io", "sync", "aggregate", "io+sync%%")
	for _, r := range rows {
		total := r.Reason + r.IO + r.Sync + r.Aggregate
		frac := 0.0
		if total > 0 {
			frac = 100 * float64(r.IO+r.Sync) / float64(total)
		}
		fprintf(w, "%4d %12v %12v %12v %12v %8.1f%%\n",
			r.K, r.Reason.Round(time.Millisecond), r.IO.Round(time.Millisecond),
			r.Sync.Round(time.Millisecond), r.Aggregate.Round(time.Millisecond), frac)
	}
}
