package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"powl/internal/core"
)

func TestPlotFig1(t *testing.T) {
	rows := []Fig1Row{
		{Dataset: "lubm", K: 2, Speedup: 2.1},
		{Dataset: "lubm", K: 4, Speedup: 4.5},
		{Dataset: "uobm", K: 2, Speedup: 1.1},
		{Dataset: "uobm", K: 4, Speedup: 1.4},
	}
	var buf bytes.Buffer
	PlotFig1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"linear", "lubm", "uobm", "Figure 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotFig2(t *testing.T) {
	rows := []Fig2Row{
		{K: 2, Reason: time.Second, IO: 100 * time.Millisecond, Sync: 50 * time.Millisecond},
		{K: 4, Reason: 500 * time.Millisecond, IO: 100 * time.Millisecond, Sync: 100 * time.Millisecond},
	}
	var buf bytes.Buffer
	PlotFig2(&buf, rows)
	if !strings.Contains(buf.String(), "k=2") || !strings.Contains(buf.String(), "k=4") {
		t.Errorf("bar labels missing:\n%s", buf.String())
	}
}

func TestPlotFig3(t *testing.T) {
	rows := []Fig3Row{
		{K: 2, Measured: 2, SlowestPartition: 2.2, TheoreticalMax: 2.5},
		{K: 4, Measured: 4, SlowestPartition: 4.4, TheoreticalMax: 5},
	}
	var buf bytes.Buffer
	PlotFig3(&buf, rows)
	if !strings.Contains(buf.String(), "theoretical-max") {
		t.Errorf("legend missing:\n%s", buf.String())
	}
}

func TestPlotFig4(t *testing.T) {
	res := &Fig4Result{Rows: []Fig4Row{
		{Universities: 1, Triples: 4000, Measured: 300 * time.Millisecond, Model: 310 * time.Millisecond},
		{Universities: 2, Triples: 8000, Measured: 700 * time.Millisecond, Model: 690 * time.Millisecond},
	}}
	var buf bytes.Buffer
	PlotFig4(&buf, res)
	if !strings.Contains(buf.String(), "cubic model") {
		t.Errorf("legend missing:\n%s", buf.String())
	}
}

func TestPlotFig5And6(t *testing.T) {
	var buf bytes.Buffer
	PlotFig5(&buf, []Fig5Row{
		{Policy: core.GraphPolicy, K: 2, Speedup: 2},
		{Policy: core.HashPolicy, K: 2, Speedup: 0.7},
	})
	if !strings.Contains(buf.String(), "graph") || !strings.Contains(buf.String(), "hash") {
		t.Errorf("fig5 legend missing:\n%s", buf.String())
	}
	buf.Reset()
	PlotFig6(&buf, []Fig6Row{
		{Dataset: "lubm", K: 2, Speedup: 1.5},
		{Dataset: "mdc", K: 2, Speedup: 1.2},
	})
	if !strings.Contains(buf.String(), "lubm") || !strings.Contains(buf.String(), "mdc") {
		t.Errorf("fig6 legend missing:\n%s", buf.String())
	}
}

func TestItoa(t *testing.T) {
	if itoa(0) != "0" || itoa(42) != "42" || itoa(1600) != "1600" {
		t.Error("itoa broken")
	}
}
