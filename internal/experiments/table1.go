package experiments

import (
	"io"
	"time"

	"powl/internal/gpart"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
)

// Table1Row is one row of Table I: the partitioning metrics of §III for one
// policy at one partition count on LUBM.
type Table1Row struct {
	K        int
	Policy   string
	Bal      float64
	OR       float64
	IR       float64
	PartTime time.Duration
}

// Table1 reproduces Table I: bal / OR / IR / partitioning time for the three
// data-partitioning policies on LUBM, k ∈ {2,4,8,16}. OR is measured by
// actually running the per-partition reasoning (with the forward engine —
// OR is a property of the derived triples, not of the engine) and comparing
// per-partition outputs with their union.
func Table1(scale Scale) ([]Table1Row, error) {
	ds := scale.Datasets()[0]
	compiled := owlhorst.Compile(ds.Dict, ds.Graph)
	instance := owlhorst.SplitInstance(ds.Dict, ds.Graph)
	in := &partition.Input{
		Dict:     ds.Dict,
		Instance: instance,
		Skip:     owlhorst.SchemaElements(ds.Dict, compiled.Schema),
	}

	policies := []partition.Policy{
		partition.GraphPolicy{Opts: gpart.Options{Seed: 42}},
		partition.DomainPolicy{KeyFunc: ds.DomainKey},
		partition.HashPolicy{},
	}
	var rows []Table1Row
	for _, k := range scale.Workers() {
		for _, pol := range policies {
			res, err := partition.Partition(in, k, pol)
			if err != nil {
				return nil, err
			}
			m := partition.ComputeMetrics(in, res)
			or, err := measureOR(compiled, res)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{
				K:        k,
				Policy:   pol.Name(),
				Bal:      m.Bal,
				OR:       or,
				IR:       m.IR,
				PartTime: res.Elapsed,
			})
		}
	}
	return rows, nil
}

// measureOR closes each partition independently (one forward-engine pass,
// no exchange — the replication measure of §III counts per-processor result
// tuples) and relates the summed result sizes to their union.
func measureOR(compiled *owlhorst.Compiled, res *partition.Result) (float64, error) {
	perPart := make([]int, res.K)
	union := rdf.NewGraph()
	schema := compiled.Schema.Triples()
	for i, part := range res.Parts {
		g := rdf.NewGraphCap(2 * (len(part) + len(schema)))
		g.AddAll(part)
		g.AddAll(schema)
		reason.Forward{}.Materialize(g, compiled.InstanceRules)
		perPart[i] = g.Len()
		union.Union(g)
	}
	return partition.OutputReplication(perPart, union.Len()), nil
}

// PrintTable1 renders Table I.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table I: partitioning metrics for the LUBM data-set\n")
	fprintf(w, "%4s %-8s %10s %8s %8s %12s\n", "k", "policy", "bal", "OR", "IR", "part-time")
	for _, r := range rows {
		fprintf(w, "%4d %-8s %10.1f %8.2f %8.2f %12v\n",
			r.K, r.Policy, r.Bal, r.OR, r.IR, r.PartTime.Round(time.Millisecond))
	}
}
