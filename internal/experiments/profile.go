package experiments

import (
	"io"
	"os"

	"powl/internal/core"
	"powl/internal/obs"
)

// ProfileConfig selects the run that Profile instruments.
type ProfileConfig struct {
	// Engine defaults to the hybrid engine (the paper's measured worst
	// case, and the most interesting rule profile).
	Engine core.EngineKind
	// Workers defaults to 4.
	Workers int
	// Journal, when non-empty, receives the run journal as JSONL.
	Journal string
	// Trace, when non-empty, receives the Chrome/Perfetto trace export.
	Trace string
}

// Profile runs one fully instrumented Simulated materialization — LUBM at
// this scale, data partitioning, file transport — writes the requested
// journal/trace files, and prints the profile report to w. It is the
// library half of `experiments -journal/-trace`.
func Profile(w io.Writer, scale Scale, cfg ProfileConfig) error {
	if cfg.Engine == "" {
		cfg.Engine = core.HybridEngine
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	ds := scale.Datasets()[0] // LUBM
	sink := &obs.MemSink{}
	run := obs.NewRun(sink, obs.NewRegistry())
	res, err := core.Materialize(ds, core.Config{
		Workers:   cfg.Workers,
		Strategy:  core.DataPartitioning,
		Policy:    core.GraphPolicy,
		Engine:    cfg.Engine,
		Transport: core.FileTransport,
		Simulate:  true,
		Seed:      42,
		Obs:       run,
	})
	if err != nil {
		return err
	}
	events := sink.Events()

	if cfg.Journal != "" {
		f, err := os.Create(cfg.Journal)
		if err != nil {
			return err
		}
		js := obs.NewJSONLSink(f)
		for _, e := range events {
			js.Emit(e)
		}
		if err := js.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fprintf(w, "wrote journal %s (%d events)\n", cfg.Journal, len(events))
	}
	if cfg.Trace != "" {
		f, err := os.Create(cfg.Trace)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fprintf(w, "wrote trace %s (load at ui.perfetto.dev)\n", cfg.Trace)
	}

	fprintf(w, "profile: %s, k=%d, %d triples closed (%d inferred), %d rounds, simulated elapsed %v\n\n",
		cfg.Engine, cfg.Workers, res.Graph.Len(), res.Inferred, res.Rounds, res.Elapsed)
	obs.WriteReport(w, events, 10)
	return nil
}
