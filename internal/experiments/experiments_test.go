package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The Quick scale keeps these end-to-end: every experiment must run, verify
// its closures, and print non-empty series.

func TestFig1Quick(t *testing.T) {
	rows, err := Fig1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(Quick.Workers()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s k=%d: non-positive speedup", r.Dataset, r.K)
		}
	}
	var buf bytes.Buffer
	PrintFig1(&buf, rows)
	if !strings.Contains(buf.String(), "lubm") {
		t.Error("printout missing dataset names")
	}
}

func TestFig2Quick(t *testing.T) {
	rows, err := Fig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Quick.Workers()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Reason <= 0 {
			t.Errorf("k=%d: zero reasoning time", r.K)
		}
		if r.IO <= 0 {
			t.Errorf("k=%d: file transport should have measurable IO", r.K)
		}
	}
	var buf bytes.Buffer
	PrintFig2(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestFig3And4Quick(t *testing.T) {
	f4, err := Fig4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Coeffs) != 4 {
		t.Fatalf("cubic fit has %d coefficients", len(f4.Coeffs))
	}
	if f4.RSquared < 0.9 {
		t.Errorf("cubic fit R² = %f; the scaling curve should be smooth", f4.RSquared)
	}
	rows, err := Fig3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TheoreticalMax < 1 {
			t.Errorf("k=%d: theoretical max %f < 1", r.K, r.TheoreticalMax)
		}
		if r.SlowestPartition < r.Measured {
			t.Errorf("k=%d: slowest-partition speedup %f below overall %f", r.K, r.SlowestPartition, r.Measured)
		}
	}
	var buf bytes.Buffer
	PrintFig4(&buf, f4)
	PrintFig3(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestFig5Quick(t *testing.T) {
	rows, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Hash must replicate far more than graph at the same k.
	var graphIR, hashIR float64
	for _, r := range rows {
		if r.K == Quick.Workers()[len(Quick.Workers())-1] {
			switch r.Policy {
			case "graph":
				graphIR = r.IR
			case "hash":
				hashIR = r.IR
			}
		}
	}
	if hashIR <= graphIR {
		t.Errorf("hash IR %.3f not above graph IR %.3f", hashIR, graphIR)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestFig6Quick(t *testing.T) {
	rows, err := Fig6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(fig6Workers(Quick)) {
		t.Fatalf("got %d rows", len(rows))
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestTable1Quick(t *testing.T) {
	rows, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(Quick.Workers()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.IR < 0 || r.OR < 0 {
			t.Errorf("%s k=%d: negative replication", r.Policy, r.K)
		}
		if r.PartTime <= 0 {
			t.Errorf("%s k=%d: zero partition time", r.Policy, r.K)
		}
	}
	// Graph beats hash on IR at every k.
	byK := map[int]map[string]float64{}
	for _, r := range rows {
		if byK[r.K] == nil {
			byK[r.K] = map[string]float64{}
		}
		byK[r.K][r.Policy] = r.IR
	}
	for k, m := range byK {
		if m["graph"] >= m["hash"] {
			t.Errorf("k=%d: graph IR %.3f not below hash IR %.3f", k, m["graph"], m["hash"])
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestMedianHelper(t *testing.T) {
	if median([]time.Duration{5}) != 5 {
		t.Error("median of singleton")
	}
	if median([]time.Duration{3, 1, 2}) != 2 {
		t.Error("median of three")
	}
	if median([]time.Duration{4, 1, 3, 2}) != 3 {
		t.Error("upper median of four")
	}
}
