package experiments

import (
	"fmt"
	"io"
	"time"

	"powl/internal/cluster"
	"powl/internal/core"
	"powl/internal/stats"
)

// Fig4Row is one point of Figure 4: serial reasoning time versus LUBM scale,
// with the cubic model evaluated at the same point.
type Fig4Row struct {
	Universities int
	Triples      int
	Measured     time.Duration
	Model        time.Duration
}

// Fig4Result carries the regression of Figure 4.
type Fig4Result struct {
	Rows []Fig4Row
	// Coeffs are the cubic coefficients over the triple count (seconds as a
	// function of millions of triples would match the paper; here the x
	// axis is thousands of triples).
	Coeffs   []float64
	RSquared float64
}

// fig4Scales are the LUBM sizes used for the regression, mirroring the
// paper's "LUBM-1, LUBM-5, LUBM-10 etc".
func fig4Scales(scale Scale) []int {
	if scale == Quick {
		return []int{1, 2, 3, 4, 5}
	}
	return []int{1, 2, 4, 6, 8, 10}
}

// Fig4 reproduces Figure 4: regress a cubic performance model from observed
// serial reasoning times across LUBM scales. The paper justifies the cubic
// form by the worst-case complexity of the rule set.
func Fig4(scale Scale) (*Fig4Result, error) {
	var xs, ys []float64
	res := &Fig4Result{}
	for _, u := range fig4Scales(scale) {
		ds := scale.LUBMAt(u)
		med, _, err := medianSerial(ds, scale.Repeats())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig4Row{
			Universities: u,
			Triples:      ds.Graph.Len(),
			Measured:     med,
		})
		xs = append(xs, float64(ds.Graph.Len())/1000)
		ys = append(ys, med.Seconds())
	}
	coeffs, err := stats.PolyFit(xs, ys, 3)
	if err != nil {
		return nil, err
	}
	res.Coeffs = coeffs
	res.RSquared = stats.RSquared(coeffs, xs, ys)
	for i := range res.Rows {
		res.Rows[i].Model = time.Duration(stats.PolyEval(coeffs, xs[i]) * float64(time.Second))
	}
	return res, nil
}

// PrintFig4 renders the Figure 4 series.
func PrintFig4(w io.Writer, r *Fig4Result) {
	fprintf(w, "Figure 4: cubic performance model from serial LUBM reasoning times\n")
	fprintf(w, "%-8s %8s %12s %12s\n", "lubm-N", "triples", "measured", "model")
	for _, row := range r.Rows {
		fprintf(w, "%-8d %8d %12v %12v\n", row.Universities, row.Triples,
			row.Measured.Round(time.Millisecond), row.Model.Round(time.Millisecond))
	}
	fprintf(w, "cubic fit (x in kilo-triples): t = %.3g + %.3g·x + %.3g·x² + %.3g·x³  (R²=%.4f)\n",
		r.Coeffs[0], r.Coeffs[1], r.Coeffs[2], r.Coeffs[3], r.RSquared)
}

// Fig3Row is one point of Figure 3: measured speedup against the
// theoretical maximum predicted by the Figure 4 model, for LUBM.
type Fig3Row struct {
	K int
	// Measured is the overall speedup (serial / parallel elapsed).
	Measured float64
	// SlowestPartition is serial / (max worker reasoning time) — the
	// "reasoning for the slowest partition" series of the figure.
	SlowestPartition float64
	// TheoreticalMax is T(n)/T(n/k) from the cubic model: equal-size
	// partitions, no replication, no overhead.
	TheoreticalMax float64
}

// Fig3 reproduces Figure 3: measured versus theoretical-maximum speedup on
// LUBM. Expected shape: measured tracks the model's bound from below.
func Fig3(scale Scale) ([]Fig3Row, error) {
	fig4, err := Fig4(scale)
	if err != nil {
		return nil, err
	}
	ds := scale.Datasets()[0]
	serial, serialRes, err := medianSerial(ds, scale.Repeats())
	if err != nil {
		return nil, err
	}
	x := float64(ds.Graph.Len()) / 1000
	tN := stats.PolyEval(fig4.Coeffs, x)
	var rows []Fig3Row
	for _, k := range scale.Workers() {
		res, err := medianRun(ds, core.Config{
			Workers:   k,
			Strategy:  core.DataPartitioning,
			Policy:    core.GraphPolicy,
			Engine:    core.HybridEngine,
			Transport: core.MemTransport,
			Simulate:  true,
			Seed:      42,
		}, scale.Repeats())
		if err != nil {
			return nil, err
		}
		if !res.Graph.Equal(serialRes.Graph) {
			return nil, fmt.Errorf("fig3 k=%d: closure mismatch", k)
		}
		maxReason := maxWorker(res, func(tm cluster.Timings) time.Duration { return tm.Reason })
		tNk := stats.PolyEval(fig4.Coeffs, x/float64(k))
		row := Fig3Row{
			K:                k,
			Measured:         serial.Seconds() / res.Elapsed.Seconds(),
			SlowestPartition: serial.Seconds() / maxReason.Seconds(),
		}
		if tNk > 0 {
			row.TheoreticalMax = tN / tNk
		} else {
			// The fitted cubic can dip non-positive when extrapolated far
			// below the smallest measured size (possible at Quick scale);
			// the linear bound is the defensible floor there.
			row.TheoreticalMax = float64(k)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig3 renders the Figure 3 series.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fprintf(w, "Figure 3: measured vs theoretical-max speedup, LUBM\n")
	fprintf(w, "%4s %10s %18s %16s\n", "k", "measured", "slowest-partition", "theoretical-max")
	for _, r := range rows {
		fprintf(w, "%4d %10.2f %18.2f %16.2f\n", r.K, r.Measured, r.SlowestPartition, r.TheoreticalMax)
	}
}
