package experiments

import (
	"fmt"
	"io"
	"time"

	"powl/internal/core"
)

// Fig5Row is one point of Figure 5: speedup per data-partitioning policy on
// LUBM.
type Fig5Row struct {
	Policy  core.PolicyKind
	K       int
	Speedup float64
	IR      float64
}

// Fig5 reproduces Figure 5: "Comparison of performance of the two [sic —
// three] data-partitioning algorithms for LUBM-10". Expected shape: graph ≈
// domain ≫ hash. (The paper could not run hash at 8 and 16 nodes — the runs
// exceeded the machines' memory; we can, and report them for completeness.)
func Fig5(scale Scale) ([]Fig5Row, error) {
	ds := scale.Datasets()[0]
	serial, serialRes, err := medianSerial(ds, scale.Repeats())
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, pol := range []core.PolicyKind{core.GraphPolicy, core.DomainPolicy, core.HashPolicy} {
		for _, k := range scale.Workers() {
			res, err := medianRun(ds, core.Config{
				Workers:   k,
				Strategy:  core.DataPartitioning,
				Policy:    pol,
				Engine:    core.HybridEngine,
				Transport: core.MemTransport,
				Simulate:  true,
				Seed:      42,
			}, scale.Repeats())
			if err != nil {
				return nil, err
			}
			if !res.Graph.Equal(serialRes.Graph) {
				return nil, fmt.Errorf("fig5 %s k=%d: closure mismatch", pol, k)
			}
			rows = append(rows, Fig5Row{
				Policy:  pol,
				K:       k,
				Speedup: serial.Seconds() / res.Elapsed.Seconds(),
				IR:      res.Metrics.IR,
			})
		}
	}
	return rows, nil
}

// PrintFig5 renders the Figure 5 series.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fprintf(w, "Figure 5: speedup per data-partitioning policy, LUBM\n")
	fprintf(w, "%-8s %4s %8s %6s\n", "policy", "k", "speedup", "IR")
	for _, r := range rows {
		fprintf(w, "%-8s %4d %8.2f %6.2f\n", r.Policy, r.K, r.Speedup, r.IR)
	}
}

// Fig6Row is one point of Figure 6: rule-partitioning speedups.
type Fig6Row struct {
	Dataset string
	K       int
	Serial  time.Duration
	Elapsed time.Duration
	Speedup float64
	RuleCut int64
	Rounds  int
}

// fig6Workers: "since all of these rule-sets are fairly small, we have only
// conducted experiments on a small number of processors" (§VI-D).
func fig6Workers(scale Scale) []int {
	if scale == Quick {
		return []int{2}
	}
	return []int{2, 3, 4}
}

// Fig6 reproduces Figure 6: "Speedup for the different benchmarks for
// rule-base partitioning", using the shared-memory transport the paper
// switched to for these runs. Expected shape: sub-linear but monotonic.
func Fig6(scale Scale) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, ds := range scale.Datasets() {
		serial, serialRes, err := medianSerial(ds, scale.Repeats())
		if err != nil {
			return nil, err
		}
		for _, k := range fig6Workers(scale) {
			res, err := medianRun(ds, core.Config{
				Workers:   k,
				Strategy:  core.RulePartitioning,
				Engine:    core.HybridEngine,
				Transport: core.MemTransport,
				Simulate:  true,
				Seed:      42,
			}, scale.Repeats())
			if err != nil {
				return nil, err
			}
			if !res.Graph.Equal(serialRes.Graph) {
				return nil, fmt.Errorf("fig6 %s k=%d: closure mismatch (%d vs %d)",
					ds.Name, k, res.Graph.Len(), serialRes.Graph.Len())
			}
			rows = append(rows, Fig6Row{
				Dataset: ds.Name,
				K:       k,
				Serial:  serial,
				Elapsed: res.Elapsed,
				Speedup: serial.Seconds() / res.Elapsed.Seconds(),
				RuleCut: res.RuleCut,
				Rounds:  res.Rounds,
			})
		}
	}
	return rows, nil
}

// PrintFig6 renders the Figure 6 series.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fprintf(w, "Figure 6: speedup per benchmark, rule-base partitioning, shared memory\n")
	fprintf(w, "%-8s %4s %12s %12s %8s %8s %7s\n", "dataset", "k", "serial", "parallel", "speedup", "rulecut", "rounds")
	for _, r := range rows {
		fprintf(w, "%-8s %4d %12v %12v %8.2f %8d %7d\n",
			r.Dataset, r.K, r.Serial.Round(time.Millisecond),
			r.Elapsed.Round(time.Millisecond), r.Speedup, r.RuleCut, r.Rounds)
	}
}
