// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each ExpN function returns typed rows plus a printer
// producing the same series the paper reports; cmd/experiments and the
// top-level benchmarks are thin wrappers around this package.
//
// Scales are reduced relative to the paper (see DESIGN.md): the quantities
// compared are speedup curves, overhead fractions and replication metrics,
// all of which are scale-free shapes.
package experiments

import (
	"fmt"
	"io"
	"time"

	"powl/internal/cluster"
	"powl/internal/core"
	"powl/internal/datagen"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks datasets and repeats for smoke-testing the harness.
	Quick Scale = iota
	// Full is the default reported configuration.
	Full
)

// Repeats returns the number of repetitions per measured point; medians are
// reported to suppress scheduler noise.
func (s Scale) Repeats() int {
	if s == Quick {
		return 1
	}
	return 3
}

// Datasets returns the benchmark instances of §VI ("LUBM-10 (1M triples) and
// UOBM-4 data-sets and our own data-set called MDC"), at this scale.
func (s Scale) Datasets() []*datagen.Dataset {
	if s == Quick {
		return []*datagen.Dataset{
			datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7}),
			datagen.UOBM(datagen.UOBMConfig{Universities: 2, Seed: 7}),
			datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7}),
		}
	}
	return []*datagen.Dataset{
		datagen.LUBM(datagen.LUBMConfig{Universities: 10, Seed: 7, DeptsPerUniv: 30}),
		datagen.UOBM(datagen.UOBMConfig{Universities: 4, Seed: 7}),
		datagen.MDC(datagen.MDCConfig{Fields: 16, Seed: 7, WellsPerField: 8}),
	}
}

// LUBMAt generates the LUBM instance for a given university count at this
// scale (used by the Fig 3/4 scaling sweeps). The department count matches
// the Full Datasets() LUBM instance so the Figure 4 model and the Figure 3
// prediction share units.
func (s Scale) LUBMAt(universities int) *datagen.Dataset {
	depts := 0
	if s == Full {
		depts = 30
	}
	return datagen.LUBM(datagen.LUBMConfig{Universities: universities, Seed: 7, DeptsPerUniv: depts})
}

// Workers returns the processor counts of the speedup figures.
func (s Scale) Workers() []int {
	if s == Quick {
		return []int{2, 4}
	}
	return []int{2, 4, 8, 16}
}

// medianSerial measures the serial hybrid materialization time, median of
// repeats.
func medianSerial(ds *datagen.Dataset, repeats int) (time.Duration, *core.SerialResult, error) {
	var last *core.SerialResult
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		res, err := core.MaterializeSerial(ds, core.HybridEngine)
		if err != nil {
			return 0, nil, err
		}
		times = append(times, res.Elapsed)
		last = res
	}
	return median(times), last, nil
}

// medianRun runs the parallel materialization `repeats` times and returns
// the run with the median elapsed time.
func medianRun(ds *datagen.Dataset, cfg core.Config, repeats int) (*core.Result, error) {
	type run struct {
		res *core.Result
	}
	runs := make([]run, 0, repeats)
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		res, err := core.Materialize(ds, cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{res})
		times = append(times, res.Elapsed)
	}
	med := median(times)
	for _, r := range runs {
		if r.res.Elapsed == med {
			return r.res, nil
		}
	}
	return runs[len(runs)/2].res, nil
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration{}, ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// maxWorker returns the maximum over workers of the selected duration.
func maxWorker(res *core.Result, sel func(tm cluster.Timings) time.Duration) time.Duration {
	var max time.Duration
	for _, tm := range res.PerWorker {
		if d := sel(tm); d > max {
			max = d
		}
	}
	return max
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
