// Package rulepart implements the paper's rule-base partitioning approach
// (§III-B, Algorithm 2): build the rule dependency graph (rule r1 → r2 when
// a head atom of r1 unifies with a body atom of r2, so a tuple produced by
// r1 can feed r2), optionally weigh edges by expected rule productivity, and
// partition it with the standard graph partitioner so that cut dependencies
// — each of which forces tuples onto the wire — are minimized while rule
// counts stay balanced.
package rulepart

import (
	"fmt"
	"time"

	"powl/internal/gpart"
	"powl/internal/rdf"
	"powl/internal/rules"
)

// Result is a complete rule-base partitioning.
type Result struct {
	K int
	// Groups[i] lists the indices (into the original rule slice) of the
	// rules assigned to partition i.
	Groups [][]int
	// RulePart[r] is the partition of rule r.
	RulePart []int
	// CutWeight is the total weight of dependency edges crossing partitions
	// (a proxy for communication volume).
	CutWeight int64
	// Elapsed is the partitioning time.
	Elapsed time.Duration
}

// Options tunes the partitioning.
type Options struct {
	// Produced[i] is the expected number of tuples rule i derives, used to
	// weigh dependency edges (§III-B); nil means uniform weights.
	Produced []int
	// Gpart passes through to the graph partitioner.
	Gpart gpart.Options
}

// Partition runs Algorithm 2 over rs.
//
//powl:ignore wallclock Elapsed reproduces the paper's rule-partitioning time measurement — a reported duration only.
func Partition(rs []rules.Rule, k int, opts Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("rulepart: k must be ≥ 1, got %d", k)
	}
	if k > len(rs) {
		return nil, fmt.Errorf("rulepart: k=%d exceeds rule count %d", k, len(rs))
	}
	start := time.Now()
	edges := rules.DependencyGraph(rs)
	if opts.Produced != nil {
		edges = rules.ScaleDepWeights(edges, opts.Produced)
	}
	b := gpart.NewBuilder(len(rs))
	for _, e := range edges {
		if e.From != e.To {
			b.AddEdge(e.From, e.To, int64(e.Weight))
		}
	}
	g := b.Build()
	part, err := gpart.Partition(g, k, opts.Gpart)
	if err != nil {
		return nil, err
	}
	res := &Result{K: k, RulePart: part, Groups: make([][]int, k)}
	for r, p := range part {
		res.Groups[p] = append(res.Groups[p], r)
	}
	res.CutWeight = gpart.EdgeCut(g, part)
	res.Elapsed = time.Since(start)
	return res, nil
}

// Router routes newly derived tuples between rule partitions: a tuple goes
// to every other partition owning a rule with a body atom the tuple matches
// (§IV: "we match the newly generated [tuple] with all the rules of other
// partitions").
type Router struct {
	k int
	// byPred[p] lists partitions having a body atom with constant predicate
	// p; anyPred lists partitions having a variable-predicate body atom.
	byPred  map[rdf.ID][]int
	anyPred []int
	// atoms[i] are the body atoms of partition i, for the exact match test.
	atoms [][]rules.Atom
}

// NewRouter builds the routing table for a rule partitioning.
func NewRouter(rs []rules.Rule, res *Result) *Router {
	rt := &Router{k: res.K, byPred: map[rdf.ID][]int{}, atoms: make([][]rules.Atom, res.K)}
	seenPred := map[rdf.ID]map[int]bool{}
	seenAny := map[int]bool{}
	for ri, p := range res.RulePart {
		for _, a := range rs[ri].Body {
			rt.atoms[p] = append(rt.atoms[p], a)
			if a.P.IsVar {
				if !seenAny[p] {
					seenAny[p] = true
					rt.anyPred = append(rt.anyPred, p)
				}
				continue
			}
			if seenPred[a.P.ID] == nil {
				seenPred[a.P.ID] = map[int]bool{}
			}
			if !seenPred[a.P.ID][p] {
				seenPred[a.P.ID][p] = true
				rt.byPred[a.P.ID] = append(rt.byPred[a.P.ID], p)
			}
		}
	}
	return rt
}

// Destinations returns the partitions (other than from) whose rules can
// consume t.
func (rt *Router) Destinations(t rdf.Triple, from int) []int {
	var out []int
	seen := map[int]bool{from: true}
	consider := func(p int) {
		if seen[p] {
			return
		}
		for _, a := range rt.atoms[p] {
			if a.MatchesTriple(t) {
				seen[p] = true
				out = append(out, p)
				return
			}
		}
		seen[p] = true
	}
	for _, p := range rt.byPred[t.P] {
		consider(p)
	}
	for _, p := range rt.anyPred {
		consider(p)
	}
	return out
}
