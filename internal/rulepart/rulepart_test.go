package rulepart

import (
	"testing"

	"powl/internal/rdf"
	"powl/internal/rules"
)

func parse(t *testing.T, src string, dict *rdf.Dict) []rules.Rule {
	t.Helper()
	rs, err := rules.Parse("@prefix t: <http://t/> .\n"+src, dict)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// chainRules builds 2n rules in n independent pairs: producer pi feeds
// consumer ci, with no cross-pair dependencies — the ideal rule-partitioning
// input.
const chainRules = `
[p1: (?x t:a1 ?y) -> (?x t:b1 ?y)]
[c1: (?x t:b1 ?y) -> (?x t:c1 ?y)]
[p2: (?x t:a2 ?y) -> (?x t:b2 ?y)]
[c2: (?x t:b2 ?y) -> (?x t:c2 ?y)]
[p3: (?x t:a3 ?y) -> (?x t:b3 ?y)]
[c3: (?x t:b3 ?y) -> (?x t:c3 ?y)]
[p4: (?x t:a4 ?y) -> (?x t:b4 ?y)]
[c4: (?x t:b4 ?y) -> (?x t:c4 ?y)]
`

func TestPartitionCoversAllRules(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, chainRules, dict)
	for _, k := range []int{1, 2, 4} {
		res, err := Partition(rs, k, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		seen := map[int]bool{}
		for _, grp := range res.Groups {
			for _, r := range grp {
				if seen[r] {
					t.Fatalf("k=%d: rule %d in two groups", k, r)
				}
				seen[r] = true
			}
		}
		if len(seen) != len(rs) {
			t.Fatalf("k=%d: %d of %d rules assigned", k, len(seen), len(rs))
		}
		for r, p := range res.RulePart {
			if p < 0 || p >= k {
				t.Fatalf("rule %d assigned to invalid partition %d", r, p)
			}
		}
	}
}

func TestPartitionKeepsDependentPairsTogether(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, chainRules, dict)
	res, err := Partition(rs, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each producer/consumer pair (2i, 2i+1) should share a partition: the
	// pairs are mutually independent, so the zero cut is achievable.
	if res.CutWeight != 0 {
		t.Errorf("cut weight %d on independent pairs; want 0 (parts: %v)", res.CutWeight, res.RulePart)
	}
	for i := 0; i < len(rs); i += 2 {
		if res.RulePart[i] != res.RulePart[i+1] {
			t.Errorf("pair %d split: producer in %d, consumer in %d", i/2, res.RulePart[i], res.RulePart[i+1])
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, chainRules, dict)
	if _, err := Partition(rs, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(rs, len(rs)+1, Options{}); err == nil {
		t.Error("k>len(rules) accepted")
	}
}

func TestProducedWeights(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, chainRules, dict)
	produced := make([]int, len(rs))
	for i := range produced {
		produced[i] = 1
	}
	produced[0] = 1000 // p1 is very productive: never cut the p1→c1 edge
	res, err := Partition(rs, 2, Options{Produced: produced})
	if err != nil {
		t.Fatal(err)
	}
	if res.RulePart[0] != res.RulePart[1] {
		t.Error("heavily weighted dependency was cut")
	}
}

func TestRouterDestinations(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, `
[r0: (?x t:a ?y) -> (?x t:b ?y)]
[r1: (?x t:b ?y) -> (?x t:c ?y)]
[r2: (?x t:d ?y) -> (?x t:e ?y)]
`, dict)
	res := &Result{K: 3, RulePart: []int{0, 1, 2}, Groups: [][]int{{0}, {1}, {2}}}
	rt := NewRouter(rs, res)

	a := dict.InternIRI("http://t/a")
	b := dict.InternIRI("http://t/b")
	x := dict.InternIRI("http://t/x")
	y := dict.InternIRI("http://t/y")

	// A b-triple generated on partition 0 must go to partition 1 (r1
	// consumes b) and nowhere else.
	dsts := rt.Destinations(rdf.Triple{S: x, P: b, O: y}, 0)
	if len(dsts) != 1 || dsts[0] != 1 {
		t.Fatalf("b-triple destinations = %v, want [1]", dsts)
	}
	// From partition 1 itself, no destination (no other partition wants b).
	if dsts := rt.Destinations(rdf.Triple{S: x, P: b, O: y}, 1); len(dsts) != 0 {
		t.Fatalf("self-routing: %v", dsts)
	}
	// An a-triple from partition 2 goes to partition 0.
	dsts = rt.Destinations(rdf.Triple{S: x, P: a, O: y}, 2)
	if len(dsts) != 1 || dsts[0] != 0 {
		t.Fatalf("a-triple destinations = %v, want [0]", dsts)
	}
	// A triple with an unconsumed predicate goes nowhere.
	z := dict.InternIRI("http://t/zzz")
	if dsts := rt.Destinations(rdf.Triple{S: x, P: z, O: y}, 0); len(dsts) != 0 {
		t.Fatalf("unconsumed predicate routed: %v", dsts)
	}
}

func TestRouterVariablePredicate(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, `
[same: (?x t:same ?y) (?x ?p ?z) -> (?y ?p ?z)]
[r1: (?x t:b ?y) -> (?x t:c ?y)]
`, dict)
	res := &Result{K: 2, RulePart: []int{0, 1}, Groups: [][]int{{0}, {1}}}
	rt := NewRouter(rs, res)
	x := dict.InternIRI("http://t/x")
	y := dict.InternIRI("http://t/y")
	anyP := dict.InternIRI("http://t/whatever")
	// Partition 0 has a variable-predicate body atom: every tuple from
	// partition 1 is a potential match.
	dsts := rt.Destinations(rdf.Triple{S: x, P: anyP, O: y}, 1)
	if len(dsts) != 1 || dsts[0] != 0 {
		t.Fatalf("variable-predicate routing = %v, want [0]", dsts)
	}
}

func TestRouterGroundAtomFiltering(t *testing.T) {
	dict := rdf.NewDict()
	rs := parse(t, `
[r0: (?x t:p <http://t/special>) -> (?x t:q <http://t/special>)]
[r1: (?x t:p ?y) -> (?x t:r ?y)]
`, dict)
	res := &Result{K: 2, RulePart: []int{0, 1}, Groups: [][]int{{0}, {1}}}
	rt := NewRouter(rs, res)
	x := dict.InternIRI("http://t/x")
	p := dict.InternIRI("http://t/p")
	special := dict.InternIRI("http://t/special")
	other := dict.InternIRI("http://t/other")

	// (x p other) matches r1's body but NOT r0's (object constant differs).
	dsts := rt.Destinations(rdf.Triple{S: x, P: p, O: other}, 5)
	if len(dsts) != 1 || dsts[0] != 1 {
		t.Fatalf("destinations = %v, want [1]", dsts)
	}
	dsts = rt.Destinations(rdf.Triple{S: x, P: p, O: special}, 5)
	if len(dsts) != 2 {
		t.Fatalf("special triple should reach both partitions, got %v", dsts)
	}
}
