package fscluster

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"powl/internal/gpart"
	"powl/internal/obs"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/vocab"
)

// delFixture writes node 0's base partition (three plain triples) and
// returns the layout, the dict used to write, and the triples.
func delFixture(t *testing.T) (Layout, *rdf.Dict, []rdf.Triple) {
	t.Helper()
	l := Layout{Dir: t.TempDir()}
	dict := rdf.NewDict()
	p := dict.InternIRI("http://t/p")
	ts := []rdf.Triple{
		{S: dict.InternIRI("http://t/a"), P: p, O: dict.InternIRI("http://t/x")},
		{S: dict.InternIRI("http://t/b"), P: p, O: dict.InternIRI("http://t/y")},
		{S: dict.InternIRI("http://t/c"), P: p, O: dict.InternIRI("http://t/z")},
	}
	g := rdf.NewGraph()
	g.AddAll(ts)
	if err := writeGraphFile(l.PartFile(0), dict, g); err != nil {
		t.Fatal(err)
	}
	return l, dict, ts
}

// writeDelFile persists dels as node 0's round-r tombstone sidecar.
func writeDelFile(t *testing.T, l Layout, round int, dict *rdf.Dict, dels []rdf.Triple) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddAll(dels)
	if err := writeGraphFile(l.DelCkptFile(round, 0), dict, g); err != nil {
		t.Fatal(err)
	}
}

// TestDelSidecarRoundtrip checks the write path against the read path: a
// graph with tombstones persists its dead set, and a fresh reconstruction
// through a fresh dict replays exactly those deletions — with the newest
// (cumulative) sidecar winning over older ones.
func TestDelSidecarRoundtrip(t *testing.T) {
	l, dict, ts := delFixture(t)

	// Round 0: one deletion. Round 1: cumulative two. Written through the
	// production writer, driven by real tombstones.
	g := rdf.NewGraph()
	g.AddAll(ts)
	g.Delete(ts[:1])
	if err := writeDelSidecar(l, 0, 0, dict, g); err != nil {
		t.Fatal(err)
	}
	g.Delete(ts[1:2])
	if err := writeDelSidecar(l, 1, 0, dict, g); err != nil {
		t.Fatal(err)
	}

	dict2 := rdf.NewDict()
	g2 := rdf.NewGraph()
	if err := reconstruct(l, 0, dict2, g2, nil); err != nil {
		t.Fatal(err)
	}
	n, err := applyDelSidecars(l, 0, dict2, g2, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied %d deletions, want 2 (newest cumulative sidecar)", n)
	}
	live := g2.Triples()
	if len(live) != 1 {
		t.Fatalf("survivors = %d, want 1: %v", len(live), live)
	}
	if got := dict2.Term(live[0].S).String(); got != "<http://t/c>" {
		t.Fatalf("wrong survivor subject: %s", got)
	}
}

// TestDelSidecarMissingNewest models a crash between the round-2 checkpoint
// and its tombstone sidecar: replay degrades to the round-0 set and journals
// a warning, mirroring the lineage-sidecar degradation rule.
func TestDelSidecarMissingNewest(t *testing.T) {
	l, dict, ts := delFixture(t)
	writeDelFile(t, l, 0, dict, ts[:1])
	ck := rdf.NewGraph()
	ck.AddAll(ts[2:])
	if err := writeGraphFile(l.CkptFile(2, 0), dict, ck); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	run := obs.NewRun(sink, nil)
	dict2 := rdf.NewDict()
	g2 := rdf.NewGraph()
	if err := reconstruct(l, 0, dict2, g2, nil); err != nil {
		t.Fatal(err)
	}
	n, err := applyDelSidecars(l, 0, dict2, g2, run, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied %d deletions, want the 1 from the stale sidecar", n)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"warn"`) || !strings.Contains(buf.String(), "missing for round 2") {
		t.Fatalf("no degradation warning journaled: %s", buf.String())
	}
}

// TestDelSidecarCorrupt checks the other degradation leg: an unreadable
// sidecar replays as deletion-free, with a journaled warning, rather than
// failing the rejoin.
func TestDelSidecarCorrupt(t *testing.T) {
	l, dict, _ := delFixture(t)
	if err := os.WriteFile(l.DelCkptFile(0, 0), []byte("<<<not ntriples\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = dict

	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	run := obs.NewRun(sink, nil)
	dict2 := rdf.NewDict()
	g2 := rdf.NewGraph()
	if err := reconstruct(l, 0, dict2, g2, nil); err != nil {
		t.Fatal(err)
	}
	n, err := applyDelSidecars(l, 0, dict2, g2, run, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("corrupt sidecar applied %d deletions, want 0", n)
	}
	if g2.Len() != 3 {
		t.Fatalf("reconstruction lost tuples: %d live, want 3", g2.Len())
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"warn"`) || !strings.Contains(buf.String(), "unreadable") {
		t.Fatalf("no corruption warning journaled: %s", buf.String())
	}
}

// TestRejoinAppliesDeletions drives the full node path: a one-node cluster
// materializes, a tombstone sidecar lands on disk (standing in for a
// deletion-processing incarnation that died), and the restarted node's
// rejoin replay must re-kill the deleted cone — the closure it writes may
// not resurrect either the deleted assertion or its retracted inference.
func TestRejoinAppliesDeletions(t *testing.T) {
	dir := t.TempDir()
	dict := rdf.NewDict()
	base := rdf.NewGraph()
	typ := dict.InternIRI(vocab.RDFType)
	student := dict.InternIRI("http://t/Student")
	person := dict.InternIRI("http://t/Person")
	base.Add(rdf.Triple{S: student, P: dict.InternIRI(vocab.RDFSSubClassOf), O: person})
	s0 := dict.InternIRI("http://t/s0")
	s1 := dict.InternIRI("http://t/s1")
	base.Add(rdf.Triple{S: s0, P: typ, O: student})
	base.Add(rdf.Triple{S: s1, P: typ, O: student})
	if _, err := Prepare(dir, dict, base, 1, partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}); err != nil {
		t.Fatal(err)
	}
	cfg := NodeConfig{ID: 0, K: 1, Dir: dir, Poll: time.Millisecond, Timeout: time.Minute}
	res, err := RunNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// res.Closure uses the node's own dict, so membership is checked via
	// the derived count here and via the re-read closure file below.
	if res.Derived == 0 {
		t.Fatal("first run derived nothing")
	}

	// The deleted cone: the assertion and the inference DRed took with it.
	l := Layout{Dir: dir}
	last := res.Rounds - 1
	writeDelFile(t, l, last, dict, []rdf.Triple{
		{S: s0, P: typ, O: student},
		{S: s0, P: typ, O: person},
	})
	// A rejoin replays persisted state only when round markers exist; the
	// closure file from the completed first run would mask the check, so
	// clear it (the node rewrites it).
	if err := os.Remove(l.ClosureFile(0)); err != nil {
		t.Fatal(err)
	}

	res2, err := RunNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != 2 || res2.StartRound != last+1 {
		t.Fatalf("not a rejoin: %+v", res2)
	}
	// Verify through the closure *file* — what MergeClosures and any
	// downstream consumer actually reads.
	cdict := rdf.NewDict()
	cg := rdf.NewGraph()
	if err := readGraphFile(l.ClosureFile(0), cdict, cg); err != nil {
		t.Fatal(err)
	}
	has := func(s, o string) bool {
		return cg.Has(rdf.Triple{
			S: cdict.InternIRI(s),
			P: cdict.InternIRI(vocab.RDFType),
			O: cdict.InternIRI(o),
		})
	}
	for _, bad := range []string{"Student", "Person"} {
		if has("http://t/s0", "http://t/"+bad) {
			t.Fatalf("rejoin resurrected deleted triple s0 a %s", bad)
		}
	}
	for _, good := range []string{"Student", "Person"} {
		if !has("http://t/s1", "http://t/"+good) {
			t.Fatalf("rejoin lost live triple s1 a %s", good)
		}
	}
}
