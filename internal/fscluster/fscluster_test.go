package fscluster

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/gpart"
	"powl/internal/partition"
	"powl/internal/reason"
)

// runCluster prepares a work dir and runs k nodes concurrently (goroutines
// standing in for processes — the on-disk protocol is identical).
func runCluster(t *testing.T, ds *datagen.Dataset, k int, engine reason.Engine) ([]*NodeResult, string) {
	t.Helper()
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}
	results := make([]*NodeResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunNode(NodeConfig{
				ID: i, K: k, Dir: dir, Engine: engine,
				Poll: time.Millisecond, Timeout: 2 * time.Minute,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results, dir
}

func TestClusterMatchesSerial(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 2, Seed: 7, DeptsPerUniv: 4})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		results, dir := runCluster(t, ds, k, reason.Forward{})
		_, merged, err := MergeClosures(dir, k)
		if err != nil {
			t.Fatal(err)
		}
		// Graphs come from different dictionaries, so compare by
		// serialized triple count and a re-serialization equality check.
		if merged.Len() != serial.Graph.Len() {
			t.Fatalf("k=%d: merged closure %d != serial %d", k, merged.Len(), serial.Graph.Len())
		}
		rounds := results[0].Rounds
		for _, r := range results {
			if r.Rounds != rounds {
				t.Errorf("k=%d: nodes disagree on round count: %d vs %d", k, r.Rounds, rounds)
			}
		}
	}
}

func TestClusterSizeRoundTrip(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7})
	_, dir := runCluster(t, ds, 3, reason.Forward{})
	k, err := ClusterSize(dir)
	if err != nil || k != 3 {
		t.Fatalf("ClusterSize = %d, %v", k, err)
	}
}

func TestClusterWithHybridEngine(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	_, dir := runCluster(t, ds, 2, reason.Hybrid{})
	_, merged, err := MergeClosures(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("hybrid cluster closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
}

func TestNodeTimesOutWithoutPeers(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 2})
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, 2, pol); err != nil {
		t.Fatal(err)
	}
	// Run node 0 alone: node 1 never posts markers, so node 0 must time
	// out rather than hang.
	_, err := RunNode(NodeConfig{
		ID: 0, K: 2, Dir: dir,
		Poll: time.Millisecond, Timeout: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("lone node did not time out")
	}
}

func TestPrepareWritesCompleteLayout(t *testing.T) {
	ds := datagen.UOBM(datagen.UOBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	m, err := Prepare(dir, ds.Dict, ds.Graph, 3, pol)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || len(m.NodesPerPart) != 3 {
		t.Fatal("metrics missing")
	}
	l := Layout{Dir: dir}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(l.PartFile(i)); err != nil {
			t.Errorf("part file %d missing", i)
		}
	}
	for _, p := range []string{l.RulesFile(), l.OwnerFile(), l.MetaFile()} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s missing", p)
		}
	}
	// Rule file must be re-parseable (round trip through Format).
	if _, err := os.ReadFile(l.RulesFile()); err != nil {
		t.Fatal(err)
	}
}

// TestRoundsProgress: a transitive chain cut across nodes needs > 1 round.
func TestRoundsProgress(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	results, _ := runCluster(t, ds, 4, reason.Forward{})
	totalSent := 0
	for _, r := range results {
		totalSent += r.Sent
	}
	if results[0].Rounds < 2 {
		t.Errorf("expected ≥ 2 rounds, got %d", results[0].Rounds)
	}
	if totalSent == 0 {
		t.Error("no tuples exchanged on a partitioned chain dataset")
	}
}

// TestPrepareIsByteStable: two Prepare runs over the same (dataset, seed)
// must lay out byte-identical work directories — the ownership table, part
// files and rule file are run artifacts that checkpoint replay and the chaos
// CI diff both compare. Map iteration order must never leak into them
// (owlvet's mapiter check guards the code path; this pins the bytes).
func TestPrepareIsByteStable(t *testing.T) {
	const k = 3
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		// A fresh dataset per run: internal map layouts differ, bytes must not.
		ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
		if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
			t.Fatal(err)
		}
	}
	l0, l1 := Layout{Dir: dirs[0]}, Layout{Dir: dirs[1]}
	files := [][2]string{
		{l0.OwnerFile(), l1.OwnerFile()},
		{l0.RulesFile(), l1.RulesFile()},
		{l0.MetaFile(), l1.MetaFile()},
	}
	for i := 0; i < k; i++ {
		files = append(files, [2]string{l0.PartFile(i), l1.PartFile(i)})
	}
	for _, pair := range files {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identical Prepare runs (%d vs %d bytes)",
				filepath.Base(pair[0]), len(a), len(b))
		}
	}
}
