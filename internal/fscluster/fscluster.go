// Package fscluster implements the paper's actual deployment shape (§V): a
// cluster of independent OS processes synchronizing through a shared file
// system. The master lays out a work directory — one base-tuple file per
// partition, the compiled rule file, and the resource ownership table — and
// each node process runs Algorithm 3's round loop against it: materialize,
// write outbox files, drop a done-marker, poll for every peer's marker,
// absorb inboxes, repeat; global quiescence (zero tuples sent by anyone in
// a round) terminates the run.
//
// cmd/owlcluster (master) and cmd/owlnode (worker) are thin wrappers; the
// package itself is process-agnostic, so the integration tests run k nodes
// as goroutines against one temp dir — the protocol on disk is identical.
package fscluster

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"powl/internal/ntriples"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

// Layout names the files of a work directory.
type Layout struct {
	Dir string
}

// PartFile is the base-tuple file of node id.
func (l Layout) PartFile(id int) string { return filepath.Join(l.Dir, fmt.Sprintf("part_%02d.nt", id)) }

// RulesFile holds the compiled instance rules.
func (l Layout) RulesFile() string { return filepath.Join(l.Dir, "rules.rules") }

// OwnerFile holds the resource ownership table (term TAB partition).
func (l Layout) OwnerFile() string { return filepath.Join(l.Dir, "owner.tsv") }

// MsgFile is the round-r message file from node i to node j.
func (l Layout) MsgFile(round, from, to int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("msg_r%03d_n%02d_to_n%02d.nt", round, from, to))
}

// MarkerFile is node i's end-of-round marker; its content is the number of
// tuples the node sent this round.
func (l Layout) MarkerFile(round, id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("done_r%03d_n%02d", round, id))
}

// ClosureFile is node i's final output.
func (l Layout) ClosureFile(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("closure_%02d.nt", id))
}

// MetaFile records the cluster size for the nodes.
func (l Layout) MetaFile() string { return filepath.Join(l.Dir, "cluster.meta") }

// Prepare is the master-side step: compile the ontology, partition the
// instance data with the given policy, and write the work directory. It
// returns the partitioning metrics for reporting.
func Prepare(dir string, dict *rdf.Dict, g *rdf.Graph, k int, pol partition.Policy) (*partition.Metrics, error) {
	l := Layout{Dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	compiled := owlhorst.Compile(dict, g)
	in := &partition.Input{
		Dict:     dict,
		Instance: owlhorst.SplitInstance(dict, g),
		Skip:     owlhorst.SchemaElements(dict, compiled.Schema),
	}
	pres, err := partition.Partition(in, k, pol)
	if err != nil {
		return nil, err
	}
	m := partition.ComputeMetrics(in, pres)

	// Base-tuple files: each node's slice plus the replicated schema.
	schema := compiled.Schema.Triples()
	for i := 0; i < k; i++ {
		pg := rdf.NewGraphCap(len(pres.Parts[i]) + len(schema))
		pg.AddAll(pres.Parts[i])
		pg.AddAll(schema)
		if err := writeGraphFile(l.PartFile(i), dict, pg); err != nil {
			return nil, err
		}
	}

	// Rule file, in the parseable Jena-style syntax.
	var rb strings.Builder
	for _, r := range compiled.InstanceRules {
		rb.WriteString(r.Format(dict))
		rb.WriteByte('\n')
	}
	if err := os.WriteFile(l.RulesFile(), []byte(rb.String()), 0o644); err != nil {
		return nil, err
	}

	// Ownership table.
	var ob strings.Builder
	for id, p := range pres.Owner {
		ob.WriteString(dict.Term(id).String())
		ob.WriteByte('\t')
		ob.WriteString(strconv.Itoa(p))
		ob.WriteByte('\n')
	}
	if err := os.WriteFile(l.OwnerFile(), []byte(ob.String()), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(l.MetaFile(), []byte(strconv.Itoa(k)+"\n"), 0o644); err != nil {
		return nil, err
	}
	return &m, nil
}

// ClusterSize reads k from the work directory.
func ClusterSize(dir string) (int, error) {
	b, err := os.ReadFile(Layout{Dir: dir}.MetaFile())
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}

// NodeConfig configures one node process.
type NodeConfig struct {
	ID int
	K  int
	// Dir is the shared work directory.
	Dir string
	// Engine defaults to the forward engine.
	Engine reason.Engine
	// Poll is the marker-polling interval; 0 means 20ms.
	Poll time.Duration
	// Timeout bounds the wait for peers per round; 0 means 5 minutes.
	Timeout time.Duration
	// MaxRounds is a safety cap; 0 means 1000.
	MaxRounds int
}

// NodeResult reports one node's run.
type NodeResult struct {
	Rounds  int
	Derived int
	Sent    int
	// Closure is the node's final local graph (also written to disk).
	Closure *rdf.Graph
}

// RunNode executes Algorithm 3's round loop for one node against the shared
// directory, writing its closure file before returning.
func RunNode(cfg NodeConfig) (*NodeResult, error) {
	if cfg.Engine == nil {
		cfg.Engine = reason.Forward{}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1000
	}
	l := Layout{Dir: cfg.Dir}
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	if err := readGraphFile(l.PartFile(cfg.ID), dict, g); err != nil {
		return nil, fmt.Errorf("fscluster: node %d: %w", cfg.ID, err)
	}
	ruleSrc, err := os.ReadFile(l.RulesFile())
	if err != nil {
		return nil, err
	}
	rs, err := rules.Parse(string(ruleSrc), dict)
	if err != nil {
		return nil, fmt.Errorf("fscluster: node %d: rules: %w", cfg.ID, err)
	}
	owner, err := readOwnerTable(l.OwnerFile(), dict)
	if err != nil {
		return nil, fmt.Errorf("fscluster: node %d: %w", cfg.ID, err)
	}

	res := &NodeResult{}
	sent := make(map[rdf.Triple]struct{}, g.Len())
	for _, t := range g.Triples() {
		sent[t] = struct{}{}
	}
	var received []rdf.Triple
	materialized := false

	for round := 0; round < cfg.MaxRounds; round++ {
		res.Rounds = round + 1

		// Reason.
		switch {
		case !materialized:
			res.Derived += cfg.Engine.Materialize(g, rs)
			materialized = true
		case len(received) == 0:
			// Still at fixpoint.
		default:
			if inc, ok := cfg.Engine.(reason.Incremental); ok {
				res.Derived += inc.MaterializeFrom(g, rs, received)
			} else {
				res.Derived += cfg.Engine.Materialize(g, rs)
			}
		}
		received = received[:0]

		// Route: collect per-destination outboxes.
		outbox := map[int][]rdf.Triple{}
		nSent := 0
		for _, t := range g.Triples() {
			if _, done := sent[t]; done {
				continue
			}
			sent[t] = struct{}{}
			for _, dst := range destinations(owner, t, cfg.ID) {
				outbox[dst] = append(outbox[dst], t)
				nSent++
			}
		}
		for dst, ts := range outbox {
			og := rdf.NewGraphCap(len(ts))
			og.AddAll(ts)
			if err := writeGraphFile(l.MsgFile(round, cfg.ID, dst), dict, og); err != nil {
				return nil, err
			}
		}
		res.Sent += nSent

		// Done marker with the sent count, then the shared-FS barrier: poll
		// until every peer's marker for this round exists.
		if err := writeAtomic(l.MarkerFile(round, cfg.ID), strconv.Itoa(nSent)); err != nil {
			return nil, err
		}
		totalSent, err := awaitMarkers(l, round, cfg)
		if err != nil {
			return nil, err
		}

		// Absorb inboxes.
		for from := 0; from < cfg.K; from++ {
			if from == cfg.ID {
				continue
			}
			path := l.MsgFile(round, from, cfg.ID)
			if _, statErr := os.Stat(path); statErr != nil {
				continue // peer sent nothing to us this round
			}
			in := rdf.NewGraph()
			if err := readGraphFile(path, dict, in); err != nil {
				return nil, err
			}
			for _, t := range in.Triples() {
				sent[t] = struct{}{}
				if g.Add(t) {
					received = append(received, t)
				}
			}
		}

		if totalSent == 0 {
			break
		}
	}

	if err := writeGraphFile(l.ClosureFile(cfg.ID), dict, g); err != nil {
		return nil, err
	}
	res.Closure = g
	return res, nil
}

// awaitMarkers polls for all k markers of the round and returns the summed
// sent counts.
func awaitMarkers(l Layout, round int, cfg NodeConfig) (int, error) {
	deadline := time.Now().Add(cfg.Timeout)
	for {
		total := 0
		missing := false
		for i := 0; i < cfg.K; i++ {
			b, err := os.ReadFile(l.MarkerFile(round, i))
			if err != nil {
				missing = true
				break
			}
			n, err := strconv.Atoi(strings.TrimSpace(string(b)))
			if err != nil {
				return 0, fmt.Errorf("fscluster: bad marker %s: %w", l.MarkerFile(round, i), err)
			}
			total += n
		}
		if !missing {
			return total, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("fscluster: node %d: timed out waiting for round %d markers", cfg.ID, round)
		}
		time.Sleep(cfg.Poll)
	}
}

// destinations routes a derived tuple to the owners of its subject and
// object (§IV); unowned (schema) endpoints route nowhere.
func destinations(owner map[rdf.ID]int, t rdf.Triple, self int) []int {
	var out []int
	if p, ok := owner[t.S]; ok && p != self {
		out = append(out, p)
	}
	if q, ok := owner[t.O]; ok && q != self && (len(out) == 0 || out[0] != q) {
		out = append(out, q)
	}
	return out
}

// MergeClosures unions the k closure files into one graph.
func MergeClosures(dir string, k int) (*rdf.Dict, *rdf.Graph, error) {
	l := Layout{Dir: dir}
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	for i := 0; i < k; i++ {
		if err := readGraphFile(l.ClosureFile(i), dict, g); err != nil {
			return nil, nil, err
		}
	}
	return dict, g, nil
}

func readOwnerTable(path string, dict *rdf.Dict) (map[rdf.ID]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	owner := map[rdf.ID]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		tab := strings.LastIndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("owner table line %d: no tab", lineNo)
		}
		term, err := ntriples.ParseTerm(line[:tab])
		if err != nil {
			return nil, fmt.Errorf("owner table line %d: %w", lineNo, err)
		}
		p, err := strconv.Atoi(line[tab+1:])
		if err != nil {
			return nil, fmt.Errorf("owner table line %d: %w", lineNo, err)
		}
		owner[dict.Intern(term)] = p
	}
	return owner, sc.Err()
}

func writeGraphFile(path string, dict *rdf.Dict, g *rdf.Graph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ntriples.WriteGraph(f, dict, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readGraphFile(path string, dict *rdf.Dict, g *rdf.Graph) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ntriples.ReadGraph(bufio.NewReader(f), dict, g)
	return err
}
