// Package fscluster implements the paper's actual deployment shape (§V): a
// cluster of independent OS processes synchronizing through a shared file
// system. The master lays out a work directory — one base-tuple file per
// partition, the compiled rule file, and the resource ownership table — and
// each node process runs Algorithm 3's round loop against it: materialize,
// write outbox files, drop a done-marker, poll for every peer's marker,
// absorb inboxes, repeat; global quiescence (zero tuples sent by anyone in
// a round) terminates the run.
//
// cmd/owlcluster (master) and cmd/owlnode (worker) are thin wrappers; the
// package itself is process-agnostic, so the integration tests run k nodes
// as goroutines against one temp dir — the protocol on disk is identical.
package fscluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"powl/internal/faultinject"
	"powl/internal/ntriples"
	"powl/internal/obs"
	"powl/internal/owlhorst"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
	"powl/internal/rules"
)

// Layout names the files of a work directory.
type Layout struct {
	Dir string
}

// PartFile is the base-tuple file of node id.
func (l Layout) PartFile(id int) string { return filepath.Join(l.Dir, fmt.Sprintf("part_%02d.nt", id)) }

// RulesFile holds the compiled instance rules.
func (l Layout) RulesFile() string { return filepath.Join(l.Dir, "rules.rules") }

// OwnerFile holds the resource ownership table (term TAB partition).
func (l Layout) OwnerFile() string { return filepath.Join(l.Dir, "owner.tsv") }

// MsgFile is the round-r message file from node i to node j.
func (l Layout) MsgFile(round, from, to int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("msg_r%03d_n%02d_to_n%02d.nt", round, from, to))
}

// LinMsgFile is the lineage sidecar of MsgFile(round, from, to): derivation
// records (JSON Lines, ntriples lineage codec) for the derived tuples of
// that message, written only when the sender runs with provenance on. The
// .jsonl suffix keeps sidecars out of every *.nt glob.
func (l Layout) LinMsgFile(round, from, to int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("msg_r%03d_n%02d_to_n%02d.lin.jsonl", round, from, to))
}

// LinCkptFile is the lineage sidecar of CkptFile(round, id).
func (l Layout) LinCkptFile(round, id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r%03d_n%02d.lin.jsonl", round, id))
}

// DelCkptFile is the tombstone sidecar of node id's round-r checkpoint: the
// node's cumulative deleted-triple set as plain N-Triples. Adopters and
// rejoining nodes replay the newest one after reconstructing the tuple
// files, so deletions survive a crash the way derivations do. The extra
// .del segment keeps it out of the `ckpt_r*_nNN.nt` checkpoint glob.
func (l Layout) DelCkptFile(round, id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r%03d_n%02d.del.nt", round, id))
}

// delCkptGlob matches all of node i's tombstone sidecars.
func (l Layout) delCkptGlob(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r*_n%02d.del.nt", id))
}

// linMsgGlob matches all lineage sidecars of messages addressed to node i.
func (l Layout) linMsgGlob(to int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("msg_r*_n*_to_n%02d.lin.jsonl", to))
}

// linCkptGlob matches all of node i's checkpoint lineage sidecars.
func (l Layout) linCkptGlob(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r*_n%02d.lin.jsonl", id))
}

// MarkerFile is node i's end-of-round marker; its content is the number of
// tuples the node sent this round.
func (l Layout) MarkerFile(round, id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("done_r%03d_n%02d", round, id))
}

// ClosureFile is node i's final output.
func (l Layout) ClosureFile(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("closure_%02d.nt", id))
}

// CkptFile is node i's round-r checkpoint: the tuples the node derived that
// round (its routing delta). Together with the base partition and the message
// files addressed to i, the checkpoints reconstruct i's graph after any
// completed round — the recovery path relies on exactly that.
func (l Layout) CkptFile(round, id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r%03d_n%02d.nt", round, id))
}

// JournalFile is node i's telemetry journal fragment, written when the node
// runs with observability on; the master merges the fragments into one
// timeline for trace export and reporting.
func (l Layout) JournalFile(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("journal_n%02d.jsonl", id))
}

// DeadFile marks node i as failed; its content is the adopter's id. Written
// by the supervisor, honoured by every node's barrier wait.
func (l Layout) DeadFile(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("dead_n%02d", id))
}

// EpochFile counts node i's starts against this work directory; a value
// above 1 on startup means the node is rejoining a run already in progress.
func (l Layout) EpochFile(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("epoch_n%02d", id))
}

// ckptGlob matches all of node i's checkpoint files.
func (l Layout) ckptGlob(id int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("ckpt_r*_n%02d.nt", id))
}

// msgGlob matches all message files addressed to node i.
func (l Layout) msgGlob(to int) string {
	return filepath.Join(l.Dir, fmt.Sprintf("msg_r*_n*_to_n%02d.nt", to))
}

// MetaFile records the cluster size for the nodes.
func (l Layout) MetaFile() string { return filepath.Join(l.Dir, "cluster.meta") }

// Prepare is the master-side step: compile the ontology, partition the
// instance data with the given policy, and write the work directory. It
// returns the partitioning metrics for reporting.
func Prepare(dir string, dict *rdf.Dict, g *rdf.Graph, k int, pol partition.Policy) (*partition.Metrics, error) {
	l := Layout{Dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	compiled := owlhorst.Compile(dict, g)
	in := &partition.Input{
		Dict:     dict,
		Instance: owlhorst.SplitInstance(dict, g),
		Skip:     owlhorst.SchemaElements(dict, compiled.Schema),
	}
	pres, err := partition.Partition(in, k, pol)
	if err != nil {
		return nil, err
	}
	m := partition.ComputeMetrics(in, pres)

	// Base-tuple files: each node's slice plus the replicated schema.
	schema := compiled.Schema.Triples()
	for i := 0; i < k; i++ {
		pg := rdf.NewGraphCap(len(pres.Parts[i]) + len(schema))
		pg.AddAll(pres.Parts[i])
		pg.AddAll(schema)
		if err := writeGraphFile(l.PartFile(i), dict, pg); err != nil {
			return nil, err
		}
	}

	// Rule file, in the parseable Jena-style syntax.
	var rb strings.Builder
	for _, r := range compiled.InstanceRules {
		rb.WriteString(r.Format(dict))
		rb.WriteByte('\n')
	}
	if err := os.WriteFile(l.RulesFile(), []byte(rb.String()), 0o644); err != nil {
		return nil, err
	}

	// Ownership table, in ascending resource-ID order so the file is
	// byte-stable across runs of the same (input, seed) — map order would
	// reshuffle it every run.
	ids := make([]rdf.ID, 0, len(pres.Owner))
	for id := range pres.Owner {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var ob strings.Builder
	for _, id := range ids {
		ob.WriteString(dict.Term(id).String())
		ob.WriteByte('\t')
		ob.WriteString(strconv.Itoa(pres.Owner[id]))
		ob.WriteByte('\n')
	}
	if err := os.WriteFile(l.OwnerFile(), []byte(ob.String()), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(l.MetaFile(), []byte(strconv.Itoa(k)+"\n"), 0o644); err != nil {
		return nil, err
	}
	return &m, nil
}

// ClusterSize reads k from the work directory.
func ClusterSize(dir string) (int, error) {
	b, err := os.ReadFile(Layout{Dir: dir}.MetaFile())
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}

// NodeConfig configures one node process.
type NodeConfig struct {
	ID int
	K  int
	// Dir is the shared work directory.
	Dir string
	// Engine defaults to the forward engine.
	Engine reason.Engine
	// Poll is the marker-polling interval; 0 means 20ms.
	Poll time.Duration
	// Timeout bounds the wait for peers per round; 0 means 5 minutes.
	Timeout time.Duration
	// MaxRounds is a safety cap; 0 means 1000.
	MaxRounds int
	// Inject optionally simulates failures: when its CrashRound fires the
	// node exits with ErrCrashed mid-protocol, exactly as a killed process
	// would look to its peers. Nil means no injection.
	Inject *faultinject.Injector
	// Obs, when non-nil, journals this node's run: phase spans per round,
	// checkpoint sizes, injected faults, adoptions, and per-rule profiles.
	// Each node process journals on its own clock (ns since its own start);
	// cmd/owlcluster merges the per-node fragments into one timeline.
	Obs *obs.Run
	// Provenance enables derivation recording on this node's graph: the
	// engine records rule + premises per derived tuple, and message and
	// checkpoint files get JSONL lineage sidecars so receivers, adopters
	// and rejoining nodes keep the records. Nodes running without it simply
	// ignore the sidecars; the closure is unaffected.
	Provenance bool
}

// ErrCrashed is returned by a node whose fault injector fired its crash
// trigger; the node stops without writing its round marker.
var ErrCrashed = errors.New("fscluster: node crashed (fault injection)")

// NodeResult reports one node's run.
type NodeResult struct {
	Rounds  int
	Derived int
	Sent    int
	// Epoch is this start's 1-based count against the work directory; a
	// value above 1 means the node rejoined a run already in progress.
	Epoch int
	// StartRound is the round the node (re)entered the loop at: 0 on a
	// fresh start, last-completed-round+1 on a rejoin.
	StartRound int
	// Closure is the node's final local graph (also written to disk).
	Closure *rdf.Graph
}

// node is one running worker's in-memory state, shared by the round loop and
// the recovery path in recover.go.
type node struct {
	cfg   NodeConfig
	l     Layout
	dict  *rdf.Dict
	g     *rdf.Graph
	rules []rules.Rule
	owner map[rdf.ID]int
	// shipped is the graph-log watermark of routed knowledge: every triple
	// at log offset < shipped is base, already routed, or received (global
	// knowledge). The graph log is append-only and deduplicated, so the
	// route phase's delta is exactly TriplesSince(shipped) — no per-tuple
	// membership map, no full-graph walk per round.
	shipped int
	// reship holds adopted checkpoint tuples that sit below the watermark
	// but still need routing: a dead peer may have derived them without
	// completing its sends, so the adopter re-routes them (receivers
	// deduplicate). Empty except after an adoption or rejoin.
	reship   map[rdf.Triple]struct{}
	received []rdf.Triple
	// adopted lists dead peers this node has taken over (recover.go).
	adopted []int
	res     *NodeResult
}

// RunNode executes Algorithm 3's round loop for one node against the shared
// directory, writing its closure file before returning.
func RunNode(cfg NodeConfig) (*NodeResult, error) {
	return RunNodeContext(context.Background(), cfg)
}

// RunNodeContext is RunNode with cancellation: the context is checked each
// round, passed to the engine's fixpoint loop, and honoured by the barrier
// poll, so a cancelled node stops within one round phase.
//
//powl:ignore wallclock per-phase durations are real measurements journaled per node; the shared-FS deployment has no simulated mode.
func RunNodeContext(ctx context.Context, cfg NodeConfig) (*NodeResult, error) {
	if cfg.Engine == nil {
		cfg.Engine = reason.Forward{}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1000
	}
	n := &node{cfg: cfg, l: Layout{Dir: cfg.Dir}, dict: rdf.NewDict(),
		g: rdf.NewGraph(), res: &NodeResult{}}
	if cfg.Provenance {
		// Enable before the base load so the side-column is built in
		// lockstep; base tuples read as asserted.
		n.g.EnableProv()
	}
	if err := readGraphFile(n.l.PartFile(cfg.ID), n.dict, n.g); err != nil {
		return nil, fmt.Errorf("fscluster: node %d: %w", cfg.ID, err)
	}
	ruleSrc, err := os.ReadFile(n.l.RulesFile())
	if err != nil {
		return nil, err
	}
	if n.rules, err = rules.Parse(string(ruleSrc), n.dict); err != nil {
		return nil, fmt.Errorf("fscluster: node %d: rules: %w", cfg.ID, err)
	}
	if n.owner, err = readOwnerTable(n.l.OwnerFile(), n.dict); err != nil {
		return nil, fmt.Errorf("fscluster: node %d: %w", cfg.ID, err)
	}

	// The base partition was placed by the partitioner; it never routes.
	n.shipped = n.g.Len()
	n.reship = map[rdf.Triple]struct{}{}

	// Epoch bookkeeping: bump the start counter first thing, so a restarted
	// process announces itself before touching any round state. A second
	// start against the same work directory is a rejoin.
	epoch, err := readEpoch(n.l, cfg.ID)
	if err != nil {
		return nil, fmt.Errorf("fscluster: node %d: %w", cfg.ID, err)
	}
	epoch++
	if err := writeAtomic(n.l.EpochFile(cfg.ID), strconv.Itoa(epoch)); err != nil {
		return nil, err
	}
	n.res.Epoch = epoch

	startRound := 0
	if epoch > 1 {
		// A supervisor may already have declared this node dead, in which
		// case an adopter owns the partition now; coming back anyway would
		// put two nodes behind one inbox.
		if adopter, dead := readDeadFile(n.l, cfg.ID); dead {
			return nil, fmt.Errorf("fscluster: node %d: declared dead (partition adopted by node %d); cannot rejoin", cfg.ID, adopter)
		}
		last, err := lastCompletedRound(n.l, cfg.ID)
		if err != nil {
			return nil, err
		}
		if last >= 0 {
			// Replay persisted state: delivered messages are already-routed
			// knowledge and land below the shipping watermark; checkpointed
			// deltas may have died in transit, so they are queued for
			// re-shipping (receivers deduplicate). materialized stays
			// false — the first round after a rejoin re-reasons over the
			// reconstructed graph, which is safe because forward inference is
			// deterministic and monotone over the same inputs.
			linMap, err := loadLineageSidecars(n.l, cfg.ID, n.dict, n.g, cfg.Obs, cfg.ID, last)
			if err != nil {
				return nil, fmt.Errorf("fscluster: node %d rejoining lineage: %w", cfg.ID, err)
			}
			add := func(t rdf.Triple) bool {
				if lin, ok := linMap[t]; ok {
					return n.g.AddWithLineage(t, lin)
				}
				return n.g.Add(t)
			}
			if err := reconstruct(n.l, cfg.ID, n.dict, nil, func(t rdf.Triple, routed bool) {
				if routed {
					add(t)
					delete(n.reship, t)
					return
				}
				if add(t) {
					n.reship[t] = struct{}{}
				}
			}); err != nil {
				return nil, fmt.Errorf("fscluster: node %d rejoining: %w", cfg.ID, err)
			}
			// Deletions last: the tuple replay above re-adds every triple the
			// node ever knew, live or not, and the newest tombstone sidecar
			// re-kills the dead ones.
			if err := n.applyDeletions(cfg.ID, last+1); err != nil {
				return nil, fmt.Errorf("fscluster: node %d rejoining deletions: %w", cfg.ID, err)
			}
			n.shipped = n.g.Len()
			startRound = last + 1
		}
		cfg.Obs.Emit(obs.Event{Type: obs.EvRejoin, TS: cfg.Obs.Now(),
			Worker: cfg.ID, Round: startRound, N: int64(epoch)})
	}
	n.res.StartRound = startRound

	materialized := false
	// With Obs nil the collector is nil and ctx is returned unchanged.
	ctx = obs.ContextWithRules(ctx, cfg.Obs.Rules(cfg.ID))

	for round := startRound; round < cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.Inject.Crash(round) {
			cfg.Obs.Emit(obs.Event{Type: obs.EvFault, TS: cfg.Obs.Now(),
				Worker: cfg.ID, Round: round, Name: "injected crash"})
			return nil, ErrCrashed
		}
		n.res.Rounds = round + 1

		// Reason.
		reasonT0 := time.Now()
		switch {
		case !materialized:
			d, err := reason.MaterializeCtx(ctx, cfg.Engine, n.g, n.rules)
			if err != nil {
				return nil, err
			}
			n.res.Derived += d
			materialized = true
		case len(n.received) == 0:
			// Still at fixpoint.
		default:
			var d int
			if inc, ok := cfg.Engine.(reason.Incremental); ok {
				d, err = reason.MaterializeFromCtx(ctx, inc, n.g, n.rules, n.received)
			} else {
				d, err = reason.MaterializeCtx(ctx, cfg.Engine, n.g, n.rules)
			}
			if err != nil {
				return nil, err
			}
			n.res.Derived += d
		}
		n.received = n.received[:0]
		n.emitPhase(round, obs.PhaseReason, time.Since(reasonT0), 0)

		// Route: collect per-destination outboxes. The routing delta — every
		// tuple new since the last route — is also this round's checkpoint:
		// base partition + checkpoints + delivered messages reconstruct this
		// node's graph if it dies later (recover.go).
		sendT0 := time.Now()
		outbox := map[int][]rdf.Triple{}
		var delta []rdf.Triple
		nSent := 0
		route := func(t rdf.Triple) {
			delta = append(delta, t)
			for _, dst := range destinations(n.owner, t, cfg.ID) {
				if n.isAdopted(dst) {
					continue // we are that node now; the tuple is already local
				}
				outbox[dst] = append(outbox[dst], t)
				nSent++
			}
		}
		for _, t := range n.g.TriplesSince(n.shipped) {
			route(t)
		}
		n.shipped = n.g.Len()
		if len(n.reship) > 0 {
			// Adopted checkpoint tuples, in sorted order: the injected fault
			// schedule counts Send calls, so map order would change which
			// write a deterministic fault hits from run to run.
			rs := make([]rdf.Triple, 0, len(n.reship))
			for t := range n.reship {
				rs = append(rs, t)
			}
			sort.Slice(rs, func(i, j int) bool { return rs[i].Less(rs[j]) })
			for _, t := range rs {
				route(t)
			}
			clear(n.reship)
		}
		if len(delta) > 0 {
			cg := rdf.NewGraphCap(len(delta))
			cg.AddAll(delta)
			ckpt := n.l.CkptFile(round, cfg.ID)
			if err := writeGraphFile(ckpt, n.dict, cg); err != nil {
				return nil, err
			}
			// Lineage sidecar before the marker, like the checkpoint itself:
			// an adopter must never see a checkpoint whose sidecar is still
			// in flight (both are atomically renamed; a crash between the two
			// just degrades that delta to lineage-free replay).
			if err := writeLineageFile(n.l.LinCkptFile(round, cfg.ID), n.dict, lineageOfAll(n.g, delta)); err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				var size int64
				if fi, err := os.Stat(ckpt); err == nil {
					size = fi.Size()
				}
				cfg.Obs.Emit(obs.Event{Type: obs.EvCheckpoint, TS: cfg.Obs.Now(),
					Worker: cfg.ID, Round: round, N: int64(len(delta)), Bytes: size})
			}
		}
		// Tombstone sidecar, before the marker like the checkpoint: the set
		// is cumulative (the log never reuses offsets), so only the newest
		// sidecar matters to a future adopter or rejoin.
		if n.g.Dead() > 0 {
			if err := writeDelSidecar(n.l, round, cfg.ID, n.dict, n.g); err != nil {
				return nil, err
			}
		}
		// Ascending destination order: the injected fault schedule counts
		// Send calls, so map order would change which destination a
		// deterministic fault hits from run to run.
		dsts := make([]int, 0, len(outbox))
		for dst := range outbox {
			dsts = append(dsts, dst)
		}
		sort.Ints(dsts)
		for _, dst := range dsts {
			ts := outbox[dst]
			// An injected send fault is a node failure here: there is no
			// transport to retry through, so the node fail-stops and the
			// recovery path takes over.
			if err := cfg.Inject.Send(); err != nil {
				return nil, err
			}
			og := rdf.NewGraphCap(len(ts))
			og.AddAll(ts)
			msg := n.l.MsgFile(round, cfg.ID, dst)
			if err := writeGraphFile(msg, n.dict, og); err != nil {
				return nil, err
			}
			if err := writeLineageFile(n.l.LinMsgFile(round, cfg.ID, dst), n.dict, lineageOfAll(n.g, ts)); err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				var size int64
				if fi, err := os.Stat(msg); err == nil {
					size = fi.Size()
				}
				cfg.Obs.Transport().Batch(cfg.ID, dst, len(ts), size)
			}
		}
		n.res.Sent += nSent

		// Done marker with the sent count, then the shared-FS barrier: poll
		// until every peer's marker for this round exists. Markers for peers
		// adopted in earlier rounds are this node's to write.
		if err := writeAtomic(n.l.MarkerFile(round, cfg.ID), strconv.Itoa(nSent)); err != nil {
			return nil, err
		}
		for _, d := range n.adopted {
			if err := writeAtomic(n.l.MarkerFile(round, d), "0"); err != nil {
				return nil, err
			}
		}
		n.emitPhase(round, obs.PhaseSend, time.Since(sendT0), int64(nSent))

		syncT0 := time.Now()
		totalSent, err := n.awaitMarkers(ctx, round)
		if err != nil {
			return nil, err
		}
		n.emitPhase(round, obs.PhaseSync, time.Since(syncT0), 0)

		// Absorb inboxes — our own plus those of any adopted peers, whose
		// owned resources the rest of the cluster still routes to.
		recvT0 := time.Now()
		inboxes := append([]int{cfg.ID}, n.adopted...)
		for from := 0; from < cfg.K; from++ {
			for _, to := range inboxes {
				if from == to {
					continue
				}
				path := n.l.MsgFile(round, from, to)
				if _, statErr := os.Stat(path); statErr != nil {
					continue // peer sent nothing to this inbox this round
				}
				if err := cfg.Inject.Recv(); err != nil {
					return nil, err
				}
				in := rdf.NewGraph()
				if err := readGraphFile(path, n.dict, in); err != nil {
					return nil, err
				}
				// Sidecar lineage for the message, when this node records
				// provenance and the sender wrote one. Records match triples
				// by value; a missing sidecar (lineage-free sender, or a
				// crash between message and sidecar) degrades the batch to
				// asserted tuples, and that decision is journaled — prov-on
				// senders always write the sidecar, so absence is never the
				// benign all-asserted case.
				var linMap map[rdf.Triple]rdf.Lineage
				if n.g.Prov() != nil {
					linPath := n.l.LinMsgFile(round, from, to)
					if _, statErr := os.Stat(linPath); statErr != nil {
						if in.Len() > 0 {
							o := n.cfg.Obs
							o.Emit(obs.Event{Type: obs.EvWarn, TS: o.Now(), Worker: to, Round: round,
								Name: fmt.Sprintf("lineage sidecar missing for message %d->%d; batch of %d degraded to asserted tuples", from, to, in.Len())})
						}
					} else {
						lins, lerr := readLineageFile(linPath, n.dict)
						if lerr != nil {
							return nil, lerr
						}
						linMap = lineageByTriple(lins)
					}
				}
				for _, t := range in.TriplesSince(0) {
					delete(n.reship, t)
					added := false
					if lin, ok := linMap[t]; ok {
						added = n.g.AddWithLineage(t, lin)
					} else {
						added = n.g.Add(t)
					}
					if added {
						n.received = append(n.received, t)
					}
				}
			}
		}
		// Everything in the graph is now global knowledge — received tuples,
		// and any state an adoption merged during the barrier wait; only the
		// reship queue carries adopted checkpoint tuples into the next route
		// phase.
		n.shipped = n.g.Len()
		n.emitPhase(round, obs.PhaseRecv, time.Since(recvT0), int64(len(n.received)))

		if totalSent == 0 {
			break
		}
	}

	if err := writeGraphFile(n.l.ClosureFile(cfg.ID), n.dict, n.g); err != nil {
		return nil, err
	}
	cfg.Obs.FlushProfiles(cfg.Obs.Now())
	n.res.Closure = n.g
	return n.res, nil
}

// emitPhase journals one completed phase slice on this node's clock; the
// start is reconstructed by subtracting the measured duration. No-op with
// observability off.
func (n *node) emitPhase(round int, phase string, d time.Duration, count int64) {
	o := n.cfg.Obs
	o.Emit(obs.Event{Type: obs.EvPhase, TS: o.Now() - int64(d), Dur: int64(d),
		Worker: n.cfg.ID, Round: round, Phase: phase, N: count})
}

// isAdopted reports whether this node has taken over peer id.
func (n *node) isAdopted(id int) bool {
	for _, d := range n.adopted {
		if d == id {
			return true
		}
	}
	return false
}

// awaitMarkers polls for all k markers of the round and returns the summed
// sent counts. A peer whose marker is missing but whose dead-file names this
// node as adopter is taken over on the spot (recover.go); its marker then
// appears and the barrier completes for everyone.
//
//powl:ignore wallclock the shared-FS barrier polls against a real deadline — liveness, not output.
func (n *node) awaitMarkers(ctx context.Context, round int) (int, error) {
	l, cfg := n.l, n.cfg
	deadline := time.Now().Add(cfg.Timeout)
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total := 0
		missing := false
		for i := 0; i < cfg.K; i++ {
			b, err := os.ReadFile(l.MarkerFile(round, i))
			if err != nil {
				if adopter, dead := readDeadFile(l, i); dead && adopter == cfg.ID && !n.isAdopted(i) {
					if aerr := n.adopt(i, round); aerr != nil {
						return 0, aerr
					}
					// The adoption wrote i's marker; re-read it next pass.
				}
				missing = true
				break
			}
			v, err := strconv.Atoi(strings.TrimSpace(string(b)))
			if err != nil {
				return 0, fmt.Errorf("fscluster: bad marker %s: %w", l.MarkerFile(round, i), err)
			}
			total += v
		}
		if !missing {
			return total, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("fscluster: node %d: timed out waiting for round %d markers", cfg.ID, round)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(cfg.Poll):
		}
	}
}

// destinations routes a derived tuple to the owners of its subject and
// object (§IV); unowned (schema) endpoints route nowhere.
func destinations(owner map[rdf.ID]int, t rdf.Triple, self int) []int {
	var out []int
	if p, ok := owner[t.S]; ok && p != self {
		out = append(out, p)
	}
	if q, ok := owner[t.O]; ok && q != self && (len(out) == 0 || out[0] != q) {
		out = append(out, q)
	}
	return out
}

// MergeClosures unions the k closure files into one graph. A node declared
// dead has no closure file; its contribution is reconstructed from its base
// partition, checkpoints, and delivered messages (everything it knew at its
// last completed round — any later derivations were redone by its adopter,
// whose closure file is merged normally).
func MergeClosures(dir string, k int) (*rdf.Dict, *rdf.Graph, error) {
	l := Layout{Dir: dir}
	dict := rdf.NewDict()
	g := rdf.NewGraph()
	for i := 0; i < k; i++ {
		err := readGraphFile(l.ClosureFile(i), dict, g)
		if err == nil {
			continue
		}
		if _, dead := readDeadFile(l, i); !dead {
			return nil, nil, err
		}
		if err := reconstruct(l, i, dict, g, nil); err != nil {
			return nil, nil, fmt.Errorf("fscluster: reconstructing dead node %d: %w", i, err)
		}
	}
	return dict, g, nil
}

func readOwnerTable(path string, dict *rdf.Dict) (map[rdf.ID]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	owner := map[rdf.ID]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		tab := strings.LastIndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("owner table line %d: no tab", lineNo)
		}
		term, err := ntriples.ParseTerm(line[:tab])
		if err != nil {
			return nil, fmt.Errorf("owner table line %d: %w", lineNo, err)
		}
		p, err := strconv.Atoi(line[tab+1:])
		if err != nil {
			return nil, fmt.Errorf("owner table line %d: %w", lineNo, err)
		}
		owner[dict.Intern(term)] = p
	}
	return owner, sc.Err()
}

func writeGraphFile(path string, dict *rdf.Dict, g *rdf.Graph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ntriples.WriteGraph(f, dict, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readGraphFile(path string, dict *rdf.Dict, g *rdf.Graph) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ntriples.ReadGraph(bufio.NewReader(f), dict, g)
	return err
}

// writeLineageFile writes a JSONL lineage sidecar next to a graph file,
// atomically like writeGraphFile. An empty record set writes nothing: readers
// treat a missing sidecar as lineage-free.
func writeLineageFile(path string, dict *rdf.Dict, lins []rdf.Lineage) error {
	// nil means "sender records no provenance" and writes nothing; an empty
	// non-nil set still writes the (empty) sidecar so receivers can tell a
	// recordless batch from a missing file.
	if lins == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := ntriples.WriteLineage(&buf, dict, lins); err != nil {
		return err
	}
	return writeAtomic(path, buf.String())
}

// readLineageFile reads a JSONL lineage sidecar; a missing file is not an
// error (the writer had no derivations to describe, or predates provenance).
func readLineageFile(path string, dict *rdf.Dict) ([]rdf.Lineage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ntriples.ReadLineage(bufio.NewReader(f), dict)
}

// writeDelSidecar persists g's cumulative tombstone set as the round's
// deletion sidecar; no tombstones writes nothing (readers treat a missing
// sidecar as deletion-free, mirroring the lineage rule).
func writeDelSidecar(l Layout, round, id int, dict *rdf.Dict, g *rdf.Graph) error {
	dead := g.DeadTriples()
	if len(dead) == 0 {
		return nil
	}
	dg := rdf.NewGraphCap(len(dead))
	dg.AddAll(dead)
	return writeGraphFile(l.DelCkptFile(round, id), dict, dg)
}

// sidecarRound parses the round number out of a ckpt_rNNN_* path, -1 when
// the name does not carry one.
func sidecarRound(path string) int {
	var r int
	if _, err := fmt.Sscanf(filepath.Base(path), "ckpt_r%03d_", &r); err != nil {
		return -1
	}
	return r
}

// applyDelSidecars replays node id's newest tombstone sidecar into g and
// returns how many triples it deleted. Degradation mirrors the lineage
// sidecar rule: a node that never wrote one replays deletion-free with no
// fuss, while a sidecar that is unreadable — or provably missing for the
// newest checkpointed round (crash between checkpoint and sidecar) —
// degrades to the best available set with a journaled warning.
func applyDelSidecars(l Layout, id int, dict *rdf.Dict, g *rdf.Graph, o *obs.Run, worker, round int) (int, error) {
	dels, err := filepath.Glob(l.delCkptGlob(id))
	if err != nil {
		return 0, err
	}
	if len(dels) == 0 {
		return 0, nil
	}
	sort.Strings(dels) // %03d rounds: lexicographic order is round order
	newest := dels[len(dels)-1]
	warn := func(msg string) {
		o.Emit(obs.Event{Type: obs.EvWarn, TS: o.Now(), Worker: worker, Round: round, Name: msg})
	}
	ckpts, err := filepath.Glob(l.ckptGlob(id))
	if err != nil {
		// Freshness cannot be verified; the replay below still proceeds on
		// the newest tombstone sidecar, so say so rather than guess silently.
		warn(fmt.Sprintf("node %d checkpoint glob failed (%v); tombstone sidecar freshness unverified", id, err))
	} else if len(ckpts) > 0 {
		sort.Strings(ckpts)
		if cr, dr := sidecarRound(ckpts[len(ckpts)-1]), sidecarRound(newest); cr > dr {
			warn(fmt.Sprintf("node %d tombstone sidecar missing for round %d; replaying deletions as of round %d", id, cr, dr))
		}
	}
	dg := rdf.NewGraph()
	if err := readGraphFile(newest, dict, dg); err != nil {
		warn(fmt.Sprintf("node %d tombstone sidecar %s unreadable (%v); degrading to no deletions", id, filepath.Base(newest), err))
		return 0, nil
	}
	return g.Delete(dg.TriplesSince(0)), nil
}

// applyDeletions replays peer id's tombstone sidecars into this node's graph
// and scrubs the reship and received queues of anything that died: a deleted
// triple must be neither re-routed nor used to seed the next round's joins.
func (n *node) applyDeletions(id, round int) error {
	deleted, err := applyDelSidecars(n.l, id, n.dict, n.g, n.cfg.Obs, n.cfg.ID, round)
	if err != nil || deleted == 0 {
		return err
	}
	for t := range n.reship {
		if !n.g.Has(t) {
			delete(n.reship, t)
		}
	}
	kept := n.received[:0]
	for _, t := range n.received {
		if n.g.Has(t) {
			kept = append(kept, t)
		}
	}
	n.received = kept
	return nil
}

// lineageOfAll collects the lineage records g holds for ts, in ts order.
// Asserted or unrecorded triples are skipped; shipping them without a record
// just means the receiver stores them as asserted.
func lineageOfAll(g *rdf.Graph, ts []rdf.Triple) []rdf.Lineage {
	if g.Prov() == nil {
		return nil
	}
	// Non-nil even when empty: a prov-on sender always has a lineage set
	// (possibly zero records, when every shipped triple is asserted), and
	// writeLineageFile materializes non-nil sets as a sidecar file. That
	// keeps "sidecar absent" unambiguous for the receiver — it means a
	// lineage-free sender or a crash, never a quiet all-asserted batch.
	out := make([]rdf.Lineage, 0, len(ts))
	for _, t := range ts {
		if lin, ok := g.LineageOf(t); ok {
			out = append(out, lin)
		}
	}
	return out
}

// lineageByTriple indexes records by their subject triple, first record wins.
func lineageByTriple(lins []rdf.Lineage) map[rdf.Triple]rdf.Lineage {
	if len(lins) == 0 {
		return nil
	}
	m := make(map[rdf.Triple]rdf.Lineage, len(lins))
	for _, lin := range lins {
		if _, ok := m[lin.T]; !ok {
			m[lin.T] = lin
		}
	}
	return m
}
