// Worker recovery for the shared-filesystem cluster.
//
// The fault model is fail-stop with single-failure tolerance: a node process
// dies (crash, OOM, kill) and simply stops writing files. Its peers block at
// the done-marker barrier, so without intervention one dead worker wedges the
// whole round. Recovery has three parts:
//
//  1. Checkpoints. Every node writes its per-round routing delta to a
//     checkpoint file before its marker (fscluster.go). Base partition +
//     checkpoints + messages addressed to the node reconstruct its graph at
//     the last round it completed; anything it derived after its last
//     checkpoint is re-derivable, because forward inference is deterministic
//     and monotone over the same inputs.
//
//  2. Supervision. The master runs Supervise alongside the nodes. It watches
//     the marker files; once any node posts a round's marker, the rest have
//     RoundDeadline to follow. A laggard is declared dead by writing its
//     dead-file, whose content names the adopter (the lowest live node id).
//
//  3. Adoption. A node blocked at the barrier notices the dead-file naming it
//     and takes over on the spot: it merges the dead peer's reconstructed
//     state into its own graph, then writes the dead peer's marker for the
//     stuck round so the barrier completes cluster-wide. The marker carries
//     the count of newly absorbed tuples, which keeps the global sent-sum
//     positive and forces at least one more round — the adopter still has to
//     reason over the merged state before anyone may quiesce. From then on
//     the adopter writes the dead peer's markers (0) each round and drains
//     its inbox: the ownership table is immutable, so the rest of the cluster
//     keeps routing to the dead node's inbox files and correctness is
//     preserved without re-partitioning. Checkpointed tuples are deliberately
//     queued for re-shipping when merged — the dead node may have
//     checkpointed them and died before shipping, so the adopter re-routes
//     them in its next route phase (receivers deduplicate).
//
// A second failure — in particular of an adopter — is not tolerated; the
// barrier then times out and the run fails, which is the pre-recovery
// behaviour for any failure.
package fscluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"powl/internal/obs"
	"powl/internal/rdf"
)

// SuperviseConfig configures the master-side failure detector.
type SuperviseConfig struct {
	Dir string
	K   int
	// Poll is the marker-polling interval; 0 means 20ms.
	Poll time.Duration
	// RoundDeadline is how long a node may trail the round's first marker
	// (or, at the end, the first closure file) before being declared dead;
	// 0 means 2s. Must comfortably exceed the slowest node's round time:
	// a false positive makes two nodes serve one partition, which is
	// correct only while the "dead" node never writes another marker.
	RoundDeadline time.Duration
	// Timeout bounds the whole supervision; 0 means 5 minutes.
	Timeout time.Duration
}

// SuperviseResult reports what the detector did.
type SuperviseResult struct {
	// Dead maps each node declared dead to the adopter chosen for it.
	Dead map[int]int
}

// Supervise watches a running cluster's work directory until every live node
// has written its closure file, declaring nodes dead when they miss the round
// deadline. Run it concurrently with the nodes (cmd/owlcluster -run does).
//
//powl:ignore wallclock the supervisor's round deadlines are real-time liveness checks by design.
func Supervise(ctx context.Context, cfg SuperviseConfig) (*SuperviseResult, error) {
	if cfg.Poll <= 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	l := Layout{Dir: cfg.Dir}
	res := &SuperviseResult{Dead: map[int]int{}}
	// firstSeen[r] is when the supervisor first observed any round-r marker;
	// index len(firstSeen) is the frontier round nobody has posted yet.
	// firstClosure is the same clock for the closure-writing phase.
	var firstSeen []time.Time
	var firstClosure time.Time
	deadline := time.Now().Add(cfg.Timeout)

	// Pre-existing dead-files (e.g. supervisor restart) are honoured.
	for i := 0; i < cfg.K; i++ {
		if adopter, dead := readDeadFile(l, i); dead {
			res.Dead[i] = adopter
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("fscluster: supervisor timed out")
		}

		// Done when every live node has its closure on disk.
		closures := 0
		for i := 0; i < cfg.K; i++ {
			if _, isDead := res.Dead[i]; isDead {
				continue
			}
			if _, err := os.Stat(l.ClosureFile(i)); err == nil {
				closures++
			}
		}
		if closures == cfg.K-len(res.Dead) {
			return res, nil
		}
		if closures > 0 {
			// End-of-run laggard: died after its last marker, before its
			// closure. Nobody is left to adopt; MergeClosures reconstructs.
			if firstClosure.IsZero() {
				firstClosure = time.Now()
			}
			if time.Since(firstClosure) > cfg.RoundDeadline {
				for i := 0; i < cfg.K; i++ {
					if _, isDead := res.Dead[i]; isDead {
						continue
					}
					if _, err := os.Stat(l.ClosureFile(i)); err != nil {
						if err := declareDead(l, i, cfg.K, res.Dead); err != nil {
							return res, err
						}
					}
				}
			}
		}

		// Advance the marker frontier and stamp newly observed rounds.
		for anyMarker(l, len(firstSeen), cfg.K) {
			firstSeen = append(firstSeen, time.Now())
		}

		// Within the newest active round, declare laggards past the deadline.
		if r := len(firstSeen) - 1; r >= 0 && time.Since(firstSeen[r]) > cfg.RoundDeadline {
			for i := 0; i < cfg.K; i++ {
				if _, isDead := res.Dead[i]; isDead {
					continue
				}
				if _, err := os.Stat(l.MarkerFile(r, i)); err != nil {
					if err := declareDead(l, i, cfg.K, res.Dead); err != nil {
						return res, err
					}
				}
			}
		}

		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-time.After(cfg.Poll):
		}
	}
}

// anyMarker reports whether any node has posted its round-r marker.
func anyMarker(l Layout, round, k int) bool {
	for i := 0; i < k; i++ {
		if _, err := os.Stat(l.MarkerFile(round, i)); err == nil {
			return true
		}
	}
	return false
}

// declareDead writes victim's dead-file naming the lowest live node as
// adopter and records the decision.
func declareDead(l Layout, victim, k int, dead map[int]int) error {
	adopter := -1
	for i := 0; i < k; i++ {
		if i == victim {
			continue
		}
		if _, isDead := dead[i]; isDead {
			continue
		}
		adopter = i
		break
	}
	if adopter < 0 {
		return fmt.Errorf("fscluster: node %d dead with no live adopter", victim)
	}
	if err := writeAtomic(l.DeadFile(victim), strconv.Itoa(adopter)); err != nil {
		return err
	}
	dead[victim] = adopter
	return nil
}

// readDeadFile reports whether node id has been declared dead and, if so,
// which node adopted it.
func readDeadFile(l Layout, id int) (adopter int, dead bool) {
	b, err := os.ReadFile(l.DeadFile(id))
	if err != nil {
		return 0, false
	}
	a, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, false
	}
	return a, true
}

// readEpoch returns how many times node id has started against this work
// directory, 0 if never.
func readEpoch(l Layout, id int) (int, error) {
	b, err := os.ReadFile(l.EpochFile(id))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}

// lastCompletedRound scans node id's done-markers upward from round 0 and
// returns the last consecutive round the node completed, -1 if none. The
// markers are written in order, so the first gap is the round the node died
// in (or, for an adopted peer, the round its adopter has not reached yet).
func lastCompletedRound(l Layout, id int) (int, error) {
	last := -1
	for r := 0; ; r++ {
		if _, err := os.Stat(l.MarkerFile(r, id)); err != nil {
			if os.IsNotExist(err) {
				return last, nil
			}
			return last, err
		}
		last = r
	}
}

// adopt takes over dead peer id during the barrier wait of the given round:
// merge its reconstructed state, then write its marker so the round can
// complete. See the package comment above for the full protocol.
func (n *node) adopt(id, round int) error {
	absorbed := 0
	// With provenance on, replay the victim's lineage sidecars alongside its
	// tuple files so the adopted partition keeps its derivation records.
	linMap, err := loadLineageSidecars(n.l, id, n.dict, n.g, n.cfg.Obs, n.cfg.ID, round)
	if err != nil {
		return fmt.Errorf("fscluster: node %d adopting %d lineage: %w", n.cfg.ID, id, err)
	}
	add := func(t rdf.Triple) bool {
		if lin, ok := linMap[t]; ok {
			return n.g.AddWithLineage(t, lin)
		}
		return n.g.Add(t)
	}
	if err := reconstruct(n.l, id, n.dict, nil, func(t rdf.Triple, routed bool) {
		if routed {
			// Already-routed knowledge: the recv phase's watermark advance
			// will swallow it; drop any reship claim a previous adoption made.
			delete(n.reship, t)
		}
		if add(t) {
			// New knowledge: seed the next reasoning round with it, so joins
			// across the two merged partitions are derived.
			n.received = append(n.received, t)
			absorbed++
			if !routed {
				n.reship[t] = struct{}{}
			}
		}
	}); err != nil {
		return fmt.Errorf("fscluster: node %d adopting %d: %w", n.cfg.ID, id, err)
	}
	// The dead peer's deletions outlive it: replay its newest tombstone
	// sidecar over the merged state (and scrub the reship/received queues of
	// anything it kills) before the merged graph is reasoned over.
	if err := n.applyDeletions(id, round); err != nil {
		return fmt.Errorf("fscluster: node %d adopting %d deletions: %w", n.cfg.ID, id, err)
	}
	n.adopted = append(n.adopted, id)
	n.cfg.Obs.Emit(obs.Event{Type: obs.EvRecovery, TS: n.cfg.Obs.Now(),
		Worker: n.cfg.ID, Round: round, N: int64(id), N2: int64(absorbed)})
	// The marker unblocks every peer's barrier; carrying the absorbed count
	// forces at least one more round so the merged state gets reasoned over.
	return writeAtomic(n.l.MarkerFile(round, id), strconv.Itoa(absorbed))
}

// reconstruct replays dead node id's persisted state: base partition and
// delivered messages (already-routed knowledge) plus checkpoints (derived
// deltas that may not have been shipped before the crash). Exactly one of g
// and visit is used: with g the tuples are added to it; with visit the
// callback receives each tuple and whether it counts as already routed.
func reconstruct(l Layout, id int, dict *rdf.Dict, g *rdf.Graph, visit func(t rdf.Triple, routed bool)) error {
	emit := func(path string, routed bool) error {
		in := rdf.NewGraph()
		if err := readGraphFile(path, dict, in); err != nil {
			return err
		}
		for _, t := range in.TriplesSince(0) {
			if visit != nil {
				visit(t, routed)
			} else {
				g.Add(t)
			}
		}
		return nil
	}
	if err := emit(l.PartFile(id), true); err != nil {
		return err
	}
	msgs, err := filepath.Glob(l.msgGlob(id))
	if err != nil {
		return err
	}
	for _, p := range msgs {
		if err := emit(p, true); err != nil {
			return err
		}
	}
	ckpts, err := filepath.Glob(l.ckptGlob(id))
	if err != nil {
		return err
	}
	for _, p := range ckpts {
		if err := emit(p, false); err != nil {
			return err
		}
	}
	return nil
}

// loadLineageSidecars merges node id's checkpoint and inbound-message lineage
// sidecars into one triple-keyed map (first record wins, checkpoints first —
// the node's own derivations beat relayed copies). Returns nil without
// touching disk when g does not record provenance: replay then degrades to
// plain Add, matching a lineage-free run. A prov-on node whose sidecars are
// all gone (crash before the first sidecar write) degrades the same way,
// and journals that through o before continuing — worker and round stamp
// the event with who is replaying and when.
func loadLineageSidecars(l Layout, id int, dict *rdf.Dict, g *rdf.Graph, o *obs.Run, worker, round int) (map[rdf.Triple]rdf.Lineage, error) {
	if g.Prov() == nil {
		return nil, nil
	}
	merged := make(map[rdf.Triple]rdf.Lineage)
	files := 0
	for _, glob := range []string{l.linCkptGlob(id), l.linMsgGlob(id)} {
		paths, err := filepath.Glob(glob)
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		for _, p := range paths {
			lins, err := readLineageFile(p, dict)
			if err != nil {
				return nil, err
			}
			files++
			for _, lin := range lins {
				if _, ok := merged[lin.T]; !ok {
					merged[lin.T] = lin
				}
			}
		}
	}
	if files == 0 {
		o.Emit(obs.Event{Type: obs.EvWarn, TS: o.Now(), Worker: worker, Round: round,
			Name: fmt.Sprintf("node %d has no lineage sidecars; replay degraded to plain asserted adds", id)})
	}
	return merged, nil
}
