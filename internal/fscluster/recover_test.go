package fscluster

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/faultinject"
	"powl/internal/gpart"
	"powl/internal/obs"
	"powl/internal/partition"
	"powl/internal/reason"
)

// runSupervisedCluster runs k nodes plus the supervisor; injectors[i] (may be
// nil) is node i's fault schedule. Node errors are returned per node rather
// than failing the test, so crash injection can be asserted on.
func runSupervisedCluster(t *testing.T, ds *datagen.Dataset, k int, injectors []*faultinject.Injector) ([]error, *SuperviseResult, string) {
	t.Helper()
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunNode(NodeConfig{
				ID: i, K: k, Dir: dir, Engine: reason.Forward{},
				Poll: time.Millisecond, Timeout: time.Minute,
				Inject: injectors[i],
			})
		}(i)
	}
	sup, supErr := Supervise(context.Background(), SuperviseConfig{
		Dir: dir, K: k,
		Poll: time.Millisecond, RoundDeadline: 500 * time.Millisecond,
		Timeout: time.Minute,
	})
	wg.Wait()
	if supErr != nil {
		t.Fatalf("supervisor: %v", supErr)
	}
	return errs, sup, dir
}

// TestWorkerCrashRecovers is the kill-a-worker acceptance test: one node
// fail-stops mid-run, the supervisor declares it dead, a surviving node
// adopts its partition from the checkpoints, and the merged closure still
// matches the sequential fixpoint exactly.
func TestWorkerCrashRecovers(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k, victim = 3, 2
	injectors := make([]*faultinject.Injector, k)
	injectors[victim] = faultinject.New(faultinject.Config{CrashRound: 2})

	errs, sup, dir := runSupervisedCluster(t, ds, k, injectors)
	if !errors.Is(errs[victim], ErrCrashed) {
		t.Fatalf("victim error = %v, want ErrCrashed", errs[victim])
	}
	for i, err := range errs {
		if i != victim && err != nil {
			t.Fatalf("survivor %d failed: %v", i, err)
		}
	}
	adopter, ok := sup.Dead[victim]
	if !ok {
		t.Fatal("supervisor never declared the victim dead")
	}
	if adopter == victim || adopter < 0 || adopter >= k {
		t.Fatalf("bad adopter %d", adopter)
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("recovered closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
}

// TestImmediateCrashRecovers: the victim dies before completing any round, so
// the adopter reconstructs it purely from the base partition (no checkpoints
// exist yet).
func TestImmediateCrashRecovers(t *testing.T) {
	ds := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, DeptsPerUniv: 3})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k, victim = 3, 1
	injectors := make([]*faultinject.Injector, k)
	injectors[victim] = faultinject.New(faultinject.Config{CrashRound: 1})

	errs, sup, dir := runSupervisedCluster(t, ds, k, injectors)
	if !errors.Is(errs[victim], ErrCrashed) {
		t.Fatalf("victim error = %v, want ErrCrashed", errs[victim])
	}
	if _, ok := sup.Dead[victim]; !ok {
		t.Fatal("supervisor never declared the victim dead")
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("recovered closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
}

// TestSuperviseCleanRun: with no failures the supervisor declares nobody dead
// and returns once all closures are on disk.
func TestSuperviseCleanRun(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7})
	errs, sup, _ := runSupervisedCluster(t, ds, 2, make([]*faultinject.Injector, 2))
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if len(sup.Dead) != 0 {
		t.Fatalf("clean run declared deaths: %v", sup.Dead)
	}
}

// TestMergeReconstructsLateDeath: a node that died after its last marker but
// before writing its closure file has no adopter (everyone else already
// finished); MergeClosures must rebuild its state from base + checkpoints +
// messages on the master side.
func TestMergeReconstructsLateDeath(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunNode(NodeConfig{
				ID: i, K: k, Dir: dir, Engine: reason.Forward{},
				Poll: time.Millisecond, Timeout: time.Minute,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Simulate the late death: node 1's closure never made it to disk, and
	// the supervisor flagged it.
	l := Layout{Dir: dir}
	if err := os.Remove(l.ClosureFile(1)); err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(l.DeadFile(1), "0"); err != nil {
		t.Fatal(err)
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("reconstructed closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
}

// TestNodeRejoinsAfterRestart: a crashed node whose dead-file was never
// written (no supervisor ran) restarts against the same work directory and
// rejoins the run in progress — epoch bumped, state reconstructed from its
// own checkpoints and inbox, round loop re-entered where it left off — and
// the merged closure still matches the sequential fixpoint.
func TestNodeRejoinsAfterRestart(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}

	// Node 0 runs normally; it will block at the barrier while node 1 is down.
	done := make(chan error, 1)
	go func() {
		_, err := RunNode(NodeConfig{
			ID: 0, K: k, Dir: dir, Engine: reason.Forward{},
			Poll: time.Millisecond, Timeout: time.Minute,
		})
		done <- err
	}()

	// Node 1's first incarnation completes round 0 and dies entering round 1.
	first, err := RunNode(NodeConfig{
		ID: 1, K: k, Dir: dir, Engine: reason.Forward{},
		Poll: time.Millisecond, Timeout: time.Minute,
		Inject: faultinject.New(faultinject.Config{CrashRound: 2}),
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("first incarnation: err = %v, want ErrCrashed", err)
	}
	if first != nil {
		t.Fatalf("crashed node returned a result: %+v", first)
	}

	// The restarted process: same id, same dir, fresh everything else.
	sink := &obs.MemSink{}
	second, err := RunNode(NodeConfig{
		ID: 1, K: k, Dir: dir, Engine: reason.Forward{},
		Poll: time.Millisecond, Timeout: time.Minute,
		Obs: obs.NewRun(sink, nil),
	})
	if err != nil {
		t.Fatalf("rejoin failed: %v", err)
	}
	if second.Epoch != 2 {
		t.Fatalf("rejoined epoch = %d, want 2", second.Epoch)
	}
	if second.StartRound != 1 {
		t.Fatalf("rejoined start round = %d, want 1", second.StartRound)
	}
	var rejoined bool
	for _, e := range sink.Events() {
		if e.Type == obs.EvRejoin && e.Worker == 1 && e.N == 2 {
			rejoined = true
		}
	}
	if !rejoined {
		t.Fatal("journal missing rejoin event")
	}
	if err := <-done; err != nil {
		t.Fatalf("node 0: %v", err)
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("rejoined closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
}

// TestRejoinRefusedWhenAdopted: once a supervisor has handed the partition
// to an adopter, a restart of the dead node must refuse to run — two nodes
// serving one inbox would split the partition's state.
func TestRejoinRefusedWhenAdopted(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7})
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, 2, pol); err != nil {
		t.Fatal(err)
	}
	l := Layout{Dir: dir}
	if err := writeAtomic(l.EpochFile(1), "1"); err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(l.DeadFile(1), "0"); err != nil {
		t.Fatal(err)
	}
	_, err := RunNode(NodeConfig{ID: 1, K: 2, Dir: dir,
		Poll: time.Millisecond, Timeout: time.Second})
	if err == nil || !strings.Contains(err.Error(), "cannot rejoin") {
		t.Fatalf("adopted node restarted anyway: err = %v", err)
	}
}

// TestRunNodeContextCancel: a node whose peers never show up stops on context
// cancellation instead of waiting out the barrier timeout.
func TestRunNodeContextCancel(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 2, Seed: 7})
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, 2, pol); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunNodeContext(ctx, NodeConfig{
			ID: 0, K: 2, Dir: dir,
			Poll: time.Millisecond, Timeout: time.Minute,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled node kept waiting at the barrier")
	}
}
