package fscluster

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"powl/internal/core"
	"powl/internal/datagen"
	"powl/internal/faultinject"
	"powl/internal/gpart"
	"powl/internal/partition"
	"powl/internal/rdf"
	"powl/internal/reason"
)

// countExplainable walks g's triples and checks every one that carries a
// lineage record explains: non-empty rule attribution, recorded premises
// present in g, Explain yields a derived root. A record shipped from a peer
// may legitimately have no premises — the router never sent the receiver the
// inputs, only the conclusion — so the second return counts records whose
// premise chain is intact.
func countExplainable(t *testing.T, g *rdf.Graph) (derived, withPrem int) {
	t.Helper()
	if g.Prov() == nil {
		t.Fatal("node graph has no provenance side-column")
	}
	for _, tr := range g.Triples() {
		lin, ok := g.LineageOf(tr)
		if !ok {
			continue
		}
		derived++
		if lin.Rule == "" {
			t.Fatalf("derived %v has empty rule attribution", tr)
		}
		if len(lin.Prem) > 0 {
			withPrem++
		}
		for _, p := range lin.Prem {
			if !g.Has(p) {
				t.Fatalf("premise %v of %v missing from node graph", p, tr)
			}
		}
		if n, ok := g.Explain(tr, 0); !ok || !n.IsDerived() {
			t.Fatalf("Explain failed for derived %v", tr)
		}
	}
	return derived, withPrem
}

// TestNodeProvenance runs a partitioned chain dataset with provenance on:
// the closure must still match the serial fixpoint, every node's graph must
// explain its derivations — including tuples derived on a peer and shipped
// over the message files — and the lineage sidecars must actually exist on
// disk (the protocol is the files, not shared memory).
func TestNodeProvenance(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}
	results := make([]*NodeResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunNode(NodeConfig{
				ID: i, K: k, Dir: dir, Engine: reason.Forward{},
				Poll: time.Millisecond, Timeout: 2 * time.Minute,
				Provenance: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("closure %d != serial %d with provenance on", merged.Len(), serial.Graph.Len())
	}
	derived, withPrem := 0, 0
	for _, r := range results {
		d, wp := countExplainable(t, r.Closure)
		derived, withPrem = derived+d, withPrem+wp
	}
	if derived == 0 {
		t.Fatal("no node holds an explainable derivation")
	}
	if withPrem == 0 {
		t.Fatal("no derivation kept an intact premise chain")
	}
	sidecars, err := filepath.Glob(filepath.Join(dir, "*.lin.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sidecars) == 0 {
		t.Fatal("no lineage sidecar files written")
	}
}

// TestProvenanceSurvivesAdoption crashes a worker with provenance on: the
// adopter replays the victim's checkpoint and message sidecars, so its merged
// graph keeps explainable lineage and the closure still matches serial.
func TestProvenanceSurvivesAdoption(t *testing.T) {
	ds := datagen.MDC(datagen.MDCConfig{Fields: 4, Seed: 7})
	serial, err := core.MaterializeSerial(ds, core.ForwardEngine)
	if err != nil {
		t.Fatal(err)
	}
	const k, victim = 3, 2
	dir := t.TempDir()
	pol := partition.GraphPolicy{Opts: gpart.Options{Seed: 42}}
	if _, err := Prepare(dir, ds.Dict, ds.Graph, k, pol); err != nil {
		t.Fatal(err)
	}
	injectors := make([]*faultinject.Injector, k)
	injectors[victim] = faultinject.New(faultinject.Config{CrashRound: 2})
	results := make([]*NodeResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunNode(NodeConfig{
				ID: i, K: k, Dir: dir, Engine: reason.Forward{},
				Poll: time.Millisecond, Timeout: time.Minute,
				Provenance: true, Inject: injectors[i],
			})
		}(i)
	}
	sup, supErr := Supervise(t.Context(), SuperviseConfig{
		Dir: dir, K: k,
		Poll: time.Millisecond, RoundDeadline: 500 * time.Millisecond,
		Timeout: time.Minute,
	})
	wg.Wait()
	if supErr != nil {
		t.Fatalf("supervisor: %v", supErr)
	}
	if !errors.Is(errs[victim], ErrCrashed) {
		t.Fatalf("victim error = %v, want ErrCrashed", errs[victim])
	}
	adopter, ok := sup.Dead[victim]
	if !ok {
		t.Fatal("supervisor never declared the victim dead")
	}
	_, merged, err := MergeClosures(dir, k)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != serial.Graph.Len() {
		t.Fatalf("recovered closure %d != serial %d", merged.Len(), serial.Graph.Len())
	}
	if d, _ := countExplainable(t, results[adopter].Closure); d == 0 {
		t.Fatal("adopter holds no explainable derivations after taking over the victim")
	}
}
